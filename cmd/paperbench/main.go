// Command paperbench regenerates the tables and figures of Ohmori et al.
// (ICDE 1991) from the simulator, printing side-by-side comparisons with
// the paper's numbers where the paper prints them.
//
// Examples:
//
//	paperbench -exp table2            # one artifact at full scale
//	paperbench -exp all               # everything (tens of minutes)
//	paperbench -exp fig10 -quick      # scaled-down smoke run (~seconds)
//	paperbench -exp table3 -reps 3    # average 3 seeds per point
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"batchsched"
	"batchsched/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "artifact id ("+strings.Join(batchsched.ArtifactIDs(), ", ")+") or 'all'")
		ablations = flag.Bool("ablations", false, "run the design-choice ablation studies instead of the paper artifacts")
		chart     = flag.Bool("chart", false, "also render figure artifacts as ASCII charts")
		quick     = flag.Bool("quick", false, "scaled-down run: 200s windows, coarse solver")
		duration  = flag.Float64("duration", 0, "override simulated seconds per run (0 = paper's 2000)")
		reps      = flag.Int("reps", 1, "replications per point")
		seed      = flag.Int64("seed", 1, "base random seed")
		tol       = flag.Float64("tol", 0, "bisection tolerance on lambda (0 = 0.01)")
		stepped   = flag.Bool("stepped", false, "use the quantum-per-event DPN oracle (same numbers, slower; timing comparisons)")
	)
	flag.Parse()

	o := batchsched.Options{Reps: *reps, Seed: *seed, SolverTol: *tol, QuantumStepped: *stepped}
	if *duration > 0 {
		o.Duration = batchsched.Time(*duration * float64(batchsched.Second))
	}
	if *quick {
		if o.Duration == 0 {
			o.Duration = 200 * batchsched.Second
		}
		if o.SolverTol == 0 {
			o.SolverTol = 0.05
		}
	}

	if *ablations {
		for _, a := range experiments.Ablations {
			start := time.Now()
			fmt.Fprintf(os.Stderr, "== running %s: %s\n", a.ID, a.Title)
			fmt.Println(a.Run(o).String())
			fmt.Fprintf(os.Stderr, "   (%s in %s)\n\n", a.ID, time.Since(start).Round(time.Millisecond))
		}
		return
	}

	ids := batchsched.ArtifactIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		a, ok := experiments.FindArtifact(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperbench: unknown artifact %q (want one of %v or 'all')\n",
				id, batchsched.ArtifactIDs())
			os.Exit(2)
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== regenerating %s: %s\n", a.ID, a.Title)
		tbl := a.Run(o)
		fmt.Println(tbl.String())
		if *chart && strings.HasPrefix(a.ID, "fig") {
			if c := tbl.Chart(tbl.Header[0], "", 0); c != nil {
				c.Width, c.Height = 72, 22
				fmt.Println(c.String())
			}
		}
		fmt.Fprintf(os.Stderr, "   (%s in %s)\n\n", a.ID, time.Since(start).Round(time.Millisecond))
	}
}
