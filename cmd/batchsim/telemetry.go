package main

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"batchsched"
	"batchsched/internal/obs/serve"
	"batchsched/internal/obs/sli"
)

// validateTelemetryFlags rejects telemetry flags on execution modes whose
// clock the endpoint would misrepresent: -serve scrapes wall-clock
// streaming instruments, so it requires the live backend and a single real
// run — the virtual-clock simulator finishes in milliseconds of wall time
// and -compare interleaves many runs, so a scrape of either would lie.
func validateTelemetryFlags(serveAddr, sliLedger, backend string, compare bool) error {
	if serveAddr != "" {
		if compare {
			return errors.New("-serve is incompatible with -compare (it interleaves many short runs)")
		}
		if backend != "live" {
			return fmt.Errorf("-serve requires -backend live: the %q backend runs on the virtual clock, not in wall time", backend)
		}
	}
	if sliLedger != "" && compare {
		return errors.New("-sli-ledger is incompatible with -compare")
	}
	return nil
}

// telemetryOpts carries the telemetry flags into the live run.
type telemetryOpts struct {
	serveAddr string
	linger    time.Duration
	ledger    string
	specPath  string
	check     bool
	wl        string
	seed      int64
}

// runLiveTelemetry executes the live batch with the telemetry stack up:
// streaming instruments on the backend's hot paths, the HTTP scrape
// endpoint for the duration of the run (plus -serve-linger), and one
// appended SLI ledger line.
func runLiveTelemetry(lcfg batchsched.LiveConfig, schedName string, params batchsched.Params, batch [][]batchsched.Step, opt telemetryOpts) (batchsched.Summary, error) {
	b, err := batchsched.NewLiveBackend(lcfg, schedName, params)
	if err != nil {
		return batchsched.Summary{}, err
	}
	set := batchsched.NewStreamSet()
	b.SetStream(set)
	b.SetObs(batchsched.NewObs())

	if opt.serveAddr != "" {
		srv := serve.New()
		srv.AddMetrics(func(w http.ResponseWriter) error { return set.WritePrometheus(w, b.Now()) })
		srv.SetSLO(func() any { return b.Snapshot() })
		addr, serr := srv.Start(opt.serveAddr)
		if serr != nil {
			return batchsched.Summary{}, serr
		}
		fmt.Fprintf(os.Stderr, "batchsim: telemetry on http://%s (/metrics /healthz /slo /debug/pprof)\n", addr)
		defer srv.Close()
	}

	res, err := batchsched.RunLiveTelemetry(b, schedName, batch, opt.check)
	if err == nil && schedName != "NODC" && schedName != "OPT" && res.Violations != 0 {
		err = fmt.Errorf("live %s run observed %d lock-guard violations", schedName, res.Violations)
	}

	if opt.ledger != "" && err == nil {
		spec, lerr := loadSpec(opt.specPath)
		if lerr != nil {
			return res.Summary, lerr
		}
		m := sli.FromSummary(schedName, opt.wl, 0, res.Summary, res.Violations, int(res.ClockClamps))
		e := sli.NewEntry("live", spec, m)
		e.Seed = opt.seed
		e.Time = time.Now().UTC().Format(time.RFC3339)
		if lerr := sli.Append(opt.ledger, e); lerr != nil {
			return res.Summary, lerr
		}
		verdict := "PASS"
		if !e.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "batchsim: SLO %q %s for %s; ledger line appended to %s\n",
			spec.Name, verdict, schedName, opt.ledger)
	}

	if opt.serveAddr != "" && opt.linger > 0 {
		fmt.Fprintf(os.Stderr, "batchsim: endpoint lingering %v for scrapers\n", opt.linger)
		time.Sleep(opt.linger)
	}
	return res.Summary, err
}

// appendSimLedger appends one "sim"-source SLI ledger line for a
// virtual-clock run (guard violations and clock clamps are structurally
// zero there).
func appendSimLedger(path, specPath, schedName, wl string, lambda float64, seed int64, sum batchsched.Summary) error {
	spec, err := loadSpec(specPath)
	if err != nil {
		return err
	}
	m := sli.FromSummary(schedName, wl, lambda, sum, 0, 0)
	e := sli.NewEntry("sim", spec, m)
	e.Seed = seed
	e.Time = time.Now().UTC().Format(time.RFC3339)
	return sli.Append(path, e)
}

// loadSpec resolves the SLO spec: the built-in default, or -slo-spec's file.
func loadSpec(path string) (sli.Spec, error) {
	if path == "" {
		return sli.Default(), nil
	}
	return sli.Load(path)
}
