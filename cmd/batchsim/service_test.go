package main

import (
	"testing"
	"time"

	"batchsched"
	"batchsched/internal/obs/sli"
	"batchsched/internal/sim"
)

func TestServicePolicyFlags(t *testing.T) {
	def := batchsched.DefaultAdmitPolicy()
	f := serviceRun{
		// -1 duration sentinels keep the policy defaults; 0 disables.
		interactive: -1, sloBatch: -1, sloInteractive: -1, overloadP95: -1,
	}
	pol, err := f.policy()
	if err != nil {
		t.Fatalf("default policy: %v", err)
	}
	if pol != def {
		t.Errorf("sentinel flags changed the policy:\n got  %+v\n want %+v", pol, def)
	}

	f = serviceRun{
		mpl: 12, epoch: 2 * time.Second, maxQueue: 64, interactive: 0.5,
		sloBatch: time.Minute, sloInteractive: 0, overloadP95: 0,
	}
	pol, err = f.policy()
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	if pol.MPL != 12 || pol.Epoch != 2*sim.Second || pol.MaxQueue != 64 {
		t.Errorf("shape flags: %+v", pol)
	}
	if pol.InteractiveFraction != 0.5 {
		t.Errorf("interactive = %g", pol.InteractiveFraction)
	}
	if pol.QueueSLO[0] != 60*sim.Second {
		t.Errorf("batch SLO = %v", pol.QueueSLO[0])
	}
	// Explicit zeros disable the interactive deadline and overload control.
	if pol.QueueSLO[1] != 0 || pol.OverloadP95 != 0 {
		t.Errorf("zeros did not disable: slo=%v p95=%v", pol.QueueSLO[1], pol.OverloadP95)
	}
}

func TestServiceLedgerEntries(t *testing.T) {
	sum := batchsched.Summary{
		Arrivals:    100,
		Completions: 88,
		Sheds:       1,
		TPS:         0.88,
		MeanRT:      8 * sim.Second,
		P95RT:       20 * sim.Second,
	}
	epochs := []batchsched.EpochStats{
		{Epoch: 1, Start: 0, End: 10 * sim.Second, Arrivals: 9, Completions: 5,
			Sheds: 1, MeanRT: 4 * sim.Second, P95RT: 6 * sim.Second},
		{Epoch: 2, Start: 10 * sim.Second, End: 20 * sim.Second, Arrivals: 8, Completions: 7},
	}
	spec := sli.ServiceDefault()
	entries := serviceLedgerEntries("sim", spec, "GOW", "exp1", 0.9, 42, sum, epochs)
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want run + 2 epochs", len(entries))
	}

	run := entries[0]
	if run.Epoch != 0 {
		t.Errorf("run entry has Epoch %d", run.Epoch)
	}
	if run.Seed != 42 || run.Source != "sim" {
		t.Errorf("run identity: %+v", run)
	}
	if run.Measures.Arrivals != 100 || run.Measures.Sheds != 1 {
		t.Errorf("run open-stream counters: %+v", run.Measures)
	}
	if got := run.Measures.ShedRate(); got != 0.01 {
		t.Errorf("ShedRate = %g", got)
	}
	if !run.Pass {
		t.Errorf("run entry failed the default spec: %+v", run.Checks)
	}

	e1 := entries[1]
	if e1.Epoch != 1 || e1.Measures.Arrivals != 9 || e1.Measures.Sheds != 1 {
		t.Errorf("epoch 1 entry: %+v", e1)
	}
	if e1.Measures.TPS != 0.5 {
		t.Errorf("epoch 1 TPS = %g, want 5 completions / 10 s", e1.Measures.TPS)
	}
	if e1.Measures.P95RTSeconds != 6 {
		t.Errorf("epoch 1 p95 = %g", e1.Measures.P95RTSeconds)
	}
	// Epoch entries stay unstamped so fixed-seed trails are reproducible.
	if e1.Time != "" {
		t.Errorf("epoch entry stamped: %q", e1.Time)
	}
	if entries[2].Epoch != 2 {
		t.Errorf("epoch 2 entry: %+v", entries[2])
	}

	for i, e := range entries {
		if e.SchemaV != sli.Schema {
			t.Errorf("entry %d schema %q", i, e.SchemaV)
		}
	}
}
