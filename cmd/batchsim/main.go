// Command batchsim runs one batch-scheduling simulation and prints its
// metrics.
//
// Examples:
//
//	batchsim -sched LOW -lambda 0.6 -numfiles 16 -dd 2
//	batchsim -sched C2PL+M -mpl 8 -lambda 1.2 -duration 2000
//	batchsim -sched GOW -workload exp1 -sigma 1.0 -json
//	batchsim -sched ASL -workload exp2 -lambda 1.0 -check
//	batchsim -backend live -sched GOW -txns 64 -check
//	batchsim -compare -txns 32
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"batchsched"
	"batchsched/internal/metrics"
)

func main() {
	var (
		schedName = flag.String("sched", "LOW", "scheduler: NODC, ASL, GOW, LOW, C2PL, C2PL+M, OPT")
		lambda    = flag.Float64("lambda", 0.6, "arrival rate (transactions per second)")
		numFiles  = flag.Int("numfiles", 16, "number of files (Experiment 1)")
		numNodes  = flag.Int("numnodes", 8, "number of data-processing nodes")
		dd        = flag.Int("dd", 1, "degree of declustering")
		duration  = flag.Float64("duration", 2000, "simulated span in seconds (paper: 2000)")
		warmup    = flag.Float64("warmup", 0, "warm-up span excluded from metrics, seconds")
		seed      = flag.Int64("seed", 1, "random seed")
		reps      = flag.Int("reps", 1, "independent replications to average")
		wl        = flag.String("workload", "exp1", "workload: exp1 (blocking) or exp2 (hot set)")
		sigma     = flag.Float64("sigma", 0, "declared-cost error ratio std deviation (Experiment 3)")
		mpl       = flag.Int("mpl", 0, "C2PL+M admission limit (0 = unlimited)")
		k         = flag.Int("k", 2, "LOW conflict bound K")
		check     = flag.Bool("check", false, "verify conflict-serializability of the run")
		parallel  = flag.Int("parallel-run", 0, "sharded-calendar PDES: 0 = merged calendar, 1 = sharded single-core, N>1 = N wave-prepare workers (results byte-identical; see DESIGN.md)")
		decisionW = flag.Int("decision-workers", 0, "GOW/LOW parallel decision engine: N>1 fans candidate scoring over N workers (results byte-identical; see DESIGN.md §17)")
		progress  = flag.Bool("progress", false, "print engine execution stats after the run: events/sec, safe waves, per-shard utilization")
		backend   = flag.String("backend", "sim", "execution backend: sim (virtual clock) or live (real goroutine-per-DPN execution)")
		txns      = flag.Int("txns", 64, "closed-batch size for -backend live and -compare")
		pace      = flag.Duration("pace", 0, "live backend: minimum wall time per object scanned (e.g. 300us)")
		rows      = flag.Int("rows", 0, "live backend: rows per object in the in-memory store (0 = default)")
		compare   = flag.Bool("compare", false, "run the Exp-1 sim-vs-live ranking comparison and print the table")
		traceFile = flag.String("trace", "", "write a JSONL execution trace to this file (single rep only)")
		asJSON    = flag.Bool("json", false, "print the summary as JSON")

		service     = flag.Bool("service", false, "streaming-admission service mode: open arrivals through a bounded admission window with backpressure and load shedding (both backends; see DESIGN.md §15)")
		arrival     = flag.String("arrival", "poisson", "service mode: arrival process at -lambda: poisson, diurnal or burst")
		heavytail   = flag.Float64("heavytail", 0, "heavy-tail the workload's step costs with Pareto tail index alpha (0 = off; smaller alpha = heavier tail)")
		serviceDur  = flag.Duration("service-duration", 2*time.Second, "live service mode: wall-clock arrival span (the run then drains)")
		epochFlag   = flag.Duration("epoch", 0, "service mode: admission epoch cadence (0 = policy default 500ms)")
		maxQueue    = flag.Int("max-queue", 0, "service mode: admission queue bound (0 = policy default 256)")
		interactive = flag.Float64("interactive", -1, "service mode: interactive arrival fraction (-1 = policy default 0.2)")
		sloBatch    = flag.Duration("slo-batch", -1, "service mode: batch-class admission-sojourn SLO (0 = no deadline; -1 = policy default 120s)")
		sloInter    = flag.Duration("slo-interactive", -1, "service mode: interactive-class admission-sojourn SLO (0 = no deadline; -1 = policy default 10s)")
		overloadP95 = flag.Duration("overload-p95", -1, "service mode: admission-sojourn p95 that trips overload shedding (0 = off; -1 = policy default 30s)")
		capacity    = flag.Bool("capacity", false, "service mode, sim backend: bisect the arrival rate for sustained-TPS-at-SLO instead of one run at -lambda")
		capLo       = flag.Float64("cap-lo", 0.05, "-capacity: bisection bracket floor, TPS")
		capHi       = flag.Float64("cap-hi", 2.0, "-capacity: bisection bracket ceiling, TPS")
		capTol      = flag.Float64("cap-tol", 0.05, "-capacity: bisection tolerance, TPS")

		serveAddr   = flag.String("serve", "", "serve live telemetry at this address (host:port; :0 picks a port): /metrics, /healthz, /slo, /debug/pprof; requires -backend live")
		serveLinger = flag.Duration("serve-linger", 0, "keep the -serve endpoint up this long after the run completes (for external scrapers)")
		sliLedger   = flag.String("sli-ledger", "", "append one SLI ledger line (JSONL, see internal/obs/sli) for the run to this file")
		sloSpec     = flag.String("slo-spec", "", "JSON SLO spec file for -sli-ledger (empty = built-in default spec)")

		traceOut        = flag.String("trace-out", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file (single rep)")
		metricsOut      = flag.String("metrics-out", "", "write the sampled metrics time-series as CSV to this file (single rep)")
		metricsInterval = flag.Float64("metrics-interval", 1000, "metrics sampling interval, virtual milliseconds")
		auditOut        = flag.String("audit", "", "write the scheduler decision audit as JSONL to this file (single rep)")
		reportOut       = flag.String("report", "", "write a self-contained HTML report to this file (single rep)")
		cpuProfile      = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile      = flag.String("memprofile", "", "write a heap profile at exit to this file")

		mtbf         = flag.Float64("mtbf", 0, "per-node mean time between crashes, seconds (0 = no crashes)")
		mttr         = flag.Float64("mttr", 10, "mean outage per crash, seconds (with -mtbf)")
		straggler    = flag.String("straggler", "", "straggler spec mtbf/duration/factor, seconds (e.g. 200/20/3)")
		msgloss      = flag.Float64("msgloss", 0, "CN<->DPN message loss probability, [0,1)")
		msgdelay     = flag.Float64("msgdelay", 0, "mean extra message network delay, milliseconds")
		msgtimeout   = flag.Float64("msgtimeout", 5, "step retry timeout, seconds (with -msgloss)")
		msgretries   = flag.Int("msgretries", 2, "step retries before the transaction aborts")
		restartDelay = flag.Float64("restartdelay", 0, "hold aborted transactions back, seconds")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			}
		}()
	}

	// -progress reports the engine's own execution counters, which only the
	// plain replication path collects; the -check and observability paths
	// run the simulation through different entry points.
	if *progress && (*check || *traceOut != "" || *metricsOut != "" || *auditOut != "" || *reportOut != "") {
		fmt.Fprintln(os.Stderr, "batchsim: -progress is incompatible with -check and the observability outputs")
		os.Exit(2)
	}
	if err := validateTelemetryFlags(*serveAddr, *sliLedger, *backend, *compare); err != nil {
		fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
		os.Exit(2)
	}

	cfg := batchsched.DefaultConfig()
	cfg.ParallelRun = *parallel
	cfg.ArrivalRate = *lambda
	cfg.NumFiles = *numFiles
	cfg.NumNodes = *numNodes
	cfg.DD = *dd
	cfg.Duration = batchsched.Time(*duration * float64(batchsched.Second))
	cfg.Warmup = batchsched.Time(*warmup * float64(batchsched.Second))
	cfg.RestartDelay = batchsched.Time(*restartDelay * float64(batchsched.Second))
	cfg.Faults = batchsched.FaultConfig{
		MTBF:       batchsched.Time(*mtbf * float64(batchsched.Second)),
		MTTR:       batchsched.Time(*mttr * float64(batchsched.Second)),
		MsgLoss:    *msgloss,
		MsgDelay:   batchsched.Time(*msgdelay * float64(batchsched.Millisecond)),
		MsgTimeout: batchsched.Time(*msgtimeout * float64(batchsched.Second)),
		MsgRetries: *msgretries,
	}
	if *mtbf <= 0 {
		cfg.Faults.MTTR = 0
	}
	if *msgloss <= 0 {
		cfg.Faults.MsgTimeout = 0
	}
	if *straggler != "" {
		var smtbf, sdur, sfactor float64
		if _, err := fmt.Sscanf(*straggler, "%g/%g/%g", &smtbf, &sdur, &sfactor); err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: bad -straggler %q (want mtbf/duration/factor, e.g. 200/20/3)\n", *straggler)
			os.Exit(2)
		}
		cfg.Faults.StragglerMTBF = batchsched.Time(smtbf * float64(batchsched.Second))
		cfg.Faults.StragglerDuration = batchsched.Time(sdur * float64(batchsched.Second))
		cfg.Faults.StragglerFactor = sfactor
	}
	if err := cfg.Faults.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
		os.Exit(2)
	}

	params := batchsched.DefaultParams()
	params.MPL = *mpl
	params.K = *k
	params.DecisionWorkers = *decisionW

	var gen batchsched.Generator
	switch *wl {
	case "exp1":
		gen = batchsched.NewExp1Workload(*numFiles)
	case "exp2":
		gen = batchsched.NewExp2Workload()
	default:
		fmt.Fprintf(os.Stderr, "batchsim: unknown workload %q (want exp1 or exp2)\n", *wl)
		os.Exit(2)
	}
	if *sigma > 0 {
		gen = batchsched.WithCostError(gen, *sigma)
	}
	if *heavytail > 0 {
		gen = batchsched.WithHeavyTail(gen, *heavytail)
	}

	if *service {
		os.Exit(runServiceMode(serviceRun{
			backend: *backend, sched: *schedName, params: params, gen: gen, cfg: cfg,
			wl: *wl, lambda: *lambda, seed: *seed, reps: *reps, asJSON: *asJSON,
			check: *check, compare: *compare, heavytail: *heavytail,
			numNodes: *numNodes, numFiles: *numFiles, dd: *dd, rows: *rows,
			pace: *pace, restartDelay: *restartDelay,
			arrival: *arrival, duration: *serviceDur, epoch: *epochFlag,
			maxQueue: *maxQueue, interactive: *interactive,
			sloBatch: *sloBatch, sloInteractive: *sloInter, overloadP95: *overloadP95,
			mpl:      *mpl,
			capacity: *capacity, capLo: *capLo, capHi: *capHi, capTol: *capTol,
			ledger: *sliLedger, specPath: *sloSpec,
			serveAddr: *serveAddr, linger: *serveLinger,
		}))
	}

	if *compare {
		out, err := batchsched.SimVsLiveReport(*seed, *txns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	switch *backend {
	case "sim":
	case "live":
		lcfg := batchsched.DefaultLiveConfig()
		lcfg.NumNodes = *numNodes
		lcfg.NumFiles = *numFiles
		lcfg.DD = *dd
		lcfg.MPL = *mpl
		if *rows > 0 {
			lcfg.RowsPerObject = *rows
		}
		lcfg.PacePerObject = *pace
		// A small jittered restart delay breaks plain-2PL abort/re-acquire
		// livelock on wall clocks; -restartdelay (seconds) overrides it.
		lcfg.RestartDelay = 2 * time.Millisecond
		lcfg.RestartJitter = true
		if *restartDelay > 0 {
			lcfg.RestartDelay = time.Duration(*restartDelay * float64(time.Second))
		}
		batch := batchsched.GenerateBatch(gen, *seed, *txns)
		var (
			sum batchsched.Summary
			err error
		)
		if *serveAddr != "" || *sliLedger != "" {
			sum, err = runLiveTelemetry(lcfg, *schedName, params, batch, telemetryOpts{
				serveAddr: *serveAddr, linger: *serveLinger,
				ledger: *sliLedger, specPath: *sloSpec,
				check: *check, wl: *wl, seed: *seed,
			})
		} else {
			run := batchsched.RunLiveBatch
			if *check {
				run = batchsched.RunLiveChecked
			}
			sum, err = run(lcfg, *schedName, params, batch)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(sum); err != nil {
				fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Printf("backend          live (%d nodes, %d rows/object, pace %v)\n",
			lcfg.NumNodes, lcfg.RowsPerObject, lcfg.PacePerObject)
		fmt.Printf("scheduler        %s\n", *schedName)
		fmt.Printf("workload         %s closed batch of %d (numfiles=%d, dd=%d)\n", *wl, *txns, *numFiles, *dd)
		fmt.Printf("completions      %d of %d submitted\n", sum.Completions, *txns)
		fmt.Printf("makespan         %.3f s wall  (throughput %.1f TPS)\n", sum.Window.Seconds(), sum.TPS)
		fmt.Printf("mean resp. time  %.3f s (p50 %.3f, p90 %.3f, max %.3f)\n",
			sum.MeanRT.Seconds(), sum.P50RT.Seconds(), sum.P90RT.Seconds(), sum.MaxRT.Seconds())
		fmt.Printf("blocks %d  delays %d  admission rejects %d  restarts %d\n",
			sum.Blocks, sum.Delays, sum.AdmissionRejects, sum.Restarts)
		if *check {
			fmt.Println("serializability  OK")
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "batchsim: unknown backend %q (want sim or live)\n", *backend)
		os.Exit(2)
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sum, err := batchsched.RunTraced(cfg, *schedName, params, gen, *seed, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (completions=%d, tps=%.3f)\n", *traceFile, sum.Completions, sum.TPS)
		return
	}

	var (
		sum  batchsched.Summary
		ci   batchsched.CI
		err  error
		st   batchsched.RunStats
		wall time.Duration
	)
	if *traceOut != "" || *metricsOut != "" || *auditOut != "" || *reportOut != "" {
		// The observability exporters describe one run; replications and
		// -check are incompatible with them.
		ob := batchsched.NewObs()
		ob.SetSampleInterval(batchsched.Time(*metricsInterval * float64(batchsched.Millisecond)))
		sum, err = batchsched.RunObserved(cfg, *schedName, params, gen, *seed, ob)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
		title := fmt.Sprintf("%s %s lambda=%g seed=%d", *schedName, *wl, *lambda, *seed)
		writeObs := func(path string, fn func(io.Writer) error) {
			if path == "" {
				return
			}
			f, ferr := os.Create(path)
			if ferr == nil {
				ferr = fn(f)
				if cerr := f.Close(); ferr == nil {
					ferr = cerr
				}
			}
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "batchsim: %v\n", ferr)
				os.Exit(1)
			}
		}
		writeObs(*traceOut, ob.WriteChromeTrace)
		writeObs(*metricsOut, ob.WriteMetricsCSV)
		writeObs(*auditOut, ob.WriteAuditJSONL)
		writeObs(*reportOut, func(w io.Writer) error { return ob.WriteHTMLReport(w, title) })
	} else if *check {
		// Serializability verification runs per replication.
		var sums []batchsched.Summary
		for r := 0; r < *reps; r++ {
			one, cerr := batchsched.RunChecked(cfg, *schedName, params, gen, *seed+int64(r))
			if cerr != nil {
				fmt.Fprintf(os.Stderr, "batchsim: %v\n", cerr)
				os.Exit(1)
			}
			sums = append(sums, one)
		}
		sum, ci = metrics.AverageWithCI(sums)
	} else if *progress {
		// Same replication loop as RunReplicated, but keeping the engine's
		// own execution stats and the wall clock for the report below.
		start := time.Now()
		var sums []batchsched.Summary
		for r := 0; r < *reps; r++ {
			one, stOne, rerr := batchsched.RunWithStats(cfg, *schedName, params, gen, *seed+int64(r))
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "batchsim: %v\n", rerr)
				os.Exit(1)
			}
			st.Events += stOne.Events
			st.Waves += stOne.Waves
			st.WaveMembers += stOne.WaveMembers
			st.ShardUtilization = stOne.ShardUtilization
			sums = append(sums, one)
		}
		wall = time.Since(start)
		sum, ci = metrics.AverageWithCI(sums)
	} else {
		sum, ci, err = batchsched.RunReplicated(cfg, *schedName, params, gen, *seed, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *sliLedger != "" {
		if lerr := appendSimLedger(*sliLedger, *sloSpec, *schedName, *wl, *lambda, *seed, sum); lerr != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", lerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "batchsim: SLI ledger line appended to %s\n", *sliLedger)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("scheduler        %s\n", *schedName)
	fmt.Printf("workload         %s (numfiles=%d, dd=%d, sigma=%g)\n", *wl, cfg.NumFiles, cfg.DD, *sigma)
	fmt.Printf("arrival rate     %.3f TPS over %.0fs x %d rep(s)\n", *lambda, cfg.Duration.Seconds(), *reps)
	fmt.Printf("completions      %d of %d arrivals\n", sum.Completions, sum.Arrivals)
	fmt.Printf("throughput       %.3f TPS\n", sum.TPS)
	if *reps > 1 {
		fmt.Printf("mean resp. time  %.1f ± %.1f s (95%% CI over %d reps; p50 %.1f, p90 %.1f, max %.1f)\n",
			sum.MeanRT.Seconds(), ci.MeanRT.Seconds(), *reps,
			sum.P50RT.Seconds(), sum.P90RT.Seconds(), sum.MaxRT.Seconds())
	} else {
		fmt.Printf("mean resp. time  %.1f s (p50 %.1f, p90 %.1f, max %.1f)\n",
			sum.MeanRT.Seconds(), sum.P50RT.Seconds(), sum.P90RT.Seconds(), sum.MaxRT.Seconds())
	}
	fmt.Printf("DPN utilization  %.1f%%   CN utilization %.1f%%\n",
		100*sum.DPNUtilization, 100*sum.CNUtilization)
	fmt.Printf("blocks %d  delays %d  admission rejects %d  restarts %d\n",
		sum.Blocks, sum.Delays, sum.AdmissionRejects, sum.Restarts)
	if cfg.Faults.Enabled() {
		fmt.Printf("faults           crashes %d (aborts %d)  stragglers %d  msg lost %d (retries %d, aborts %d)\n",
			sum.Crashes, sum.CrashAborts, sum.StragglerEpisodes, sum.MsgLost, sum.MsgRetries, sum.MsgAborts)
		fmt.Printf("availability     %.2f%%  degraded %.0fs (%.3f TPS inside)\n",
			100*sum.Availability(), sum.DegradedTime.Seconds(), sum.DegradedTPS)
	}
	if *progress {
		evPerSec := 0.0
		if wall > 0 {
			evPerSec = float64(st.Events) / wall.Seconds()
		}
		fmt.Printf("engine           %d events in %.3fs wall (%.0f events/sec, parallel-run=%d)\n",
			st.Events, wall.Seconds(), evPerSec, *parallel)
		if st.Waves > 0 {
			fmt.Printf("safe waves       %d waves, %d members (mean width %.2f)\n",
				st.Waves, st.WaveMembers, float64(st.WaveMembers)/float64(st.Waves))
		}
		// Per-shard busy fractions of the virtual span (last replication):
		// a shard stuck near zero is being starved of lookahead.
		fmt.Printf("shard util      ")
		for _, u := range st.ShardUtilization {
			fmt.Printf(" %.2f", u)
		}
		fmt.Println()
	}
	if *check {
		fmt.Println("serializability  OK")
	}
}
