package main

import "testing"

func TestValidateTelemetryFlags(t *testing.T) {
	cases := []struct {
		name                 string
		serve, ledger, backd string
		compare              bool
		wantErr              bool
	}{
		{name: "no telemetry", backd: "sim"},
		{name: "serve on live", serve: ":0", backd: "live"},
		{name: "serve on sim rejected", serve: ":0", backd: "sim", wantErr: true},
		{name: "serve with compare rejected", serve: ":0", backd: "live", compare: true, wantErr: true},
		{name: "ledger on sim", ledger: "sli.jsonl", backd: "sim"},
		{name: "ledger on live", ledger: "sli.jsonl", backd: "live"},
		{name: "ledger with compare rejected", ledger: "sli.jsonl", backd: "sim", compare: true, wantErr: true},
		{name: "serve and ledger on live", serve: ":0", ledger: "sli.jsonl", backd: "live"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateTelemetryFlags(c.serve, c.ledger, c.backd, c.compare)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateTelemetryFlags(%q, %q, %q, %v) = %v, wantErr %v",
					c.serve, c.ledger, c.backd, c.compare, err, c.wantErr)
			}
		})
	}
}
