package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"batchsched"
	"batchsched/internal/admit"
	"batchsched/internal/experiments"
	"batchsched/internal/metrics"
	"batchsched/internal/obs/serve"
	"batchsched/internal/obs/sli"
	"batchsched/internal/sim"
)

// serviceRun carries every flag the streaming-admission mode consumes; main
// assembles it and exits with runServiceMode's code.
type serviceRun struct {
	backend string
	sched   string
	params  batchsched.Params
	gen     batchsched.Generator
	cfg     batchsched.Config // sim-backend machine config (duration, files, DD, ...)

	wl        string
	lambda    float64
	seed      int64
	reps      int
	asJSON    bool
	check     bool
	compare   bool
	heavytail float64

	// Live-backend shape.
	numNodes, numFiles, dd, rows int
	pace                         time.Duration
	restartDelay                 float64

	// Policy knobs (negative durations = keep the policy default).
	arrival        string
	duration       time.Duration // live wall-clock arrival span
	epoch          time.Duration
	maxQueue       int
	interactive    float64
	sloBatch       time.Duration
	sloInteractive time.Duration
	overloadP95    time.Duration
	mpl            int

	capacity             bool
	capLo, capHi, capTol float64

	ledger, specPath string
	serveAddr        string
	linger           time.Duration
}

// simDur converts a wall flag duration onto the policy clock (sim.Time is
// microseconds on both backends).
func simDur(d time.Duration) sim.Time { return sim.Time(d / time.Microsecond) }

// policy assembles the admission policy from the flags over the default.
// -mpl sizes the admission window here (the open-system analogue of the
// C2PL+M admission limit), matching the sweep grid's reinterpretation.
func (f serviceRun) policy() (batchsched.AdmitPolicy, error) {
	pol := batchsched.DefaultAdmitPolicy()
	if f.mpl > 0 {
		pol.MPL = f.mpl
	}
	if f.epoch > 0 {
		pol.Epoch = simDur(f.epoch)
	}
	if f.maxQueue > 0 {
		pol.MaxQueue = f.maxQueue
	}
	if f.interactive >= 0 {
		pol.InteractiveFraction = f.interactive
	}
	if f.sloBatch >= 0 {
		pol.QueueSLO[admit.Batch] = simDur(f.sloBatch)
	}
	if f.sloInteractive >= 0 {
		pol.QueueSLO[admit.Interactive] = simDur(f.sloInteractive)
	}
	if f.overloadP95 >= 0 {
		pol.OverloadP95 = simDur(f.overloadP95)
	}
	return pol, pol.Validate()
}

// serviceSpec resolves the SLO spec for service runs: the open-stream
// default (with the shed-rate ceiling) unless -slo-spec overrides it.
func serviceSpec(path string) (sli.Spec, error) {
	if path == "" {
		return sli.ServiceDefault(), nil
	}
	return sli.Load(path)
}

// runServiceMode dispatches -service to the chosen backend and returns the
// process exit code.
func runServiceMode(f serviceRun) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
		return 1
	}
	switch {
	case f.compare:
		return fail(fmt.Errorf("-service is incompatible with -compare"))
	case f.check:
		return fail(fmt.Errorf("-service does not support -check (evictions abort transactions mid-history)"))
	case f.lambda <= 0:
		return fail(fmt.Errorf("-service needs -lambda > 0 (the offered arrival rate)"))
	case f.capacity && f.backend != "sim":
		return fail(fmt.Errorf("-capacity bisects many runs and requires -backend sim"))
	case f.capacity && f.heavytail > 0:
		return fail(fmt.Errorf("-capacity does not support -heavytail (the capacity point is workload-flag driven)"))
	}
	pol, err := f.policy()
	if err != nil {
		return fail(err)
	}
	if f.capacity {
		return runServiceCapacity(f, pol, fail)
	}
	switch f.backend {
	case "sim":
		return runServiceSim(f, pol, fail)
	case "live":
		return runServiceLive(f, pol, fail)
	default:
		return fail(fmt.Errorf("unknown backend %q (want sim or live)", f.backend))
	}
}

// runServiceSim runs the virtual-clock service: -reps replications on seeds
// seed..seed+reps-1 (fresh arrival process each — burst is stateful),
// averaged; the epoch trail and ledger lines describe the first replication.
func runServiceSim(f serviceRun, pol batchsched.AdmitPolicy, fail func(error) int) int {
	cfg := f.cfg
	cfg.Service = &pol
	cfg.MPL = 0
	cfg.ArrivalRate = f.lambda
	var epochs []batchsched.EpochStats
	var sums []batchsched.Summary
	reps := f.reps
	if reps < 1 {
		reps = 1
	}
	for r := 0; r < reps; r++ {
		arr, aerr := experiments.ArrivalProcess(f.arrival, f.lambda)
		if aerr != nil {
			return fail(aerr)
		}
		cfg.Arrivals = arr
		hook := func(batchsched.EpochStats) {}
		if r == 0 {
			hook = func(es batchsched.EpochStats) { epochs = append(epochs, es) }
		}
		sum, err := batchsched.RunService(cfg, f.sched, f.params, f.gen, f.seed+int64(r), hook)
		if err != nil {
			return fail(err)
		}
		sums = append(sums, sum)
	}
	avg, _ := metrics.AverageWithCI(sums)
	if f.ledger != "" {
		if err := appendServiceLedger(f, "sim", sums[0], epochs); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "batchsim: %d SLI ledger line(s) appended to %s\n", 1+len(epochs), f.ledger)
	}
	return printService(f, fmt.Sprintf("sim, %.0f s virtual, %d rep(s)", cfg.Duration.Seconds(), reps), avg, epochs)
}

// runServiceLive runs the wall-clock service on the live backend, with the
// /metrics//slo endpoint up for the duration when -serve is set.
func runServiceLive(f serviceRun, pol batchsched.AdmitPolicy, fail func(error) int) int {
	lcfg := batchsched.DefaultLiveConfig()
	lcfg.NumNodes = f.numNodes
	lcfg.NumFiles = f.numFiles
	lcfg.DD = f.dd
	if f.rows > 0 {
		lcfg.RowsPerObject = f.rows
	}
	lcfg.PacePerObject = f.pace
	lcfg.RestartDelay = 2 * time.Millisecond
	lcfg.RestartJitter = true
	if f.restartDelay > 0 {
		lcfg.RestartDelay = time.Duration(f.restartDelay * float64(time.Second))
	}
	lcfg.Service = &pol
	lcfg.ServiceDuration = f.duration
	b, err := batchsched.NewLiveBackend(lcfg, f.sched, f.params)
	if err != nil {
		return fail(err)
	}
	set := batchsched.NewStreamSet()
	b.SetStream(set)
	var epochs []batchsched.EpochStats
	b.SetEpochHook(func(es batchsched.EpochStats) { epochs = append(epochs, es) })

	if f.serveAddr != "" {
		srv := serve.New()
		srv.AddMetrics(func(w http.ResponseWriter) error { return set.WritePrometheus(w, b.Now()) })
		srv.SetSLO(func() any { return b.Snapshot() })
		addr, serr := srv.Start(f.serveAddr)
		if serr != nil {
			return fail(serr)
		}
		fmt.Fprintf(os.Stderr, "batchsim: telemetry on http://%s (/metrics /healthz /slo /debug/pprof)\n", addr)
		defer srv.Close()
	}

	arr, aerr := experiments.ArrivalProcess(f.arrival, f.lambda)
	if aerr != nil {
		return fail(aerr)
	}
	sum := b.RunService(f.gen, arr, f.seed)
	if err := b.Err(); err != nil {
		return fail(err)
	}
	if f.sched != "NODC" && f.sched != "OPT" {
		if v := b.Violations(); v != 0 {
			return fail(fmt.Errorf("live %s service run observed %d lock-guard violations", f.sched, v))
		}
	}
	if f.ledger != "" {
		if err := appendServiceLedger(f, "live", sum, epochs); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "batchsim: %d SLI ledger line(s) appended to %s\n", 1+len(epochs), f.ledger)
	}
	code := printService(f, fmt.Sprintf("live, %v wall, %d nodes, pace %v", f.duration, lcfg.NumNodes, lcfg.PacePerObject), sum, epochs)
	if f.serveAddr != "" && f.linger > 0 {
		fmt.Fprintf(os.Stderr, "batchsim: endpoint lingering %v for scrapers\n", f.linger)
		time.Sleep(f.linger)
	}
	return code
}

// runServiceCapacity solves sustained-TPS-at-SLO for the sim service point.
func runServiceCapacity(f serviceRun, pol batchsched.AdmitPolicy, fail func(error) int) int {
	spec, err := serviceSpec(f.specPath)
	if err != nil {
		return fail(err)
	}
	p := experiments.Point{
		Scheduler: f.sched,
		NumFiles:  f.cfg.NumFiles,
		DD:        f.cfg.DD,
		Load:      experiments.Workload(f.wl),
		Seed:      f.seed,
		Reps:      f.reps,
		Duration:  f.cfg.Duration,
		Service:   &pol,
		Arrival:   f.arrival,
	}
	res, err := experiments.ServiceCapacity(p, spec, f.reps, f.capLo, f.capHi, f.capTol)
	if err != nil {
		return fail(err)
	}
	if f.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fail(err)
		}
		return 0
	}
	fmt.Printf("scheduler             %s (%s arrivals, %s, window %d)\n", f.sched, f.arrival, f.wl, pol.MPL)
	fmt.Printf("SLO spec              %s\n", spec.Name)
	if !res.Passed {
		fmt.Printf("sustained TPS at SLO  none: even lambda=%.3f fails the SLO\n", f.capLo)
	} else {
		fmt.Printf("sustained TPS at SLO  %.3f TPS (verified at lambda=%.3f)\n", res.SustainedTPS, res.Lambda)
	}
	fmt.Printf("probes (%d):\n", len(res.Trials))
	for _, tr := range res.Trials {
		verdict := "FAIL"
		if tr.Pass {
			verdict = "pass"
		}
		fmt.Printf("  lambda=%.3f  %s  tps=%.3f  p95=%.1fs  shed=%.1f%%\n",
			tr.Lambda, verdict, tr.Measures.TPS, tr.Measures.P95RTSeconds, 100*tr.Measures.ShedRate())
	}
	return 0
}

// serviceLedgerEntries builds the run-level entry plus one per-epoch entry
// (Entry.Epoch numbered from 1), all carrying the open-stream arrival/shed
// counters the shed-rate objective evaluates.
func serviceLedgerEntries(source string, spec sli.Spec, schedName, wl string, lambda float64, seed int64,
	sum batchsched.Summary, epochs []batchsched.EpochStats) []sli.Entry {
	m := sli.FromSummary(schedName, wl, lambda, sum, 0, 0)
	m.Arrivals = float64(sum.Arrivals)
	m.Sheds = float64(sum.Sheds)
	run := sli.NewEntry(source, spec, m)
	run.Seed = seed
	entries := []sli.Entry{run}
	for _, es := range epochs {
		span := (es.End - es.Start).Seconds()
		em := sli.Measures{
			Scheduler:     schedName,
			Load:          wl,
			Lambda:        lambda,
			MeanRTSeconds: es.MeanRT.Seconds(),
			P95RTSeconds:  es.P95RT.Seconds(),
			Completions:   float64(es.Completions),
			Arrivals:      float64(es.Arrivals),
			Sheds:         float64(es.Sheds),
		}
		if span > 0 {
			em.TPS = float64(es.Completions) / span
		}
		e := sli.NewEntry(source, spec, em)
		e.Seed = seed
		e.Epoch = es.Epoch
		entries = append(entries, e)
	}
	return entries
}

// appendServiceLedger stamps the run-level entry (epoch entries stay
// unstamped, so a fixed-seed epoch trail is byte-reproducible) and appends
// everything to the JSONL ledger.
func appendServiceLedger(f serviceRun, source string, sum batchsched.Summary, epochs []batchsched.EpochStats) error {
	spec, err := serviceSpec(f.specPath)
	if err != nil {
		return err
	}
	entries := serviceLedgerEntries(source, spec, f.sched, f.wl, f.lambda, f.seed, sum, epochs)
	entries[0].Time = time.Now().UTC().Format(time.RFC3339)
	return sli.Append(f.ledger, entries...)
}

// printService renders the service summary (or its JSON) and returns the
// exit code.
func printService(f serviceRun, backendDesc string, sum batchsched.Summary, epochs []batchsched.EpochStats) int {
	if f.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "batchsim: %v\n", err)
			return 1
		}
		return 0
	}
	overloaded := 0
	for _, es := range epochs {
		if es.Overloaded {
			overloaded++
		}
	}
	drain := sum.Sheds - sum.ShedQueueFull - sum.ShedDeadline - sum.ShedOverload
	admitted := sum.Arrivals - sum.Sheds
	fmt.Printf("mode             service (%s)\n", backendDesc)
	fmt.Printf("scheduler        %s\n", f.sched)
	fmt.Printf("arrivals         %s at %.3f TPS offered (%s workload)\n", f.arrival, f.lambda, f.wl)
	fmt.Printf("offered          %d: admitted %d, shed %d (queue-full %d, deadline %d, overload %d, drain %d), evicted %d\n",
		sum.Arrivals, admitted, sum.Sheds, sum.ShedQueueFull, sum.ShedDeadline, sum.ShedOverload, drain, sum.Evictions)
	fmt.Printf("completions      %d (throughput %.3f TPS)\n", sum.Completions, sum.TPS)
	fmt.Printf("resp. time       mean %.1f s (p50 %.1f, p95 %.1f, max %.1f)\n",
		sum.MeanRT.Seconds(), sum.P50RT.Seconds(), sum.P95RT.Seconds(), sum.MaxRT.Seconds())
	fmt.Printf("epochs           %d total, %d overloaded\n", len(epochs), overloaded)
	fmt.Printf("blocks %d  delays %d  admission rejects %d  restarts %d\n",
		sum.Blocks, sum.Delays, sum.AdmissionRejects, sum.Restarts)
	return 0
}
