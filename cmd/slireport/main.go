// Command slireport reads SLI ledgers (the JSONL files batchsim -sli-ledger
// and the sweep engine write; see internal/obs/sli) from two or more
// historical runs and renders pass-rate and regression-trend tables across
// them. Ledger paths are positional, oldest first; each becomes one epoch
// labelled by its file (or parent directory) name.
//
//	slireport sweeps/jan/sli.jsonl sweeps/feb/sli.jsonl
//	slireport -csv trend.csv -html trend.html epoch1.jsonl epoch2.jsonl
//
// Exit status: 0 on success, 1 when -fail-on-regression is set and any
// scenario regressed, 2 on usage or input errors.
//
// The validation flags back the CI telemetry job and take no ledger
// arguments:
//
//	slireport -validate-ledger file.jsonl     # schema-check a ledger
//	slireport -validate-metrics file.txt      # check Prometheus text format
package main

import (
	"flag"
	"fmt"
	"os"

	"batchsched/internal/obs/sli"
	"batchsched/internal/obs/stream"
)

func main() {
	var (
		csvPath  = flag.String("csv", "", "write the per-scenario/epoch trend CSV to this file")
		htmlPath = flag.String("html", "", "write the standalone HTML report to this file")
		tolPct   = flag.Float64("tol", 5, "regression tolerance in percent (TPS loss / p95 growth)")
		failOn   = flag.Bool("fail-on-regression", false, "exit 1 when any scenario regressed")
		valLedgr = flag.String("validate-ledger", "", "validate one SLI ledger file and exit")
		valProm  = flag.String("validate-metrics", "", "validate one Prometheus text file and exit")
	)
	flag.Parse()

	if *valLedgr != "" || *valProm != "" {
		validate(*valLedgr, *valProm)
		return
	}

	paths := flag.Args()
	if len(paths) < 1 {
		fmt.Fprintln(os.Stderr, "usage: slireport [flags] ledger.jsonl [ledger.jsonl ...]  (oldest first)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	epochs, err := sli.LoadEpochs(paths)
	if err != nil {
		fatal(err)
	}
	trends := sli.Trends(epochs, *tolPct)

	sli.PassRateTable(epochs, trends).Render(os.Stdout)
	fmt.Println()
	sli.TrendTable(epochs, trends, *tolPct).Render(os.Stdout)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := sli.WriteTrendCSV(f, epochs, trends); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	if *htmlPath != "" {
		doc := sli.HTMLReport("SLI trend report", epochs, trends, *tolPct)
		if err := os.WriteFile(*htmlPath, []byte(doc), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *htmlPath)
	}

	if *failOn {
		for _, t := range trends {
			if t.Regressed {
				fmt.Fprintf(os.Stderr, "slireport: regression in %s\n", t.Scenario)
				os.Exit(1)
			}
		}
	}
}

// validate runs the CI-facing format checks and exits.
func validate(ledger, prom string) {
	check := func(path string, fn func(*os.File) error, what string) {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintf(os.Stderr, "slireport: %s %s: %v\n", what, path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s\n", path, what)
	}
	if ledger != "" {
		check(ledger, func(f *os.File) error { return sli.ValidateLedger(f) }, "SLI ledger")
	}
	if prom != "" {
		check(prom, func(f *os.File) error { return stream.ValidatePrometheus(f) }, "Prometheus text")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slireport:", err)
	os.Exit(2)
}
