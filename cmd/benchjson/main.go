// Command benchjson records `go test -bench` results as a named snapshot in
// a tracked JSON baseline (BENCH_core.json), so performance changes are
// reviewable in diffs instead of buried in CI logs.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkRun -benchtime 5x -benchmem . |
//	    go run ./cmd/benchjson -snapshot post -out BENCH_core.json
//
// It parses standard benchmark output lines (name, iterations, ns/op and —
// with -benchmem — B/op and allocs/op), merges the snapshot into the
// existing file, and whenever both a "pre" and a "post" snapshot are present
// recomputes the speedup section (time and allocation ratios pre/post).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

type snapshot struct {
	Note    string                 `json:"note,omitempty"`
	Benches map[string]benchResult `json:"benches"`
}

type speedup struct {
	Time   float64 `json:"time"`
	Allocs float64 `json:"allocs,omitempty"`
}

type baseline struct {
	Description string              `json:"description"`
	Snapshots   map[string]snapshot `json:"snapshots"`
	// Speedup maps benchmark name -> pre/post ratios (>1 means post is
	// faster / allocates less). Present only when both snapshots exist.
	Speedup map[string]speedup `json:"speedup,omitempty"`
}

func parseBench(r *bufio.Scanner) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || !strings.Contains(line, "ns/op") {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 { // strip -GOMAXPROCS
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var br benchResult
		var err error
		if br.Iterations, err = strconv.Atoi(f[1]); err != nil {
			continue
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				br.NsPerOp = v
			case "B/op":
				br.BytesPerOp = v
			case "allocs/op":
				br.AllocsPerOp = v
			}
		}
		if br.NsPerOp == 0 {
			return nil, fmt.Errorf("benchjson: no ns/op on line %q", line)
		}
		out[strings.TrimPrefix(name, "Benchmark")] = br
	}
	return out, r.Err()
}

func main() {
	name := flag.String("snapshot", "post", "snapshot name to record (e.g. pre, post)")
	note := flag.String("note", "", "free-form note stored with the snapshot")
	out := flag.String("out", "BENCH_core.json", "baseline file to update")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	benches, err := parseBench(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	bl := baseline{
		Description: "Tracked core benchmark baseline (see DESIGN.md); regenerate with cmd/benchjson.",
		Snapshots:   map[string]snapshot{},
	}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &bl); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if bl.Snapshots == nil {
		bl.Snapshots = map[string]snapshot{}
	}
	bl.Snapshots[*name] = snapshot{Note: *note, Benches: benches}

	pre, okPre := bl.Snapshots["pre"]
	post, okPost := bl.Snapshots["post"]
	if okPre && okPost {
		bl.Speedup = map[string]speedup{}
		names := make([]string, 0, len(pre.Benches))
		for n := range pre.Benches {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p, ok := post.Benches[n]
			if !ok || p.NsPerOp == 0 {
				continue
			}
			s := speedup{Time: round2(pre.Benches[n].NsPerOp / p.NsPerOp)}
			if p.AllocsPerOp > 0 {
				s.Allocs = round2(pre.Benches[n].AllocsPerOp / p.AllocsPerOp)
			}
			bl.Speedup[n] = s
		}
	}

	data, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: recorded %d benchmarks into snapshot %q of %s\n", len(benches), *name, *out)
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
