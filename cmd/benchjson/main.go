// Command benchjson records `go test -bench` results as a named snapshot in
// a tracked JSON baseline (BENCH_core.json), so performance changes are
// reviewable in diffs instead of buried in CI logs.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkRun -benchtime 5x -benchmem . |
//	    go run ./cmd/benchjson -snapshot post -out BENCH_core.json
//
// It parses standard benchmark output lines (name, iterations, ns/op and —
// with -benchmem — B/op and allocs/op), merges the snapshot into the
// existing file, and whenever both a "pre" and a "post" snapshot are present
// recomputes the speedup section (time and allocation ratios pre/post).
//
// Compare mode gates performance regressions instead of recording:
//
//	go run ./cmd/benchjson -compare -max-regress 15 BENCH_core.json new.json
//
// It diffs the two baselines' "post" snapshots benchmark by benchmark and
// exits nonzero when any shared benchmark's ns/op regressed by more than
// -max-regress percent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// EventsPerOp is the simulator's own work metric — calendar events
	// dispatched per benchmark op (b.ReportMetric(..., "events/op")) —
	// recorded so event-coalescing wins are tracked next to wall time.
	EventsPerOp float64 `json:"events_per_op,omitempty"`
	// EventsPerSecPerCore is dispatched events per wall-clock second per
	// core the run may occupy (b.ReportMetric(..., "events/sec/core")): the
	// scheduling-normalized throughput figure, so a ParallelRun engine is
	// held to beating the sequential one per core spent. Higher is better;
	// -compare treats a drop beyond -max-regress as a regression.
	EventsPerSecPerCore float64 `json:"events_per_sec_per_core,omitempty"`
	// ObsOverhead is the instrumented/bare wall-time ratio reported by
	// BenchmarkObsOverhead (b.ReportMetric(..., "obs_overhead")): 1.0 means
	// attaching the observability layer is free. -compare treats growth
	// beyond -max-regress percent as a regression, so instrumentation cost
	// creep is gated like any other slowdown.
	ObsOverhead float64 `json:"obs_overhead,omitempty"`
	// SustainedTPSAtSLO is the service-mode capacity figure reported by
	// BenchmarkSustainedTPSAtSLO (b.ReportMetric(..., "sustained_tps_at_slo")):
	// the largest open arrival rate whose run still met the default service
	// SLO. Higher is better; -compare treats a drop beyond -max-regress as a
	// regression, so open-stream capacity erosion is gated like a slowdown.
	SustainedTPSAtSLO float64 `json:"sustained_tps_at_slo,omitempty"`
	// DecisionNsPerOp is the scheduler decision latency reported by the
	// BenchmarkDecision* family (b.ReportMetric(..., "decision_ns_per_op")):
	// the wall time of one GOW/LOW lock-request decision. Lower is better;
	// -compare treats growth beyond -max-regress percent as a regression.
	DecisionNsPerOp float64 `json:"decision_ns_per_op,omitempty"`
}

type snapshot struct {
	Note    string                 `json:"note,omitempty"`
	Benches map[string]benchResult `json:"benches"`
	// GOMAXPROCS is the worker-parallelism the benchmarks ran under (parsed
	// from the standard -N benchmark-name suffix; 1 when absent) and NumCPU
	// the recording host's core count. Compare mode refuses to judge
	// core-normalized throughput (events/sec/core) across snapshots taken
	// at different GOMAXPROCS — the figures are not commensurable — and
	// says so instead of failing spuriously.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
}

type speedup struct {
	Time   float64 `json:"time"`
	Allocs float64 `json:"allocs,omitempty"`
	Events float64 `json:"events,omitempty"`
	// PerCore is post/pre events_per_sec_per_core (>1 means post pushes
	// more events through each core it occupies).
	PerCore float64 `json:"per_core,omitempty"`
	// Decision is pre/post decision_ns_per_op (>1 means post decides
	// faster).
	Decision float64 `json:"decision,omitempty"`
}

type baseline struct {
	Description string              `json:"description"`
	Snapshots   map[string]snapshot `json:"snapshots"`
	// Speedup maps benchmark name -> pre/post ratios (>1 means post is
	// faster / allocates less). Present only when both snapshots exist.
	Speedup map[string]speedup `json:"speedup,omitempty"`
}

func parseBench(r *bufio.Scanner) (map[string]benchResult, int, error) {
	out := map[string]benchResult{}
	gomaxprocs := 1 // the suffix is omitted when GOMAXPROCS is 1
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || !strings.Contains(line, "ns/op") {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 { // strip -GOMAXPROCS
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				gomaxprocs = n
			}
		}
		var br benchResult
		var err error
		if br.Iterations, err = strconv.Atoi(f[1]); err != nil {
			continue
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				br.NsPerOp = v
			case "B/op":
				br.BytesPerOp = v
			case "allocs/op":
				br.AllocsPerOp = v
			case "events/op":
				br.EventsPerOp = v
			case "events/sec/core":
				br.EventsPerSecPerCore = v
			case "obs_overhead":
				br.ObsOverhead = v
			case "sustained_tps_at_slo":
				br.SustainedTPSAtSLO = v
			case "decision_ns_per_op":
				br.DecisionNsPerOp = v
			}
		}
		if br.NsPerOp == 0 {
			return nil, 0, fmt.Errorf("benchjson: no ns/op on line %q", line)
		}
		out[strings.TrimPrefix(name, "Benchmark")] = br
	}
	return out, gomaxprocs, r.Err()
}

func main() {
	name := flag.String("snapshot", "post", "snapshot name to record (e.g. pre, post)")
	note := flag.String("note", "", "free-form note stored with the snapshot")
	out := flag.String("out", "BENCH_core.json", "baseline file to update")
	compare := flag.Bool("compare", false, "compare two baseline files (old.json new.json) instead of recording")
	maxRegress := flag.Float64("max-regress", 15, "with -compare: maximum tolerated ns/op regression, percent")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *maxRegress))
	}

	sc := bufio.NewScanner(os.Stdin)
	benches, gomaxprocs, err := parseBench(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	bl := baseline{
		Description: "Tracked core benchmark baseline (see DESIGN.md); regenerate with cmd/benchjson.",
		Snapshots:   map[string]snapshot{},
	}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &bl); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if bl.Snapshots == nil {
		bl.Snapshots = map[string]snapshot{}
	}
	bl.Snapshots[*name] = snapshot{
		Note: *note, Benches: benches,
		GOMAXPROCS: gomaxprocs, NumCPU: runtime.NumCPU(),
	}

	pre, okPre := bl.Snapshots["pre"]
	post, okPost := bl.Snapshots["post"]
	if okPre && okPost {
		bl.Speedup = map[string]speedup{}
		names := make([]string, 0, len(pre.Benches))
		for n := range pre.Benches {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p, ok := post.Benches[n]
			if !ok || p.NsPerOp == 0 {
				continue
			}
			s := speedup{Time: round2(pre.Benches[n].NsPerOp / p.NsPerOp)}
			if p.AllocsPerOp > 0 {
				s.Allocs = round2(pre.Benches[n].AllocsPerOp / p.AllocsPerOp)
			}
			if p.EventsPerOp > 0 {
				s.Events = round2(pre.Benches[n].EventsPerOp / p.EventsPerOp)
			}
			if q := pre.Benches[n].EventsPerSecPerCore; q > 0 && p.EventsPerSecPerCore > 0 {
				s.PerCore = round2(p.EventsPerSecPerCore / q)
			}
			if p.DecisionNsPerOp > 0 && pre.Benches[n].DecisionNsPerOp > 0 {
				s.Decision = round2(pre.Benches[n].DecisionNsPerOp / p.DecisionNsPerOp)
			}
			bl.Speedup[n] = s
		}
	}

	data, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: recorded %d benchmarks into snapshot %q of %s\n", len(benches), *name, *out)
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// loadBaseline reads a baseline JSON file and picks the snapshot to compare:
// "post" when present, otherwise the file's only snapshot.
func loadBaseline(path string) (snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var bl baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	if s, ok := bl.Snapshots["post"]; ok {
		return s, nil
	}
	if len(bl.Snapshots) == 1 {
		for _, s := range bl.Snapshots {
			return s, nil
		}
	}
	return snapshot{}, fmt.Errorf("%s: no \"post\" snapshot and %d snapshots to choose from", path, len(bl.Snapshots))
}

// runCompare diffs the "post" snapshots of two baseline files and returns
// the process exit code: 0 when every shared benchmark's ns/op — and, where
// both snapshots report them, events/op, events/sec/core, obs_overhead,
// sustained_tps_at_slo and decision_ns_per_op — regression stays within
// maxRegress percent, 1 otherwise. Events/op is deterministic per workload,
// so any growth there is a real coalescing loss rather than machine noise;
// events/sec/core and sustained_tps_at_slo regress by DROPPING (higher is
// better); obs_overhead and decision_ns_per_op regress by growing. The
// events/sec/core gate only runs when both snapshots were taken at the same
// GOMAXPROCS — a per-core figure from an 8-way run is not commensurable
// with one from a sequential run, so a mismatch skips that column (with a
// notice) instead of failing spuriously.
func runCompare(oldPath, newPath string, maxRegress float64) int {
	oldSnap, err := loadBaseline(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newSnap, err := loadBaseline(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	sameCores := oldSnap.GOMAXPROCS == 0 || newSnap.GOMAXPROCS == 0 ||
		oldSnap.GOMAXPROCS == newSnap.GOMAXPROCS
	if !sameCores {
		fmt.Printf("note: snapshots ran at GOMAXPROCS %d vs %d; skipping the events/sec/core gate (not commensurable per-core)\n",
			oldSnap.GOMAXPROCS, newSnap.GOMAXPROCS)
	}

	names := make([]string, 0, len(oldSnap.Benches))
	for n := range oldSnap.Benches {
		if _, ok := newSnap.Benches[n]; ok {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: the two snapshots share no benchmarks")
		return 2
	}
	sort.Strings(names)

	fmt.Printf("%-12s %14s %14s %9s %14s %14s %12s %12s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "events delta", "ev/s/core", "obs_ovh", "tps@slo", "decision")
	failed := false
	for _, n := range names {
		o, nw := oldSnap.Benches[n], newSnap.Benches[n]
		delta := (nw.NsPerOp/o.NsPerOp - 1) * 100
		mark := ""
		if delta > maxRegress {
			mark = "  REGRESSION"
			failed = true
		}
		evCol := "-"
		if o.EventsPerOp > 0 && nw.EventsPerOp > 0 {
			evDelta := (nw.EventsPerOp/o.EventsPerOp - 1) * 100
			evCol = fmt.Sprintf("%+.1f%%", evDelta)
			if evDelta > maxRegress {
				mark = "  REGRESSION"
				failed = true
			}
		}
		coreCol := "-"
		if o.EventsPerSecPerCore > 0 && nw.EventsPerSecPerCore > 0 && sameCores {
			coreDelta := (nw.EventsPerSecPerCore/o.EventsPerSecPerCore - 1) * 100
			coreCol = fmt.Sprintf("%+.1f%%", coreDelta)
			if -coreDelta > maxRegress {
				mark = "  REGRESSION"
				failed = true
			}
		}
		decCol := "-"
		if o.DecisionNsPerOp > 0 && nw.DecisionNsPerOp > 0 {
			decDelta := (nw.DecisionNsPerOp/o.DecisionNsPerOp - 1) * 100
			decCol = fmt.Sprintf("%+.1f%%", decDelta)
			if decDelta > maxRegress {
				mark = "  REGRESSION"
				failed = true
			}
		}
		obsCol := "-"
		if o.ObsOverhead > 0 && nw.ObsOverhead > 0 {
			obsDelta := (nw.ObsOverhead/o.ObsOverhead - 1) * 100
			obsCol = fmt.Sprintf("%+.1f%%", obsDelta)
			if obsDelta > maxRegress {
				mark = "  REGRESSION"
				failed = true
			}
		}
		tpsCol := "-"
		if o.SustainedTPSAtSLO > 0 && nw.SustainedTPSAtSLO > 0 {
			tpsDelta := (nw.SustainedTPSAtSLO/o.SustainedTPSAtSLO - 1) * 100
			tpsCol = fmt.Sprintf("%+.1f%%", tpsDelta)
			if -tpsDelta > maxRegress {
				mark = "  REGRESSION"
				failed = true
			}
		}
		fmt.Printf("%-12s %14.0f %14.0f %+8.1f%% %14s %14s %12s %12s %12s%s\n", n, o.NsPerOp, nw.NsPerOp, delta, evCol, coreCol, obsCol, tpsCol, decCol, mark)
	}
	if failed {
		fmt.Printf("FAIL: at least one benchmark regressed more than %.1f%% in ns/op, events/op, events/sec/core, obs_overhead, or decision_ns_per_op\n", maxRegress)
		return 1
	}
	fmt.Printf("OK: all %d shared benchmarks within %.1f%% of baseline\n", len(names), maxRegress)
	return 0
}
