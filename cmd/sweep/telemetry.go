package main

import (
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"batchsched/internal/metrics"
	"batchsched/internal/obs/serve"
	"batchsched/internal/obs/sli"
	"batchsched/internal/obs/stream"
	"batchsched/internal/sim"
	"batchsched/internal/sweep"
)

// sweepTelemetry is the sweep engine's -serve surface: streaming
// instruments over cell progress and worker activity, rendered as
// Prometheus text on /metrics, with the last engine Progress snapshot (and
// the busy-worker count) as JSON on /slo.
type sweepTelemetry struct {
	start time.Time
	set   *stream.Set
	srv   *serve.Server

	unitsRate *stream.Rate
	unitsDone *stream.Gauge
	unitsTot  *stream.Gauge
	resumed   *stream.Gauge
	busy      atomic.Int64
	unitSecs  *stream.Sketch

	mu   sync.Mutex
	last progressSnapshot
}

// progressSnapshot is the /slo payload: the engine's Progress fields plus
// the worker-pool state.
type progressSnapshot struct {
	Done           int     `json:"done"`
	Total          int     `json:"total"`
	Resumed        int     `json:"resumed"`
	UnitsPerSec    float64 `json:"unitsPerSec"`
	ETASeconds     float64 `json:"etaSeconds"`
	VirtualPerWall float64 `json:"virtualPerWall"`
	BusyWorkers    int64   `json:"busyWorkers"`
}

func newSweepTelemetry(totalUnits int) *sweepTelemetry {
	t := &sweepTelemetry{start: time.Now(), set: stream.NewSet()}
	t.unitsRate = t.set.Rate("sweep_units", "Completed (cell, replication) units.", 30*time.Second, time.Second)
	t.unitsDone = t.set.Gauge("sweep_units_done", "Units completed so far, including resumed ones.")
	t.unitsTot = t.set.Gauge("sweep_units_total_planned", "Units the sweep will run in total.")
	t.resumed = t.set.Gauge("sweep_units_resumed", "Units skipped by checkpoint resume.")
	t.set.GaugeFunc("sweep_workers_busy", "Worker goroutines currently executing a unit.",
		func() float64 { return float64(t.busy.Load()) })
	t.unitSecs = t.set.Sketch("sweep_unit_seconds", "Wall-clock duration of one executed unit in seconds.")
	t.unitsTot.Set(int64(totalUnits))
	return t
}

// now maps wall time since telemetry start onto the stream clock.
func (t *sweepTelemetry) now() sim.Time {
	return sim.Time(time.Since(t.start) / time.Microsecond)
}

// wrapRun instruments a RunFunc with worker-activity accounting: the
// busy-worker gauge and the per-unit wall-duration sketch. The wrapped
// function runs on the engine's worker goroutines; everything it touches is
// atomic.
func (t *sweepTelemetry) wrapRun(run sweep.RunFunc) sweep.RunFunc {
	return func(c sweep.Cell, seed int64) (metrics.Summary, error) {
		t.busy.Add(1)
		t0 := time.Now()
		sum, err := run(c, seed)
		t.unitSecs.Observe(time.Since(t0).Seconds())
		t.busy.Add(-1)
		return sum, err
	}
}

// onProgress records the engine's progress callback (already serialized by
// the engine's mutex) into gauges and the /slo snapshot.
func (t *sweepTelemetry) onProgress(p sweep.Progress) {
	t.unitsRate.Add(t.now(), 1)
	t.unitsDone.Set(int64(p.Done))
	t.resumed.Set(int64(p.Resumed))
	t.mu.Lock()
	t.last = progressSnapshot{
		Done: p.Done, Total: p.Total, Resumed: p.Resumed,
		UnitsPerSec: round3(p.UnitsPerSec), ETASeconds: round3(p.ETASeconds),
		VirtualPerWall: round3(p.VirtualPerWall),
	}
	t.mu.Unlock()
}

func round3(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1000) / 1000
}

// snapshot returns the /slo payload.
func (t *sweepTelemetry) snapshot() progressSnapshot {
	t.mu.Lock()
	s := t.last
	t.mu.Unlock()
	s.BusyWorkers = t.busy.Load()
	return s
}

// serveOn starts the HTTP endpoint and prints the scrape URL.
func (t *sweepTelemetry) serveOn(addr string) error {
	t.srv = serve.New()
	t.srv.AddMetrics(func(w http.ResponseWriter) error { return t.set.WritePrometheus(w, t.now()) })
	t.srv.SetSLO(func() any { return t.snapshot() })
	bound, err := t.srv.Start(addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: telemetry on http://%s (/metrics /healthz /slo /debug/pprof)\n", bound)
	return nil
}

func (t *sweepTelemetry) close() {
	if t.srv != nil {
		t.srv.Close()
	}
}

// writeSLILedger evaluates every aggregated cell against the SLO spec and
// writes the sweep's sli.jsonl: one stable-schema line per cell
// (replication means as the measures), no timestamps, so two runs of the
// same sweep produce byte-identical ledgers.
func writeSLILedger(path, specPath, sweepName string, aggs []sweep.Agg) error {
	spec := sli.Default()
	if specPath != "" {
		var err error
		if spec, err = sli.Load(specPath); err != nil {
			return err
		}
	}
	entries := make([]sli.Entry, 0, len(aggs))
	for _, a := range aggs {
		m := sli.Measures{
			Scheduler:     a.Cell.Scheduler,
			Load:          a.Cell.Load,
			Lambda:        a.Cell.Lambda,
			TPS:           a.TPS.Mean,
			MeanRTSeconds: a.MeanRTSeconds.Mean,
			P95RTSeconds:  a.P95RTSeconds.Mean,
			Completions:   a.Completions.Mean,
			Restarts:      a.Restarts.Mean,
		}
		if a.Arrivals != nil && a.Sheds != nil {
			// Service-mode cells carry the open-stream counters so the
			// shed-rate objective has teeth in the ledger.
			m.Arrivals, m.Sheds = a.Arrivals.Mean, a.Sheds.Mean
		}
		e := sli.NewEntry("sweep", spec, m)
		e.Sweep = sweepName
		e.CellKey = a.Cell.Key()
		e.Reps = a.Reps
		entries = append(entries, e)
	}
	return sli.WriteLedger(path, entries)
}
