// Command sweep runs a declarative parameter sweep over the simulator:
// a grid of (scheduler, lambda, NumFiles, DD, sigma, MPL, K, MTBF) cells
// with R seed replications each, executed on a bounded worker pool with
// checkpoint/resume, and aggregated into mean/CI tables.
//
// The grid comes from a paper experiment, a JSON spec file, or flags:
//
//	sweep -exp exp1 -reps 5 -out out/exp1        # replicated Experiment 1
//	sweep -spec my.json -out out/my -progress    # custom spec with progress
//	sweep -schedulers LOW,GOW -lambdas 0.4,0.8,1.2 -reps 3 -out out/ad-hoc
//	sweep -exp exp1 -out out/exp1 -resume        # pick up a killed run
//
// The output directory receives checkpoint.jsonl (streamed as cells
// finish), results.jsonl (canonical order), results.csv and summary.json
// (written atomically at the end); the aggregate table prints to stdout.
// Replication r of each cell runs on an independent RNG substream derived
// from the root seed and the cell's parameter key, so results do not
// depend on worker scheduling or on how many times the sweep was resumed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"batchsched/internal/experiments"
	"batchsched/internal/sweep"
)

func main() {
	var (
		expID     = flag.String("exp", "", "paper experiment grid (exp1, exp2, exp3, exp4)")
		specPath  = flag.String("spec", "", "JSON sweep spec file (see internal/sweep.Spec)")
		outDir    = flag.String("out", "sweep-out", "output directory")
		resume    = flag.Bool("resume", false, "resume from the output directory's checkpoint")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		runWorker = flag.Int("run-workers", 0, "intra-run wave workers per unit (sharded-calendar engine; the -workers budget is split between cells and runs)")
		progress  = flag.Bool("progress", false, "print live progress (units/sec, ETA, virtual/wall ratio)")
		reps      = flag.Int("reps", 0, "replications per cell (0 = spec's, default 1)")
		seed      = flag.Int64("seed", 0, "root seed (0 = spec's, default 1)")
		duration  = flag.Float64("duration", 0, "simulated seconds per run (0 = spec's, default paper's 2000)")
		haltAfter = flag.Int("halt-after", 0, "stop cleanly after N newly executed units (0 = run all; for resume testing)")

		schedulers = flag.String("schedulers", "", "comma-separated scheduler grid (flag-built specs)")
		lambdas    = flag.String("lambdas", "", "comma-separated arrival-rate grid")
		numFiles   = flag.String("numfiles", "", "comma-separated database-size grid")
		dds        = flag.String("dd", "", "comma-separated declustering-degree grid")
		sigmas     = flag.String("sigmas", "", "comma-separated cost-error sigma grid")
		mpls       = flag.String("mpl", "", "comma-separated C2PL+M admission-limit grid")
		ks         = flag.String("k", "", "comma-separated LOW conflict-bound grid")
		mtbfs      = flag.String("mtbf", "", "comma-separated per-node MTBF grid in seconds")
		load       = flag.String("load", "", "workload (exp1 or exp2; flag-built specs)")

		serveAddr = flag.String("serve", "", "serve sweep telemetry at this address (host:port; :0 picks a port): /metrics, /healthz, /slo, /debug/pprof")
		sloSpec   = flag.String("slo-spec", "", "JSON SLO spec file for the sli.jsonl ledger (empty = built-in default spec)")
	)
	flag.Parse()

	spec, err := buildSpec(specFlags{
		exp: *expID, path: *specPath, load: *load,
		schedulers: *schedulers, lambdas: *lambdas, numFiles: *numFiles,
		dds: *dds, sigmas: *sigmas, mpls: *mpls, ks: *ks, mtbfs: *mtbfs,
	})
	if err != nil {
		fatal(err)
	}
	if *reps > 0 {
		spec.Reps = *reps
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *duration > 0 {
		spec.DurationSeconds = *duration
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := sweep.Options{
		Workers:    *workers,
		RunWorkers: *runWorker,
		Checkpoint: filepath.Join(*outDir, "checkpoint.jsonl"),
		Resume:     *resume,
		HaltAfter:  *haltAfter,
	}
	if *progress {
		opt.OnProgress = printProgress
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "sweep %s: %d cells x %d reps = %d units\n",
		spec.Norm().Name, len(spec.Cells()), spec.Norm().Reps, spec.NumUnits())
	runFn := experiments.RunCell
	if *runWorker > 0 {
		runFn = experiments.RunCellParallel(*runWorker)
	}
	if *serveAddr != "" {
		tel := newSweepTelemetry(spec.NumUnits())
		if err := tel.serveOn(*serveAddr); err != nil {
			fatal(err)
		}
		defer tel.close()
		runFn = tel.wrapRun(runFn)
		printed := opt.OnProgress
		opt.OnProgress = func(p sweep.Progress) {
			tel.onProgress(p)
			if printed != nil {
				printed(p)
			}
		}
	}
	res, err := sweep.Run(ctx, spec, runFn, opt)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		// An interrupt is a clean stop: the checkpoint has everything that
		// finished and -resume continues from it.
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "sweep: interrupted with %d/%d units done; rerun with -resume\n",
				len(res.Records), spec.NumUnits())
			os.Exit(130)
		}
		fatal(err)
	}

	if err := writeOutputs(*outDir, res); err != nil {
		fatal(err)
	}
	if !res.Halted {
		if err := writeSLILedger(filepath.Join(*outDir, "sli.jsonl"), *sloSpec,
			res.Spec.Norm().Name, res.Aggregates()); err != nil {
			fatal(err)
		}
	}
	if res.Halted {
		fmt.Fprintf(os.Stderr, "sweep: halted after %d new units (%d/%d done); rerun with -resume\n",
			res.Executed, len(res.Records), spec.NumUnits())
		return
	}
	fmt.Println(sweep.Table(res.Spec, res.Aggregates()).String())
	fmt.Fprintf(os.Stderr, "sweep: %d units (%d resumed) in %s -> %s\n",
		len(res.Records), res.Resumed, time.Since(start).Round(time.Millisecond), *outDir)
}

type specFlags struct {
	exp, path, load                                             string
	schedulers, lambdas, numFiles, dds, sigmas, mpls, ks, mtbfs string
}

// buildSpec resolves the three spec sources in precedence order: -exp
// (paper grids), -spec (JSON file), then flag-built grids. Grid flags also
// override the chosen base spec's dimensions.
func buildSpec(f specFlags) (sweep.Spec, error) {
	var spec sweep.Spec
	switch {
	case f.exp != "" && f.path != "":
		return spec, fmt.Errorf("use -exp or -spec, not both")
	case f.exp != "":
		s, ok := experiments.PaperSpec(f.exp, experiments.Options{})
		if !ok {
			return spec, fmt.Errorf("unknown experiment %q (want exp1..exp4)", f.exp)
		}
		spec = s
	case f.path != "":
		s, err := sweep.LoadSpec(f.path)
		if err != nil {
			return spec, err
		}
		spec = s
	default:
		spec.Name = "ad-hoc"
	}
	if f.load != "" {
		spec.Load = f.load
	}
	var err error
	setStrings(&spec.Schedulers, f.schedulers)
	setFloats(&spec.Lambdas, f.lambdas, &err)
	setInts(&spec.NumFiles, f.numFiles, &err)
	setInts(&spec.DDs, f.dds, &err)
	setFloats(&spec.Sigmas, f.sigmas, &err)
	setInts(&spec.MPLs, f.mpls, &err)
	setInts(&spec.Ks, f.ks, &err)
	setFloats(&spec.MTBFSeconds, f.mtbfs, &err)
	return spec, err
}

func setStrings(dst *[]string, csv string) {
	if csv == "" {
		return
	}
	var out []string
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	*dst = out
}

func setFloats(dst *[]float64, csv string, err *error) {
	if csv == "" || *err != nil {
		return
	}
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, e := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if e != nil {
			*err = fmt.Errorf("bad number %q in %q", s, csv)
			return
		}
		out = append(out, v)
	}
	*dst = out
}

func setInts(dst *[]int, csv string, err *error) {
	if csv == "" || *err != nil {
		return
	}
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, e := strconv.Atoi(strings.TrimSpace(s))
		if e != nil {
			*err = fmt.Errorf("bad integer %q in %q", s, csv)
			return
		}
		out = append(out, v)
	}
	*dst = out
}

// writeOutputs renders the canonical artifacts: results.jsonl, results.csv
// and summary.json, each written atomically.
func writeOutputs(dir string, res *sweep.Result) error {
	if err := sweep.WriteJSONL(filepath.Join(dir, "results.jsonl"), res.Records); err != nil {
		return err
	}
	aggs := res.Aggregates()
	f, err := os.CreateTemp(dir, "results-*.csv")
	if err != nil {
		return err
	}
	if err := sweep.WriteCSV(f, aggs); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), filepath.Join(dir, "results.csv")); err != nil {
		os.Remove(f.Name())
		return err
	}
	return sweep.WriteSummary(filepath.Join(dir, "summary.json"), res.Spec, aggs)
}

func printProgress(p sweep.Progress) {
	eta := time.Duration(p.ETASeconds * float64(time.Second)).Round(time.Second)
	fmt.Fprintf(os.Stderr, "\r%d/%d units (%d resumed)  %.2f units/s  ETA %s  virtual/wall %.0fx   ",
		p.Done, p.Total, p.Resumed, p.UnitsPerSec, eta, p.VirtualPerWall)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(2)
}
