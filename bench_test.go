package batchsched

import (
	"testing"

	"batchsched/internal/experiments"
	"batchsched/internal/sim"
)

// Per-artifact benchmarks. Each iteration regenerates one of the paper's
// tables or figures at a reduced scale (100-second windows, coarse solver)
// so that `go test -bench .` finishes in minutes; cmd/paperbench regenerates
// them at the paper's full 2,000,000-ms scale.

func benchOptions() experiments.Options {
	return experiments.Options{
		Duration:  100_000 * sim.Millisecond,
		SolverTol: 0.1,
		Seed:      1,
	}
}

func benchArtifact(b *testing.B, id string) {
	b.Helper()
	a, ok := experiments.FindArtifact(id)
	if !ok {
		b.Fatalf("unknown artifact %q", id)
	}
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := a.Run(o)
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8 (arrival rate vs response time, 6
// schedulers).
func BenchmarkFig8(b *testing.B) { benchArtifact(b, "fig8") }

// BenchmarkTable2 regenerates Table 2 (NumFiles vs throughput at RT=70s).
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkFig9 regenerates Fig. 9 (declustering vs throughput at RT=70s).
func BenchmarkFig9(b *testing.B) { benchArtifact(b, "fig9") }

// BenchmarkTable3 regenerates Table 3 (declustering vs response time at
// 1.2 TPS, C2PL+M at its best admission limit).
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "table3") }

// BenchmarkFig10 regenerates Fig. 10 (declustering vs response-time
// speedup).
func BenchmarkFig10(b *testing.B) { benchArtifact(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (arrival rate vs speedup at DD=4).
func BenchmarkFig11(b *testing.B) { benchArtifact(b, "fig11") }

// BenchmarkTable4 regenerates Table 4 (Experiment 2 throughput and response
// time).
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "table4") }

// BenchmarkFig12 regenerates Fig. 12 (Experiment 2 declustering vs
// speedup).
func BenchmarkFig12(b *testing.B) { benchArtifact(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13 (estimation error vs throughput).
func BenchmarkFig13(b *testing.B) { benchArtifact(b, "fig13") }

// BenchmarkTable5 regenerates Table 5 (sensitivity degradation ratios).
func BenchmarkTable5(b *testing.B) { benchArtifact(b, "table5") }

// Engine-level benchmarks: the cost of one full simulated run per
// scheduler, at the workload and load of Fig. 8's mid-range.

func benchOneRun(b *testing.B, scheduler string, lambda float64) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.ArrivalRate = lambda
	cfg.Duration = 200_000 * Millisecond
	gen := NewExp1Workload(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, err := Run(cfg, scheduler, DefaultParams(), gen, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if sum.Completions == 0 {
			b.Fatal("no completions")
		}
	}
}

// BenchmarkRunNODC measures simulator throughput with no concurrency
// control at all (pure machine model).
func BenchmarkRunNODC(b *testing.B) { benchOneRun(b, "NODC", 0.8) }

// BenchmarkRunASL measures a run under atomic static locking.
func BenchmarkRunASL(b *testing.B) { benchOneRun(b, "ASL", 0.6) }

// BenchmarkRunGOW measures a run under the chain-form WTPG scheduler.
func BenchmarkRunGOW(b *testing.B) { benchOneRun(b, "GOW", 0.6) }

// BenchmarkRunLOW measures a run under the K-conflict WTPG scheduler.
func BenchmarkRunLOW(b *testing.B) { benchOneRun(b, "LOW", 0.6) }

// BenchmarkRunC2PL measures a run under cautious two-phase locking.
func BenchmarkRunC2PL(b *testing.B) { benchOneRun(b, "C2PL", 0.3) }

// BenchmarkRunOPT measures a run under optimistic locking (includes
// restart churn).
func BenchmarkRunOPT(b *testing.B) { benchOneRun(b, "OPT", 0.2) }
