package batchsched

import (
	"os"
	"strconv"
	"testing"
	"time"

	"batchsched/internal/experiments"
	"batchsched/internal/machine"
	"batchsched/internal/model"
	"batchsched/internal/obs/sli"
	"batchsched/internal/pool"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

// Per-artifact benchmarks. Each iteration regenerates one of the paper's
// tables or figures at a reduced scale (100-second windows, coarse solver)
// so that `go test -bench .` finishes in minutes; cmd/paperbench regenerates
// them at the paper's full 2,000,000-ms scale.

func benchOptions() experiments.Options {
	return experiments.Options{
		Duration:  100_000 * sim.Millisecond,
		SolverTol: 0.1,
		Seed:      1,
	}
}

func benchArtifact(b *testing.B, id string) {
	b.Helper()
	a, ok := experiments.FindArtifact(id)
	if !ok {
		b.Fatalf("unknown artifact %q", id)
	}
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := a.Run(o)
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8 (arrival rate vs response time, 6
// schedulers).
func BenchmarkFig8(b *testing.B) { benchArtifact(b, "fig8") }

// BenchmarkTable2 regenerates Table 2 (NumFiles vs throughput at RT=70s).
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkFig9 regenerates Fig. 9 (declustering vs throughput at RT=70s).
func BenchmarkFig9(b *testing.B) { benchArtifact(b, "fig9") }

// BenchmarkTable3 regenerates Table 3 (declustering vs response time at
// 1.2 TPS, C2PL+M at its best admission limit).
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "table3") }

// BenchmarkFig10 regenerates Fig. 10 (declustering vs response-time
// speedup).
func BenchmarkFig10(b *testing.B) { benchArtifact(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (arrival rate vs speedup at DD=4).
func BenchmarkFig11(b *testing.B) { benchArtifact(b, "fig11") }

// BenchmarkTable4 regenerates Table 4 (Experiment 2 throughput and response
// time).
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "table4") }

// BenchmarkFig12 regenerates Fig. 12 (Experiment 2 declustering vs
// speedup).
func BenchmarkFig12(b *testing.B) { benchArtifact(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13 (estimation error vs throughput).
func BenchmarkFig13(b *testing.B) { benchArtifact(b, "fig13") }

// BenchmarkTable5 regenerates Table 5 (sensitivity degradation ratios).
func BenchmarkTable5(b *testing.B) { benchArtifact(b, "table5") }

// Engine-level benchmarks: the cost of one full simulated run per scheduler
// on the fully declustered DD=16 machine under the whole-file batch-scan
// workload (32-object files) — the configuration where each cohort is sliced
// into the most round-robin quanta and the DPN service engine dominates wall
// time.
//
// Each run also reports events/op, the calendar events the engine dispatched
// (Engine.Executed): the fast-forward DPN coalesces a cohort's quanta into
// one completion event, and this metric tracks that win alongside ns/op in
// BENCH_core.json. Set BENCH_QUANTUM_STEPPED=1 to run the quantum-per-event
// oracle instead (Config.QuantumStepped) — that is how the "pre" snapshot of
// BENCH_core.json is produced.
//
// events/sec/core is the scheduling-normalized throughput figure tracked by
// the benchjson -compare gate: dispatched events per wall-clock second,
// divided by the configured worker budget (max(1, ParallelRun)) — NOT
// clamped to the host's GOMAXPROCS — so a parallel run is held to beating
// the sequential engine per core it asked for and the figure means the same
// thing on every host. benchjson records the run's GOMAXPROCS in the
// snapshot and skips the per-core gate when two snapshots' core counts
// differ. Set BENCH_PARALLEL_RUN=N to run the sharded-calendar engine
// (Config.ParallelRun) instead of the merged one.

// benchParallelRun reads BENCH_PARALLEL_RUN (0, the merged calendar, when
// unset or malformed).
func benchParallelRun() int {
	n, err := strconv.Atoi(os.Getenv("BENCH_PARALLEL_RUN"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func benchOneRun(b *testing.B, scheduler string, lambda float64) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.NumNodes = 16
	cfg.DD = 16
	cfg.ArrivalRate = lambda
	cfg.Duration = 200_000 * Millisecond
	cfg.QuantumStepped = os.Getenv("BENCH_QUANTUM_STEPPED") == "1"
	if !cfg.QuantumStepped {
		cfg.ParallelRun = benchParallelRun()
	}
	gen := NewBatchScanWorkload(16, 32)
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		s, err := sched.New(scheduler, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		m, err := machine.New(cfg, s, gen, sim.NewRNG(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if sum := m.Run(); sum.Completions == 0 {
			b.Fatal("no completions")
		}
		events += m.Engine().Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	cores := max(1, cfg.ParallelRun)
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs/float64(cores), "events/sec/core")
	}
}

// Arrival rates sit at the mid-range of each scheduler's operating region
// for the 4-machine-second batch-scan transactions (saturation is ~0.25
// TPS), mirroring Fig. 8's per-scheduler load points.

// BenchmarkRunNODC measures simulator throughput with no concurrency
// control at all (pure machine model).
func BenchmarkRunNODC(b *testing.B) { benchOneRun(b, "NODC", 0.20) }

// BenchmarkRunASL measures a run under atomic static locking.
func BenchmarkRunASL(b *testing.B) { benchOneRun(b, "ASL", 0.15) }

// BenchmarkRunGOW measures a run under the chain-form WTPG scheduler.
func BenchmarkRunGOW(b *testing.B) { benchOneRun(b, "GOW", 0.15) }

// BenchmarkRunLOW measures a run under the K-conflict WTPG scheduler.
func BenchmarkRunLOW(b *testing.B) { benchOneRun(b, "LOW", 0.15) }

// BenchmarkRunC2PL measures a run under cautious two-phase locking.
func BenchmarkRunC2PL(b *testing.B) { benchOneRun(b, "C2PL", 0.08) }

// BenchmarkRunOPT measures a run under optimistic locking (includes
// restart churn).
func BenchmarkRunOPT(b *testing.B) { benchOneRun(b, "OPT", 0.05) }

// Decision-engine benchmarks: the latency of one GOW/LOW lock-request
// decision at a contended steady state (DESIGN.md §17). Both scenarios are
// built so the scheduler answers Delay, which leaves the WTPG untouched —
// the identical decision can then be re-taken every iteration. Set
// BENCH_DECISION_WORKERS=N to fan candidate scoring over N workers
// (Params.DecisionWorkers); the decisions are byte-identical either way, so
// the pre/post decision_ns_per_op ratio in BENCH_core.json is a pure
// wall-clock comparison of the two paths.

// benchDecisionWorkers reads BENCH_DECISION_WORKERS (0, the sequential
// path, when unset or malformed).
func benchDecisionWorkers() int {
	n, err := strconv.Atoi(os.Getenv("BENCH_DECISION_WORKERS"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// benchLane injects a decision lane per Params.DecisionWorkers, returning
// the pool to stop (nil on the sequential path).
func benchLane(s sched.Scheduler, p sched.Params) *pool.Pool {
	if p.DecisionWorkers <= 1 {
		return nil
	}
	pl := pool.New("bench", p.DecisionWorkers)
	s.(sched.DecisionParallel).SetDecisionLane(pl.Lane("decision"))
	return pl
}

func benchWriteStep(f int, cost float64) model.Step {
	return model.Step{File: model.FileID(f), Write: true, LockMode: model.X,
		Cost: cost, DeclaredCost: cost}
}

// newDecisionGOW builds a GOW instance with chains conflicting chains of
// length chainLen (the Phase-2 component fan-out) plus one two-transaction
// component whose members share file 0. The perpetual requester is the pair
// member the optimized order W places second — its request is consistently
// delayed in Phase 3 — and swap picks which member plays that role.
func newDecisionGOW(p sched.Params, chains, chainLen int, swap bool) (sched.Scheduler, *model.Txn, *pool.Pool) {
	s := sched.MustNew("GOW", p)
	pl := benchLane(s, p)
	id := int64(1)
	admit := func(steps ...model.Step) *model.Txn {
		t := model.NewTxn(id, 0, steps)
		id++
		if ok, _ := s.Admit(t); !ok {
			panic("bench: GOW refused a chain-form admission")
		}
		return t
	}
	a := admit(benchWriteStep(0, 1))
	c := admit(benchWriteStep(0, 1), benchWriteStep(1, 50))
	if swap {
		a, c = c, a
	}
	_ = a
	file := 2
	for ch := 0; ch < chains; ch++ {
		prev := -1
		for i := 0; i < chainLen; i++ {
			var steps []model.Step
			if prev >= 0 {
				steps = append(steps, benchWriteStep(prev, 1))
			}
			steps = append(steps, benchWriteStep(file, 1))
			prev = file
			file++
			admit(steps...)
		}
	}
	return s, c, pl
}

// BenchmarkDecisionGOW measures one GOW lock-request decision — Phases 1-3
// with the full Phase-2 optimized order over every chain component — at a
// steady Delay point. decision_ns_per_op duplicates ns/op under the metric
// name the benchjson gate tracks across worker counts.
func BenchmarkDecisionGOW(b *testing.B) {
	p := sched.DefaultParams()
	p.DecisionWorkers = benchDecisionWorkers()
	s, req, pl := newDecisionGOW(p, 64, 8, false)
	if out := s.Request(req); out.Decision != sched.Delay {
		// W ordered the pair the other way: the roles are swapped, and that
		// first Grant mutated the graph, so rebuild from scratch.
		s, req, pl = newDecisionGOW(p, 64, 8, true)
		if out := s.Request(req); out.Decision != sched.Delay {
			b.Fatalf("no stable Delay requester (got %v)", out.Decision)
		}
	}
	if pl != nil {
		defer pl.Stop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Request(req); out.Decision != sched.Delay {
			b.Fatalf("decision drifted to %v", out.Decision)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "decision_ns_per_op")
}

// BenchmarkDecisionLOW measures one LOW lock-request decision — E(q) plus
// the E(p) scan over every conflicting declaration on a hot file — at a
// steady Delay point: the conflicters are ordered so the one beating E(q)
// comes last, which makes the sequential path walk the entire candidate
// list before delaying (the worst, and parallel-relevant, case).
func BenchmarkDecisionLOW(b *testing.B) {
	const residents = 16
	p := sched.DefaultParams()
	p.K = residents
	p.DecisionWorkers = benchDecisionWorkers()
	s := sched.MustNew("LOW", p)
	pl := benchLane(s, p)
	if pl != nil {
		defer pl.Stop()
	}
	id := int64(1)
	admit := func(steps ...model.Step) *model.Txn {
		t := model.NewTxn(id, 0, steps)
		id++
		if ok, _ := s.Admit(t); !ok {
			b.Fatal("LOW refused an admission within the K bound")
		}
		return t
	}
	priv := 1
	for i := 0; i < residents-1; i++ { // huge remaining demand: E(p) >= E(q)
		admit(benchWriteStep(0, 1), benchWriteStep(priv, 1000))
		priv++
	}
	admit(benchWriteStep(0, 1), benchWriteStep(priv, 1)) // tiny: E(p) < E(q), last
	priv++
	req := admit(benchWriteStep(0, 1), benchWriteStep(priv, 100))
	if out := s.Request(req); out.Decision != sched.Delay {
		b.Fatalf("expected a steady Delay, got %v", out.Decision)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Request(req); out.Decision != sched.Delay {
			b.Fatalf("decision drifted to %v", out.Decision)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "decision_ns_per_op")
}

// BenchmarkSustainedTPSAtSLO runs the service-mode capacity probe per
// iteration — bisecting the open arrival rate for the largest sustained
// throughput that still meets the default service SLO on a reduced GOW point
// — and reports the solved rate as sustained_tps_at_slo. The figure is
// tracked in BENCH_core.json and gated by benchjson -compare (higher is
// better, like events/sec/core), so a scheduler or admission change that
// quietly erodes open-stream capacity fails CI even when ns/op is flat.
func BenchmarkSustainedTPSAtSLO(b *testing.B) {
	pol := DefaultAdmitPolicy()
	pol.MPL = 4
	p := experiments.Point{
		Scheduler: "GOW",
		NumFiles:  16,
		DD:        1,
		Load:      experiments.Exp1,
		Seed:      1,
		Reps:      1,
		Duration:  100_000 * sim.Millisecond,
		Service:   &pol,
	}
	spec := sli.ServiceDefault()
	b.ReportAllocs()
	var tps float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ServiceCapacity(p, spec, 1, 0.05, 0.5, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed {
			b.Fatal("no sustained rate inside the bracket")
		}
		tps = res.SustainedTPS
	}
	b.ReportMetric(tps, "sustained_tps_at_slo")
}

// BenchmarkObsOverhead runs the same simulation twice per iteration — once
// bare and once with the full observability layer attached (spans, registry
// sampling, audit) — and reports their wall-time ratio as obs_overhead
// (1.0 = free, 1.10 = 10% slower instrumented). The ratio is tracked in
// BENCH_core.json and gated by benchjson -compare, so instrumentation cost
// creep fails CI the same way an ns/op regression does.
func BenchmarkObsOverhead(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumNodes = 16
	cfg.DD = 4
	cfg.ArrivalRate = 0.15
	cfg.Duration = 100_000 * Millisecond
	gen := NewBatchScanWorkload(16, 32)
	run := func(seed int64, ob *Obs) {
		s, err := sched.New("LOW", DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		m, err := machine.New(cfg, s, gen, sim.NewRNG(seed))
		if err != nil {
			b.Fatal(err)
		}
		m.SetObs(ob)
		if sum := m.Run(); sum.Completions == 0 {
			b.Fatal("no completions")
		}
	}
	b.ReportAllocs()
	var plain, instrumented time.Duration
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		t0 := time.Now()
		run(seed, nil)
		t1 := time.Now()
		run(seed, NewObs())
		instrumented += time.Since(t1)
		plain += t1.Sub(t0)
	}
	if plain > 0 {
		b.ReportMetric(instrumented.Seconds()/plain.Seconds(), "obs_overhead")
	}
}
