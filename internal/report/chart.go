package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve of a chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// X and Y are the sample coordinates (equal length).
	X, Y []float64
}

// Chart is an ASCII line plot of one or more series, for terminal-friendly
// rendering of the paper's figures.
type Chart struct {
	// Title heads the plot.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Width and Height are the plot-area size in characters (defaults
	// 60x20 when zero).
	Width, Height int
	// Series are the curves; each gets a marker from Markers in order.
	Series []Series
	// YMax optionally clips the y axis (0 = auto).
	YMax float64
}

// Markers are the per-series plot characters, in assignment order.
var Markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if c.YMax > 0 && maxY > c.YMax {
		maxY = c.YMax
	}
	if math.IsInf(minX, 1) || maxX == minX {
		fmt.Fprintln(w, c.Title)
		fmt.Fprintln(w, "(no data)")
		return
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, marker byte) {
		if y > maxY {
			y = maxY
		}
		col := int((x - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[row][col] = marker
	}
	for si, s := range c.Series {
		marker := Markers[si%len(Markers)]
		// Linear interpolation between samples for a continuous look.
		for i := 1; i < len(s.X); i++ {
			steps := width / max(1, len(s.X)-1)
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(max(1, steps))
				plot(s.X[i-1]+f*(s.X[i]-s.X[i-1]), s.Y[i-1]+f*(s.Y[i]-s.Y[i-1]), marker)
			}
		}
		for i := range s.X {
			plot(s.X[i], s.Y[i], marker)
		}
	}
	fmt.Fprintln(w, c.Title)
	yTop := fmt.Sprintf("%.4g", maxY)
	yBot := fmt.Sprintf("%.4g", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		case height / 2:
			if c.YLabel != "" {
				lbl := c.YLabel
				if len(lbl) > pad {
					lbl = lbl[:pad]
				}
				label = fmt.Sprintf("%*s", pad, lbl)
			}
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*.4g%*.4g  (%s)\n", strings.Repeat(" ", pad), width/2, minX, width-width/2, maxX, c.XLabel)
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", Markers[si%len(Markers)], s.Name))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", pad), strings.Join(legend, "  "))
}

// String renders to a string.
func (c *Chart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
