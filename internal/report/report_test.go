package report

import (
	"math"
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tbl := &Table{
		Title:  "Table X",
		Note:   "units: TPS",
		Header: []string{"dd", "ASL", "LOW"},
	}
	tbl.AddRow("1", "0.45", "0.44")
	tbl.AddRow("2", "0.90", "0.83")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want 6:\n%s", len(lines), out)
	}
	if lines[0] != "Table X" || lines[1] != "units: TPS" {
		t.Errorf("title/note wrong: %q %q", lines[0], lines[1])
	}
	if !strings.HasPrefix(lines[2], "dd") {
		t.Errorf("header line = %q", lines[2])
	}
	if !strings.Contains(lines[4], "0.45") || !strings.Contains(lines[5], "0.83") {
		t.Errorf("data rows wrong:\n%s", out)
	}
	// Columns aligned: "ASL" column starts at the same offset in all rows.
	idx := strings.Index(lines[2], "ASL")
	if !strings.HasPrefix(lines[4][idx:], "0.45") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestRenderWideCells(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "b"}}
	tbl.AddRow("averyverylongcell", "x")
	out := tbl.String()
	if !strings.Contains(out, "averyverylongcell") {
		t.Error("cell truncated")
	}
}

func TestF(t *testing.T) {
	if F(1.234, 2) != "1.23" {
		t.Errorf("F = %q", F(1.234, 2))
	}
	if F(3, 0) != "3" {
		t.Errorf("F = %q", F(3, 0))
	}
	if F(math.NaN(), 2) != "-" {
		t.Errorf("NaN must render as dash, got %q", F(math.NaN(), 2))
	}
}
