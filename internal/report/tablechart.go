package report

import (
	"math"
	"strconv"
	"strings"
)

// Chart converts a numeric table into an ASCII chart: column 0 supplies the
// x coordinates and every remaining column becomes a series named by its
// header. Cells of the form "123 (456)" contribute their leading number
// (the measured value); rows or columns without parsable numbers are
// skipped. Returns nil when fewer than two x values parse.
func (t *Table) Chart(xLabel, yLabel string, yMax float64) *Chart {
	if len(t.Header) < 2 {
		return nil
	}
	var xs []float64
	var rows [][]float64 // per kept row: parsed cells (NaN when unparsable)
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(row[0]), 64)
		if err != nil {
			continue
		}
		vals := make([]float64, len(t.Header)-1)
		for i := range vals {
			vals[i] = parseLeadingFloat(cellAt(row, i+1))
		}
		xs = append(xs, x)
		rows = append(rows, vals)
	}
	if len(xs) < 2 {
		return nil
	}
	c := &Chart{Title: t.Title, XLabel: xLabel, YLabel: yLabel, YMax: yMax}
	for col := 1; col < len(t.Header); col++ {
		var sx, sy []float64
		for r := range xs {
			v := rows[r][col-1]
			if v == v { // not NaN
				sx = append(sx, xs[r])
				sy = append(sy, v)
			}
		}
		if len(sx) >= 2 {
			c.Series = append(c.Series, Series{Name: t.Header[col], X: sx, Y: sy})
		}
	}
	if len(c.Series) == 0 {
		return nil
	}
	return c
}

func cellAt(row []string, i int) string {
	if i < len(row) {
		return row[i]
	}
	return ""
}

// parseLeadingFloat parses the leading numeric token of a cell like
// "0.44 (0.45)" or "97.0%"; NaN when none.
func parseLeadingFloat(cell string) float64 {
	cell = strings.TrimSpace(cell)
	end := 0
	for end < len(cell) {
		ch := cell[end]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == '-' || ch == '+' ||
			ch == 'e' || ch == 'E' {
			end++
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(cell[:end], 64)
	if err != nil {
		return math.NaN()
	}
	return v
}
