package report

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "Fig X",
		XLabel: "lambda",
		YLabel: "RT",
		Width:  40,
		Height: 10,
		Series: []Series{
			{Name: "ASL", X: []float64{0, 1, 2}, Y: []float64{1, 2, 4}},
			{Name: "C2PL", X: []float64{0, 1, 2}, Y: []float64{1, 5, 9}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "Fig X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=ASL") || !strings.Contains(out, "o=C2PL") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "lambda") {
		t.Error("missing x label")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing plotted points")
	}
	lines := strings.Split(out, "\n")
	// plot area height + title + axis + xlabels + legend
	if len(lines) < 13 {
		t.Errorf("unexpectedly short render (%d lines):\n%s", len(lines), out)
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.String()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart rendering:\n%s", out)
	}
}

func TestChartYMaxClips(t *testing.T) {
	c := &Chart{
		Width: 20, Height: 5, YMax: 10,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 1000}}},
	}
	out := c.String()
	if !strings.Contains(out, "10 |") {
		t.Errorf("y axis should clip at 10:\n%s", out)
	}
}

func TestChartSingularX(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "s", X: []float64{1, 1}, Y: []float64{1, 2}}}}
	if !strings.Contains(c.String(), "(no data)") {
		t.Error("degenerate x range should render as no data")
	}
}

func TestTableChart(t *testing.T) {
	tbl := &Table{
		Title:  "Fig demo",
		Header: []string{"λ", "ASL", "C2PL"},
	}
	tbl.AddRow("0.2", "9.3 (9.0)", "9.3")
	tbl.AddRow("0.6", "41.1", "379.3")
	tbl.AddRow("1.0", "249.2", "419.4")
	c := tbl.Chart("λ (TPS)", "RT", 0)
	if c == nil {
		t.Fatal("chart is nil")
	}
	if len(c.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(c.Series))
	}
	if c.Series[0].Y[0] != 9.3 {
		t.Errorf("paren cell parsed wrong: %v", c.Series[0].Y[0])
	}
	out := c.String()
	if !strings.Contains(out, "*=ASL") {
		t.Errorf("chart legend:\n%s", out)
	}

	// Non-numeric x column -> nil chart.
	bad := &Table{Header: []string{"scheduler", "DD=1"}}
	bad.AddRow("GOW", "97%")
	if bad.Chart("x", "y", 0) != nil {
		t.Error("non-numeric x must give nil chart")
	}
}
