package report

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// HTML rendering: the same Table and Chart types that render as plain text
// for the terminal also render into a self-contained HTML page (inline CSS,
// inline SVG, no external assets), so an experiment's artifacts can ship as
// one file.

// htmlPalette colors the chart series, in assignment order (mirrors
// Markers for the text renderer).
var htmlPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// HTMLDocument assembles a standalone page from pre-rendered body
// fragments (tables, charts, free-form HTML).
func HTMLDocument(title string, body ...string) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>")
	b.WriteString(html.EscapeString(title))
	b.WriteString("</title>\n<style>\n")
	b.WriteString(`body{font:14px/1.45 system-ui,sans-serif;margin:24px;color:#222;max-width:1080px}
h1{font-size:20px}h2{font-size:16px;margin-top:28px}
table{border-collapse:collapse;margin:8px 0}
th,td{border:1px solid #ccc;padding:3px 8px;text-align:right;font-variant-numeric:tabular-nums}
th:first-child,td:first-child{text-align:left}
caption{caption-side:top;text-align:left;font-weight:600;padding:4px 0}
.note{color:#666;font-size:12px}
svg{background:#fff;border:1px solid #eee;margin:8px 0}
`)
	b.WriteString("</style></head><body>\n<h1>")
	b.WriteString(html.EscapeString(title))
	b.WriteString("</h1>\n")
	for _, frag := range body {
		b.WriteString(frag)
		b.WriteByte('\n')
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// HTML renders the table as an HTML fragment (title as caption, note as a
// footer row).
func (t *Table) HTML() string {
	var b strings.Builder
	b.WriteString("<table><caption>")
	b.WriteString(html.EscapeString(t.Title))
	b.WriteString("</caption>\n<tr>")
	for _, h := range t.Header {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(h))
	}
	b.WriteString("</tr>\n")
	for _, row := range t.Rows {
		b.WriteString("<tr>")
		for _, c := range row {
			fmt.Fprintf(&b, "<td>%s</td>", html.EscapeString(c))
		}
		b.WriteString("</tr>\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "<tr><td class=\"note\" colspan=\"%d\">%s</td></tr>\n",
			len(t.Header), html.EscapeString(t.Note))
	}
	b.WriteString("</table>")
	return b.String()
}

// SVG renders the chart as an inline-SVG line plot of the given pixel size
// (0,0 defaults to 640x240). Output is deterministic for identical input.
func (c *Chart) SVG(width, height int) string {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 240
	}
	const mL, mR, mT, mB = 56, 12, 22, 34 // margins: axis labels and title
	pw, ph := float64(width-mL-mR), float64(height-mT-mB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if c.YMax > 0 && maxY > c.YMax {
		maxY = c.YMax
	}
	var b strings.Builder
	legendH := 16 * len(c.Series)
	fmt.Fprintf(&b, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n",
		width, height+legendH, width, height+legendH)
	fmt.Fprintf(&b, "<text x=\"%d\" y=\"14\" font-size=\"13\" font-weight=\"600\">%s</text>\n",
		mL, html.EscapeString(c.Title))
	if math.IsInf(minX, 1) || maxX == minX {
		b.WriteString("<text x=\"60\" y=\"60\" font-size=\"12\">(no data)</text>\n</svg>")
		return b.String()
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return float64(mL) + (x-minX)/(maxX-minX)*pw }
	py := func(y float64) float64 {
		if y > maxY {
			y = maxY
		}
		return float64(mT) + (1-(y-minY)/(maxY-minY))*ph
	}
	// Axes and scale labels.
	fmt.Fprintf(&b, "<path d=\"M%d %d V%d H%d\" fill=\"none\" stroke=\"#999\"/>\n",
		mL, mT, height-mB, width-mR)
	fmt.Fprintf(&b, "<text x=\"%d\" y=\"%d\" font-size=\"11\" text-anchor=\"end\">%.4g</text>\n", mL-4, mT+8, maxY)
	fmt.Fprintf(&b, "<text x=\"%d\" y=\"%d\" font-size=\"11\" text-anchor=\"end\">%.4g</text>\n", mL-4, height-mB, minY)
	fmt.Fprintf(&b, "<text x=\"%d\" y=\"%d\" font-size=\"11\">%.4g</text>\n", mL, height-mB+14, minX)
	fmt.Fprintf(&b, "<text x=\"%d\" y=\"%d\" font-size=\"11\" text-anchor=\"end\">%.4g</text>\n", width-mR, height-mB+14, maxX)
	fmt.Fprintf(&b, "<text x=\"%d\" y=\"%d\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n",
		mL+int(pw/2), height-mB+28, html.EscapeString(c.XLabel))
	if c.YLabel != "" {
		fmt.Fprintf(&b, "<text x=\"12\" y=\"%d\" font-size=\"11\" transform=\"rotate(-90 12 %d)\" text-anchor=\"middle\">%s</text>\n",
			mT+int(ph/2), mT+int(ph/2), html.EscapeString(c.YLabel))
	}
	for si, s := range c.Series {
		color := htmlPalette[si%len(htmlPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"%s\"/>\n",
			color, strings.Join(pts, " "))
		ly := height + 12 + 16*si
		fmt.Fprintf(&b, "<rect x=\"%d\" y=\"%d\" width=\"10\" height=\"10\" fill=\"%s\"/>\n", mL, ly-9, color)
		fmt.Fprintf(&b, "<text x=\"%d\" y=\"%d\" font-size=\"11\">%s</text>\n",
			mL+14, ly, html.EscapeString(s.Name))
	}
	b.WriteString("</svg>")
	return b.String()
}
