// Package report renders experiment results as plain-text tables and
// series, one per table/figure of the paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title names the artifact, e.g. "Table 2: NumFiles vs Throughput".
	Title string
	// Note is an optional caption line (parameters, units).
	Note string
	// Header labels the columns.
	Header []string
	// Rows are the data cells, row-major.
	Rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintln(w, t.Title)
	if t.Note != "" {
		fmt.Fprintln(w, t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given decimals, rendering NaN/unmeasured as a
// dash.
func F(v float64, decimals int) string {
	if v != v { // NaN
		return "-"
	}
	return fmt.Sprintf("%.*f", decimals, v)
}

// Paren formats a "main (detail)" cell — the table convention for a
// measured value with a secondary figure (paper reference, rate, ...).
func Paren(main, detail string) string { return main + " (" + detail + ")" }

// Pct formats a percentage with the given decimals ("98.3%"); NaN renders
// as a dash.
func Pct(v float64, decimals int) string {
	if v != v {
		return "-"
	}
	return F(v, decimals) + "%"
}
