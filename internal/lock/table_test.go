package lock

import (
	"testing"
	"testing/quick"

	"batchsched/internal/model"
)

func TestGrantAndCompatibility(t *testing.T) {
	tb := NewTable()
	tb.Grant(1, 10, model.S)
	if !tb.CanGrant(2, 10, model.S) {
		t.Error("S-S must be grantable")
	}
	if tb.CanGrant(2, 10, model.X) {
		t.Error("X against S holder must not be grantable")
	}
	tb.Grant(2, 10, model.S)
	if got := tb.Holders(10); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Holders = %v, want [1 2]", got)
	}
	if m, ok := tb.Holds(1, 10); !ok || m != model.S {
		t.Errorf("Holds(1,10) = %v %v", m, ok)
	}
	if _, ok := tb.Holds(3, 10); ok {
		t.Error("txn 3 must not hold the lock")
	}
}

func TestExclusiveBlocksEveryone(t *testing.T) {
	tb := NewTable()
	tb.Grant(1, 5, model.X)
	if tb.CanGrant(2, 5, model.S) || tb.CanGrant(2, 5, model.X) {
		t.Error("X holder must block both modes for others")
	}
	// The holder itself may re-request anything.
	if !tb.CanGrant(1, 5, model.S) || !tb.CanGrant(1, 5, model.X) {
		t.Error("holder re-request must be grantable")
	}
}

func TestUpgrade(t *testing.T) {
	tb := NewTable()
	tb.Grant(1, 5, model.S)
	if !tb.CanGrant(1, 5, model.X) {
		t.Error("sole S holder must be able to upgrade")
	}
	tb.Grant(2, 5, model.S)
	if tb.CanGrant(1, 5, model.X) {
		t.Error("upgrade with another S holder present must wait")
	}
	tb.ReleaseAll(2)
	if !tb.CanGrant(1, 5, model.X) {
		t.Error("upgrade must be possible after the other reader leaves")
	}
	tb.Grant(1, 5, model.X)
	if m, _ := tb.Holds(1, 5); m != model.X {
		t.Errorf("after upgrade mode = %v, want X", m)
	}
	// Granting S after X must not downgrade.
	tb.Grant(1, 5, model.S)
	if m, _ := tb.Holds(1, 5); m != model.X {
		t.Errorf("downgrade happened: mode = %v, want X", m)
	}
}

func TestReleaseAll(t *testing.T) {
	tb := NewTable()
	tb.Grant(1, 5, model.X)
	tb.Grant(1, 7, model.S)
	tb.Grant(2, 9, model.S)
	freed := tb.ReleaseAll(1)
	if len(freed) != 2 || freed[0] != 5 || freed[1] != 7 {
		t.Errorf("freed = %v, want [5 7]", freed)
	}
	if len(tb.HeldBy(1)) != 0 {
		t.Error("txn 1 must hold nothing after ReleaseAll")
	}
	if tb.LockedFiles() != 1 {
		t.Errorf("LockedFiles = %d, want 1", tb.LockedFiles())
	}
	if got := tb.ReleaseAll(42); len(got) != 0 {
		t.Errorf("releasing a lock-free txn returned %v", got)
	}
}

func TestGrantPanicsOnConflict(t *testing.T) {
	tb := NewTable()
	tb.Grant(1, 5, model.X)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on incompatible grant")
		}
	}()
	tb.Grant(2, 5, model.S)
}

func TestCanGrantAllAndGrantAll(t *testing.T) {
	tb := NewTable()
	tb.Grant(9, 3, model.X)
	need := map[model.FileID]model.Mode{1: model.X, 2: model.S}
	if !tb.CanGrantAll(5, need) {
		t.Fatal("disjoint needs must be grantable")
	}
	tb.GrantAll(5, need)
	if m, _ := tb.Holds(5, 1); m != model.X {
		t.Error("GrantAll missed file 1")
	}
	bad := map[model.FileID]model.Mode{2: model.S, 3: model.S}
	if tb.CanGrantAll(6, bad) {
		t.Error("need overlapping an X holder must not be grantable")
	}
}

// Property: after any sequence of compatible grants and releases, the
// holders of every file are pairwise compatible.
func TestInvariantPairwiseCompatible(t *testing.T) {
	type op struct {
		Txn     uint8
		File    uint8
		X       bool
		Release bool
	}
	prop := func(ops []op) bool {
		tb := NewTable()
		for _, o := range ops {
			txn := int64(o.Txn%8) + 1
			file := model.FileID(o.File % 4)
			if o.Release {
				tb.ReleaseAll(txn)
				continue
			}
			mode := model.S
			if o.X {
				mode = model.X
			}
			if tb.CanGrant(txn, file, mode) {
				tb.Grant(txn, file, mode)
			}
		}
		// Check the invariant.
		for f := model.FileID(0); f < 4; f++ {
			hs := tb.Holders(f)
			for i := 0; i < len(hs); i++ {
				mi, _ := tb.Holds(hs[i], f)
				for j := i + 1; j < len(hs); j++ {
					mj, _ := tb.Holds(hs[j], f)
					if !mi.Compatible(mj) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
