// Package lock implements the file-granularity S/X lock table held by the
// control node. It tracks holders only; queueing and grant policy belong to
// the schedulers (package sched), which differ in exactly those decisions.
package lock

import (
	"fmt"
	"sort"

	"batchsched/internal/model"
)

// Table maps each file to its current lock holders. The zero value is not
// usable; call NewTable.
type Table struct {
	files map[model.FileID]map[int64]model.Mode
	held  map[int64]map[model.FileID]model.Mode
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{
		files: make(map[model.FileID]map[int64]model.Mode),
		held:  make(map[int64]map[model.FileID]model.Mode),
	}
}

// Holds returns the mode transaction txn currently holds on file, if any.
func (t *Table) Holds(txn int64, file model.FileID) (model.Mode, bool) {
	m, ok := t.held[txn][file]
	return m, ok
}

// Holders returns the transactions holding a lock on file, in ascending ID
// order.
func (t *Table) Holders(file model.FileID) []int64 {
	hs := t.files[file]
	out := make([]int64, 0, len(hs))
	for id := range hs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HeldBy returns the files transaction txn holds locks on, ascending.
func (t *Table) HeldBy(txn int64) []model.FileID {
	fs := t.held[txn]
	out := make([]model.FileID, 0, len(fs))
	for f := range fs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CanGrant reports whether txn could be granted mode on file right now:
// every other holder's mode must be compatible, and an upgrade from S to X
// is possible only for a sole holder. A request for a mode already covered
// by the held mode is always grantable (idempotent re-request).
func (t *Table) CanGrant(txn int64, file model.FileID, mode model.Mode) bool {
	if cur, ok := t.Holds(txn, file); ok {
		if cur == model.X || mode == model.S {
			return true // already strong enough
		}
	}
	for id, m := range t.files[file] {
		if id == txn {
			continue
		}
		if !m.Compatible(mode) {
			return false
		}
	}
	return true
}

// Grant records the lock. It panics when the grant is incompatible with the
// current holders — callers must check CanGrant first; a violation is a
// scheduler bug, not a runtime condition.
func (t *Table) Grant(txn int64, file model.FileID, mode model.Mode) {
	if !t.CanGrant(txn, file, mode) {
		panic(fmt.Sprintf("lock: incompatible grant txn=%d file=%d mode=%v holders=%v",
			txn, file, mode, t.files[file]))
	}
	if cur, ok := t.Holds(txn, file); ok && cur == model.X {
		return // keep the stronger mode
	}
	if t.files[file] == nil {
		t.files[file] = make(map[int64]model.Mode)
	}
	if t.held[txn] == nil {
		t.held[txn] = make(map[model.FileID]model.Mode)
	}
	t.files[file][txn] = mode
	t.held[txn][file] = mode
}

// ReleaseAll drops every lock txn holds (commit-time release under strict
// locking) and returns the freed files in ascending order.
func (t *Table) ReleaseAll(txn int64) []model.FileID {
	files := t.HeldBy(txn)
	for _, f := range files {
		delete(t.files[f], txn)
		if len(t.files[f]) == 0 {
			delete(t.files, f)
		}
	}
	delete(t.held, txn)
	return files
}

// CanGrantAll reports whether every (file, mode) need could be granted to
// txn simultaneously — the ASL admission test.
func (t *Table) CanGrantAll(txn int64, need map[model.FileID]model.Mode) bool {
	for f, m := range need {
		if !t.CanGrant(txn, f, m) {
			return false
		}
	}
	return true
}

// GrantAll grants every (file, mode) need to txn. Callers must have checked
// CanGrantAll.
func (t *Table) GrantAll(txn int64, need map[model.FileID]model.Mode) {
	// Deterministic order for reproducibility of any panic messages.
	files := make([]model.FileID, 0, len(need))
	for f := range need {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
	for _, f := range files {
		t.Grant(txn, f, need[f])
	}
}

// LockedFiles returns how many files currently have at least one holder.
func (t *Table) LockedFiles() int { return len(t.files) }
