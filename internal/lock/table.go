// Package lock implements the file-granularity S/X lock table held by the
// control node. It tracks holders only; queueing and grant policy belong to
// the schedulers (package sched), which differ in exactly those decisions.
package lock

import (
	"fmt"
	"sort"

	"batchsched/internal/model"
)

// holders is the holder set of one file: parallel slices sorted ascending by
// transaction ID. Holder sets are tiny (readers of a hot file), so sorted
// insertion beats a map and keeps every read deterministic without a
// per-call sort-and-allocate.
type holders struct {
	ids   []int64
	modes []model.Mode
}

func (h *holders) find(txn int64) int {
	return sort.Search(len(h.ids), func(i int) bool { return h.ids[i] >= txn })
}

func (h *holders) insert(txn int64, mode model.Mode) {
	i := h.find(txn)
	if i < len(h.ids) && h.ids[i] == txn {
		h.modes[i] = mode
		return
	}
	h.ids = append(h.ids, 0)
	copy(h.ids[i+1:], h.ids[i:])
	h.ids[i] = txn
	h.modes = append(h.modes, 0)
	copy(h.modes[i+1:], h.modes[i:])
	h.modes[i] = mode
}

func (h *holders) remove(txn int64) {
	i := h.find(txn)
	if i < len(h.ids) && h.ids[i] == txn {
		h.ids = append(h.ids[:i], h.ids[i+1:]...)
		h.modes = append(h.modes[:i], h.modes[i+1:]...)
	}
}

// heldFiles is the lock set of one transaction: parallel slices sorted
// ascending by file ID.
type heldFiles struct {
	files []model.FileID
	modes []model.Mode
}

func (h *heldFiles) find(file model.FileID) int {
	return sort.Search(len(h.files), func(i int) bool { return h.files[i] >= file })
}

func (h *heldFiles) insert(file model.FileID, mode model.Mode) {
	i := h.find(file)
	if i < len(h.files) && h.files[i] == file {
		h.modes[i] = mode
		return
	}
	h.files = append(h.files, 0)
	copy(h.files[i+1:], h.files[i:])
	h.files[i] = file
	h.modes = append(h.modes, 0)
	copy(h.modes[i+1:], h.modes[i:])
	h.modes[i] = mode
}

// Table maps each file to its current lock holders. The zero value is not
// usable; call NewTable.
//
// Holders, HeldBy and ReleaseAll return slices owned by the table, always in
// ascending order: they are valid until the table's next mutation and must
// not be modified. Callers that need to retain results across Grant/Release
// calls must copy.
type Table struct {
	files  map[model.FileID]*holders
	held   map[int64]*heldFiles
	locked int // files with >= 1 holder (file entries persist when emptied)
	pool   []*heldFiles
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{
		files: make(map[model.FileID]*holders),
		held:  make(map[int64]*heldFiles),
	}
}

// Holds returns the mode transaction txn currently holds on file, if any.
func (t *Table) Holds(txn int64, file model.FileID) (model.Mode, bool) {
	hf, ok := t.held[txn]
	if !ok {
		return 0, false
	}
	i := hf.find(file)
	if i < len(hf.files) && hf.files[i] == file {
		return hf.modes[i], true
	}
	return 0, false
}

// Holders returns the transactions holding a lock on file, in ascending ID
// order. The slice is owned by the table; see the Table contract.
func (t *Table) Holders(file model.FileID) []int64 {
	h, ok := t.files[file]
	if !ok {
		return nil
	}
	return h.ids
}

// HeldBy returns the files transaction txn holds locks on, ascending. The
// slice is owned by the table; see the Table contract.
func (t *Table) HeldBy(txn int64) []model.FileID {
	hf, ok := t.held[txn]
	if !ok {
		return nil
	}
	return hf.files
}

// CanGrant reports whether txn could be granted mode on file right now:
// every other holder's mode must be compatible, and an upgrade from S to X
// is possible only for a sole holder. A request for a mode already covered
// by the held mode is always grantable (idempotent re-request).
func (t *Table) CanGrant(txn int64, file model.FileID, mode model.Mode) bool {
	if cur, ok := t.Holds(txn, file); ok {
		if cur == model.X || mode == model.S {
			return true // already strong enough
		}
	}
	h, ok := t.files[file]
	if !ok {
		return true
	}
	for i, id := range h.ids {
		if id == txn {
			continue
		}
		if !h.modes[i].Compatible(mode) {
			return false
		}
	}
	return true
}

// Grant records the lock. It panics when the grant is incompatible with the
// current holders — callers must check CanGrant first; a violation is a
// scheduler bug, not a runtime condition.
func (t *Table) Grant(txn int64, file model.FileID, mode model.Mode) {
	if !t.CanGrant(txn, file, mode) {
		panic(fmt.Sprintf("lock: incompatible grant txn=%d file=%d mode=%v holders=%v",
			txn, file, mode, t.Holders(file)))
	}
	if cur, ok := t.Holds(txn, file); ok && cur == model.X {
		return // keep the stronger mode
	}
	h, ok := t.files[file]
	if !ok {
		h = &holders{}
		t.files[file] = h
	}
	if len(h.ids) == 0 {
		t.locked++
	}
	h.insert(txn, mode)
	hf, ok := t.held[txn]
	if !ok {
		if n := len(t.pool); n > 0 {
			hf = t.pool[n-1]
			t.pool[n-1] = nil
			t.pool = t.pool[:n-1]
		} else {
			hf = &heldFiles{}
		}
		t.held[txn] = hf
	}
	hf.insert(file, mode)
}

// ReleaseAll drops every lock txn holds (commit-time release under strict
// locking) and returns the freed files in ascending order. The slice is
// owned by the table; see the Table contract.
func (t *Table) ReleaseAll(txn int64) []model.FileID {
	hf, ok := t.held[txn]
	if !ok {
		return nil
	}
	for _, f := range hf.files {
		h := t.files[f]
		h.remove(txn)
		if len(h.ids) == 0 {
			t.locked-- // keep the empty entry for reuse
		}
	}
	delete(t.held, txn)
	files := hf.files
	hf.files = hf.files[:0]
	hf.modes = hf.modes[:0]
	t.pool = append(t.pool, hf)
	// files aliases the pooled slice's old backing; hand it out full-length.
	return files[:len(files):len(files)]
}

// CanGrantAll reports whether every (file, mode) need could be granted to
// txn simultaneously — the ASL admission test.
func (t *Table) CanGrantAll(txn int64, need map[model.FileID]model.Mode) bool {
	for f, m := range need {
		if !t.CanGrant(txn, f, m) {
			return false
		}
	}
	return true
}

// GrantAll grants every (file, mode) need to txn. Callers must have checked
// CanGrantAll.
func (t *Table) GrantAll(txn int64, need map[model.FileID]model.Mode) {
	// Deterministic order for reproducibility of any panic messages.
	files := make([]model.FileID, 0, len(need))
	for f := range need {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
	for _, f := range files {
		t.Grant(txn, f, need[f])
	}
}

// LockedFiles returns how many files currently have at least one holder.
func (t *Table) LockedFiles() int { return t.locked }
