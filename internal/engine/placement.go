package engine

import "batchsched/internal/model"

// Placement maps files to data-processing nodes: file f's home node is
// f mod NumNodes, and with degree of declustering DD the file's partitions
// live on the DD consecutive nodes starting at the home node (wrapping).
// Both backends share this mapping, so a workload lands on the same nodes
// under simulation and live execution.
type Placement struct {
	// NumNodes is the machine size.
	NumNodes int
	// DD is the degree of declustering.
	DD int
}

// Home returns the home node of file f.
func (p Placement) Home(f model.FileID) int {
	n := int(f) % p.NumNodes
	if n < 0 {
		n += p.NumNodes
	}
	return n
}

// Nodes returns the nodes holding partitions of file f, home node first.
func (p Placement) Nodes(f model.FileID) []int {
	out := make([]int, p.DD)
	home := p.Home(f)
	for i := range out {
		out[i] = (home + i) % p.NumNodes
	}
	return out
}

// NodesInto is Nodes with a caller-provided buffer, for allocation-free hot
// paths: buf is truncated, filled with the partition nodes (home first) and
// returned.
func (p Placement) NodesInto(f model.FileID, buf []int) []int {
	buf = buf[:0]
	home := p.Home(f)
	for i := 0; i < p.DD; i++ {
		buf = append(buf, (home+i)%p.NumNodes)
	}
	return buf
}
