// Package engine defines the execution-backend abstraction the scheduler
// core runs on. The schedulers (package sched) speak a pure decision
// protocol — Admit, Request (grant/block/delay/abort), Validate, Committed,
// Aborted — with no notion of how time passes or where cohorts run. A
// Backend supplies that half: it owns a clock, accepts transaction
// submissions, drives the scheduler protocol in control-node order, executes
// granted steps on data-processing nodes, and emits a metrics.Summary.
//
// Two backends exist:
//
//   - machine.Machine — the paper's virtual-clock discrete-event simulator
//     (single-threaded, deterministic, virtual time).
//   - live.Backend — real concurrent execution: one goroutine per DPN over
//     an in-memory partitioned store, Go channels for CN<->DPN messaging,
//     and the wall clock (goroutine-parallel, timing nondeterministic).
//
// Both drive the identical scheduler objects through the identical
// control-node queue discipline, which is what makes differential testing
// between them meaningful (see DESIGN.md §12).
package engine

import (
	"batchsched/internal/metrics"
	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// Clock reads the backend's notion of now. The simulator returns virtual
// time; the live backend returns wall time elapsed since Run started,
// expressed in the same sim.Time microsecond unit so metrics are comparable.
type Clock interface {
	Now() sim.Time
}

// Observer receives execution events, for history recording and invariant
// checks. machine.Observer and the live backend's observer hook are both
// this type.
type Observer interface {
	// StepDone fires when a step's cohorts have all completed.
	StepDone(t *model.Txn, step int, at sim.Time)
	// Committed fires when a transaction commits.
	Committed(t *model.Txn, at sim.Time)
	// Restarted fires when a rollback (optimistic validation failure or
	// deadlock abort) discards the transaction's current attempt.
	Restarted(t *model.Txn, at sim.Time)
}

// Generator produces the declared steps of successive transactions
// (implemented by package workload).
type Generator interface {
	Steps(rng *sim.RNG) []model.Step
}

// Backend is one execution substrate for the scheduler core. Submit
// transactions, then call Run exactly once; Run drives everything to
// completion (the simulator to its horizon, the live backend to batch
// drain) and returns the summary.
type Backend interface {
	Clock
	// Submit injects a transaction at the current time. For closed-batch
	// runs, call it once per transaction before Run.
	Submit(steps []model.Step) *model.Txn
	// SetObserver installs an execution observer (history recorder, trace
	// writer). Call before Run.
	SetObserver(Observer)
	// Run executes to completion and returns the digested metrics.
	Run() metrics.Summary
	// InFlight reports how many submitted transactions have not committed.
	InFlight() int
}
