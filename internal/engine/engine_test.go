package engine_test

import (
	"testing"

	"batchsched/internal/engine"
	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

func TestPlacementHome(t *testing.T) {
	p := engine.Placement{NumNodes: 4, DD: 1}
	cases := []struct {
		file model.FileID
		want int
	}{{0, 0}, {1, 1}, {4, 0}, {7, 3}, {-1, 3}, {-4, 0}}
	for _, c := range cases {
		if got := p.Home(c.file); got != c.want {
			t.Errorf("Home(%d) = %d, want %d", c.file, got, c.want)
		}
	}
}

func TestPlacementNodesWrap(t *testing.T) {
	p := engine.Placement{NumNodes: 4, DD: 3}
	got := p.Nodes(3) // home 3, wraps to 0, 1
	want := []int{3, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("Nodes(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes(3) = %v, want %v", got, want)
		}
	}
}

func step(f model.FileID, m model.Mode) model.Step {
	return model.Step{File: f, LockMode: m, Write: m == model.X, Cost: 1, DeclaredCost: 1}
}

// TestDecisionLogRecords drives a wrapped scheduler through the protocol
// and checks every call lands in the log, in order, with the right shape.
func TestDecisionLogRecords(t *testing.T) {
	dl := engine.NewDecisionLog(sched.MustNew("C2PL", sched.DefaultParams()))
	t1 := model.NewTxn(1, 0, []model.Step{step(0, model.X), step(1, model.S)})
	t2 := model.NewTxn(2, 0, []model.Step{step(0, model.S)})

	if ok, _ := dl.Admit(t1); !ok {
		t.Fatal("admit T1 rejected")
	}
	if out := dl.Request(t1); out.Decision != sched.Grant {
		t.Fatalf("T1 request: %v", out.Decision)
	}
	if ok, _ := dl.Admit(t2); !ok {
		t.Fatal("admit T2 rejected")
	}
	if out := dl.Request(t2); out.Decision != sched.Block {
		t.Fatalf("T2 request: %v (C2PL holds T1's X(f0) to commit)", out.Decision)
	}
	if ok, _ := dl.Validate(t1); !ok {
		t.Fatal("validate T1 failed")
	}
	dl.Committed(t1)
	dl.Aborted(t2)

	got := dl.Entries()
	want := []engine.DecisionEntry{
		{Op: engine.OpAdmit, Txn: 1, Step: 0, File: -1, Result: "ok"},
		{Op: engine.OpRequest, Txn: 1, Step: 0, File: 0, Mode: "X", Result: "grant"},
		{Op: engine.OpAdmit, Txn: 2, Step: 0, File: -1, Result: "ok"},
		{Op: engine.OpRequest, Txn: 2, Step: 0, File: 0, Mode: "S", Result: "block"},
		{Op: engine.OpValidate, Txn: 1, Step: 0, File: -1, Result: "ok"},
		{Op: engine.OpCommitted, Txn: 1, Step: 0, File: -1},
		{Op: engine.OpAborted, Txn: 2, Step: 0, File: -1},
	}
	if len(got) != len(want) {
		t.Fatalf("logged %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
	if len(dl.AuditMarks()) != len(got) {
		t.Fatalf("marks %d, entries %d", len(dl.AuditMarks()), len(got))
	}
}

// TestDecisionLogAuditMarks checks the marks align audit output with
// protocol calls for an audited scheduler (GOW emits orientation entries).
func TestDecisionLogAuditMarks(t *testing.T) {
	dl := engine.NewDecisionLog(sched.MustNew("GOW", sched.DefaultParams()))
	a := obs.New().Audit()
	dl.SetAudit(a)
	t1 := model.NewTxn(1, 0, []model.Step{step(0, model.X)})
	t2 := model.NewTxn(2, 0, []model.Step{step(0, model.X)})
	dl.Admit(t1)
	dl.Admit(t2)
	dl.Request(t1)
	dl.Request(t2) // conflict: GOW must decide an orientation and audit it
	marks := dl.AuditMarks()
	if len(marks) != 4 {
		t.Fatalf("marks = %v, want 4 entries", marks)
	}
	if marks[len(marks)-1] != len(a.Entries()) {
		t.Fatalf("last mark %d != audit length %d", marks[len(marks)-1], len(a.Entries()))
	}
	if len(a.Entries()) == 0 {
		t.Fatal("GOW conflict produced no audit entries")
	}
	for i := 1; i < len(marks); i++ {
		if marks[i] < marks[i-1] {
			t.Fatalf("marks not monotone: %v", marks)
		}
	}
}

func TestDeterministicPrefix(t *testing.T) {
	adm := engine.DecisionEntry{Op: engine.OpAdmit, Txn: 1, File: -1, Result: "ok"}
	req0 := engine.DecisionEntry{Op: engine.OpRequest, Txn: 1, Step: 0, File: 0, Mode: "X", Result: "grant"}
	req1 := engine.DecisionEntry{Op: engine.OpRequest, Txn: 1, Step: 1, File: 1, Mode: "X", Result: "grant"}
	val := engine.DecisionEntry{Op: engine.OpValidate, Txn: 1, File: -1, Result: "ok"}
	com := engine.DecisionEntry{Op: engine.OpCommitted, Txn: 1, File: -1}
	abo := engine.DecisionEntry{Op: engine.OpAborted, Txn: 1, File: -1}

	cases := []struct {
		name    string
		entries []engine.DecisionEntry
		want    int
	}{
		{"empty", nil, 0},
		{"sweep only", []engine.DecisionEntry{adm, req0, adm, req0}, 4},
		{"cut at validate", []engine.DecisionEntry{adm, req0, val, com}, 2},
		{"cut at step>0 request", []engine.DecisionEntry{adm, req0, req1, val}, 2},
		{"cut at abort", []engine.DecisionEntry{adm, req0, abo, adm}, 2},
		{"cut at committed", []engine.DecisionEntry{adm, com}, 1},
	}
	for _, c := range cases {
		if got := engine.DeterministicPrefix(c.entries); got != c.want {
			t.Errorf("%s: DeterministicPrefix = %d, want %d", c.name, got, c.want)
		}
	}
}

// fakeBackendClock just pins that sim.Time flows through the Clock
// interface unchanged.
type fakeClock struct{ at sim.Time }

func (f fakeClock) Now() sim.Time { return f.at }

func TestClockInterface(t *testing.T) {
	var c engine.Clock = fakeClock{at: 42 * sim.Second}
	if c.Now() != 42*sim.Second {
		t.Fatal("clock did not round-trip")
	}
}
