package live_test

// Differential sim-vs-live validation (DESIGN.md §12): the same batch is
// driven through the virtual-clock simulator and the live goroutine backend
// with the same scheduler, and the scheduler-protocol call logs must agree
// on the deterministic prefix — the initial admission sweep and its
// grant/wake cascades, which both backends order by the identical CN FIFO
// queue discipline. On top of that, every live history must be
// conflict-serializable and both backends must commit the whole batch.
//
// The simulator side zeroes all CN CPU costs so the entire sweep happens at
// virtual t=0, strictly before the earliest cohort completion (service >=
// 50ms of virtual time); the live side achieves the same separation
// structurally, by draining the CN's internal job queue before consuming
// any DPN completion. Decisions made after completions feed back are
// timing-dependent under live execution and are deliberately out of scope
// (again DESIGN.md §12).

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"batchsched/internal/engine"
	"batchsched/internal/engine/live"
	"batchsched/internal/history"
	"batchsched/internal/machine"
	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

// diffSeeds is the number of randomized workloads each scheduler is
// differentially tested on (satellite requirement: >= 200; -short trims).
var diffSeeds = flag.Int("diffseeds", 200, "seeded workloads per scheduler in TestSimVsLiveDecisions")

// diffSchedulers are the schedulers under differential test. LOW-LB is
// excluded: its decisions read live DPN queue lengths, which are
// timing-dependent by design and cannot match the simulator's probe.
var diffSchedulers = []string{"NODC", "ASL", "GOW", "LOW", "C2PL", "C2PL+M", "OPT", "2PL"}

// zeroCPUParams removes all scheduler CPU costs so the simulator's
// admission sweep completes at virtual t=0.
func zeroCPUParams() sched.Params {
	p := sched.DefaultParams()
	p.DDTime, p.KWTPGTime, p.ChainTime, p.TopTime = 0, 0, 0, 0
	p.MPL = 3 // gives C2PL+M a real admission limit to differ on
	return p
}

// randomBatch generates a random contended batch: 1-4 steps per
// transaction over numFiles files, mixed S/X modes, fractional costs.
// Costs stay >= 0.2 objects so the earliest simulated completion (>= 50ms
// at DD <= 4) lands strictly after the t=0 admission sweep. A transaction
// locks each file at the strongest mode it will ever need on it (the
// paper's Xr declarations do the same): incremental S-then-X upgrades
// livelock plain 2PL — two readers aborting each other's upgrade forever —
// and the paper's transaction model deliberately excludes them.
func randomBatch(rng *sim.RNG, numFiles, n int) [][]model.Step {
	out := make([][]model.Step, n)
	for i := range out {
		steps := make([]model.Step, 1+rng.Intn(4))
		strongest := make(map[model.FileID]model.Mode)
		for j := range steps {
			write := rng.Float64() < 0.5
			mode := model.S
			if write || rng.Float64() < 0.5 {
				mode = model.X // Xr steps as in Experiment 1
			}
			cost := 0.2 + 2.8*rng.Float64()
			steps[j] = model.Step{
				File:         model.FileID(rng.Intn(numFiles)),
				Write:        write,
				LockMode:     mode,
				Cost:         cost,
				DeclaredCost: cost,
			}
			if mode == model.X {
				strongest[steps[j].File] = model.X
			}
		}
		for j := range steps {
			if strongest[steps[j].File] == model.X {
				steps[j].LockMode = model.X
			}
		}
		out[i] = steps
	}
	return out
}

// diffRun is one backend's observed execution.
type diffRun struct {
	entries  []engine.DecisionEntry
	marks    []int
	audit    []obs.AuditEntry
	rec      *history.Recorder
	commits  int
	restarts int
}

func runSimDiff(t *testing.T, name string, numFiles, dd int, batch [][]model.Step) diffRun {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumNodes = 4
	cfg.NumFiles = numFiles
	cfg.DD = dd
	cfg.ArrivalRate = 0
	cfg.MsgTime, cfg.SOTTime, cfg.COTTime, cfg.NetDelay = 0, 0, 0, 0
	cfg.Duration = 4 * 3_600_000 * sim.Millisecond // horizon, not a target
	// With zero CPU costs a 2PL deadlock victim restarts at the very
	// instant its conflictors re-request, and high-contention batches can
	// thrash restarts forever (the pathology the paper's batch schedulers
	// exist to prevent). Spacing restarts out breaks those cycles; it
	// cannot affect the compared decision prefix, which by definition ends
	// at the first abort.
	// The delay must exceed a step's service time (0.2-3 objects at 1s per
	// object) or victims rejoin before survivors progress and the orbit
	// persists regardless of jitter.
	cfg.RestartDelay = 4 * sim.Second
	cfg.RestartJitter = true
	dl := engine.NewDecisionLog(sched.MustNew(name, zeroCPUParams()))
	m, err := machine.New(cfg, dl, nil, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	o.SetSampleInterval(0)
	m.SetObs(o)
	rec := history.New()
	if name == "OPT" {
		rec = history.NewDeferredWrites()
	}
	m.SetObserver(rec)
	for _, steps := range batch {
		m.Submit(steps)
	}
	sum := m.RunClosed(cfg.Duration)
	if m.InFlight() != 0 {
		t.Fatalf("sim %s: %d transactions still in flight at horizon", name, m.InFlight())
	}
	return diffRun{
		entries: dl.Entries(), marks: dl.AuditMarks(), audit: o.Audit().Entries(),
		rec: rec, commits: sum.Completions, restarts: sum.Restarts,
	}
}

func runLiveDiff(t *testing.T, name string, numFiles, dd int, batch [][]model.Step) diffRun {
	t.Helper()
	cfg := live.DefaultConfig()
	cfg.NumNodes = 4
	cfg.NumFiles = numFiles
	cfg.DD = dd
	cfg.RowsPerObject = 32
	cfg.Deadline = 60 * time.Second
	// Same role as the sim side's RestartDelay: break 2PL restart livelock
	// (a victim instantly re-acquiring the locks its abort just released).
	cfg.RestartDelay = 10 * time.Millisecond
	cfg.RestartJitter = true
	dl := engine.NewDecisionLog(sched.MustNew(name, zeroCPUParams()))
	b, err := live.New(cfg, dl)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	o.SetSampleInterval(0)
	b.SetObs(o)
	rec := history.New()
	if name == "OPT" {
		rec = history.NewDeferredWrites()
	}
	rec.SetMonotone(true)
	b.SetObserver(rec)
	for _, steps := range batch {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		t.Fatalf("live %s: %v", name, err)
	}
	if name != "NODC" && name != "OPT" {
		if v := b.Violations(); v != 0 {
			t.Fatalf("live %s: %d lock-guard violations", name, v)
		}
	}
	return diffRun{
		entries: dl.Entries(), marks: dl.AuditMarks(), audit: o.Audit().Entries(),
		rec: rec, commits: sum.Completions, restarts: sum.Restarts,
	}
}

// comparePrefix asserts the two decision logs agree on the deterministic
// prefix and returns its length.
func comparePrefix(t *testing.T, name string, n int, s, l diffRun) int {
	t.Helper()
	ps, pl := engine.DeterministicPrefix(s.entries), engine.DeterministicPrefix(l.entries)
	p := ps
	if pl < p {
		p = pl
	}
	// Every admission of the initial sweep, and at least the first lock
	// request, must be inside the compared region — otherwise the test
	// would pass vacuously.
	if p < n+1 && name != "2PL" {
		t.Fatalf("%s: deterministic prefix %d too short (batch %d)", name, p, n)
	}
	for i := 0; i < p; i++ {
		if s.entries[i] != l.entries[i] {
			t.Fatalf("%s: decision %d differs:\n  sim:  %v\n  live: %v", name, i, s.entries[i], l.entries[i])
		}
	}
	return p
}

// compareAudit asserts GOW/LOW produced identical audit streams (candidate
// sets, E(q)/E(p) estimates, orientation notes) over the deterministic
// decision prefix, ignoring only the timestamps.
func compareAudit(t *testing.T, name string, p int, s, l diffRun) {
	t.Helper()
	if p == 0 {
		return
	}
	k := s.marks[p-1]
	if lk := l.marks[p-1]; lk != k {
		t.Fatalf("%s: audit prefix lengths differ: sim %d, live %d", name, k, lk)
	}
	for i := 0; i < k; i++ {
		a, b := s.audit[i], l.audit[i]
		a.AtMS, b.AtMS = 0, 0
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("%s: audit entry %d differs:\n  sim:  %+v\n  live: %+v", name, i, a, b)
		}
	}
}

// TestSimVsLiveDecisions is the headline differential suite: >= 200 seeded
// workloads, every scheduler, both backends. Asserts per seed:
//   - identical decision logs over the deterministic prefix (admissions,
//     step-0 grants/blocks/delays and their wake cascades),
//   - identical GOW/LOW audit streams (orientation decisions) over that
//     prefix,
//   - both backends commit the whole batch,
//   - every live history is conflict-serializable (NODC excepted).
func TestSimVsLiveDecisions(t *testing.T) {
	seeds := *diffSeeds
	if testing.Short() {
		seeds = 25
	}
	for _, name := range diffSchedulers {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				rng := sim.NewRNG(int64(1000 + seed)).Stream("diff")
				numFiles := 3 + rng.Intn(8)
				dd := 1 + rng.Intn(3)
				n := 8 + rng.Intn(9)
				batch := randomBatch(rng, numFiles, n)

				s := runSimDiff(t, name, numFiles, dd, batch)
				l := runLiveDiff(t, name, numFiles, dd, batch)

				if s.commits != n {
					t.Fatalf("seed %d: sim committed %d/%d", seed, s.commits, n)
				}
				if l.commits != n {
					t.Fatalf("seed %d: live committed %d/%d", seed, l.commits, n)
				}
				p := comparePrefix(t, fmt.Sprintf("%s seed %d", name, seed), n, s, l)
				if name == "GOW" || name == "LOW" {
					compareAudit(t, fmt.Sprintf("%s seed %d", name, seed), p, s, l)
				}
				if name != "NODC" {
					if err := s.rec.CheckSerializable(); err != nil {
						t.Fatalf("seed %d: sim history: %v", seed, err)
					}
					if err := l.rec.CheckSerializable(); err != nil {
						t.Fatalf("seed %d: live history: %v", seed, err)
					}
				}
			}
		})
	}
}

// TestSimVsLiveAdmittedSets pins the coarser invariant the tentpole names
// explicitly — for identical workloads, the *admitted transaction sets* of
// the initial sweep are identical across backends — on a larger batch than
// the per-seed runs use.
func TestSimVsLiveAdmittedSets(t *testing.T) {
	rng := sim.NewRNG(42).Stream("admitted")
	// 16 files keeps contention moderate: 40 all-X transactions on very few
	// files thrash plain 2PL into a restart storm that never drains (the
	// paper's Figure-style thrashing regime), which is not what this test
	// is probing.
	batch := randomBatch(rng, 16, 40)
	for _, name := range diffSchedulers {
		s := runSimDiff(t, name, 16, 2, batch)
		l := runLiveDiff(t, name, 16, 2, batch)
		admitted := func(r diffRun) []string {
			var out []string
			for _, e := range r.entries[:engine.DeterministicPrefix(r.entries)] {
				if e.Op == engine.OpAdmit {
					out = append(out, fmt.Sprintf("T%d=%s", e.Txn, e.Result))
				}
			}
			return out
		}
		sa, la := admitted(s), admitted(l)
		if fmt.Sprintf("%v", sa) != fmt.Sprintf("%v", la) {
			t.Fatalf("%s: admitted sets differ:\n  sim:  %v\n  live: %v", name, sa, la)
		}
		if len(sa) == 0 {
			t.Fatalf("%s: no admissions observed", name)
		}
	}
}
