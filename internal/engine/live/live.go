// Package live is the real-execution backend: the same scheduler core the
// simulator drives, executed for real — one goroutine per data-processing
// node over an in-memory partitioned store, Go channels for CN<->DPN
// messaging, wall-clock round-robin service, and per-DPN lock tables
// (internal/lock) checking at the data that the scheduler's grants were
// compatible.
//
// The control node is one goroutine owning the scheduler, the metrics
// collector and every observer, so all of those stay single-threaded
// exactly as under simulation. It processes an internal FIFO job queue
// (admissions, lock requests, step completions, commits) with the same
// queue discipline as machine.controlNode, and — critically — drains that
// queue fully before consuming the next DPN completion. That discipline is
// what pins the scheduler-call order of the initial admission sweep and its
// grant/wake cascades to the simulator's, making sim-vs-live decision logs
// comparable (DESIGN.md §12).
//
// A live run is a closed batch: Submit every transaction, then Run drives
// the batch to commit and summarizes at the makespan. There is no arrival
// process and no fault injection.
package live

import (
	"fmt"
	"sync"
	"time"

	"strconv"

	"batchsched/internal/admit"
	"batchsched/internal/engine"
	"batchsched/internal/metrics"
	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/obs/stream"
	"batchsched/internal/pool"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

// Config parameterizes a live run. The machine-shape fields (NumNodes,
// NumFiles, DD) mean exactly what they mean in machine.Config; the
// execution fields replace virtual service times with real work.
type Config struct {
	// NumNodes is the number of data-processing nodes (goroutines).
	NumNodes int
	// NumFiles is the database size in files.
	NumFiles int
	// DD is the degree of declustering: a step of cost C runs as DD
	// cohorts of C/DD objects on consecutive nodes.
	DD int
	// MPL caps admitted-and-uncommitted transactions (0 = unlimited),
	// machine-level admission control as in machine.Config.
	MPL int
	// RowsPerObject sizes the store: each partition slab is one object of
	// this many rows, and a step of cost C scans C*RowsPerObject/DD rows
	// per cohort.
	RowsPerObject int
	// PacePerObject is a wall-time floor per object scanned (spread over
	// the 1/DD-object quanta). 0 runs compute-bound — as fast as the store
	// scan goes. Set it when service time should dominate scheduling
	// overhead, e.g. for throughput-ranking runs.
	PacePerObject time.Duration
	// RestartDelay holds an aborted transaction out of admission for this
	// much wall time before it retries, mirroring machine.Config's field of
	// the same name. Without it, a strict-2PL deadlock victim re-acquires
	// its first-step locks the instant they release, which can starve the
	// very conflictor its abort was supposed to unblock (restart livelock).
	// 0 retries immediately.
	RestartDelay time.Duration
	// RestartJitter randomizes each hold-back to uniform [0.5, 1.5) x
	// RestartDelay, exactly as machine.Config.RestartJitter: fixed delays
	// can phase-lock symmetric deadlock victims into a periodic restart
	// orbit. Ignored when RestartDelay is zero.
	RestartJitter bool
	// Deadline aborts a stalled run (lost completion, scheduler livelock)
	// instead of hanging the process; Err reports the stall. Default 30s.
	Deadline time.Duration
	// SampleEvery is the observability sampling period on the wall clock
	// (0 = sample only at Finish).
	SampleEvery time.Duration
	// Service switches the backend into streaming-admission mode
	// (internal/admit; see service.go): use RunService instead of
	// Submit+Run. The window bound comes from Service.MPL, so MPL must be 0.
	Service *admit.Policy
	// ServiceDuration is the wall-time span of a service run (required in
	// service mode): arrivals stop after it and the run drains.
	ServiceDuration time.Duration
}

// DefaultConfig mirrors the simulator's machine shape (8 nodes, 16 files,
// DD 1) with a small store and compute-bound service.
func DefaultConfig() Config {
	return Config{
		NumNodes:      8,
		NumFiles:      16,
		DD:            1,
		RowsPerObject: 64,
		Deadline:      30 * time.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumNodes < 1 {
		return fmt.Errorf("live: NumNodes must be >= 1, got %d", c.NumNodes)
	}
	if c.NumFiles < 1 {
		return fmt.Errorf("live: NumFiles must be >= 1, got %d", c.NumFiles)
	}
	if c.DD < 1 || c.DD > c.NumNodes {
		return fmt.Errorf("live: DD must be in [1, NumNodes=%d], got %d", c.NumNodes, c.DD)
	}
	if c.RowsPerObject < 1 {
		return fmt.Errorf("live: RowsPerObject must be >= 1, got %d", c.RowsPerObject)
	}
	if c.MPL < 0 {
		return fmt.Errorf("live: MPL must be >= 0, got %d", c.MPL)
	}
	if c.RestartDelay < 0 {
		return fmt.Errorf("live: RestartDelay must be >= 0, got %v", c.RestartDelay)
	}
	if c.Service != nil {
		if err := c.Service.Validate(); err != nil {
			return err
		}
		if c.MPL != 0 {
			return fmt.Errorf("live: service mode takes its window from Service.MPL; Config.MPL must be 0, got %d", c.MPL)
		}
		if c.ServiceDuration <= 0 {
			return fmt.Errorf("live: service mode needs ServiceDuration > 0, got %v", c.ServiceDuration)
		}
	}
	return nil
}

// liveOp codes the CN's internal jobs (the live analogue of machine's
// op-coded cnJob).
type liveOp int

const (
	opAdmit liveOp = iota
	opRequest
	opStepDone
	opCommit
)

type liveJob struct {
	op  liveOp
	e   *texec
	run *liveRun
}

// texec is the runtime wrapper around one transaction (live analogue of
// machine.exec).
type texec struct {
	txn      *model.Txn
	admitted bool
	class    admit.Class // service class (service mode only)
	run      *liveRun

	txnSpan    obs.SpanID
	admitSpan  obs.SpanID
	waitSpan   obs.SpanID
	stepSpan   obs.SpanID
	commitSpan obs.SpanID
	waitSince  sim.Time
}

// liveRun is one step dispatch: DD cohorts in flight, counted down by
// completions.
type liveRun struct {
	e       *texec
	pending int
}

// Backend is one live run: build with New, Submit the batch, call Run once.
// All methods are driven from one goroutine (the caller's, which becomes
// the CN); only the DPN workers run concurrently.
type Backend struct {
	cfg   Config
	sch   sched.Scheduler
	met   *metrics.Collector
	clk   *wallClock
	place engine.Placement

	dpns []*dpnWorker
	comp chan completion
	wg   sync.WaitGroup

	restartQ       chan *texec
	restartPending int
	restartRNG     *sim.RNG

	obs engine.Observer

	ob          *obs.Observer
	obsGrant    *obs.Counter
	obsBlock    *obs.Counter
	obsDelay    *obs.Counter
	obsRestart  *obs.Counter
	obsCommit   *obs.Counter
	obsLockWait *obs.Histogram
	obsRetries  *obs.Histogram
	lastSample  sim.Time

	// Streaming instruments (telemetry for the /metrics endpoint). All nil
	// when telemetry is off; every update below is nil-receiver safe and the
	// rest are guarded on b.stream, so the disabled cost is one pointer test.
	stream      *stream.Set
	strGrants   *stream.Rate
	strBlocks   *stream.Rate
	strRestarts *stream.Rate
	strCommits  *stream.Rate
	strRT       *stream.Sketch
	strActive   *stream.Gauge
	strWaiting  *stream.Gauge

	// Service-mode state (service.go); svc is nil outside service mode.
	svc           *admit.Service
	window        int // popped from the queue, not yet committed or evicted
	epochNum      int
	epochStart    sim.Time
	epochPrev     admit.Stats
	epochRTs      []sim.Time
	epochHook     func(admit.EpochStats)
	strSheds      *stream.Rate
	strQueueDepth *stream.Gauge
	strSojournUS  *stream.Gauge

	txns    []*texec
	jobs    []liveJob
	admitQ  []*texec
	blocked map[model.FileID][]*texec
	delayed []*texec

	// workPool backs the scheduler's parallel decision engine when the
	// scheduler implements sched.DecisionParallel with DecisionWorkers > 1
	// (nil otherwise); screenBuf is fillWindowLive's prescreen batch.
	workPool  *pool.Pool
	screenBuf []*model.Txn

	nextID     int64
	active     int
	completed  int
	checksum   uint64
	violations int
	cnBusy     time.Duration
	ran        bool
	err        error
}

// Backend is an execution backend.
var _ engine.Backend = (*Backend)(nil)

// New builds a live backend. The scheduler must be fresh (one per run).
func New(cfg Config, s sched.Scheduler) (*Backend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("live: nil scheduler")
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	b := &Backend{
		cfg:        cfg,
		sch:        s,
		met:        metrics.NewCollector(cfg.NumNodes, 0),
		clk:        newWallClock(),
		place:      engine.Placement{NumNodes: cfg.NumNodes, DD: cfg.DD},
		blocked:    make(map[model.FileID][]*texec),
		restartRNG: sim.NewRNG(1).Stream("restart"),
	}
	// The CN goroutine owns the scheduler either way; a decision lane only
	// parallelizes the evaluation inside one scheduler call, so decisions
	// stay byte-identical to the sequential path (DESIGN.md §17). Workers
	// start lazily, so a pool that never fans out costs nothing.
	if dp, ok := s.(sched.DecisionParallel); ok && dp.DecisionWorkers() > 1 {
		b.workPool = pool.New("live", dp.DecisionWorkers())
		dp.SetDecisionLane(b.workPool.Lane("decision"))
	}
	return b, nil
}

// stopPool shuts the decision workers down (Run/RunService call it on exit
// so a run leaves no goroutines behind).
func (b *Backend) stopPool() {
	if b.workPool != nil {
		b.workPool.Stop()
	}
}

// Now returns the wall time elapsed since New, in sim.Time microseconds
// (engine.Clock).
func (b *Backend) Now() sim.Time { return b.clk.Now() }

// SetObserver installs an execution observer (history recorder etc.). It is
// called only from the CN goroutine, so the same single-threaded recorders
// work on both backends.
func (b *Backend) SetObserver(o engine.Observer) { b.obs = o }

// SetObs attaches the observability layer, mirroring machine.SetObs:
// lifecycle and cohort spans, decision counters, the lock-wait histogram,
// scheduler audit (stamped with the wall clock) and registry gauges sampled
// on cfg.SampleEvery. Call before Run.
func (b *Backend) SetObs(o *obs.Observer) {
	if o == nil {
		return
	}
	b.ob = o
	b.obsGrant = o.Counter("grants")
	b.obsBlock = o.Counter("blocks")
	b.obsDelay = o.Counter("delays")
	b.obsRestart = o.Counter("restarts")
	b.obsCommit = o.Counter("commits")
	b.obsLockWait = o.Histogram("lock_wait_ms",
		[]float64{1, 10, 100, 1_000, 10_000, 60_000, 300_000})
	b.obsRetries = o.Histogram("restarts_per_txn",
		[]float64{0, 1, 2, 5, 10})
	o.Gauge("active_txns", func() float64 { return float64(b.active) })
	o.Gauge("waiting_txns", func() float64 {
		n := len(b.delayed)
		for _, l := range b.blocked {
			n += len(l)
		}
		return float64(n)
	})
	o.Gauge("cn_busy_ms", func() float64 { return float64(b.cnBusy) / float64(time.Millisecond) })
	o.Audit().SetClock(b.clk.Now)
	if a, ok := b.sch.(sched.Audited); ok {
		a.SetAudit(o.Audit())
	}
}

// SetStream attaches the streaming telemetry registry: wall-clock decision
// and commit rates, the response-time quantile sketch, active/waiting
// gauges, clamp counters, and (registered in Run, once the workers exist)
// per-DPN queue-depth, busy-time and row-scan instruments. Unlike SetObs,
// these are written on the hot path and read concurrently by the scrape
// endpoint — which is why they are stream instruments (atomics) and not
// registry gauges over CN fields. Call before Run; a nil set disables.
func (b *Backend) SetStream(set *stream.Set) {
	if set == nil {
		return
	}
	b.stream = set
	const win, slot = 10 * time.Second, time.Second
	b.strGrants = set.Rate("live_grants", "Scheduler grant decisions.", win, slot)
	b.strBlocks = set.Rate("live_blocks", "Scheduler block decisions.", win, slot)
	b.strRestarts = set.Rate("live_restarts", "Transaction aborts and restarts.", win, slot)
	b.strCommits = set.Rate("live_commits", "Committed transactions.", win, slot)
	b.strRT = set.Sketch("live_rt_seconds", "Transaction response time in seconds.")
	b.strActive = set.Gauge("live_active_txns", "Admitted and uncommitted transactions.")
	b.strWaiting = set.Gauge("live_waiting_txns", "Blocked, policy-delayed, or admission-parked transactions.")
	set.GaugeFunc("obs_clock_clamps", "Monotone clock-regression clamps in the observability layer (span ends plus samples).", func() float64 {
		ends, samples := b.ob.ClockClamps()
		return float64(ends + samples)
	})
}

// mark counts one event on a stream rate at the current wall clock.
func (b *Backend) mark(r *stream.Rate) {
	if r != nil {
		r.Add(b.clk.Now(), 1)
	}
}

// sampleStreamGauges refreshes the CN-owned point-in-time gauges. Called
// from the CN loop so the scrape endpoint never reads CN fields directly.
func (b *Backend) sampleStreamGauges() {
	if b.stream == nil {
		return
	}
	b.strActive.Set(int64(b.active))
	n := len(b.delayed) + len(b.admitQ)
	for _, l := range b.blocked {
		n += len(l)
	}
	b.strWaiting.Set(int64(n))
}

// ClockClamps reports the attached observer's monotone clock-clamp
// counters (zero when no observer is attached). Safe from any goroutine.
func (b *Backend) ClockClamps() (spanEnds, samples int64) { return b.ob.ClockClamps() }

// SLOSnapshot is the /slo endpoint's view of a run in flight, assembled
// entirely from streaming instruments (atomics), so it can be taken from
// the scrape goroutine while the CN and DPNs execute.
type SLOSnapshot struct {
	ActiveTxns    int64   `json:"activeTxns"`
	WaitingTxns   int64   `json:"waitingTxns"`
	Commits       int64   `json:"commits"`
	CommitsPerSec float64 `json:"commitsPerSec"`
	Grants        int64   `json:"grants"`
	Blocks        int64   `json:"blocks"`
	Restarts      int64   `json:"restarts"`
	P50RTSeconds  float64 `json:"p50RtSeconds"`
	P95RTSeconds  float64 `json:"p95RtSeconds"`
	ClockClamps   int64   `json:"clockClamps"`
}

// Snapshot returns the current SLO snapshot (zero value when no stream set
// is attached). Safe from any goroutine.
func (b *Backend) Snapshot() SLOSnapshot {
	if b.stream == nil {
		return SLOSnapshot{}
	}
	ends, samples := b.ClockClamps()
	return SLOSnapshot{
		ActiveTxns:    b.strActive.Value(),
		WaitingTxns:   b.strWaiting.Value(),
		Commits:       b.strCommits.Total(),
		CommitsPerSec: b.strCommits.RatePerSec(b.clk.Now()),
		Grants:        b.strGrants.Total(),
		Blocks:        b.strBlocks.Total(),
		Restarts:      b.strRestarts.Total(),
		P50RTSeconds:  b.strRT.Quantile(0.5),
		P95RTSeconds:  b.strRT.Quantile(0.95),
		ClockClamps:   ends + samples,
	}
}

// Submit adds one transaction to the batch. Call before Run.
func (b *Backend) Submit(steps []model.Step) *model.Txn {
	if b.ran {
		panic("live: Submit after Run")
	}
	b.nextID++
	t := model.NewTxn(b.nextID, b.clk.Now(), steps)
	b.txns = append(b.txns, &texec{txn: t})
	return t
}

// InFlight reports how many submitted transactions have not committed.
func (b *Backend) InFlight() int { return int(b.nextID) - b.completed }

// Err reports whether the run stalled against its deadline (nil on a clean
// drain).
func (b *Backend) Err() error { return b.err }

// Violations returns the number of incompatible cohort co-residencies the
// DPN lock guards observed (only valid after Run). Zero for every real
// scheduler; positive under NODC by design.
func (b *Backend) Violations() int { return b.violations }

// Checksum returns the accumulated read checksum (proof the store scans
// really ran; also defeats dead-code elimination).
func (b *Backend) Checksum() uint64 { return b.checksum }

// Run executes the batch to commit and returns the summary, its window the
// batch makespan. A stall (which would mean a protocol bug — see the
// capacity argument below) is cut at cfg.Deadline and reported by Err.
func (b *Backend) Run() metrics.Summary {
	if b.ran {
		panic("live: Run called twice")
	}
	b.ran = true
	n := len(b.txns)

	// Channel capacities make every send non-blocking, which is the
	// deadlock-freedom argument: a transaction has at most one active step,
	// so at most n cohorts can be resident (or queued) per node and at most
	// n*NumNodes completions can be outstanding. Sized so, the CN never
	// blocks sending a cohort and a DPN never blocks sending a completion,
	// hence no send cycle exists to deadlock on.
	b.comp = make(chan completion, n*b.cfg.NumNodes+1)
	// At most one pending restart per transaction, so this capacity makes
	// the delayed-restart timer sends non-blocking too.
	b.restartQ = make(chan *texec, n+1)
	quantum := b.cfg.RowsPerObject / b.cfg.DD
	if quantum < 1 {
		quantum = 1
	}
	b.dpns = make([]*dpnWorker, b.cfg.NumNodes)
	for i := range b.dpns {
		b.dpns[i] = &dpnWorker{
			id:          i,
			in:          make(chan *liveCohort, n+1),
			comp:        b.comp,
			clk:         b.clk,
			part:        make(map[model.FileID][]uint64),
			slabRows:    b.cfg.RowsPerObject,
			quantumRows: quantum,
			pace:        time.Duration(float64(b.cfg.PacePerObject) / float64(b.cfg.DD)),
			guard:       newDataGuard(),
			wg:          &b.wg,
		}
		if b.stream != nil {
			node := strconv.Itoa(i)
			d := b.dpns[i]
			d.strQueue = b.stream.Gauge("live_dpn_queue_depth",
				"Cohorts resident in the node's service ring.", "node", node)
			d.strBusyUS = b.stream.Gauge("live_dpn_busy_us",
				"Cumulative busy time at the node in microseconds.", "node", node)
			d.strRows = b.stream.Rate("live_dpn_rows_scanned",
				"Rows scanned by the node.", 10*time.Second, time.Second, "node", node)
		}
		b.wg.Add(1)
		go b.dpns[i].loop()
	}

	for _, e := range b.txns {
		b.met.Arrival(b.clk.Now())
		if b.ob.Enabled() {
			e.txnSpan = b.ob.Begin("txn", "txn", e.txn.ID, -1, -1, 0, b.clk.Now())
		}
		b.jobs = append(b.jobs, liveJob{op: opAdmit, e: e})
	}

	deadline := time.NewTimer(b.cfg.Deadline)
	defer deadline.Stop()
	for b.completed < n {
		// Drain the internal queue fully before the next completion: the
		// ordering discipline that matches the simulator's CN.
		for len(b.jobs) > 0 {
			j := b.jobs[0]
			b.jobs = b.jobs[1:]
			t0 := time.Now()
			b.process(j)
			b.cnBusy += time.Since(t0)
		}
		if b.completed >= n {
			break
		}
		select {
		case c := <-b.comp:
			b.handleCompletion(c)
		case e := <-b.restartQ:
			b.restartPending--
			b.jobs = append(b.jobs, liveJob{op: opAdmit, e: e})
		case <-deadline.C:
			b.err = fmt.Errorf("live: stalled after %v: %d/%d committed, %d jobs queued, active=%d blocked=%d delayed=%d admitQ=%d restarting=%d",
				b.cfg.Deadline, b.completed, n, len(b.jobs), b.active, len(b.blocked), len(b.delayed), len(b.admitQ), b.restartPending)
		}
		if b.err != nil {
			break
		}
		b.sampleStreamGauges()
		if b.ob.Enabled() && b.cfg.SampleEvery > 0 {
			if now := b.clk.Now(); now-b.lastSample >= sim.Time(b.cfg.SampleEvery/time.Microsecond) {
				b.lastSample = now
				b.ob.SampleNow(now)
			}
		}
	}

	for _, d := range b.dpns {
		close(d.in)
	}
	b.wg.Wait()
	b.stopPool()
	for _, d := range b.dpns {
		b.met.DPNBusy(d.id, sim.Time(d.busy/time.Microsecond))
		b.violations += d.violations
	}
	b.met.CNBusy(sim.Time(b.cnBusy / time.Microsecond))
	now := b.clk.Now()
	b.ob.Finish(now)
	return b.met.Summarize(now)
}

// process runs one CN job: the scheduler call (the job body) and its
// consequences (the continuation), exactly as machine.cnBody/cnFinish pair
// them — with zero CPU charge, body and continuation are adjacent there
// too, so inlining them preserves the scheduler-call order.
func (b *Backend) process(j liveJob) {
	switch j.op {
	case opAdmit:
		b.processAdmit(j.e)
	case opRequest:
		b.processRequest(j.e)
	case opStepDone:
		b.processStepDone(j.run)
	case opCommit:
		b.processCommit(j.e)
	default:
		panic(fmt.Sprintf("live: unknown CN op %d", j.op))
	}
}

func (b *Backend) processAdmit(e *texec) {
	if b.cfg.MPL > 0 && b.active >= b.cfg.MPL && !e.admitted {
		b.parkAdmit(e)
		return
	}
	ok, _ := b.sch.Admit(e.txn)
	if !ok {
		b.met.AdmissionReject()
		e.txn.AdmissionTries++
		b.parkAdmit(e)
		return
	}
	if !e.admitted {
		e.admitted = true
		b.active++
	}
	e.txn.Status = model.Active
	if e.admitSpan != 0 {
		b.ob.End(e.admitSpan, b.clk.Now())
		e.admitSpan = 0
	}
	b.nextStep(e)
}

func (b *Backend) parkAdmit(e *texec) {
	if b.ob.Enabled() && e.admitSpan == 0 {
		e.admitSpan = b.ob.Begin("admit-wait", "txn", e.txn.ID, -1, -1, e.txnSpan, b.clk.Now())
	}
	b.admitQ = append(b.admitQ, e)
}

func (b *Backend) nextStep(e *texec) {
	if e.txn.Done() {
		if b.ob.Enabled() {
			e.commitSpan = b.ob.Begin("commit", "txn", e.txn.ID, -1, -1, e.txnSpan, b.clk.Now())
		}
		b.jobs = append(b.jobs, liveJob{op: opCommit, e: e})
		return
	}
	b.jobs = append(b.jobs, liveJob{op: opRequest, e: e})
}

func (b *Backend) processRequest(e *texec) {
	out := b.sch.Request(e.txn)
	switch out.Decision {
	case sched.Grant:
		b.met.Granted()
		b.obsGrant.Inc()
		b.mark(b.strGrants)
		b.endWait(e)
		if b.ob.Enabled() {
			e.stepSpan = b.ob.Begin("execute", "txn", e.txn.ID, -1,
				e.txn.StepIndex, e.txnSpan, b.clk.Now())
		}
		b.executeStep(e)
		b.wakeDelayed() // a grant changes the scheduling state
	case sched.Block:
		b.met.Block()
		b.obsBlock.Inc()
		b.mark(b.strBlocks)
		b.beginWait(e)
		file := e.txn.CurrentStep().File
		b.blocked[file] = append(b.blocked[file], e)
	case sched.Delay:
		b.met.Delay()
		b.obsDelay.Inc()
		b.beginWait(e)
		b.delayed = append(b.delayed, e)
	case sched.Abort:
		// Deadlock victim (strict 2PL): roll back, release, restart. No
		// cohorts are in flight — the decision happened at request time.
		b.met.Restart()
		b.obsRestart.Inc()
		b.mark(b.strRestarts)
		e.txn.Restarts++
		b.endWait(e)
		b.sch.Aborted(e.txn)
		e.txn.StepIndex = 0
		if b.obs != nil {
			b.obs.Restarted(e.txn, b.clk.Now())
		}
		b.wakeCommit(e.txn) // its released locks may unblock others
		b.restartAfterDelay(e)
	default:
		panic(fmt.Sprintf("live: unexpected request decision %v", out.Decision))
	}
}

func (b *Backend) beginWait(e *texec) {
	if !b.ob.Enabled() || e.waitSpan != 0 {
		return
	}
	e.waitSince = b.clk.Now()
	e.waitSpan = b.ob.Begin("lock-wait", "txn", e.txn.ID, -1,
		e.txn.StepIndex, e.txnSpan, e.waitSince)
}

func (b *Backend) endWait(e *texec) {
	if e.waitSpan == 0 {
		return
	}
	now := b.clk.Now()
	b.ob.End(e.waitSpan, now)
	d := now - e.waitSince
	if d < 0 {
		d = 0
	}
	b.obsLockWait.Observe(d.Milliseconds())
	e.waitSpan = 0
}

// executeStep dispatches the granted step as DD cohorts to the file's
// nodes. The per-node inbox is sized for the whole batch, so these sends
// never block.
func (b *Backend) executeStep(e *texec) {
	st := e.txn.CurrentStep()
	run := &liveRun{e: e}
	e.run = run
	nodes := b.place.Nodes(st.File)
	run.pending = len(nodes)
	rows := int(st.Cost*float64(b.cfg.RowsPerObject)/float64(b.cfg.DD) + 0.5)
	if rows < 1 {
		rows = 1
	}
	for _, node := range nodes {
		b.dpns[node].in <- &liveCohort{
			run: run, txn: e.txn.ID, file: st.File,
			mode: st.LockMode, write: st.Write, rows: rows,
		}
	}
}

func (b *Backend) handleCompletion(c completion) {
	if b.ob.Enabled() {
		sp := b.ob.Begin("cohort", "io", c.run.e.txn.ID, c.node,
			c.run.e.txn.StepIndex, c.run.e.stepSpan, c.start)
		b.ob.End(sp, c.end)
	}
	b.checksum += c.sum
	c.run.pending--
	if c.run.pending == 0 {
		b.jobs = append(b.jobs, liveJob{op: opStepDone, e: c.run.e, run: c.run})
	}
}

func (b *Backend) processStepDone(run *liveRun) {
	e := run.e
	e.run = nil
	if e.stepSpan != 0 {
		b.ob.End(e.stepSpan, b.clk.Now())
		e.stepSpan = 0
	}
	b.met.StepExecuted()
	step := e.txn.StepIndex
	e.txn.StepIndex++
	if b.obs != nil {
		b.obs.StepDone(e.txn, step, b.clk.Now())
	}
	b.nextStep(e)
}

func (b *Backend) processCommit(e *texec) {
	ok, _ := b.sch.Validate(e.txn)
	if !ok {
		// OPT certification failure: roll back and re-admit (restamps the
		// attempt), mirroring machine's contCommitFail.
		b.met.Restart()
		b.obsRestart.Inc()
		b.mark(b.strRestarts)
		e.txn.Restarts++
		if e.commitSpan != 0 {
			b.ob.End(e.commitSpan, b.clk.Now())
			e.commitSpan = 0
		}
		b.sch.Aborted(e.txn)
		e.txn.StepIndex = 0
		if b.obs != nil {
			b.obs.Restarted(e.txn, b.clk.Now())
		}
		b.restartAfterDelay(e)
		return
	}
	b.sch.Committed(e.txn)
	e.txn.Status = model.Committed
	b.active--
	b.completed++
	now := b.clk.Now()
	rt := now - e.txn.Arrival
	if rt < 0 {
		rt = 0
	}
	b.met.Completion(now, rt)
	if b.svc != nil {
		b.window--
		b.epochRTs = append(b.epochRTs, rt)
	}
	if b.strCommits != nil {
		b.strCommits.Add(now, 1)
		b.strRT.Observe(float64(rt) / 1e6) // sim.Time microseconds -> seconds
		b.strActive.Set(int64(b.active))
	}
	if b.ob.Enabled() {
		b.ob.End(e.commitSpan, now)
		e.commitSpan = 0
		b.ob.End(e.txnSpan, now)
		b.obsCommit.Inc()
		b.obsRetries.Observe(float64(e.txn.Restarts))
	}
	if b.obs != nil {
		b.obs.Committed(e.txn, now)
	}
	b.wakeCommit(e.txn)
}

// restartAfterDelay re-admits an aborted transaction, after the configured
// restart delay if one is set (machine.restartAfterDelay's contract on the
// wall clock: a timer hands the transaction back to the CN's select loop).
func (b *Backend) restartAfterDelay(e *texec) {
	if b.cfg.RestartDelay <= 0 {
		b.jobs = append(b.jobs, liveJob{op: opAdmit, e: e})
		return
	}
	b.restartPending++
	d := b.cfg.RestartDelay
	if b.cfg.RestartJitter {
		d = time.Duration(float64(d) * (0.5 + b.restartRNG.Float64()))
	}
	time.AfterFunc(d, func() { b.restartQ <- e })
}

// wakeCommit reconsiders everything a commit (or rollback release) can
// unblock, in machine.wakeCommit's order: requests blocked on the released
// files (ascending file order), every policy-delayed request, then the
// pending admissions FIFO.
func (b *Backend) wakeCommit(t *model.Txn) {
	files, _ := t.LockNeedSorted()
	for _, f := range files {
		list := b.blocked[f]
		if len(list) == 0 {
			continue
		}
		delete(b.blocked, f)
		for _, e := range list {
			b.jobs = append(b.jobs, liveJob{op: opRequest, e: e})
		}
	}
	b.wakeDelayed()
	if len(b.admitQ) > 0 {
		q := b.admitQ
		b.admitQ = nil
		for _, e := range q {
			b.jobs = append(b.jobs, liveJob{op: opAdmit, e: e})
		}
	}
}

// wakeDelayed resubmits every policy-delayed request.
func (b *Backend) wakeDelayed() {
	if len(b.delayed) == 0 {
		return
	}
	q := b.delayed
	b.delayed = nil
	for _, e := range q {
		b.jobs = append(b.jobs, liveJob{op: opRequest, e: e})
	}
}
