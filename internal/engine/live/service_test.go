package live_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"batchsched/internal/admit"
	"batchsched/internal/engine/live"
	"batchsched/internal/obs/stream"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// svcLiveConfig is a short wall-clock service run: paced objects so service
// time dominates, a small window and queue so backpressure is reachable
// within the test's ~1.5 s.
func svcLiveConfig(duration time.Duration) live.Config {
	cfg := live.DefaultConfig()
	cfg.NumNodes = 4
	cfg.NumFiles = 8
	cfg.RowsPerObject = 32
	cfg.PacePerObject = 20 * time.Millisecond // Pattern1 ≈ 7.2 objects ≈ 145 ms/txn
	cfg.Deadline = 20 * time.Second
	cfg.RestartDelay = 2 * time.Millisecond
	cfg.RestartJitter = true
	cfg.ServiceDuration = duration
	pol := admit.DefaultPolicy()
	pol.MPL = 4
	pol.Epoch = 50 * sim.Millisecond
	pol.MaxQueue = 16
	pol.QueueSLO = [admit.NumClasses]sim.Time{
		admit.Batch:       2 * sim.Second,
		admit.Interactive: 500 * sim.Millisecond,
	}
	pol.OverloadP95 = 1 * sim.Second
	pol.SojournWindow = 64
	cfg.Service = &pol
	return cfg
}

func TestLiveServiceConfigValidate(t *testing.T) {
	good := svcLiveConfig(time.Second)
	if err := good.Validate(); err != nil {
		t.Fatalf("service config invalid: %v", err)
	}
	bad := []func(*live.Config){
		func(c *live.Config) { c.MPL = 4 },
		func(c *live.Config) { c.ServiceDuration = 0 },
		func(c *live.Config) { p := *c.Service; p.MPL = 0; c.Service = &p },
	}
	for i, mutate := range bad {
		cfg := svcLiveConfig(time.Second)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad service config %d validated", i)
		}
	}
}

// TestLiveServiceOverload floods the backend far above capacity: shedding
// must activate, the queue must stay bounded, the run must terminate
// cleanly (no goroutine leak), and the books must balance. Run under -race
// in CI, this is also the service-mode data-race check.
func TestLiveServiceOverload(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := svcLiveConfig(1200 * time.Millisecond)
	b, err := live.New(cfg, sched.MustNew("GOW", sched.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	set := stream.NewSet()
	b.SetStream(set)
	var epochs []admit.EpochStats
	b.SetEpochHook(func(es admit.EpochStats) { epochs = append(epochs, es) })

	// Capacity at MPL 4 with ~145 ms/txn of paced work is ~25/s; offer 400/s.
	sum := b.RunService(workload.NewExp1(cfg.NumFiles), workload.Poisson{Rate: 400}, 11)
	if b.Err() != nil {
		t.Fatalf("service run stalled: %v", b.Err())
	}
	st := b.Service().Stats()
	if st.Arrivals == 0 || sum.Completions == 0 {
		t.Fatalf("no traffic: arrivals=%d completions=%d", st.Arrivals, sum.Completions)
	}
	if st.TotalShed() == 0 {
		t.Fatal("overload shed nothing")
	}
	if st.DepthHighWater > cfg.Service.MaxQueue {
		t.Fatalf("queue exceeded bound: %d > %d", st.DepthHighWater, cfg.Service.MaxQueue)
	}
	if len(epochs) == 0 {
		t.Fatal("no epochs emitted")
	}
	for _, es := range epochs {
		if es.Active > cfg.Service.MPL {
			t.Fatalf("epoch %d active %d over window %d", es.Epoch, es.Active, cfg.Service.MPL)
		}
	}
	// Books: every arrival was shed or admitted (the queue is empty after
	// the drain) and every admission completed or was evicted.
	if st.Arrivals != st.TotalShed()+st.TotalAdmitted() {
		t.Fatalf("arrival books: arrivals=%d shed=%d admitted=%d", st.Arrivals, st.TotalShed(), st.TotalAdmitted())
	}
	if st.TotalAdmitted() != sum.Completions+st.Evictions {
		t.Fatalf("admission books: admitted=%d completions=%d evictions=%d",
			st.TotalAdmitted(), sum.Completions, st.Evictions)
	}
	if sum.Sheds != st.TotalShed() {
		t.Fatalf("collector sheds %d != service %d", sum.Sheds, st.TotalShed())
	}
	if b.Violations() != 0 {
		t.Fatalf("data-guard violations: %d", b.Violations())
	}

	// Streaming instruments saw the traffic.
	var prom strings.Builder
	if err := set.WritePrometheus(&prom, b.Now()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, metric := range []string{"live_sheds_total", "live_admit_queue_depth", "live_commits_total"} {
		if !strings.Contains(prom.String(), metric) {
			t.Fatalf("stream exposition missing %s:\n%s", metric, prom.String())
		}
	}

	// Clean termination: every DPN worker, the arrivals goroutine and all
	// restart timers have exited.
	deadlineG := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadlineG) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, g)
	}
}

// TestLiveServiceSustainable: below capacity, nearly everything admits and
// completes, and the run drains without shedding pressure.
func TestLiveServiceSustainable(t *testing.T) {
	cfg := svcLiveConfig(1 * time.Second)
	b, err := live.New(cfg, sched.MustNew("C2PL", sched.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	sum := b.RunService(workload.NewExp1(cfg.NumFiles), workload.Poisson{Rate: 5}, 23)
	if b.Err() != nil {
		t.Fatalf("service run stalled: %v", b.Err())
	}
	st := b.Service().Stats()
	if sum.Completions == 0 {
		t.Fatal("no completions")
	}
	// Drain sheds at shutdown are fine; overload/queue-full sheds are not.
	if st.Shed[admit.ShedOverload] != 0 || st.Shed[admit.ShedQueueFull] != 0 {
		t.Fatalf("backpressure fired below capacity: %+v", st.Shed)
	}
}
