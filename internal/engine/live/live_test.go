package live_test

import (
	"testing"
	"time"

	"batchsched/internal/engine"
	"batchsched/internal/engine/live"
	"batchsched/internal/history"
	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

func liveConfig(numFiles, dd int) live.Config {
	cfg := live.DefaultConfig()
	cfg.NumNodes = 4
	cfg.NumFiles = numFiles
	cfg.DD = dd
	cfg.RowsPerObject = 32
	cfg.Deadline = 20 * time.Second
	cfg.RestartDelay = 2 * time.Millisecond // break 2PL restart livelock
	cfg.RestartJitter = true
	return cfg
}

// exp1Batch pre-generates n Experiment-1 transactions.
func exp1Batch(seed int64, numFiles, n int) [][]model.Step {
	gen := workload.NewExp1(numFiles)
	rng := sim.NewRNG(seed).Stream("workload")
	out := make([][]model.Step, n)
	for i := range out {
		out[i] = gen.Steps(rng)
	}
	return out
}

// TestLiveCommitsBatch drives a contended Exp-1 batch through every
// scheduler on the live backend: everything must commit, the history must
// be conflict-serializable (except NODC, which violates it by design), and
// the DPN-side lock guards must observe zero incompatible co-residencies
// (except NODC).
func TestLiveCommitsBatch(t *testing.T) {
	const n = 24
	batch := exp1Batch(7, 6, n)
	for _, name := range sched.Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := sched.DefaultParams()
			b, err := live.New(liveConfig(6, 1), sched.MustNew(name, p))
			if err != nil {
				t.Fatal(err)
			}
			rec := history.New()
			if name == "OPT" {
				rec = history.NewDeferredWrites()
			}
			rec.SetMonotone(true)
			b.SetObserver(rec)
			for _, steps := range batch {
				b.Submit(steps)
			}
			sum := b.Run()
			if err := b.Err(); err != nil {
				t.Fatal(err)
			}
			if sum.Completions != n {
				t.Fatalf("completions = %d, want %d", sum.Completions, n)
			}
			if rec.Commits() != n {
				t.Fatalf("recorded commits = %d, want %d", rec.Commits(), n)
			}
			if b.Checksum() == 0 {
				t.Error("zero checksum: store scans did not run")
			}
			if name == "NODC" {
				return // grants everything; violations and cycles expected
			}
			// OPT runs lock-free by design (conflicts surface at
			// validation), so co-residency violations are expected there;
			// serializability must still hold via certification.
			if name != "OPT" {
				if v := b.Violations(); v != 0 {
					t.Errorf("lock-guard violations = %d, want 0", v)
				}
			}
			if err := rec.CheckSerializable(); err != nil {
				t.Errorf("history not serializable: %v", err)
			}
		})
	}
}

// TestLiveDeclustering checks that DD > 1 splits steps over DD nodes and
// still commits with serializable histories.
func TestLiveDeclustering(t *testing.T) {
	const n = 12
	batch := exp1Batch(11, 8, n)
	b, err := live.New(liveConfig(8, 3), sched.MustNew("GOW", sched.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	rec := history.New()
	rec.SetMonotone(true)
	b.SetObserver(rec)
	for _, steps := range batch {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.Completions != n {
		t.Fatalf("completions = %d, want %d", sum.Completions, n)
	}
	// Every step is DD cohorts, so steps * DD completions flowed back.
	if sum.StepsExecuted != 4*n {
		t.Fatalf("steps executed = %d, want %d", sum.StepsExecuted, 4*n)
	}
	if err := rec.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
	if b.Violations() != 0 {
		t.Fatalf("violations = %d, want 0", b.Violations())
	}
}

// TestLiveMPL verifies the machine-level admission cap: with MPL=1 the
// batch serializes completely but still commits.
func TestLiveMPL(t *testing.T) {
	cfg := liveConfig(4, 1)
	cfg.MPL = 1
	b, err := live.New(cfg, sched.MustNew("LOW", sched.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for _, steps := range exp1Batch(3, 4, n) {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.Completions != n {
		t.Fatalf("completions = %d, want %d", sum.Completions, n)
	}
}

// TestLiveObservability runs with the obs layer attached: spans must cover
// every transaction, every span must have End >= Start despite wall-clock
// stamps from racing goroutines, and the audit log must be monotone.
func TestLiveObservability(t *testing.T) {
	cfg := liveConfig(6, 2)
	cfg.SampleEvery = time.Millisecond
	b, err := live.New(cfg, sched.MustNew("GOW", sched.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	o.SetSampleInterval(sim.Millisecond)
	b.SetObs(o)
	const n = 16
	for _, steps := range exp1Batch(5, 6, n) {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.Completions != n {
		t.Fatalf("completions = %d, want %d", sum.Completions, n)
	}
	txnSpans, cohortSpans := 0, 0
	for _, sp := range o.Spans() {
		if sp.End < sp.Start {
			t.Fatalf("span %q: End %v < Start %v", sp.Name, sp.End, sp.Start)
		}
		switch sp.Name {
		case "txn":
			txnSpans++
		case "cohort":
			cohortSpans++
		}
	}
	if txnSpans != n {
		t.Errorf("txn spans = %d, want %d", txnSpans, n)
	}
	if want := 4 * n * cfg.DD; cohortSpans != want {
		t.Errorf("cohort spans = %d, want %d", cohortSpans, want)
	}
	entries := o.Audit().Entries()
	if len(entries) == 0 {
		t.Fatal("no audit entries from GOW on live backend")
	}
	last := -1.0
	for i, e := range entries {
		if e.AtMS < last {
			t.Fatalf("audit entry %d: AtMS %v < previous %v", i, e.AtMS, last)
		}
		last = e.AtMS
	}
}

// TestLivePacing checks PacePerObject imposes a wall-time floor: a batch of
// known total objects cannot finish faster than the per-node share implies.
func TestLivePacing(t *testing.T) {
	cfg := liveConfig(4, 1)
	cfg.PacePerObject = 2 * time.Millisecond
	b, err := live.New(cfg, sched.MustNew("NODC", sched.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	// One transaction, one 5-object step: >= 10ms of paced service.
	steps := []model.Step{{File: 0, LockMode: model.X, Write: true, Cost: 5, DeclaredCost: 5}}
	b.Submit(steps)
	start := time.Now()
	sum := b.Run()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.Completions != 1 {
		t.Fatal("did not complete")
	}
	if el := time.Since(start); el < 9*time.Millisecond {
		t.Errorf("paced run finished in %v, want >= ~10ms", el)
	}
}

// Backend must satisfy the execution-backend interface.
var _ engine.Backend = (*live.Backend)(nil)
