package live

import (
	"sync"
	"time"

	"batchsched/internal/model"
	"batchsched/internal/obs/stream"
	"batchsched/internal/sim"
)

// liveCohort is one step's share of work at one data-processing node: scan
// rows/DD-worth of the file's partition slab, one quantum per round-robin
// turn, exactly like the simulator slices a step of cost C into 1/DD-object
// quanta.
type liveCohort struct {
	run   *liveRun
	txn   int64
	file  model.FileID
	mode  model.Mode
	write bool
	rows  int // total rows this cohort must scan

	pos     int
	arrived sim.Time
	sum     uint64
}

// completion is the DPN -> CN reply for one finished cohort.
type completion struct {
	run        *liveRun
	node       int
	start, end sim.Time // cohort residency on the shared wall clock
	sum        uint64   // read checksum (defeats dead-code elimination)
}

// dpnWorker is one data-processing node: a goroutine owning a partition
// store slab per resident file, a ring of in-service cohorts served
// round-robin one quantum at a time, and a local lock table (dataGuard)
// checking that co-resident cohorts are compatible. It communicates with
// the CN exclusively over channels: cohorts in, completions out.
type dpnWorker struct {
	id   int
	in   chan *liveCohort
	comp chan<- completion
	clk  *wallClock

	part        map[model.FileID][]uint64
	slabRows    int           // rows per partition slab (one object's worth)
	quantumRows int           // rows scanned per round-robin quantum (1/DD object)
	pace        time.Duration // wall-time floor per full quantum (0 = compute-bound)

	guard *dataGuard
	ring  []*liveCohort
	cur   int

	busy       time.Duration
	violations int
	wg         *sync.WaitGroup

	// Streaming telemetry for this node (nil when telemetry is off). Updated
	// once per service quantum; all atomic, so the scrape goroutine reads
	// them while the node serves.
	strQueue  *stream.Gauge
	strBusyUS *stream.Gauge
	strRows   *stream.Rate
}

// loop is the node's goroutine: admit every waiting cohort, serve one
// quantum, repeat; exit when the CN closes the inbox and the ring drains.
// The inbox receive blocks only when the ring is empty, so service never
// starves arrivals and arrivals never preempt a quantum.
func (d *dpnWorker) loop() {
	defer d.wg.Done()
	closed := false
	for {
		if len(d.ring) == 0 {
			if closed {
				d.violations = d.guard.Violations()
				return
			}
			c, ok := <-d.in
			if !ok {
				closed = true
				continue
			}
			d.admit(c)
		}
		// Batch in whatever else arrived while serving.
	drain:
		for !closed {
			select {
			case c, ok := <-d.in:
				if !ok {
					closed = true
				} else {
					d.admit(c)
				}
			default:
				break drain
			}
		}
		d.serve()
	}
}

// admit lands a cohort: acquire the partition lock (counting, not blocking
// on, violations) and join the service ring.
func (d *dpnWorker) admit(c *liveCohort) {
	c.arrived = d.clk.Now()
	d.guard.acquire(c.txn, c.file, c.mode)
	if _, ok := d.part[c.file]; !ok {
		slab := make([]uint64, d.slabRows)
		for i := range slab {
			slab[i] = uint64(d.id)<<48 | uint64(c.file)<<32 | uint64(i)
		}
		d.part[c.file] = slab
	}
	d.ring = append(d.ring, c)
}

// serve runs one round-robin quantum of the current cohort: scan up to
// quantumRows rows of its partition slab (reads checksum, writes stamp the
// transaction id), optionally pace to the configured wall-time floor, then
// rotate — or complete the cohort and reply to the CN.
func (d *dpnWorker) serve() {
	c := d.ring[d.cur]
	t0 := time.Now()
	slab := d.part[c.file]
	n := c.rows - c.pos
	if n > d.quantumRows {
		n = d.quantumRows
	}
	if c.write {
		for i := 0; i < n; i++ {
			slab[(c.pos+i)%len(slab)] = uint64(c.txn)<<32 | uint64(c.pos+i)
		}
	} else {
		var sum uint64
		for i := 0; i < n; i++ {
			sum += slab[(c.pos+i)%len(slab)]
		}
		c.sum += sum
	}
	c.pos += n
	if d.pace > 0 {
		floor := time.Duration(float64(d.pace) * float64(n) / float64(d.quantumRows))
		if el := time.Since(t0); el < floor {
			time.Sleep(floor - el)
		}
	}
	d.busy += time.Since(t0)
	if c.pos >= c.rows {
		d.guard.release(c.txn)
		// The completions channel is sized for every submitted transaction
		// to have a resident cohort here at once, so this send cannot block
		// — the deadlock-freedom argument of DESIGN.md §12.
		d.comp <- completion{run: c.run, node: d.id, start: c.arrived, end: d.clk.Now(), sum: c.sum}
		d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
		if d.cur >= len(d.ring) {
			d.cur = 0
		}
	} else {
		d.cur = (d.cur + 1) % len(d.ring)
	}
	if d.strRows != nil {
		d.strRows.Add(d.clk.Now(), int64(n))
		d.strBusyUS.Set(int64(d.busy / time.Microsecond))
		d.strQueue.Set(int64(len(d.ring)))
	}
}
