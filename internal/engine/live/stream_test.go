package live_test

import (
	"bytes"
	"strings"
	"testing"

	"batchsched/internal/engine/live"
	"batchsched/internal/obs/stream"
	"batchsched/internal/sched"
)

// TestStreamWiring runs a live batch with streaming telemetry attached and
// checks the stream totals against the run summary: the scrape-side view
// must agree with the authoritative metrics.
func TestStreamWiring(t *testing.T) {
	const n = 24
	batch := exp1Batch(11, 6, n)
	b, err := live.New(liveConfig(6, 1), sched.MustNew("LOW", sched.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	set := stream.NewSet()
	b.SetStream(set)
	for _, steps := range batch {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.Completions != n {
		t.Fatalf("completions = %d, want %d", sum.Completions, n)
	}

	snap := b.Snapshot()
	if snap.Commits != int64(n) {
		t.Errorf("stream commits = %d, want %d", snap.Commits, n)
	}
	if snap.Restarts != int64(sum.Restarts) {
		t.Errorf("stream restarts = %d, want %d", snap.Restarts, sum.Restarts)
	}
	if snap.Grants <= 0 || snap.Grants < snap.Commits {
		t.Errorf("stream grants = %d, want >= commits %d", snap.Grants, snap.Commits)
	}
	if snap.ActiveTxns != 0 {
		t.Errorf("active txns after drain = %d, want 0", snap.ActiveTxns)
	}
	if snap.P95RTSeconds <= 0 || snap.P50RTSeconds <= 0 {
		t.Errorf("RT quantiles not populated: p50=%v p95=%v", snap.P50RTSeconds, snap.P95RTSeconds)
	}
	if snap.P50RTSeconds > snap.P95RTSeconds {
		t.Errorf("p50 %v > p95 %v", snap.P50RTSeconds, snap.P95RTSeconds)
	}

	// The full registry renders valid exposition text with the per-DPN
	// instruments present.
	var buf bytes.Buffer
	if err := set.WritePrometheus(&buf, b.Now()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"live_commits_total 24", "live_rt_seconds_count 24",
		`live_dpn_rows_scanned_total{node="0"}`, `live_dpn_queue_depth{node="3"}`,
		"obs_clock_clamps",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := stream.ValidatePrometheus(&buf); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestStreamDisabledSnapshot: without SetStream, Run works and Snapshot
// returns the zero value.
func TestStreamDisabledSnapshot(t *testing.T) {
	const n = 8
	batch := exp1Batch(3, 6, n)
	b, err := live.New(liveConfig(6, 1), sched.MustNew("GOW", sched.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range batch {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.Completions != n {
		t.Fatalf("completions = %d, want %d", sum.Completions, n)
	}
	if snap := b.Snapshot(); snap != (live.SLOSnapshot{}) {
		t.Fatalf("disabled Snapshot = %+v, want zero value", snap)
	}
}
