package live

import (
	"time"

	"batchsched/internal/sim"
)

// wallClock maps the wall clock onto the sim.Time microsecond axis: Now is
// the time elapsed since the clock was created. time.Since uses Go's
// monotonic clock reading, so a single goroutine observes nondecreasing
// values; readings taken on *different* goroutines (CN vs DPNs) carry no
// ordering guarantee relative to each other once they interleave, which is
// why every recorder downstream of this clock is monotonic-safe.
type wallClock struct {
	start time.Time
}

func newWallClock() *wallClock { return &wallClock{start: time.Now()} }

// Now returns the elapsed wall time in sim.Time microseconds. Safe for
// concurrent use: start is immutable after construction.
func (c *wallClock) Now() sim.Time {
	return sim.Time(time.Since(c.start) / time.Microsecond)
}
