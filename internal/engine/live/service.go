package live

import (
	"fmt"
	"sort"
	"time"

	"batchsched/internal/admit"
	"batchsched/internal/metrics"
	"batchsched/internal/model"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// Service mode: the live backend as an open system. An arrivals goroutine
// draws (gap, steps, class) from the same seed-deterministic RNG streams the
// simulator uses ("arrivals", "workload", "class" — so the offered sequence
// is reproducible; wall-clock interleaving decides how it lands), sleeps the
// gaps in wall time, and feeds the CN loop through a channel. The CN runs
// the identical admit.Service the simulator drives: a wall-clock ticker
// marks epoch boundaries (expiry, overload control, optional eviction,
// window refill), completions free window slots, and at the configured
// duration the arrivals goroutine closes its channel, the queue is drained
// (ShedDrain), and the loop exits once the window empties — every DPN
// goroutine, the arrivals goroutine and any restart timers included.

// svcArrival is one drawn arrival in flight from the arrivals goroutine to
// the CN.
type svcArrival struct {
	steps []model.Step
	class admit.Class
}

// RunService executes an open-stream service run: arrivals from arr, bodies
// from gen, for cfg.ServiceDuration of wall time. Requires cfg.Service.
// Call instead of Run (after Submit-free setup); returns the run summary
// over the full wall window.
func (b *Backend) RunService(gen workload.Generator, arr workload.Arrivals, seed int64) metrics.Summary {
	if b.ran {
		panic("live: RunService after Run")
	}
	if b.cfg.Service == nil {
		panic("live: RunService needs Config.Service")
	}
	if gen == nil || arr == nil {
		panic("live: RunService needs a generator and an arrival process")
	}
	b.ran = true
	svc, err := admit.NewService(*b.cfg.Service)
	if err != nil {
		panic(err) // Config.Validate already vetted the policy
	}
	b.svc = svc
	// The window bound doubles as the admission-guard MPL, as in machine.New
	// (Validate required Config.MPL == 0).
	b.cfg.MPL = b.cfg.Service.MPL
	mpl := b.cfg.MPL

	if b.stream != nil {
		b.strSheds = b.stream.Rate("live_sheds",
			"Transactions turned away by admission backpressure.", 10*time.Second, time.Second)
		b.strQueueDepth = b.stream.Gauge("live_admit_queue_depth",
			"Admission-queue depth at the last epoch boundary.")
		b.strSojournUS = b.stream.Gauge("live_admit_p95_sojourn_us",
			"Sliding p95 admission sojourn in microseconds at the last epoch boundary.")
	}

	// Channel capacities keep every send non-blocking, as in Run, with the
	// batch size n replaced by the window bound: at most MPL transactions are
	// admitted at once, each with at most one active step.
	b.comp = make(chan completion, mpl*b.cfg.NumNodes+1)
	b.restartQ = make(chan *texec, mpl+1)
	quantum := b.cfg.RowsPerObject / b.cfg.DD
	if quantum < 1 {
		quantum = 1
	}
	b.dpns = make([]*dpnWorker, b.cfg.NumNodes)
	for i := range b.dpns {
		b.dpns[i] = &dpnWorker{
			id:          i,
			in:          make(chan *liveCohort, mpl+1),
			comp:        b.comp,
			clk:         b.clk,
			part:        make(map[model.FileID][]uint64),
			slabRows:    b.cfg.RowsPerObject,
			quantumRows: quantum,
			pace:        time.Duration(float64(b.cfg.PacePerObject) / float64(b.cfg.DD)),
			guard:       newDataGuard(),
			wg:          &b.wg,
		}
		if b.stream != nil {
			node := fmt.Sprintf("%d", i)
			d := b.dpns[i]
			d.strQueue = b.stream.Gauge("live_dpn_queue_depth",
				"Cohorts resident in the node's service ring.", "node", node)
			d.strBusyUS = b.stream.Gauge("live_dpn_busy_us",
				"Cumulative busy time at the node in microseconds.", "node", node)
			d.strRows = b.stream.Rate("live_dpn_rows_scanned",
				"Rows scanned by the node.", 10*time.Second, time.Second, "node", node)
		}
		b.wg.Add(1)
		go b.dpns[i].loop()
	}

	// The arrivals goroutine: deterministic draw sequence, wall-clock gaps.
	// It owns arrivalQ's close; stop unblocks it if the CN bails early.
	arrivalQ := make(chan svcArrival, b.cfg.Service.MaxQueue+1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		defer close(arrivalQ)
		rng := sim.NewRNG(seed)
		rngA := rng.Stream("arrivals")
		rngW := rng.Stream("workload")
		rngC := rng.Stream("class")
		gapTimer := time.NewTimer(0)
		if !gapTimer.Stop() {
			<-gapTimer.C
		}
		start := time.Now()
		for {
			gap := arr.Next(b.clk.Now(), rngA)
			gapTimer.Reset(time.Duration(gap) * time.Microsecond)
			select {
			case <-gapTimer.C:
			case <-stop:
				gapTimer.Stop()
				return
			}
			if time.Since(start) >= b.cfg.ServiceDuration {
				return
			}
			a := svcArrival{steps: gen.Steps(rngW), class: b.cfg.Service.PickClass(rngC)}
			select {
			case arrivalQ <- a:
			case <-stop:
				return
			}
		}
	}()

	epoch := time.NewTicker(time.Duration(b.cfg.Service.Epoch) * time.Microsecond)
	defer epoch.Stop()
	deadline := time.NewTimer(b.cfg.ServiceDuration + b.cfg.Deadline)
	defer deadline.Stop()

	arrivalsOpen := true
	for {
		for len(b.jobs) > 0 {
			j := b.jobs[0]
			b.jobs = b.jobs[1:]
			t0 := time.Now()
			b.process(j)
			b.cnBusy += time.Since(t0)
		}
		if !arrivalsOpen && b.active == 0 && b.restartPending == 0 && b.svc.Depth() == 0 {
			break
		}
		select {
		case a, ok := <-arrivalQ:
			if !ok {
				arrivalsOpen = false
				arrivalQ = nil
				now := b.clk.Now()
				for _, sh := range b.svc.Drain(now) {
					b.shedTexec(sh)
				}
				b.fillWindowLive(now) // nothing queued, but parked retries may proceed
				continue
			}
			b.svcOffer(a)
		case c := <-b.comp:
			b.handleCompletion(c)
		case e := <-b.restartQ:
			b.restartPending--
			b.jobs = append(b.jobs, liveJob{op: opAdmit, e: e})
		case <-epoch.C:
			b.runEpochLive()
		case <-deadline.C:
			b.err = fmt.Errorf("live: service run stalled %v past its %v duration: active=%d queue=%d jobs=%d restarting=%d",
				b.cfg.Deadline, b.cfg.ServiceDuration, b.active, b.svc.Depth(), len(b.jobs), b.restartPending)
		}
		if b.err != nil {
			break
		}
		b.sampleStreamGauges()
		if b.ob.Enabled() && b.cfg.SampleEvery > 0 {
			if now := b.clk.Now(); now-b.lastSample >= sim.Time(b.cfg.SampleEvery/time.Microsecond) {
				b.lastSample = now
				b.ob.SampleNow(now)
			}
		}
	}

	for _, d := range b.dpns {
		close(d.in)
	}
	b.wg.Wait()
	b.stopPool()
	for _, d := range b.dpns {
		b.met.DPNBusy(d.id, sim.Time(d.busy/time.Microsecond))
		b.violations += d.violations
	}
	b.met.CNBusy(sim.Time(b.cnBusy / time.Microsecond))
	now := b.clk.Now()
	b.ob.Finish(now)
	return b.met.Summarize(now)
}

// svcOffer books one drawn arrival and offers it to the admission queue.
func (b *Backend) svcOffer(a svcArrival) {
	now := b.clk.Now()
	b.met.Arrival(now)
	b.nextID++
	t := model.NewTxn(b.nextID, now, a.steps)
	e := &texec{txn: t, class: a.class}
	if b.ob.Enabled() {
		e.txnSpan = b.ob.Begin("txn", "txn", t.ID, -1, -1, 0, now)
	}
	it := &admit.Item{ID: t.ID, Class: a.class, Arrived: now, Payload: e}
	sheds, _ := b.svc.Arrive(it)
	for _, sh := range sheds {
		b.shedTexec(sh)
	}
}

// shedTexec retires a turned-away transaction (live analogue of
// machine.shedExec; the wrapper is left to the GC).
func (b *Backend) shedTexec(sh admit.Shed) {
	e := sh.Item.Payload.(*texec)
	switch sh.Reason {
	case admit.ShedQueueFull:
		b.met.ShedQueueFull()
	case admit.ShedDeadline:
		b.met.ShedDeadline()
	case admit.ShedOverload:
		b.met.ShedOverload()
	default:
		b.met.ShedDrain()
	}
	b.mark(b.strSheds)
	if e.txnSpan != 0 {
		b.ob.End(e.txnSpan, b.clk.Now())
		e.txnSpan = 0
	}
}

// runEpochLive is the wall-clock epoch boundary: expiry, overload control,
// optional eviction, window refill, stats emission.
func (b *Backend) runEpochLive() {
	now := b.clk.Now()
	for _, sh := range b.svc.Expire(now) {
		b.shedTexec(sh)
	}
	b.svc.EndEpoch(now)
	if b.svc.Overloaded() && b.cfg.Service.EvictOnOverload {
		b.evictOneLive()
	}
	b.fillWindowLive(now)
	b.emitEpochLive(now)
	if b.strQueueDepth != nil {
		b.strQueueDepth.Set(int64(b.svc.Depth()))
		b.strSojournUS.Set(int64(b.svc.P95Sojourn()))
	}
}

// fillWindowLive pops queued arrivals into the in-flight window (window
// counts pops not yet committed or evicted, parked retries included, so the
// MPL cap holds across scheduler refusals). The popped batch is handed to
// AdmitScreener schedulers for a concurrent prescreen before the one-by-one
// Admit jobs run (mirrors machine.fillWindow; enqueue order is unchanged).
func (b *Backend) fillWindowLive(now sim.Time) {
	start := len(b.jobs)
	for b.window < b.cfg.Service.MPL {
		it, ok := b.svc.Pop(now)
		if !ok {
			break
		}
		b.window++
		b.jobs = append(b.jobs, liveJob{op: opAdmit, e: it.Payload.(*texec)})
	}
	if as, ok := b.sch.(sched.AdmitScreener); ok && len(b.jobs)-start > 1 {
		b.screenBuf = b.screenBuf[:0]
		for _, j := range b.jobs[start:] {
			b.screenBuf = append(b.screenBuf, j.e.txn)
		}
		as.PrescreenAdmits(b.screenBuf)
	}
}

// evictOneLive removes the smallest-id blocked or policy-delayed batch-class
// transaction from the window, releasing its locks and WTPG node (live
// analogue of machine.evictOne; waiting transactions provably have no cohort
// in flight and no queued CN job).
func (b *Backend) evictOneLive() bool {
	var victim *texec
	for _, e := range b.delayed {
		if e.class == admit.Batch && (victim == nil || e.txn.ID < victim.txn.ID) {
			victim = e
		}
	}
	for _, list := range b.blocked {
		for _, e := range list {
			if e.class == admit.Batch && (victim == nil || e.txn.ID < victim.txn.ID) {
				victim = e
			}
		}
	}
	if victim == nil {
		return false
	}
	b.removeWaiterLive(victim)
	b.endWait(victim)
	b.sch.Aborted(victim.txn)
	victim.txn.StepIndex = 0
	b.active--
	b.window--
	b.met.Evicted()
	b.svc.NoteEviction()
	if victim.txnSpan != 0 {
		b.ob.End(victim.txnSpan, b.clk.Now())
		victim.txnSpan = 0
	}
	b.wakeCommit(victim.txn)
	return true
}

// removeWaiterLive deletes e from whichever wait structure holds it.
func (b *Backend) removeWaiterLive(e *texec) {
	for i, d := range b.delayed {
		if d == e {
			b.delayed = append(b.delayed[:i], b.delayed[i+1:]...)
			return
		}
	}
	f := e.txn.CurrentStep().File
	list := b.blocked[f]
	for i, w := range list {
		if w == e {
			list = append(list[:i], list[i+1:]...)
			if len(list) == 0 {
				delete(b.blocked, f)
			} else {
				b.blocked[f] = list
			}
			return
		}
	}
	panic("live: evict victim not found in its wait structure")
}

// emitEpochLive digests the epoch for the epoch hook (per-epoch deltas plus
// the epoch's completion RTs), mirroring machine.emitEpoch.
func (b *Backend) emitEpochLive(now sim.Time) {
	b.epochNum++
	cum := b.svc.Stats()
	es := admit.EpochStats{
		Epoch:       b.epochNum,
		Start:       b.epochStart,
		End:         now,
		Arrivals:    cum.Arrivals - b.epochPrev.Arrivals,
		Admitted:    cum.TotalAdmitted() - b.epochPrev.TotalAdmitted(),
		Completions: len(b.epochRTs),
		Sheds:       cum.TotalShed() - b.epochPrev.TotalShed(),
		Evictions:   cum.Evictions - b.epochPrev.Evictions,
		QueueDepth:  b.svc.Depth(),
		Active:      b.active,
		P95Sojourn:  b.svc.P95Sojourn(),
		Overloaded:  b.svc.Overloaded(),
		Cum:         cum,
	}
	if n := len(b.epochRTs); n > 0 {
		sort.Slice(b.epochRTs, func(i, j int) bool { return b.epochRTs[i] < b.epochRTs[j] })
		var sum sim.Time
		for _, rt := range b.epochRTs {
			sum += rt
		}
		es.MeanRT = sum / sim.Time(n)
		idx := (n*95+99)/100 - 1
		if idx < 0 {
			idx = 0
		}
		es.P95RT = b.epochRTs[idx]
	}
	b.epochPrev = cum
	b.epochStart = now
	b.epochRTs = b.epochRTs[:0]
	if b.epochHook != nil {
		b.epochHook(es)
	}
}

// SetEpochHook installs a per-epoch callback (service mode only). The hook
// runs on the CN goroutine inside the epoch event. Call before RunService.
func (b *Backend) SetEpochHook(h func(admit.EpochStats)) { b.epochHook = h }

// Service exposes the admission service (nil before RunService / outside
// service mode).
func (b *Backend) Service() *admit.Service { return b.svc }
