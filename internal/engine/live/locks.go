package live

import (
	"batchsched/internal/lock"
	"batchsched/internal/model"
)

// dataGuard is one data-processing node's local lock table over its
// resident partitions. It is not a second scheduler: the CN's scheduler has
// already decided every grant. The guard re-checks the decision at the data
// — a cohort arriving incompatible with a co-resident cohort means the
// scheduler granted conflicting locks, the exact failure differential tests
// must surface. Violations are counted, not panicked on: NODC grants
// everything by design, so the invariant "violations == 0" belongs to the
// callers that run real schedulers.
//
// Owned by a single DPN goroutine; no internal locking.
type dataGuard struct {
	tab        *lock.Table
	violations int
}

func newDataGuard() *dataGuard { return &dataGuard{tab: lock.NewTable()} }

// acquire records txn's lock on f for a cohort entering service and reports
// whether it was compatible with the co-resident cohorts. An incompatible
// arrival counts a violation and acquires nothing (service proceeds anyway
// — the live backend executes what the scheduler decided, it does not
// second-guess it).
func (g *dataGuard) acquire(txn int64, f model.FileID, m model.Mode) bool {
	if !g.tab.CanGrant(txn, f, m) {
		g.violations++
		return false
	}
	g.tab.Grant(txn, f, m)
	return true
}

// release drops txn's locks when its cohort leaves the node. A transaction
// has at most one active step, so it holds at most one file here; releasing
// all is exact. Releasing after a violating (unrecorded) acquire is a no-op.
func (g *dataGuard) release(txn int64) {
	g.tab.ReleaseAll(txn)
}

// Violations returns how many incompatible co-residencies were observed.
func (g *dataGuard) Violations() int { return g.violations }
