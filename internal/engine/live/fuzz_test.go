package live

// Property/fuzz tests for the live backend's two concurrency-critical
// pieces (satellite of the real-execution-backend PR):
//
//   - FuzzPartitionLocks drives the per-DPN lock guard against an
//     independent reference model of S/X file locking: every acquire must
//     agree with the model on compatibility (no double-grants), the
//     violation counter must count exactly the incompatible arrivals, and
//     release must leave nothing behind.
//
//   - FuzzProtocol turns arbitrary bytes into a transaction batch and runs
//     it through the full CN<->DPN channel protocol: the run must terminate
//     (no lost completions — the capacity argument of DESIGN.md §12 made
//     executable), commit every transaction, produce a conflict-serializable
//     history, and trip zero lock-guard violations.
//
// Seed corpora live in testdata/fuzz/<FuzzName>/; `go test` replays them on
// every run, `go test -fuzz` explores from them.

import (
	"testing"
	"time"

	"batchsched/internal/history"
	"batchsched/internal/model"
	"batchsched/internal/sched"
)

// refLockModel is an independent (deliberately naive) model of the S/X
// compatibility rules dataGuard must enforce: a map from file to holder
// modes, nothing shared with internal/lock.
type refLockModel struct {
	holders map[model.FileID]map[int64]model.Mode
}

func newRefLockModel() *refLockModel {
	return &refLockModel{holders: make(map[model.FileID]map[int64]model.Mode)}
}

// canGrant mirrors lock.Table.CanGrant's contract: compatible with every
// other holder, S->X upgrade only as sole holder, re-requests at a covered
// mode always fine.
func (r *refLockModel) canGrant(txn int64, f model.FileID, m model.Mode) bool {
	hs := r.holders[f]
	if held, ok := hs[txn]; ok && (held == model.X || held == m) {
		return true
	}
	for id, hm := range hs {
		if id == txn {
			continue
		}
		if m == model.X || hm == model.X {
			return false
		}
	}
	return true
}

func (r *refLockModel) grant(txn int64, f model.FileID, m model.Mode) {
	hs := r.holders[f]
	if hs == nil {
		hs = make(map[int64]model.Mode)
		r.holders[f] = hs
	}
	if hs[txn] == model.X {
		return // never downgrade a held X
	}
	hs[txn] = m
}

func (r *refLockModel) release(txn int64) {
	for _, hs := range r.holders {
		delete(hs, txn)
	}
}

// FuzzPartitionLocks model-checks dataGuard: each 3-byte chunk is one
// operation (acquire or release) on a small universe of transactions and
// files, applied to both the guard and the reference model in lockstep.
func FuzzPartitionLocks(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Add([]byte{0x00, 0x01, 0x03, 0x00, 0x02, 0x03, 0x01, 0x01, 0x00})
	f.Add([]byte{0x00, 0x01, 0x01, 0x00, 0x01, 0x03, 0x00, 0x02, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := newDataGuard()
		ref := newRefLockModel()
		violations := 0
		for i := 0; i+2 < len(data); i += 3 {
			txn := int64(data[i+1]%6) + 1
			file := model.FileID(data[i+2] % 4)
			mode := model.S
			if data[i+2]&0x80 != 0 {
				mode = model.X
			}
			if data[i]%4 == 3 { // release, biased toward acquires
				g.release(txn)
				ref.release(txn)
				if hs := g.tab.HeldBy(txn); len(hs) != 0 {
					t.Fatalf("op %d: release(T%d) left holds %v", i, txn, hs)
				}
				continue
			}
			want := ref.canGrant(txn, file, mode)
			got := g.acquire(txn, file, mode)
			if got != want {
				t.Fatalf("op %d: acquire(T%d, f%d, %s) = %v, reference model says %v",
					i, txn, file, mode, got, want)
			}
			if want {
				ref.grant(txn, file, mode)
			} else {
				violations++
			}
			if g.Violations() != violations {
				t.Fatalf("op %d: guard counted %d violations, want %d", i, g.Violations(), violations)
			}
			// The guard's holder sets must match the model exactly — a
			// double-grant or ghost hold would diverge here.
			for fl, hs := range ref.holders {
				got := g.tab.Holders(fl)
				if len(got) != len(hs) {
					t.Fatalf("op %d: f%d holders %v, model has %d holders", i, fl, got, len(hs))
				}
				for _, id := range got {
					m, ok := hs[id]
					if !ok {
						t.Fatalf("op %d: f%d held by T%d in guard but not in model", i, fl, id)
					}
					if gm, _ := g.tab.Holds(id, fl); gm != m {
						t.Fatalf("op %d: f%d/T%d mode %s in guard, %s in model", i, fl, id, gm, m)
					}
				}
			}
		}
	})
}

// fuzzBatch decodes bytes into a transaction batch: two bytes per step,
// up to three steps per transaction, strongest-mode normalization per file
// (as randomBatch in the differential suite — incremental S->X upgrades
// livelock plain 2PL and are outside the paper's transaction model).
func fuzzBatch(data []byte) [][]model.Step {
	const numFiles = 4
	var out [][]model.Step
	var cur []model.Step
	strongest := make(map[model.FileID]model.Mode)
	flush := func() {
		if len(cur) == 0 {
			return
		}
		for j := range cur {
			if strongest[cur[j].File] == model.X {
				cur[j].LockMode = model.X
			}
		}
		out = append(out, cur)
		cur = nil
		strongest = make(map[model.FileID]model.Mode)
	}
	for i := 0; i+1 < len(data); i += 2 {
		file := model.FileID(data[i] % numFiles)
		mode := model.S
		if data[i+1]&1 != 0 {
			mode = model.X
		}
		write := data[i+1]&2 != 0
		if write {
			mode = model.X
		}
		cost := 0.25 + float64(data[i+1]>>2)/64.0 // 0.25 .. ~1.25 objects
		cur = append(cur, model.Step{
			File: file, LockMode: mode, Write: write,
			Cost: cost, DeclaredCost: cost,
		})
		if mode == model.X {
			strongest[file] = model.X
		}
		if len(cur) == 3 {
			flush()
		}
	}
	flush()
	return out
}

// fuzzSchedulers are the schedulers the protocol fuzzer rotates through:
// every locking protocol whose live run must be violation-free and
// serializable. (NODC and OPT violate co-residency by design; LOW-LB's
// decisions depend on live queue lengths.)
var fuzzSchedulers = []string{"ASL", "GOW", "LOW", "C2PL", "C2PL+M", "2PL"}

// FuzzProtocol runs an arbitrary batch through the full live CN<->DPN
// protocol and checks the end-to-end invariants: termination, no lost
// completions (every transaction commits exactly once), zero lock-guard
// violations, conflict-serializable history.
func FuzzProtocol(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1))
	f.Add([]byte{0x01, 0x03, 0x02, 0x07, 0x01, 0x04, 0x00, 0xff}, uint8(1))
	f.Add([]byte{0x00, 0x03, 0x00, 0x03, 0x01, 0x0c, 0x02, 0x01, 0x03, 0x13}, uint8(5))
	f.Add([]byte{0x02, 0xff, 0x02, 0xff, 0x02, 0xff, 0x01, 0x02, 0x01, 0x06, 0x00, 0x0b}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, schedPick uint8) {
		batch := fuzzBatch(data)
		if len(batch) == 0 || len(batch) > 24 {
			t.Skip("degenerate batch")
		}
		name := fuzzSchedulers[int(schedPick)%len(fuzzSchedulers)]
		cfg := DefaultConfig()
		cfg.NumNodes = 3
		cfg.NumFiles = 4
		cfg.DD = 1 + int(schedPick/16)%2
		cfg.RowsPerObject = 16
		cfg.Deadline = 20 * time.Second
		cfg.RestartDelay = 2 * time.Millisecond
		cfg.RestartJitter = true
		b, err := New(cfg, sched.MustNew(name, sched.DefaultParams()))
		if err != nil {
			t.Fatal(err)
		}
		rec := history.New()
		rec.SetMonotone(true)
		b.SetObserver(rec)
		for _, steps := range batch {
			b.Submit(steps)
		}
		sum := b.Run()
		if err := b.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sum.Completions != len(batch) {
			t.Fatalf("%s: %d/%d committed", name, sum.Completions, len(batch))
		}
		if rec.Commits() != len(batch) {
			t.Fatalf("%s: history recorded %d commits, want %d", name, rec.Commits(), len(batch))
		}
		if v := b.Violations(); v != 0 {
			t.Fatalf("%s: %d lock-guard violations", name, v)
		}
		if err := rec.CheckSerializable(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	})
}
