// Package trace records simulation execution events as JSON Lines, one
// event per line, for offline analysis and debugging. A Writer implements
// machine.Observer; plug it into a Machine with SetObserver. Multiple
// observers can be combined with Multi.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// Event is one trace record.
type Event struct {
	// At is the virtual time in milliseconds.
	At float64 `json:"at_ms"`
	// Kind is "step", "commit" or "restart".
	Kind string `json:"kind"`
	// Txn is the transaction id.
	Txn int64 `json:"txn"`
	// Step is the step index (step events only).
	Step int `json:"step,omitempty"`
	// File is the file the step accessed (step events only).
	File int `json:"file,omitempty"`
	// Write marks writing steps (step events only).
	Write bool `json:"write,omitempty"`
	// RTms is the response time in milliseconds (commit events only).
	RTms float64 `json:"rt_ms,omitempty"`
	// Cost is the transaction's total actual I/O demand in objects
	// (commit events only) — lets consumers classify transaction sizes.
	Cost float64 `json:"cost,omitempty"`
	// Restarts is the transaction's restart count (commit/restart events).
	Restarts int `json:"restarts,omitempty"`
}

// Writer streams events to an io.Writer as JSONL. Create with NewWriter
// and Flush (or Close via the caller's file) when done.
type Writer struct {
	bw     *bufio.Writer
	enc    *json.Encoder
	events int
	err    error
}

// NewWriter returns a trace writer on w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

func (t *Writer) emit(e Event) {
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(e); err != nil {
		t.err = err
		return
	}
	t.events++
}

// StepDone implements machine.Observer.
func (t *Writer) StepDone(txn *model.Txn, step int, at sim.Time) {
	st := txn.Steps[step]
	t.emit(Event{
		At: at.Milliseconds(), Kind: "step", Txn: txn.ID,
		Step: step, File: int(st.File), Write: st.Write,
	})
}

// Committed implements machine.Observer.
func (t *Writer) Committed(txn *model.Txn, at sim.Time) {
	t.emit(Event{
		At: at.Milliseconds(), Kind: "commit", Txn: txn.ID,
		RTms: (at - txn.Arrival).Milliseconds(), Restarts: txn.Restarts,
		Cost: txn.TotalCost(),
	})
}

// Restarted implements machine.Observer.
func (t *Writer) Restarted(txn *model.Txn, at sim.Time) {
	t.emit(Event{At: at.Milliseconds(), Kind: "restart", Txn: txn.ID, Restarts: txn.Restarts})
}

// Events returns the number of events emitted so far.
func (t *Writer) Events() int { return t.events }

// Flush drains buffered output and reports any write error encountered.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// Read parses a JSONL trace back into events (for tests and tools).
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// observer is the subset of machine.Observer trace needs; redeclared here
// to avoid importing machine (which would be an upward dependency).
type observer interface {
	StepDone(t *model.Txn, step int, at sim.Time)
	Committed(t *model.Txn, at sim.Time)
	Restarted(t *model.Txn, at sim.Time)
}

// Multi fans events out to several observers (e.g. a history recorder and a
// trace writer at once).
type Multi []observer

// NewMulti combines observers.
func NewMulti(os ...observer) Multi { return Multi(os) }

// StepDone implements machine.Observer.
func (m Multi) StepDone(t *model.Txn, step int, at sim.Time) {
	for _, o := range m {
		o.StepDone(t, step, at)
	}
}

// Committed implements machine.Observer.
func (m Multi) Committed(t *model.Txn, at sim.Time) {
	for _, o := range m {
		o.Committed(t, at)
	}
}

// Restarted implements machine.Observer.
func (m Multi) Restarted(t *model.Txn, at sim.Time) {
	for _, o := range m {
		o.Restarted(t, at)
	}
}
