// Package trace records simulation execution events as JSON Lines, one
// event per line, for offline analysis and debugging. A Writer implements
// machine.Observer; plug it into a Machine with SetObserver. Multiple
// observers can be combined with Multi.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// Event is one trace record.
type Event struct {
	// At is the virtual time in milliseconds.
	At float64 `json:"at_ms"`
	// Kind is "step", "commit", "restart", "fault", "abort" or "retry".
	Kind string `json:"kind"`
	// Txn is the transaction id (0 for machine-level fault events).
	Txn int64 `json:"txn,omitempty"`
	// Step is the step index (step events only). A pointer so step 0
	// round-trips: omitempty on a plain int would drop it.
	Step *int `json:"step,omitempty"`
	// File is the file the step accessed (step events only); pointer for
	// the same reason — file 0 is a real file.
	File *int `json:"file,omitempty"`
	// Write marks writing steps (step events only).
	Write bool `json:"write,omitempty"`
	// RTms is the response time in milliseconds (commit events only).
	RTms float64 `json:"rt_ms,omitempty"`
	// Cost is the transaction's total actual I/O demand in objects
	// (commit events only) — lets consumers classify transaction sizes.
	Cost float64 `json:"cost,omitempty"`
	// Restarts is the transaction's restart count (commit/restart events).
	Restarts int `json:"restarts,omitempty"`
	// Node is the data-processing node of a fault event; a pointer so
	// node 0 round-trips.
	Node *int `json:"node,omitempty"`
	// Fault is the fault kind ("crash", "restore", "slow", "slowend",
	// "msgloss"; fault events only).
	Fault string `json:"fault,omitempty"`
	// Reason is why a fault aborted the transaction ("crash", "timeout";
	// abort events only).
	Reason string `json:"reason,omitempty"`
	// Attempt is the 1-based re-dispatch attempt (retry events only).
	Attempt int `json:"attempt,omitempty"`
}

// ptr returns a pointer to v (for the pointer-typed Event fields).
func ptr(v int) *int { return &v }

// StepIndex returns the step index, or -1 when absent.
func (e Event) StepIndex() int {
	if e.Step == nil {
		return -1
	}
	return *e.Step
}

// FileID returns the accessed file, or -1 when absent.
func (e Event) FileID() int {
	if e.File == nil {
		return -1
	}
	return *e.File
}

// NodeID returns the fault's node, or -1 when absent.
func (e Event) NodeID() int {
	if e.Node == nil {
		return -1
	}
	return *e.Node
}

// Writer streams events to an io.Writer as JSONL. Create with NewWriter
// and Flush (or Close via the caller's file) when done.
type Writer struct {
	bw     *bufio.Writer
	enc    *json.Encoder
	events int
	lastAt float64
	err    error
}

// NewWriter returns a trace writer on w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

func (t *Writer) emit(e Event) {
	if t.err != nil {
		return
	}
	// Clamp event times nondecreasing in emission order: wall-clock sources
	// (the live backend) can stamp an event behind its predecessor, and a
	// JSONL trace that runs backwards breaks downstream timeline tools.
	// No-op under monotone virtual time.
	if e.At < t.lastAt {
		e.At = t.lastAt
	}
	t.lastAt = e.At
	if err := t.enc.Encode(e); err != nil {
		t.err = err
		return
	}
	t.events++
}

// StepDone implements machine.Observer.
func (t *Writer) StepDone(txn *model.Txn, step int, at sim.Time) {
	t.emit(stepEvent(txn, step, at))
}

// Committed implements machine.Observer.
func (t *Writer) Committed(txn *model.Txn, at sim.Time) {
	t.emit(commitEvent(txn, at))
}

// Restarted implements machine.Observer.
func (t *Writer) Restarted(txn *model.Txn, at sim.Time) {
	t.emit(restartEvent(txn, at))
}

// Fault implements machine.FaultObserver.
func (t *Writer) Fault(kind string, node int, at sim.Time) {
	t.emit(faultEvent(kind, node, at))
}

// AbortedTxn implements machine.FaultObserver.
func (t *Writer) AbortedTxn(txn *model.Txn, reason string, at sim.Time) {
	t.emit(abortEvent(txn, reason, at))
}

// Retried implements machine.FaultObserver.
func (t *Writer) Retried(txn *model.Txn, attempt int, at sim.Time) {
	t.emit(retryEvent(txn, attempt, at))
}

// Events returns the number of events emitted so far.
func (t *Writer) Events() int { return t.events }

// Flush drains buffered output and reports any write error encountered.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// Read parses a JSONL trace back into events (for tests and tools).
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// observer is the subset of machine.Observer trace needs; redeclared here
// to avoid importing machine (which would be an upward dependency).
type observer interface {
	StepDone(t *model.Txn, step int, at sim.Time)
	Committed(t *model.Txn, at sim.Time)
	Restarted(t *model.Txn, at sim.Time)
}

// Multi fans events out to several observers (e.g. a history recorder and a
// trace writer at once).
type Multi []observer

// NewMulti combines observers.
func NewMulti(os ...observer) Multi { return Multi(os) }

// StepDone implements machine.Observer.
func (m Multi) StepDone(t *model.Txn, step int, at sim.Time) {
	for _, o := range m {
		o.StepDone(t, step, at)
	}
}

// Committed implements machine.Observer.
func (m Multi) Committed(t *model.Txn, at sim.Time) {
	for _, o := range m {
		o.Committed(t, at)
	}
}

// Restarted implements machine.Observer.
func (m Multi) Restarted(t *model.Txn, at sim.Time) {
	for _, o := range m {
		o.Restarted(t, at)
	}
}

// faultObserver is the subset of machine.FaultObserver trace needs
// (redeclared for the same layering reason as observer).
type faultObserver interface {
	Fault(kind string, node int, at sim.Time)
	AbortedTxn(t *model.Txn, reason string, at sim.Time)
	Retried(t *model.Txn, attempt int, at sim.Time)
}

// Fault implements machine.FaultObserver, forwarding to the members that
// understand fault events.
func (m Multi) Fault(kind string, node int, at sim.Time) {
	for _, o := range m {
		if fo, ok := o.(faultObserver); ok {
			fo.Fault(kind, node, at)
		}
	}
}

// AbortedTxn implements machine.FaultObserver.
func (m Multi) AbortedTxn(t *model.Txn, reason string, at sim.Time) {
	for _, o := range m {
		if fo, ok := o.(faultObserver); ok {
			fo.AbortedTxn(t, reason, at)
		}
	}
}

// Retried implements machine.FaultObserver.
func (m Multi) Retried(t *model.Txn, attempt int, at sim.Time) {
	for _, o := range m {
		if fo, ok := o.(faultObserver); ok {
			fo.Retried(t, attempt, at)
		}
	}
}
