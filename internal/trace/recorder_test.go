package trace

import (
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

func recTxn(id int64) *model.Txn {
	return model.NewTxn(id, 0, []model.Step{{File: 0, Cost: 1}})
}

func TestRecorderUnlimited(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Restarted(recTxn(int64(i+1)), sim.Time(i)*sim.Millisecond)
	}
	if r.Total() != 100 || r.Dropped() != 0 {
		t.Fatalf("Total=%d Dropped=%d, want 100/0", r.Total(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 100 {
		t.Fatalf("got %d events, want 100", len(evs))
	}
	for i, e := range evs {
		if e.Txn != int64(i+1) {
			t.Fatalf("event %d: txn %d, want %d", i, e.Txn, i+1)
		}
	}
}

func TestRecorderRingKeepsNewest(t *testing.T) {
	r := NewRecorder().WithLimit(8)
	for i := 0; i < 30; i++ {
		r.Restarted(recTxn(int64(i+1)), sim.Time(i)*sim.Millisecond)
	}
	if r.Total() != 30 || r.Dropped() != 22 {
		t.Fatalf("Total=%d Dropped=%d, want 30/22", r.Total(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8", len(evs))
	}
	// The newest 8 are txns 23..30, oldest first.
	for i, e := range evs {
		if e.Txn != int64(23+i) {
			t.Fatalf("event %d: txn %d, want %d", i, e.Txn, 23+i)
		}
		if i > 0 && evs[i-1].At > e.At {
			t.Fatalf("events out of order at %d: %g > %g", i, evs[i-1].At, e.At)
		}
	}
}

func TestRecorderRingNotYetFull(t *testing.T) {
	r := NewRecorder().WithLimit(10)
	for i := 0; i < 4; i++ {
		r.Restarted(recTxn(int64(i+1)), sim.Time(i)*sim.Millisecond)
	}
	if got := len(r.Events()); got != 4 {
		t.Fatalf("got %d events, want 4", got)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped=%d, want 0", r.Dropped())
	}
}

// TestRecorderMatchesWriter replays the same events into a Writer and a
// Recorder and checks the records agree — the constructors are shared, so
// this guards the Multi fan-out wiring.
func TestRecorderMatchesWriter(t *testing.T) {
	rec := NewRecorder()
	txn := recTxn(7)
	rec.StepDone(txn, 0, 5*sim.Millisecond)
	rec.Committed(txn, 9*sim.Millisecond)
	rec.Fault("crash", 3, 11*sim.Millisecond)
	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Kind != "step" || evs[0].StepIndex() != 0 || evs[0].FileID() != 0 {
		t.Fatalf("bad step event: %+v", evs[0])
	}
	if evs[1].Kind != "commit" || evs[1].RTms != 9 {
		t.Fatalf("bad commit event: %+v", evs[1])
	}
	if evs[2].Kind != "fault" || evs[2].NodeID() != 3 {
		t.Fatalf("bad fault event: %+v", evs[2])
	}
}
