package trace

import (
	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// Event constructors shared by Writer (JSONL stream) and Recorder
// (in-memory), so the two representations cannot drift.

func stepEvent(txn *model.Txn, step int, at sim.Time) Event {
	st := txn.Steps[step]
	return Event{
		At: at.Milliseconds(), Kind: "step", Txn: txn.ID,
		Step: ptr(step), File: ptr(int(st.File)), Write: st.Write,
	}
}

func commitEvent(txn *model.Txn, at sim.Time) Event {
	return Event{
		At: at.Milliseconds(), Kind: "commit", Txn: txn.ID,
		RTms: (at - txn.Arrival).Milliseconds(), Restarts: txn.Restarts,
		Cost: txn.TotalCost(),
	}
}

func restartEvent(txn *model.Txn, at sim.Time) Event {
	return Event{At: at.Milliseconds(), Kind: "restart", Txn: txn.ID, Restarts: txn.Restarts}
}

func faultEvent(kind string, node int, at sim.Time) Event {
	return Event{At: at.Milliseconds(), Kind: "fault", Fault: kind, Node: ptr(node)}
}

func abortEvent(txn *model.Txn, reason string, at sim.Time) Event {
	return Event{At: at.Milliseconds(), Kind: "abort", Txn: txn.ID, Reason: reason, Restarts: txn.Restarts}
}

func retryEvent(txn *model.Txn, attempt int, at sim.Time) Event {
	return Event{At: at.Milliseconds(), Kind: "retry", Txn: txn.ID, Attempt: attempt}
}

// Recorder keeps events in memory for programmatic inspection — the
// machine.Observer counterpart of Writer's JSONL stream. By default it
// retains every event; WithLimit turns it into a ring buffer holding only
// the newest n, bounding memory on long runs where only the recent tail
// matters (e.g. the events leading up to a stall).
type Recorder struct {
	limit int
	buf   []Event
	next  int // ring write position once the buffer is full
	total int
}

// NewRecorder returns an in-memory recorder with unlimited retention.
func NewRecorder() *Recorder { return &Recorder{} }

// WithLimit bounds the recorder to the newest n events (n <= 0 restores
// unlimited retention) and returns the receiver for chaining. It resets any
// events already recorded; call it before the run starts.
func (r *Recorder) WithLimit(n int) *Recorder {
	if n < 0 {
		n = 0
	}
	r.limit = n
	r.buf = nil
	r.next = 0
	r.total = 0
	return r
}

func (r *Recorder) record(e Event) {
	r.total++
	if r.limit > 0 && len(r.buf) == r.limit {
		r.buf[r.next] = e
		r.next = (r.next + 1) % r.limit
		return
	}
	r.buf = append(r.buf, e)
}

// Events returns the retained events in chronological order (a copy).
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.limit > 0 && len(r.buf) == r.limit {
		out = append(out, r.buf[r.next:]...)
		return append(out, r.buf[:r.next]...)
	}
	return append(out, r.buf...)
}

// Total returns the number of events recorded over the run, including any
// that the ring buffer has since evicted.
func (r *Recorder) Total() int { return r.total }

// Dropped returns how many events the ring buffer evicted.
func (r *Recorder) Dropped() int { return r.total - len(r.buf) }

// StepDone implements machine.Observer.
func (r *Recorder) StepDone(txn *model.Txn, step int, at sim.Time) {
	r.record(stepEvent(txn, step, at))
}

// Committed implements machine.Observer.
func (r *Recorder) Committed(txn *model.Txn, at sim.Time) {
	r.record(commitEvent(txn, at))
}

// Restarted implements machine.Observer.
func (r *Recorder) Restarted(txn *model.Txn, at sim.Time) {
	r.record(restartEvent(txn, at))
}

// Fault implements machine.FaultObserver.
func (r *Recorder) Fault(kind string, node int, at sim.Time) {
	r.record(faultEvent(kind, node, at))
}

// AbortedTxn implements machine.FaultObserver.
func (r *Recorder) AbortedTxn(txn *model.Txn, reason string, at sim.Time) {
	r.record(abortEvent(txn, reason, at))
}

// Retried implements machine.FaultObserver.
func (r *Recorder) Retried(txn *model.Txn, attempt int, at sim.Time) {
	r.record(retryEvent(txn, attempt, at))
}
