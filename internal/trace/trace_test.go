package trace

import (
	"bytes"
	"strings"
	"testing"

	"batchsched/internal/history"
	"batchsched/internal/machine"
	"batchsched/internal/model"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	txn := model.NewTxn(7, 0, []model.Step{
		{File: 3, Write: false, LockMode: model.S, Cost: 1, DeclaredCost: 1},
		{File: 4, Write: true, LockMode: model.X, Cost: 2, DeclaredCost: 2},
	})
	w.StepDone(txn, 0, 1500*sim.Millisecond)
	w.Restarted(txn, 2000*sim.Millisecond)
	txn.Restarts = 1
	w.StepDone(txn, 1, 5000*sim.Millisecond)
	w.Committed(txn, 5100*sim.Millisecond)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 4 {
		t.Fatalf("events = %d, want 4", w.Events())
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events", len(events))
	}
	if events[0].Kind != "step" || events[0].FileID() != 3 || events[0].Write {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != "restart" || events[1].Txn != 7 {
		t.Errorf("event 1 = %+v", events[1])
	}
	if events[2].Kind != "step" || !events[2].Write || events[2].StepIndex() != 1 {
		t.Errorf("event 2 = %+v", events[2])
	}
	if events[3].Kind != "commit" || events[3].RTms != 5100 || events[3].Restarts != 1 {
		t.Errorf("event 3 = %+v", events[3])
	}
}

// TestZeroValuesRoundTrip: step index 0 on file 0 must survive the JSON
// round trip — with omitempty on plain ints both were silently dropped and
// read back as garbage.
func TestZeroValuesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	txn := model.NewTxn(1, 0, []model.Step{
		{File: 0, Write: true, LockMode: model.X, Cost: 1, DeclaredCost: 1},
	})
	w.StepDone(txn, 0, 100*sim.Millisecond)
	w.Fault("crash", 0, 200*sim.Millisecond)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2", len(events))
	}
	step := events[0]
	if step.Step == nil || *step.Step != 0 {
		t.Errorf("step index 0 lost in round trip: %+v", step)
	}
	if step.File == nil || *step.File != 0 {
		t.Errorf("file 0 lost in round trip: %+v", step)
	}
	fault := events[1]
	if fault.Kind != "fault" || fault.Fault != "crash" || fault.NodeID() != 0 {
		t.Errorf("fault on node 0 lost in round trip: %+v", fault)
	}
	// Absent fields stay distinguishable from zero values.
	if fault.StepIndex() != -1 || fault.FileID() != -1 || step.NodeID() != -1 {
		t.Errorf("absent pointer fields must read back as nil")
	}
}

// TestFaultEventsRoundTrip covers the fault/abort/retry kinds end to end.
func TestFaultEventsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	txn := model.NewTxn(9, 0, []model.Step{
		{File: 2, Write: true, LockMode: model.X, Cost: 1, DeclaredCost: 1},
	})
	w.Fault("slow", 5, 10*sim.Millisecond)
	w.Retried(txn, 1, 20*sim.Millisecond)
	txn.Restarts = 1
	w.AbortedTxn(txn, "timeout", 30*sim.Millisecond)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("read %d events, want 3", len(events))
	}
	if events[0].Kind != "fault" || events[0].Fault != "slow" || events[0].NodeID() != 5 {
		t.Errorf("fault event = %+v", events[0])
	}
	if events[1].Kind != "retry" || events[1].Txn != 9 || events[1].Attempt != 1 {
		t.Errorf("retry event = %+v", events[1])
	}
	if events[2].Kind != "abort" || events[2].Reason != "timeout" || events[2].Restarts != 1 {
		t.Errorf("abort event = %+v", events[2])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"kind\":\"step\"}\nnot json\n")); err == nil {
		t.Fatal("garbage line must error")
	}
}

func TestTraceFromRealRun(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.ArrivalRate = 0.3
	cfg.Duration = 100_000 * sim.Millisecond
	m, err := machine.New(cfg, sched.MustNew("LOW", sched.DefaultParams()), workload.NewExp1(16), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := history.New()
	m.SetObserver(NewMulti(w, rec)) // Multi must satisfy machine.Observer
	sum := m.Run()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	commits, steps := 0, 0
	for _, e := range events {
		switch e.Kind {
		case "commit":
			commits++
		case "step":
			steps++
		}
	}
	if commits != sum.Completions {
		t.Errorf("trace commits = %d, summary completions = %d", commits, sum.Completions)
	}
	if steps != sum.StepsExecuted {
		t.Errorf("trace steps = %d, summary steps = %d", steps, sum.StepsExecuted)
	}
	if rec.Commits() != sum.Completions {
		t.Errorf("multi observer dropped history events")
	}
	// Events are time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}
