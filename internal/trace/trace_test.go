package trace

import (
	"bytes"
	"strings"
	"testing"

	"batchsched/internal/history"
	"batchsched/internal/machine"
	"batchsched/internal/model"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	txn := model.NewTxn(7, 0, []model.Step{
		{File: 3, Write: false, LockMode: model.S, Cost: 1, DeclaredCost: 1},
		{File: 4, Write: true, LockMode: model.X, Cost: 2, DeclaredCost: 2},
	})
	w.StepDone(txn, 0, 1500*sim.Millisecond)
	w.Restarted(txn, 2000*sim.Millisecond)
	txn.Restarts = 1
	w.StepDone(txn, 1, 5000*sim.Millisecond)
	w.Committed(txn, 5100*sim.Millisecond)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 4 {
		t.Fatalf("events = %d, want 4", w.Events())
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events", len(events))
	}
	if events[0].Kind != "step" || events[0].File != 3 || events[0].Write {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != "restart" || events[1].Txn != 7 {
		t.Errorf("event 1 = %+v", events[1])
	}
	if events[2].Kind != "step" || !events[2].Write || events[2].Step != 1 {
		t.Errorf("event 2 = %+v", events[2])
	}
	if events[3].Kind != "commit" || events[3].RTms != 5100 || events[3].Restarts != 1 {
		t.Errorf("event 3 = %+v", events[3])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"kind\":\"step\"}\nnot json\n")); err == nil {
		t.Fatal("garbage line must error")
	}
}

func TestTraceFromRealRun(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.ArrivalRate = 0.3
	cfg.Duration = 100_000 * sim.Millisecond
	m, err := machine.New(cfg, sched.MustNew("LOW", sched.DefaultParams()), workload.NewExp1(16), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := history.New()
	m.SetObserver(NewMulti(w, rec)) // Multi must satisfy machine.Observer
	sum := m.Run()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	commits, steps := 0, 0
	for _, e := range events {
		switch e.Kind {
		case "commit":
			commits++
		case "step":
			steps++
		}
	}
	if commits != sum.Completions {
		t.Errorf("trace commits = %d, summary completions = %d", commits, sum.Completions)
	}
	if steps != sum.StepsExecuted {
		t.Errorf("trace steps = %d, summary steps = %d", steps, sum.StepsExecuted)
	}
	if rec.Commits() != sum.Completions {
		t.Errorf("multi observer dropped history events")
	}
	// Events are time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}
