package sweep

import (
	"os"
	"path/filepath"
	"testing"
)

func testSpec() Spec {
	return Spec{
		Name:       "t",
		Schedulers: []string{"LOW", "NODC"},
		Lambdas:    []float64{0.2, 0.6},
		DDs:        []int{1, 2},
		Reps:       2,
		Seed:       7,
	}
}

func TestSpecDefaults(t *testing.T) {
	n := (Spec{Schedulers: []string{"LOW"}, Lambdas: []float64{1}}).Norm()
	if n.Load != "exp1" || n.NumFiles[0] != 16 || n.DDs[0] != 1 || n.Reps != 1 || n.Seed != 1 {
		t.Errorf("defaults wrong: %+v", n)
	}
}

func TestSpecCellOrder(t *testing.T) {
	cells := testSpec().Cells()
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 2 dd x 2 lambda x 2 sched", len(cells))
	}
	// Documented nesting: DD-major, then lambda, scheduler fastest.
	want := []struct {
		dd     int
		lambda float64
		sched  string
	}{
		{1, 0.2, "LOW"}, {1, 0.2, "NODC"}, {1, 0.6, "LOW"}, {1, 0.6, "NODC"},
		{2, 0.2, "LOW"}, {2, 0.2, "NODC"}, {2, 0.6, "LOW"}, {2, 0.6, "NODC"},
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if c.DD != want[i].dd || c.Lambda != want[i].lambda || c.Scheduler != want[i].sched {
			t.Errorf("cell %d = (%d, %v, %s), want %+v", i, c.DD, c.Lambda, c.Scheduler, want[i])
		}
	}
}

func TestCellKeyIdentity(t *testing.T) {
	cells := testSpec().Cells()
	seen := map[string]bool{}
	for _, c := range cells {
		k := c.Key()
		if seen[k] {
			t.Errorf("duplicate key %q", k)
		}
		seen[k] = true
	}
	// The key must not depend on grid position.
	a, b := cells[3], cells[3]
	b.Index = 99
	if a.Key() != b.Key() {
		t.Error("Key depends on Index")
	}
}

func TestSpecValidate(t *testing.T) {
	for _, bad := range []Spec{
		{Lambdas: []float64{1}},                              // no schedulers
		{Schedulers: []string{"LOW"}},                        // no lambdas
		{Schedulers: []string{"LOW"}, Lambdas: []float64{0}}, // λ <= 0
		{Schedulers: []string{"LOW"}, Lambdas: []float64{1}, Load: "exp9"},
		{Schedulers: []string{"LOW"}, Lambdas: []float64{1}, DurationSeconds: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("Validate rejected a good spec: %v", err)
	}
}

func TestNumUnits(t *testing.T) {
	if got := testSpec().NumUnits(); got != 16 {
		t.Errorf("NumUnits = %d, want 8 cells x 2 reps", got)
	}
}

func TestLoadSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	good := `{"name":"s","schedulers":["LOW"],"lambdas":[0.5],"reps":3,"seed":2}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if s.Name != "s" || s.Reps != 3 || s.Seed != 2 {
		t.Errorf("loaded %+v", s)
	}
	// Unknown fields are typos, not extensions: refuse them.
	if err := os.WriteFile(path, []byte(`{"schedulers":["LOW"],"lambdas":[0.5],"lambda":0.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err == nil {
		t.Error("LoadSpec accepted an unknown field")
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadSpec accepted a missing file")
	}
}

func TestServiceSpecGrid(t *testing.T) {
	// Legacy closed-batch keys must be byte-identical with the service
	// dimension present in the struct: checkpoints from older sweeps resume.
	legacy := testSpec().Cells()[0]
	if got, want := legacy.Key(), "load=exp1 sched=LOW lambda=0.2 nf=16 dd=1 sigma=0 mpl=0 k=0 mtbf=0 dur=0"; got != want {
		t.Errorf("closed-batch Key changed:\n got  %q\n want %q", got, want)
	}

	s := testSpec()
	s.Service = true
	s.Arrivals = []string{"poisson", "burst"}
	n := s.Norm()
	cells := n.Cells()
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 8 x 2 arrivals", len(cells))
	}
	// Arrival is the innermost (fastest-cycling) dimension.
	if cells[0].Arrival != "poisson" || cells[1].Arrival != "burst" ||
		cells[2].Arrival != "poisson" {
		t.Errorf("arrival nesting wrong: %q %q %q", cells[0].Arrival, cells[1].Arrival, cells[2].Arrival)
	}
	for i, c := range cells {
		if !c.Service {
			t.Fatalf("cell %d not marked Service", i)
		}
	}
	k := cells[0].Key()
	if want := legacy.Key() + " svc=1 arr=poisson"; k != want {
		t.Errorf("service Key = %q, want %q", k, want)
	}

	// Defaulting: service with no arrivals gets poisson.
	d := Spec{Schedulers: []string{"LOW"}, Lambdas: []float64{1}, Service: true}.Norm()
	if len(d.Arrivals) != 1 || d.Arrivals[0] != "poisson" {
		t.Errorf("service default arrivals = %v", d.Arrivals)
	}

	for _, bad := range []Spec{
		{Schedulers: []string{"LOW"}, Lambdas: []float64{1}, Arrivals: []string{"poisson"}}, // arrivals without service
		{Schedulers: []string{"LOW"}, Lambdas: []float64{1}, Service: true, Arrivals: []string{"trace"}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate rejected a good service spec: %v", err)
	}
}
