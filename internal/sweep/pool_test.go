package sweep

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int32
	if err := ForEach(context.Background(), 4, n, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Errorf("index %d ran %d times", i, got)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := ForEach(context.Background(), 0, 0, func(int) error { t.Error("ran"); return nil }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	// workers <= 0 defaults to GOMAXPROCS and still runs everything.
	var count atomic.Int32
	if err := ForEach(context.Background(), -1, 5, func(int) error { count.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 5 {
		t.Errorf("ran %d of 5", count.Load())
	}
}

func TestForEachIsolatesPanics(t *testing.T) {
	var count atomic.Int32
	err := ForEach(context.Background(), 2, 10, func(i int) error {
		if i == 3 {
			panic("boom")
		}
		count.Add(1)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 3 panicked: boom") {
		t.Fatalf("panic not surfaced: %v", err)
	}
	if count.Load() != 9 {
		t.Errorf("other tasks did not finish: %d of 9", count.Load())
	}
}

func TestForEachCollectsErrors(t *testing.T) {
	sentinel := errors.New("bad cell")
	err := ForEach(context.Background(), 3, 6, func(i int) error {
		if i%2 == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the task error: %v", err)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int32
	err := ForEach(ctx, 1, 1000, func(i int) error {
		if count.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not reported: %v", err)
	}
	if c := count.Load(); c >= 1000 {
		t.Errorf("cancellation did not stop dispatch (ran %d)", c)
	}
}
