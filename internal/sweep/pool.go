package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). It is the one concurrency primitive the
// repository fans out on: the sweep engine, experiments.RunAll and the
// table regenerators all share it.
//
// A panic inside fn is captured — it fails that task, not the process — and
// surfaces as an error carrying the task index and stack. Cancelling ctx
// stops the dispatch of new tasks; in-flight tasks finish. ForEach returns
// the joined task errors plus the context error, nil when everything ran.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		next atomic.Int64
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := protect(fn, i); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// protect runs one task, converting a panic into an error.
func protect(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: task %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}
