package sweep

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"batchsched/internal/metrics"
	"batchsched/internal/sim"
)

// aggRecords builds two cells: cell 0 with three known replications, cell 1
// with one.
func aggRecords() []Record {
	c0 := Cell{Index: 0, Scheduler: "LOW", Lambda: 0.5, NumFiles: 16, DD: 1, Load: "exp1"}
	c1 := Cell{Index: 1, Scheduler: "GOW", Lambda: 0.5, NumFiles: 16, DD: 1, Load: "exp1"}
	mk := func(c Cell, rep int, rtSec, tps float64) Record {
		return Record{Cell: c, Rep: rep, Seed: int64(rep), Summary: metrics.Summary{
			MeanRT: sim.FromSeconds(rtSec), P95RT: sim.FromSeconds(2 * rtSec),
			TPS: tps, Completions: 100,
		}}
	}
	return []Record{
		mk(c1, 0, 7, 0.5),
		mk(c0, 2, 30, 0.6), // out of order on purpose: Aggregate must sort
		mk(c0, 0, 10, 0.4),
		mk(c0, 1, 20, 0.5),
	}
}

func TestAggregateMoments(t *testing.T) {
	aggs := Aggregate(aggRecords())
	if len(aggs) != 2 {
		t.Fatalf("aggs = %d, want 2 cells", len(aggs))
	}
	a := aggs[0]
	if a.Cell.Index != 0 || a.Reps != 3 {
		t.Fatalf("first agg: %+v", a)
	}
	if math.Abs(a.MeanRTSeconds.Mean-20) > 1e-6 {
		t.Errorf("mean RT = %v, want 20", a.MeanRTSeconds.Mean)
	}
	if math.Abs(a.MeanRTSeconds.StdDev-10) > 1e-6 {
		t.Errorf("stddev = %v, want 10", a.MeanRTSeconds.StdDev)
	}
	// t(df=2, 95%) = 4.303: half-width = 4.303 * 10 / sqrt(3).
	if want := 4.303 * 10 / math.Sqrt(3); math.Abs(a.MeanRTSeconds.CI95-want) > 1e-3 {
		t.Errorf("CI95 = %v, want %v", a.MeanRTSeconds.CI95, want)
	}
	if a.MeanRTSeconds.Min != 10 || a.MeanRTSeconds.Max != 30 {
		t.Errorf("extremes = [%v, %v]", a.MeanRTSeconds.Min, a.MeanRTSeconds.Max)
	}
	if math.Abs(a.P95RTSeconds.Mean-40) > 1e-6 {
		t.Errorf("p95 mean = %v, want 40", a.P95RTSeconds.Mean)
	}
	if single := aggs[1]; single.Reps != 1 || single.MeanRTSeconds.CI95 != 0 {
		t.Errorf("R=1 cell should have zero CI: %+v", single)
	}
}

func TestAggregateTableSurfacesP95AndCI(t *testing.T) {
	spec := Spec{Name: "t", Schedulers: []string{"LOW", "GOW"}, Lambdas: []float64{0.5}, Reps: 3}
	tbl := Table(spec, Aggregate(aggRecords()))
	s := tbl.String()
	for _, col := range []string{"meanRT(s)", "p95RT(s)", "±95%", "TPS"} {
		if !strings.Contains(s, col) {
			t.Errorf("table missing column %q:\n%s", col, s)
		}
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, Aggregate(aggRecords())); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 cells", len(lines))
	}
	if cols := strings.Split(lines[0], ","); len(cols) != len(strings.Split(lines[1], ",")) {
		t.Errorf("header/data column mismatch:\n%s\n%s", lines[0], lines[1])
	}
	if !strings.HasPrefix(lines[1], "LOW,0.5,16,1,") {
		t.Errorf("first data row: %s", lines[1])
	}
}

func TestMarshalSummaryShape(t *testing.T) {
	spec := Spec{Name: "t", Schedulers: []string{"LOW", "GOW"}, Lambdas: []float64{0.5}, Reps: 3}
	data, err := MarshalSummary(spec, Aggregate(aggRecords()))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Spec  Spec            `json:"spec"`
		Units int             `json:"units"`
		Cells json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if out.Spec.Name != "t" || out.Units != 6 {
		t.Errorf("summary header: %+v", out)
	}
}
