package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"batchsched/internal/metrics"
)

// Record is one completed replication of one cell — the unit of the JSONL
// streams and of checkpoint/resume granularity.
type Record struct {
	// Cell is the grid point the replication ran.
	Cell Cell `json:"cell"`
	// Rep is the replication number in [0, Reps).
	Rep int `json:"rep"`
	// Seed is the substream seed the replication was simulated with.
	Seed int64 `json:"seed"`
	// Summary is the run's digested metrics.
	Summary metrics.Summary `json:"summary"`
}

// sortRecords orders records by (cell index, replication) — the canonical
// output order, independent of completion order.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Cell.Index != recs[j].Cell.Index {
			return recs[i].Cell.Index < recs[j].Cell.Index
		}
		return recs[i].Rep < recs[j].Rep
	})
}

// header is the first line of a checkpoint file: the normalized spec, so a
// resume against a different spec is refused instead of silently merged.
type header struct {
	Spec Spec `json:"spec"`
}

// sink appends records to the checkpoint file as they complete, one JSON
// line per record, flushed per append so a killed process loses at most the
// line being written (a torn tail line is dropped on resume).
type sink struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openCheckpoint opens (or creates) the checkpoint at path. With resume
// set and a non-empty existing file, the previously completed records are
// loaded and returned and new records append after them; otherwise the file
// is started fresh with a spec header line.
func openCheckpoint(path string, spec Spec, resume bool) (*sink, []Record, error) {
	var loaded []Record
	valid := int64(0)
	existing := false
	if resume {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			existing = true
			var err error
			loaded, valid, err = loadCheckpoint(path, spec)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	// Drop the torn tail line a killed process may have left (and, on a
	// fresh start, any stale content) so appends always begin on a line
	// boundary.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	s := &sink{f: f, w: bufio.NewWriter(f)}
	if !existing {
		line, err := json.Marshal(header{Spec: spec.Norm()})
		if err != nil {
			s.Close()
			return nil, nil, err
		}
		if err := s.appendLine(line); err != nil {
			s.Close()
			return nil, nil, err
		}
	}
	return s, loaded, nil
}

// Append writes one record line and flushes it to the OS.
func (s *sink) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint: %w", err)
	}
	return s.appendLine(line)
}

func (s *sink) appendLine(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: checkpoint: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("sweep: checkpoint: %w", err)
	}
	return nil
}

// Close flushes and closes the checkpoint file.
func (s *sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// LoadCheckpoint reads a checkpoint written for spec and returns its
// completed records. It verifies the header matches the (normalized) spec,
// verifies each record's cell identity against the spec's grid, and
// tolerates exactly one torn line at the tail — the write a killed process
// did not finish.
func LoadCheckpoint(path string, spec Spec) ([]Record, error) {
	recs, _, err := loadCheckpoint(path, spec)
	return recs, err
}

// loadCheckpoint additionally returns the length of the valid prefix in
// bytes, so a resuming sink can truncate a torn tail before appending.
func loadCheckpoint(path string, spec Spec) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 || len(bytes.TrimSpace(lines[0])) == 0 {
		return nil, 0, fmt.Errorf("sweep: checkpoint %s is empty", path)
	}
	var h header
	if err := json.Unmarshal(lines[0], &h); err != nil {
		return nil, 0, fmt.Errorf("sweep: checkpoint %s: bad header: %w", path, err)
	}
	wantSpec, err := json.Marshal(spec.Norm())
	if err != nil {
		return nil, 0, err
	}
	gotSpec, err := json.Marshal(h.Spec)
	if err != nil {
		return nil, 0, err
	}
	if !bytes.Equal(wantSpec, gotSpec) {
		return nil, 0, fmt.Errorf("sweep: checkpoint %s was written for a different spec (refusing to merge); "+
			"delete it or rerun without -resume", path)
	}
	cells := spec.Cells()
	valid := int64(len(lines[0]) + 1)
	var recs []Record
	for i, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			valid += int64(len(line) + 1)
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-2 { // torn tail line of a killed run
				break
			}
			return nil, 0, fmt.Errorf("sweep: checkpoint %s: corrupt record on line %d: %w", path, i+2, err)
		}
		if rec.Cell.Index < 0 || rec.Cell.Index >= len(cells) ||
			cells[rec.Cell.Index].Key() != rec.Cell.Key() {
			return nil, 0, fmt.Errorf("sweep: checkpoint %s: record %d does not belong to this spec's grid", path, i+2)
		}
		recs = append(recs, rec)
		valid += int64(len(line) + 1)
	}
	if valid > int64(len(data)) {
		valid = int64(len(data))
	}
	return recs, valid, nil
}

// EncodeJSONL writes records as JSON lines in canonical (cell, rep) order.
func EncodeJSONL(w io.Writer, recs []Record) error {
	sorted := append([]Record(nil), recs...)
	sortRecords(sorted)
	bw := bufio.NewWriter(w)
	for _, rec := range sorted {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL atomically writes the canonical results file: records in
// (cell, rep) order, via a temp file renamed into place, so readers never
// observe a half-written file and interrupted-then-resumed sweeps finalize
// byte-identically to uninterrupted ones.
func WriteJSONL(path string, recs []Record) error {
	return writeAtomic(path, func(w io.Writer) error { return EncodeJSONL(w, recs) })
}

// ReadJSONL loads a results file written by WriteJSONL.
func ReadJSONL(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("sweep: %s line %d: %w", path, i+1, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// writeAtomic writes via a same-directory temp file and rename.
func writeAtomic(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
