package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"batchsched/internal/metrics"
	"batchsched/internal/sim"
)

// RunFunc simulates one replication of one cell at the given substream
// seed. internal/experiments binds this to the paper's machine model.
type RunFunc func(c Cell, seed int64) (metrics.Summary, error)

// Progress is a snapshot of a running sweep, delivered to
// Options.OnProgress after every completed unit.
type Progress struct {
	// Done and Total count (cell, replication) units, including the ones
	// a resume skipped; Resumed is how many of Done were skipped.
	Done, Total, Resumed int
	// UnitsPerSec is this process's completion rate.
	UnitsPerSec float64
	// ETASeconds extrapolates the remaining wall time from UnitsPerSec.
	ETASeconds float64
	// VirtualPerWall is simulated seconds per wall-clock second across
	// this process's completed units — the speed ratio of the virtual
	// clock over the real one.
	VirtualPerWall float64
}

// Options configures a sweep execution.
type Options struct {
	// Workers bounds the pool (<= 0 = GOMAXPROCS).
	Workers int
	// RunWorkers declares the intra-run parallelism each unit uses (a
	// RunFunc driving Config.ParallelRun > 1). The cell pool shrinks to
	// Workers / RunWorkers (at least 1) so the two levels share one core
	// budget instead of multiplying into oversubscription. <= 1 means
	// units are single-threaded and the pool gets the whole budget.
	RunWorkers int
	// Checkpoint is the append-only JSONL path ("" = in-memory only).
	Checkpoint string
	// Resume loads a previous checkpoint and skips its completed units.
	Resume bool
	// HaltAfter stops cleanly after that many newly executed units
	// (0 = run to completion) — the forced-resume path for tests and CI.
	HaltAfter int
	// OnProgress, when set, observes every completed unit.
	OnProgress func(Progress)
	// SeedFn overrides substream derivation (nil = DeriveSeed of the
	// spec's root seed and "cellKey/rep=R").
	SeedFn func(c Cell, rep int) int64
}

// cellWorkers is the concurrent-unit bound after carving the intra-run
// parallelism out of the worker budget.
func (o Options) cellWorkers() int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if o.RunWorkers > 1 {
		w /= o.RunWorkers
		if w < 1 {
			w = 1
		}
	}
	return w
}

// Result is a completed (or cleanly halted) sweep execution.
type Result struct {
	// Spec is the normalized spec that ran.
	Spec Spec
	// Records are the completed units in canonical (cell, rep) order,
	// resumed and newly executed merged.
	Records []Record
	// Resumed and Executed split Records' provenance.
	Resumed, Executed int
	// Halted reports that HaltAfter stopped the sweep with units pending.
	Halted bool
}

// UnitSeed is the default substream derivation: replication rep of the
// cell runs on DeriveSeed(root, "<cell key>/rep=<rep>"). The seed depends
// only on the root seed and the cell's parameters — not on grid position,
// worker assignment or completion order — so every unit is reproducible in
// isolation.
func UnitSeed(root int64, c Cell, rep int) int64 {
	return sim.DeriveSeed(root, fmt.Sprintf("%s/rep=%d", c.Key(), rep))
}

// Run executes the spec's grid. Completed units stream to the checkpoint
// as they finish; the returned records are merged and canonically ordered
// regardless of interruptions, so WriteJSONL over them is byte-identical
// for an uninterrupted run and any kill+resume sequence.
func Run(ctx context.Context, spec Spec, run RunFunc, opt Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	norm := spec.Norm()
	cells := norm.Cells()

	type unit struct {
		cell Cell
		rep  int
	}
	seedFn := opt.SeedFn
	if seedFn == nil {
		seedFn = func(c Cell, rep int) int64 { return UnitSeed(norm.Seed, c, rep) }
	}

	var (
		ckpt   *sink
		loaded []Record
	)
	if opt.Checkpoint != "" {
		var err error
		ckpt, loaded, err = openCheckpoint(opt.Checkpoint, norm, opt.Resume)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}
	done := make(map[[2]int]bool, len(loaded))
	for _, rec := range loaded {
		done[[2]int{rec.Cell.Index, rec.Rep}] = true
	}

	var pending []unit
	for _, c := range cells {
		for r := 0; r < norm.Reps; r++ {
			if !done[[2]int{c.Index, r}] {
				pending = append(pending, unit{c, r})
			}
		}
	}
	halted := false
	if opt.HaltAfter > 0 && len(pending) > opt.HaltAfter {
		pending = pending[:opt.HaltAfter]
		halted = true
	}

	total := len(cells) * norm.Reps
	res := &Result{Spec: norm, Records: loaded, Resumed: len(loaded), Halted: halted}
	var (
		mu          sync.Mutex
		virtualSecs float64
		start       = time.Now()
	)
	err := ForEach(ctx, opt.cellWorkers(), len(pending), func(i int) error {
		u := pending[i]
		seed := seedFn(u.cell, u.rep)
		sum, err := run(u.cell, seed)
		if err != nil {
			return fmt.Errorf("sweep: cell %d (%s) rep %d: %w", u.cell.Index, u.cell.Key(), u.rep, err)
		}
		rec := Record{Cell: u.cell, Rep: u.rep, Seed: seed, Summary: sum}
		mu.Lock()
		res.Records = append(res.Records, rec)
		res.Executed++
		virtualSecs += sum.Window.Seconds()
		if opt.OnProgress != nil {
			// Called under the lock: observers see strictly increasing
			// Done counts and need no synchronization of their own.
			elapsed := time.Since(start).Seconds()
			p := Progress{
				Done:    res.Resumed + res.Executed,
				Total:   total,
				Resumed: res.Resumed,
			}
			if elapsed > 0 {
				p.UnitsPerSec = float64(res.Executed) / elapsed
				p.VirtualPerWall = virtualSecs / elapsed
			}
			if p.UnitsPerSec > 0 {
				p.ETASeconds = float64(total-p.Done) / p.UnitsPerSec
			}
			opt.OnProgress(p)
		}
		mu.Unlock()
		if ckpt != nil {
			if err := ckpt.Append(rec); err != nil {
				return err
			}
		}
		return nil
	})
	sortRecords(res.Records)
	if err != nil {
		return res, err
	}
	if ckpt != nil {
		if err := ckpt.Close(); err != nil {
			return res, fmt.Errorf("sweep: checkpoint: %w", err)
		}
	}
	return res, nil
}

// Aggregates folds the result's replications into per-cell statistics.
func (r *Result) Aggregates() []Agg { return Aggregate(r.Records) }

// Complete reports whether every unit of the grid ran.
func (r *Result) Complete() bool {
	return len(r.Records) == len(r.Spec.Cells())*r.Spec.Reps
}
