package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"batchsched/internal/report"
	"batchsched/internal/stats"
)

// Stat digests one metric across a cell's replications.
type Stat struct {
	// Mean, StdDev, Min and Max are the sample moments and extremes.
	Mean, StdDev, Min, Max float64
	// CI95 is the Student-t 95% confidence half-width on the mean
	// (0 with fewer than two replications).
	CI95 float64
}

func statOf(s *stats.Sample) Stat {
	return Stat{Mean: s.Mean(), StdDev: s.StdDev(), Min: s.Min(), Max: s.Max(), CI95: s.CI95()}
}

// Agg is one cell's replication-folded row.
type Agg struct {
	// Cell is the grid point.
	Cell Cell `json:"cell"`
	// Reps is the number of replications folded in.
	Reps int `json:"reps"`
	// MeanRTSeconds aggregates each replication's mean response time.
	MeanRTSeconds Stat `json:"meanRTSeconds"`
	// P95RTSeconds aggregates each replication's p95 response time.
	P95RTSeconds Stat `json:"p95RTSeconds"`
	// TPS aggregates each replication's throughput.
	TPS Stat `json:"tps"`
	// Completions and Restarts aggregate the event counts.
	Completions Stat `json:"completions"`
	Restarts    Stat `json:"restarts"`
	// Arrivals and Sheds aggregate the open-stream counters; they are set
	// only for service-mode cells (pointers so closed-batch summary JSON is
	// byte-identical to pre-service sweeps).
	Arrivals *Stat `json:"arrivals,omitempty"`
	Sheds    *Stat `json:"sheds,omitempty"`
}

// Aggregate groups records by cell and folds each cell's replications into
// stats.Sample-backed rows, ordered by cell index.
func Aggregate(recs []Record) []Agg {
	byCell := make(map[int][]Record)
	for _, rec := range recs {
		byCell[rec.Cell.Index] = append(byCell[rec.Cell.Index], rec)
	}
	idxs := make([]int, 0, len(byCell))
	for idx := range byCell {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	aggs := make([]Agg, 0, len(idxs))
	for _, idx := range idxs {
		group := byCell[idx]
		var meanRT, p95RT, tps, completions, restarts, arrivals, sheds stats.Sample
		for _, rec := range group {
			meanRT.Add(rec.Summary.MeanRT.Seconds())
			p95RT.Add(rec.Summary.P95RT.Seconds())
			tps.Add(rec.Summary.TPS)
			completions.Add(float64(rec.Summary.Completions))
			restarts.Add(float64(rec.Summary.Restarts))
			arrivals.Add(float64(rec.Summary.Arrivals))
			sheds.Add(float64(rec.Summary.Sheds))
		}
		a := Agg{
			Cell:          group[0].Cell,
			Reps:          len(group),
			MeanRTSeconds: statOf(&meanRT),
			P95RTSeconds:  statOf(&p95RT),
			TPS:           statOf(&tps),
			Completions:   statOf(&completions),
			Restarts:      statOf(&restarts),
		}
		if a.Cell.Service {
			arr, shd := statOf(&arrivals), statOf(&sheds)
			a.Arrivals, a.Sheds = &arr, &shd
		}
		aggs = append(aggs, a)
	}
	return aggs
}

// Table renders the aggregates with the sweep-table conventions: one row
// per cell, mean response time and throughput with their 95% half-widths,
// and p95 response time alongside the mean.
func Table(spec Spec, aggs []Agg) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Sweep %q — %d cells × R=%d (root seed %d).",
			spec.Name, len(spec.Cells()), spec.Norm().Reps, spec.Norm().Seed),
		Note: "meanRT/TPS ±: Student-t 95% confidence half-width across replications.",
		Header: []string{"scheduler", "λ", "NF", "DD", "σ", "MPL", "K", "MTBF(s)", "R",
			"meanRT(s)", "±95%", "p95RT(s)", "TPS", "±95%"},
	}
	for _, a := range aggs {
		c := a.Cell
		t.AddRow(c.Scheduler, report.F(c.Lambda, 2), fmt.Sprint(c.NumFiles), fmt.Sprint(c.DD),
			report.F(c.Sigma, 1), fmt.Sprint(c.MPL), fmt.Sprint(c.K), report.F(c.MTBFSeconds, 0),
			fmt.Sprint(a.Reps),
			report.F(a.MeanRTSeconds.Mean, 1), report.F(a.MeanRTSeconds.CI95, 1),
			report.F(a.P95RTSeconds.Mean, 1),
			report.F(a.TPS.Mean, 3), report.F(a.TPS.CI95, 3))
	}
	return t
}

// WriteCSV writes the aggregates as a flat CSV with one row per cell.
func WriteCSV(w io.Writer, aggs []Agg) error {
	if _, err := fmt.Fprintln(w, "scheduler,lambda,numFiles,dd,sigma,mpl,k,mtbfSeconds,load,reps,"+
		"meanRTSeconds,meanRTStdDev,meanRTCI95,meanRTMin,meanRTMax,"+
		"p95RTSeconds,tps,tpsStdDev,tpsCI95,completions,restarts"); err != nil {
		return err
	}
	for _, a := range aggs {
		c := a.Cell
		if _, err := fmt.Fprintf(w, "%s,%g,%d,%d,%g,%d,%d,%g,%s,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			c.Scheduler, c.Lambda, c.NumFiles, c.DD, c.Sigma, c.MPL, c.K, c.MTBFSeconds, c.Load, a.Reps,
			a.MeanRTSeconds.Mean, a.MeanRTSeconds.StdDev, a.MeanRTSeconds.CI95,
			a.MeanRTSeconds.Min, a.MeanRTSeconds.Max,
			a.P95RTSeconds.Mean, a.TPS.Mean, a.TPS.StdDev, a.TPS.CI95,
			a.Completions.Mean, a.Restarts.Mean); err != nil {
			return err
		}
	}
	return nil
}

// summaryFile is the machine-readable sweep summary.
type summaryFile struct {
	Spec  Spec  `json:"spec"`
	Units int   `json:"units"`
	Cells []Agg `json:"cells"`
}

// MarshalSummary renders the machine-readable summary JSON (deterministic:
// struct-ordered fields, cells in grid order).
func MarshalSummary(spec Spec, aggs []Agg) ([]byte, error) {
	return json.MarshalIndent(summaryFile{Spec: spec.Norm(), Units: spec.NumUnits(), Cells: aggs}, "", "  ")
}

// WriteSummary atomically writes MarshalSummary output to path.
func WriteSummary(path string, spec Spec, aggs []Agg) error {
	data, err := MarshalSummary(spec, aggs)
	if err != nil {
		return err
	}
	return writeAtomic(path, func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}
