package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"batchsched/internal/metrics"
	"batchsched/internal/sim"
)

// fakeRun is a deterministic stand-in for a simulation: every field derives
// from the cell parameters and the substream seed only.
func fakeRun(c Cell, seed int64) (metrics.Summary, error) {
	rng := sim.NewRNG(seed)
	rt := 1 + 10*c.Lambda + rng.Float64()
	return metrics.Summary{
		Window:      100 * sim.Second,
		Completions: 50 + rng.Intn(10),
		MeanRT:      sim.FromSeconds(rt),
		P95RT:       sim.FromSeconds(2 * rt),
		TPS:         c.Lambda * (0.9 + 0.2*rng.Float64()),
	}, nil
}

func TestRunCompletesGrid(t *testing.T) {
	spec := testSpec()
	res, err := Run(context.Background(), spec, fakeRun, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || len(res.Records) != spec.NumUnits() {
		t.Fatalf("records = %d, want %d", len(res.Records), spec.NumUnits())
	}
	// Canonical order: (cell index, rep) ascending.
	for i := 1; i < len(res.Records); i++ {
		a, b := res.Records[i-1], res.Records[i]
		if a.Cell.Index > b.Cell.Index || (a.Cell.Index == b.Cell.Index && a.Rep >= b.Rep) {
			t.Fatalf("records out of order at %d: (%d,%d) then (%d,%d)",
				i, a.Cell.Index, a.Rep, b.Cell.Index, b.Rep)
		}
	}
}

func TestRunSeedsAreSubstreams(t *testing.T) {
	spec := testSpec()
	res, err := Run(context.Background(), spec, fakeRun, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int64]bool{}
	for _, rec := range res.Records {
		if want := UnitSeed(spec.Norm().Seed, rec.Cell, rec.Rep); rec.Seed != want {
			t.Errorf("cell %d rep %d seed %d, want %d", rec.Cell.Index, rec.Rep, rec.Seed, want)
		}
		if seeds[rec.Seed] {
			t.Errorf("seed %d reused", rec.Seed)
		}
		seeds[rec.Seed] = true
	}
}

func TestRunProgress(t *testing.T) {
	var last Progress
	calls := 0
	spec := testSpec()
	_, err := Run(context.Background(), spec, fakeRun, Options{
		OnProgress: func(p Progress) { last = p; calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != spec.NumUnits() {
		t.Errorf("progress calls = %d, want %d", calls, spec.NumUnits())
	}
	if last.Total != spec.NumUnits() || last.ETASeconds != 0 {
		t.Errorf("final progress %+v", last)
	}
	if last.VirtualPerWall <= 0 {
		t.Errorf("virtual/wall ratio not tracked: %+v", last)
	}
}

// finalize renders the three output artifacts of a sweep, as cmd/sweep
// would write them.
func finalize(t *testing.T, res *Result) (jsonl, table, summary []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	aggs := res.Aggregates()
	sum, err := MarshalSummary(res.Spec, aggs)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), []byte(Table(res.Spec, aggs).String()), sum
}

// TestResumeByteIdentical is the checkpoint/resume contract: a sweep halted
// mid-run (with a torn checkpoint tail, as a kill would leave) and resumed
// produces the same JSONL, aggregate table and summary JSON, byte for byte,
// as an uninterrupted run.
func TestResumeByteIdentical(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()

	full, err := Run(context.Background(), spec, fakeRun,
		Options{Checkpoint: filepath.Join(dir, "full.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	wantJSONL, wantTable, wantSummary := finalize(t, full)

	ckpt := filepath.Join(dir, "interrupted.jsonl")
	halted, err := Run(context.Background(), spec, fakeRun,
		Options{Checkpoint: ckpt, HaltAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !halted.Halted || halted.Executed != 5 {
		t.Fatalf("halt: %+v", halted)
	}
	// Simulate the kill landing mid-write: tear the checkpoint's tail line.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Run(context.Background(), spec, fakeRun,
		Options{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	// 4 intact records survive the torn 5th; the resume reruns the rest.
	if resumed.Resumed != 4 || resumed.Resumed+resumed.Executed != spec.NumUnits() {
		t.Fatalf("resume accounting: %+v", resumed)
	}
	gotJSONL, gotTable, gotSummary := finalize(t, resumed)
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Error("resumed JSONL differs from uninterrupted run")
	}
	if !bytes.Equal(gotTable, wantTable) {
		t.Error("resumed aggregate table differs from uninterrupted run")
	}
	if !bytes.Equal(gotSummary, wantSummary) {
		t.Error("resumed summary JSON differs from uninterrupted run")
	}
}

func TestResumeRefusesForeignSpec(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	if _, err := Run(context.Background(), testSpec(), fakeRun,
		Options{Checkpoint: ckpt, HaltAfter: 2}); err != nil {
		t.Fatal(err)
	}
	other := testSpec()
	other.Lambdas = []float64{0.3, 0.7}
	_, err := Run(context.Background(), other, fakeRun, Options{Checkpoint: ckpt, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

func TestRunWithoutResumeStartsFresh(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	if _, err := Run(context.Background(), testSpec(), fakeRun,
		Options{Checkpoint: ckpt, HaltAfter: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), testSpec(), fakeRun, Options{Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 0 || res.Executed != testSpec().NumUnits() {
		t.Fatalf("non-resume run reused the checkpoint: %+v", res)
	}
}

func TestRunSurfacesRunFuncErrors(t *testing.T) {
	spec := testSpec()
	_, err := Run(context.Background(), spec, func(c Cell, seed int64) (metrics.Summary, error) {
		if c.Index == 2 {
			panic("sim exploded")
		}
		return fakeRun(c, seed)
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "sim exploded") {
		t.Fatalf("panic in RunFunc not surfaced: %v", err)
	}
}

func TestWriteAndReadJSONLRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(context.Background(), testSpec(), fakeRun, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "results.jsonl")
	if err := WriteJSONL(path, res.Records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(res.Records))
	}
	for i := range back {
		if back[i].Seed != res.Records[i].Seed || back[i].Cell.Key() != res.Records[i].Cell.Key() {
			t.Fatalf("record %d mutated in round trip", i)
		}
	}
}
