// Package sweep is the parallel parameter-sweep engine: a declarative Spec
// expands into a deterministic grid of simulation Cells, each cell runs R
// seed replications on independent RNG substreams derived from a root seed
// and the cell key, a bounded panic-isolated worker pool executes the
// (cell, replication) units, results stream to an append-only JSONL
// checkpoint so a killed sweep resumes by skipping completed units, and an
// aggregator folds replications into stats.Sample rows (mean, stddev, 95%
// CI, min/max, p95 response time) rendered as tables, CSV and summary JSON.
//
// The package knows nothing about how a cell is simulated: callers supply a
// RunFunc (internal/experiments binds cells to the paper's machine model),
// so sweep sits below experiments in the dependency order and its worker
// pool also serves the artifact regenerators.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Spec declares a parameter sweep: the cross product of every listed
// dimension, replicated Reps times per cell. Zero-valued dimensions default
// to one-element grids so a spec only names what it varies; R=1 with a
// single cell degenerates to one ordinary simulation run.
type Spec struct {
	// Name labels the sweep in outputs ("exp1", "mpl-scan", ...).
	Name string `json:"name"`
	// Load selects the workload generator ("exp1" or "exp2"; default exp1).
	Load string `json:"load,omitempty"`
	// Schedulers is the scheduler grid (required).
	Schedulers []string `json:"schedulers"`
	// Lambdas is the arrival-rate grid in TPS (required).
	Lambdas []float64 `json:"lambdas"`
	// NumFiles is the database-size grid (default [16]).
	NumFiles []int `json:"numFiles,omitempty"`
	// DDs is the degree-of-declustering grid (default [1]).
	DDs []int `json:"dds,omitempty"`
	// Sigmas is the estimation-error grid (default [0]).
	Sigmas []float64 `json:"sigmas,omitempty"`
	// MPLs is the C2PL+M admission-limit grid (default [0] = scheduler
	// default; ignored by the other schedulers).
	MPLs []int `json:"mpls,omitempty"`
	// Ks is the LOW conflict-bound grid (default [0] = the paper's K=2).
	Ks []int `json:"ks,omitempty"`
	// MTBFSeconds is the per-node mean-time-between-failures grid in
	// seconds (default [0] = failure-free; >0 enables the Exp.4 fault
	// model).
	MTBFSeconds []float64 `json:"mtbfSeconds,omitempty"`
	// Service switches every cell into streaming-admission service mode
	// (internal/admit): open arrivals through the bounded admission queue
	// instead of the closed paper loop. The MPLs grid then sizes the
	// admission window (0 = the default policy's window).
	Service bool `json:"service,omitempty"`
	// Arrivals is the arrival-process grid for service cells: "poisson",
	// "diurnal" or "burst" (default ["poisson"]). Only valid with Service.
	Arrivals []string `json:"arrivals,omitempty"`
	// Reps is the number of seed replications per cell (default 1).
	Reps int `json:"reps,omitempty"`
	// Seed is the root seed every substream derives from (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DurationSeconds overrides the simulated span per run (0 = the
	// paper's 2000 s).
	DurationSeconds float64 `json:"durationSeconds,omitempty"`
}

// Norm fills the defaulted dimensions in, returning a spec whose grid
// fields are all non-empty.
func (s Spec) Norm() Spec {
	if s.Load == "" {
		s.Load = "exp1"
	}
	if len(s.NumFiles) == 0 {
		s.NumFiles = []int{16}
	}
	if len(s.DDs) == 0 {
		s.DDs = []int{1}
	}
	if len(s.Sigmas) == 0 {
		s.Sigmas = []float64{0}
	}
	if len(s.MPLs) == 0 {
		s.MPLs = []int{0}
	}
	if len(s.Ks) == 0 {
		s.Ks = []int{0}
	}
	if len(s.MTBFSeconds) == 0 {
		s.MTBFSeconds = []float64{0}
	}
	if s.Service && len(s.Arrivals) == 0 {
		s.Arrivals = []string{"poisson"}
	}
	if !s.Service {
		// Closed-batch cells carry no arrival-process dimension; the empty
		// string keeps their keys (and checkpoints) byte-identical to
		// pre-service sweeps.
		s.Arrivals = []string{""}
	}
	if s.Reps < 1 {
		s.Reps = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate rejects specs that cannot expand into a runnable grid.
func (s Spec) Validate() error {
	if len(s.Schedulers) == 0 {
		return fmt.Errorf("sweep: spec %q lists no schedulers", s.Name)
	}
	if len(s.Lambdas) == 0 {
		return fmt.Errorf("sweep: spec %q lists no lambdas", s.Name)
	}
	for _, l := range s.Lambdas {
		if l <= 0 {
			return fmt.Errorf("sweep: spec %q has non-positive lambda %v", s.Name, l)
		}
	}
	if n := s.Norm(); n.Load != "exp1" && n.Load != "exp2" {
		return fmt.Errorf("sweep: spec %q has unknown load %q (want exp1 or exp2)", s.Name, s.Load)
	}
	if s.DurationSeconds < 0 {
		return fmt.Errorf("sweep: spec %q has negative duration", s.Name)
	}
	if !s.Service && len(s.Arrivals) > 0 {
		return fmt.Errorf("sweep: spec %q lists arrivals without service mode", s.Name)
	}
	if s.Service {
		for _, a := range s.Arrivals {
			switch a {
			case "poisson", "diurnal", "burst":
			default:
				return fmt.Errorf("sweep: spec %q has unknown arrival process %q (want poisson, diurnal or burst)", s.Name, a)
			}
		}
	}
	return nil
}

// Cell is one fully specified grid point. Index is its position in the
// spec's expansion order; the JSONL outputs are sorted by it, so row order
// is independent of completion order.
type Cell struct {
	Index           int     `json:"index"`
	Scheduler       string  `json:"scheduler"`
	Lambda          float64 `json:"lambda"`
	NumFiles        int     `json:"numFiles"`
	DD              int     `json:"dd"`
	Sigma           float64 `json:"sigma"`
	MPL             int     `json:"mpl"`
	K               int     `json:"k"`
	MTBFSeconds     float64 `json:"mtbfSeconds"`
	Load            string  `json:"load"`
	DurationSeconds float64 `json:"durationSeconds"`
	// Service and Arrival carry the streaming-admission dimension; both are
	// zero for closed-batch cells so legacy checkpoints and keys are
	// untouched.
	Service bool   `json:"service,omitempty"`
	Arrival string `json:"arrival,omitempty"`
}

// Key is the canonical identity of the cell's parameters (Index excluded):
// it keys checkpoint records and, with the replication number, seeds the
// cell's RNG substreams, so a cell's draws never depend on grid position or
// execution order.
func (c Cell) Key() string {
	key := fmt.Sprintf("load=%s sched=%s lambda=%g nf=%d dd=%d sigma=%g mpl=%d k=%d mtbf=%g dur=%g",
		c.Load, c.Scheduler, c.Lambda, c.NumFiles, c.DD, c.Sigma, c.MPL, c.K, c.MTBFSeconds, c.DurationSeconds)
	// The service dimension appends only when on, so every pre-service cell
	// key — and with it every existing checkpoint and seed derivation — stays
	// byte-identical.
	if c.Service {
		key += fmt.Sprintf(" svc=1 arr=%s", c.Arrival)
	}
	return key
}

// Cells expands the spec into its grid, in the documented nesting order —
// NumFiles, DD, MTBF, Sigma, Lambda, Scheduler, MPL, K, Arrival, outermost
// first (the arrival dimension collapses to one unlabeled element for
// closed-batch specs) —
// which the artifact regenerators rely on for positional row/column
// indexing (rows vary the slow dimensions, scheduler columns vary fastest).
func (s Spec) Cells() []Cell {
	n := s.Norm()
	var cells []Cell
	for _, nf := range n.NumFiles {
		for _, dd := range n.DDs {
			for _, mtbf := range n.MTBFSeconds {
				for _, sigma := range n.Sigmas {
					for _, lambda := range n.Lambdas {
						for _, sched := range n.Schedulers {
							for _, mpl := range n.MPLs {
								for _, k := range n.Ks {
									for _, arr := range n.Arrivals {
										cells = append(cells, Cell{
											Index:           len(cells),
											Scheduler:       sched,
											Lambda:          lambda,
											NumFiles:        nf,
											DD:              dd,
											Sigma:           sigma,
											MPL:             mpl,
											K:               k,
											MTBFSeconds:     mtbf,
											Load:            n.Load,
											DurationSeconds: n.DurationSeconds,
											Service:         n.Service,
											Arrival:         arr,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// NumUnits is the total work-unit count: cells times replications.
func (s Spec) NumUnits() int { return len(s.Cells()) * s.Norm().Reps }

// LoadSpec reads and validates a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("sweep: %w", err)
	}
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sweep: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
