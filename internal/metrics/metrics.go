// Package metrics collects and summarizes the performance measures the
// paper reports: mean response time (arrival to completion), throughput in
// completed transactions per second (TPS), and the counters needed to
// explain them (blocks, delays, restarts, admission rejections, resource
// utilization).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"batchsched/internal/sim"
	"batchsched/internal/stats"
)

// Collector accumulates raw observations during one simulation run. The
// zero value is not usable; call NewCollector.
type Collector struct {
	warmup sim.Time

	arrivals    int
	completions int
	rts         []sim.Time

	blocks           int
	delays           int
	restarts         int
	admissionRejects int

	cnBusy  sim.Time
	dpnBusy []sim.Time

	grantedRequests int
	stepsExecuted   int

	// Fault accounting (all zero on the failure-free path).
	crashes     int
	crashAborts int
	msgLost     int
	msgRetries  int
	msgAborts   int
	stragglers  int

	downNodes int      // nodes currently down
	downSince sim.Time // last down-count transition
	downTime  sim.Time // integral of downNodes over time (node-time)

	degradedCount       int // active fault conditions (crashes + straggler windows)
	degradedSince       sim.Time
	degradedTime        sim.Time
	completionsDegraded int

	// Service-mode accounting (all zero on closed-batch runs).
	sheds         int
	shedQueueFull int
	shedDeadline  int
	shedOverload  int
	evictions     int
}

// NewCollector returns a collector for a machine with numNodes
// data-processing nodes. Completions before warmup are not counted
// (warmup 0 reproduces the paper, which measures the whole window).
func NewCollector(numNodes int, warmup sim.Time) *Collector {
	return &Collector{warmup: warmup, dpnBusy: make([]sim.Time, numNodes)}
}

// Arrival records a transaction arriving at the control node.
func (c *Collector) Arrival(now sim.Time) {
	if now >= c.warmup {
		c.arrivals++
	}
}

// Completion records a transaction completing with the given response time.
func (c *Collector) Completion(now, rt sim.Time) {
	if now < c.warmup {
		return
	}
	c.completions++
	c.rts = append(c.rts, rt)
	if c.degradedCount > 0 {
		c.completionsDegraded++
	}
}

// Block, Delay, Restart and AdmissionReject count scheduler decisions.
func (c *Collector) Block()           { c.blocks++ }
func (c *Collector) Delay()           { c.delays++ }
func (c *Collector) Restart()         { c.restarts++ }
func (c *Collector) AdmissionReject() { c.admissionRejects++ }

// Granted counts granted lock requests; StepExecuted counts finished steps.
func (c *Collector) Granted()      { c.grantedRequests++ }
func (c *Collector) StepExecuted() { c.stepsExecuted++ }

// CNBusy accumulates control-node CPU busy time.
func (c *Collector) CNBusy(d sim.Time) { c.cnBusy += d }

// NodeDown records a data-processing node crashing at now.
func (c *Collector) NodeDown(now sim.Time) {
	c.crashes++
	c.downTime += sim.Time(c.downNodes) * (now - c.downSince)
	c.downNodes++
	c.downSince = now
	c.degradeOn(now)
}

// NodeUp records a crashed node restoring at now.
func (c *Collector) NodeUp(now sim.Time) {
	c.downTime += sim.Time(c.downNodes) * (now - c.downSince)
	c.downNodes--
	c.downSince = now
	c.degradeOff(now)
}

// StragglerStart and StragglerEnd bracket one straggler window.
func (c *Collector) StragglerStart(now sim.Time) { c.stragglers++; c.degradeOn(now) }
func (c *Collector) StragglerEnd(now sim.Time)   { c.degradeOff(now) }

// degradeOn/degradeOff maintain the degraded-interval clock: the machine is
// degraded while at least one fault condition (down node or straggler
// window) is active.
func (c *Collector) degradeOn(now sim.Time) {
	if c.degradedCount == 0 {
		c.degradedSince = now
	}
	c.degradedCount++
}

func (c *Collector) degradeOff(now sim.Time) {
	c.degradedCount--
	if c.degradedCount == 0 {
		c.degradedTime += now - c.degradedSince
	}
}

// ShedQueueFull, ShedDeadline, ShedOverload and ShedDrain count admission
// sheds per reason; Evicted counts in-flight overload evictions. All are
// service-mode events (internal/admit).
func (c *Collector) ShedQueueFull() { c.sheds++; c.shedQueueFull++ }
func (c *Collector) ShedDeadline()  { c.sheds++; c.shedDeadline++ }
func (c *Collector) ShedOverload()  { c.sheds++; c.shedOverload++ }
func (c *Collector) ShedDrain()     { c.sheds++ }
func (c *Collector) Evicted()       { c.evictions++ }

// CrashAbort, MsgLost, MsgRetry and MsgAbort count fault consequences.
func (c *Collector) CrashAbort() { c.crashAborts++ }
func (c *Collector) MsgLost()    { c.msgLost++ }
func (c *Collector) MsgRetry()   { c.msgRetries++ }
func (c *Collector) MsgAbort()   { c.msgAborts++ }

// DPNBusy accumulates busy time for one data-processing node.
func (c *Collector) DPNBusy(node int, d sim.Time) { c.dpnBusy[node] += d }

// CNBusyTime returns the control-node busy time accumulated so far — the
// observability layer samples it into a utilization time-series.
func (c *Collector) CNBusyTime() sim.Time { return c.cnBusy }

// DPNBusyTime returns one node's busy time accumulated so far.
func (c *Collector) DPNBusyTime(node int) sim.Time { return c.dpnBusy[node] }

// Summary is the digested result of one run.
type Summary struct {
	// Window is the measured span (run duration minus warmup).
	Window sim.Time
	// Arrivals and Completions are transaction counts inside the window.
	Arrivals    int
	Completions int
	// MeanRT is the mean response time of completed transactions.
	MeanRT sim.Time
	// P50RT, P90RT and MaxRT are response-time percentiles (nearest-rank,
	// the original reproduction metric).
	P50RT, P90RT, MaxRT sim.Time
	// P95RT and P99RT are interpolated tail percentiles (stats.Quantile);
	// the sweep aggregates report P95RT alongside MeanRT.
	P95RT, P99RT sim.Time
	// TPS is Completions divided by the window in seconds.
	TPS float64
	// Blocks, Delays, Restarts and AdmissionRejects count scheduler events
	// over the whole run.
	Blocks, Delays, Restarts, AdmissionRejects int
	// GrantedRequests and StepsExecuted count execution progress.
	GrantedRequests, StepsExecuted int
	// CNUtilization is control-node CPU busy fraction.
	CNUtilization float64
	// DPNUtilization is the mean data-processing-node busy fraction.
	DPNUtilization float64
	// PerDPNUtilization is each node's busy fraction.
	PerDPNUtilization []float64
	// Crashes, CrashAborts, MsgLost, MsgRetries, MsgAborts and
	// StragglerEpisodes count fault-injection events (zero, and omitted
	// from JSON, on the failure-free path).
	Crashes           int `json:",omitempty"`
	CrashAborts       int `json:",omitempty"`
	MsgLost           int `json:",omitempty"`
	MsgRetries        int `json:",omitempty"`
	MsgAborts         int `json:",omitempty"`
	StragglerEpisodes int `json:",omitempty"`
	// DownTime is the integral of down nodes over the run (node-time):
	// two nodes down for 5 s each contribute 10 s.
	DownTime sim.Time `json:",omitempty"`
	// DegradedTime is wall-clock time with at least one fault condition
	// (down node or straggler window) active; CompletionsDegraded and
	// DegradedTPS measure throughput inside those intervals.
	DegradedTime        sim.Time `json:",omitempty"`
	CompletionsDegraded int      `json:",omitempty"`
	DegradedTPS         float64  `json:",omitempty"`
	// Sheds (with its per-reason breakdown; drains are the remainder) and
	// Evictions count streaming-admission backpressure events (zero, and
	// omitted, on closed-batch runs; see internal/admit).
	Sheds         int `json:",omitempty"`
	ShedQueueFull int `json:",omitempty"`
	ShedDeadline  int `json:",omitempty"`
	ShedOverload  int `json:",omitempty"`
	Evictions     int `json:",omitempty"`
}

// Availability is the fraction of node-time the machine's data-processing
// nodes were up: 1 - DownTime/(NumNodes * Window). It is 1 on the
// failure-free path and on averaged summaries that dropped the per-node
// breakdown.
func (s Summary) Availability() float64 {
	n := len(s.PerDPNUtilization)
	if n == 0 || s.Window <= 0 {
		return 1
	}
	return 1 - float64(s.DownTime)/float64(sim.Time(n)*s.Window)
}

// Summarize digests the collector at the end of a run of the given total
// duration.
func (c *Collector) Summarize(duration sim.Time) Summary {
	window := duration - c.warmup
	s := Summary{
		Window:           window,
		Arrivals:         c.arrivals,
		Completions:      c.completions,
		Blocks:           c.blocks,
		Delays:           c.delays,
		Restarts:         c.restarts,
		AdmissionRejects: c.admissionRejects,
		GrantedRequests:  c.grantedRequests,
		StepsExecuted:    c.stepsExecuted,

		Crashes:             c.crashes,
		CrashAborts:         c.crashAborts,
		MsgLost:             c.msgLost,
		MsgRetries:          c.msgRetries,
		MsgAborts:           c.msgAborts,
		StragglerEpisodes:   c.stragglers,
		CompletionsDegraded: c.completionsDegraded,

		Sheds:         c.sheds,
		ShedQueueFull: c.shedQueueFull,
		ShedDeadline:  c.shedDeadline,
		ShedOverload:  c.shedOverload,
		Evictions:     c.evictions,
	}
	// Flush the open down/degraded intervals to the end of the run without
	// mutating the collector (Summarize stays idempotent).
	s.DownTime = c.downTime + sim.Time(c.downNodes)*(duration-c.downSince)
	s.DegradedTime = c.degradedTime
	if c.degradedCount > 0 {
		s.DegradedTime += duration - c.degradedSince
	}
	if s.DegradedTime > 0 {
		s.DegradedTPS = float64(c.completionsDegraded) / s.DegradedTime.Seconds()
	}
	if window <= 0 {
		return s
	}
	if len(c.rts) > 0 {
		sorted := append([]sim.Time(nil), c.rts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum sim.Time
		for _, rt := range sorted {
			sum += rt
		}
		s.MeanRT = sum / sim.Time(len(sorted))
		s.P50RT = percentile(sorted, 0.50)
		s.P90RT = percentile(sorted, 0.90)
		s.MaxRT = sorted[len(sorted)-1]
		secs := make([]float64, len(sorted))
		for i, rt := range sorted {
			secs[i] = rt.Seconds()
		}
		s.P95RT = sim.FromSeconds(stats.QuantileSorted(secs, 0.95))
		s.P99RT = sim.FromSeconds(stats.QuantileSorted(secs, 0.99))
	}
	s.TPS = float64(c.completions) / window.Seconds()
	s.CNUtilization = frac(c.cnBusy, duration)
	s.PerDPNUtilization = make([]float64, len(c.dpnBusy))
	total := 0.0
	for i, b := range c.dpnBusy {
		s.PerDPNUtilization[i] = frac(b, duration)
		total += s.PerDPNUtilization[i]
	}
	if len(c.dpnBusy) > 0 {
		s.DPNUtilization = total / float64(len(c.dpnBusy))
	}
	return s
}

func percentile(sorted []sim.Time, p float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func frac(busy, total sim.Time) float64 {
	if total <= 0 {
		return 0
	}
	return float64(busy) / float64(total)
}

// String renders the headline numbers on one line.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completions=%d tps=%.3f meanRT=%.1fs dpnUtil=%.0f%% cnUtil=%.0f%%",
		s.Completions, s.TPS, s.MeanRT.Seconds(), 100*s.DPNUtilization, 100*s.CNUtilization)
	if s.Restarts > 0 {
		fmt.Fprintf(&b, " restarts=%d", s.Restarts)
	}
	if s.Crashes > 0 {
		fmt.Fprintf(&b, " crashes=%d availability=%.4f", s.Crashes, s.Availability())
	}
	if s.MsgLost > 0 {
		fmt.Fprintf(&b, " msgLost=%d msgAborts=%d", s.MsgLost, s.MsgAborts)
	}
	return b.String()
}
