// Package metrics collects and summarizes the performance measures the
// paper reports: mean response time (arrival to completion), throughput in
// completed transactions per second (TPS), and the counters needed to
// explain them (blocks, delays, restarts, admission rejections, resource
// utilization).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"batchsched/internal/sim"
)

// Collector accumulates raw observations during one simulation run. The
// zero value is not usable; call NewCollector.
type Collector struct {
	warmup sim.Time

	arrivals    int
	completions int
	rts         []sim.Time

	blocks           int
	delays           int
	restarts         int
	admissionRejects int

	cnBusy  sim.Time
	dpnBusy []sim.Time

	grantedRequests int
	stepsExecuted   int
}

// NewCollector returns a collector for a machine with numNodes
// data-processing nodes. Completions before warmup are not counted
// (warmup 0 reproduces the paper, which measures the whole window).
func NewCollector(numNodes int, warmup sim.Time) *Collector {
	return &Collector{warmup: warmup, dpnBusy: make([]sim.Time, numNodes)}
}

// Arrival records a transaction arriving at the control node.
func (c *Collector) Arrival(now sim.Time) {
	if now >= c.warmup {
		c.arrivals++
	}
}

// Completion records a transaction completing with the given response time.
func (c *Collector) Completion(now, rt sim.Time) {
	if now < c.warmup {
		return
	}
	c.completions++
	c.rts = append(c.rts, rt)
}

// Block, Delay, Restart and AdmissionReject count scheduler decisions.
func (c *Collector) Block()           { c.blocks++ }
func (c *Collector) Delay()           { c.delays++ }
func (c *Collector) Restart()         { c.restarts++ }
func (c *Collector) AdmissionReject() { c.admissionRejects++ }

// Granted counts granted lock requests; StepExecuted counts finished steps.
func (c *Collector) Granted()      { c.grantedRequests++ }
func (c *Collector) StepExecuted() { c.stepsExecuted++ }

// CNBusy accumulates control-node CPU busy time.
func (c *Collector) CNBusy(d sim.Time) { c.cnBusy += d }

// DPNBusy accumulates busy time for one data-processing node.
func (c *Collector) DPNBusy(node int, d sim.Time) { c.dpnBusy[node] += d }

// Summary is the digested result of one run.
type Summary struct {
	// Window is the measured span (run duration minus warmup).
	Window sim.Time
	// Arrivals and Completions are transaction counts inside the window.
	Arrivals    int
	Completions int
	// MeanRT is the mean response time of completed transactions.
	MeanRT sim.Time
	// P50RT, P90RT and MaxRT are response-time percentiles.
	P50RT, P90RT, MaxRT sim.Time
	// TPS is Completions divided by the window in seconds.
	TPS float64
	// Blocks, Delays, Restarts and AdmissionRejects count scheduler events
	// over the whole run.
	Blocks, Delays, Restarts, AdmissionRejects int
	// GrantedRequests and StepsExecuted count execution progress.
	GrantedRequests, StepsExecuted int
	// CNUtilization is control-node CPU busy fraction.
	CNUtilization float64
	// DPNUtilization is the mean data-processing-node busy fraction.
	DPNUtilization float64
	// PerDPNUtilization is each node's busy fraction.
	PerDPNUtilization []float64
}

// Summarize digests the collector at the end of a run of the given total
// duration.
func (c *Collector) Summarize(duration sim.Time) Summary {
	window := duration - c.warmup
	s := Summary{
		Window:           window,
		Arrivals:         c.arrivals,
		Completions:      c.completions,
		Blocks:           c.blocks,
		Delays:           c.delays,
		Restarts:         c.restarts,
		AdmissionRejects: c.admissionRejects,
		GrantedRequests:  c.grantedRequests,
		StepsExecuted:    c.stepsExecuted,
	}
	if window <= 0 {
		return s
	}
	if len(c.rts) > 0 {
		sorted := append([]sim.Time(nil), c.rts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum sim.Time
		for _, rt := range sorted {
			sum += rt
		}
		s.MeanRT = sum / sim.Time(len(sorted))
		s.P50RT = percentile(sorted, 0.50)
		s.P90RT = percentile(sorted, 0.90)
		s.MaxRT = sorted[len(sorted)-1]
	}
	s.TPS = float64(c.completions) / window.Seconds()
	s.CNUtilization = frac(c.cnBusy, duration)
	s.PerDPNUtilization = make([]float64, len(c.dpnBusy))
	total := 0.0
	for i, b := range c.dpnBusy {
		s.PerDPNUtilization[i] = frac(b, duration)
		total += s.PerDPNUtilization[i]
	}
	if len(c.dpnBusy) > 0 {
		s.DPNUtilization = total / float64(len(c.dpnBusy))
	}
	return s
}

func percentile(sorted []sim.Time, p float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func frac(busy, total sim.Time) float64 {
	if total <= 0 {
		return 0
	}
	return float64(busy) / float64(total)
}

// String renders the headline numbers on one line.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completions=%d tps=%.3f meanRT=%.1fs dpnUtil=%.0f%% cnUtil=%.0f%%",
		s.Completions, s.TPS, s.MeanRT.Seconds(), 100*s.DPNUtilization, 100*s.CNUtilization)
	if s.Restarts > 0 {
		fmt.Fprintf(&b, " restarts=%d", s.Restarts)
	}
	return b.String()
}
