package metrics

import (
	"batchsched/internal/sim"
	"batchsched/internal/stats"
)

// Average combines replication summaries by arithmetic mean (counts are
// rounded). It panics on an empty slice — averaging nothing is a harness
// bug.
func Average(sums []Summary) Summary {
	if len(sums) == 0 {
		panic("metrics: Average of no summaries")
	}
	if len(sums) == 1 {
		return sums[0]
	}
	n := len(sums)
	var out Summary
	out.Window = sums[0].Window
	var meanRT, p50, p90, p95, p99, maxRT, downTime, degradedTime float64
	for _, s := range sums {
		out.Arrivals += s.Arrivals
		out.Completions += s.Completions
		out.Blocks += s.Blocks
		out.Delays += s.Delays
		out.Restarts += s.Restarts
		out.AdmissionRejects += s.AdmissionRejects
		out.GrantedRequests += s.GrantedRequests
		out.StepsExecuted += s.StepsExecuted
		out.Crashes += s.Crashes
		out.CrashAborts += s.CrashAborts
		out.MsgLost += s.MsgLost
		out.MsgRetries += s.MsgRetries
		out.MsgAborts += s.MsgAborts
		out.StragglerEpisodes += s.StragglerEpisodes
		out.CompletionsDegraded += s.CompletionsDegraded
		out.Sheds += s.Sheds
		out.ShedQueueFull += s.ShedQueueFull
		out.ShedDeadline += s.ShedDeadline
		out.ShedOverload += s.ShedOverload
		out.Evictions += s.Evictions
		meanRT += float64(s.MeanRT)
		p50 += float64(s.P50RT)
		p90 += float64(s.P90RT)
		p95 += float64(s.P95RT)
		p99 += float64(s.P99RT)
		maxRT += float64(s.MaxRT)
		downTime += float64(s.DownTime)
		degradedTime += float64(s.DegradedTime)
		out.TPS += s.TPS
		out.CNUtilization += s.CNUtilization
		out.DPNUtilization += s.DPNUtilization
		out.DegradedTPS += s.DegradedTPS
	}
	div := func(v int) int { return (v + n/2) / n }
	out.Arrivals = div(out.Arrivals)
	out.Completions = div(out.Completions)
	out.Blocks = div(out.Blocks)
	out.Delays = div(out.Delays)
	out.Restarts = div(out.Restarts)
	out.AdmissionRejects = div(out.AdmissionRejects)
	out.GrantedRequests = div(out.GrantedRequests)
	out.StepsExecuted = div(out.StepsExecuted)
	out.Crashes = div(out.Crashes)
	out.CrashAborts = div(out.CrashAborts)
	out.MsgLost = div(out.MsgLost)
	out.MsgRetries = div(out.MsgRetries)
	out.MsgAborts = div(out.MsgAborts)
	out.StragglerEpisodes = div(out.StragglerEpisodes)
	out.CompletionsDegraded = div(out.CompletionsDegraded)
	out.Sheds = div(out.Sheds)
	out.ShedQueueFull = div(out.ShedQueueFull)
	out.ShedDeadline = div(out.ShedDeadline)
	out.ShedOverload = div(out.ShedOverload)
	out.Evictions = div(out.Evictions)
	fn := float64(n)
	out.MeanRT = sim.Time(meanRT / fn)
	out.P50RT = sim.Time(p50 / fn)
	out.P90RT = sim.Time(p90 / fn)
	out.P95RT = sim.Time(p95 / fn)
	out.P99RT = sim.Time(p99 / fn)
	out.MaxRT = sim.Time(maxRT / fn)
	out.DownTime = sim.Time(downTime / fn)
	out.DegradedTime = sim.Time(degradedTime / fn)
	out.TPS /= fn
	out.CNUtilization /= fn
	out.DPNUtilization /= fn
	out.DegradedTPS /= fn
	// Element-wise per-node utilization mean (also keeps Availability
	// computable on averaged summaries, which needs the node count).
	if n := len(sums[0].PerDPNUtilization); n > 0 {
		out.PerDPNUtilization = make([]float64, n)
		for _, s := range sums {
			for i, u := range s.PerDPNUtilization {
				if i < n {
					out.PerDPNUtilization[i] += u
				}
			}
		}
		for i := range out.PerDPNUtilization {
			out.PerDPNUtilization[i] /= fn
		}
	}
	return out
}

// CI is the 95% confidence half-width of the headline metrics across
// replications.
type CI struct {
	// MeanRT is the half-width on the mean response time.
	MeanRT sim.Time
	// TPS is the half-width on the throughput.
	TPS float64
}

// AverageWithCI combines replication summaries and also returns Student-t
// 95% confidence half-widths for mean response time and throughput
// (zero when fewer than two replications).
func AverageWithCI(sums []Summary) (Summary, CI) {
	avg := Average(sums)
	if len(sums) < 2 {
		return avg, CI{}
	}
	var rt, tps stats.Sample
	for _, s := range sums {
		rt.Add(float64(s.MeanRT))
		tps.Add(s.TPS)
	}
	return avg, CI{MeanRT: sim.Time(rt.CI95()), TPS: tps.CI95()}
}
