package metrics

import (
	"strings"
	"testing"

	"batchsched/internal/sim"
)

func TestCollectorSummarize(t *testing.T) {
	c := NewCollector(2, 0)
	c.Arrival(0)
	c.Arrival(sim.Second)
	c.Completion(10*sim.Second, 4*sim.Second)
	c.Completion(20*sim.Second, 8*sim.Second)
	c.Block()
	c.Delay()
	c.Delay()
	c.Restart()
	c.AdmissionReject()
	c.Granted()
	c.StepExecuted()
	c.CNBusy(5 * sim.Second)
	c.DPNBusy(0, 50*sim.Second)
	c.DPNBusy(1, 100*sim.Second)

	s := c.Summarize(100 * sim.Second)
	if s.Arrivals != 2 || s.Completions != 2 {
		t.Errorf("arrivals=%d completions=%d", s.Arrivals, s.Completions)
	}
	if s.MeanRT != 6*sim.Second {
		t.Errorf("meanRT = %v, want 6s", s.MeanRT)
	}
	if s.P50RT != 4*sim.Second || s.MaxRT != 8*sim.Second {
		t.Errorf("p50=%v max=%v", s.P50RT, s.MaxRT)
	}
	if s.TPS != 0.02 {
		t.Errorf("TPS = %v, want 0.02", s.TPS)
	}
	if s.Blocks != 1 || s.Delays != 2 || s.Restarts != 1 || s.AdmissionRejects != 1 {
		t.Error("counter mismatch")
	}
	if s.CNUtilization != 0.05 {
		t.Errorf("CN util = %v, want 0.05", s.CNUtilization)
	}
	if s.PerDPNUtilization[0] != 0.5 || s.PerDPNUtilization[1] != 1.0 {
		t.Errorf("per-DPN util = %v", s.PerDPNUtilization)
	}
	if s.DPNUtilization != 0.75 {
		t.Errorf("mean DPN util = %v, want 0.75", s.DPNUtilization)
	}
	if !strings.Contains(s.String(), "restarts=1") {
		t.Errorf("String() = %q, want restart note", s.String())
	}
}

func TestWarmupExcludesEarlyCompletions(t *testing.T) {
	c := NewCollector(1, 10*sim.Second)
	c.Arrival(5 * sim.Second) // before warmup
	c.Completion(9*sim.Second, sim.Second)
	c.Arrival(15 * sim.Second)
	c.Completion(20*sim.Second, 2*sim.Second)
	s := c.Summarize(30 * sim.Second)
	if s.Arrivals != 1 || s.Completions != 1 {
		t.Errorf("arrivals=%d completions=%d, want 1 and 1", s.Arrivals, s.Completions)
	}
	if s.Window != 20*sim.Second {
		t.Errorf("window = %v, want 20s", s.Window)
	}
	if s.MeanRT != 2*sim.Second {
		t.Errorf("meanRT = %v, want 2s", s.MeanRT)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	c := NewCollector(1, 0)
	s := c.Summarize(10 * sim.Second)
	if s.MeanRT != 0 || s.TPS != 0 || s.Completions != 0 {
		t.Error("empty run must summarize to zeros")
	}
}

func TestPercentile(t *testing.T) {
	var sorted []sim.Time
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, sim.Time(i))
	}
	if got := percentile(sorted, 0.5); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(sorted, 0.9); got != 90 {
		t.Errorf("p90 = %v", got)
	}
	if got := percentile(sorted[:1], 0.5); got != 1 {
		t.Errorf("single-element percentile = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestAverage(t *testing.T) {
	a := Summary{Window: 10 * sim.Second, Completions: 10, MeanRT: 4 * sim.Second, TPS: 1.0, Blocks: 2}
	b := Summary{Window: 10 * sim.Second, Completions: 20, MeanRT: 8 * sim.Second, TPS: 2.0, Blocks: 3}
	avg := Average([]Summary{a, b})
	if avg.Completions != 15 || avg.MeanRT != 6*sim.Second || avg.TPS != 1.5 {
		t.Errorf("avg = %+v", avg)
	}
	if avg.Blocks != 3 { // (2+3+1)/2 rounded
		t.Errorf("blocks = %d, want 3 (rounded mean)", avg.Blocks)
	}
	if one := Average([]Summary{a}); one.MeanRT != a.MeanRT || one.TPS != a.TPS || one.Completions != a.Completions {
		t.Error("single-summary average must be identity")
	}
}

func TestAveragePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Average(nil)
}

func TestAverageWithCI(t *testing.T) {
	a := Summary{MeanRT: 4 * sim.Second, TPS: 1.0}
	b := Summary{MeanRT: 8 * sim.Second, TPS: 2.0}
	avg, ci := AverageWithCI([]Summary{a, b})
	if avg.MeanRT != 6*sim.Second {
		t.Errorf("avg = %v", avg.MeanRT)
	}
	if ci.MeanRT <= 0 || ci.TPS <= 0 {
		t.Errorf("CI = %+v, want positive half-widths", ci)
	}
	// n=2, sd(RT)=2.828s: CI = 12.706*2.828/1.414 = 25.4s.
	if got := ci.MeanRT.Seconds(); got < 25 || got > 26 {
		t.Errorf("RT CI = %vs, want ~25.4", got)
	}
	_, none := AverageWithCI([]Summary{a})
	if none.MeanRT != 0 || none.TPS != 0 {
		t.Error("single rep must have zero CI")
	}
}
