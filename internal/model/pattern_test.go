package model

import (
	"strings"
	"testing"
)

func TestParsePatternExperiment1(t *testing.T) {
	p, err := ParsePattern("Xr(F1:1) -> Xr(F2:5) -> w(F1:0.2) -> w(F2:1)")
	if err != nil {
		t.Fatal(err)
	}
	steps := p.Steps()
	if len(steps) != 4 {
		t.Fatalf("len = %d, want 4", len(steps))
	}
	want := []PatternStep{
		{Sym: "F1", Write: false, LockMode: X, Cost: 1},
		{Sym: "F2", Write: false, LockMode: X, Cost: 5},
		{Sym: "F1", Write: true, LockMode: X, Cost: 0.2},
		{Sym: "F2", Write: true, LockMode: X, Cost: 1},
	}
	for i, w := range want {
		if steps[i] != w {
			t.Errorf("step %d = %+v, want %+v", i, steps[i], w)
		}
	}
	if syms := p.Symbols(); len(syms) != 2 || syms[0] != "F1" || syms[1] != "F2" {
		t.Errorf("Symbols = %v", syms)
	}
}

func TestParsePatternExperiment2(t *testing.T) {
	p, err := ParsePattern("r(B:5)->w(F1:1)->w(F2:1)")
	if err != nil {
		t.Fatal(err)
	}
	steps := p.Steps()
	if steps[0].LockMode != S || steps[0].Write {
		t.Errorf("plain r must take S and not write: %+v", steps[0])
	}
	if !steps[1].Write || steps[1].LockMode != X {
		t.Errorf("w must take X and write: %+v", steps[1])
	}
}

func TestPatternRoundTrip(t *testing.T) {
	srcs := []string{
		"Xr(F1:1)->Xr(F2:5)->w(F1:0.2)->w(F2:1)",
		"r(B:5)->w(F1:1)->w(F2:1)",
		"r(A:1)->r(B:3)->w(A:1)",
		"w(Z:0.5)",
	}
	for _, src := range srcs {
		p := MustParsePattern(src)
		if got := p.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
		p2 := MustParsePattern(p.String())
		if p2.String() != p.String() {
			t.Errorf("second round trip changed: %q", p2.String())
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	bad := []string{
		"",
		"q(A:1)",
		"r(A)",
		"rA:1)",
		"r(:1)",
		"r(A:x)",
		"r(A:-1)",
		"r(A:1)->",
		"X",
		"Xw(", // malformed parens
	}
	for _, src := range bad {
		if _, err := ParsePattern(src); err == nil {
			t.Errorf("ParsePattern(%q) succeeded, want error", src)
		}
	}
}

func TestParsePatternErrorMentionsStep(t *testing.T) {
	_, err := ParsePattern("r(A:1)->bogus->w(B:1)")
	if err == nil || !strings.Contains(err.Error(), "step 2") {
		t.Errorf("error should name the offending step, got %v", err)
	}
}

func TestInstantiate(t *testing.T) {
	p := MustParsePattern("Xr(F1:1)->w(F2:2)")
	steps, err := p.Instantiate(map[string]FileID{"F1": 10, "F2": 11})
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].File != 10 || steps[1].File != 11 {
		t.Errorf("binding not applied: %+v", steps)
	}
	if steps[0].DeclaredCost != steps[0].Cost {
		t.Error("declared cost must default to actual cost")
	}
	if _, err := p.Instantiate(map[string]FileID{"F1": 10}); err == nil {
		t.Error("missing binding must error")
	}
}

func TestMustParsePatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParsePattern("nonsense")
}

func TestWhitespaceTolerance(t *testing.T) {
	p := MustParsePattern("  Xr( F1 : 1 )  ->  w( F2 : 0.25 ) ")
	steps := p.Steps()
	if steps[0].Sym != "F1" || steps[1].Cost != 0.25 {
		t.Errorf("whitespace handling wrong: %+v", steps)
	}
}
