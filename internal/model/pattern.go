package model

import (
	"fmt"
	"strconv"
	"strings"
)

// Pattern is a parameterized transaction template in the paper's notation,
// e.g. the Experiment-1 pattern
//
//	Xr(F1:1) -> Xr(F2:5) -> w(F1:0.2) -> w(F2:1)
//
// Each step is [X]r or w, a symbolic file name, and a cost in objects. An
// optional leading X on a read step requests an exclusive lock for it (as the
// first two steps of Experiment 1 do); plain r takes S and w always takes X.
// Symbolic names are bound to concrete files at instantiation time.
type Pattern struct {
	steps []PatternStep
}

// PatternStep is one templated step.
type PatternStep struct {
	// Sym is the symbolic file name ("F1", "B", ...).
	Sym string
	// Write marks a w step.
	Write bool
	// LockMode is the lock the instantiated step will request.
	LockMode Mode
	// Cost is the step's I/O demand in objects at DD=1.
	Cost float64
}

// ParsePattern parses the mini-language. Steps are separated by "->";
// whitespace is insignificant.
func ParsePattern(src string) (*Pattern, error) {
	var p Pattern
	parts := strings.Split(src, "->")
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("pattern: empty input")
	}
	for i, raw := range parts {
		st, err := parseStep(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("pattern: step %d %q: %w", i+1, strings.TrimSpace(raw), err)
		}
		p.steps = append(p.steps, st)
	}
	return &p, nil
}

// MustParsePattern is ParsePattern that panics on error; for tests and
// package-level pattern constants.
func MustParsePattern(src string) *Pattern {
	p, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseStep(s string) (PatternStep, error) {
	var st PatternStep
	if s == "" {
		return st, fmt.Errorf("empty step")
	}
	rest := s
	st.LockMode = S
	if rest[0] == 'X' {
		st.LockMode = X
		rest = rest[1:]
	}
	if rest == "" {
		return st, fmt.Errorf("missing operation")
	}
	switch rest[0] {
	case 'r':
		st.Write = false
	case 'w':
		st.Write = true
		st.LockMode = X
	default:
		return st, fmt.Errorf("operation must be r or w, got %q", rest[0])
	}
	rest = rest[1:]
	if len(rest) < 2 || rest[0] != '(' || rest[len(rest)-1] != ')' {
		return st, fmt.Errorf("expected (NAME:COST)")
	}
	body := rest[1 : len(rest)-1]
	colon := strings.LastIndexByte(body, ':')
	if colon < 0 {
		return st, fmt.Errorf("expected NAME:COST inside parentheses")
	}
	st.Sym = strings.TrimSpace(body[:colon])
	if st.Sym == "" {
		return st, fmt.Errorf("empty file name")
	}
	cost, err := strconv.ParseFloat(strings.TrimSpace(body[colon+1:]), 64)
	if err != nil {
		return st, fmt.Errorf("bad cost: %w", err)
	}
	if cost < 0 {
		return st, fmt.Errorf("negative cost %g", cost)
	}
	st.Cost = cost
	return st, nil
}

// Steps returns the templated steps (a copy).
func (p *Pattern) Steps() []PatternStep {
	cp := make([]PatternStep, len(p.steps))
	copy(cp, p.steps)
	return cp
}

// Symbols returns the distinct symbolic file names in first-appearance order.
func (p *Pattern) Symbols() []string {
	var out []string
	seen := make(map[string]bool)
	for _, st := range p.steps {
		if !seen[st.Sym] {
			seen[st.Sym] = true
			out = append(out, st.Sym)
		}
	}
	return out
}

// String renders the pattern back in the mini-language.
func (p *Pattern) String() string {
	parts := make([]string, len(p.steps))
	for i, st := range p.steps {
		op := "r"
		if st.Write {
			op = "w"
		}
		prefix := ""
		if st.LockMode == X && !st.Write {
			prefix = "X"
		}
		parts[i] = fmt.Sprintf("%s%s(%s:%g)", prefix, op, st.Sym, st.Cost)
	}
	return strings.Join(parts, "->")
}

// Instantiate binds every symbolic name to a concrete file and returns the
// resulting steps, with declared costs equal to the actual costs. It errors
// when a symbol has no binding.
func (p *Pattern) Instantiate(binding map[string]FileID) ([]Step, error) {
	steps := make([]Step, len(p.steps))
	for i, st := range p.steps {
		f, ok := binding[st.Sym]
		if !ok {
			return nil, fmt.Errorf("pattern: no binding for symbol %q", st.Sym)
		}
		steps[i] = Step{
			File:         f,
			Write:        st.Write,
			LockMode:     st.LockMode,
			Cost:         st.Cost,
			DeclaredCost: st.Cost,
		}
	}
	return steps, nil
}
