// Package model defines the batch-transaction model of Section 2 of the
// paper: a batch is a sequential list of file-scanning steps, each reading or
// writing one file under a file-granularity S or X lock held to commit, with
// a cost measured in "objects" (one object = one bulk-I/O unit, e.g. a disk
// cylinder). Transactions pre-declare their full step sequence and per-step
// I/O demands ("access declarations"); the declared costs may differ from the
// actual costs when the Experiment-3 estimation-error model is in effect.
package model

import (
	"fmt"
	"sort"
	"strings"

	"batchsched/internal/sim"
)

// FileID identifies a file (the locking granule). Files are the unit of both
// locking and placement.
type FileID int

// Mode is a lock mode.
type Mode int

const (
	// S is a shared (read) lock.
	S Mode = iota
	// X is an exclusive (write) lock.
	X
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == X {
		return "X"
	}
	return "S"
}

// Compatible reports whether two locks of modes m and o may be held on the
// same file by different transactions at the same time.
func (m Mode) Compatible(o Mode) bool { return m == S && o == S }

// Step is one file-scanning operation of a batch.
type Step struct {
	// File is the file scanned by this step.
	File FileID
	// Write reports whether the step semantically writes the file (used by
	// the optimistic scheduler's read/write sets and by the serializability
	// checker). A read step may still request an X lock (LockMode) as in
	// Experiment 1.
	Write bool
	// LockMode is the lock the step requests on File.
	LockMode Mode
	// Cost is the actual I/O demand in objects at DD=1 (C0 in the paper).
	Cost float64
	// DeclaredCost is the I/O demand the transaction declares to the
	// scheduler (C in the paper). Equal to Cost unless an estimation-error
	// model perturbed it.
	DeclaredCost float64
}

// String renders the step in the pattern mini-language, e.g. "Xr(3:1)".
func (s Step) String() string {
	op := "r"
	if s.Write {
		op = "w"
	}
	prefix := ""
	if s.LockMode == X && !s.Write {
		prefix = "X"
	}
	if s.LockMode == S && s.Write {
		prefix = "S" // never sensible, but render faithfully
	}
	return fmt.Sprintf("%s%s(%d:%g)", prefix, op, s.File, s.Cost)
}

// Status is the lifecycle state of a transaction.
type Status int

const (
	// Pending: arrived but not yet admitted by the scheduler.
	Pending Status = iota
	// Active: admitted; executing (or waiting on a lock between steps).
	Active
	// Committed: all steps done and commitment finished.
	Committed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Active:
		return "active"
	case Committed:
		return "committed"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Txn is one batch transaction: its declaration plus the runtime state the
// machine model advances. Scheduler implementations read the declaration and
// StepIndex; they must not mutate steps.
type Txn struct {
	// ID is a unique, monotonically increasing identifier.
	ID int64
	// Steps is the declared sequence of file-scanning operations.
	Steps []Step
	// Arrival is the virtual time the transaction arrived at the control
	// node (first arrival; unchanged by optimistic restarts).
	Arrival sim.Time

	// StepIndex is the index of the step currently being requested or
	// executed; len(Steps) once every step has finished.
	StepIndex int
	// Status is the lifecycle state.
	Status Status
	// Restarts counts optimistic aborts (always 0 under the lock-based
	// schedulers, which never roll back).
	Restarts int
	// AdmissionTries counts scheduler admission rejections (GOW chain-form
	// failures, LOW K-conflict refusals, ASL lock-unavailability waits).
	AdmissionTries int

	// Lazily computed caches over the (immutable) declaration. Valid
	// because Steps never change after construction.
	need      map[FileID]Mode
	needFiles []FileID // LockNeed as parallel slices sorted by file
	needModes []Mode
	readSet   map[FileID]bool
	writeSet  map[FileID]bool
}

// NewTxn builds a transaction from steps; declared costs default to the
// actual costs when left zero... they must be set by the caller. Steps are
// copied.
func NewTxn(id int64, arrival sim.Time, steps []Step) *Txn {
	cp := make([]Step, len(steps))
	copy(cp, steps)
	return &Txn{ID: id, Steps: cp, Arrival: arrival}
}

// String renders the transaction's declared pattern.
func (t *Txn) String() string {
	parts := make([]string, len(t.Steps))
	for i, s := range t.Steps {
		parts[i] = s.String()
	}
	return fmt.Sprintf("T%d: %s", t.ID, strings.Join(parts, "->"))
}

// Done reports whether all steps have completed.
func (t *Txn) Done() bool { return t.StepIndex >= len(t.Steps) }

// CurrentStep returns the step at StepIndex. It panics when Done.
func (t *Txn) CurrentStep() Step { return t.Steps[t.StepIndex] }

// TotalCost returns the sum of actual step costs in objects.
func (t *Txn) TotalCost() float64 {
	var sum float64
	for _, s := range t.Steps {
		sum += s.Cost
	}
	return sum
}

// DeclaredRemaining returns the sum of declared costs of steps from index
// `from` (inclusive) to the end — the WTPG "remaining I/O demand" quantity.
func (t *Txn) DeclaredRemaining(from int) float64 {
	var sum float64
	for i := from; i < len(t.Steps); i++ {
		if i < 0 {
			continue
		}
		sum += t.Steps[i].DeclaredCost
	}
	return sum
}

// LockNeed returns the strongest lock mode the transaction's declaration
// requests on each file it touches (X dominates S). The returned map is a
// cache shared across calls — callers must not modify it.
func (t *Txn) LockNeed() map[FileID]Mode {
	if t.need == nil {
		need := make(map[FileID]Mode, len(t.Steps))
		for _, s := range t.Steps {
			if cur, ok := need[s.File]; !ok || (cur == S && s.LockMode == X) {
				need[s.File] = s.LockMode
			}
		}
		t.need = need
	}
	return t.need
}

// LockNeedSorted returns LockNeed as parallel slices sorted ascending by
// file ID, for allocation-free deterministic iteration. The slices are a
// cache shared across calls — callers must not modify them.
func (t *Txn) LockNeedSorted() ([]FileID, []Mode) {
	if t.needFiles == nil {
		need := t.LockNeed()
		files := make([]FileID, 0, len(need))
		for f := range need {
			files = append(files, f)
		}
		sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
		modes := make([]Mode, len(files))
		for i, f := range files {
			modes[i] = need[f]
		}
		t.needFiles, t.needModes = files, modes
	}
	return t.needFiles, t.needModes
}

// NeedMode returns the strongest declared lock mode on f, if the
// declaration touches f at all (binary search over the sorted need list —
// cheaper than a map lookup on the scheduler hot paths).
func (t *Txn) NeedMode(f FileID) (Mode, bool) {
	files, modes := t.LockNeedSorted()
	i := sort.Search(len(files), func(i int) bool { return files[i] >= f })
	if i < len(files) && files[i] == f {
		return modes[i], true
	}
	return 0, false
}

// ReadSet returns the files the transaction semantically reads. The
// returned map is a cache shared across calls — callers must not modify it.
func (t *Txn) ReadSet() map[FileID]bool {
	if t.readSet == nil {
		set := make(map[FileID]bool)
		for _, s := range t.Steps {
			if !s.Write {
				set[s.File] = true
			}
		}
		t.readSet = set
	}
	return t.readSet
}

// WriteSet returns the files the transaction semantically writes. The
// returned map is a cache shared across calls — callers must not modify it.
func (t *Txn) WriteSet() map[FileID]bool {
	if t.writeSet == nil {
		set := make(map[FileID]bool)
		for _, s := range t.Steps {
			if s.Write {
				set[s.File] = true
			}
		}
		t.writeSet = set
	}
	return t.writeSet
}

// Conflicts reports whether the declarations of a and b contain conflicting
// accesses to at least one common file (same file, incompatible lock modes).
func Conflicts(a, b *Txn) bool {
	_, ok := FirstConflictStep(a, b)
	return ok
}

// FirstConflictStep returns the index of the earliest step of `of` that
// requests a lock conflicting with any declared access of `with`, and whether
// such a step exists. This is the step at which `of` would be blocked by
// `with`, the anchor of the WTPG weight w(with -> of).
func FirstConflictStep(of, with *Txn) (int, bool) {
	need := with.LockNeed()
	for i, s := range of.Steps {
		m, ok := need[s.File]
		if !ok {
			continue
		}
		if !s.LockMode.Compatible(m) {
			return i, true
		}
	}
	return 0, false
}

// ConflictWeight returns the WTPG weight w(with -> of): assuming `of` is
// blocked by `with` at its first conflicting step and `with` has just
// committed, the declared I/O demand (in objects) `of` must still pay before
// its own commitment. Returns 0 and false when the two do not conflict.
func ConflictWeight(of, with *Txn) (float64, bool) {
	i, ok := FirstConflictStep(of, with)
	if !ok {
		return 0, false
	}
	return of.DeclaredRemaining(i), true
}
