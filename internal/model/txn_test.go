package model

import (
	"testing"
	"testing/quick"
)

// paperT1 and paperT2 are the transactions of Fig. 2-(a):
//
//	T1: r1(A:1) -> r1(B:3) -> w1(A:1)
//	T2: r2(C:1) -> w2(A:1) -> w2(C:1)
func paperT1() *Txn {
	return NewTxn(1, 0, mustSteps(t1Pattern, map[string]FileID{"A": 0, "B": 1}))
}

func paperT2() *Txn {
	return NewTxn(2, 0, mustSteps(t2Pattern, map[string]FileID{"A": 0, "C": 2}))
}

var (
	t1Pattern = MustParsePattern("r(A:1)->r(B:3)->w(A:1)")
	t2Pattern = MustParsePattern("r(C:1)->w(A:1)->w(C:1)")
)

func mustSteps(p *Pattern, b map[string]FileID) []Step {
	s, err := p.Instantiate(b)
	if err != nil {
		panic(err)
	}
	return s
}

func TestModeCompatibility(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{S, S, true}, {S, X, false}, {X, S, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := c.a.Compatible(c.b); got != c.want {
			t.Errorf("%v.Compatible(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if S.String() != "S" || X.String() != "X" {
		t.Error("Mode.String mismatch")
	}
}

func TestPaperFig2Weights(t *testing.T) {
	t1, t2 := paperT1(), paperT2()

	// T2 is blocked by T1 at its second step w2(A:1); remaining cost from
	// there is 1 + 1 = 2. So the weight on {T1 -> T2} is 2 (paper Section
	// 3.1, weight rule 1 example).
	w, ok := ConflictWeight(t2, t1)
	if !ok {
		t.Fatal("T1 and T2 must conflict (both access A with an X side)")
	}
	if w != 2 {
		t.Errorf("w(T1->T2) = %g, want 2", w)
	}

	// T1's first access conflicting with T2 is step 0 (r1(A:1) vs w2(A:1));
	// remaining cost from there is the full 5 objects.
	w, ok = ConflictWeight(t1, t2)
	if !ok || w != 5 {
		t.Errorf("w(T2->T1) = %g ok=%v, want 5 true", w, ok)
	}

	// {T0 -> T1} weight at startup is T1's full remaining demand, 5.
	if got := t1.DeclaredRemaining(0); got != 5 {
		t.Errorf("T0->T1 weight = %g, want 5", got)
	}
	if got := t2.DeclaredRemaining(0); got != 3 {
		t.Errorf("T0->T2 weight = %g, want 3", got)
	}
}

func TestFirstConflictStep(t *testing.T) {
	t1, t2 := paperT1(), paperT2()
	if i, ok := FirstConflictStep(t2, t1); !ok || i != 1 {
		t.Errorf("FirstConflictStep(T2, T1) = %d %v, want 1 true", i, ok)
	}
	if i, ok := FirstConflictStep(t1, t2); !ok || i != 0 {
		t.Errorf("FirstConflictStep(T1, T2) = %d %v, want 0 true", i, ok)
	}

	// Read-read on the same file does not conflict.
	a := NewTxn(3, 0, mustSteps(MustParsePattern("r(A:1)"), map[string]FileID{"A": 0}))
	b := NewTxn(4, 0, mustSteps(MustParsePattern("r(A:2)"), map[string]FileID{"A": 0}))
	if Conflicts(a, b) {
		t.Error("S-S on the same file must not conflict")
	}

	// Disjoint files never conflict.
	c := NewTxn(5, 0, mustSteps(MustParsePattern("w(A:1)"), map[string]FileID{"A": 7}))
	if Conflicts(a, c) {
		t.Error("disjoint files must not conflict")
	}
}

func TestLockNeedXDominates(t *testing.T) {
	// Experiment-1 pattern: X-locks requested at the first two (read) steps.
	p := MustParsePattern("Xr(F1:1)->Xr(F2:5)->w(F1:0.2)->w(F2:1)")
	steps := mustSteps(p, map[string]FileID{"F1": 3, "F2": 9})
	txn := NewTxn(1, 0, steps)
	need := txn.LockNeed()
	if len(need) != 2 || need[3] != X || need[9] != X {
		t.Errorf("LockNeed = %v, want X on files 3 and 9", need)
	}
	if got := txn.TotalCost(); got != 7.2 {
		t.Errorf("TotalCost = %g, want 7.2", got)
	}
	rs, ws := txn.ReadSet(), txn.WriteSet()
	if !rs[3] || !rs[9] || !ws[3] || !ws[9] {
		t.Errorf("read/write sets wrong: r=%v w=%v", rs, ws)
	}
}

func TestLockNeedUpgrade(t *testing.T) {
	p := MustParsePattern("r(A:1)->w(A:1)")
	txn := NewTxn(1, 0, mustSteps(p, map[string]FileID{"A": 0}))
	if txn.LockNeed()[0] != X {
		t.Error("S followed by X on same file must need X overall")
	}
	if txn.Steps[0].LockMode != S {
		t.Error("first step itself still requests S")
	}
}

func TestTxnLifecycleHelpers(t *testing.T) {
	txn := paperT1()
	if txn.Done() {
		t.Fatal("fresh txn is not done")
	}
	if txn.CurrentStep().File != 0 {
		t.Errorf("CurrentStep.File = %d, want 0", txn.CurrentStep().File)
	}
	txn.StepIndex = len(txn.Steps)
	if !txn.Done() {
		t.Fatal("txn with StepIndex past end must be done")
	}
	if got := txn.DeclaredRemaining(2); got != 1 {
		t.Errorf("DeclaredRemaining(2) = %g, want 1", got)
	}
	if got := txn.DeclaredRemaining(99); got != 0 {
		t.Errorf("DeclaredRemaining past end = %g, want 0", got)
	}
}

func TestStatusString(t *testing.T) {
	if Pending.String() != "pending" || Active.String() != "active" || Committed.String() != "committed" {
		t.Error("Status.String mismatch")
	}
}

func TestTxnString(t *testing.T) {
	got := paperT2().String()
	want := "T2: r(2:1)->w(0:1)->w(2:1)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: ConflictWeight(of, with) is always <= of's total declared demand
// and > 0 when a conflict exists, and Conflicts is symmetric.
func TestConflictProperties(t *testing.T) {
	type spec struct {
		FileA, FileB uint8
		WA, WB       bool
	}
	prop := func(a, b spec) bool {
		ta := NewTxn(1, 0, []Step{mkStep(a.FileA, a.WA, 1), mkStep(a.FileB, a.WB, 2)})
		tb := NewTxn(2, 0, []Step{mkStep(b.FileA, b.WA, 3), mkStep(b.FileB, b.WB, 4)})
		if Conflicts(ta, tb) != Conflicts(tb, ta) {
			return false
		}
		if w, ok := ConflictWeight(ta, tb); ok {
			if w <= 0 || w > ta.DeclaredRemaining(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func mkStep(file uint8, write bool, cost float64) Step {
	m := S
	if write {
		m = X
	}
	return Step{File: FileID(file % 4), Write: write, LockMode: m, Cost: cost, DeclaredCost: cost}
}
