package machine

import (
	"testing"

	"batchsched/internal/metrics"
	"batchsched/internal/sim"
)

func TestControlNodeFIFOAndBusyTime(t *testing.T) {
	eng := sim.NewEngine()
	met := metrics.NewCollector(0, 0)
	cn := newControlNode(eng, met)

	var order []string
	var tASeen, tBSeen sim.Time
	cn.submit(cnJob{fn: func() (sim.Time, func()) {
		order = append(order, "a-start")
		return 10 * sim.Millisecond, func() {
			tASeen = eng.Now()
			order = append(order, "a-done")
		}
	}})
	cn.submit(cnJob{fn: func() (sim.Time, func()) {
		order = append(order, "b-start")
		return 5 * sim.Millisecond, func() {
			tBSeen = eng.Now()
			order = append(order, "b-done")
		}
	}})
	if cn.queueLen() != 1 {
		t.Errorf("queueLen = %d, want 1 (one running, one queued)", cn.queueLen())
	}
	eng.Run(sim.Second)
	want := []string{"a-start", "a-done", "b-start", "b-done"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if tASeen != 10*sim.Millisecond || tBSeen != 15*sim.Millisecond {
		t.Errorf("completion times %v %v, want 10ms and 15ms (FIFO single server)", tASeen, tBSeen)
	}
	s := met.Summarize(15 * sim.Millisecond)
	if s.CNUtilization != 1.0 {
		t.Errorf("CN utilization = %v, want 1.0", s.CNUtilization)
	}
}

func TestControlNodeZeroCostJobs(t *testing.T) {
	eng := sim.NewEngine()
	cn := newControlNode(eng, metrics.NewCollector(0, 0))
	ran := 0
	for i := 0; i < 2000; i++ {
		cn.submit(cnJob{fn: func() (sim.Time, func()) { return 0, func() { ran++ } }})
	}
	eng.Run(sim.Second)
	if ran != 2000 {
		t.Fatalf("ran = %d, want 2000", ran)
	}
	if eng.Now() != 0 {
		t.Errorf("zero-cost jobs advanced the clock to %v", eng.Now())
	}
}

func TestControlNodeJobsSubmittedDuringService(t *testing.T) {
	eng := sim.NewEngine()
	cn := newControlNode(eng, metrics.NewCollector(0, 0))
	var done []sim.Time
	cn.submit(cnJob{fn: func() (sim.Time, func()) {
		return 4 * sim.Millisecond, func() {
			done = append(done, eng.Now())
			cn.submit(cnJob{fn: func() (sim.Time, func()) {
				return 6 * sim.Millisecond, func() { done = append(done, eng.Now()) }
			}})
		}
	}})
	eng.Run(sim.Second)
	if len(done) != 2 || done[0] != 4*sim.Millisecond || done[1] != 10*sim.Millisecond {
		t.Errorf("done = %v, want [4ms 10ms]", done)
	}
}

func TestControlNodePanicsOnNegativeCPU(t *testing.T) {
	eng := sim.NewEngine()
	cn := newControlNode(eng, metrics.NewCollector(0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cn.submit(cnJob{fn: func() (sim.Time, func()) { return -1, nil }})
	eng.Run(sim.Second)
}

func TestDPNSingleCohort(t *testing.T) {
	eng := sim.NewEngine()
	met := metrics.NewCollector(1, 0)
	d := newDPN(0, eng, met)
	var finished sim.Time
	d.add(&cohort{remaining: 2500 * sim.Millisecond, quantum: sim.Second,
		done: func() { finished = eng.Now() }})
	eng.Run(10 * sim.Second)
	if finished != 2500*sim.Millisecond {
		t.Errorf("finished at %v, want 2.5s", finished)
	}
	s := met.Summarize(2500 * sim.Millisecond)
	if s.PerDPNUtilization[0] != 1.0 {
		t.Errorf("utilization = %v, want 1.0", s.PerDPNUtilization[0])
	}
}

func TestDPNRoundRobinInterleaving(t *testing.T) {
	eng := sim.NewEngine()
	d := newDPN(0, eng, metrics.NewCollector(1, 0))
	var doneA, doneB sim.Time
	// A needs 2 quanta, B needs 1: service order A B A -> A at 3s, B at 2s.
	d.add(&cohort{remaining: 2 * sim.Second, quantum: sim.Second, done: func() { doneA = eng.Now() }})
	d.add(&cohort{remaining: 1 * sim.Second, quantum: sim.Second, done: func() { doneB = eng.Now() }})
	eng.Run(10 * sim.Second)
	if doneB != 2*sim.Second {
		t.Errorf("B done at %v, want 2s (after A's first quantum)", doneB)
	}
	if doneA != 3*sim.Second {
		t.Errorf("A done at %v, want 3s", doneA)
	}
}

func TestDPNLateArrivalJoinsRotation(t *testing.T) {
	eng := sim.NewEngine()
	d := newDPN(0, eng, metrics.NewCollector(1, 0))
	var doneA, doneB sim.Time
	d.add(&cohort{remaining: 3 * sim.Second, quantum: sim.Second, done: func() { doneA = eng.Now() }})
	eng.Schedule(1500*sim.Millisecond, func(sim.Time) {
		d.add(&cohort{remaining: 1 * sim.Second, quantum: sim.Second, done: func() { doneB = eng.Now() }})
	})
	eng.Run(20 * sim.Second)
	// A runs [0,2) alone (B arrives mid-quantum at 1.5s and waits for the
	// boundary), then A and B alternate: B [2,3), A [3,4) -> A at 4s, B 3s.
	if doneB != 3*sim.Second {
		t.Errorf("B done at %v, want 3s", doneB)
	}
	if doneA != 4*sim.Second {
		t.Errorf("A done at %v, want 4s", doneA)
	}
}

func TestDPNZeroWorkCohort(t *testing.T) {
	eng := sim.NewEngine()
	d := newDPN(0, eng, metrics.NewCollector(1, 0))
	ran := false
	d.add(&cohort{remaining: 0, quantum: sim.Second, done: func() { ran = true }})
	eng.Run(sim.Second)
	if !ran {
		t.Fatal("zero-work cohort never completed")
	}
	if eng.Now() != 0 {
		t.Errorf("zero-work cohort advanced the clock to %v", eng.Now())
	}
}

func TestDPNPanicsOnZeroQuantum(t *testing.T) {
	eng := sim.NewEngine()
	d := newDPN(0, eng, metrics.NewCollector(1, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.add(&cohort{remaining: sim.Second, quantum: 0})
}

func TestDPNManyCohortsFairness(t *testing.T) {
	eng := sim.NewEngine()
	d := newDPN(0, eng, metrics.NewCollector(1, 0))
	const n = 10
	finish := make([]sim.Time, n)
	for i := 0; i < n; i++ {
		i := i
		d.add(&cohort{remaining: 2 * sim.Second, quantum: sim.Second,
			done: func() { finish[i] = eng.Now() }})
	}
	eng.Run(100 * sim.Second)
	// All equal cohorts finish within one round of each other, in order.
	for i := 1; i < n; i++ {
		if finish[i] <= finish[i-1] {
			t.Errorf("finish order violated: %v", finish)
			break
		}
	}
	if finish[0] != 11*sim.Second || finish[n-1] != 20*sim.Second {
		t.Errorf("finish = %v, want 11s..20s", finish)
	}
}
