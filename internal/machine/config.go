// Package machine implements the Shared-Nothing database machine model of
// the paper's Section 4: one control node (CN) with a single FCFS CPU that
// runs the scheduler and coordinates two-phase commitment, and NumNodes
// data-processing nodes (DPNs) that execute file-scanning cohorts in a
// round-robin discipline. Files are placed by fileID mod NumNodes and
// declustered over DD consecutive nodes; a step of cost C runs as DD
// parallel cohorts of C/DD objects each.
package machine

import (
	"fmt"

	"batchsched/internal/admit"
	"batchsched/internal/fault"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// Config carries the machine and measurement parameters (paper Table 1).
type Config struct {
	// NumNodes is the number of data-processing nodes.
	NumNodes int
	// NumFiles is the number of files (locking granules).
	NumFiles int
	// DD is the degree of declustering: each file is split over DD
	// consecutive nodes starting at its home node.
	DD int
	// MsgTime is the CN CPU time per message send or receive.
	MsgTime sim.Time
	// NetDelay is the network transfer delay (0 in the paper).
	NetDelay sim.Time
	// SOTTime is the CN CPU time of transaction startup.
	SOTTime sim.Time
	// COTTime is the CN CPU time of commitment coordination.
	COTTime sim.Time
	// ObjTime is the DPN service time for one object at DD = 1.
	ObjTime sim.Time
	// ArrivalRate is the Poisson arrival rate in transactions per second;
	// 0 disables the internal arrival process (transactions are then fed
	// with Submit).
	ArrivalRate float64
	// Arrivals overrides the arrival process (nil keeps the paper's
	// homogeneous Poisson at ArrivalRate, drawing byte-identical variates).
	// Stateful processes (workload.Trace, workload.Burst) must be fresh per
	// run, like schedulers.
	Arrivals workload.Arrivals
	// Service switches the machine into streaming-admission mode
	// (internal/admit): arrivals enter the bounded deadline-ordered admission
	// queue instead of going straight to the scheduler, an epoch loop drains
	// it into the policy's in-flight window, and backpressure sheds load.
	// The window bound comes from Service.MPL, so Config.MPL must be 0.
	// Requires an arrival process (Arrivals or ArrivalRate > 0).
	Service *admit.Policy
	// Duration is the simulated span (the paper runs 2,000,000 ms).
	Duration sim.Time
	// Warmup excludes early completions from the metrics (0 in the paper).
	Warmup sim.Time
	// MPL caps concurrently admitted transactions at the control node
	// itself; 0 means infinite (the paper's setting; C2PL+M implements its
	// limit inside the scheduler instead).
	MPL int
	// ChargeRetryCPU makes re-tried admissions pay the scheduler's
	// admission CPU on every retry instead of only on first attempt
	// (ablation knob; see DESIGN.md).
	ChargeRetryCPU bool
	// RunToCompletion is an ablation knob: data-processing nodes run each
	// cohort to completion (FCFS) instead of the paper's round-robin
	// interleave with a 1/DD-object quantum.
	RunToCompletion bool
	// QuantumStepped selects the quantum-per-event DPN service loop instead
	// of the default event-coalesced fast-forward engine. The two are
	// semantically identical (the stepped loop is kept as the differential
	// oracle; see DESIGN.md §11) — stepped runs just dispatch one calendar
	// event per round-robin quantum and are proportionally slower.
	QuantumStepped bool
	// NoWakeOnGrant is an ablation knob: policy-delayed lock requests are
	// retried only after commits, not after every grant.
	NoWakeOnGrant bool
	// ParallelRun enables the sharded-calendar PDES engine: each DPN's
	// coalesced completion event lives on a per-node sub-calendar, and runs
	// of same-instant completions that sort before every control-node event
	// ("safe waves", DESIGN.md §13) have their ring replays prepared by
	// ParallelRun worker goroutines before being committed in exact
	// sequential order. 0 keeps the single merged calendar; 1 shards the
	// calendar but prepares waves inline (no goroutines — this is the fast
	// single-core configuration); N > 1 uses N workers. Traces and summaries
	// are byte-identical across all settings. Incompatible with
	// QuantumStepped (the stepped oracle books one event per quantum and is
	// deliberately left on the merged calendar).
	ParallelRun int
	// RestartDelay holds an aborted transaction (optimistic validation
	// failure, 2PL deadlock victim, or fault-induced abort) back for this
	// long before it re-executes — the paper's "aborted requests are
	// submitted again after some delay". Zero restarts immediately.
	RestartDelay sim.Time
	// RestartJitter randomizes each restart hold-back to uniform
	// [0.5, 1.5) x RestartDelay (drawn from the machine RNG's "restart"
	// stream). A fixed delay can lock symmetric deadlock victims into a
	// periodic abort/re-acquire orbit that never drains — classic restart
	// livelock under strict 2PL — and randomized backoff is the standard
	// way to break it. Off by default; ignored when RestartDelay is zero.
	RestartJitter bool
	// Faults configures the fault injector (crashes, stragglers, lossy
	// messaging). The zero value is the paper's failure-free machine and
	// leaves the failure-free event sequence untouched.
	Faults fault.Config
}

// DefaultConfig returns the paper's Table-1 machine parameters with the
// Experiment-1 defaults for NumFiles and DD.
func DefaultConfig() Config {
	return Config{
		NumNodes:    8,
		NumFiles:    16,
		DD:          1,
		MsgTime:     2 * sim.Millisecond,
		NetDelay:    0,
		SOTTime:     2 * sim.Millisecond,
		COTTime:     7 * sim.Millisecond,
		ObjTime:     1000 * sim.Millisecond,
		ArrivalRate: 1.0,
		Duration:    2_000_000 * sim.Millisecond,
	}
}

// Validate checks the configuration for usability.
func (c Config) Validate() error {
	switch {
	case c.NumNodes <= 0:
		return fmt.Errorf("machine: NumNodes must be positive, got %d", c.NumNodes)
	case c.NumFiles <= 0:
		return fmt.Errorf("machine: NumFiles must be positive, got %d", c.NumFiles)
	case c.DD <= 0 || c.DD > c.NumNodes:
		return fmt.Errorf("machine: DD must be in [1, NumNodes], got %d", c.DD)
	case c.ObjTime <= 0:
		return fmt.Errorf("machine: ObjTime must be positive, got %v", c.ObjTime)
	case c.Duration <= 0:
		return fmt.Errorf("machine: Duration must be positive, got %v", c.Duration)
	case c.ArrivalRate < 0:
		return fmt.Errorf("machine: ArrivalRate must be >= 0, got %g", c.ArrivalRate)
	case c.Warmup < 0 || c.Warmup >= c.Duration:
		return fmt.Errorf("machine: Warmup must be in [0, Duration), got %v", c.Warmup)
	case c.MsgTime < 0 || c.NetDelay < 0 || c.SOTTime < 0 || c.COTTime < 0:
		return fmt.Errorf("machine: negative CPU/network times")
	case c.MPL < 0:
		return fmt.Errorf("machine: MPL must be >= 0, got %d", c.MPL)
	case c.RestartDelay < 0:
		return fmt.Errorf("machine: RestartDelay must be >= 0, got %v", c.RestartDelay)
	case c.ParallelRun < 0:
		return fmt.Errorf("machine: ParallelRun must be >= 0, got %d", c.ParallelRun)
	case c.ParallelRun > 0 && c.QuantumStepped:
		return fmt.Errorf("machine: ParallelRun requires the fast-forward DPN engine (QuantumStepped must be off)")
	}
	if c.Service != nil {
		if err := c.Service.Validate(); err != nil {
			return err
		}
		if c.MPL != 0 {
			return fmt.Errorf("machine: service mode takes its window from Service.MPL; Config.MPL must be 0, got %d", c.MPL)
		}
		if c.Arrivals == nil && c.ArrivalRate <= 0 {
			return fmt.Errorf("machine: service mode needs an arrival process (Arrivals or ArrivalRate > 0)")
		}
	}
	return c.Faults.Validate()
}
