package machine

import (
	"batchsched/internal/metrics"
	"batchsched/internal/sim"
)

// cohort is one partition scan of a step executing at a data-processing
// node: remaining service demand plus the round-robin quantum (the time to
// scan 1/DD object).
type cohort struct {
	remaining sim.Time
	quantum   sim.Time
	done      func()
}

// dpn is a data-processing node: a single server that interleaves its
// resident cohorts in round-robin order with a fixed quantum, as in the
// paper's execution model ("a DPN executes cohorts in a round-robin manner;
// when DD = k, the unit of the round-robin service is to scan the data of
// size 1/k object").
type dpn struct {
	id   int
	eng  *sim.Engine
	met  *metrics.Collector
	ring []*cohort
	cur  int
	busy bool
}

func newDPN(id int, eng *sim.Engine, met *metrics.Collector) *dpn {
	return &dpn{id: id, eng: eng, met: met}
}

// add registers a cohort; service starts immediately if the node was idle.
// The new cohort joins the rotation behind the current position.
func (d *dpn) add(c *cohort) {
	if c.quantum <= 0 {
		panic("machine: cohort quantum must be positive")
	}
	d.ring = append(d.ring, c)
	if !d.busy {
		d.busy = true
		d.serve()
	}
}

// queueLen reports the number of resident cohorts.
func (d *dpn) queueLen() int { return len(d.ring) }

// serve runs one quantum (or the cohort's remainder) for the cohort at the
// rotation cursor, then advances.
func (d *dpn) serve() {
	if len(d.ring) == 0 {
		d.busy = false
		return
	}
	if d.cur >= len(d.ring) {
		d.cur = 0
	}
	c := d.ring[d.cur]
	slice := c.quantum
	if c.remaining < slice {
		slice = c.remaining
	}
	d.eng.Schedule(slice, func(sim.Time) {
		d.met.DPNBusy(d.id, slice)
		c.remaining -= slice
		if c.remaining <= 0 {
			d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
			if c.done != nil {
				c.done()
			}
		} else {
			d.cur++
		}
		d.serve()
	})
}
