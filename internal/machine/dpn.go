package machine

import (
	"fmt"

	"batchsched/internal/metrics"
	"batchsched/internal/obs"
	"batchsched/internal/sim"
)

// cohort is one partition scan of a step executing at a data-processing
// node: remaining service demand plus the round-robin quantum (the time to
// scan 1/DD object).
type cohort struct {
	remaining sim.Time
	quantum   sim.Time
	// done, when set, is called on completion (tests and custom drivers);
	// machine-owned cohorts leave it nil and complete through dpn.complete.
	done func()
	// run ties the cohort back to its step dispatch so a node crash can
	// abort the owning transaction; nil in tests.
	run *stepRun
	// node is the DPN the cohort is addressed to (used by the delivery
	// event); nil in tests that call dpn.add directly.
	node *dpn
	// dead marks a cohort whose transaction aborted (crash on a sibling
	// node, or step retry); the serving node drops it without calling done.
	dead bool
	// span is the cohort's residency span ("cohort", cat "io") when
	// observability is enabled; 0 otherwise.
	span obs.SpanID
}

// dpn is a data-processing node: a single server that interleaves its
// resident cohorts in round-robin order with a fixed quantum, as in the
// paper's execution model ("a DPN executes cohorts in a round-robin manner;
// when DD = k, the unit of the round-robin service is to scan the data of
// size 1/k object").
//
// Two service engines implement that discipline with identical semantics:
//
//   - the fast-forward engine (dpn_ff.go, the default) schedules one
//     calendar event per cohort completion and reconstructs the ring state
//     analytically whenever anything looks at or perturbs the node;
//   - the quantum-stepped engine (dpn_stepped.go, Config.QuantumStepped)
//     schedules one event per service quantum — the original loop, kept as
//     the differential oracle.
type dpn struct {
	id   int
	eng  *sim.Engine
	met  *metrics.Collector
	ring []*cohort
	cur  int
	busy bool

	// stepped selects the quantum-per-event oracle engine.
	stepped bool

	// down marks a crashed node; the machine refuses deliveries to it.
	down bool
	// slow is the straggler service-time multiplier (0 or 1 = nominal).
	slow float64
	// pending is the in-progress quantum's completion event (stepped
	// engine), kept so a crash can cancel it.
	pending *sim.Event

	// complete receives cohorts that finish with a nil done callback (set by
	// the machine). curSlice/curElapsed describe the stepped quantum in
	// progress; onQuantum is its pre-bound completion handler — the node is
	// a single server, so exactly one quantum is outstanding and per-quantum
	// state can live on the node instead of in a per-event closure.
	complete   func(*cohort)
	curSlice   sim.Time
	curElapsed sim.Time
	onQuantum  sim.Handler

	// Fast-forward state: the one service conceptually under way. Every
	// earlier service boundary has been applied to the ring; svcStart,
	// svcEnd, svcSlice and svcElapsed describe the in-flight service of
	// ring[cur] exactly as the stepped engine would have booked it.
	svcStart   sim.Time
	svcEnd     sim.Time
	svcSlice   sim.Time
	svcElapsed sim.Time
	// ffEvent is the single scheduled ring-change (next completion) event;
	// ffAt/ffPrio/ffTie cache its slot so an unchanged forecast keeps the
	// booking (and with it the FIFO tie position) instead of
	// cancel-and-rebooking.
	ffAt    sim.Time
	ffPrio  sim.Time
	ffTie   sim.TieKey
	ffEvent *sim.Event
	onRing  sim.Handler
	// anchor/anchorPre/anchorStamp identify the node's most recent irregular
	// service boundary — one whose elapsed time was not a full quantum (a
	// short final or dying slice), or the delivery that started the current
	// busy period. They parameterize the completion event's TieKey: the
	// stepped engine's booking chain is regular (full-quantum spaced) back to
	// exactly this boundary, so equal-(at, prio) completions on different
	// nodes resolve their calendar order the way the stepped chain bookings
	// would have.
	anchor      sim.Time
	anchorPre   sim.Time
	anchorStamp uint64
	// Forecast scratch (reused across calls to keep the hot path
	// allocation-free): post-round-one remainders, quanta and full-quantum
	// elapsed times of the surviving cohorts, in service order.
	fcRem []sim.Time
	fcQ   []sim.Time
	fcE   []sim.Time

	// Sharded-PDES state (Config.ParallelRun; see parallel.go and DESIGN.md
	// §13). sharded routes the completion booking to the node's sub-calendar.
	// During a safe wave, inWave redirects stamp() to waveIdx — the dispatch
	// index this member will hold once committed — so tie-key stamps taken in
	// the concurrent prepare phase equal the values sequential dispatch would
	// have produced. wavePrepare leaves the member's deferred completion in
	// waveDone and its precomputed next booking in pOK/pAt/pPrio/pTie;
	// waveCommit (the ringChange fast path) replays both in exact order.
	sharded      bool
	inWave       bool
	wavePrepared bool
	waveIdx      uint64
	waveDone     []*cohort
	pOK          bool
	pAt          sim.Time
	pPrio        sim.Time
	pTie         sim.TieKey

	// ob records cohort residency spans when observability is enabled.
	ob *obs.Observer
}

func newDPN(id int, eng *sim.Engine, met *metrics.Collector) *dpn {
	d := &dpn{id: id, eng: eng, met: met}
	d.onQuantum = d.quantumDone
	d.onRing = d.ringChange
	return d
}

// add registers a cohort; service starts immediately if the node was idle.
// The new cohort joins the rotation behind the current position.
func (d *dpn) add(c *cohort) {
	if c.quantum <= 0 {
		panic("machine: cohort quantum must be positive")
	}
	if d.down {
		panic("machine: cohort delivered to a down node")
	}
	d.sync()
	if d.ob.Enabled() && c.run != nil {
		t := c.run.e.txn
		c.span = d.ob.Begin("cohort", "io", t.ID, d.id, t.StepIndex,
			c.run.e.stepSpan, d.eng.Now())
	}
	d.ring = append(d.ring, c)
	if d.stepped {
		if !d.busy {
			d.busy = true
			d.serve()
		}
		return
	}
	if !d.busy {
		// The stepped engine's first quantum of a busy period is booked by
		// this very delivery event: the booking chain starts here.
		d.anchor = d.eng.Now()
		d.anchorPre = d.eng.CurPrio()
		d.anchorStamp = d.stamp()
		d.startService(d.eng.Now())
	}
	d.reschedule()
}

// queueLen reports the number of resident cohorts at the current virtual
// time (bringing the fast-forward ring up to date first, so load probes and
// gauges see exactly what the stepped engine would have).
func (d *dpn) queueLen() int {
	d.sync()
	return len(d.ring)
}

// sync replays onto the ring every service boundary the stepped engine
// would have applied before the event currently being dispatched. All
// boundaries strictly before now qualify; a boundary landing exactly on the
// current instant qualifies iff the stepped quantum event standing for it —
// timestamp now, priority svcStart (its booking time) — sorts before the
// running event's (now, CurPrio) calendar key. Without the priority test a
// cohort delivered exactly on a quantum boundary would join the rotation
// ahead of the incumbent the stepped engine had already rotated past.
func (d *dpn) sync() {
	if d.stepped {
		return
	}
	now := d.eng.Now()
	d.advanceTo(now)
	prio := d.eng.CurPrio()
	for d.busy && d.svcEnd == now && d.svcStart < prio {
		if c := d.ring[d.cur]; !c.dead && c.remaining <= d.svcSlice {
			// A completion here would mean the (now, svcStart) completion
			// event is on the calendar and the engine dispatched the later
			// (now, prio) event first — impossible.
			panic(fmt.Sprintf("machine: dpn %d sync crossed a completion at %v", d.id, now))
		}
		d.applyBoundary()
	}
}

// crash takes the node down: the in-progress service is cancelled and every
// resident cohort is lost. The killed cohorts are returned so the machine
// can abort the transactions that owned them. sync decides whether a
// boundary falling exactly on the crash instant is applied the same way the
// stepped calendar would have ordered the colliding quantum event against
// the crash event; the quantum the crash interrupts is never charged.
func (d *dpn) crash() []*cohort {
	d.sync()
	d.down = true
	if d.pending != nil {
		d.pending.Cancel()
		d.pending = nil
	}
	if d.ffEvent != nil {
		d.ffEvent.Cancel()
		d.ffEvent = nil
	}
	killed := d.ring
	for _, c := range killed {
		d.ob.End(c.span, d.eng.Now())
	}
	d.ring = nil
	d.cur = 0
	d.busy = false
	return killed
}

// restore brings a crashed node back, empty and ready to serve.
func (d *dpn) restore() { d.down = false }

// setSlow applies (factor > 1) or clears (factor <= 1) the straggler
// multiplier. It affects services scheduled from now on; the one in
// progress finishes at its booked speed.
func (d *dpn) setSlow(factor float64) {
	d.sync()
	d.slow = factor
	if !d.stepped && d.busy {
		d.reschedule()
	}
}

// deadMarked tells the node a resident cohort's dead flag was just set (the
// owning transaction aborted on another node or timed out). The stepped
// engine discovers dead cohorts at quantum boundaries on its own; the
// fast-forward engine must re-derive its completion forecast, since the
// dead cohort will now drop out of the rotation without consuming service.
//
// Contract: callers must sync() the node BEFORE setting any dead flag (as
// killCohorts does). The dead flag is read by the lazy boundary replay, so a
// flag raised before the replay catches up would drop the cohort from
// boundaries in the past — quanta the stepped engine served while the
// cohort was still live.
func (d *dpn) deadMarked() {
	if d.stepped || !d.busy {
		return
	}
	d.sync()
	// reschedule also handles the ring having drained during the replay
	// (the mark left only dead cohorts): it cancels the stale booking.
	d.reschedule()
}

// dropDeadAt removes the run of dead cohorts at the rotation cursor,
// closing their residency spans at virtual time t. Consecutive dead
// cohorts are spliced out in one copy (wrapping costs a second), instead
// of one O(ring) splice per corpse.
func (d *dpn) dropDeadAt(t sim.Time) {
	for len(d.ring) > 0 {
		if d.cur >= len(d.ring) {
			d.cur = 0
		}
		j := d.cur
		for j < len(d.ring) && d.ring[j].dead {
			d.ob.End(d.ring[j].span, t)
			j++
		}
		if j == d.cur {
			return
		}
		d.ring = append(d.ring[:d.cur], d.ring[j:]...)
	}
}

// slowRound is the elapsed wall time of serving slice under the current
// straggler multiplier, rounded exactly as the stepped engine rounds each
// booked quantum.
func (d *dpn) slowRound(slice sim.Time) sim.Time {
	if d.slow > 1 {
		return sim.Time(float64(slice) * d.slow)
	}
	return slice
}
