package machine

import (
	"batchsched/internal/metrics"
	"batchsched/internal/obs"
	"batchsched/internal/sim"
)

// cohort is one partition scan of a step executing at a data-processing
// node: remaining service demand plus the round-robin quantum (the time to
// scan 1/DD object).
type cohort struct {
	remaining sim.Time
	quantum   sim.Time
	// done, when set, is called on completion (tests and custom drivers);
	// machine-owned cohorts leave it nil and complete through dpn.complete.
	done func()
	// run ties the cohort back to its step dispatch so a node crash can
	// abort the owning transaction; nil in tests.
	run *stepRun
	// node is the DPN the cohort is addressed to (used by the delivery
	// event); nil in tests that call dpn.add directly.
	node *dpn
	// dead marks a cohort whose transaction aborted (crash on a sibling
	// node, or step retry); the serving node drops it without calling done.
	dead bool
	// span is the cohort's residency span ("cohort", cat "io") when
	// observability is enabled; 0 otherwise.
	span obs.SpanID
}

// dpn is a data-processing node: a single server that interleaves its
// resident cohorts in round-robin order with a fixed quantum, as in the
// paper's execution model ("a DPN executes cohorts in a round-robin manner;
// when DD = k, the unit of the round-robin service is to scan the data of
// size 1/k object").
type dpn struct {
	id   int
	eng  *sim.Engine
	met  *metrics.Collector
	ring []*cohort
	cur  int
	busy bool

	// down marks a crashed node; the machine refuses deliveries to it.
	down bool
	// slow is the straggler service-time multiplier (0 or 1 = nominal).
	slow float64
	// pending is the in-progress quantum's completion event, kept so a
	// crash can cancel it.
	pending *sim.Event

	// complete receives cohorts that finish with a nil done callback (set by
	// the machine). curSlice/curElapsed describe the quantum in progress;
	// onQuantum is the pre-bound completion handler — the node is a single
	// server, so exactly one quantum is outstanding and per-quantum state
	// can live on the node instead of in a per-event closure.
	complete   func(*cohort)
	curSlice   sim.Time
	curElapsed sim.Time
	onQuantum  sim.Handler

	// ob records cohort residency spans when observability is enabled.
	ob *obs.Observer
}

func newDPN(id int, eng *sim.Engine, met *metrics.Collector) *dpn {
	d := &dpn{id: id, eng: eng, met: met}
	d.onQuantum = func(now sim.Time) {
		d.pending = nil
		d.met.DPNBusy(d.id, d.curElapsed)
		c := d.ring[d.cur]
		if c.dead {
			d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
			d.ob.End(c.span, now)
			d.serve()
			return
		}
		c.remaining -= d.curSlice
		if c.remaining <= 0 {
			d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
			d.ob.End(c.span, now)
			if c.done != nil {
				c.done()
			} else if d.complete != nil {
				d.complete(c)
			}
		} else {
			d.cur++
		}
		d.serve()
	}
	return d
}

// add registers a cohort; service starts immediately if the node was idle.
// The new cohort joins the rotation behind the current position.
func (d *dpn) add(c *cohort) {
	if c.quantum <= 0 {
		panic("machine: cohort quantum must be positive")
	}
	if d.down {
		panic("machine: cohort delivered to a down node")
	}
	if d.ob.Enabled() && c.run != nil {
		t := c.run.e.txn
		c.span = d.ob.Begin("cohort", "io", t.ID, d.id, t.StepIndex,
			c.run.e.stepSpan, d.eng.Now())
	}
	d.ring = append(d.ring, c)
	if !d.busy {
		d.busy = true
		d.serve()
	}
}

// queueLen reports the number of resident cohorts.
func (d *dpn) queueLen() int { return len(d.ring) }

// crash takes the node down: the in-progress quantum is cancelled and every
// resident cohort is lost. The killed cohorts are returned so the machine
// can abort the transactions that owned them.
func (d *dpn) crash() []*cohort {
	d.down = true
	if d.pending != nil {
		d.pending.Cancel()
		d.pending = nil
	}
	killed := d.ring
	for _, c := range killed {
		d.ob.End(c.span, d.eng.Now())
	}
	d.ring = nil
	d.cur = 0
	d.busy = false
	return killed
}

// restore brings a crashed node back, empty and ready to serve.
func (d *dpn) restore() { d.down = false }

// setSlow applies (factor > 1) or clears (factor <= 1) the straggler
// multiplier. It affects quanta scheduled from now on; the one in progress
// finishes at its booked speed.
func (d *dpn) setSlow(factor float64) { d.slow = factor }

// serve runs one quantum (or the cohort's remainder) for the cohort at the
// rotation cursor, then advances. Dead cohorts at the cursor are dropped;
// a quantum already under way for a cohort that dies mid-slice completes
// (the work is wasted) and the cohort is then dropped.
func (d *dpn) serve() {
	for len(d.ring) > 0 {
		if d.cur >= len(d.ring) {
			d.cur = 0
		}
		if !d.ring[d.cur].dead {
			break
		}
		d.ob.End(d.ring[d.cur].span, d.eng.Now())
		d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
	}
	if len(d.ring) == 0 {
		d.busy = false
		return
	}
	c := d.ring[d.cur]
	slice := c.quantum
	if c.remaining < slice {
		slice = c.remaining
	}
	elapsed := slice
	if d.slow > 1 {
		elapsed = sim.Time(float64(slice) * d.slow)
	}
	// The cohort under service stays at d.cur until the quantum completes:
	// arrivals append behind it and nothing else advances the cursor, so the
	// handler re-reads it from the ring.
	d.curSlice = slice
	d.curElapsed = elapsed
	d.pending = d.eng.Schedule(elapsed, d.onQuantum)
}
