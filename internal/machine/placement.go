package machine

import "batchsched/internal/engine"

// Placement maps files to data-processing nodes. An alias of
// engine.Placement — the mapping is shared by every backend so a workload
// lands on the same nodes under simulation and live execution.
type Placement = engine.Placement
