package machine

import (
	"batchsched/internal/metrics"
	"batchsched/internal/obs"
	"batchsched/internal/sim"
)

// cnOp names a control-node job body; cnContOp names its continuation. The
// bodies and continuations live as Machine methods (cnBody, cnFinish), so a
// queued job is a small value instead of a pair of heap-allocated closures —
// the CN runs one job per scheduler decision and per message, which makes
// this the hottest allocation site of a run.
type cnOp uint8

const (
	opClosure  cnOp = iota // job.fn carries the body (tests, rare paths)
	opAdmit                // admission test for job.e
	opRequest              // lock request for job.e's current step
	opDispatch             // CN send of job.e's granted step (job.attempt)
	opStepDone             // CN receive of job.run's completion
	opCommit               // validation + commitment of job.e
)

// cnOpNames label the CN job spans of the observability layer, indexed by
// cnOp (precomputed so tracing allocates no strings per job).
var cnOpNames = [...]string{
	opClosure:  "cn:closure",
	opAdmit:    "cn:admit",
	opRequest:  "cn:request",
	opDispatch: "cn:dispatch",
	opStepDone: "cn:step-done",
	opCommit:   "cn:commit",
}

type cnContOp uint8

const (
	contNone     cnContOp = iota
	contClosure           // cont.fn carries the continuation
	contPark              // admission failed: park job.e
	contStart             // admitted: proceed to the first step
	contExec              // granted: execute the step
	contBlock             // blocked: wait on the step file's release
	contDelay             // policy-delayed: wait for a wake-up
	contAbort             // deadlock victim: roll back and restart
	contDispatch          // send done: place the step's cohorts
	contStepDone          // receive done: advance to the next step
	contCommitOK
	contCommitFail
)

// cnJob is one unit of control-node work: either an op code with its
// operands (dispatched through Machine.cnBody), or — for tests and generic
// callers — a closure body returning the CPU time the decision consumed and
// a continuation to run when that CPU time has elapsed (nil for none).
type cnJob struct {
	op      cnOp
	fn      func() (sim.Time, func())
	e       *exec
	run     *stepRun
	attempt int
}

// cnCont is a job body's continuation, run after the decision's CPU time.
type cnCont struct {
	op      cnContOp
	fn      func()
	e       *exec
	run     *stepRun
	attempt int
}

// controlNode is the single FCFS CPU of the control node: scheduler
// decisions, startup/commit coordination and message handling all queue
// here. Job bodies run at service start (that is when the decision is
// made); their continuations run after the decision's CPU time.
type controlNode struct {
	eng  *sim.Engine
	met  *metrics.Collector
	m    *Machine // body/continuation dispatcher; nil in CN-only tests
	busy bool
	q    []cnJob
	head int

	// In-flight job state. The CN is a single serial server, so at most one
	// completion is outstanding; onDone is bound once so finishing a job
	// schedules no fresh closure.
	curCPU  sim.Time
	curCont cnCont
	onDone  sim.Handler

	// ob records one span per job service when observability is enabled
	// (nil Observer = disabled, zero cost); curSpan is the in-flight job's.
	ob      *obs.Observer
	curSpan obs.SpanID
}

func newControlNode(eng *sim.Engine, met *metrics.Collector) *controlNode {
	c := &controlNode{eng: eng, met: met}
	c.onDone = func(now sim.Time) {
		c.met.CNBusy(c.curCPU)
		c.ob.End(c.curSpan, now)
		cont := c.curCont
		c.curCont = cnCont{}
		switch cont.op {
		case contNone:
		case contClosure:
			cont.fn()
		default:
			c.m.cnFinish(cont)
		}
		c.next()
	}
	return c
}

// submit enqueues a job; the CPU starts it as soon as it is free.
func (c *controlNode) submit(job cnJob) {
	c.q = append(c.q, job)
	if !c.busy {
		c.busy = true
		c.next()
	}
}

// queueLen reports the number of jobs waiting (excluding the one running).
func (c *controlNode) queueLen() int { return len(c.q) - c.head }

func (c *controlNode) next() {
	if c.head == len(c.q) {
		c.q = c.q[:0]
		c.head = 0
		c.busy = false
		return
	}
	job := c.q[c.head]
	c.q[c.head] = cnJob{}
	c.head++
	// Reclaim drained prefix occasionally to bound memory.
	if c.head > 1024 && c.head*2 > len(c.q) {
		c.q = append(c.q[:0], c.q[c.head:]...)
		c.head = 0
	}
	if c.ob.Enabled() {
		var txn int64
		if job.e != nil {
			txn = job.e.txn.ID
		}
		c.curSpan = c.ob.Begin(cnOpNames[job.op], "cn", txn, -1, -1, 0, c.eng.Now())
	}
	var cpu sim.Time
	var cont cnCont
	if job.op == opClosure {
		var done func()
		cpu, done = job.fn()
		if done != nil {
			cont = cnCont{op: contClosure, fn: done}
		}
	} else {
		cpu, cont = c.m.cnBody(job)
	}
	if cpu < 0 {
		panic("machine: negative CN CPU time")
	}
	c.curCPU = cpu
	c.curCont = cont
	c.eng.Schedule(cpu, c.onDone)
}
