package machine

import (
	"batchsched/internal/metrics"
	"batchsched/internal/sim"
)

// cnJob is one unit of control-node work. It runs when the CPU picks it up,
// returns the CPU time the decision consumed, and a continuation to run
// when that CPU time has elapsed (nil for none).
type cnJob func() (cpu sim.Time, done func())

// controlNode is the single FCFS CPU of the control node: scheduler
// decisions, startup/commit coordination and message handling all queue
// here. Job bodies run at service start (that is when the decision is
// made); their continuations run after the decision's CPU time.
type controlNode struct {
	eng  *sim.Engine
	met  *metrics.Collector
	busy bool
	q    []cnJob
	head int
}

func newControlNode(eng *sim.Engine, met *metrics.Collector) *controlNode {
	return &controlNode{eng: eng, met: met}
}

// submit enqueues a job; the CPU starts it as soon as it is free.
func (c *controlNode) submit(job cnJob) {
	c.q = append(c.q, job)
	if !c.busy {
		c.busy = true
		c.next()
	}
}

// queueLen reports the number of jobs waiting (excluding the one running).
func (c *controlNode) queueLen() int { return len(c.q) - c.head }

func (c *controlNode) next() {
	if c.head == len(c.q) {
		c.q = c.q[:0]
		c.head = 0
		c.busy = false
		return
	}
	job := c.q[c.head]
	c.q[c.head] = nil
	c.head++
	// Reclaim drained prefix occasionally to bound memory.
	if c.head > 1024 && c.head*2 > len(c.q) {
		c.q = append(c.q[:0], c.q[c.head:]...)
		c.head = 0
	}
	cpu, done := job()
	if cpu < 0 {
		panic("machine: negative CN CPU time")
	}
	c.eng.Schedule(cpu, func(sim.Time) {
		c.met.CNBusy(cpu)
		if done != nil {
			done()
		}
		c.next()
	})
}
