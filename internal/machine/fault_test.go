package machine

import (
	"bytes"
	"reflect"
	"testing"

	"batchsched/internal/fault"
	"batchsched/internal/model"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/trace"
	"batchsched/internal/workload"
)

// faultyConfig is a one-node machine so every injected crash/straggler is
// guaranteed to hit the node serving the workload.
func faultyConfig() Config {
	cfg := DefaultConfig()
	cfg.NumNodes = 1
	cfg.NumFiles = 1
	cfg.ArrivalRate = 0
	cfg.Duration = 600_000 * sim.Millisecond
	return cfg
}

// TestCrashAbortsAndRecovers: a 30s scan on a node with a 60s MTBF is killed
// by crashes but must eventually commit once it catches a clean window, with
// every fault counter and the availability integral reflecting the outages.
func TestCrashAbortsAndRecovers(t *testing.T) {
	cfg := faultyConfig()
	cfg.Faults = fault.Config{MTBF: 60 * sim.Second, MTTR: 5 * sim.Second}
	cfg.RestartDelay = 2 * sim.Second
	m := newMachine(t, cfg, "LOW")
	txn := m.Submit(steps("w(A:30)", map[string]model.FileID{"A": 0}))
	sum := m.Run()
	if sum.Crashes == 0 {
		t.Fatal("no crashes injected in 600s at MTBF 60s — injector not running")
	}
	if sum.Completions != 1 || txn.Status != model.Committed {
		t.Fatalf("completions = %d, status = %v: crash victim never recovered", sum.Completions, txn.Status)
	}
	if sum.CrashAborts == 0 || sum.Restarts < sum.CrashAborts {
		t.Errorf("crashAborts = %d, restarts = %d: aborts must be counted as restarts", sum.CrashAborts, sum.Restarts)
	}
	if sum.DownTime <= 0 {
		t.Error("DownTime must integrate the outages")
	}
	if a := sum.Availability(); a >= 1 || a <= 0 {
		t.Errorf("availability = %v, want in (0, 1) with crashes present", a)
	}
}

// TestCrashScheduleIsWorkloadIndependent: the fault schedule (crash, restore,
// slow, slowend transitions) must depend only on (seed, fault config) — never
// on the scheduler under test or the offered load — so that Exp4 compares all
// schedulers against the identical fault trace.
func TestCrashScheduleIsWorkloadIndependent(t *testing.T) {
	fc := fault.Config{
		MTBF: 80 * sim.Second, MTTR: 6 * sim.Second,
		StragglerMTBF: 120 * sim.Second, StragglerDuration: 15 * sim.Second, StragglerFactor: 3,
	}
	schedule := func(schedName string, lambda float64) []faultTransition {
		cfg := DefaultConfig()
		cfg.ArrivalRate = lambda
		cfg.Duration = 500_000 * sim.Millisecond
		cfg.RestartDelay = 2 * sim.Second
		cfg.Faults = fc
		m, err := New(cfg, sched.MustNew(schedName, sched.DefaultParams()), workload.NewExp1(cfg.NumFiles), sim.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		obs := &faultObs{}
		m.SetObserver(obs)
		m.Run()
		return obs.transitions
	}
	ref := schedule("LOW", 0.6)
	if len(ref) == 0 {
		t.Fatal("no fault transitions recorded")
	}
	for _, v := range []struct {
		sched  string
		lambda float64
	}{{"C2PL", 0.6}, {"ASL", 0.2}, {"NODC", 1.0}} {
		if got := schedule(v.sched, v.lambda); !reflect.DeepEqual(got, ref) {
			t.Errorf("%s at λ=%g saw a different fault schedule than LOW at λ=0.6:\n got %v\nwant %v",
				v.sched, v.lambda, got, ref)
		}
	}
}

// faultTransition is one machine-level fault event, as seen by an observer.
type faultTransition struct {
	kind string
	node int
	at   sim.Time
}

// faultObs records fault transitions (and satisfies Observer with no-ops).
type faultObs struct {
	transitions []faultTransition
}

func (o *faultObs) StepDone(*model.Txn, int, sim.Time)      {}
func (o *faultObs) Committed(*model.Txn, sim.Time)          {}
func (o *faultObs) Restarted(*model.Txn, sim.Time)          {}
func (o *faultObs) AbortedTxn(*model.Txn, string, sim.Time) {}
func (o *faultObs) Retried(*model.Txn, int, sim.Time)       {}
func (o *faultObs) Fault(kind string, node int, at sim.Time) {
	if kind == "msgloss" {
		return // loss is per-message and so necessarily workload-dependent
	}
	o.transitions = append(o.transitions, faultTransition{kind, node, at})
}

// TestStragglerStretchesServiceTime: the same burst takes strictly longer
// through a machine whose single node keeps entering 5x-slow windows.
func TestStragglerStretchesServiceTime(t *testing.T) {
	run := func(withStraggler bool) (sim.Time, int, sim.Time) {
		cfg := faultyConfig()
		if withStraggler {
			cfg.Faults = fault.Config{StragglerMTBF: 30 * sim.Second, StragglerDuration: 20 * sim.Second, StragglerFactor: 5}
		}
		m := newMachine(t, cfg, "LOW")
		for i := 0; i < 10; i++ {
			m.Submit(steps("w(A:5)", map[string]model.FileID{"A": 0}))
		}
		sum := m.Run()
		if sum.Completions != 10 {
			t.Fatalf("completions = %d, want 10", sum.Completions)
		}
		return sum.MeanRT, sum.StragglerEpisodes, sum.DegradedTime
	}
	clean, _, _ := run(false)
	slow, episodes, degraded := run(true)
	if episodes == 0 || degraded <= 0 {
		t.Fatalf("episodes = %d, degraded = %v: straggler process not running", episodes, degraded)
	}
	if slow <= clean {
		t.Errorf("mean RT with stragglers %v must exceed the clean run's %v", slow, clean)
	}
}

// TestMsgLossRetriesThenAborts: with a zero retry budget every lost dispatch
// costs the transaction; with a generous budget retries absorb the losses and
// everything commits.
func TestMsgLossRetriesThenAborts(t *testing.T) {
	run := func(retries int) Summary2 {
		cfg := faultyConfig()
		cfg.Faults = fault.Config{MsgLoss: 0.4, MsgTimeout: 2 * sim.Second, MsgRetries: retries}
		m := newMachine(t, cfg, "LOW")
		for i := 0; i < 12; i++ {
			m.Submit(steps("w(A:2)", map[string]model.FileID{"A": 0}))
		}
		sum := m.Run()
		return Summary2{sum.Completions, sum.MsgLost, sum.MsgRetries, sum.MsgAborts}
	}
	strict := run(0)
	if strict.lost == 0 {
		t.Fatal("no messages lost at p=0.4 — loss draw not wired")
	}
	if strict.aborts == 0 || strict.retries != 0 {
		t.Errorf("retries=0 run: aborts = %d (want > 0), retries = %d (want 0)", strict.aborts, strict.retries)
	}
	lax := run(10)
	if lax.retries == 0 {
		t.Error("retry budget 10 never retried despite p=0.4 loss")
	}
	if lax.aborts != 0 || lax.completions != 12 {
		t.Errorf("retry budget 10: aborts = %d, completions = %d, want 0 and 12", lax.aborts, lax.completions)
	}
}

// Summary2 is the slice of Summary the message-loss test compares.
type Summary2 struct {
	completions, lost, retries, aborts int
}

// TestFaultRunIsDeterministic: identical seed and fault config must produce a
// byte-identical execution trace and a deeply equal summary across runs.
func TestFaultRunIsDeterministic(t *testing.T) {
	run := func() (interface{}, *bytes.Buffer) {
		cfg := DefaultConfig()
		cfg.ArrivalRate = 0.6
		cfg.Duration = 300_000 * sim.Millisecond
		cfg.RestartDelay = 2 * sim.Second
		cfg.Faults = fault.Config{
			MTBF: 80 * sim.Second, MTTR: 5 * sim.Second,
			StragglerMTBF: 150 * sim.Second, StragglerDuration: 10 * sim.Second, StragglerFactor: 3,
			MsgLoss: 0.03, MsgTimeout: 5 * sim.Second, MsgRetries: 2,
		}
		m, err := New(cfg, sched.MustNew("LOW", sched.DefaultParams()), workload.NewExp1(cfg.NumFiles), sim.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		m.SetObserver(tw)
		sum := m.Run()
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		return sum, &buf
	}
	a, ta := run()
	b, tb := run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("summaries differ across identical runs:\n%+v\n%+v", a, b)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Error("traces differ across identical fault runs — fault schedule is not seed-deterministic")
	}
	if !bytes.Contains(ta.Bytes(), []byte(`"fault"`)) || !bytes.Contains(ta.Bytes(), []byte(`"abort"`)) {
		t.Error("trace of a faulty run must contain fault and abort events")
	}
}

// TestZeroFaultsSkipInjector: the zero fault config must not even build an
// injector, guaranteeing the failure-free event sequence (and RNG stream
// usage) is untouched.
func TestZeroFaultsSkipInjector(t *testing.T) {
	m := newMachine(t, quietConfig(1), "LOW")
	if m.inj != nil {
		t.Fatal("injector built despite zero fault config")
	}
	cfg := quietConfig(1)
	cfg.Faults = fault.Config{MTBF: 50 * sim.Second, MTTR: 5 * sim.Second}
	m2 := newMachine(t, cfg, "LOW")
	if m2.inj == nil {
		t.Fatal("injector missing despite MTBF set")
	}
}
