package machine

import (
	"math"
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

// singleFileGen emits one-step transactions of fixed cost on one file.
type singleFileGen struct {
	cost float64
}

func (g singleFileGen) Steps(*sim.RNG) []model.Step {
	return []model.Step{{File: 0, Write: false, LockMode: model.S,
		Cost: g.cost, DeclaredCost: g.cost}}
}

// TestMD1AgainstClosedForm validates the machine's queueing behaviour
// against textbook theory. One node, Poisson arrivals of deterministic
// 1-object jobs under NODC with S locks: because the round-robin quantum (1
// object) covers the whole job, the node serves FCFS and behaves as an
// M/D/1 queue. Pollaczek-Khinchine gives
//
//	E[T] = S + ρS / (2(1-ρ))
//
// plus the constant control-node overheads (sot 2 + 2 msgs 4 + cot 7 =
// 13 ms). The simulated mean must match within a few percent.
func TestMD1AgainstClosedForm(t *testing.T) {
	const service = 1.0 // seconds (1 object)
	for _, lambda := range []float64{0.3, 0.5, 0.7} {
		cfg := DefaultConfig()
		cfg.NumNodes = 1
		cfg.NumFiles = 1
		cfg.ArrivalRate = lambda
		cfg.Duration = 4_000_000 * sim.Millisecond // long run for tight stats
		cfg.Warmup = 200_000 * sim.Millisecond
		m, err := New(cfg, sched.MustNew("NODC", sched.DefaultParams()), singleFileGen{cost: service}, sim.NewRNG(21))
		if err != nil {
			t.Fatal(err)
		}
		sum := m.Run()
		rho := lambda * service
		want := service + rho*service/(2*(1-rho)) + 0.013
		got := sum.MeanRT.Seconds()
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("λ=%.1f: mean RT = %.3fs, M/D/1 predicts %.3fs", lambda, got, want)
		}
	}
}

// TestRoundRobinBetweenFCFSAndPS validates the round-robin discipline's
// position in queueing theory: for M/D/1 with a finite quantum (here 10
// quanta per job), the mean sojourn of round-robin must lie strictly
// between the FCFS value S + ρS/(2(1-ρ)) and the processor-sharing limit
// S/(1-ρ) (which RR approaches as the quantum shrinks).
func TestRoundRobinBetweenFCFSAndPS(t *testing.T) {
	const service = 10.0 // seconds = 10 round-robin quanta
	lambda := 0.06       // ρ = 0.6
	cfg := DefaultConfig()
	cfg.NumNodes = 1
	cfg.NumFiles = 1
	cfg.ArrivalRate = lambda
	cfg.Duration = 6_000_000 * sim.Millisecond
	cfg.Warmup = 300_000 * sim.Millisecond
	m, err := New(cfg, sched.MustNew("NODC", sched.DefaultParams()), singleFileGen{cost: service}, sim.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	sum := m.Run()
	rho := lambda * service
	fcfs := service + rho*service/(2*(1-rho)) // 17.5 s
	ps := service / (1 - rho)                 // 25 s
	got := sum.MeanRT.Seconds()
	if got < fcfs || got > ps {
		t.Errorf("mean RT = %.2fs, want within (FCFS %.1fs, PS %.1fs)", got, fcfs, ps)
	}
}
