package machine

import "batchsched/internal/sim"

// The quantum-stepped service engine: one calendar event per round-robin
// service quantum. This is the original DPN loop, kept behind
// Config.QuantumStepped as the differential oracle for the fast-forward
// engine (dpn_ff.go) — the two must produce byte-identical completion
// times, busy accounting and event ordering.

// quantumDone (pre-bound as d.onQuantum) fires when the quantum in progress
// completes: charge its busy time, apply it to the cohort at the cursor,
// and serve the next.
func (d *dpn) quantumDone(now sim.Time) {
	d.pending = nil
	d.met.DPNBusy(d.id, d.curElapsed)
	c := d.ring[d.cur]
	if c.dead {
		d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
		d.ob.End(c.span, now)
		d.serve()
		return
	}
	c.remaining -= d.curSlice
	if c.remaining <= 0 {
		d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
		d.ob.End(c.span, now)
		if c.done != nil {
			c.done()
		} else if d.complete != nil {
			d.complete(c)
		}
	} else {
		d.cur++
	}
	d.serve()
}

// serve runs one quantum (or the cohort's remainder) for the cohort at the
// rotation cursor, then advances. Dead cohorts at the cursor are dropped;
// a quantum already under way for a cohort that dies mid-slice completes
// (the work is wasted) and the cohort is then dropped.
func (d *dpn) serve() {
	d.dropDeadAt(d.eng.Now())
	if len(d.ring) == 0 {
		d.busy = false
		return
	}
	c := d.ring[d.cur]
	slice := c.quantum
	if c.remaining < slice {
		slice = c.remaining
	}
	// The cohort under service stays at d.cur until the quantum completes:
	// arrivals append behind it and nothing else advances the cursor, so the
	// handler re-reads it from the ring.
	d.curSlice = slice
	d.curElapsed = d.slowRound(slice)
	d.pending = d.eng.Schedule(d.curElapsed, d.onQuantum)
}
