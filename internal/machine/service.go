package machine

import (
	"sort"

	"batchsched/internal/admit"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

// Service mode (Config.Service): the machine runs as an open system behind
// the streaming-admission subsystem. Arrivals are classed and offered to the
// admit.Service queue instead of going straight to the scheduler; an epoch
// event expires overdue work, recomputes overload control, optionally evicts
// one blocked batch transaction, and batch-admits queued arrivals into the
// policy's in-flight window. Completions free window slots but fresh
// admissions wait for the next epoch boundary (epoch-batched admission, as
// in DGCC-style batch construction); only scheduler-refused admissions that
// already left the queue are retried immediately via the closed-path admitQ.
//
// Shed and evicted transactions never complete, so service runs are always
// duration-bounded (Run), never drained with RunClosed.

// svcArrive offers one arrival to the admission queue, shedding whatever the
// policy turns away.
func (m *Machine) svcArrive(e *exec) {
	now := m.eng.Now()
	e.class = m.svc.Policy().PickClass(m.classRNG)
	e.phase = phQueued
	it := &admit.Item{ID: e.txn.ID, Class: e.class, Arrived: now, Payload: e}
	sheds, _ := m.svc.Arrive(it)
	for _, sh := range sheds {
		m.shedExec(sh)
	}
}

// shedExec retires a turned-away transaction: count it, close its span, and
// recycle the wrapper (a queued exec has no event, timer or CN job
// referencing it).
func (m *Machine) shedExec(sh admit.Shed) {
	e := sh.Item.Payload.(*exec)
	switch sh.Reason {
	case admit.ShedQueueFull:
		m.met.ShedQueueFull()
	case admit.ShedDeadline:
		m.met.ShedDeadline()
	case admit.ShedOverload:
		m.met.ShedOverload()
	default:
		m.met.ShedDrain()
	}
	e.phase = phFinished
	if e.txnSpan != 0 {
		m.ob.End(e.txnSpan, m.eng.Now())
		e.txnSpan = 0
	}
	m.execPool = append(m.execPool, e)
}

// runEpoch is the epoch-boundary event: expiry, overload control, optional
// eviction, window refill, stats emission, and rescheduling.
func (m *Machine) runEpoch(now sim.Time) {
	for _, sh := range m.svc.Expire(now) {
		m.shedExec(sh)
	}
	m.svc.EndEpoch(now)
	if m.svc.Overloaded() && m.svc.Policy().EvictOnOverload {
		m.evictOne()
	}
	m.fillWindow(now)
	m.emitEpoch(now)
	m.eng.Schedule(m.svc.Policy().Epoch, m.onEpoch)
}

// fillWindow pops queued arrivals into the in-flight window until it is full
// or the queue empties. window counts transactions that left the queue and
// have not committed or been evicted — including scheduler-refused
// admissions parked in admitQ — so the MPL cap holds across retries.
//
// The epoch's batch is popped first and only then offered to tryAdmit:
// tryAdmit just enqueues a CN job (it touches neither the service queue nor
// the window counter), so the pop sequence — and with it every downstream
// decision — is byte-identical to the old pop-and-admit interleaving. The
// intermediate batch is what lets AdmitScreener schedulers prescreen all
// candidates concurrently before the one-by-one Admit calls (parallel.go).
func (m *Machine) fillWindow(now sim.Time) {
	batch := m.fillBuf[:0]
	for m.window < m.svc.Policy().MPL {
		it, ok := m.svc.Pop(now)
		if !ok {
			break
		}
		m.window++
		batch = append(batch, it.Payload.(*exec))
	}
	if as, ok := m.sch.(sched.AdmitScreener); ok && len(batch) > 1 {
		m.screenBuf = m.screenBuf[:0]
		for _, e := range batch {
			m.screenBuf = append(m.screenBuf, e.txn)
		}
		as.PrescreenAdmits(m.screenBuf)
	}
	for i, e := range batch {
		batch[i] = nil // don't pin retired execs through the buffer
		m.tryAdmit(e)
	}
	m.fillBuf = batch[:0]
}

// evictOne removes the blocked or policy-delayed batch-class transaction
// with the smallest id from the in-flight window, releasing its locks and
// WTPG node. Only waiting transactions are candidates: they provably have no
// pending CN job, calendar event or timer referencing their exec, so the
// wrapper can be retired on the spot. The smallest-id rule keeps victim
// selection deterministic (map iteration order must not leak into the run).
func (m *Machine) evictOne() bool {
	var victim *exec
	for _, e := range m.delayed {
		if e.class == admit.Batch && (victim == nil || e.txn.ID < victim.txn.ID) {
			victim = e
		}
	}
	for _, list := range m.blocked {
		for _, e := range list {
			if e.class == admit.Batch && (victim == nil || e.txn.ID < victim.txn.ID) {
				victim = e
			}
		}
	}
	if victim == nil {
		return false
	}
	m.removeWaiter(victim)
	m.endWait(victim)
	m.sch.Aborted(victim.txn) // releases locks, drops the WTPG node in place
	victim.txn.StepIndex = 0
	victim.phase = phFinished
	m.active--
	m.window--
	m.met.Evicted()
	m.svc.NoteEviction()
	if victim.txnSpan != 0 {
		m.ob.End(victim.txnSpan, m.eng.Now())
		victim.txnSpan = 0
	}
	m.wakeCommit(victim.txn) // its released locks may unblock others
	m.execPool = append(m.execPool, victim)
	return true
}

// removeWaiter deletes e from the wait structure its phase names.
func (m *Machine) removeWaiter(e *exec) {
	switch e.phase {
	case phDelayed:
		for i, d := range m.delayed {
			if d == e {
				m.delayed = append(m.delayed[:i], m.delayed[i+1:]...)
				return
			}
		}
	case phBlocked:
		f := e.txn.CurrentStep().File
		list := m.blocked[f]
		for i, b := range list {
			if b == e {
				m.blocked[f] = append(list[:i], list[i+1:]...)
				return
			}
		}
	}
	panic("machine: evict victim not found in its wait structure")
}

// emitEpoch digests the epoch (per-epoch deltas against the previous
// cumulative snapshot plus the epoch's completion RTs) and hands it to the
// epoch hook.
func (m *Machine) emitEpoch(now sim.Time) {
	m.epochNum++
	cum := m.svc.Stats()
	es := admit.EpochStats{
		Epoch:       m.epochNum,
		Start:       m.epochStart,
		End:         now,
		Arrivals:    cum.Arrivals - m.epochPrev.Arrivals,
		Admitted:    cum.TotalAdmitted() - m.epochPrev.TotalAdmitted(),
		Completions: len(m.epochRTs),
		Sheds:       cum.TotalShed() - m.epochPrev.TotalShed(),
		Evictions:   cum.Evictions - m.epochPrev.Evictions,
		QueueDepth:  m.svc.Depth(),
		Active:      m.active,
		P95Sojourn:  m.svc.P95Sojourn(),
		Overloaded:  m.svc.Overloaded(),
		Cum:         cum,
	}
	if n := len(m.epochRTs); n > 0 {
		sort.Slice(m.epochRTs, func(i, j int) bool { return m.epochRTs[i] < m.epochRTs[j] })
		var sum sim.Time
		for _, rt := range m.epochRTs {
			sum += rt
		}
		es.MeanRT = sum / sim.Time(n)
		idx := (n*95+99)/100 - 1
		if idx < 0 {
			idx = 0
		}
		es.P95RT = m.epochRTs[idx]
	}
	m.epochPrev = cum
	m.epochStart = now
	m.epochRTs = m.epochRTs[:0]
	if m.epochHook != nil {
		m.epochHook(es)
	}
}

// SetEpochHook installs a per-epoch callback (service mode only; the hook
// runs inside the epoch event, so it must not mutate the machine). Call
// before Run.
func (m *Machine) SetEpochHook(h func(admit.EpochStats)) { m.epochHook = h }

// Service exposes the admission service (nil outside service mode), for
// end-of-run stats.
func (m *Machine) Service() *admit.Service { return m.svc }
