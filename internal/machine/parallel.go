package machine

import (
	"fmt"

	"batchsched/internal/sim"
)

// Sharded-calendar PDES (Config.ParallelRun; DESIGN.md §13). Each DPN's
// coalesced completion event lives on its own single-slot sub-calendar, and
// the run loop repeatedly asks the engine for a "safe wave": the maximal run
// of completion events at one instant t* that all sort strictly before the
// next control-node event. Wave members are independent by construction —
// every perturbation of a DPN (delivery, crash, straggler toggle, dead mark)
// arrives through a CN-side calendar event, and none sorts before the wave —
// so their expensive part, the lazy ring replay up to t*, can run on worker
// goroutines. The machine-shared part (completion callbacks, RNG draws for
// message delays, calendar bookings) is then committed sequentially in exact
// member order, which keeps traces byte-identical to the merged-calendar
// engine.
//
// Exactness of tie-key stamps across the two phases: sequential dispatch
// increments Executed() before running a member's handler, so member k of a
// wave collected at Executed()==base observes base+k+1. The coordinator
// assigns exactly that value to d.waveIdx before the prepare phase, and
// stamp() reads it while inWave — so a stamp taken concurrently equals the
// stamp sequential dispatch would have taken, and the wave's member order is
// known up front because it is the calendar order of already-booked events.

// stamp is the dispatch-order stamp recorded in tie-key genealogy: the
// number of events dispatched up to and including the one logically running.
func (d *dpn) stamp() uint64 {
	if d.inWave {
		return d.waveIdx
	}
	return d.eng.Executed()
}

// wavePrepare is one member's concurrent phase: replay the epoch's interior
// boundaries, apply the completion boundary (its callback deferred into
// waveDone), and precompute the next completion booking. It touches only the
// node's own state and its per-node metrics cell, so distinct members run
// race-free in parallel.
func (d *dpn) wavePrepare(t sim.Time) {
	d.advanceTo(t)
	if !d.busy || d.svcEnd != t {
		// (unreachable when the reschedule discipline is intact)
		panic(fmt.Sprintf("machine: dpn %d wave member at %v found no boundary (busy=%v svcEnd=%v)",
			d.id, t, d.busy, d.svcEnd))
	}
	d.applyBoundary()
	d.pAt, d.pPrio, d.pTie, d.pOK = d.computeBooking()
	d.wavePrepared = true
}

// waveCommit is the member's sequential phase, run from ringChange in exact
// member order: the deferred completion callback (which may draw from the
// message-delay RNG and book CN-side events), then the precomputed next
// completion booking — the same order the merged-calendar handler produces
// them in, so booking sequence numbers and RNG draws line up exactly.
func (d *dpn) waveCommit() {
	d.wavePrepared = false
	for i, c := range d.waveDone {
		d.waveDone[i] = nil
		if c.done != nil {
			c.done()
		} else if d.complete != nil {
			d.complete(c)
		}
	}
	d.waveDone = d.waveDone[:0]
	if d.pOK {
		d.ffAt, d.ffPrio, d.ffTie = d.pAt, d.pPrio, d.pTie
		d.ffEvent = d.bookCompletion(d.pAt, d.pPrio, d.pTie)
	}
	d.inWave = false
}

// runWaves drives the sharded engine to the horizon: dispatch safe waves
// while they exist, fall back to single-step dispatch (the next event is a
// CN-side one) otherwise. Equivalent to Engine.Run on the merged calendar.
func (m *Machine) runWaves(horizon sim.Time) {
	for {
		m.waveBuf = m.eng.CollectWave(m.waveBuf, horizon)
		if len(m.waveBuf) > 0 {
			m.dispatchWave(m.waveBuf)
			continue
		}
		if !m.eng.Step(horizon) {
			return
		}
	}
}

// dispatchWave fires one collected wave. Multi-member waves get their ring
// replays prepared on the worker pool first (unless observability is on —
// span recording inside the replay is not reentrant); the members themselves
// always commit sequentially in calendar order.
func (m *Machine) dispatchWave(wave []*sim.Event) {
	m.waves++
	m.waveMembers += uint64(len(wave))
	if len(wave) > 1 && m.waveWorkers > 1 && !m.ob.Enabled() {
		m.prepareWave(wave)
	}
	for _, ev := range wave {
		m.eng.DispatchWaveMember(ev)
	}
}

// prepareWave assigns each member its dispatch index and runs the prepare
// phase on the shared pool's wave lane (workers start lazily on the first
// such wave).
func (m *Machine) prepareWave(wave []*sim.Event) {
	base := m.eng.Executed()
	for i, ev := range wave {
		d := m.dpns[ev.Shard()]
		d.inWave = true
		d.waveIdx = base + uint64(i) + 1
	}
	m.waveRun.m = m
	m.waveRun.wave, m.waveRun.t = wave, wave[0].Time()
	m.waveLane.Run(&m.waveRun, len(wave), m.waveWorkers)
	m.waveRun.wave = nil
}

// stopPool shuts the shared worker pool down (Run/RunClosed call it on exit
// so a run leaves no goroutines behind).
func (m *Machine) stopPool() {
	if m.workPool != nil {
		m.workPool.Stop()
	}
}

// WaveStats reports how many safe waves the sharded engine has dispatched
// and their total member count (members/waves is the mean parallelism the
// lookahead exposed; 0/0 on the merged-calendar path).
func (m *Machine) WaveStats() (waves, members uint64) { return m.waves, m.waveMembers }

// ShardUtilization appends each node's busy-window fraction of the virtual
// time elapsed so far to buf and returns it. Starved shards (lookahead never
// lets them run) show up as low fractions in -progress output.
func (m *Machine) ShardUtilization(buf []float64) []float64 {
	buf = buf[:0]
	now := m.eng.Now()
	for i, d := range m.dpns {
		d.sync() // replay fast-forwarded boundaries into the collector
		u := 0.0
		if now > 0 {
			u = float64(m.met.DPNBusyTime(i)) / float64(now)
		}
		buf = append(buf, u)
	}
	return buf
}

// waveRun adapts the prepare phase to pool.Runner: task i replays member
// i's shard up to the wave instant. It touches only that node's own state,
// so any worker may claim any member.
type waveRun struct {
	m    *Machine
	wave []*sim.Event
	t    sim.Time
}

func (w *waveRun) RunTask(_, i int) {
	w.m.dpns[w.wave[i].Shard()].wavePrepare(w.t)
}
