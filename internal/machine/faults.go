package machine

import (
	"batchsched/internal/fault"
	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// FaultObserver is an optional extension of Observer: observers that also
// implement it (trace.Writer does) additionally receive fault-injection
// events. Checked by type assertion so existing observers keep working.
type FaultObserver interface {
	// Fault fires for a machine-level fault transition: kind is "crash",
	// "restore", "slow", "slowend" or "msgloss"; node is the affected
	// data-processing node.
	Fault(kind string, node int, at sim.Time)
	// AbortedTxn fires when a fault aborts a transaction; reason is
	// "crash" (lost cohorts) or "timeout" (message retries exhausted).
	// The machine also fires the regular Restarted for these aborts.
	AbortedTxn(t *model.Txn, reason string, at sim.Time)
	// Retried fires when the control node re-dispatches a step after a
	// message timeout; attempt is 1-based.
	Retried(t *model.Txn, attempt int, at sim.Time)
}

// stepRun tracks one dispatch attempt of one granted step: its cohorts and
// whether the attempt has been invalidated by a fault. A fresh stepRun is
// made per retry so stale timers and cohort completions of a superseded
// attempt are ignored via the dead flag.
type stepRun struct {
	e       *exec
	home    int // the step file's home node (fault attribution)
	attempt int // 0-based dispatch attempt
	pending int // cohorts not yet completed
	cohorts []*cohort
	dead    bool
}

// wireFaults builds the fault injector when any knob is set. Fault draws
// come from the dedicated "fault" stream of the master seed, so the
// crash/straggler schedule depends only on (seed, fault config) — never on
// the workload or the scheduler under test — and failure-free runs draw
// nothing extra.
func (m *Machine) wireFaults(rng *sim.RNG) error {
	if !m.cfg.Faults.Enabled() {
		return nil
	}
	inj, err := fault.NewInjector(m.cfg.Faults, m.cfg.NumNodes, m.eng, rng.Stream("fault"), fault.Hooks{
		Crash:     m.onCrash,
		Restore:   m.onRestore,
		SlowStart: m.onSlowStart,
		SlowEnd:   m.onSlowEnd,
	})
	if err != nil {
		return err
	}
	m.inj = inj
	return nil
}

func (m *Machine) faultEvent(kind string, node int) {
	if fo, ok := m.obs.(FaultObserver); ok {
		fo.Fault(kind, node, m.eng.Now())
	}
}

// onCrash takes the node down and aborts every transaction that had a
// cohort resident there (their sibling cohorts on healthy nodes die too).
func (m *Machine) onCrash(node int, now sim.Time) {
	m.met.NodeDown(now)
	m.faultEvent("crash", node)
	for _, c := range m.dpns[node].crash() {
		if c.run != nil {
			m.abortRun(c.run, "crash")
		}
	}
}

func (m *Machine) onRestore(node int, now sim.Time) {
	m.met.NodeUp(now)
	m.faultEvent("restore", node)
	m.dpns[node].restore()
}

func (m *Machine) onSlowStart(node int, factor float64, now sim.Time) {
	m.met.StragglerStart(now)
	m.faultEvent("slow", node)
	m.dpns[node].setSlow(factor)
}

func (m *Machine) onSlowEnd(node int, now sim.Time) {
	m.met.StragglerEnd(now)
	m.faultEvent("slowend", node)
	m.dpns[node].setSlow(1)
}

// msgDelay is the network delay of one CN<->DPN message, including any
// injected extra latency.
func (m *Machine) msgDelay() sim.Time {
	d := m.cfg.NetDelay
	if m.inj != nil {
		d += m.inj.MsgExtraDelay()
	}
	return d
}

// armTimeout books the control node's retry timer for a dispatch whose
// request or reply message was lost. The model is omniscient about loss —
// the timer is armed only when a message actually went missing — so no
// timer bookkeeping is needed on the (common) healthy path and the
// failure-free event sequence is untouched.
func (m *Machine) armTimeout(run *stepRun) {
	m.eng.SchedulePayload(m.inj.Timeout(), m.onTimeout, run)
}

// stepTimeout retires the timed-out attempt and either re-dispatches the
// step or, once the retry budget is spent, aborts the transaction.
func (m *Machine) stepTimeout(run *stepRun) {
	run.dead = true
	m.killCohorts(run)
	e := run.e
	if run.attempt >= m.inj.Retries() {
		m.met.MsgAbort()
		m.abortTxn(e, "timeout")
		return
	}
	m.met.MsgRetry()
	if fo, ok := m.obs.(FaultObserver); ok {
		fo.Retried(e.txn, run.attempt+1, m.eng.Now())
	}
	m.dispatchStep(e, run.attempt+1)
}

// abortRun invalidates a dispatch attempt killed by a node crash and aborts
// its transaction.
func (m *Machine) abortRun(run *stepRun, reason string) {
	if run.dead {
		return
	}
	run.dead = true
	m.killCohorts(run)
	m.met.CrashAbort()
	m.abortTxn(run.e, reason)
}

// killCohorts marks every cohort of a retired dispatch attempt dead, then
// tells each cohort's node — fast-forward nodes must re-derive their
// completion forecast once a resident cohort stops consuming service. Each
// node is synced to the kill instant BEFORE any flag is set: service
// boundaries up to this moment were served with the cohorts still live, and
// replaying them later against raised dead flags would retroactively drop
// quanta the stepped engine charged. All cohorts are then marked before any
// node is notified so a node holding several of them re-forecasts against
// the final state.
func (m *Machine) killCohorts(run *stepRun) {
	for _, c := range run.cohorts {
		if c.node != nil {
			c.node.sync()
		}
	}
	for _, c := range run.cohorts {
		c.dead = true
	}
	for _, c := range run.cohorts {
		if c.node != nil {
			c.node.deadMarked()
		}
	}
}

// abortTxn rolls a running transaction back after a fault: the scheduler
// releases its locks (and WTPG node where applicable), the observer sees
// the rollback, waiters on its files are reconsidered, and the transaction
// is resubmitted after RestartDelay — the same recovery contract as the
// deadlock-victim and validation-failure paths.
func (m *Machine) abortTxn(e *exec, reason string) {
	e.run = nil
	if e.stepSpan != 0 {
		m.ob.End(e.stepSpan, m.eng.Now())
		e.stepSpan = 0
	}
	m.endWait(e)
	m.met.Restart()
	m.obsRestart.Inc()
	e.txn.Restarts++
	m.sch.Aborted(e.txn)
	e.txn.StepIndex = 0
	if m.obs != nil {
		m.obs.Restarted(e.txn, m.eng.Now())
	}
	if fo, ok := m.obs.(FaultObserver); ok {
		fo.AbortedTxn(e.txn, reason, m.eng.Now())
	}
	m.wakeCommit(e.txn) // its released locks may unblock others
	m.restartAfterDelay(e)
}
