package machine

import (
	"fmt"

	"batchsched/internal/admit"
	"batchsched/internal/engine"
	"batchsched/internal/fault"
	"batchsched/internal/metrics"
	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/pool"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// Generator produces the declared steps of successive transactions. It is
// implemented by package workload; the machine calls it once per arrival.
// An alias of engine.Generator, so workload generators feed every backend.
type Generator = engine.Generator

// Observer receives execution events, for history recording and invariant
// checks. An alias of engine.Observer: the same recorders plug into the
// simulator and the live backend.
type Observer = engine.Observer

// Machine is one execution backend (the virtual-clock simulator).
var _ engine.Backend = (*Machine)(nil)

// txnPhase is the lifecycle position of a transaction inside the machine.
type txnPhase int

const (
	phAtCN     txnPhase = iota // a CN job for it is queued or running
	phAdmit                    // waiting to be admitted
	phBlocked                  // waiting on a file's lock release
	phDelayed                  // policy-delayed lock request
	phRunning                  // cohorts executing at DPNs
	phFinished                 // committed (or shed/evicted in service mode)
	phQueued                   // in the service-mode admission queue
)

// exec is the runtime wrapper around one transaction.
type exec struct {
	txn          *model.Txn
	phase        txnPhase
	admitCharged bool
	admitted     bool
	class        admit.Class // service class (service mode only)
	run          *stepRun    // current step dispatch, while phRunning

	// Observability state (all zero when the observer is disabled): the
	// transaction's lifecycle span and its currently open phase spans.
	txnSpan    obs.SpanID
	admitSpan  obs.SpanID
	waitSpan   obs.SpanID
	stepSpan   obs.SpanID
	commitSpan obs.SpanID
	waitSince  sim.Time // start of the open lock-wait span
}

// Machine is one Shared-Nothing machine simulation run: engine, control
// node, DPNs, scheduler and workload wired together. Create with New, then
// call Run once.
type Machine struct {
	cfg   Config
	eng   *sim.Engine
	met   *metrics.Collector
	sch   sched.Scheduler
	gen   Generator
	place Placement
	cn    *controlNode
	dpns  []*dpn
	obs   Observer
	inj   *fault.Injector // nil on the failure-free path

	// ob is the observability layer; nil (the default) disables it, and
	// every hook below is nil-receiver safe so the disabled path costs
	// one pointer check and no allocation. The derived instruments are
	// nil exactly when ob is nil.
	ob          *obs.Observer
	obsGrant    *obs.Counter
	obsBlock    *obs.Counter
	obsDelay    *obs.Counter
	obsRestart  *obs.Counter
	obsCommit   *obs.Counter
	obsLockWait *obs.Histogram
	obsReqCPU   *obs.Histogram
	obsRetries  *obs.Histogram

	arrivalRNG  *sim.RNG
	workloadRNG *sim.RNG
	restartRNG  *sim.RNG
	arrivals    workload.Arrivals // nil when no arrival process is configured

	// Service-mode state (service.go); svc is nil outside service mode.
	svc        *admit.Service
	classRNG   *sim.RNG
	window     int // popped from the queue, not yet committed or evicted
	epochNum   int
	epochStart sim.Time
	epochPrev  admit.Stats
	epochRTs   []sim.Time
	epochHook  func(admit.EpochStats)
	onEpoch    sim.Handler

	nextID    int64
	active    int // admitted, uncommitted (machine-level MPL accounting)
	completed int
	admitQ    []*exec
	blocked   map[model.FileID][]*exec
	delayed   []*exec
	// admitSpare/delayedSpare double-buffer the wake queues: a wake-up swaps
	// the live queue for the (emptied) spare and iterates the old backing
	// array, so re-parks during the sweep cannot alias the slice being
	// iterated and neither side reallocates at steady state.
	admitSpare   []*exec
	delayedSpare []*exec

	// Sharded-PDES state (Config.ParallelRun; parallel.go): the safe-wave
	// run loop's member buffer, the prepare-phase lane of the shared worker
	// pool, and the wave statistics surfaced by WaveStats for -progress
	// output. workPool is the one pool budgeted for both wave preparation
	// and scheduler decision fan-out (DESIGN.md §17); its goroutines start
	// lazily, so machines that never hit a parallel phase pay nothing.
	shardedRun      bool
	waveWorkers     int
	decisionWorkers int
	waveBuf         []*sim.Event
	workPool        *pool.Pool
	waveLane        *pool.Lane
	waveRun         waveRun
	waves           uint64
	waveMembers     uint64

	// Service-mode batch-admission buffers (service.go): fillWindow pops the
	// epoch's batch here so AdmitScreener schedulers can prescreen it.
	fillBuf   []*exec
	screenBuf []*model.Txn

	// Hot-path free lists (zero steady-state allocations per event): spent
	// stepRuns and their cohorts are recycled when a step completes cleanly,
	// committed execs when their transaction retires; fault-retired objects
	// are deliberately leaked to the GC (a stale timer may still reference
	// them). cohortSlab batch-allocates cohorts; nodesBuf backs
	// Placement.NodesInto.
	runPool    []*stepRun
	cohortPool []*cohort
	cohortSlab []cohort
	execPool   []*exec
	nodesBuf   []int

	// Pre-bound event handlers: recurring events carry their state in a
	// pointer payload instead of a per-event closure.
	onArrival    sim.Handler
	onDeliver    sim.PayloadHandler // arg: *cohort
	onStepReturn sim.PayloadHandler // arg: *stepRun
	onRetryAdmit sim.PayloadHandler // arg: *exec
	onTimeout    sim.PayloadHandler // arg: *stepRun
}

// New builds a machine. The scheduler must be fresh (one per run); rng
// seeds the arrival and workload streams.
func New(cfg Config, s sched.Scheduler, gen Generator, rng *sim.RNG) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("machine: nil scheduler")
	}
	eng := sim.NewEngine()
	met := metrics.NewCollector(cfg.NumNodes, cfg.Warmup)
	m := &Machine{
		cfg:         cfg,
		eng:         eng,
		met:         met,
		sch:         s,
		gen:         gen,
		place:       Placement{NumNodes: cfg.NumNodes, DD: cfg.DD},
		cn:          newControlNode(eng, met),
		arrivalRNG:  rng.Stream("arrivals"),
		workloadRNG: rng.Stream("workload"),
		restartRNG:  rng.Stream("restart"),
		blocked:     make(map[model.FileID][]*exec),
	}
	m.cn.m = m
	m.arrivals = cfg.Arrivals
	if m.arrivals == nil && cfg.ArrivalRate > 0 {
		m.arrivals = workload.Poisson{Rate: cfg.ArrivalRate}
	}
	if cfg.Service != nil {
		svc, err := admit.NewService(*cfg.Service)
		if err != nil {
			return nil, err
		}
		m.svc = svc
		m.classRNG = rng.Stream("class")
		// The window bound doubles as the machine MPL so the closed-path
		// admission guard agrees with the service accounting (Validate
		// required Config.MPL == 0; m.cfg is the machine's own copy).
		m.cfg.MPL = cfg.Service.MPL
		m.onEpoch = func(now sim.Time) { m.runEpoch(now) }
	}
	m.dpns = make([]*dpn, cfg.NumNodes)
	for i := range m.dpns {
		m.dpns[i] = newDPN(i, eng, met)
		m.dpns[i].stepped = cfg.QuantumStepped
		m.dpns[i].complete = m.cohortFinished
	}
	if cfg.ParallelRun > 0 {
		m.shardedRun = true
		m.waveWorkers = cfg.ParallelRun
		eng.SetShards(cfg.NumNodes)
		for _, d := range m.dpns {
			d.sharded = true
		}
	}
	m.onArrival = func(sim.Time) {
		steps := m.gen.Steps(m.workloadRNG)
		m.Submit(steps)
		m.scheduleNextArrival()
	}
	m.onDeliver = func(_ sim.Time, arg any) { m.deliverCohort(arg.(*cohort)) }
	m.onStepReturn = func(_ sim.Time, arg any) { m.stepReturn(arg.(*stepRun)) }
	m.onRetryAdmit = func(_ sim.Time, arg any) { m.tryAdmit(arg.(*exec)) }
	m.onTimeout = func(_ sim.Time, arg any) {
		run := arg.(*stepRun)
		if run.dead {
			return
		}
		m.stepTimeout(run)
	}
	if la, ok := s.(sched.LoadAware); ok {
		la.SetLoadProbe(m.fileLoad)
	}
	if dp, ok := s.(sched.DecisionParallel); ok && dp.DecisionWorkers() > 1 {
		m.decisionWorkers = dp.DecisionWorkers()
	}
	// One pool budgets both parallel phases: wave preparation and scheduler
	// decision fan-out run from disjoint regions of the event loop (a wave
	// never overlaps a CN decision), so they share workers instead of
	// doubling the goroutine footprint.
	if budget := max(m.waveWorkers, m.decisionWorkers); budget > 1 {
		m.workPool = pool.New("machine", budget)
		if m.waveWorkers > 1 {
			m.waveLane = m.workPool.Lane("wave-prepare")
		}
		if m.decisionWorkers > 1 {
			s.(sched.DecisionParallel).SetDecisionLane(m.workPool.Lane("decision"))
		}
	}
	if err := m.wireFaults(rng); err != nil {
		return nil, err
	}
	return m, nil
}

// fileLoad reports the mean number of resident cohorts across the nodes
// holding f's partitions — the congestion probe for load-aware schedulers.
func (m *Machine) fileLoad(f model.FileID) float64 {
	m.nodesBuf = m.place.NodesInto(f, m.nodesBuf)
	total := 0
	for _, n := range m.nodesBuf {
		total += m.dpns[n].queueLen()
	}
	return float64(total) / float64(len(m.nodesBuf))
}

// newExec wraps a transaction, reusing a retired exec when one is pooled.
func (m *Machine) newExec(t *model.Txn) *exec {
	if n := len(m.execPool); n > 0 {
		e := m.execPool[n-1]
		m.execPool[n-1] = nil
		m.execPool = m.execPool[:n-1]
		*e = exec{txn: t}
		return e
	}
	return &exec{txn: t}
}

// newStepRun starts a dispatch attempt, reusing a cleanly-retired stepRun
// (and its cohorts slice) when one is pooled.
func (m *Machine) newStepRun(e *exec, home, attempt int) *stepRun {
	if n := len(m.runPool); n > 0 {
		r := m.runPool[n-1]
		m.runPool[n-1] = nil
		m.runPool = m.runPool[:n-1]
		*r = stepRun{e: e, home: home, attempt: attempt, cohorts: r.cohorts[:0]}
		return r
	}
	return &stepRun{e: e, home: home, attempt: attempt}
}

// newCohort takes a cohort off the free list, batch-allocating a fresh slab
// when it runs dry so steady-state dispatches never hit the allocator.
func (m *Machine) newCohort() *cohort {
	if n := len(m.cohortPool); n > 0 {
		c := m.cohortPool[n-1]
		m.cohortPool[n-1] = nil
		m.cohortPool = m.cohortPool[:n-1]
		return c
	}
	if len(m.cohortSlab) == 0 {
		m.cohortSlab = make([]cohort, 64)
	}
	c := &m.cohortSlab[0]
	m.cohortSlab = m.cohortSlab[1:]
	return c
}

// retireRun recycles a dispatch attempt that completed cleanly (stepDone).
// Such a run provably has no timer or in-flight event referencing it: retry
// timers are armed only when a message was lost, and a lost message always
// retires its attempt through the timeout path instead. Fault-retired runs
// are left to the GC.
func (m *Machine) retireRun(run *stepRun) {
	for i, c := range run.cohorts {
		run.cohorts[i] = nil
		*c = cohort{}
		m.cohortPool = append(m.cohortPool, c)
	}
	*run = stepRun{cohorts: run.cohorts[:0]}
	m.runPool = append(m.runPool, run)
}

// SetObserver installs an execution observer (history recorder etc.).
func (m *Machine) SetObserver(o Observer) { m.obs = o }

// SetObs attaches the virtual-time observability layer: spans over the
// transaction lifecycle, control-node jobs and DPN cohorts; counters,
// gauges and histograms in o's registry; and the scheduler decision audit
// where the scheduler supports it. Call before Run. A nil o is ignored —
// the layer stays disabled and the instrumented paths reduce to nil checks,
// leaving the event sequence (and thus the summary) identical to an
// unobserved run.
func (m *Machine) SetObs(o *obs.Observer) {
	if o == nil {
		return
	}
	m.ob = o
	m.cn.ob = o
	for _, d := range m.dpns {
		d.ob = o
	}
	m.obsGrant = o.Counter("grants")
	m.obsBlock = o.Counter("blocks")
	m.obsDelay = o.Counter("delays")
	m.obsRestart = o.Counter("restarts")
	m.obsCommit = o.Counter("commits")
	m.obsLockWait = o.Histogram("lock_wait_ms",
		[]float64{1, 10, 100, 1_000, 10_000, 60_000, 300_000})
	m.obsReqCPU = o.Histogram("request_cpu_ms",
		[]float64{0.5, 1, 2, 5, 10, 20, 50, 100})
	m.obsRetries = o.Histogram("restarts_per_txn",
		[]float64{0, 1, 2, 5, 10})
	hCNQ := o.Histogram("cn_queue_depth",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64})
	o.Gauge("cn_queue", func() float64 {
		v := float64(m.cn.queueLen())
		hCNQ.Observe(v)
		return v
	})
	o.Gauge("active_txns", func() float64 { return float64(m.active) })
	o.Gauge("waiting_txns", func() float64 {
		n := len(m.delayed)
		for _, l := range m.blocked {
			n += len(l)
		}
		return float64(n)
	})
	o.Gauge("cn_busy_ms", func() float64 { return m.met.CNBusyTime().Milliseconds() })
	for i := range m.dpns {
		i := i
		o.Gauge(fmt.Sprintf("dpn%d_queue", i), func() float64 { return float64(m.dpns[i].queueLen()) })
		o.Gauge(fmt.Sprintf("dpn%d_busy_ms", i), func() float64 {
			m.dpns[i].sync() // replay fast-forwarded boundaries into the collector
			return m.met.DPNBusyTime(i).Milliseconds()
		})
	}
	o.Audit().SetClock(m.eng.Now)
	if a, ok := m.sch.(sched.Audited); ok {
		a.SetAudit(o.Audit())
	}
}

// Engine exposes the simulation engine (for tests that drive time manually).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Now returns the current virtual time (engine.Clock).
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// Submit injects a transaction at the current virtual time (used by tests
// and by runs with ArrivalRate == 0). Steps are used as-is.
func (m *Machine) Submit(steps []model.Step) *model.Txn {
	m.nextID++
	t := model.NewTxn(m.nextID, m.eng.Now(), steps)
	m.arrive(t)
	return t
}

// Run executes the configured workload for cfg.Duration and returns the
// metrics summary.
func (m *Machine) Run() metrics.Summary {
	if m.inj != nil {
		m.inj.Start()
	}
	if m.arrivals != nil {
		if m.gen == nil {
			panic("machine: an arrival process needs a Generator")
		}
		m.scheduleNextArrival()
	}
	if m.svc != nil {
		m.eng.Schedule(m.svc.Policy().Epoch, m.onEpoch)
	}
	m.ob.StartSampling(m.eng)
	if m.shardedRun {
		defer m.stopPool()
		m.runWaves(m.cfg.Duration)
	}
	m.eng.RunUntil(m.cfg.Duration)
	// Fast-forward nodes may still hold an epoch tail whose quantum events
	// the stepped engine would have fired at (or before) the horizon; replay
	// it so busy accounting matches before anything is summarized.
	for _, d := range m.dpns {
		d.flush(m.cfg.Duration)
	}
	m.ob.Finish(m.eng.Now())
	return m.met.Summarize(m.cfg.Duration)
}

// RunClosed executes a closed batch: every transaction must already have
// been Submitted (ArrivalRate is ignored). Events are dispatched until the
// whole batch commits — or the calendar drains or the horizon passes,
// whichever is first — and the summary window is the makespan, so TPS is
// batch throughput. This is the simulator side of sim-vs-live differential
// runs, which are all closed batches (the live backend has no arrival
// process).
func (m *Machine) RunClosed(horizon sim.Time) metrics.Summary {
	if m.inj != nil {
		m.inj.Start()
	}
	m.ob.StartSampling(m.eng)
	if m.shardedRun {
		defer m.stopPool()
		// Wave members are DPN completions and never change InFlight, so
		// testing it between waves tests it between every event.
		for m.InFlight() > 0 {
			m.waveBuf = m.eng.CollectWave(m.waveBuf, horizon)
			if len(m.waveBuf) > 0 {
				m.dispatchWave(m.waveBuf)
				continue
			}
			if !m.eng.Step(horizon) {
				break
			}
		}
	}
	for m.InFlight() > 0 && m.eng.Step(horizon) {
	}
	now := m.eng.Now()
	for _, d := range m.dpns {
		d.flush(now)
	}
	m.ob.Finish(now)
	return m.met.Summarize(now)
}

func (m *Machine) scheduleNextArrival() {
	gap := m.arrivals.Next(m.eng.Now(), m.arrivalRNG)
	m.eng.Schedule(gap, m.onArrival)
}

func (m *Machine) arrive(t *model.Txn) {
	m.met.Arrival(m.eng.Now())
	e := m.newExec(t)
	if m.ob.Enabled() {
		e.txnSpan = m.ob.Begin("txn", "txn", t.ID, -1, -1, 0, m.eng.Now())
	}
	if m.svc != nil {
		m.svcArrive(e)
		return
	}
	m.tryAdmit(e)
}

// tryAdmit queues an admission attempt on the CN. Failed attempts park the
// transaction; it is retried after the next commit.
func (m *Machine) tryAdmit(e *exec) {
	e.phase = phAtCN
	m.cn.submit(cnJob{op: opAdmit, e: e})
}

// admitBody is the opAdmit job body.
func (m *Machine) admitBody(e *exec) (sim.Time, cnCont) {
	if m.cfg.MPL > 0 && m.active >= m.cfg.MPL && !e.admitted {
		return 0, cnCont{op: contPark, e: e}
	}
	ok, cpu := m.sch.Admit(e.txn)
	if e.admitCharged && !m.cfg.ChargeRetryCPU {
		// Retried admission tests are batch-evaluated for free (see
		// DESIGN.md substitution notes); only the first attempt pays.
		cpu = 0
	}
	e.admitCharged = true
	if !ok {
		m.met.AdmissionReject()
		e.txn.AdmissionTries++
		return cpu, cnCont{op: contPark, e: e}
	}
	if !e.admitted {
		e.admitted = true
		m.active++
	}
	e.txn.Status = model.Active
	return cpu + m.cfg.SOTTime, cnCont{op: contStart, e: e}
}

func (m *Machine) parkAdmit(e *exec) {
	e.phase = phAdmit
	if m.ob.Enabled() && e.admitSpan == 0 {
		e.admitSpan = m.ob.Begin("admit-wait", "txn", e.txn.ID, -1, -1, e.txnSpan, m.eng.Now())
	}
	m.admitQ = append(m.admitQ, e)
}

// nextStep routes the transaction to its next lock request or to commit.
func (m *Machine) nextStep(e *exec) {
	if e.txn.Done() {
		m.commit(e)
		return
	}
	m.requestLock(e)
}

func (m *Machine) requestLock(e *exec) {
	e.phase = phAtCN
	m.cn.submit(cnJob{op: opRequest, e: e})
}

// requestBody is the opRequest job body. The continuations re-read the
// current step where needed: the CN is serial, so no other job body or
// continuation (the only mutators of StepIndex) can run in between.
func (m *Machine) requestBody(e *exec) (sim.Time, cnCont) {
	out := m.sch.Request(e.txn)
	m.obsReqCPU.Observe(out.CPU.Milliseconds())
	switch out.Decision {
	case sched.Grant:
		m.met.Granted()
		m.obsGrant.Inc()
		return out.CPU, cnCont{op: contExec, e: e}
	case sched.Block:
		m.met.Block()
		m.obsBlock.Inc()
		return out.CPU, cnCont{op: contBlock, e: e}
	case sched.Delay:
		m.met.Delay()
		m.obsDelay.Inc()
		return out.CPU, cnCont{op: contDelay, e: e}
	case sched.Abort:
		// Deadlock victim (strict 2PL): roll back, release, restart.
		m.met.Restart()
		m.obsRestart.Inc()
		e.txn.Restarts++
		return out.CPU, cnCont{op: contAbort, e: e}
	default:
		panic(fmt.Sprintf("machine: unexpected request decision %v", out.Decision))
	}
}

// cnBody dispatches an op-coded control-node job body.
func (m *Machine) cnBody(j cnJob) (sim.Time, cnCont) {
	switch j.op {
	case opAdmit:
		return m.admitBody(j.e)
	case opRequest:
		return m.requestBody(j.e)
	case opDispatch:
		return m.cfg.MsgTime, cnCont{op: contDispatch, e: j.e, attempt: j.attempt}
	case opStepDone:
		return m.cfg.MsgTime, cnCont{op: contStepDone, e: j.e, run: j.run}
	case opCommit:
		return m.commitBody(j.e)
	default:
		panic(fmt.Sprintf("machine: unknown CN op %d", j.op))
	}
}

// cnFinish dispatches an op-coded job continuation.
func (m *Machine) cnFinish(c cnCont) {
	switch c.op {
	case contPark:
		m.parkAdmit(c.e)
	case contStart:
		if c.e.admitSpan != 0 {
			m.ob.End(c.e.admitSpan, m.eng.Now())
			c.e.admitSpan = 0
		}
		m.nextStep(c.e)
	case contExec:
		e := c.e
		m.endWait(e)
		if m.ob.Enabled() {
			e.stepSpan = m.ob.Begin("execute", "txn", e.txn.ID, -1,
				e.txn.StepIndex, e.txnSpan, m.eng.Now())
		}
		m.executeStep(e)
		if !m.cfg.NoWakeOnGrant {
			m.wakeDelayed() // a grant changes the scheduling state
		}
	case contBlock:
		e := c.e
		e.phase = phBlocked
		m.beginWait(e)
		file := e.txn.CurrentStep().File
		m.blocked[file] = append(m.blocked[file], e)
	case contDelay:
		c.e.phase = phDelayed
		m.beginWait(c.e)
		m.delayed = append(m.delayed, c.e)
	case contAbort:
		e := c.e
		m.endWait(e)
		m.sch.Aborted(e.txn)
		e.txn.StepIndex = 0
		if m.obs != nil {
			m.obs.Restarted(e.txn, m.eng.Now())
		}
		m.wakeCommit(e.txn) // its released locks may unblock others
		m.restartAfterDelay(e)
	case contDispatch:
		m.placeStep(c.e, c.attempt)
	case contStepDone:
		m.stepDone(c.run)
	case contCommitOK:
		m.commitFinish(c.e)
	case contCommitFail:
		e := c.e
		if e.commitSpan != 0 {
			m.ob.End(e.commitSpan, m.eng.Now())
			e.commitSpan = 0
		}
		m.sch.Aborted(e.txn)
		e.txn.StepIndex = 0
		if m.obs != nil {
			m.obs.Restarted(e.txn, m.eng.Now())
		}
		m.restartAfterDelay(e) // re-admission restamps the attempt
	default:
		panic(fmt.Sprintf("machine: unknown CN continuation %d", c.op))
	}
}

// beginWait opens the transaction's lock-wait span (blocked or
// policy-delayed both count as waiting for a lock); reentrant for a
// transaction that bounces between the two without a grant in between.
func (m *Machine) beginWait(e *exec) {
	if !m.ob.Enabled() || e.waitSpan != 0 {
		return
	}
	e.waitSince = m.eng.Now()
	e.waitSpan = m.ob.Begin("lock-wait", "txn", e.txn.ID, -1,
		e.txn.StepIndex, e.txnSpan, e.waitSince)
}

// endWait closes the open lock-wait span (if any) and feeds the lock-wait
// histogram with its length.
func (m *Machine) endWait(e *exec) {
	if e.waitSpan == 0 {
		return
	}
	now := m.eng.Now()
	m.ob.End(e.waitSpan, now)
	m.obsLockWait.Observe((now - e.waitSince).Milliseconds())
	e.waitSpan = 0
}

// executeStep runs the granted step: the CN sends the transaction to the
// file's home node (one message), the step runs as DD cohorts of C/DD
// objects round-robin-interleaved at their nodes, and when the last cohort
// finishes the transaction returns to the CN (one message).
func (m *Machine) executeStep(e *exec) { m.dispatchStep(e, 0) }

// dispatchStep is one dispatch attempt of the current step (attempt > 0
// after message-timeout retries). With faults enabled, the request message
// may be lost, deliveries pick up injected latency, and a crashed home or
// partition node aborts the transaction; the failure-free path schedules
// exactly the same events as before the fault subsystem existed.
func (m *Machine) dispatchStep(e *exec, attempt int) {
	m.cn.submit(cnJob{op: opDispatch, e: e, attempt: attempt})
}

// placeStep is the contDispatch continuation: the CN send is paid, the step
// becomes cohorts on its nodes.
func (m *Machine) placeStep(e *exec, attempt int) {
	st := e.txn.CurrentStep()
	e.phase = phRunning
	run := m.newStepRun(e, m.place.Home(st.File), attempt)
	e.run = run
	if m.inj != nil && m.inj.MsgLost() {
		// The CN->DPN request vanished; the retry timer is the only way
		// forward.
		m.met.MsgLost()
		m.faultEvent("msgloss", run.home)
		m.armTimeout(run)
		return
	}
	m.nodesBuf = m.place.NodesInto(st.File, m.nodesBuf)
	service := sim.Time(float64(m.cfg.ObjTime) * st.Cost / float64(m.cfg.DD))
	quantum := m.cfg.ObjTime / sim.Time(m.cfg.DD)
	if m.cfg.RunToCompletion {
		// Ablation: FCFS cohort service — one quantum covers the whole
		// scan.
		quantum = service
		if quantum <= 0 {
			quantum = 1
		}
	}
	run.pending = len(m.nodesBuf)
	for _, n := range m.nodesBuf {
		c := m.newCohort()
		*c = cohort{remaining: service, quantum: quantum, run: run, node: m.dpns[n]}
		run.cohorts = append(run.cohorts, c)
		m.eng.SchedulePayload(m.msgDelay(), m.onDeliver, c)
	}
}

// deliverCohort lands one cohort on its data-processing node. A delivery to
// a down node means the step cannot proceed: the CN aborts the transaction
// (in the real machine the commit protocol detects the dead participant).
func (m *Machine) deliverCohort(c *cohort) {
	if c.run.dead {
		return
	}
	if c.node.down {
		m.faultEvent("msgloss", c.node.id)
		m.abortRun(c.run, "crash")
		return
	}
	c.node.add(c)
}

// cohortFinished is the DPN's completion callback for machine-owned cohorts.
func (m *Machine) cohortFinished(c *cohort) { m.cohortDone(c.run) }

// cohortDone counts down the attempt's cohorts; when the last finishes the
// transaction flows back to the CN after the network delay and one receive
// message (which may itself be lost).
func (m *Machine) cohortDone(run *stepRun) {
	if run.dead {
		return
	}
	run.pending--
	if run.pending > 0 {
		return
	}
	m.eng.SchedulePayload(m.msgDelay(), m.onStepReturn, run)
}

// stepReturn receives the last cohort's completion back at the CN.
func (m *Machine) stepReturn(run *stepRun) {
	if run.dead {
		return
	}
	if m.inj != nil && m.inj.MsgLost() {
		// The DPN->CN completion reply vanished; the CN will time out and
		// re-execute the step.
		m.met.MsgLost()
		m.faultEvent("msgloss", run.home)
		m.armTimeout(run)
		return
	}
	m.cn.submit(cnJob{op: opStepDone, e: run.e, run: run})
}

// stepDone is the contStepDone continuation: the CN receive is paid, the
// transaction advances to its next step (or commit).
func (m *Machine) stepDone(run *stepRun) {
	if run.dead {
		return
	}
	e := run.e
	e.run = nil
	m.retireRun(run)
	if e.stepSpan != 0 {
		m.ob.End(e.stepSpan, m.eng.Now())
		e.stepSpan = 0
	}
	m.met.StepExecuted()
	step := e.txn.StepIndex
	e.txn.StepIndex++
	if m.obs != nil {
		m.obs.StepDone(e.txn, step, m.eng.Now())
	}
	m.nextStep(e)
}

// commit coordinates two-phase commitment: validation (OPT certification),
// then commit CPU, release, and a system-wide wake-up.
func (m *Machine) commit(e *exec) {
	e.phase = phAtCN
	if m.ob.Enabled() {
		e.commitSpan = m.ob.Begin("commit", "txn", e.txn.ID, -1, -1,
			e.txnSpan, m.eng.Now())
	}
	m.cn.submit(cnJob{op: opCommit, e: e})
}

// commitBody is the opCommit job body: validation decides between the
// commit and the restart continuation.
func (m *Machine) commitBody(e *exec) (sim.Time, cnCont) {
	ok, vcpu := m.sch.Validate(e.txn)
	if !ok {
		m.met.Restart()
		m.obsRestart.Inc()
		e.txn.Restarts++
		return vcpu, cnCont{op: contCommitFail, e: e}
	}
	return vcpu + m.cfg.COTTime, cnCont{op: contCommitOK, e: e}
}

// commitFinish is the contCommitOK continuation.
func (m *Machine) commitFinish(e *exec) {
	m.sch.Committed(e.txn)
	e.txn.Status = model.Committed
	e.phase = phFinished
	m.active--
	m.completed++
	now := m.eng.Now()
	m.met.Completion(now, now-e.txn.Arrival)
	if m.svc != nil {
		m.window--
		m.epochRTs = append(m.epochRTs, now-e.txn.Arrival)
	}
	if m.ob.Enabled() {
		m.ob.End(e.commitSpan, now)
		e.commitSpan = 0
		m.ob.End(e.txnSpan, now)
		m.obsCommit.Inc()
		m.obsRetries.Observe(float64(e.txn.Restarts))
	}
	if m.obs != nil {
		m.obs.Committed(e.txn, now)
	}
	m.wakeCommit(e.txn)
	// The exec is fully retired (no queue, timer or event references a
	// committed transaction's wrapper) — recycle it for a future arrival.
	m.execPool = append(m.execPool, e)
}

// restartAfterDelay re-admits an aborted transaction, after the configured
// restart delay if one is set.
func (m *Machine) restartAfterDelay(e *exec) {
	if m.cfg.RestartDelay <= 0 {
		m.tryAdmit(e)
		return
	}
	e.phase = phAdmit
	d := m.cfg.RestartDelay
	if m.cfg.RestartJitter {
		d = sim.Time(float64(d) * (0.5 + m.restartRNG.Float64()))
		if d < 1 {
			d = 1
		}
	}
	m.eng.SchedulePayload(d, m.onRetryAdmit, e)
}

// wakeCommit reconsiders everything a commit can unblock: requests blocked
// on the released files, every policy-delayed request, and the pending
// admissions (in FIFO order).
func (m *Machine) wakeCommit(t *model.Txn) {
	files, _ := t.LockNeedSorted()
	for _, f := range files {
		list := m.blocked[f]
		if len(list) == 0 {
			continue
		}
		// Keep the entry's backing array: re-blocks on this file reuse it
		// (requestLock only queues a CN job, so nothing re-blocks while the
		// old list is being walked).
		m.blocked[f] = list[:0]
		for i, e := range list {
			list[i] = nil
			m.requestLock(e)
		}
	}
	m.wakeDelayed()
	if len(m.admitQ) > 0 {
		q := m.admitQ
		m.admitQ = m.admitSpare[:0]
		for i, e := range q {
			q[i] = nil
			m.tryAdmit(e)
		}
		m.admitSpare = q[:0]
	}
}

// wakeDelayed resubmits every policy-delayed request.
func (m *Machine) wakeDelayed() {
	if len(m.delayed) == 0 {
		return
	}
	q := m.delayed
	m.delayed = m.delayedSpare[:0]
	for i, e := range q {
		q[i] = nil
		m.requestLock(e)
	}
	m.delayedSpare = q[:0]
}

// InFlight reports how many submitted transactions have not yet committed
// (including pending admissions).
func (m *Machine) InFlight() int {
	return int(m.nextID) - m.completed
}

// DebugDump prints the waiting structures (debugging aid for stall
// diagnosis; not part of the public API).
func (m *Machine) DebugDump() {
	fmt.Printf("debug: admitQ=%d delayed=%d active=%d\n", len(m.admitQ), len(m.delayed), m.active)
	for f, list := range m.blocked {
		if len(list) == 0 {
			continue
		}
		ids := make([]int64, len(list))
		for i, e := range list {
			ids[i] = e.txn.ID
		}
		fmt.Printf("debug: blocked on file %d: %v\n", f, ids)
	}
	for i, d := range m.dpns {
		if d.queueLen() > 0 {
			fmt.Printf("debug: dpn %d ring=%d\n", i, d.queueLen())
		}
	}
	fmt.Printf("debug: cn queue=%d\n", m.cn.queueLen())
}
