package machine

import (
	"bytes"
	"reflect"
	"testing"

	"batchsched/internal/admit"
	"batchsched/internal/metrics"
	"batchsched/internal/obs"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/trace"
	"batchsched/internal/workload"
)

// The parallel decision engine (Params.DecisionWorkers; sched/parallel.go,
// DESIGN.md §17) must be observationally identical to the sequential
// scheduler: same grant/block/delay outcomes, same CPU charges, same audit
// records, same event traces — whether candidate scoring runs inline
// (DecisionWorkers 0/1) or fanned over a worker pool (>1). These tests
// mirror the PDES differential suite one layer down: the oracle is the
// DecisionWorkers=0 scheduler the rest of the repo's suite already proves.

// decisionDiffRun runs one full machine at the given decision fan-out and
// returns the summary plus the serialized event trace and scheduler audit.
// workers is Params.DecisionWorkers (0 = sequential oracle).
func decisionDiffRun(t *testing.T, name string, cfg Config, workers int, seed int64, wl Generator) (metrics.Summary, []byte, []byte) {
	t.Helper()
	p := sched.DefaultParams()
	p.DecisionWorkers = workers
	if wl == nil {
		wl = workload.NewExp1(16)
	}
	m, err := New(cfg, sched.MustNew(name, p), wl, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	var tr bytes.Buffer
	m.SetObserver(trace.NewWriter(&tr))
	o := obs.New()
	m.SetObs(o)
	sum := m.Run()
	var au bytes.Buffer
	if err := o.WriteAuditJSONL(&au); err != nil {
		t.Fatal(err)
	}
	return sum, tr.Bytes(), au.Bytes()
}

// decisionDiffCompare runs the sequential oracle and every parallel width
// against it, failing on the first summary, trace or audit divergence.
func decisionDiffCompare(t *testing.T, label, name string, cfg Config, seed int64, wl Generator) {
	t.Helper()
	baseSum, baseTr, baseAu := decisionDiffRun(t, name, cfg, 0, seed, wl)
	for _, w := range []int{1, 4, 8} {
		sum, tr, au := decisionDiffRun(t, name, cfg, w, seed, wl)
		if !reflect.DeepEqual(baseSum, sum) {
			t.Errorf("%s workers=%d: summary diverged:\nseq: %+v\npar: %+v", label, w, baseSum, sum)
			return
		}
		if !bytes.Equal(baseTr, tr) {
			t.Errorf("%s workers=%d: traces differ (%d vs %d bytes)", label, w, len(baseTr), len(tr))
			return
		}
		if !bytes.Equal(baseAu, au) {
			t.Errorf("%s workers=%d: audit logs differ (%d vs %d bytes)", label, w, len(baseAu), len(au))
			return
		}
	}
}

// TestDecisionDiffGrid sweeps GOW and LOW across a DD ladder and the fault
// cocktail: byte-identical traces and audit JSONL at DecisionWorkers
// 1, 4 and 8 against the sequential oracle.
func TestDecisionDiffGrid(t *testing.T) {
	for _, name := range []string{"GOW", "LOW"} {
		for _, dd := range []int{1, 4, 16} {
			for _, withFaults := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.NumNodes = 16
				cfg.DD = dd
				cfg.ArrivalRate = 0.6
				cfg.Duration = 120_000 * sim.Millisecond
				if withFaults {
					cfg.Faults = pdesDiffFaults
				}
				label := name
				if withFaults {
					label += "+faults"
				}
				decisionDiffCompare(t, label, name, cfg, 7, nil)
			}
		}
	}
}

// TestDecisionDiffRandom is the 300-seed differential: each seed draws a
// scheduler, declustering degree, load level and fault toggle, and every
// DecisionWorkers width must reproduce the sequential run byte-for-byte.
func TestDecisionDiffRandom(t *testing.T) {
	seeds := int64(300)
	if testing.Short() {
		seeds = 40
	}
	for seed := int64(1); seed <= seeds; seed++ {
		g := sim.NewRNG(seed)
		name := "GOW"
		if g.Intn(2) == 0 {
			name = "LOW"
		}
		cfg := DefaultConfig()
		cfg.NumNodes = 8
		cfg.DD = []int{1, 2, 4, 8}[g.Intn(4)]
		cfg.ArrivalRate = 0.3 + 0.15*float64(g.Intn(5))
		cfg.Duration = 60_000 * sim.Millisecond
		if g.Intn(2) == 0 {
			cfg.Faults = pdesDiffFaults
		}
		decisionDiffCompare(t, name, name, cfg, seed, nil)
	}
}

// TestDecisionDiffScan pins the batch-scan workload — long declared scans
// build the deep WTPG chains where GOW's Phase-2 fan-out and LOW's K-wide
// candidate scoring actually have work to split.
func TestDecisionDiffScan(t *testing.T) {
	for _, name := range []string{"GOW", "LOW"} {
		cfg := DefaultConfig()
		cfg.NumNodes = 16
		cfg.DD = 16
		cfg.ArrivalRate = 0.15
		cfg.Duration = 120_000 * sim.Millisecond
		decisionDiffCompare(t, name+"/scan", name, cfg, 11, workload.NewBatchScan(16, 32))
	}
}

// decisionDiffService runs one service-mode machine (open arrivals through
// the admission service, so fillWindow's batched PrescreenAdmits path is
// exercised) and returns the summary, epoch stream and audit.
func decisionDiffService(t *testing.T, name string, cfg Config, workers int, seed int64) (metrics.Summary, []admit.EpochStats, []byte) {
	t.Helper()
	p := sched.DefaultParams()
	p.DecisionWorkers = workers
	m, err := New(cfg, sched.MustNew(name, p), workload.NewExp1(cfg.NumFiles), sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	var epochs []admit.EpochStats
	m.SetEpochHook(func(es admit.EpochStats) { epochs = append(epochs, es) })
	o := obs.New()
	m.SetObs(o)
	sum := m.Run()
	var au bytes.Buffer
	if err := o.WriteAuditJSONL(&au); err != nil {
		t.Fatal(err)
	}
	return sum, epochs, au.Bytes()
}

// TestDecisionDiffService compares service-mode runs — the admission
// prescreen (sched.AdmitScreener) only fires on multi-transaction window
// refills, which need open arrivals queuing behind a full window.
func TestDecisionDiffService(t *testing.T) {
	for _, name := range []string{"GOW", "LOW"} {
		for seed := int64(1); seed <= 10; seed++ {
			cfg := svcConfig(0.25)
			baseSum, baseEp, baseAu := decisionDiffService(t, name, cfg, 0, seed)
			for _, w := range []int{1, 4, 8} {
				sum, ep, au := decisionDiffService(t, name, cfg, w, seed)
				if !reflect.DeepEqual(baseSum, sum) {
					t.Fatalf("%s seed=%d workers=%d: service summary diverged:\nseq: %+v\npar: %+v",
						name, seed, w, baseSum, sum)
				}
				if !reflect.DeepEqual(baseEp, ep) {
					t.Fatalf("%s seed=%d workers=%d: epoch streams differ (%d vs %d epochs)",
						name, seed, w, len(baseEp), len(ep))
				}
				if !bytes.Equal(baseAu, au) {
					t.Fatalf("%s seed=%d workers=%d: audit logs differ (%d vs %d bytes)",
						name, seed, w, len(baseAu), len(au))
				}
			}
		}
	}
}
