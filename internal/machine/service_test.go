package machine

import (
	"encoding/json"
	"testing"

	"batchsched/internal/admit"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// svcConfig is a short service run: small window, fast epochs, a small
// queue so backpressure paths are reachable in seconds of virtual time.
func svcConfig(lambda float64) Config {
	cfg := DefaultConfig()
	cfg.ArrivalRate = lambda
	cfg.Duration = 300_000 * sim.Millisecond
	pol := admit.DefaultPolicy()
	pol.MPL = 4
	pol.Epoch = 250 * sim.Millisecond
	pol.MaxQueue = 32
	pol.QueueSLO = [admit.NumClasses]sim.Time{
		admit.Batch:       60 * sim.Second,
		admit.Interactive: 10 * sim.Second,
	}
	pol.OverloadP95 = 20 * sim.Second
	cfg.Service = &pol
	return cfg
}

func runService(t *testing.T, cfg Config, seed int64) (*Machine, []admit.EpochStats) {
	t.Helper()
	m, err := New(cfg, sched.MustNew("GOW", sched.DefaultParams()),
		workload.NewExp1(cfg.NumFiles), sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	var epochs []admit.EpochStats
	m.SetEpochHook(func(es admit.EpochStats) { epochs = append(epochs, es) })
	m.Run()
	return m, epochs
}

func TestServiceConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MPL = 4 },         // window comes from the policy
		func(c *Config) { c.ArrivalRate = 0 }, // needs an arrival process
		func(c *Config) { c.Service.MPL = 0 }, // invalid policy
		func(c *Config) { c.Service.InteractiveFraction = 2 },
	}
	for i, mutate := range bad {
		cfg := svcConfig(1.0)
		pol := *cfg.Service // keep mutations test-local
		cfg.Service = &pol
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad service config %d validated", i)
		}
	}
	if err := svcConfig(1.0).Validate(); err != nil {
		t.Fatalf("service config invalid: %v", err)
	}
}

// TestServiceModerateLoad: at a sustainable rate the service admits nearly
// everything, epochs fire, and the books balance.
func TestServiceModerateLoad(t *testing.T) {
	cfg := svcConfig(0.15) // Pattern1 is ~7.2 s of scan work; MPL 4 sustains ~0.25/s
	m, epochs := runService(t, cfg, 7)
	sum := m.met.Summarize(cfg.Duration)
	if sum.Completions == 0 {
		t.Fatal("no completions")
	}
	if len(epochs) == 0 {
		t.Fatal("no epochs emitted")
	}
	st := m.Service().Stats()
	if st.Arrivals != sum.Arrivals {
		t.Fatalf("service arrivals %d != collector arrivals %d", st.Arrivals, sum.Arrivals)
	}
	// Every offered transaction is queued, admitted, shed, or still waiting.
	if st.Enqueued+st.Shed[admit.ShedQueueFull]+st.Shed[admit.ShedOverload] != st.Arrivals {
		t.Fatalf("arrival books: %+v", st)
	}
	if float64(st.TotalShed()) > 0.05*float64(st.Arrivals) {
		t.Fatalf("moderate load shed %d of %d arrivals", st.TotalShed(), st.Arrivals)
	}
	last := epochs[len(epochs)-1]
	if last.Epoch != len(epochs) {
		t.Fatalf("epoch numbering: last %d over %d epochs", last.Epoch, len(epochs))
	}
	if last.Cum.Arrivals != st.Arrivals {
		t.Fatalf("cumulative epoch stats diverge from service stats")
	}
}

// TestServiceOverload: far above capacity, shedding activates, the queue
// stays bounded, and the transactions actually admitted still meet the
// response-time SLO (backpressure protects the window).
func TestServiceOverload(t *testing.T) {
	cfg := svcConfig(20.0) // capacity for Exp1 at MPL 4 is a fraction of this
	m, epochs := runService(t, cfg, 11)
	sum := m.met.Summarize(cfg.Duration)
	st := m.Service().Stats()
	if st.TotalShed() == 0 {
		t.Fatal("overload shed nothing")
	}
	if st.Shed[admit.ShedOverload] == 0 && st.Shed[admit.ShedQueueFull] == 0 && st.Shed[admit.ShedDeadline] == 0 {
		t.Fatalf("no backpressure reason fired: %+v", st.Shed)
	}
	if st.DepthHighWater > cfg.Service.MaxQueue {
		t.Fatalf("queue exceeded bound: high water %d > %d", st.DepthHighWater, cfg.Service.MaxQueue)
	}
	for _, es := range epochs {
		if es.QueueDepth > cfg.Service.MaxQueue {
			t.Fatalf("epoch %d queue depth %d over bound", es.Epoch, es.QueueDepth)
		}
		if es.Active > cfg.Service.MPL {
			t.Fatalf("epoch %d active %d over window %d", es.Epoch, es.Active, cfg.Service.MPL)
		}
	}
	overloadedEpochs := 0
	for _, es := range epochs {
		if es.Overloaded {
			overloadedEpochs++
		}
	}
	if overloadedEpochs == 0 {
		t.Fatal("overload control never engaged")
	}
	// The admitted transactions' p95 stays within the paper's 70 s criterion:
	// shedding absorbed the excess instead of the window.
	if sum.P95RT > 70*sim.Second {
		t.Fatalf("admitted p95 %v exceeds 70 s under overload", sum.P95RT)
	}
	// Collector and service agree on shed counts.
	if sum.Sheds != st.TotalShed() || sum.ShedOverload != st.Shed[admit.ShedOverload] {
		t.Fatalf("collector sheds %d/%d != service %d/%d",
			sum.Sheds, sum.ShedOverload, st.TotalShed(), st.Shed[admit.ShedOverload])
	}
}

// TestServiceEviction: with EvictOnOverload set, overloaded epochs evict
// blocked batch transactions and the books still balance.
func TestServiceEviction(t *testing.T) {
	cfg := svcConfig(20.0)
	pol := *cfg.Service
	pol.EvictOnOverload = true
	cfg.Service = &pol
	m, _ := runService(t, cfg, 13)
	sum := m.met.Summarize(cfg.Duration)
	st := m.Service().Stats()
	if st.Evictions == 0 {
		t.Skip("no eviction opportunity at this seed (no blocked batch txn during overloaded epochs)")
	}
	if sum.Evictions != st.Evictions {
		t.Fatalf("collector evictions %d != service %d", sum.Evictions, st.Evictions)
	}
	if sum.Completions == 0 {
		t.Fatal("no completions with eviction enabled")
	}
}

// TestServiceDeterminism: same seed, same config → byte-identical summary
// and epoch trail; a different seed diverges.
func TestServiceDeterminism(t *testing.T) {
	cfg := svcConfig(2.0)
	m1, e1 := runService(t, cfg, 42)
	m2, e2 := runService(t, cfg, 42)
	s1, _ := json.Marshal(m1.met.Summarize(cfg.Duration))
	s2, _ := json.Marshal(m2.met.Summarize(cfg.Duration))
	if string(s1) != string(s2) {
		t.Fatalf("same-seed summaries differ:\n%s\n%s", s1, s2)
	}
	t1, _ := json.Marshal(e1)
	t2, _ := json.Marshal(e2)
	if string(t1) != string(t2) {
		t.Fatal("same-seed epoch trails differ")
	}
	m3, _ := runService(t, cfg, 43)
	s3, _ := json.Marshal(m3.met.Summarize(cfg.Duration))
	if string(s1) == string(s3) {
		t.Fatal("different seeds produced identical summaries")
	}
}

// TestServiceInteractivePriority: interactive arrivals carry the earlier
// deadline, so under load their admission share beats their arrival share.
func TestServiceInteractivePriority(t *testing.T) {
	cfg := svcConfig(8.0)
	pol := *cfg.Service
	pol.InteractiveFraction = 0.3
	cfg.Service = &pol
	m, _ := runService(t, cfg, 17)
	st := m.Service().Stats()
	if st.Admitted[admit.Interactive] == 0 {
		t.Fatal("no interactive admissions")
	}
	admitted := float64(st.TotalAdmitted())
	interShare := float64(st.Admitted[admit.Interactive]) / admitted
	if interShare < 0.3 {
		t.Fatalf("interactive admission share %.2f below arrival share 0.30 — deadline ordering not prioritizing", interShare)
	}
}
