package machine

import (
	"fmt"

	"batchsched/internal/sim"
)

// The fast-forward service engine: between ring-membership changes
// (arrival, completion, crash, straggler toggle, cohort death) round-robin
// with fixed quanta is closed-form, so instead of one calendar event per
// quantum the node keeps exactly one conceptual service "in flight"
// (svcStart..svcEnd, mirroring the quantum the stepped engine would have
// booked) and schedules a single event at the analytically computed next
// completion. Whenever anything looks at or perturbs the ring — an arrival,
// a crash, a straggler toggle, a dead mark, a queue-length probe, a busy
// gauge — the boundaries between svcEnd and the current virtual time are
// replayed onto the ring first, so every observer sees exactly the state
// the stepped engine would have shown it.
//
// Equivalence with the stepped engine rests on two facts. First, inside an
// epoch (no ring change) every service is a full quantum: a short or final
// slice implies a completion, which ends the epoch — so replaying
// boundaries strictly before a perturbation can never cross a completion,
// and per-service busy times (each rounded from the same slice exactly as
// the stepped engine rounds its booking) sum to the same totals. Second,
// the completion event is booked with ScheduleAtPrio carrying the virtual
// time the stepped engine would have booked the final quantum at (the
// service's start), so among same-timestamp calendar events the coalesced
// completion sorts exactly where the stepped quantum event would have.

// startService begins the next service at virtual time t (which may lie in
// the past of the engine clock during a replay): dead cohorts at the cursor
// are dropped as of t, then the cohort at the cursor gets one quantum (or
// its remainder) under the current straggler factor.
func (d *dpn) startService(t sim.Time) {
	d.dropDeadAt(t)
	if len(d.ring) == 0 {
		d.busy = false
		return
	}
	c := d.ring[d.cur]
	slice := c.quantum
	if c.remaining < slice {
		slice = c.remaining
	}
	d.svcStart = t
	d.svcSlice = slice
	d.svcElapsed = d.slowRound(slice)
	d.svcEnd = t + d.svcElapsed
	d.busy = true
}

// applyBoundary applies the in-flight service's end: charge its busy time,
// apply the slice to the cohort at the cursor (drop, complete or rotate —
// the exact body of the stepped engine's quantum handler), and start the
// next service at the boundary instant.
func (d *dpn) applyBoundary() {
	b := d.svcEnd
	d.met.DPNBusy(d.id, d.svcElapsed)
	c := d.ring[d.cur]
	if d.svcElapsed != d.slowRound(c.quantum) {
		// A short slice: the stepped booking chain is irregular here, so
		// this boundary anchors the tie keys of later completions.
		d.anchor = b
		d.anchorPre = d.svcStart
		d.anchorStamp = d.stamp()
	}
	if c.dead {
		d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
		d.ob.End(c.span, b)
		d.startService(b)
		return
	}
	c.remaining -= d.svcSlice
	if c.remaining <= 0 {
		d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
		d.ob.End(c.span, b)
		if d.inWave {
			// Concurrent prepare phase: the completion callback touches
			// machine-shared state, so it is deferred to the sequential
			// commit phase (waveCommit runs it in member order).
			d.waveDone = append(d.waveDone, c)
		} else if c.done != nil {
			c.done()
		} else if d.complete != nil {
			d.complete(c)
		}
	} else {
		d.cur++
	}
	d.startService(b)
}

// advanceTo replays every service boundary strictly before t. Inside an
// epoch all such boundaries are full quanta or dead-cohort drops; crossing
// a completion would mean the forecast missed a ring change, which is a
// bug worth dying loudly for.
func (d *dpn) advanceTo(t sim.Time) {
	for d.busy && d.svcEnd < t {
		if c := d.ring[d.cur]; !c.dead && c.remaining <= d.svcSlice {
			panic(fmt.Sprintf("machine: dpn %d fast-forward crossed a completion at %v advancing to %v",
				d.id, d.svcEnd, t))
		}
		d.applyBoundary()
	}
}

// flush applies every boundary up to and including the measurement horizon
// at the end of a run: the stepped engine's quantum events at exactly the
// horizon still fire (charging their busy time), while the fast-forward
// completion event may lie beyond it, so the epoch's tail must be replayed
// before the collector is summarized. Boundaries at the horizon cannot be
// completions — a completion at or before the horizon fires as a calendar
// event before the run ends.
func (d *dpn) flush(t sim.Time) {
	if d.stepped {
		return
	}
	for d.busy && d.svcEnd <= t {
		d.applyBoundary()
	}
}

// ringChange (pre-bound as d.onRing) is the single fast-forward calendar
// event: the forecast completion. It replays the epoch's interior
// boundaries, applies the completion itself, and books the next forecast —
// after the completion callbacks, exactly where the stepped engine books
// its next quantum.
func (d *dpn) ringChange(now sim.Time) {
	d.ffEvent = nil
	if d.wavePrepared {
		// The replay and forecast already ran in the wave's concurrent
		// prepare phase; only the machine-shared effects remain.
		d.waveCommit()
		return
	}
	d.advanceTo(now)
	if !d.busy || d.svcEnd != now {
		// (unreachable when the reschedule discipline is intact)
		panic(fmt.Sprintf("machine: dpn %d ring-change event at %v found no boundary (busy=%v svcEnd=%v)",
			d.id, now, d.busy, d.svcEnd))
	}
	d.applyBoundary()
	d.reschedule()
}

// reschedule brings the scheduled completion event in line with the current
// forecast. An unchanged forecast keeps the existing booking: lockstep
// sibling cohorts on different nodes book their completions in delivery
// order at the same instant, and keeping the original event preserves that
// FIFO tie order (and saves two heap operations).
func (d *dpn) reschedule() {
	at, prio, tie, ok := d.computeBooking()
	if !ok {
		// Idle, or every resident cohort is dead: the ring drains with no
		// further completion, its boundaries replayed by the next sync or
		// flush.
		if d.ffEvent != nil {
			d.ffEvent.Cancel()
			d.ffEvent = nil
		}
		return
	}
	if d.ffEvent != nil {
		if at == d.ffAt && prio == d.ffPrio && tie == d.ffTie {
			return
		}
		d.ffEvent.Cancel()
	}
	d.ffAt, d.ffPrio, d.ffTie = at, prio, tie
	d.ffEvent = d.bookCompletion(at, prio, tie)
}

// computeBooking derives the node's next completion booking — the forecast
// plus its tie genealogy — without touching the calendar, so the sharded
// engine can run it in a wave's concurrent prepare phase.
func (d *dpn) computeBooking() (at, prio sim.Time, tie sim.TieKey, ok bool) {
	if !d.busy {
		return 0, 0, sim.TieKey{}, false
	}
	at, prio, wq, ok := d.forecast()
	if !ok {
		return 0, 0, sim.TieKey{}, false
	}
	tie = sim.TieKey{Q: d.slowRound(wq), Anchor: d.anchor, Pre: d.anchorPre, Stamp: d.anchorStamp}
	if prio != d.svcStart && d.svcElapsed != tie.Q {
		// The completion lies beyond an in-flight service ending in a short
		// slice (a dying cohort's remainder): that boundary, though not yet
		// replayed, is the chain's true anchor.
		tie.Anchor, tie.Pre, tie.Stamp = d.svcEnd, d.svcStart, d.stamp()
	}
	return at, prio, tie, true
}

// bookCompletion places the completion event on the node's sub-calendar when
// the sharded engine is active, else on the merged calendar.
func (d *dpn) bookCompletion(at, prio sim.Time, tie sim.TieKey) *sim.Event {
	if d.sharded {
		return d.eng.ScheduleShardTie(d.id, at, prio, tie, d.onRing)
	}
	return d.eng.ScheduleAtTie(at, prio, tie, d.onRing)
}

// forecast computes the virtual time of the node's next cohort completion
// and the time the stepped engine would have booked the final quantum at
// (the completion event's tie-breaking priority). Requires an in-flight
// service.
//
// The in-flight slice may itself be final. Otherwise one walk over the ring
// (the rotation following the in-flight service) resolves the first round —
// dead cohorts drop for free, and any cohort within one quantum of done
// completes there. If a full round passes with no completion, every
// survivor needs n_i = ceil(remaining_i/quantum_i) further services, all
// interior rounds are full quanta, and the winner is the cohort minimizing
// the closed-form finish time
//
//	t1 + (n_i - 1)*R + P_i + final_i
//
// where t1 ends the first round, R is the full-round duration, P_i the
// full quanta served before cohort i within a round, and final_i its last
// (possibly short) slice — each term rounded under the straggler factor
// exactly as the stepped engine would round that booking.
func (d *dpn) forecast() (at, prio, winQ sim.Time, ok bool) {
	k := len(d.ring)
	if c := d.ring[d.cur]; !c.dead && c.remaining <= d.svcSlice {
		return d.svcEnd, d.svcStart, c.quantum, true
	}
	t := d.svcEnd
	d.fcRem, d.fcQ, d.fcE = d.fcRem[:0], d.fcQ[:0], d.fcE[:0]
	for j := 1; j <= k; j++ {
		i := d.cur + j
		if i >= k {
			i -= k
		}
		c := d.ring[i]
		if c.dead {
			continue
		}
		r := c.remaining
		if i == d.cur {
			r -= d.svcSlice
		}
		if r <= c.quantum {
			return t + d.slowRound(r), t, c.quantum, true
		}
		full := d.slowRound(c.quantum)
		t += full
		d.fcRem = append(d.fcRem, r-c.quantum)
		d.fcQ = append(d.fcQ, c.quantum)
		d.fcE = append(d.fcE, full)
	}
	if len(d.fcRem) == 0 {
		return 0, 0, 0, false // every resident cohort is dead
	}
	var round sim.Time
	for _, e := range d.fcE {
		round += e
	}
	var bestAt, bestPrio, bestQ, prefix sim.Time
	for o, rem := range d.fcRem {
		q := d.fcQ[o]
		n := (rem + q - 1) / q
		start := t + (n-1)*round + prefix
		done := start + d.slowRound(rem-(n-1)*q)
		// Survivor services are sequential and at least 1µs long, so a
		// strictly-earlier winner exists; on the (impossible) tie the
		// rotation-order first survivor is kept.
		if o == 0 || done < bestAt {
			bestAt, bestPrio, bestQ = done, start, q
		}
		prefix += d.fcE[o]
	}
	return bestAt, bestPrio, bestQ, true
}
