package machine

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"batchsched/internal/fault"
	"batchsched/internal/metrics"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/trace"
	"batchsched/internal/workload"
)

// The fast-forward DPN engine (dpn_ff.go) must be observationally identical
// to the quantum-stepped oracle (dpn_stepped.go): same completion times,
// same calendar ordering among simultaneous events, same metrics. These
// tests compare the two engines over randomized node-level schedules and
// full machine runs, byte for byte where the output is serial.

// ffDiffSchedule drives one dpn through a randomized schedule of arrivals,
// cohort deaths, node crashes/restores, straggler toggles and queue-length
// probes, and returns a serial log of everything observable. The schedule is
// derived only from the seed, so both engines replay exactly the same one.
func ffDiffSchedule(t *testing.T, seed int64, stepped bool) []string {
	t.Helper()
	g := sim.NewRNG(seed)
	eng := sim.NewEngine()
	met := metrics.NewCollector(1, 0)
	d := newDPN(0, eng, met)
	d.stepped = stepped
	var log []string

	type arrival struct {
		c     *cohort
		added bool
		done  bool
	}
	n := 5 + g.Intn(20)
	globalQ := sim.Time(1+g.Intn(1500)) * sim.Millisecond
	uniform := g.Intn(2) == 0 // the machine always uses one quantum per run
	for i := 0; i < n; i++ {
		i := i
		at := sim.Time(g.Intn(30_000)) * sim.Millisecond
		rem := sim.Time(g.Intn(5000)) * sim.Millisecond
		if g.Intn(10) == 0 {
			rem = 0
		}
		q := globalQ
		if !uniform {
			q = sim.Time(1+g.Intn(1500)) * sim.Millisecond
		}
		a := &arrival{c: &cohort{remaining: rem, quantum: q}}
		a.c.done = func() {
			a.done = true
			log = append(log, fmt.Sprintf("done %d@%v", i, eng.Now()))
		}
		eng.ScheduleAt(at, func(now sim.Time) {
			if d.down {
				return
			}
			a.added = true
			d.add(a.c)
		})
		if g.Intn(5) == 0 {
			dieAt := at + sim.Time(g.Intn(3000))*sim.Millisecond
			eng.ScheduleAt(dieAt, func(now sim.Time) {
				if a.done || !a.added {
					return
				}
				d.sync() // boundaries before the mark served the cohort live
				a.c.dead = true
				d.deadMarked()
			})
		}
	}
	for i := 0; i < 2; i++ {
		crashAt := sim.Time(g.Intn(30_000)) * sim.Millisecond
		backAt := crashAt + sim.Time(2000+g.Intn(3000))*sim.Millisecond
		eng.ScheduleAt(crashAt, func(now sim.Time) {
			if d.down {
				return
			}
			killed := d.crash()
			log = append(log, fmt.Sprintf("crash@%v killed=%d", now, len(killed)))
		})
		eng.ScheduleAt(backAt, func(now sim.Time) { d.restore() })
	}
	for i := 0; i < 2; i++ {
		onAt := sim.Time(g.Intn(30_000)) * sim.Millisecond
		offAt := onAt + sim.Time(1000+g.Intn(4000))*sim.Millisecond
		eng.ScheduleAt(onAt, func(now sim.Time) { d.setSlow(1.5) })
		eng.ScheduleAt(offAt, func(now sim.Time) { d.setSlow(1) })
	}
	for i := 0; i < 10; i++ {
		at := sim.Time(g.Intn(40_000)) * sim.Millisecond
		eng.ScheduleAt(at, func(now sim.Time) {
			log = append(log, fmt.Sprintf("q=%d@%v", d.queueLen(), now))
		})
	}
	horizon := sim.Time(1 << 50)
	eng.Run(horizon)
	d.flush(horizon)
	log = append(log, fmt.Sprintf("busy=%v", met.DPNBusyTime(0)))
	return log
}

// TestFFDiffRandomSchedules is the node-level differential property test:
// arbitrary arrival/crash/straggler/death schedules must produce identical
// completion times, observation logs and busy totals under both engines.
func TestFFDiffRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 500; seed++ {
		ff := ffDiffSchedule(t, seed, false)
		st := ffDiffSchedule(t, seed, true)
		if len(ff) != len(st) {
			t.Fatalf("seed %d: %d vs %d log entries\nff: %v\nstepped: %v", seed, len(ff), len(st), ff, st)
		}
		for i := range ff {
			if ff[i] != st[i] {
				t.Fatalf("seed %d entry %d: ff %q stepped %q\nff: %v\nstepped: %v", seed, i, ff[i], st[i], ff, st)
			}
		}
	}
}

// ffDiffMachine builds one machine for the differential grid.
func ffDiffMachine(t *testing.T, name string, cfg Config, stepped bool, seed int64) *Machine {
	t.Helper()
	cfg.QuantumStepped = stepped
	m, err := New(cfg, sched.MustNew(name, sched.DefaultParams()), workload.NewExp1(16), sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFFDiffSummaries compares end-of-run summaries for every scheduler over
// a DD ladder, failure-free and with the full fault cocktail.
func TestFFDiffSummaries(t *testing.T) {
	faults := fault.Config{
		MTBF: 80 * sim.Second, MTTR: 5 * sim.Second,
		StragglerMTBF: 150 * sim.Second, StragglerDuration: 10 * sim.Second, StragglerFactor: 3,
		MsgLoss: 0.03, MsgTimeout: 5 * sim.Second, MsgRetries: 2,
	}
	for _, name := range []string{"NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"} {
		for _, dd := range []int{1, 2, 4, 16} {
			for _, withFaults := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.NumNodes = 16
				cfg.DD = dd
				cfg.ArrivalRate = 0.6
				cfg.Duration = 200_000 * sim.Millisecond
				if withFaults {
					cfg.Faults = faults
				}
				ff := ffDiffMachine(t, name, cfg, false, 7).Run()
				st := ffDiffMachine(t, name, cfg, true, 7).Run()
				if !reflect.DeepEqual(ff, st) {
					t.Errorf("%s DD=%d faults=%v diverged:\nff:      %+v\nstepped: %+v",
						name, dd, withFaults, ff, st)
				}
			}
		}
	}
}

// TestFFDiffTraces compares the full serialized event traces — every
// dispatch, grant, block, commit, restart and fault record in order — so an
// event-ordering difference that happens not to move the summary still
// fails.
func TestFFDiffTraces(t *testing.T) {
	faults := fault.Config{
		MTBF: 80 * sim.Second, MTTR: 5 * sim.Second,
		StragglerMTBF: 150 * sim.Second, StragglerDuration: 10 * sim.Second, StragglerFactor: 3,
		MsgLoss: 0.03, MsgTimeout: 5 * sim.Second, MsgRetries: 2,
	}
	run := func(name string, dd int, withFaults, stepped bool) []byte {
		cfg := DefaultConfig()
		cfg.NumNodes = 16
		cfg.DD = dd
		cfg.ArrivalRate = 0.6
		cfg.Duration = 200_000 * sim.Millisecond
		if withFaults {
			cfg.Faults = faults
		}
		m := ffDiffMachine(t, name, cfg, stepped, 11)
		var buf bytes.Buffer
		m.SetObserver(trace.NewWriter(&buf))
		m.Run()
		return buf.Bytes()
	}
	for _, tc := range []struct {
		name   string
		dd     int
		faults bool
	}{
		{"NODC", 1, false}, {"GOW", 2, false}, {"LOW", 4, false},
		{"ASL", 16, false}, {"GOW", 2, true}, {"OPT", 4, true},
	} {
		ff := run(tc.name, tc.dd, tc.faults, false)
		st := run(tc.name, tc.dd, tc.faults, true)
		if !bytes.Equal(ff, st) {
			t.Errorf("%s DD=%d faults=%v: traces differ (%d vs %d bytes)",
				tc.name, tc.dd, tc.faults, len(ff), len(st))
		}
	}
}

// TestFFDiffBatchScan covers the benchmark configuration itself: whole-file
// 32-object scans at full declustering, where a cohort coalesces the most
// quanta per completion event, must still trace byte-identically.
func TestFFDiffBatchScan(t *testing.T) {
	run := func(stepped bool) []byte {
		cfg := DefaultConfig()
		cfg.NumNodes = 16
		cfg.DD = 16
		cfg.ArrivalRate = 0.15
		cfg.Duration = 200_000 * sim.Millisecond
		cfg.QuantumStepped = stepped
		m, err := New(cfg, sched.MustNew("GOW", sched.DefaultParams()), workload.NewBatchScan(16, 32), sim.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		m.SetObserver(trace.NewWriter(&buf))
		m.Run()
		return buf.Bytes()
	}
	ff, st := run(false), run(true)
	if !bytes.Equal(ff, st) {
		t.Errorf("batch-scan traces differ (%d vs %d bytes)", len(ff), len(st))
	}
}

// TestDPNDropDeadRunCursor is the regression test for batched dead-cohort
// removal: several consecutive (and wrapping) dead cohorts must be spliced
// out without corrupting the rotation cursor, under both engines.
func TestDPNDropDeadRunCursor(t *testing.T) {
	for _, stepped := range []bool{false, true} {
		eng := sim.NewEngine()
		met := metrics.NewCollector(1, 0)
		d := newDPN(0, eng, met)
		d.stepped = stepped
		q := 100 * sim.Millisecond
		var order []string
		mk := func(id string, rem sim.Time) *cohort {
			c := &cohort{remaining: rem, quantum: q}
			c.done = func() { order = append(order, fmt.Sprintf("%s@%v", id, eng.Now())) }
			d.add(c)
			return c
		}
		// Ring: A B C D E, added at t=0. After A's first quantum, kill B, C
		// (consecutive run after the cursor) and E (wrapping run), leaving
		// A and D to alternate.
		a := mk("A", 250*sim.Millisecond)
		b := mk("B", 400*sim.Millisecond)
		c := mk("C", 400*sim.Millisecond)
		e4 := mk("D", 150*sim.Millisecond)
		e5 := mk("E", 400*sim.Millisecond)
		_ = a
		eng.ScheduleAt(150*sim.Millisecond, func(now sim.Time) {
			d.sync() // boundaries before the mark served the cohorts live
			b.dead = true
			c.dead = true
			e5.dead = true
			d.deadMarked()
		})
		_ = e4
		eng.Run(1 << 40)
		d.flush(1 << 40)
		// A runs 0-100, then B 100-200 (killed mid-service at 150, it still
		// burns its booked quantum), C is dropped for free at 200, D runs
		// 200-300, E is dropped for free at 300, A 300-400, D's final slice
		// 400-450, A's final slice 450-500 (times in ms).
		want := []string{"D@0.450s", "A@0.500s"}
		if len(order) != len(want) {
			t.Fatalf("stepped=%v: completions %v, want %v", stepped, order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("stepped=%v: completions %v, want %v", stepped, order, want)
			}
		}
		if got := d.queueLen(); got != 0 {
			t.Fatalf("stepped=%v: ring not empty at end: %d", stepped, got)
		}
		if d.cur != 0 {
			t.Fatalf("stepped=%v: cursor not reset: %d", stepped, d.cur)
		}
	}
}
