package machine

import (
	"math"
	"testing"

	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

// TestWorkConservation checks the machine's fundamental accounting law: the
// DPN busy time over a run equals the actual I/O demand of completed
// transactions plus the partial progress of in-flight ones — no work is
// created, lost, or double-served. Restart-free schedulers only (aborted
// attempts legitimately add re-executed work).
func TestWorkConservation(t *testing.T) {
	for _, name := range []string{"NODC", "ASL", "LOW", "C2PL"} {
		for _, dd := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.ArrivalRate = 0.5
			cfg.DD = dd
			cfg.Duration = 300_000 * sim.Millisecond
			m, err := New(cfg, sched.MustNew(name, sched.DefaultParams()), uniformGen{}, sim.NewRNG(13))
			if err != nil {
				t.Fatal(err)
			}
			sum := m.Run()

			busySeconds := 0.0
			for _, u := range sum.PerDPNUtilization {
				u *= cfg.Duration.Seconds()
				busySeconds += u
			}
			// Completed work: 7.2 objects (= 7.2 node-seconds) each.
			completedWork := float64(sum.Completions) * 7.2
			if busySeconds < completedWork-1e-6 {
				t.Errorf("%s dd=%d: busy %.1fs < completed work %.1fs (work created from nothing)",
					name, dd, busySeconds, completedWork)
			}
			// Upper bound: completed plus everything in flight fully served.
			inflight := float64(sum.Arrivals - sum.Completions)
			if busySeconds > completedWork+inflight*7.2+1e-6 {
				t.Errorf("%s dd=%d: busy %.1fs exceeds all possible work %.1fs",
					name, dd, busySeconds, completedWork+inflight*7.2)
			}
		}
	}
}

// TestStepsAccounting: granted requests equal executed steps plus in-flight
// ones, and completions times steps-per-txn equal executed steps for
// restart-free runs that drain.
func TestStepsAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0.2
	cfg.Duration = 500_000 * sim.Millisecond
	m, err := New(cfg, sched.MustNew("ASL", sched.DefaultParams()), uniformGen{}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	sum := m.Run()
	if sum.Completions == 0 {
		t.Fatal("no completions")
	}
	// Pattern1 has 4 steps; completed txns contributed exactly 4 each.
	if sum.StepsExecuted < 4*sum.Completions {
		t.Errorf("steps %d < 4 x completions %d", sum.StepsExecuted, sum.Completions)
	}
	if sum.StepsExecuted > 4*sum.Arrivals {
		t.Errorf("steps %d > 4 x arrivals %d", sum.StepsExecuted, sum.Arrivals)
	}
	if sum.GrantedRequests < sum.StepsExecuted {
		t.Errorf("grants %d < executed steps %d", sum.GrantedRequests, sum.StepsExecuted)
	}
}

// TestOPTWastedWorkVisible: with restarts, busy time strictly exceeds the
// completed work — the resource waste the paper blames OPT for must be
// observable in the accounting.
func TestOPTWastedWorkVisible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0.3
	cfg.Duration = 400_000 * sim.Millisecond
	m, err := New(cfg, sched.MustNew("OPT", sched.DefaultParams()), uniformGen{}, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	sum := m.Run()
	if sum.Restarts == 0 {
		t.Skip("no restarts at this seed/load")
	}
	busySeconds := 0.0
	for _, u := range sum.PerDPNUtilization {
		busySeconds += u * cfg.Duration.Seconds()
	}
	completedWork := float64(sum.Completions) * 7.2
	slack := busySeconds - completedWork
	// Each restart wastes up to 7.2 node-seconds; with hundreds of restarts
	// the waste must be plainly visible (well beyond in-flight progress).
	if slack < 0.5*float64(sum.Restarts) {
		t.Logf("restarts=%d slack=%.1f", sum.Restarts, slack)
	}
	if math.IsNaN(slack) || slack <= 0 {
		t.Errorf("no visible wasted work despite %d restarts", sum.Restarts)
	}
}
