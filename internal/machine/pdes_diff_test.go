package machine

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"batchsched/internal/fault"
	"batchsched/internal/metrics"
	"batchsched/internal/obs"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/trace"
	"batchsched/internal/workload"
)

// The sharded-calendar PDES engine (Config.ParallelRun; parallel.go,
// DESIGN.md §13) must be observationally identical to the merged-calendar
// engine: same dispatch order, same traces, same summaries — whether waves
// are prepared inline (ParallelRun=1) or on worker goroutines (>1). These
// tests mirror the ffdiff suite one layer up: the oracle here is the
// merged-calendar fast-forward engine that ffdiff already proved equal to
// the quantum-stepped one.

// pdesDiffFaults is the full fault cocktail (crashes, stragglers, message
// loss with timeout-and-retry) used across the differential grid.
var pdesDiffFaults = fault.Config{
	MTBF: 80 * sim.Second, MTTR: 5 * sim.Second,
	StragglerMTBF: 150 * sim.Second, StragglerDuration: 10 * sim.Second, StragglerFactor: 3,
	MsgLoss: 0.03, MsgTimeout: 5 * sim.Second, MsgRetries: 2,
}

// pdesDiffSchedule is ffDiffSchedule's node-level driver run against the
// sharded calendar: the dpn books its completions on a sub-calendar and the
// engine is driven through the CollectWave/DispatchWaveMember loop, so the
// merge order of shard events against main-calendar arrivals, crashes,
// straggler toggles, death marks and probes is exercised directly.
func pdesDiffSchedule(t *testing.T, seed int64, sharded bool) []string {
	t.Helper()
	g := sim.NewRNG(seed)
	eng := sim.NewEngine()
	met := metrics.NewCollector(1, 0)
	d := newDPN(0, eng, met)
	if sharded {
		eng.SetShards(1)
		d.sharded = true
	}
	var log []string

	type arrival struct {
		c     *cohort
		added bool
		done  bool
	}
	n := 5 + g.Intn(20)
	globalQ := sim.Time(1+g.Intn(1500)) * sim.Millisecond
	uniform := g.Intn(2) == 0
	for i := 0; i < n; i++ {
		i := i
		at := sim.Time(g.Intn(30_000)) * sim.Millisecond
		rem := sim.Time(g.Intn(5000)) * sim.Millisecond
		if g.Intn(10) == 0 {
			rem = 0
		}
		q := globalQ
		if !uniform {
			q = sim.Time(1+g.Intn(1500)) * sim.Millisecond
		}
		a := &arrival{c: &cohort{remaining: rem, quantum: q}}
		a.c.done = func() {
			a.done = true
			log = append(log, fmt.Sprintf("done %d@%v", i, eng.Now()))
		}
		eng.ScheduleAt(at, func(now sim.Time) {
			if d.down {
				return
			}
			a.added = true
			d.add(a.c)
		})
		if g.Intn(5) == 0 {
			dieAt := at + sim.Time(g.Intn(3000))*sim.Millisecond
			eng.ScheduleAt(dieAt, func(now sim.Time) {
				if a.done || !a.added {
					return
				}
				d.sync()
				a.c.dead = true
				d.deadMarked()
			})
		}
	}
	for i := 0; i < 2; i++ {
		crashAt := sim.Time(g.Intn(30_000)) * sim.Millisecond
		backAt := crashAt + sim.Time(2000+g.Intn(3000))*sim.Millisecond
		eng.ScheduleAt(crashAt, func(now sim.Time) {
			if d.down {
				return
			}
			killed := d.crash()
			log = append(log, fmt.Sprintf("crash@%v killed=%d", now, len(killed)))
		})
		eng.ScheduleAt(backAt, func(now sim.Time) { d.restore() })
	}
	for i := 0; i < 2; i++ {
		onAt := sim.Time(g.Intn(30_000)) * sim.Millisecond
		offAt := onAt + sim.Time(1000+g.Intn(4000))*sim.Millisecond
		eng.ScheduleAt(onAt, func(now sim.Time) { d.setSlow(1.5) })
		eng.ScheduleAt(offAt, func(now sim.Time) { d.setSlow(1) })
	}
	for i := 0; i < 10; i++ {
		at := sim.Time(g.Intn(40_000)) * sim.Millisecond
		eng.ScheduleAt(at, func(now sim.Time) {
			log = append(log, fmt.Sprintf("q=%d@%v", d.queueLen(), now))
		})
	}
	horizon := sim.Time(1 << 50)
	if sharded {
		var buf []*sim.Event
		for {
			buf = eng.CollectWave(buf, horizon)
			if len(buf) > 0 {
				for _, ev := range buf {
					eng.DispatchWaveMember(ev)
				}
				continue
			}
			if !eng.Step(horizon) {
				break
			}
		}
	} else {
		eng.Run(horizon)
	}
	d.flush(horizon)
	log = append(log, fmt.Sprintf("busy=%v executed=%d", met.DPNBusyTime(0), eng.Executed()))
	return log
}

// TestPDESDiffRandomSchedules is the 500-seed node-level differential:
// randomized schedules must produce identical logs, busy totals and
// dispatch counts on the merged and the sharded calendar.
func TestPDESDiffRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 500; seed++ {
		merged := pdesDiffSchedule(t, seed, false)
		sharded := pdesDiffSchedule(t, seed, true)
		if len(merged) != len(sharded) {
			t.Fatalf("seed %d: %d vs %d log entries\nmerged: %v\nsharded: %v",
				seed, len(merged), len(sharded), merged, sharded)
		}
		for i := range merged {
			if merged[i] != sharded[i] {
				t.Fatalf("seed %d entry %d: merged %q sharded %q\nmerged: %v\nsharded: %v",
					seed, i, merged[i], sharded[i], merged, sharded)
			}
		}
	}
}

// pdesDiffRun runs one full machine and returns its summary plus serialized
// trace. parallel is Config.ParallelRun (0 = merged-calendar oracle).
func pdesDiffRun(t *testing.T, name string, cfg Config, parallel int, seed int64, wl Generator) (metrics.Summary, []byte) {
	t.Helper()
	cfg.ParallelRun = parallel
	if wl == nil {
		wl = workload.NewExp1(16)
	}
	m, err := New(cfg, sched.MustNew(name, sched.DefaultParams()), wl, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.SetObserver(trace.NewWriter(&buf))
	sum := m.Run()
	return sum, buf.Bytes()
}

// TestPDESDiffSummaries compares end-of-run summaries across schedulers, a
// DD ladder and the fault cocktail for sharded-inline (1) and
// sharded-parallel (4 workers) against the merged-calendar engine.
func TestPDESDiffSummaries(t *testing.T) {
	for _, name := range []string{"NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"} {
		for _, dd := range []int{1, 4, 16} {
			for _, withFaults := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.NumNodes = 16
				cfg.DD = dd
				cfg.ArrivalRate = 0.6
				cfg.Duration = 200_000 * sim.Millisecond
				if withFaults {
					cfg.Faults = pdesDiffFaults
				}
				base, _ := pdesDiffRun(t, name, cfg, 0, 7, nil)
				for _, par := range []int{1, 4} {
					got, _ := pdesDiffRun(t, name, cfg, par, 7, nil)
					if !reflect.DeepEqual(base, got) {
						t.Errorf("%s DD=%d faults=%v parallel=%d diverged:\nmerged:  %+v\nsharded: %+v",
							name, dd, withFaults, par, base, got)
					}
				}
			}
		}
	}
}

// TestPDESDiffTraces compares full serialized event traces — an ordering
// difference that happens not to move the summary still fails. The batch-scan
// config at full declustering is the wave-heavy case: all DD sibling cohorts
// complete in lockstep, so waves reach NumNodes members.
func TestPDESDiffTraces(t *testing.T) {
	for _, tc := range []struct {
		name   string
		dd     int
		faults bool
		scan   bool
	}{
		{"NODC", 1, false, false}, {"GOW", 4, false, false},
		{"LOW", 16, false, false}, {"GOW", 4, true, false},
		{"OPT", 16, true, false}, {"GOW", 16, false, true},
		{"C2PL", 16, true, true},
	} {
		cfg := DefaultConfig()
		cfg.NumNodes = 16
		cfg.DD = tc.dd
		cfg.ArrivalRate = 0.6
		cfg.Duration = 200_000 * sim.Millisecond
		var wl Generator
		if tc.scan {
			cfg.ArrivalRate = 0.15
			wl = workload.NewBatchScan(16, 32)
		}
		if tc.faults {
			cfg.Faults = pdesDiffFaults
		}
		_, base := pdesDiffRun(t, tc.name, cfg, 0, 11, wl)
		for _, par := range []int{1, 4} {
			_, got := pdesDiffRun(t, tc.name, cfg, par, 11, wl)
			if !bytes.Equal(base, got) {
				t.Errorf("%s DD=%d faults=%v scan=%v parallel=%d: traces differ (%d vs %d bytes)",
					tc.name, tc.dd, tc.faults, tc.scan, par, len(base), len(got))
			}
		}
	}
}

// TestPDESWavesEngage asserts the wave machinery actually runs multi-member
// waves on the batch-scan config — a scheduling regression that silently
// degraded every wave to a single member would otherwise pass the
// differential suite without testing parallel dispatch at all.
func TestPDESWavesEngage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumNodes = 16
	cfg.DD = 16
	cfg.ArrivalRate = 0.15
	cfg.Duration = 200_000 * sim.Millisecond
	cfg.ParallelRun = 4
	m, err := New(cfg, sched.MustNew("GOW", sched.DefaultParams()), workload.NewBatchScan(16, 32), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	waves, members := m.WaveStats()
	if waves == 0 {
		t.Fatal("no waves dispatched on the sharded engine")
	}
	if members <= waves {
		t.Fatalf("no multi-member waves: %d waves, %d members", waves, members)
	}
	util := m.ShardUtilization(nil)
	if len(util) != cfg.NumNodes {
		t.Fatalf("ShardUtilization returned %d entries, want %d", len(util), cfg.NumNodes)
	}
	busy := 0
	for _, u := range util {
		if u < 0 || u > 1 {
			t.Fatalf("utilization out of range: %v", util)
		}
		if u > 0 {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("every shard idle for the whole run")
	}
}

// TestPDESObsForcesInline: with the observability layer attached, waves must
// be prepared inline (span recording is not reentrant) and the observed
// summary must still match the unobserved merged-calendar run.
func TestPDESObsForcesInline(t *testing.T) {
	run := func(parallel int) metrics.Summary {
		cfg := DefaultConfig()
		cfg.NumNodes = 16
		cfg.DD = 16
		cfg.ArrivalRate = 0.15
		cfg.Duration = 100_000 * sim.Millisecond
		cfg.ParallelRun = parallel
		m, err := New(cfg, sched.MustNew("GOW", sched.DefaultParams()), workload.NewBatchScan(16, 32), sim.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		if parallel > 0 {
			m.SetObs(obs.New())
		}
		return m.Run()
	}
	base := run(0)
	obs := run(4)
	if !reflect.DeepEqual(base, obs) {
		t.Errorf("observed sharded run diverged:\nmerged:   %+v\nobserved: %+v", base, obs)
	}
}

// TestParallelRunValidate pins the configuration gates.
func TestParallelRunValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ParallelRun = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ParallelRun accepted")
	}
	cfg.ParallelRun = 2
	cfg.QuantumStepped = true
	if err := cfg.Validate(); err == nil {
		t.Error("ParallelRun with QuantumStepped accepted")
	}
	cfg.QuantumStepped = false
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid ParallelRun rejected: %v", err)
	}
}
