package machine

import (
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

func steps(pattern string, binding map[string]model.FileID) []model.Step {
	p := model.MustParsePattern(pattern)
	s, err := p.Instantiate(binding)
	if err != nil {
		panic(err)
	}
	return s
}

func quietConfig(dd int) Config {
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0
	cfg.DD = dd
	cfg.Duration = 100_000 * sim.Millisecond
	return cfg
}

func newMachine(t *testing.T, cfg Config, schedName string) *Machine {
	t.Helper()
	m, err := New(cfg, sched.MustNew(schedName, sched.DefaultParams()), nil, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumNodes = 0 },
		func(c *Config) { c.NumFiles = 0 },
		func(c *Config) { c.DD = 0 },
		func(c *Config) { c.DD = c.NumNodes + 1 },
		func(c *Config) { c.ObjTime = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.ArrivalRate = -1 },
		func(c *Config) { c.Warmup = c.Duration },
		func(c *Config) { c.MsgTime = -1 },
		func(c *Config) { c.MPL = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestPlacement(t *testing.T) {
	p := Placement{NumNodes: 8, DD: 1}
	if p.Home(0) != 0 || p.Home(7) != 7 || p.Home(8) != 0 || p.Home(13) != 5 {
		t.Error("home node must be fileID mod NumNodes")
	}
	if n := p.Nodes(3); len(n) != 1 || n[0] != 3 {
		t.Errorf("DD=1 nodes = %v", n)
	}
	p.DD = 4
	if n := p.Nodes(6); len(n) != 4 || n[0] != 6 || n[1] != 7 || n[2] != 0 || n[3] != 1 {
		t.Errorf("DD=4 nodes of file 6 = %v, want [6 7 0 1] (wrapping)", n)
	}
}

// TestSingleTxnTiming verifies the execution model's accounting end to end:
// admit (sot 2ms) + request (0) + send msg (2ms) + scan 2 objects (2000ms)
// + receive msg (2ms) + commit (7ms) = 2013 ms.
func TestSingleTxnTiming(t *testing.T) {
	m := newMachine(t, quietConfig(1), "NODC")
	txn := m.Submit(steps("w(A:2)", map[string]model.FileID{"A": 0}))
	sum := m.Run()
	if sum.Completions != 1 {
		t.Fatalf("completions = %d, want 1", sum.Completions)
	}
	if want := 2013 * sim.Millisecond; sum.MeanRT != want {
		t.Errorf("RT = %v, want %v", sum.MeanRT, want)
	}
	if txn.Status != model.Committed {
		t.Error("transaction must be committed")
	}
	// Two steps' messages... one step: 2 msgs = 4ms; + sot 2 + cot 7 = 13ms CN busy.
	if got := sum.CNUtilization * sum.Window.Seconds(); got < 0.012 || got > 0.014 {
		t.Errorf("CN busy seconds = %v, want 0.013", got)
	}
}

// TestDeclusteringSpeedsUpSingleTxn: with DD=2 the same 2-object scan runs
// as two 1-object cohorts in parallel: 1000ms of service instead of 2000.
func TestDeclusteringSpeedsUpSingleTxn(t *testing.T) {
	m := newMachine(t, quietConfig(2), "NODC")
	m.Submit(steps("w(A:2)", map[string]model.FileID{"A": 0}))
	sum := m.Run()
	if want := 1013 * sim.Millisecond; sum.MeanRT != want {
		t.Errorf("RT = %v, want %v", sum.MeanRT, want)
	}
}

// TestRoundRobinFairness: two equal cohorts on one node finish in
// interleaved quanta; both take ~2x their isolated service time and finish
// one quantum apart.
func TestRoundRobinFairness(t *testing.T) {
	m := newMachine(t, quietConfig(1), "NODC")
	// Two 2-object scans of different files with the same home node 0
	// (files 0 and 8 with 8 nodes).
	m.Submit(steps("w(A:2)", map[string]model.FileID{"A": 0}))
	m.Submit(steps("w(B:2)", map[string]model.FileID{"B": 8}))
	sum := m.Run()
	if sum.Completions != 2 {
		t.Fatalf("completions = %d, want 2", sum.Completions)
	}
	// Quanta (1 object = 1000ms): A B A B -> A ends at ~3000+13ms service
	// path, B at ~4000+13. Mean = 3513 + msg queueing jitter of a few ms.
	lo, hi := 3500*sim.Millisecond, 3530*sim.Millisecond
	if sum.MeanRT < lo || sum.MeanRT > hi {
		t.Errorf("mean RT = %v, want ~3513ms (round-robin interleave)", sum.MeanRT)
	}
	if sum.P50RT >= sum.MaxRT {
		t.Errorf("expected staggered completions, got P50=%v max=%v", sum.P50RT, sum.MaxRT)
	}
}

// TestLockingSerializesConflicts: under C2PL, a second writer of the same
// file waits for the first to commit.
func TestLockingSerializesConflicts(t *testing.T) {
	m := newMachine(t, quietConfig(1), "C2PL")
	m.Submit(steps("w(A:2)", map[string]model.FileID{"A": 0}))
	m.Submit(steps("w(A:2)", map[string]model.FileID{"A": 0}))
	sum := m.Run()
	if sum.Completions != 2 {
		t.Fatalf("completions = %d, want 2", sum.Completions)
	}
	// Serial execution: first ~2013ms, second ~4026ms.
	if sum.MaxRT < 4000*sim.Millisecond {
		t.Errorf("max RT = %v; conflicting writers must serialize", sum.MaxRT)
	}
	if sum.Blocks == 0 {
		t.Error("expected at least one block")
	}
}

// TestNODCDoesNotSerialize: the same conflicting pair overlaps freely under
// NODC.
func TestNODCDoesNotSerialize(t *testing.T) {
	m := newMachine(t, quietConfig(1), "NODC")
	m.Submit(steps("w(A:2)", map[string]model.FileID{"A": 0}))
	m.Submit(steps("w(A:2)", map[string]model.FileID{"A": 0}))
	sum := m.Run()
	// Round-robin sharing: both finish around 4s; no blocking.
	if sum.Blocks != 0 {
		t.Errorf("NODC blocked %d times", sum.Blocks)
	}
	if sum.MaxRT > 4100*sim.Millisecond {
		t.Errorf("max RT = %v, want interleaved (~4s), not serialized", sum.MaxRT)
	}
}

// TestOPTRestart: a read-write conflict forces the slower optimistic
// transaction to restart and re-execute.
func TestOPTRestart(t *testing.T) {
	m := newMachine(t, quietConfig(1), "OPT")
	// Long reader of A and quick writer of A on different home nodes is
	// impossible (same file) — they share node 0 and round-robin. The
	// writer (1 object) finishes and commits first; the reader (5 objects)
	// then fails validation and restarts.
	m.Submit(steps("r(A:5)->w(B:0.2)", map[string]model.FileID{"A": 0, "B": 1}))
	m.Submit(steps("w(A:1)", map[string]model.FileID{"A": 0}))
	sum := m.Run()
	if sum.Completions != 2 {
		t.Fatalf("completions = %d, want 2", sum.Completions)
	}
	if sum.Restarts == 0 {
		t.Error("expected the reader to restart at least once")
	}
}

// TestMachineMPL: with a machine-level MPL of 1 even NODC serializes
// admissions.
func TestMachineMPL(t *testing.T) {
	cfg := quietConfig(1)
	cfg.MPL = 1
	m := newMachine(t, cfg, "NODC")
	m.Submit(steps("w(A:1)", map[string]model.FileID{"A": 0}))
	m.Submit(steps("w(B:1)", map[string]model.FileID{"B": 1}))
	sum := m.Run()
	if sum.Completions != 2 {
		t.Fatalf("completions = %d, want 2", sum.Completions)
	}
	// Second must start only after the first commits: ~1013 + ~1013.
	if sum.MaxRT < 2020*sim.Millisecond {
		t.Errorf("max RT = %v, want > 2.02s (serialized by MPL)", sum.MaxRT)
	}
}

// TestUtilizationAccounting: a single 8-object scan at DD=1 keeps one of 8
// nodes busy 8s.
func TestUtilizationAccounting(t *testing.T) {
	cfg := quietConfig(1)
	cfg.Duration = 10_000 * sim.Millisecond
	m := newMachine(t, cfg, "NODC")
	m.Submit(steps("w(A:8)", map[string]model.FileID{"A": 3}))
	sum := m.Run()
	if got := sum.PerDPNUtilization[3]; got < 0.79 || got > 0.81 {
		t.Errorf("node 3 utilization = %v, want ~0.8", got)
	}
	for i, u := range sum.PerDPNUtilization {
		if i != 3 && u != 0 {
			t.Errorf("node %d utilization = %v, want 0", i, u)
		}
	}
	if sum.DPNUtilization < 0.09 || sum.DPNUtilization > 0.11 {
		t.Errorf("mean DPN utilization = %v, want ~0.1", sum.DPNUtilization)
	}
}

// TestDeterminism: identical seeds give identical summaries.
func TestDeterminism(t *testing.T) {
	run := func() string {
		cfg := DefaultConfig()
		cfg.ArrivalRate = 0.5
		cfg.Duration = 200_000 * sim.Millisecond
		m, err := New(cfg, sched.MustNew("LOW", sched.DefaultParams()), uniformGen{}, sim.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		return m.Run().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic runs:\n%s\n%s", a, b)
	}
}

// uniformGen is a minimal generator for machine tests: Experiment-1 pattern
// over 16 files.
type uniformGen struct{}

func (uniformGen) Steps(rng *sim.RNG) []model.Step {
	f1, f2 := rng.TwoDistinct(16)
	p := model.MustParsePattern("Xr(F1:1)->Xr(F2:5)->w(F1:0.2)->w(F2:1)")
	s, err := p.Instantiate(map[string]model.FileID{"F1": model.FileID(f1), "F2": model.FileID(f2)})
	if err != nil {
		panic(err)
	}
	return s
}

// TestLowLoadDrainsForAllSchedulers: at a light load every scheduler
// completes everything it admits, with no transaction stuck forever.
func TestLowLoadDrainsForAllSchedulers(t *testing.T) {
	for _, name := range sched.Names {
		name := name
		t.Run(name, func(t *testing.T) {
			p := sched.DefaultParams()
			if name == "C2PL+M" {
				p.MPL = 4
			}
			cfg := DefaultConfig()
			cfg.ArrivalRate = 0.3
			if name == "OPT" {
				// OPT thrashes on restarts well below the others' capacity
				// (its RT=70s point in the paper's Table 2 is ~0.24 TPS);
				// drain it at a load it can sustain.
				cfg.ArrivalRate = 0.1
			}
			cfg.Duration = 400_000 * sim.Millisecond
			m, err := New(cfg, sched.MustNew(name, p), uniformGen{}, sim.NewRNG(7))
			if err != nil {
				t.Fatal(err)
			}
			sum := m.Run()
			if sum.Arrivals < 25 {
				t.Fatalf("arrivals = %d, too few to be meaningful", sum.Arrivals)
			}
			// Everything that arrived long before the horizon completes.
			if sum.Completions < sum.Arrivals-10 {
				t.Errorf("completions = %d of %d arrivals: transactions stuck",
					sum.Completions, sum.Arrivals)
			}
			if name != "OPT" && name != "2PL" && sum.Restarts != 0 {
				t.Errorf("%s restarted %d times; only OPT and 2PL restart", name, sum.Restarts)
			}
		})
	}
}
