package machine

import (
	"testing"

	"batchsched/internal/metrics"
	"batchsched/internal/sim"
)

// TestDPNSteadyStateAllocFree pins the allocation audit at the node layer:
// a warmed sharded DPN cycling pooled cohorts — completion, a payload-event
// round trip standing in for the CN hop, redelivery — must run without a
// single allocation per event. Everything reusable is created at setup:
// cohorts, their done closures, and the prebound redelivery handler.
func TestDPNSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	met := metrics.NewCollector(1, 0)
	d := newDPN(0, eng, met)
	eng.SetShards(1)
	d.sharded = true

	const residents = 6
	cohorts := make([]*cohort, residents)
	// readd returns a completed cohort to the node after a fixed message
	// delay, with fresh demand; prebound once so SchedulePayload stays on
	// the engine's no-closure path.
	readd := func(now sim.Time, arg any) {
		c := arg.(*cohort)
		c.remaining = 7 * sim.Millisecond
		d.add(c)
	}
	for i := range cohorts {
		c := &cohort{remaining: 7 * sim.Millisecond, quantum: 2 * sim.Millisecond}
		c.done = func() {
			eng.SchedulePayload(2*sim.Millisecond, readd, c)
		}
		cohorts[i] = c
	}
	for i, c := range cohorts {
		i, c := i, c
		eng.ScheduleAt(sim.Time(i)*sim.Millisecond, func(sim.Time) { d.add(c) })
	}

	// Warm the free lists, the ring, and the shard slot.
	horizon := sim.Time(0)
	step := func() {
		horizon += 100 * sim.Millisecond
		for eng.Step(horizon) {
		}
	}
	step()
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Fatalf("steady-state allocations: %v per 100ms window, want 0", avg)
	}
	if eng.Executed() == 0 || met.DPNBusyTime(0) == 0 {
		t.Fatal("steady-state loop did not actually run")
	}
}
