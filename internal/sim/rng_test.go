package sim

import "testing"

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(1, "cell/rep=0")
	b := DeriveSeed(1, "cell/rep=0")
	if a != b {
		t.Errorf("DeriveSeed not stable: %d vs %d", a, b)
	}
}

func TestDeriveSeedDecoupled(t *testing.T) {
	seen := map[int64]string{}
	for _, root := range []int64{1, 2, 42} {
		for _, key := range []string{"a", "b", "a/rep=0", "a/rep=1", ""} {
			s := DeriveSeed(root, key)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: (%d,%q) and %s both derive %d", root, key, prev, s)
			}
			seen[s] = key
		}
	}
}

func TestStreamMatchesDeriveSeed(t *testing.T) {
	g := NewRNG(7)
	if got, want := g.Stream("arrivals").Seed(), DeriveSeed(7, "arrivals"); got != want {
		t.Errorf("Stream seed %d, DeriveSeed %d", got, want)
	}
}
