package sim

import (
	"testing"
)

// shardScriptBooking is one pre-generated booking of the cross-shard
// property test: a calendar key plus an optional immediate cancel-and-rebook
// (which exercises the shard heap's in-place unlink against the main
// calendar's tombstones).
type shardScriptBooking struct {
	at, prio Time
	tie      TieKey
	hasTie   bool
	rebook   bool
	alt      *shardScriptBooking
}

// genShardScript generates per-shard booking chains over shared "buckets":
// instants where several shards collide with equal (at, prio) and tie keys
// that differ only in genealogy. Keys follow the machine's invariants — one
// quantum per bucket, anchors that are strictly short slices (Pre > Anchor-Q),
// globally unique stamps — under which tieLess is a total order, so the
// merged and sharded calendars must agree exactly.
func genShardScript(g *RNG, shards, perShard int) [][]shardScriptBooking {
	type bucket struct {
		at, prio, q Time
	}
	nBuckets := perShard*3 + 8
	buckets := make([]bucket, nBuckets)
	at := Time(10)
	for b := range buckets {
		// Buckets advance by more than the largest priority offset, so a
		// successor booked at one bucket's instant always lies at a later
		// instant with a later priority — the discipline the DPN model
		// obeys and the safe-wave loop's collection contract relies on.
		// Same-instant collisions come from shards sharing a bucket.
		at += Time(4 + g.Intn(4))
		q := Time(2 + g.Intn(3))
		buckets[b] = bucket{at: at, prio: at - Time(1+g.Intn(3)), q: q}
	}
	var stamp uint64
	member := func(b bucket) shardScriptBooking {
		m := shardScriptBooking{at: b.at}
		if g.Intn(8) == 0 {
			// An untied booking: keep its prio clear of the bucket's tie
			// events (mixing tied and untied events at one (at, prio) has
			// no model counterpart and no defined cross-calendar order).
			p := b.prio - Time(4+g.Intn(3))
			if p < 0 {
				p = 0
			}
			m.prio = p
			return m
		}
		m.prio = b.prio
		m.hasTie = true
		k := Time(g.Intn(3))
		anchor := b.prio - k*b.q
		// Short-slice anchor: Anchor-Q < Pre < Anchor, as in real chains.
		pre := anchor - b.q + 1 + Time(g.Intn(int(b.q)-1))
		stamp++
		m.tie = TieKey{Q: b.q, Anchor: anchor, Pre: pre, Stamp: stamp}
		return m
	}
	script := make([][]shardScriptBooking, shards)
	for s := range script {
		script[s] = make([]shardScriptBooking, perShard)
		b := g.Intn(3)
		for k := 0; k < perShard; k++ {
			m := member(buckets[b])
			if g.Intn(6) == 0 {
				alt := member(buckets[b])
				m.rebook = true
				m.alt = &alt
			}
			script[s][k] = m
			b += 1 + g.Intn(2)
		}
	}
	return script
}

// playShardScript books every shard's chain (each handler booking its
// successor, as the DPN model does) and returns the exact dispatch order as
// (shard, index) codes. mode 0 = merged calendar, 1 = sharded via Engine.Step,
// 2 = sharded via the CollectWave/DispatchWaveMember loop.
func playShardScript(script [][]shardScriptBooking, mode int) []int {
	e := NewEngine()
	shards := len(script)
	if mode != 0 {
		e.SetShards(shards)
	}
	var order []int
	// Initial bookings, shard order (same booking seq in every mode).
	for s := 0; s < shards; s++ {
		bookScript(e, s, &script[s][0], scriptHandler(e, script, s, 0, mode, &order), mode)
	}
	horizon := Time(1) << 50
	if mode == 2 {
		var buf []*Event
		for {
			buf = e.CollectWave(buf, horizon)
			if len(buf) > 0 {
				for _, ev := range buf {
					e.DispatchWaveMember(ev)
				}
				continue
			}
			if !e.Step(horizon) {
				break
			}
		}
	} else {
		e.Run(horizon)
	}
	return order
}

// scriptHandler returns the handler for script[s][k]: record the dispatch,
// book the successor (cancel-and-rebook when the script says so).
func scriptHandler(e *Engine, script [][]shardScriptBooking, s, k, mode int, order *[]int) Handler {
	perShard := len(script[0])
	return func(Time) {
		*order = append(*order, s*perShard+k)
		if k+1 >= perShard {
			return
		}
		next := &script[s][k+1]
		ev := bookScript(e, s, next, scriptHandler(e, script, s, k+1, mode, order), mode)
		if next.rebook {
			ev.Cancel()
			bookScript(e, s, next.alt, scriptHandler(e, script, s, k+1, mode, order), mode)
		}
	}
}

func bookScript(e *Engine, s int, m *shardScriptBooking, fn Handler, mode int) *Event {
	if mode != 0 {
		if m.hasTie {
			return e.ScheduleShardTie(s, m.at, m.prio, m.tie, fn)
		}
		return e.ScheduleShardPrio(s, m.at, m.prio, fn)
	}
	if m.hasTie {
		return e.ScheduleAtTie(m.at, m.prio, m.tie, fn)
	}
	return e.ScheduleAtPrio(m.at, m.prio, fn)
}

// TestCrossShardTieOrderMatchesMergedCalendar is the cross-shard comparator
// property test: randomized same-instant ties (including keys identical up
// to the dispatch stamp, the case that once regressed when tie keys were
// patched in after the heap sift) must dispatch in exactly the same order
// from per-shard slot calendars — through Step and through the safe-wave
// loop — as from one merged calendar.
func TestCrossShardTieOrderMatchesMergedCalendar(t *testing.T) {
	const shards, perShard = 6, 300
	for trial := 0; trial < 25; trial++ {
		g := NewRNG(int64(9000 + trial))
		script := genShardScript(g, shards, perShard)
		merged := playShardScript(script, 0)
		if len(merged) == 0 {
			t.Fatalf("trial %d: merged run dispatched nothing", trial)
		}
		for mode := 1; mode <= 2; mode++ {
			got := playShardScript(script, mode)
			if len(got) != len(merged) {
				t.Fatalf("trial %d mode %d: dispatched %d events, merged %d", trial, mode, len(got), len(merged))
			}
			for i := range merged {
				if got[i] != merged[i] {
					t.Fatalf("trial %d mode %d: dispatch[%d] = shard %d event %d, merged had shard %d event %d",
						trial, mode, i,
						got[i]/perShard, got[i]%perShard,
						merged[i]/perShard, merged[i]%perShard)
				}
			}
		}
	}
}

// TestEngineCompactionMidDispatch forces tombstone compaction from inside a
// running handler — the calendar is rebuilt while the engine is mid-Step —
// and checks that the surviving dispatch order, the shard slot bookings and
// Executed() all come through unscathed.
func TestEngineCompactionMidDispatch(t *testing.T) {
	e := NewEngine()
	e.SetShards(1)
	const n = 400
	events := make([]*Event, n)
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		events[i] = e.Schedule(Time(i+10)*Millisecond, func(Time) { fired = append(fired, i) })
	}
	// A shard booking beyond the purge: compaction must leave it alone.
	shardFired := false
	e.ScheduleShardPrio(0, Time(n+20)*Millisecond, Time(n+20)*Millisecond, func(Time) { shardFired = true })
	// The first event cancels events 1..n-2 from inside its handler; that
	// puts ~n-2 tombstones on a calendar of n-1 live-or-dead entries, well
	// past the dead >= 64 && dead*2 > Len() threshold, so maybeCompact
	// rebuilds the heap during this very dispatch.
	pendingBefore := 0
	e.Schedule(Millisecond, func(Time) {
		for i := 1; i < n-1; i++ {
			events[i].Cancel()
		}
		pendingBefore = e.Pending()
	})
	e.Run(Second)
	if pendingBefore >= n {
		t.Fatalf("compaction did not run mid-dispatch: %d pending right after the cancels", pendingBefore)
	}
	if want := []int{0, n - 1}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if !shardFired {
		t.Fatal("shard booking lost across mid-dispatch compaction")
	}
	// 1 canceler + 2 survivors + 1 shard event.
	if e.Executed() != 4 {
		t.Errorf("Executed = %d, want 4", e.Executed())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after run, want 0", e.Pending())
	}
}

// TestEngineExecutedUnderHeavyLazyDeletion cancels interleaved events from
// inside handlers so the calendar is thick with tombstones while it drains,
// and checks that Executed() stays dense — every handler observes exactly
// the count of live dispatches so far, with canceled events never counted.
// Tie-key stamps are derived from Executed(), so a gap here would corrupt
// genealogy keys silently.
func TestEngineExecutedUnderHeavyLazyDeletion(t *testing.T) {
	e := NewEngine()
	const n = 900
	events := make([]*Event, n)
	fired := 0
	for i := 0; i < n; i++ {
		i := i
		events[i] = e.Schedule(Time(i+1)*Millisecond, func(Time) {
			fired++
			if got := e.Executed(); got != uint64(fired) {
				t.Fatalf("handler %d: Executed = %d, want %d", i, got, fired)
			}
			// Cancel the next two still-pending survivors, so roughly two
			// thirds of the calendar dies as tombstones mid-drain.
			for j, killed := i+1, 0; j < n && killed < 2; j++ {
				if events[j] != nil && !events[j].Canceled() {
					events[j].Cancel()
					killed++
				}
			}
		})
	}
	e.Run(Second)
	if fired != (n+2)/3 {
		t.Fatalf("fired %d of %d, want every third (%d)", fired, n, (n+2)/3)
	}
	if e.Executed() != uint64(fired) {
		t.Errorf("Executed = %d, want %d", e.Executed(), fired)
	}
}

// TestShardedSteadyStateAllocFree pins the tentpole's allocation audit at
// the engine layer: a warmed sharded engine running self-rebooking shard
// chains, cancel-and-rebook churn, and a recurring payload event on the
// main calendar must dispatch with zero allocations per event.
func TestShardedSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	const shards = 4
	e.SetShards(shards)
	handlers := make([]Handler, shards)
	fires := make([]int, shards)
	for s := 0; s < shards; s++ {
		s := s
		handlers[s] = func(now Time) {
			fires[s]++
			at := now + Time(s+1)*Millisecond
			tie := TieKey{Q: Millisecond, Anchor: now, Pre: now - 1, Stamp: e.Executed()}
			ev := e.ScheduleShardTie(s, at, now, tie, handlers[s])
			if fires[s]%7 == 0 {
				// Cancel-and-rebook: the shard heap unlinks in place, the
				// replacement comes off the event free list.
				ev.Cancel()
				e.ScheduleShardTie(s, at+Millisecond, now, tie, handlers[s])
			}
		}
	}
	var tick func(now Time)
	ticks := 0
	tick = func(now Time) {
		ticks++
		e.Schedule(5*Millisecond, tick)
	}
	for s := 0; s < shards; s++ {
		e.ScheduleShardPrio(s, Time(s+1)*Millisecond, 0, handlers[s])
	}
	e.Schedule(5*Millisecond, tick)
	// Warm the free lists and heap capacity.
	horizon := Time(0)
	step := func() {
		horizon += 50 * Millisecond
		for e.Step(horizon) {
		}
	}
	step()
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Fatalf("steady-state allocations: %v per 50ms window, want 0", avg)
	}
	if ticks == 0 || fires[0] == 0 {
		t.Fatal("steady-state loop did not actually run")
	}
}
