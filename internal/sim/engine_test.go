package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1_000_000 {
		t.Fatalf("Second = %d µs, want 1e6", int64(Second))
	}
	if got := FromMilliseconds(1.5); got != 1500 {
		t.Errorf("FromMilliseconds(1.5) = %d, want 1500", int64(got))
	}
	if got := FromSeconds(0.001); got != Millisecond {
		t.Errorf("FromSeconds(0.001) = %v, want 1ms", got)
	}
	if got := (70 * Second).Seconds(); got != 70 {
		t.Errorf("Seconds() = %v, want 70", got)
	}
	if got := (200 * Millisecond).Milliseconds(); got != 200 {
		t.Errorf("Milliseconds() = %v, want 200", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500s" {
		t.Errorf("String() = %q", s)
	}
}

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Millisecond, func(Time) { order = append(order, 3) })
	e.Schedule(10*Millisecond, func(Time) { order = append(order, 1) })
	e.Schedule(20*Millisecond, func(Time) { order = append(order, 2) })
	e.Run(Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("dispatch order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30*Millisecond {
		t.Errorf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Millisecond, func(Time) { order = append(order, i) })
	}
	e.Run(Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break order = %v, want scheduling order", order)
		}
	}
}

func TestEngineHorizonStopsDispatch(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10*Millisecond, func(Time) { fired++ })
	e.Schedule(90*Millisecond, func(Time) { fired++ })
	e.Run(50 * Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (horizon must hold back later events)", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(200 * Millisecond)
	if fired != 2 || e.Now() != 200*Millisecond {
		t.Errorf("after RunUntil: fired=%d now=%v", fired, e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10*Millisecond, func(Time) { fired = true })
	ev.Cancel()
	e.Run(Second)
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if e.Executed() != 0 {
		t.Errorf("Executed = %d, want 0", e.Executed())
	}
}

func TestEngineEventsScheduledDuringDispatch(t *testing.T) {
	e := NewEngine()
	var times []Time
	var chain Handler
	chain = func(now Time) {
		times = append(times, now)
		if len(times) < 5 {
			e.Schedule(7*Millisecond, chain)
		}
	}
	e.Schedule(0, chain)
	e.Run(Second)
	if len(times) != 5 {
		t.Fatalf("chain length = %d, want 5", len(times))
	}
	for i, ts := range times {
		if want := Time(i) * 7 * Millisecond; ts != want {
			t.Errorf("times[%d] = %v, want %v", i, ts, want)
		}
	}
}

func TestEngineZeroDelaySameTimeRunsAfterCurrent(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(Millisecond, func(Time) {
		order = append(order, "a")
		e.Schedule(0, func(Time) { order = append(order, "b") })
		order = append(order, "a-end")
	})
	e.Run(Second)
	want := []string{"a", "a-end", "b"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEnginePanicsOnNegativeDelayAndNilHandler(t *testing.T) {
	e := NewEngine()
	mustPanic(t, func() { e.Schedule(-1, func(Time) {}) })
	mustPanic(t, func() { e.Schedule(1, nil) })
	mustPanic(t, func() {
		e.now = 10
		e.ScheduleAt(5, func(Time) {})
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// Property: events always fire in nondecreasing time order regardless of the
// scheduling sequence.
func TestEngineMonotonicDispatchProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d)*Microsecond, func(now Time) { fired = append(fired, now) })
		}
		e.Run(Time(1 << 30))
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminismAndStreams(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical sequences")
		}
	}
	s1 := NewRNG(42).Stream("arrivals")
	s2 := NewRNG(42).Stream("arrivals")
	s3 := NewRNG(42).Stream("files")
	if s1.Float64() != s2.Float64() {
		t.Fatal("same stream name must be reproducible")
	}
	if s1.Seed() == s3.Seed() {
		t.Fatal("different stream names must derive different seeds")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(1.2)
	}
	mean := sum / n
	if math.Abs(mean-1/1.2) > 0.01 {
		t.Errorf("Exp(1.2) mean = %v, want ~%v", mean, 1/1.2)
	}
}

func TestRNGNormMoments(t *testing.T) {
	g := NewRNG(11)
	const n = 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := g.Norm(0, 2)
		sum += x
		sq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(sd-2) > 0.03 {
		t.Errorf("Norm sd = %v, want ~2", sd)
	}
}

func TestRNGTwoDistinct(t *testing.T) {
	g := NewRNG(3)
	counts := make(map[int]int)
	for i := 0; i < 20000; i++ {
		a, b := g.TwoDistinct(8)
		if a == b {
			t.Fatal("TwoDistinct returned equal values")
		}
		if a < 0 || a >= 8 || b < 0 || b >= 8 {
			t.Fatalf("out of range: %d %d", a, b)
		}
		counts[a]++
		counts[b]++
	}
	for v, c := range counts {
		if c < 4000 || c > 6000 {
			t.Errorf("value %d drawn %d times, want ~5000 (uniformity)", v, c)
		}
	}
	mustPanic(t, func() { g.TwoDistinct(1) })
	mustPanic(t, func() { g.Exp(0) })
}

func TestRNGExpTime(t *testing.T) {
	g := NewRNG(5)
	const n = 100000
	var total Time
	for i := 0; i < n; i++ {
		total += g.ExpTime(2.0) // 2 events/sec -> mean gap 0.5s
	}
	mean := total.Seconds() / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("ExpTime(2) mean = %v s, want ~0.5", mean)
	}
}

func TestHeapStress(t *testing.T) {
	g := NewRNG(99)
	e := NewEngine()
	const n = 5000
	var last Time = -1
	count := 0
	for i := 0; i < n; i++ {
		e.Schedule(Time(g.Intn(1000))*Millisecond, func(now Time) {
			if now < last {
				t.Errorf("heap emitted out-of-order event: %v after %v", now, last)
			}
			last = now
			count++
		})
	}
	e.Run(Time(1 << 40))
	if count != n {
		t.Fatalf("dispatched %d, want %d", count, n)
	}
}

func TestRNGPerm(t *testing.T) {
	g := NewRNG(17)
	seen := make(map[int]bool)
	p := g.Perm(10)
	if len(p) != 10 {
		t.Fatalf("len = %d", len(p))
	}
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormalCDF(t *testing.T) {
	cases := map[float64]float64{0: 0.5, -1: 0.1587, 1: 0.8413, -0.1: 0.4602}
	for x, want := range cases {
		if got := NormalCDF(x); math.Abs(got-want) > 1e-3 {
			t.Errorf("Φ(%v) = %v, want %v", x, got, want)
		}
	}
}
