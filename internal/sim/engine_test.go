package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1_000_000 {
		t.Fatalf("Second = %d µs, want 1e6", int64(Second))
	}
	if got := FromMilliseconds(1.5); got != 1500 {
		t.Errorf("FromMilliseconds(1.5) = %d, want 1500", int64(got))
	}
	if got := FromSeconds(0.001); got != Millisecond {
		t.Errorf("FromSeconds(0.001) = %v, want 1ms", got)
	}
	if got := (70 * Second).Seconds(); got != 70 {
		t.Errorf("Seconds() = %v, want 70", got)
	}
	if got := (200 * Millisecond).Milliseconds(); got != 200 {
		t.Errorf("Milliseconds() = %v, want 200", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500s" {
		t.Errorf("String() = %q", s)
	}
}

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Millisecond, func(Time) { order = append(order, 3) })
	e.Schedule(10*Millisecond, func(Time) { order = append(order, 1) })
	e.Schedule(20*Millisecond, func(Time) { order = append(order, 2) })
	e.Run(Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("dispatch order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30*Millisecond {
		t.Errorf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Millisecond, func(Time) { order = append(order, i) })
	}
	e.Run(Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break order = %v, want scheduling order", order)
		}
	}
}

func TestEngineHorizonStopsDispatch(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10*Millisecond, func(Time) { fired++ })
	e.Schedule(90*Millisecond, func(Time) { fired++ })
	e.Run(50 * Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (horizon must hold back later events)", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(200 * Millisecond)
	if fired != 2 || e.Now() != 200*Millisecond {
		t.Errorf("after RunUntil: fired=%d now=%v", fired, e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10*Millisecond, func(Time) { fired = true })
	ev.Cancel()
	e.Run(Second)
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if e.Executed() != 0 {
		t.Errorf("Executed = %d, want 0", e.Executed())
	}
}

func TestEngineEventsScheduledDuringDispatch(t *testing.T) {
	e := NewEngine()
	var times []Time
	var chain Handler
	chain = func(now Time) {
		times = append(times, now)
		if len(times) < 5 {
			e.Schedule(7*Millisecond, chain)
		}
	}
	e.Schedule(0, chain)
	e.Run(Second)
	if len(times) != 5 {
		t.Fatalf("chain length = %d, want 5", len(times))
	}
	for i, ts := range times {
		if want := Time(i) * 7 * Millisecond; ts != want {
			t.Errorf("times[%d] = %v, want %v", i, ts, want)
		}
	}
}

func TestEngineZeroDelaySameTimeRunsAfterCurrent(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(Millisecond, func(Time) {
		order = append(order, "a")
		e.Schedule(0, func(Time) { order = append(order, "b") })
		order = append(order, "a-end")
	})
	e.Run(Second)
	want := []string{"a", "a-end", "b"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEnginePanicsOnNegativeDelayAndNilHandler(t *testing.T) {
	e := NewEngine()
	mustPanic(t, func() { e.Schedule(-1, func(Time) {}) })
	mustPanic(t, func() { e.Schedule(1, nil) })
	mustPanic(t, func() {
		e.now = 10
		e.ScheduleAt(5, func(Time) {})
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// Property: events always fire in nondecreasing time order regardless of the
// scheduling sequence.
func TestEngineMonotonicDispatchProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d)*Microsecond, func(now Time) { fired = append(fired, now) })
		}
		e.Run(Time(1 << 30))
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSchedulePrioOrdersTies(t *testing.T) {
	e := NewEngine()
	var order []string
	// At t=30ms three events tie. The prio events were booked first (so have
	// the smaller seq) but must fire in prio order, interleaving with the
	// plain booking which carries prio = its booking time (0).
	e.ScheduleAtPrio(30*Millisecond, 20*Millisecond, func(Time) { order = append(order, "p20") })
	e.ScheduleAtPrio(30*Millisecond, 10*Millisecond, func(Time) { order = append(order, "p10") })
	e.Schedule(30*Millisecond, func(Time) { order = append(order, "plain0") })
	e.Run(Second)
	want := []string{"plain0", "p10", "p20"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSchedulePrioPastPriority(t *testing.T) {
	e := NewEngine()
	e.Schedule(50*Millisecond, func(now Time) {
		// A stand-in for work already under way: prio before now is legal...
		e.ScheduleAtPrio(80*Millisecond, 20*Millisecond, func(Time) {})
	})
	e.Run(Second)
	// ...but the event time itself must not rewind, and prio must not lie
	// after the event.
	mustPanic(t, func() { e.ScheduleAtPrio(e.Now()-1, 0, func(Time) {}) })
	mustPanic(t, func() { e.ScheduleAtPrio(e.Now()+10, e.Now()+20, func(Time) {}) })
	mustPanic(t, func() { e.ScheduleAtPrio(e.Now()+10, 0, nil) })
}

// Property: with random (at, prio <= at) pairs, dispatch follows the
// documented (at, prio, seq) total order.
func TestEnginePrioDispatchOrderProperty(t *testing.T) {
	g := NewRNG(31)
	e := NewEngine()
	type key struct {
		at, prio Time
		seq      int
	}
	var fired []key
	const n = 3000
	for i := 0; i < n; i++ {
		i := i
		at := Time(g.Intn(500)) * Millisecond
		prio := Time(g.Intn(int(at/Millisecond)+1)) * Millisecond
		e.ScheduleAtPrio(at, prio, func(Time) { fired = append(fired, key{at, prio, i}) })
	}
	e.Run(Time(1 << 40))
	if len(fired) != n {
		t.Fatalf("dispatched %d, want %d", len(fired), n)
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if a.at > b.at || (a.at == b.at && a.prio > b.prio) ||
			(a.at == b.at && a.prio == b.prio && a.seq > b.seq) {
			t.Fatalf("out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

// Canceling most of the calendar must shrink it (lazy deletion compacts)
// without disturbing the survivors' dispatch order.
func TestEngineCancelCompaction(t *testing.T) {
	e := NewEngine()
	const n = 1000
	events := make([]*Event, n)
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		events[i] = e.Schedule(Time(i+1)*Millisecond, func(Time) { fired = append(fired, i) })
	}
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			events[i].Cancel()
		}
	}
	if e.Pending() >= n {
		t.Fatalf("calendar did not compact: %d pending after canceling 90%%", e.Pending())
	}
	e.Run(Second)
	if len(fired) != n/10 {
		t.Fatalf("fired %d, want %d", len(fired), n/10)
	}
	for j, i := range fired {
		if i != j*10 {
			t.Fatalf("fired order = %v..., want multiples of 10 in order", fired[:j+1])
		}
	}
	if e.Executed() != uint64(n/10) {
		t.Errorf("Executed = %d, want %d", e.Executed(), n/10)
	}
}

// Differential stress: random schedule/cancel traffic must dispatch exactly
// the live events, in exactly the (at, prio, seq) order, no matter how often
// the calendar compacts in between.
func TestEngineCompactionDifferential(t *testing.T) {
	g := NewRNG(77)
	e := NewEngine()
	type rec struct {
		at   Time
		prio Time
		id   int
	}
	var want []rec
	var got []rec
	var live []*Event
	var liveRec []rec
	id := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 200; i++ {
			at := Time(g.Intn(1_000_000))
			prio := Time(g.Intn(int(at) + 1))
			r := rec{at, prio, id}
			id++
			ev := e.ScheduleAtPrio(at, prio, func(Time) { got = append(got, r) })
			live = append(live, ev)
			liveRec = append(liveRec, r)
		}
		// Cancel a random two-thirds of everything still outstanding.
		var keptEv []*Event
		var keptRec []rec
		for i, ev := range live {
			if g.Intn(3) != 0 {
				ev.Cancel()
				continue
			}
			keptEv = append(keptEv, ev)
			keptRec = append(keptRec, liveRec[i])
		}
		live, liveRec = keptEv, keptRec
	}
	_ = live
	want = append(want, liveRec...)
	e.Run(Time(1 << 40))
	if len(got) != len(want) {
		t.Fatalf("dispatched %d, want %d", len(got), len(want))
	}
	// The surviving events must come out sorted by (at, prio, booking order).
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		if want[i].prio != want[j].prio {
			return want[i].prio < want[j].prio
		}
		return want[i].id < want[j].id
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRNGDeterminismAndStreams(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical sequences")
		}
	}
	s1 := NewRNG(42).Stream("arrivals")
	s2 := NewRNG(42).Stream("arrivals")
	s3 := NewRNG(42).Stream("files")
	if s1.Float64() != s2.Float64() {
		t.Fatal("same stream name must be reproducible")
	}
	if s1.Seed() == s3.Seed() {
		t.Fatal("different stream names must derive different seeds")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(1.2)
	}
	mean := sum / n
	if math.Abs(mean-1/1.2) > 0.01 {
		t.Errorf("Exp(1.2) mean = %v, want ~%v", mean, 1/1.2)
	}
}

func TestRNGNormMoments(t *testing.T) {
	g := NewRNG(11)
	const n = 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := g.Norm(0, 2)
		sum += x
		sq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(sd-2) > 0.03 {
		t.Errorf("Norm sd = %v, want ~2", sd)
	}
}

func TestRNGTwoDistinct(t *testing.T) {
	g := NewRNG(3)
	counts := make(map[int]int)
	for i := 0; i < 20000; i++ {
		a, b := g.TwoDistinct(8)
		if a == b {
			t.Fatal("TwoDistinct returned equal values")
		}
		if a < 0 || a >= 8 || b < 0 || b >= 8 {
			t.Fatalf("out of range: %d %d", a, b)
		}
		counts[a]++
		counts[b]++
	}
	for v, c := range counts {
		if c < 4000 || c > 6000 {
			t.Errorf("value %d drawn %d times, want ~5000 (uniformity)", v, c)
		}
	}
	mustPanic(t, func() { g.TwoDistinct(1) })
	mustPanic(t, func() { g.Exp(0) })
}

func TestRNGExpTime(t *testing.T) {
	g := NewRNG(5)
	const n = 100000
	var total Time
	for i := 0; i < n; i++ {
		total += g.ExpTime(2.0) // 2 events/sec -> mean gap 0.5s
	}
	mean := total.Seconds() / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("ExpTime(2) mean = %v s, want ~0.5", mean)
	}
}

func TestHeapStress(t *testing.T) {
	g := NewRNG(99)
	e := NewEngine()
	const n = 5000
	var last Time = -1
	count := 0
	for i := 0; i < n; i++ {
		e.Schedule(Time(g.Intn(1000))*Millisecond, func(now Time) {
			if now < last {
				t.Errorf("heap emitted out-of-order event: %v after %v", now, last)
			}
			last = now
			count++
		})
	}
	e.Run(Time(1 << 40))
	if count != n {
		t.Fatalf("dispatched %d, want %d", count, n)
	}
}

func TestRNGPerm(t *testing.T) {
	g := NewRNG(17)
	seen := make(map[int]bool)
	p := g.Perm(10)
	if len(p) != 10 {
		t.Fatalf("len = %d", len(p))
	}
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormalCDF(t *testing.T) {
	cases := map[float64]float64{0: 0.5, -1: 0.1587, 1: 0.8413, -0.1: 0.4602}
	for x, want := range cases {
		if got := NormalCDF(x); math.Abs(got-want) > 1e-3 {
			t.Errorf("Φ(%v) = %v, want %v", x, got, want)
		}
	}
}
