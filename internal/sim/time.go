// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a cancellable event calendar with FIFO tie-breaking, and
// seeded random-variate streams. It is the substrate every machine model in
// this repository runs on.
package sim

import "fmt"

// Time is a point on (or a span of) the virtual clock, in microseconds.
// The paper's unit is the millisecond ("1 clock = 1 millisecond"); we keep
// microsecond resolution so that fractional-object costs such as 0.2/8
// objects stay exact integers.
type Time int64

// Convenient durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Milliseconds returns d expressed in (possibly fractional) milliseconds.
func (d Time) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns d expressed in (possibly fractional) seconds.
func (d Time) Seconds() float64 { return float64(d) / float64(Second) }

// FromSeconds converts a duration in seconds to a Time span, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// FromMilliseconds converts a duration in milliseconds to a Time span,
// rounding to the nearest microsecond.
func FromMilliseconds(ms float64) Time { return Time(ms*float64(Millisecond) + 0.5) }

// String formats the time in seconds with millisecond precision.
func (d Time) String() string { return fmt.Sprintf("%.3fs", d.Seconds()) }
