package sim

import "fmt"

// Sharded calendar: SetShards gives the engine n single-slot sub-calendars,
// one per model component that maintains at most one pending self-event at a
// time (a DPN's coalesced next-completion, in this repo). Shard bookings live
// outside the main heap in a small heap of occupied slots ordered by the same
// (time, prio, tie, seq) total order, which buys two things:
//
//   - Rebooking is O(log S) in the shard count S instead of O(log N) in the
//     whole calendar, with no tombstones: a canceled shard event is unlinked
//     in place (removeAt) rather than lazily popped later, so the heavy
//     cancel-and-rebook traffic of the fast-forward DPN engine stops paying
//     for heap churn against unrelated CN events.
//   - CollectWave can read off a "safe wave" — the maximal run of shard-head
//     events at one instant that all sort strictly before the main-calendar
//     head — in sorted order, which is the unit of parallelism for the
//     conservative PDES loop in internal/machine (see DESIGN.md §13).
//
// Dispatch order is provably identical to a single merged calendar: Step and
// CollectWave compare shard heads against the main head with the exact
// eventLess comparator used inside each heap, and keys are unique (seq is),
// so the merge of the two heaps is the same total order the single heap
// would have popped.

// SetShards arranges n single-slot sub-calendars (shards 0..n-1). It must be
// called before any ScheduleShard* booking and may be called once per engine;
// calling it while shard bookings exist panics.
func (e *Engine) SetShards(n int) {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative shard count %d", n))
	}
	if e.shardCal.Len() > 0 {
		panic("sim: SetShards with shard bookings pending")
	}
	e.shardEv = make([]*Event, n)
	e.shardCal.items = make([]*Event, 0, n)
}

// Shards returns the number of sub-calendars configured with SetShards.
func (e *Engine) Shards() int { return len(e.shardEv) }

// ScheduleShardTie books fn at absolute time at (>= Now) on the given shard's
// slot, with the same explicit tie position as ScheduleAtTie. The slot must
// be empty: a shard holds at most one pending event, and the previous booking
// must be canceled (or have fired) first.
func (e *Engine) ScheduleShardTie(shard int, at, prio Time, tie TieKey, fn Handler) *Event {
	return e.scheduleShard(shard, at, prio, tie, true, fn)
}

// ScheduleShardPrio is ScheduleShardTie without a genealogy key.
func (e *Engine) ScheduleShardPrio(shard int, at, prio Time, fn Handler) *Event {
	return e.scheduleShard(shard, at, prio, TieKey{}, false, fn)
}

func (e *Engine) scheduleShard(shard int, at, prio Time, tie TieKey, hasTie bool, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if prio > at {
		panic(fmt.Sprintf("sim: priority %v after event time %v", prio, at))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	if e.shardEv[shard] != nil {
		panic(fmt.Sprintf("sim: shard %d already booked", shard))
	}
	// As in ScheduleAtTie, the tie key must be in place before the push so
	// the heap sifts with the final comparator key.
	ev := e.alloc(at, prio, "", fn)
	ev.tie = tie
	ev.hasTie = hasTie
	ev.shard = shard
	e.shardEv[shard] = ev
	e.shardCal.push(ev)
	return ev
}

// cancelShard unlinks a canceled shard booking immediately (no tombstone):
// the slot must be free for the shard's next booking.
func (e *Engine) cancelShard(ev *Event) {
	e.shardCal.removeAt(ev.index)
	e.shardEv[ev.shard] = nil
	e.recycle(ev)
}

// peekLive returns the next live main-calendar event, discarding any
// tombstones that have surfaced, or nil when the main calendar is empty.
func (e *Engine) peekLive() *Event {
	for e.calendar.Len() > 0 {
		next := e.calendar.peek()
		if !next.canceled {
			return next
		}
		e.calendar.pop()
		e.dead--
		e.recycle(next)
	}
	return nil
}

// CollectWave pops and returns the current safe wave: the maximal run of
// shard events sharing the earliest shard timestamp t* (<= horizon) that all
// sort strictly before the next main-calendar event. Members are returned in
// exact dispatch order and have been removed from their slots — the caller
// must route every one of them through DispatchWaveMember, in order, before
// touching the engine again. Returns buf[:0]'s backing slice grown as needed;
// nil members never occur. An empty result means the next event (if any) is
// not a shard event, or lies beyond the horizon.
//
// Restricting the wave to one instant keeps Executed() stamps assignable up
// front: member k of a wave collected at Executed()==base will observe
// Executed()==base+k+1 inside its handler, exactly as under sequential
// dispatch, because no other event can interleave.
func (e *Engine) CollectWave(buf []*Event, horizon Time) []*Event {
	buf = buf[:0]
	if e.shardCal.Len() == 0 {
		return buf
	}
	main := e.peekLive()
	head := e.shardCal.peek()
	if head.at > horizon || (main != nil && !eventLess(head, main)) {
		return buf
	}
	tstar := head.at
	for e.shardCal.Len() > 0 {
		h := e.shardCal.peek()
		if h.at != tstar || (main != nil && !eventLess(h, main)) {
			break
		}
		e.shardCal.pop()
		e.shardEv[h.shard] = nil
		buf = append(buf, h)
	}
	return buf
}

// DispatchWaveMember fires one wave member exactly as Step would have:
// advances the clock and tie priority, counts the dispatch, runs the handler,
// and recycles the event. Members of one wave must be dispatched in the order
// CollectWave returned them.
func (e *Engine) DispatchWaveMember(ev *Event) {
	if ev.canceled {
		e.recycle(ev)
		return
	}
	e.now = ev.at
	e.curPrio = ev.prio
	e.executed++
	if ev.pfn != nil {
		pfn, arg := ev.pfn, ev.arg
		pfn(e.now, arg)
	} else {
		fn := ev.fn
		fn(e.now)
	}
	e.recycle(ev)
}
