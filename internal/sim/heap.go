package sim

// eventHeap is a binary min-heap ordered by (time, seq). It is hand-rolled
// rather than container/heap to avoid the interface boxing on the hot path:
// a 2M-ms simulation dispatches hundreds of thousands of events.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(h.items)
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

func (h *eventHeap) peek() *Event {
	return h.items[0]
}

func (h *eventHeap) pop() *Event {
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
