package sim

// eventHeap is a 4-ary min-heap ordered by (time, prio, tie key, seq). It is
// hand-rolled rather than container/heap to avoid the interface boxing on
// the hot path: a 2M-ms simulation dispatches hundreds of thousands of
// events. The 4-ary layout halves the tree depth of the sift operations and
// keeps each node's children in one cache line of pointers, which measures
// faster than the binary layout on calendar-heavy runs.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) Len() int { return len(h.items) }

// eventLess is the calendar's total dispatch order (time, prio, tie, seq),
// shared by the main heap, the per-shard slot heap and the safe-wave merge —
// one comparator, so sharding can never reorder a dispatch.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.hasTie && b.hasTie {
		if l, ok := tieLess(a.prio, &a.tie, &b.tie); ok {
			return l
		}
	}
	return a.seq < b.seq
}

func (h *eventHeap) less(i, j int) bool { return eventLess(h.items[i], h.items[j]) }

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(h.items)
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

func (h *eventHeap) peek() *Event {
	return h.items[0]
}

func (h *eventHeap) pop() *Event {
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

// removeAt unlinks the event at heap position i in O(log n) without leaving
// a tombstone (the shard calendar replaces bookings in place instead of
// cancel-and-repushing).
func (h *eventHeap) removeAt(i int) *Event {
	ev := h.items[i]
	last := len(h.items) - 1
	h.swap(i, last)
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	ev.index = -1
	return ev
}

// reheap restores the heap property over the whole slice (after the engine
// compacts tombstones out of it).
func (h *eventHeap) reheap() {
	n := len(h.items)
	for i := (n - 2) / 4; i >= 0; i-- {
		h.down(i)
	}
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		smallest := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
