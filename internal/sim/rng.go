package sim

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of the random variates the models need. Independent
// streams (arrivals, file choice, cost error, ...) are derived from one
// master seed with Stream, so adding a consumer never perturbs the draws
// seen by existing consumers.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Stream derives an independent generator for the named consumer. The
// derivation mixes the master seed with a hash of the name (splitmix64 over
// FNV), so streams are stable across runs and decoupled from each other.
func (g *RNG) Stream(name string) *RNG {
	return NewRNG(DeriveSeed(g.seed, name))
}

// DeriveSeed derives an independent substream seed from a root seed and a
// string key (splitmix64 over an FNV-1a hash of the key). It is the seeding
// scheme behind Stream, exported so harnesses that replicate runs — the
// sweep engine derives one substream per (cell key, replication) — get
// seeds that are stable across runs, decoupled from each other, and
// independent of execution order.
func DeriveSeed(root int64, key string) int64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int64(splitmix64(uint64(root) ^ h))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seed returns the seed this generator was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exp returns an exponential variate with the given rate (mean 1/rate).
// rate must be > 0.
func (g *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp needs rate > 0")
	}
	return g.r.ExpFloat64() / rate
}

// ExpTime returns an exponential inter-arrival span for a Poisson process of
// ratePerSecond events per second.
func (g *RNG) ExpTime(ratePerSecond float64) Time {
	return FromSeconds(g.Exp(ratePerSecond))
}

// Norm returns a normal variate with the given mean and standard deviation.
func (g *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Pareto returns a Pareto variate with shape alpha and scale xm (the
// distribution's minimum) by inverse-CDF sampling. Both must be positive.
// For alpha > 1 the mean is alpha*xm/(alpha-1), so xm = (alpha-1)/alpha
// gives a unit-mean draw — the normalization the heavy-tailed cost
// workload uses.
func (g *RNG) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("sim: Pareto needs alpha > 0 and xm > 0")
	}
	return xm / math.Pow(1-g.Float64(), 1/alpha)
}

// TwoDistinct returns two distinct uniform integers in [0, n). n must be >= 2.
func (g *RNG) TwoDistinct(n int) (int, int) {
	if n < 2 {
		panic("sim: TwoDistinct needs n >= 2")
	}
	a := g.Intn(n)
	b := g.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// Standard normal CDF helper used by analytical sanity tests.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
