package sim

import "fmt"

// Handler is a piece of model logic run when an event fires. The engine
// passes the current virtual time.
type Handler func(now Time)

// Event is a scheduled occurrence on the calendar. It is returned by
// Schedule so callers can cancel it before it fires.
type Event struct {
	at       Time
	seq      uint64 // FIFO tie-break among equal timestamps
	fn       Handler
	canceled bool
	index    int // heap index, -1 when not on the heap
	label    string
}

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event's handler from running. Canceling an event that
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Engine is a single-threaded discrete-event simulator. Events scheduled for
// the same timestamp fire in scheduling order, which makes every run fully
// deterministic for a given seed and model.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now      Time
	seq      uint64
	calendar eventHeap
	executed uint64
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far (canceled events
// excluded).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently on the calendar, including
// canceled events that have not yet been discarded.
func (e *Engine) Pending() int { return e.calendar.Len() }

// Schedule books fn to run after delay. A negative delay panics: the model
// would be rewinding time, which is always a bug.
func (e *Engine) Schedule(delay Time, fn Handler) *Event {
	return e.ScheduleLabeled(delay, "", fn)
}

// ScheduleAt books fn to run at absolute virtual time at (>= Now).
func (e *Engine) ScheduleAt(at Time, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	return e.book(at, "", fn)
}

// ScheduleLabeled is Schedule with a diagnostic label (shown in panics and
// useful in tests/tracing).
func (e *Engine) ScheduleLabeled(delay Time, label string, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.book(e.now+delay, label, fn)
}

func (e *Engine) book(at Time, label string, fn Handler) *Event {
	if fn == nil {
		panic("sim: nil handler")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, label: label}
	e.calendar.push(ev)
	return ev
}

// Step dispatches the single next event. It returns false when the calendar
// is empty or the next event is beyond horizon.
func (e *Engine) Step(horizon Time) bool {
	for e.calendar.Len() > 0 {
		next := e.calendar.peek()
		if next.canceled {
			e.calendar.pop()
			continue
		}
		if next.at > horizon {
			return false
		}
		e.calendar.pop()
		e.now = next.at
		e.executed++
		next.fn(e.now)
		return true
	}
	return false
}

// Run dispatches events in timestamp order until the calendar drains or the
// next event lies beyond horizon. The clock is left at the last dispatched
// event (or horizon if nothing at all fired past it); callers that want the
// clock pinned to the horizon should use RunUntil.
func (e *Engine) Run(horizon Time) {
	for e.Step(horizon) {
	}
}

// RunUntil runs to the horizon and then advances the clock to exactly the
// horizon, which is what a fixed measurement window wants.
func (e *Engine) RunUntil(horizon Time) {
	e.Run(horizon)
	if e.now < horizon {
		e.now = horizon
	}
}
