package sim

import "fmt"

// Handler is a piece of model logic run when an event fires. The engine
// passes the current virtual time.
type Handler func(now Time)

// PayloadHandler is a Handler with an attached argument. Hot paths that
// would otherwise allocate a fresh closure per event can instead schedule a
// long-lived function plus a pointer payload (boxing a pointer into an
// interface does not allocate).
type PayloadHandler func(now Time, arg any)

// Event is a scheduled occurrence on the calendar. It is returned by
// Schedule so callers can cancel it before it fires.
//
// The reference is valid only until the event fires or, once canceled, until
// the engine discards it from the calendar: after that the engine recycles
// the Event for a later Schedule call. Callers that retain an Event across
// dispatches (to cancel an in-flight timer) must drop the reference when its
// handler runs, as the handler's first action.
type Event struct {
	at Time
	// prio breaks ties among events with equal timestamps before seq does.
	// book sets it to the booking time, so for ordinary events (booking
	// times are nondecreasing in seq) it changes nothing; ScheduleAtPrio
	// sets it explicitly so a coalescing model can plant a future event in
	// exactly the tie position of the fine-grained event it stands for.
	prio     Time
	seq      uint64 // FIFO tie-break among equal (at, prio)
	fn       Handler
	pfn      PayloadHandler // set instead of fn by SchedulePayload
	arg      any
	canceled bool
	index    int     // heap index, -1 when not on the heap
	shard    int     // owning sub-calendar, -1 for the main calendar
	eng      *Engine // owner, for the canceled-event accounting in Cancel
	label    string
	// tie (when hasTie is set) refines the ordering among events with equal
	// (at, prio) beyond booking order; see TieKey and ScheduleAtTie.
	tie    TieKey
	hasTie bool
}

// TieKey describes the booking genealogy of an event that stands in for the
// last link of an elided event chain (one calendar event per service quantum,
// say). Two stand-ins with equal (at, prio) fire in the order the elided
// bookings would have been made, which is decided by walking both chains
// backward to their first difference. The chains are regular — each link
// booked by a predecessor firing one fixed spacing earlier — between
// irregularities, so the walk needs only:
//
//   - Q, the regular spacing (the full service quantum, under any current
//     service-rate multiplier);
//   - Anchor, the fire time of the chain's most recent irregular link
//     (a short service slice, or the booking that started the chain);
//   - Pre, that link's own tie-breaking priority (the fire time of ITS
//     predecessor, or the booking time of a chain-starting event);
//   - Stamp, a dispatch-order stamp of the irregular link, breaking ties
//     between chains whose anchors coincide exactly.
//
// Chains regular at the tie point diverge first where one hits its anchor;
// the comparison there is Pre versus the other chain's reconstructed regular
// value. Ordinary events never carry a TieKey and order purely by booking
// seq, as before.
type TieKey struct {
	Q      Time
	Anchor Time
	Pre    Time
	Stamp  uint64
}

// tieLess orders two tie keys for events sharing priority p. The second
// result is false when the keys cannot distinguish the events (fall back to
// booking order).
func tieLess(p Time, x, y *TieKey) (less, ok bool) {
	if *x == *y {
		return false, false
	}
	// Depth 1: the predecessor links, firing at p.
	wx := p - x.Q
	if x.Anchor == p {
		wx = x.Pre
	}
	wy := p - y.Q
	if y.Anchor == p {
		wy = y.Pre
	}
	if wx != wy {
		return wx < wy, true
	}
	if x.Anchor == p || y.Anchor == p {
		// At least one chain is already at its anchor; nothing deeper is
		// recorded, so the anchors' dispatch stamps decide.
		if x.Stamp != y.Stamp {
			return x.Stamp < y.Stamp, true
		}
		return false, false
	}
	// Both chains regular at depth 1 with the same spacing. They stay equal
	// until the shallower anchor, where the anchored chain's Pre meets the
	// other's reconstructed regular value.
	m := x.Anchor
	if y.Anchor > m {
		m = y.Anchor
	}
	vx := m - x.Q
	if x.Anchor == m {
		vx = x.Pre
	}
	vy := m - y.Q
	if y.Anchor == m {
		vy = y.Pre
	}
	if vx != vy {
		return vx < vy, true
	}
	if x.Stamp != y.Stamp {
		return x.Stamp < y.Stamp, true
	}
	return false, false
}

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event's handler from running. Canceling an event that
// already fired (or was already canceled) is a no-op. On the main calendar
// the tombstone stays until it surfaces or the engine compacts; the engine
// keeps a count of live tombstones so heavy cancelers cannot bloat the heap.
// A sharded event is instead unlinked and recycled immediately — its slot
// must be free for the shard's next booking — so the caller must drop the
// reference as soon as Cancel returns.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 && e.eng != nil {
		if e.shard >= 0 {
			e.eng.cancelShard(e)
			return
		}
		e.eng.dead++
		e.eng.maybeCompact()
	}
}

// Shard returns the sub-calendar the event was booked on (ScheduleShard), or
// -1 for main-calendar events.
func (e *Event) Shard() int { return e.shard }

// Engine is a single-threaded discrete-event simulator. Events scheduled for
// the same timestamp fire in scheduling order, which makes every run fully
// deterministic for a given seed and model.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now      Time
	seq      uint64
	calendar eventHeap
	executed uint64
	// curPrio is the tie-breaking priority of the event being dispatched
	// (its booking time for ordinary events). Models that coalesce
	// fine-grained events read it to decide whether a stood-for event would
	// have fired before the one currently running.
	curPrio Time
	// dead counts canceled events still sitting on the calendar; when they
	// outnumber the live ones the calendar is compacted in one pass instead
	// of sifting each tombstone to the top.
	dead int
	// pool is a free list of fired/discarded events; a 2M-ms run dispatches
	// hundreds of thousands of events, and recycling them keeps Schedule
	// allocation-free at steady state.
	pool []*Event

	// Sharded-calendar state (SetShards): shardEv[i] is shard i's single
	// booking slot (nil when empty) and shardCal is the heap of occupied
	// slots, ordered by the same (time, prio, tie, seq) total order as the
	// main calendar. See shard.go.
	shardEv  []*Event
	shardCal eventHeap
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far (canceled events
// excluded).
func (e *Engine) Executed() uint64 { return e.executed }

// CurPrio returns the tie-breaking priority of the event currently being
// dispatched — its booking time, for events booked with Schedule and
// friends. An event's handler can compare (Now, CurPrio) against the
// (timestamp, priority) key of a fine-grained event it elided to decide
// whether that event would already have fired. Meaningful only inside a
// handler; between dispatches it holds the last dispatched event's priority.
func (e *Engine) CurPrio() Time { return e.curPrio }

// Pending returns the number of events currently on the calendar (main and
// shard sub-calendars), including canceled events that have not yet been
// discarded.
func (e *Engine) Pending() int { return e.calendar.Len() + e.shardCal.Len() }

// Schedule books fn to run after delay. A negative delay panics: the model
// would be rewinding time, which is always a bug.
func (e *Engine) Schedule(delay Time, fn Handler) *Event {
	return e.ScheduleLabeled(delay, "", fn)
}

// ScheduleAt books fn to run at absolute virtual time at (>= Now).
func (e *Engine) ScheduleAt(at Time, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	return e.book(at, e.now, "", fn)
}

// ScheduleAtPrio books fn at absolute virtual time at (>= Now) with an
// explicit tie-breaking priority: equal-timestamp events fire in (prio, seq)
// order, and every ordinary booking gets prio = its booking time. A model
// that coalesces a chain of fine-grained events into one future event passes
// the virtual time the final fine-grained event would have been booked at,
// placing the stand-in exactly where the chain's last link would have tied.
// prio may lie in the past (the stand-in for work already under way).
func (e *Engine) ScheduleAtPrio(at, prio Time, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if prio > at {
		panic(fmt.Sprintf("sim: priority %v after event time %v", prio, at))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	return e.book(at, prio, "", fn)
}

// ScheduleAtTie is ScheduleAtPrio with a booking-genealogy key: among events
// with equal (at, prio) that both carry one, the tie keys order the events as
// the elided fine-grained bookings would have been ordered (see TieKey).
func (e *Engine) ScheduleAtTie(at, prio Time, tie TieKey, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if prio > at {
		panic(fmt.Sprintf("sim: priority %v after event time %v", prio, at))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	// The key must be complete before the event enters the heap: the sift
	// compares with eventLess, and an event pushed tie-less and patched
	// afterwards can sit above a sibling the tie key says it follows.
	ev := e.alloc(at, prio, "", fn)
	ev.tie = tie
	ev.hasTie = true
	e.calendar.push(ev)
	return ev
}

// ScheduleLabeled is Schedule with a diagnostic label (shown in panics and
// useful in tests/tracing).
func (e *Engine) ScheduleLabeled(delay Time, label string, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	return e.book(e.now+delay, e.now, label, fn)
}

// SchedulePayload books fn(arg) to run after delay. It is Schedule for
// allocation-sensitive callers: fn is typically a long-lived bound function
// and arg carries the per-event state, so no per-event closure is needed.
func (e *Engine) SchedulePayload(delay Time, fn PayloadHandler, arg any) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	ev := e.book(e.now+delay, e.now, "", nil)
	ev.pfn = fn
	ev.arg = arg
	return ev
}

func (e *Engine) book(at, prio Time, label string, fn Handler) *Event {
	ev := e.alloc(at, prio, label, fn)
	e.calendar.push(ev)
	return ev
}

// alloc takes an event off the free list (or makes one), stamped with the
// next booking sequence number but not yet on any calendar.
func (e *Engine) alloc(at, prio Time, label string, fn Handler) *Event {
	e.seq++
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		*ev = Event{at: at, prio: prio, seq: e.seq, fn: fn, eng: e, label: label, shard: -1}
	} else {
		ev = &Event{at: at, prio: prio, seq: e.seq, fn: fn, eng: e, label: label, shard: -1}
	}
	return ev
}

// maybeCompact rebuilds the calendar without its tombstones once canceled
// events outnumber live ones (and there are enough of them to be worth a
// pass). Compaction preserves dispatch order exactly: the heap order is a
// total order on (at, prio, seq), so any valid heap over the same live set
// pops identically.
func (e *Engine) maybeCompact() {
	if e.dead < 64 || e.dead*2 <= e.calendar.Len() {
		return
	}
	items := e.calendar.items
	n := 0
	for _, ev := range items {
		if ev.canceled {
			ev.index = -1
			e.recycle(ev)
			continue
		}
		items[n] = ev
		ev.index = n
		n++
	}
	for i := n; i < len(items); i++ {
		items[i] = nil
	}
	e.calendar.items = items[:n]
	e.calendar.reheap()
	e.dead = 0
}

// recycle returns a fired or discarded event to the free list, dropping its
// handler references so captured state can be collected.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.pfn = nil
	ev.arg = nil
	ev.label = ""
	e.pool = append(e.pool, ev)
}

// Step dispatches the single next event, merging the main calendar with the
// shard sub-calendars under the one eventLess total order. It returns false
// when both are empty or the next event is beyond horizon.
func (e *Engine) Step(horizon Time) bool {
	next := e.peekLive()
	if e.shardCal.Len() > 0 {
		if sh := e.shardCal.peek(); next == nil || eventLess(sh, next) {
			if sh.at > horizon {
				return false
			}
			e.shardCal.pop()
			e.shardEv[sh.shard] = nil
			e.dispatch(sh)
			return true
		}
	}
	if next == nil || next.at > horizon {
		return false
	}
	e.calendar.pop()
	e.dispatch(next)
	return true
}

func (e *Engine) dispatch(next *Event) {
	e.now = next.at
	e.curPrio = next.prio
	e.executed++
	if next.pfn != nil {
		pfn, arg := next.pfn, next.arg
		pfn(e.now, arg)
	} else {
		fn := next.fn
		fn(e.now)
	}
	e.recycle(next)
}

// Run dispatches events in timestamp order until the calendar drains or the
// next event lies beyond horizon. The clock is left at the last dispatched
// event (or horizon if nothing at all fired past it); callers that want the
// clock pinned to the horizon should use RunUntil.
func (e *Engine) Run(horizon Time) {
	for e.Step(horizon) {
	}
}

// RunUntil runs to the horizon and then advances the clock to exactly the
// horizon, which is what a fixed measurement window wants.
func (e *Engine) RunUntil(horizon Time) {
	e.Run(horizon)
	if e.now < horizon {
		e.now = horizon
	}
}
