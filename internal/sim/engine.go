package sim

import "fmt"

// Handler is a piece of model logic run when an event fires. The engine
// passes the current virtual time.
type Handler func(now Time)

// PayloadHandler is a Handler with an attached argument. Hot paths that
// would otherwise allocate a fresh closure per event can instead schedule a
// long-lived function plus a pointer payload (boxing a pointer into an
// interface does not allocate).
type PayloadHandler func(now Time, arg any)

// Event is a scheduled occurrence on the calendar. It is returned by
// Schedule so callers can cancel it before it fires.
//
// The reference is valid only until the event fires or, once canceled, until
// the engine discards it from the calendar: after that the engine recycles
// the Event for a later Schedule call. Callers that retain an Event across
// dispatches (to cancel an in-flight timer) must drop the reference when its
// handler runs, as the handler's first action.
type Event struct {
	at       Time
	seq      uint64 // FIFO tie-break among equal timestamps
	fn       Handler
	pfn      PayloadHandler // set instead of fn by SchedulePayload
	arg      any
	canceled bool
	index    int // heap index, -1 when not on the heap
	label    string
}

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event's handler from running. Canceling an event that
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Engine is a single-threaded discrete-event simulator. Events scheduled for
// the same timestamp fire in scheduling order, which makes every run fully
// deterministic for a given seed and model.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now      Time
	seq      uint64
	calendar eventHeap
	executed uint64
	// pool is a free list of fired/discarded events; a 2M-ms run dispatches
	// hundreds of thousands of events, and recycling them keeps Schedule
	// allocation-free at steady state.
	pool []*Event
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far (canceled events
// excluded).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently on the calendar, including
// canceled events that have not yet been discarded.
func (e *Engine) Pending() int { return e.calendar.Len() }

// Schedule books fn to run after delay. A negative delay panics: the model
// would be rewinding time, which is always a bug.
func (e *Engine) Schedule(delay Time, fn Handler) *Event {
	return e.ScheduleLabeled(delay, "", fn)
}

// ScheduleAt books fn to run at absolute virtual time at (>= Now).
func (e *Engine) ScheduleAt(at Time, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	return e.book(at, "", fn)
}

// ScheduleLabeled is Schedule with a diagnostic label (shown in panics and
// useful in tests/tracing).
func (e *Engine) ScheduleLabeled(delay Time, label string, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	return e.book(e.now+delay, label, fn)
}

// SchedulePayload books fn(arg) to run after delay. It is Schedule for
// allocation-sensitive callers: fn is typically a long-lived bound function
// and arg carries the per-event state, so no per-event closure is needed.
func (e *Engine) SchedulePayload(delay Time, fn PayloadHandler, arg any) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	ev := e.book(e.now+delay, "", nil)
	ev.pfn = fn
	ev.arg = arg
	return ev
}

func (e *Engine) book(at Time, label string, fn Handler) *Event {
	e.seq++
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		*ev = Event{at: at, seq: e.seq, fn: fn, label: label}
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, label: label}
	}
	e.calendar.push(ev)
	return ev
}

// recycle returns a fired or discarded event to the free list, dropping its
// handler references so captured state can be collected.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.pfn = nil
	ev.arg = nil
	ev.label = ""
	e.pool = append(e.pool, ev)
}

// Step dispatches the single next event. It returns false when the calendar
// is empty or the next event is beyond horizon.
func (e *Engine) Step(horizon Time) bool {
	for e.calendar.Len() > 0 {
		next := e.calendar.peek()
		if next.canceled {
			e.calendar.pop()
			e.recycle(next)
			continue
		}
		if next.at > horizon {
			return false
		}
		e.calendar.pop()
		e.now = next.at
		e.executed++
		if next.pfn != nil {
			pfn, arg := next.pfn, next.arg
			pfn(e.now, arg)
		} else {
			fn := next.fn
			fn(e.now)
		}
		e.recycle(next)
		return true
	}
	return false
}

// Run dispatches events in timestamp order until the calendar drains or the
// next event lies beyond horizon. The clock is left at the last dispatched
// event (or horizon if nothing at all fired past it); callers that want the
// clock pinned to the horizon should use RunUntil.
func (e *Engine) Run(horizon Time) {
	for e.Step(horizon) {
	}
}

// RunUntil runs to the horizon and then advances the clock to exactly the
// horizon, which is what a fixed measurement window wants.
func (e *Engine) RunUntil(horizon Time) {
	e.Run(horizon)
	if e.now < horizon {
		e.now = horizon
	}
}
