// Package experiments defines and runs the paper's evaluation: one
// regenerator per table and figure (Fig. 8-13, Tables 2-5), built on a
// parameterized simulation point, a parallel runner, and a bisection solver
// for "the arrival rate at which mean response time is 70 seconds" — the
// paper's throughput metric.
package experiments

import (
	"context"
	"fmt"

	"batchsched/internal/admit"
	"batchsched/internal/fault"
	"batchsched/internal/machine"
	"batchsched/internal/metrics"
	"batchsched/internal/obs"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/sweep"
	"batchsched/internal/workload"
)

// Workload selects the experiment's transaction generator.
type Workload string

const (
	// Exp1 is Pattern1 over NumFiles files (blocking-heavy).
	Exp1 Workload = "exp1"
	// Exp2 is Pattern2 over 8 read-only + 8 hot files (hot-set updating).
	Exp2 Workload = "exp2"
)

// Point is one fully specified simulation configuration.
type Point struct {
	// Scheduler is the paper name ("NODC", "ASL", "GOW", "LOW", "C2PL",
	// "C2PL+M", "OPT").
	Scheduler string
	// MPL is the C2PL+M admission limit (ignored by the others).
	MPL int
	// Lambda is the arrival rate in TPS.
	Lambda float64
	// NumFiles is the database size in files (Exp1; Exp2 fixes 8+8).
	NumFiles int
	// DD is the degree of declustering.
	DD int
	// Sigma is the Experiment-3 estimation-error standard deviation.
	Sigma float64
	// Load selects the workload generator.
	Load Workload
	// Seed seeds the run; replication r uses Seed+r.
	Seed int64
	// Reps is the number of independent replications to average (>= 1).
	Reps int
	// Duration overrides the simulated span (0 = the paper's 2,000,000 ms).
	Duration sim.Time
	// K overrides LOW's conflict bound (0 = the paper's K=2).
	K int
	// RestartDelay holds fault-aborted transactions back before they are
	// resubmitted (0 = immediate, the paper's failure-free setting).
	RestartDelay sim.Time
	// Faults configures the fault injector (zero value = failure-free).
	Faults fault.Config
	// QuantumStepped selects the quantum-per-event DPN oracle instead of
	// the fast-forward engine (identical results, more calendar events).
	QuantumStepped bool
	// ParallelRun selects the sharded-calendar PDES engine (results are
	// byte-identical to the merged calendar): 0 = merged, 1 = sharded on
	// the caller's goroutine, N > 1 = N wave-prepare workers per run.
	ParallelRun int
	// Service switches the run into streaming-admission mode
	// (internal/admit): arrivals flow through the bounded admission queue
	// and the epoch loop instead of the closed paper loop. nil = closed.
	Service *admit.Policy
	// Arrival names the open arrival process for service runs: "" or
	// "poisson" (homogeneous at Lambda), "diurnal", or "burst". A fresh
	// process is built per replication (Burst is stateful).
	Arrival string
}

func (p Point) generator() machine.Generator {
	var g machine.Generator
	switch p.Load {
	case Exp2:
		g = workload.NewExp2()
	default:
		g = workload.NewExp1(p.NumFiles)
	}
	if p.Sigma > 0 {
		g = workload.WithError{Gen: g.(workload.Generator), Sigma: p.Sigma}
	}
	return g
}

// Run simulates the point, averaging Reps replications.
func Run(p Point) metrics.Summary {
	if p.Reps < 1 {
		p.Reps = 1
	}
	sums := make([]metrics.Summary, p.Reps)
	for r := 0; r < p.Reps; r++ {
		sums[r] = runOnce(p, p.Seed+int64(r))
	}
	return metrics.Average(sums)
}

func runOnce(p Point, seed int64) metrics.Summary { return runObserved(p, seed, nil) }

// RunObserved simulates one replication (at p.Seed) of the point with the
// / observability recorder attached. The instrumentation is passive: the
// returned summary is identical to Run's first replication.
func RunObserved(p Point, ob *obs.Observer) metrics.Summary {
	return runObserved(p, p.Seed, ob)
}

func runObserved(p Point, seed int64, ob *obs.Observer) metrics.Summary {
	params := sched.DefaultParams()
	params.MPL = p.MPL
	if p.K > 0 {
		params.K = p.K
	}
	cfg := machine.DefaultConfig()
	cfg.ArrivalRate = p.Lambda
	cfg.NumFiles = p.NumFiles
	if p.Load == Exp2 {
		cfg.NumFiles = 16
	}
	cfg.DD = p.DD
	if p.Duration > 0 {
		cfg.Duration = p.Duration
	}
	cfg.RestartDelay = p.RestartDelay
	cfg.Faults = p.Faults
	cfg.QuantumStepped = p.QuantumStepped
	cfg.ParallelRun = p.ParallelRun
	if p.Service != nil {
		pol := *p.Service // the machine must not share policy state across replications
		cfg.Service = &pol
		arr, aerr := ArrivalProcess(p.Arrival, p.Lambda)
		if aerr != nil {
			panic(fmt.Sprintf("experiments: %v", aerr))
		}
		cfg.Arrivals = arr
	}
	m, err := machine.New(cfg, sched.MustNew(p.Scheduler, params), p.generator(), sim.NewRNG(seed))
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	m.SetObs(ob)
	return m.Run()
}

// RunAll simulates many points concurrently on the shared sweep worker
// pool (GOMAXPROCS workers) and returns summaries in input order. A panic
// in any point — e.g. an unknown scheduler name — is re-raised here after
// the other points finish, preserving the pre-pool contract.
func RunAll(pts []Point) []metrics.Summary {
	out := make([]metrics.Summary, len(pts))
	if err := sweep.ForEach(context.Background(), 0, len(pts), func(i int) error {
		out[i] = Run(pts[i])
		return nil
	}); err != nil {
		panic(err)
	}
	return out
}

// TargetRT is the response-time operating point the paper measures
// throughput at.
const TargetRT = 70 * sim.Second

// SolveLambdaAtRT finds the largest arrival rate at which the point's mean
// response time stays at (or below) the target — the paper's "throughput
// (TPS) at Resp.Time = 70 sec". It brackets [lo, hi] and bisects on lambda
// to within tol. reps > 0 overrides the point's replication count: every
// probe averages that many independent seeds and the bisection compares the
// replicated mean against the target, so the knee is not hostage to one
// seed's noise (reps <= 0 keeps p.Reps, minimum 1). Mean RT is monotone in
// lambda for a fixed seed set, which the solver relies on. When even lo
// exceeds the target it returns lo; when hi stays under it returns hi.
func SolveLambdaAtRT(p Point, reps int, target sim.Time, lo, hi, tol float64) float64 {
	if reps > 0 {
		p.Reps = reps
	}
	rtAt := func(lambda float64) sim.Time {
		q := p
		q.Lambda = lambda
		return Run(q).MeanRT
	}
	if rtAt(hi) <= target {
		return hi
	}
	if rtAt(lo) > target {
		return lo
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if rtAt(mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Return the largest VERIFIED arrival rate, never the untested
	// midpoint: C2PL and OPT have near-vertical stability cliffs (RT jumps
	// from ~20 s to hundreds within ~0.03 TPS), and a midpoint that lands a
	// hair past the cliff would report the thrashing side's collapsed
	// throughput.
	return lo
}

// MPLSweep is the C2PL+M admission-limit candidate set; BestC2PLM returns
// the best-performing variant at the point, mirroring the paper's "the best
// C2PL to control multiprogramming level".
var MPLSweep = []int{2, 4, 8, 16, 32}

// BestC2PLM runs C2PL+M over MPLSweep at the point and returns the summary
// and mpl with the lowest mean response time.
func BestC2PLM(p Point) (metrics.Summary, int) {
	p.Scheduler = "C2PL+M"
	pts := make([]Point, len(MPLSweep))
	for i, mpl := range MPLSweep {
		q := p
		q.MPL = mpl
		pts[i] = q
	}
	sums := RunAll(pts)
	best := 0
	for i := 1; i < len(sums); i++ {
		if sums[i].MeanRT < sums[best].MeanRT {
			best = i
		}
	}
	return sums[best], MPLSweep[best]
}
