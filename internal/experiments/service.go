package experiments

import (
	"fmt"

	"batchsched/internal/admit"
	"batchsched/internal/obs/sli"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// This file binds the streaming-admission service mode (internal/admit) to
// the experiment harness: named open arrival processes, service-mode
// measures, and the sustained-TPS-at-SLO capacity solve — the open-system
// counterpart of SolveLambdaAtRT.

// Diurnal and burst arrival shapes for named service points: a day/night
// cycle ten virtual minutes long with a ±50% swing, and 30 s flash crowds at
// 4× the base rate every ~5 quiet minutes. Fixed here so a named process at
// a given lambda means the same traffic everywhere (sweeps, batchsim, CI).
const (
	diurnalAmplitude = 0.5
	diurnalPeriod    = 600 * sim.Second
	burstFactor      = 4.0
	burstMeanQuiet   = 300 * sim.Second
	burstMeanBurst   = 30 * sim.Second
)

// ArrivalProcess builds a fresh open arrival process by name at mean rate
// lambda. Stateful processes (burst) must be rebuilt per run, which is why
// callers get a constructor call rather than a shared value.
func ArrivalProcess(name string, lambda float64) (workload.Arrivals, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("experiments: arrival process needs lambda > 0, got %g", lambda)
	}
	switch name {
	case "", "poisson":
		return workload.Poisson{Rate: lambda}, nil
	case "diurnal":
		return workload.NewDiurnal(lambda, diurnalAmplitude, diurnalPeriod), nil
	case "burst":
		return workload.NewBurst(lambda, burstFactor, burstMeanQuiet, burstMeanBurst), nil
	default:
		return nil, fmt.Errorf("experiments: unknown arrival process %q (want poisson, diurnal or burst)", name)
	}
}

// ServiceMeasures runs the service-mode point (averaging p.Reps
// replications) and digests the result into SLO measures, including the
// open-stream arrival/shed counters the shed-rate objective needs.
func ServiceMeasures(p Point) sli.Measures {
	if p.Service == nil {
		panic("experiments: ServiceMeasures needs a service-mode point")
	}
	sum := Run(p)
	m := sli.FromSummary(p.Scheduler, string(p.Load), p.Lambda, sum, 0, 0)
	m.Arrivals = float64(sum.Arrivals)
	m.Sheds = float64(sum.Sheds)
	return m
}

// ServiceCapacity is the sustained-TPS-at-SLO solve for a simulator service
// point: it bisects the arrival rate over [lo, hi] (to within tol) for the
// largest rate whose replication-averaged service run still passes spec.
// reps > 0 overrides the point's replication count, exactly as in
// SolveLambdaAtRT. The returned rate is always one that was actually run and
// passed.
func ServiceCapacity(p Point, spec sli.Spec, reps int, lo, hi, tol float64) (admit.CapacityResult, error) {
	if p.Service == nil {
		return admit.CapacityResult{}, fmt.Errorf("experiments: ServiceCapacity needs a service-mode point")
	}
	if reps > 0 {
		p.Reps = reps
	}
	trial := func(lambda float64) (sli.Measures, error) {
		q := p
		q.Lambda = lambda
		return ServiceMeasures(q), nil
	}
	return admit.SustainedTPS(spec, trial, lo, hi, tol)
}
