package experiments

import (
	"strings"
	"testing"
)

func TestAblationsListed(t *testing.T) {
	if len(Ablations) != 5 {
		t.Fatalf("ablations = %d, want 5", len(Ablations))
	}
	seen := map[string]bool{}
	for _, a := range Ablations {
		if a.Run == nil || a.ID == "" {
			t.Errorf("malformed ablation %+v", a)
		}
		if seen[a.ID] {
			t.Errorf("duplicate ablation id %q", a.ID)
		}
		seen[a.ID] = true
		if !strings.HasPrefix(a.ID, "ablation-") && !strings.HasPrefix(a.ID, "ext-") {
			t.Errorf("ablation id %q should be namespaced", a.ID)
		}
	}
}

func TestAblationLOWKSmoke(t *testing.T) {
	tbl := AblationLOWK(quick())
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 K values", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 5 {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestAblationGOWOptimizationSmoke(t *testing.T) {
	tbl := AblationGOWOptimization(quick())
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 DDs", len(tbl.Rows))
	}
}

func TestAblationQuantumSmoke(t *testing.T) {
	tbl := AblationQuantum(quick())
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationRetryPolicySmoke(t *testing.T) {
	tbl := AblationRetryPolicy(quick())
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}
