package experiments

import (
	"batchsched/internal/admit"
	"batchsched/internal/fault"
	"batchsched/internal/metrics"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/sweep"
)

// This file binds the sweep engine to the paper's machine model: the four
// experiments' point grids expressed as sweep.Specs (so cmd/sweep, the
// artifact regenerators and replicated studies share one point generator,
// with R=1 regeneration as the degenerate case), and the Cell-to-Point /
// RunFunc adapters the engine simulates cells through.

// fig8Lambdas and fig11Lambdas are the paper's arrival-rate grids.
var (
	fig8Lambdas  = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4}
	fig11Lambdas = []float64{0.2, 0.4, 0.6, 0.8, 0.85, 0.9, 1.0, 1.1, 1.2, 1.4}
)

// exp3Sigmas is Fig. 13's estimation-error grid.
var exp3Sigmas = []float64{0, 0.5, 1, 2, 5, 10}

// specBase carries the Options knobs every paper spec shares.
func specBase(o Options) sweep.Spec {
	o = o.norm()
	return sweep.Spec{
		Reps:            o.Reps,
		Seed:            o.Seed,
		DurationSeconds: o.Duration.Seconds(),
	}
}

// Exp1Spec is Experiment 1's primary grid: the six schedulers over the
// Fig. 8 arrival rates at NumFiles=16, DD=1.
func Exp1Spec(o Options) sweep.Spec {
	s := specBase(o)
	s.Name, s.Load = "exp1", "exp1"
	s.Schedulers = sixSchedulers
	s.Lambdas = fig8Lambdas
	return s
}

// Exp2Spec is Experiment 2's grid: the hot-set workload at the paper's
// λ=1.2 measurement point over the declustering degrees.
func Exp2Spec(o Options) sweep.Spec {
	return exp2Spec(o, []int{1, 2, 4, 8})
}

func exp2Spec(o Options, dds []int) sweep.Spec {
	s := specBase(o)
	s.Name, s.Load = "exp2", "exp2"
	s.Schedulers = sixSchedulers
	s.Lambdas = []float64{1.2}
	s.DDs = dds
	return s
}

// Exp3Spec is Experiment 3's grid: GOW and LOW under declared-cost error
// σ over the declustering degrees (λ=1.2; Fig. 13 itself re-solves the
// RT=70s arrival rate per cell).
func Exp3Spec(o Options) sweep.Spec {
	return exp3Spec(o, exp3Sigmas, []int{1, 2, 4})
}

func exp3Spec(o Options, sigmas []float64, dds []int) sweep.Spec {
	s := specBase(o)
	s.Name, s.Load = "exp3", "exp1"
	s.Schedulers = []string{"GOW", "LOW"}
	s.Lambdas = []float64{1.2}
	s.DDs = dds
	s.Sigmas = sigmas
	return s
}

// Exp4Spec is the fault extension's grid: the six schedulers over the
// per-node MTBF ladder at λ=0.6, DD=2 (MTBF 0 = failure-free reference).
func Exp4Spec(o Options) sweep.Spec {
	s := specBase(o)
	s.Name, s.Load = "exp4", "exp1"
	s.Schedulers = sixSchedulers
	s.Lambdas = []float64{exp4Lambda}
	s.DDs = []int{exp4DD}
	mtbfs := make([]float64, len(Exp4MTBFs))
	for i, m := range Exp4MTBFs {
		mtbfs[i] = m.Seconds()
	}
	s.MTBFSeconds = mtbfs
	return s
}

// PaperSpec returns the named experiment's sweep spec ("exp1" .. "exp4").
func PaperSpec(id string, o Options) (sweep.Spec, bool) {
	switch id {
	case "exp1":
		return Exp1Spec(o), true
	case "exp2":
		return Exp2Spec(o), true
	case "exp3":
		return Exp3Spec(o), true
	case "exp4":
		return Exp4Spec(o), true
	}
	return sweep.Spec{}, false
}

// CellPoint maps a sweep cell onto a simulation point (one replication; the
// caller chooses seed and replication policy). Cells with a positive MTBF
// run the Exp.4 fault model: crashes at that MTBF with the experiment's
// MTTR and restart hold-back.
func CellPoint(c sweep.Cell) Point {
	p := Point{
		Scheduler: c.Scheduler,
		Lambda:    c.Lambda,
		NumFiles:  c.NumFiles,
		DD:        c.DD,
		Sigma:     c.Sigma,
		MPL:       c.MPL,
		K:         c.K,
		Load:      Workload(c.Load),
		Reps:      1,
	}
	if c.DurationSeconds > 0 {
		p.Duration = sim.FromSeconds(c.DurationSeconds)
	}
	if c.MTBFSeconds > 0 {
		p.Faults = fault.Config{MTBF: sim.FromSeconds(c.MTBFSeconds), MTTR: exp4MTTR}
		p.RestartDelay = exp4RestartDelay
	}
	if c.Service {
		// Service cells reinterpret the MPL dimension as the admission
		// window (the machine requires Config.MPL = 0 in service mode, and
		// the window is the open-system analogue of the admission limit).
		pol := admit.DefaultPolicy()
		if c.MPL > 0 {
			pol.MPL = c.MPL
		}
		p.Service = &pol
		p.Arrival = c.Arrival
		p.MPL = 0
	}
	return p
}

// RunCell is the sweep.RunFunc binding: it simulates one replication of the
// cell at the given substream seed. An unknown scheduler name returns an
// error (instead of the panic Run raises) so one bad cell fails cleanly
// inside the pool.
func RunCell(c sweep.Cell, seed int64) (metrics.Summary, error) {
	return runCell(c, seed, 0)
}

// RunCellParallel is RunCell with each replication on the sharded-calendar
// engine (Point.ParallelRun = n). Results are byte-identical to RunCell;
// pair it with sweep.Options.RunWorkers so the worker budget is split
// between cells and the intra-run wave workers instead of oversubscribed.
func RunCellParallel(n int) sweep.RunFunc {
	return func(c sweep.Cell, seed int64) (metrics.Summary, error) {
		return runCell(c, seed, n)
	}
}

func runCell(c sweep.Cell, seed int64, parallelRun int) (metrics.Summary, error) {
	if _, err := sched.New(c.Scheduler, sched.DefaultParams()); err != nil {
		return metrics.Summary{}, err
	}
	p := CellPoint(c)
	p.Seed = seed
	p.ParallelRun = parallelRun
	return Run(p), nil
}

// artifactPoint maps a cell onto a point with the artifact seeding
// convention — Seed=o.Seed with replications Seed+r averaged, exactly Run's
// Point semantics — so spec-generated artifacts reproduce the pre-sweep
// output byte for byte. (cmd/sweep instead derives independent substreams
// per replication via sweep.UnitSeed.)
func artifactPoint(o Options, c sweep.Cell) Point {
	p := CellPoint(c)
	p.Seed = o.Seed
	p.Reps = o.Reps
	if o.Duration > 0 {
		p.Duration = o.Duration
	}
	return p
}

// runCells simulates each cell under the artifact seeding convention, in
// cell order.
func runCells(o Options, cells []sweep.Cell) []metrics.Summary {
	o = o.norm()
	pts := make([]Point, len(cells))
	for i, c := range cells {
		pts[i] = artifactPoint(o, c)
	}
	return RunAll(pts)
}
