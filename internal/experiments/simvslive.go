package experiments

// Sim-vs-live cross-validation on the Experiment-1 grid: the same closed
// batch of Pattern1 transactions is driven through the virtual-clock
// simulator and the real-execution backend (internal/engine/live), and the
// schedulers' *relative throughput rankings* are compared. Absolute numbers
// are incomparable by construction — the simulator charges 1000 ms of
// virtual service per object while the live backend scans an in-memory
// partition in microseconds — but if the model is faithful, which scheduler
// beats which must not depend on whether time is simulated. cmd/batchsim
// -compare runs this; TestSimVsLiveRankings pins the agreement.

import (
	"fmt"
	"sort"
	"time"

	"batchsched/internal/engine/live"
	"batchsched/internal/machine"
	"batchsched/internal/model"
	"batchsched/internal/report"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// SimVsLiveCell is one Experiment-1 grid cell.
type SimVsLiveCell struct {
	// NumFiles is the database size.
	NumFiles int
	// DD is the degree of declustering.
	DD int
}

func (c SimVsLiveCell) String() string {
	return fmt.Sprintf("files=%d DD=%d", c.NumFiles, c.DD)
}

// SimVsLiveSchedulers are the protocols whose ranking is compared — the
// paper's headline comparison set.
var SimVsLiveSchedulers = []string{"NODC", "GOW", "LOW", "C2PL"}

// SimVsLiveGrid is the default Exp-1 grid: a small contended database at
// DD 1 and the paper's 16-file database declustered two ways.
var SimVsLiveGrid = []SimVsLiveCell{{NumFiles: 4, DD: 1}, {NumFiles: 16, DD: 2}}

// SimVsLiveResult is one cell's makespan throughput per scheduler on each
// backend. Units differ (virtual TPS vs wall TPS); only ratios and order
// are meaningful across the two maps.
type SimVsLiveResult struct {
	Cell    SimVsLiveCell
	SimTPS  map[string]float64
	LiveTPS map[string]float64
}

// simVsLiveBatch pre-generates the closed batch both backends consume, so
// transaction i is byte-identical across backends.
func simVsLiveBatch(seed int64, numFiles, n int) [][]model.Step {
	gen := workload.NewExp1(numFiles)
	rng := sim.NewRNG(seed).Stream("workload")
	out := make([][]model.Step, n)
	for i := range out {
		out[i] = gen.Steps(rng)
	}
	return out
}

func simVsLiveSim(cell SimVsLiveCell, name string, batch [][]model.Step) (float64, error) {
	cfg := machine.DefaultConfig()
	cfg.NumFiles = cell.NumFiles
	cfg.DD = cell.DD
	cfg.ArrivalRate = 0
	cfg.Warmup = 0
	cfg.Duration = 4 * 3_600_000 * sim.Millisecond // horizon, not a target
	m, err := machine.New(cfg, sched.MustNew(name, sched.DefaultParams()), nil, sim.NewRNG(1))
	if err != nil {
		return 0, err
	}
	for _, steps := range batch {
		m.Submit(steps)
	}
	sum := m.RunClosed(cfg.Duration)
	if m.InFlight() != 0 {
		return 0, fmt.Errorf("sim %s %v: %d transactions still in flight", name, cell, m.InFlight())
	}
	return sum.TPS, nil
}

func simVsLiveLive(cell SimVsLiveCell, name string, batch [][]model.Step) (float64, error) {
	cfg := live.DefaultConfig()
	cfg.NumFiles = cell.NumFiles
	cfg.DD = cell.DD
	cfg.RowsPerObject = 64
	// Pace service so that real I/O time dominates CN overhead, the same
	// separation of scales the simulator's 1000 ms ObjTime buys it.
	cfg.PacePerObject = 300 * time.Microsecond
	cfg.RestartDelay = 2 * time.Millisecond
	cfg.RestartJitter = true
	cfg.Deadline = 2 * time.Minute
	b, err := live.New(cfg, sched.MustNew(name, sched.DefaultParams()))
	if err != nil {
		return 0, err
	}
	for _, steps := range batch {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		return 0, fmt.Errorf("live %s %v: %w", name, cell, err)
	}
	return sum.TPS, nil
}

// RunSimVsLive runs every scheduler of the comparison set over every grid
// cell on both backends, one shared batch of n transactions per cell.
func RunSimVsLive(seed int64, n int) ([]SimVsLiveResult, error) {
	var out []SimVsLiveResult
	for _, cell := range SimVsLiveGrid {
		batch := simVsLiveBatch(seed, cell.NumFiles, n)
		r := SimVsLiveResult{
			Cell:    cell,
			SimTPS:  make(map[string]float64),
			LiveTPS: make(map[string]float64),
		}
		for _, name := range SimVsLiveSchedulers {
			st, err := simVsLiveSim(cell, name, batch)
			if err != nil {
				return nil, err
			}
			lt, err := simVsLiveLive(cell, name, batch)
			if err != nil {
				return nil, err
			}
			r.SimTPS[name] = st
			r.LiveTPS[name] = lt
		}
		out = append(out, r)
	}
	return out, nil
}

// Ranking orders scheduler names by descending throughput.
func Ranking(tps map[string]float64) []string {
	names := make([]string, 0, len(tps))
	for n := range tps {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if tps[names[i]] != tps[names[j]] {
			return tps[names[i]] > tps[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// RankingsAgree reports whether two throughput maps order the schedulers
// consistently: every pair that BOTH backends separate by at least margin
// (relative to the slower of the pair) must be ordered the same way. Pairs
// inside the noise margin on either backend carry no ranking information —
// wall-clock throughput jitters in ways virtual time does not.
func RankingsAgree(a, b map[string]float64, margin float64) error {
	names := Ranking(a)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			x, y := names[i], names[j]
			if !separated(a[x], a[y], margin) || !separated(b[x], b[y], margin) {
				continue
			}
			if (a[x] > a[y]) != (b[x] > b[y]) {
				return fmt.Errorf("ranking disagrees on %s vs %s: sim %.3g/%.3g, live %.3g/%.3g",
					x, y, a[x], a[y], b[x], b[y])
			}
		}
	}
	return nil
}

func separated(x, y, margin float64) bool {
	lo := x
	if y < lo {
		lo = y
	}
	if lo <= 0 {
		return true
	}
	d := x - y
	if d < 0 {
		d = -d
	}
	return d/lo >= margin
}

// SimVsLiveTable renders the comparison for EXPERIMENTS.md / cmd/batchsim.
func SimVsLiveTable(results []SimVsLiveResult) *report.Table {
	t := &report.Table{
		Title:  "Sim vs live — Experiment-1 closed-batch throughput ranking per backend.",
		Note:   "TPS units differ by construction (virtual vs wall clock); compare order, not magnitude.",
		Header: []string{"cell", "scheduler", "sim TPS", "live TPS", "sim rank", "live rank"},
	}
	for _, r := range results {
		simRank := rankIndex(Ranking(r.SimTPS))
		liveRank := rankIndex(Ranking(r.LiveTPS))
		for _, name := range SimVsLiveSchedulers {
			t.AddRow(r.Cell.String(), name,
				report.F(r.SimTPS[name], 3), report.F(r.LiveTPS[name], 1),
				fmt.Sprint(simRank[name]), fmt.Sprint(liveRank[name]))
		}
	}
	return t
}

func rankIndex(order []string) map[string]int {
	m := make(map[string]int, len(order))
	for i, n := range order {
		m[n] = i + 1
	}
	return m
}
