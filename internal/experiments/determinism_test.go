package experiments

import (
	"reflect"
	"testing"

	"batchsched/internal/fault"
	"batchsched/internal/sim"
)

func determinismPoints() []Point {
	clean := Point{
		Scheduler: "LOW",
		Lambda:    0.6,
		NumFiles:  16,
		DD:        2,
		Load:      Exp1,
		Seed:      11,
		Reps:      2,
		Duration:  150_000 * sim.Millisecond,
	}
	faulty := clean
	faulty.Scheduler = "C2PL"
	faulty.RestartDelay = 2 * sim.Second
	faulty.Faults = fault.Config{
		MTBF: 80 * sim.Second, MTTR: 5 * sim.Second,
		StragglerMTBF: 150 * sim.Second, StragglerDuration: 10 * sim.Second, StragglerFactor: 3,
		MsgLoss: 0.03, MsgTimeout: 5 * sim.Second, MsgRetries: 2,
	}
	return []Point{clean, faulty}
}

// TestRunIsDeterministic: the same point and seed must reproduce a deeply
// equal summary on every sequential call, with and without faults.
func TestRunIsDeterministic(t *testing.T) {
	for _, p := range determinismPoints() {
		a, b := Run(p), Run(p)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s (faults=%v): summaries differ across identical runs:\n%+v\n%+v",
				p.Scheduler, p.Faults.Enabled(), a, b)
		}
	}
}

// TestRunAllMatchesSequential: the concurrent runner must return exactly what
// sequential Run produces for each point — worker scheduling, shared caches
// or RNG misuse must never leak between points.
func TestRunAllMatchesSequential(t *testing.T) {
	pts := determinismPoints()
	// Duplicate the points so the pool provably yields identical results for
	// identical inputs run on different workers.
	pts = append(pts, pts...)
	got := RunAll(pts)
	for i, p := range pts {
		if want := Run(p); !reflect.DeepEqual(got[i], want) {
			t.Errorf("point %d (%s): RunAll result differs from sequential Run", i, p.Scheduler)
		}
	}
}
