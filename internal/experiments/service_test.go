package experiments

import (
	"testing"

	"batchsched/internal/admit"
	"batchsched/internal/obs/sli"
	"batchsched/internal/sim"
	"batchsched/internal/sweep"
)

func TestArrivalProcess(t *testing.T) {
	for _, name := range []string{"", "poisson", "diurnal", "burst"} {
		if _, err := ArrivalProcess(name, 0.5); err != nil {
			t.Errorf("ArrivalProcess(%q): %v", name, err)
		}
	}
	if _, err := ArrivalProcess("poisson", 0); err == nil {
		t.Error("ArrivalProcess accepted lambda = 0")
	}
	if _, err := ArrivalProcess("trace", 0.5); err == nil {
		t.Error("ArrivalProcess accepted an unknown name")
	}
}

func TestCellPointService(t *testing.T) {
	c := sweep.Cell{
		Scheduler: "GOW", Lambda: 0.3, NumFiles: 16, DD: 1,
		MPL: 4, Load: "exp1", Service: true, Arrival: "burst",
	}
	p := CellPoint(c)
	if p.Service == nil {
		t.Fatal("service cell produced a closed point")
	}
	// The grid's MPL dimension becomes the admission window; the machine
	// requires Config.MPL = 0 in service mode.
	if p.Service.MPL != 4 || p.MPL != 0 {
		t.Errorf("window = %d, point MPL = %d; want 4, 0", p.Service.MPL, p.MPL)
	}
	if p.Arrival != "burst" {
		t.Errorf("Arrival = %q", p.Arrival)
	}
	// Without an explicit MPL the window keeps the policy default.
	c.MPL = 0
	if p := CellPoint(c); p.Service.MPL != admit.DefaultPolicy().MPL {
		t.Errorf("default window = %d", p.Service.MPL)
	}
	// Closed cells stay closed.
	c.Service = false
	c.MPL = 4
	if p := CellPoint(c); p.Service != nil || p.MPL != 4 {
		t.Errorf("closed cell: Service=%v MPL=%d", p.Service, p.MPL)
	}
}

func TestServiceMeasuresAndCapacity(t *testing.T) {
	pol := admit.DefaultPolicy()
	pol.MPL = 4
	p := Point{
		Scheduler: "GOW",
		Lambda:    0.15,
		NumFiles:  16,
		DD:        1,
		Load:      Exp1,
		Seed:      1,
		Reps:      1,
		Duration:  300 * sim.Second,
		Service:   &pol,
	}
	m := ServiceMeasures(p)
	if m.Arrivals <= 0 || m.Completions <= 0 {
		t.Fatalf("implausible measures: %+v", m)
	}
	if m.TPS <= 0 || m.P95RTSeconds <= 0 {
		t.Errorf("missing rates: %+v", m)
	}

	// A generous spec must find a sustained rate at least at the floor; the
	// result is always a rate that actually ran and passed.
	spec := sli.ServiceDefault()
	res, err := ServiceCapacity(p, spec, 1, 0.05, 0.3, 0.1)
	if err != nil {
		t.Fatalf("ServiceCapacity: %v", err)
	}
	if !res.Passed {
		t.Fatalf("no sustained rate found: %+v", res)
	}
	if res.Lambda < 0.05 || res.Lambda > 0.3 {
		t.Errorf("solved lambda %.3f outside bracket", res.Lambda)
	}
	if len(res.Trials) == 0 {
		t.Error("no trials recorded")
	}

	q := p
	q.Service = nil
	if _, err := ServiceCapacity(q, spec, 1, 0.05, 0.3, 0.1); err == nil {
		t.Error("ServiceCapacity accepted a closed point")
	}
}
