package experiments

import (
	"context"
	"fmt"

	"batchsched/internal/metrics"
	"batchsched/internal/obs"
	"batchsched/internal/report"
	"batchsched/internal/sim"
	"batchsched/internal/sweep"
)

// Options scales an artifact regeneration. The zero value reproduces the
// paper's full setting.
type Options struct {
	// Duration per simulation (0 = the paper's 2,000,000 ms).
	Duration sim.Time
	// Reps per point (0 = 1).
	Reps int
	// Seed for the first replication (0 = 1).
	Seed int64
	// SolverTol is the bisection tolerance on lambda (0 = 0.01 TPS).
	SolverTol float64
	// QuantumStepped runs every simulation on the quantum-per-event DPN
	// oracle instead of the fast-forward engine (timing comparisons; the
	// artifacts themselves are byte-identical either way).
	QuantumStepped bool
}

func (o Options) norm() Options {
	if o.Reps == 0 {
		o.Reps = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SolverTol == 0 {
		o.SolverTol = 0.01
	}
	return o
}

func (o Options) point() Point {
	return Point{NumFiles: 16, DD: 1, Load: Exp1, Seed: o.Seed, Reps: o.Reps,
		Duration: o.Duration, QuantumStepped: o.QuantumStepped}
}

// sixSchedulers is the paper's scheduler lineup with plain C2PL.
var sixSchedulers = []string{"NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"}

// mSchedulers swaps C2PL for the best C2PL+M (Table 3 / Fig. 10).
var mSchedulers = []string{"NODC", "ASL", "GOW", "LOW", "C2PL+M", "OPT"}

// Artifact is a regenerable table or figure.
type Artifact struct {
	// ID is the key used by cmd/paperbench (e.g. "fig8").
	ID string
	// Title describes the artifact.
	Title string
	// Run regenerates it.
	Run func(Options) *report.Table
}

// Artifacts lists every table and figure of the paper's evaluation, in
// paper order.
var Artifacts = []Artifact{
	{"fig8", "Fig. 8: arrival rate vs response time (Exp.1, DD=1, NumFiles=16)", Fig8},
	{"table2", "Table 2: NumFiles vs throughput at RT=70s (Exp.1, DD=1)", Table2},
	{"fig9", "Fig. 9: declustering vs throughput at RT=70s (Exp.1, NumFiles=16)", Fig9},
	{"table3", "Table 3: declustering vs response time at 1.2 TPS (Exp.1)", Table3},
	{"fig10", "Fig. 10: declustering vs response-time speedup at 1.2 TPS (Exp.1)", Fig10},
	{"fig11", "Fig. 11: arrival rate vs response-time speedup (Exp.1, DD=4)", Fig11},
	{"table4", "Table 4: Exp.2 throughput at RT=70s and response time at 1.2 TPS", Table4},
	{"fig12", "Fig. 12: Exp.2 declustering vs response-time speedup at 1.2 TPS", Fig12},
	{"fig13", "Fig. 13: error ratio vs throughput at RT=70s (Exp.3)", Fig13},
	{"table5", "Table 5: sensitivity degradation ratio TPS(σ=10)/TPS(σ=0) (Exp.3)", Table5},
	{"exp4", "Exp. 4: node MTBF vs response time and restart rate under faults (extension)", Exp4},
	{"phases", "Phase breakdown: where transaction time goes per scheduler (Exp.1, DD=1, λ=0.6; observability extension)", Phases},
}

// FindArtifact looks an artifact up by ID.
func FindArtifact(id string) (Artifact, bool) {
	for _, a := range Artifacts {
		if a.ID == id {
			return a, true
		}
	}
	return Artifact{}, false
}

// Fig8 regenerates the response-time-versus-arrival-rate curves from the
// Exp.1 sweep spec (cells expand λ-major, scheduler fastest — the table's
// row/column order).
func Fig8(o Options) *report.Table {
	o = o.norm()
	lambdas := fig8Lambdas
	sums := runCells(o, Exp1Spec(o).Cells())
	t := &report.Table{
		Title:  "Fig. 8 — Exp.1: Arrival Rate vs. Mean Response Time (s). DD=1, NumFiles=16.",
		Note:   "Paper reference points: RT=70s is crossed at about 1.04 (NODC), 0.72 (ASL), 0.67 (GOW), 0.65 (LOW), 0.35 (C2PL), 0.24 (OPT) TPS.",
		Header: append([]string{"λ(TPS)"}, sixSchedulers...),
	}
	i := 0
	for _, l := range lambdas {
		row := []string{report.F(l, 2)}
		for range sixSchedulers {
			row = append(row, report.F(sums[i].MeanRT.Seconds(), 1))
			i++
		}
		t.AddRow(row...)
	}
	return t
}

// rt70TPS solves the RT=70s operating point (replicating each probe p.Reps
// times) and returns the throughput measured there.
func rt70TPS(p Point, tol float64) float64 {
	lambda := SolveLambdaAtRT(p, 0, TargetRT, 0.02, 1.4, tol)
	p.Lambda = lambda
	return Run(p).TPS
}

// Table2 regenerates NumFiles versus throughput at RT=70s.
func Table2(o Options) *report.Table {
	o = o.norm()
	t := &report.Table{
		Title:  "Table 2 — Exp.1: Number of Files vs. Throughput (TPS) at Resp.Time=70s, DD=1.",
		Note:   "Cells: measured (paper).",
		Header: append([]string{"#files"}, sixSchedulers...),
	}
	for _, nf := range []int{8, 16, 32, 64} {
		row := []string{fmt.Sprint(nf)}
		results := make([]float64, len(sixSchedulers))
		parallelEach(len(sixSchedulers), func(i int) {
			p := o.point()
			p.Scheduler = sixSchedulers[i]
			p.NumFiles = nf
			results[i] = rt70TPS(p, o.SolverTol)
		})
		for i, s := range sixSchedulers {
			row = append(row, fmt.Sprintf("%s (%s)", report.F(results[i], 2), report.F(PaperTable2[nf][s], 2)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig9 regenerates declustering versus throughput at RT=70s.
func Fig9(o Options) *report.Table {
	o = o.norm()
	t := &report.Table{
		Title:  "Fig. 9 — Exp.1: Declustering vs. Throughput (TPS) at Resp.Time=70s, NumFiles=16.",
		Note:   "Paper reference (read off the figure/text): at DD=2 ASL/GOW/LOW reach ~0.9 (≈85% of NODC); C2PL reaches 0.85 only at DD=4.",
		Header: append([]string{"DD"}, sixSchedulers...),
	}
	for _, dd := range []int{1, 2, 4, 8} {
		row := []string{fmt.Sprint(dd)}
		results := make([]float64, len(sixSchedulers))
		parallelEach(len(sixSchedulers), func(i int) {
			p := o.point()
			p.Scheduler = sixSchedulers[i]
			p.DD = dd
			results[i] = rt70TPS(p, o.SolverTol)
		})
		for i := range sixSchedulers {
			row = append(row, report.F(results[i], 2))
		}
		t.AddRow(row...)
	}
	return t
}

// table3Data runs the λ=1.2 declustering sweep shared by Table3 and Fig10.
// It returns meanRT[dd][scheduler] in seconds (C2PL+M at its best mpl).
func table3Data(o Options, dds []int) map[int]map[string]float64 {
	o = o.norm()
	out := make(map[int]map[string]float64)
	for _, dd := range dds {
		out[dd] = make(map[string]float64)
		results := make([]float64, len(mSchedulers))
		parallelEach(len(mSchedulers), func(i int) {
			p := o.point()
			p.Scheduler = mSchedulers[i]
			p.Lambda = 1.2
			p.DD = dd
			var sum metrics.Summary
			if mSchedulers[i] == "C2PL+M" {
				sum, _ = BestC2PLM(p)
			} else {
				sum = Run(p)
			}
			results[i] = sum.MeanRT.Seconds()
		})
		for i, s := range mSchedulers {
			out[dd][s] = results[i]
		}
	}
	return out
}

// Table3 regenerates declustering versus response time at λ = 1.2 TPS.
func Table3(o Options) *report.Table {
	data := table3Data(o, []int{1, 2, 4, 8})
	t := &report.Table{
		Title:  "Table 3 — Exp.1: Declustering vs. Resp.Time (s). NumFiles=16, λ=1.2 TPS.",
		Note:   "Cells: measured (paper). C2PL+M is the best admission limit from " + fmt.Sprint(MPLSweep) + ".",
		Header: append([]string{"DD"}, mSchedulers...),
	}
	for _, dd := range []int{1, 2, 4, 8} {
		row := []string{fmt.Sprint(dd)}
		for _, s := range mSchedulers {
			row = append(row, fmt.Sprintf("%s (%s)", report.F(data[dd][s], 0), report.F(PaperTable3[dd][s], 0)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig10 regenerates declustering versus response-time speedup at 1.2 TPS:
// speedup(DD) = RT(DD=1)/RT(DD).
func Fig10(o Options) *report.Table {
	data := table3Data(o, []int{1, 2, 4, 8})
	t := &report.Table{
		Title:  "Fig. 10 — Exp.1: Declustering vs. Resp.Time Speedup. NumFiles=16, λ=1.2 TPS.",
		Note:   "Paper: ASL/LOW/GOW near-linear (≈8-9 at DD=8; C2PL+M spikes to 13.4 at DD=8); NODC ≈2.4, OPT ≈1.6 at DD=8.",
		Header: append([]string{"DD"}, mSchedulers...),
	}
	for _, dd := range []int{1, 2, 4, 8} {
		row := []string{fmt.Sprint(dd)}
		for _, s := range mSchedulers {
			row = append(row, report.F(data[1][s]/data[dd][s], 2))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig11 regenerates arrival rate versus response-time speedup at DD=4:
// speedup(λ) = RT(DD=1, λ)/RT(DD=4, λ). The grid is the Exp.1 spec with
// Fig. 11's arrival rates over DD ∈ {1, 4} (cells expand DD-major, then λ,
// scheduler fastest).
func Fig11(o Options) *report.Table {
	o = o.norm()
	lambdas := fig11Lambdas
	spec := Exp1Spec(o)
	spec.Lambdas = fig11Lambdas
	spec.DDs = []int{1, 4}
	sums := runCells(o, spec.Cells())
	rt := func(ddIdx, li, si int) float64 {
		return sums[ddIdx*len(lambdas)*len(sixSchedulers)+li*len(sixSchedulers)+si].MeanRT.Seconds()
	}
	t := &report.Table{
		Title:  "Fig. 11 — Exp.1: Arrival Rate vs. Resp.Time Speedup (RT at DD=1 over RT at DD=4). NumFiles=16.",
		Note:   "Paper: in the heavy-load region (λ ≥ ~0.85, C2PL's DD=4 throughput) ASL/GOW/LOW hold speedup ~4-5 while C2PL and OPT fall off.",
		Header: append([]string{"λ(TPS)"}, sixSchedulers...),
	}
	for li, l := range lambdas {
		row := []string{report.F(l, 2)}
		for si := range sixSchedulers {
			row = append(row, report.F(rt(0, li, si)/rt(1, li, si), 2))
		}
		t.AddRow(row...)
	}
	return t
}

// table4Data runs Exp.2 at λ=1.2 for the RT half of Table 4 and Fig. 12,
// from the Exp.2 sweep spec (cells expand DD-major, scheduler fastest).
func table4Data(o Options, dds []int) map[int]map[string]float64 {
	o = o.norm()
	sums := runCells(o, exp2Spec(o, dds).Cells())
	out := make(map[int]map[string]float64)
	i := 0
	for _, dd := range dds {
		out[dd] = make(map[string]float64)
		for _, s := range sixSchedulers {
			out[dd][s] = sums[i].MeanRT.Seconds()
			i++
		}
	}
	return out
}

// Table4 regenerates the Exp.2 throughput (RT=70s) and response-time
// (λ=1.2) table.
func Table4(o Options) *report.Table {
	o = o.norm()
	rts := table4Data(o, []int{1, 2, 4})
	t := &report.Table{
		Title:  "Table 4 — Exp.2: Throughput (TPS at RT=70s) and Resp.Time (s at λ=1.2) at DD=1,2,4.",
		Note:   "Cells: measured (paper).",
		Header: append([]string{"metric", "DD"}, sixSchedulers...),
	}
	for _, dd := range []int{1, 2, 4} {
		row := []string{"Thruput", fmt.Sprint(dd)}
		results := make([]float64, len(sixSchedulers))
		parallelEach(len(sixSchedulers), func(i int) {
			p := o.point()
			p.Scheduler = sixSchedulers[i]
			p.Load = Exp2
			p.DD = dd
			results[i] = rt70TPS(p, o.SolverTol)
		})
		for i, s := range sixSchedulers {
			row = append(row, fmt.Sprintf("%s (%s)", report.F(results[i], 2), report.F(PaperTable4Thru[dd][s], 2)))
		}
		t.AddRow(row...)
	}
	for _, dd := range []int{1, 2, 4} {
		row := []string{"RespTime", fmt.Sprint(dd)}
		for _, s := range sixSchedulers {
			row = append(row, fmt.Sprintf("%s (%s)", report.F(rts[dd][s], 0), report.F(PaperTable4RT[dd][s], 0)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig12 regenerates the Exp.2 declustering-versus-speedup curves at 1.2 TPS.
func Fig12(o Options) *report.Table {
	data := table4Data(o, []int{1, 2, 4, 8})
	t := &report.Table{
		Title:  "Fig. 12 — Exp.2: Declustering vs. Resp.Time Speedup at λ=1.2 TPS.",
		Note:   "Paper: LOW best (best throughput AND best speedup); ASL speedup beats C2PL despite worse absolute RT; NODC speedup only 1.57 at DD=8.",
		Header: append([]string{"DD"}, sixSchedulers...),
	}
	for _, dd := range []int{1, 2, 4, 8} {
		row := []string{fmt.Sprint(dd)}
		for _, s := range sixSchedulers {
			row = append(row, report.F(data[1][s]/data[dd][s], 2))
		}
		t.AddRow(row...)
	}
	return t
}

// fig13Data solves the RT=70s throughput for GOW and LOW over the error
// grid of the Exp.3 sweep spec (cells expand DD-major, then σ, scheduler
// fastest); used by Fig13 and Table5. Each cell re-solves the operating
// point, so the arrival rate the spec carries is only a placeholder.
func fig13Data(o Options, sigmas []float64, dds []int) map[int]map[float64]map[string]float64 {
	o = o.norm()
	cells := exp3Spec(o, sigmas, dds).Cells()
	results := make([]float64, len(cells))
	parallelEach(len(cells), func(i int) {
		p := artifactPoint(o, cells[i])
		p.Lambda = 0
		results[i] = rt70TPS(p, o.SolverTol)
	})
	out := make(map[int]map[float64]map[string]float64)
	for i, c := range cells {
		if out[c.DD] == nil {
			out[c.DD] = make(map[float64]map[string]float64)
		}
		if out[c.DD][c.Sigma] == nil {
			out[c.DD][c.Sigma] = make(map[string]float64)
		}
		out[c.DD][c.Sigma][c.Scheduler] = results[i]
	}
	return out
}

// Fig13 regenerates the sensitivity curves: throughput at RT=70s as a
// function of the declared-cost error ratio σ.
func Fig13(o Options) *report.Table {
	sigmas := []float64{0, 0.5, 1, 2, 5, 10}
	dds := []int{1, 2, 4}
	data := fig13Data(o, sigmas, dds)
	t := &report.Table{
		Title:  "Fig. 13 — Exp.3: Error Ratio σ vs. Throughput (TPS at RT=70s). NumFiles=16.",
		Note:   "Paper: GOW nearly flat; LOW degrades at DD=1 and recovers with DD; C2PL's Fig. 9 values (0.36/0.6/0.85 at DD=1/2/4 here) are the floor.",
		Header: []string{"DD", "σ", "GOW", "LOW"},
	}
	for _, dd := range dds {
		for _, s := range sigmas {
			t.AddRow(fmt.Sprint(dd), report.F(s, 1),
				report.F(data[dd][s]["GOW"], 2), report.F(data[dd][s]["LOW"], 2))
		}
	}
	return t
}

// Table5 regenerates the degradation ratios TPS(σ=10)/TPS(σ=0).
func Table5(o Options) *report.Table {
	dds := []int{1, 2, 4}
	data := fig13Data(o, []float64{0, 10}, dds)
	t := &report.Table{
		Title:  "Table 5 — Exp.3: Sensitivity degradation ratio = TPS(σ=10)/TPS(σ=0), percent.",
		Note:   "Cells: measured (paper).",
		Header: []string{"scheduler", "DD=1", "DD=2", "DD=4"},
	}
	for _, s := range []string{"GOW", "LOW"} {
		row := []string{s}
		for _, dd := range dds {
			ratio := 100 * data[dd][10][s] / data[dd][0][s]
			row = append(row, fmt.Sprintf("%s%% (%s%%)", report.F(ratio, 1), report.F(PaperTable5[dd][s], 1)))
		}
		t.AddRow(row...)
	}
	return t
}

// phaseNames are the lifecycle phases of the breakdown table, in lifecycle
// order ("txn" is the whole in-system residence).
var phaseNames = []string{"txn", "admit-wait", "lock-wait", "execute", "commit"}

// Phases regenerates the per-phase virtual-time decomposition at the Fig.-8
// operating point λ=0.6 TPS: for each scheduler, the total virtual time
// transactions spent waiting for admission, waiting for locks, executing
// cohorts, and committing — the explanation behind the response-time
// ordering (an observability-layer extension; the paper reports only the
// aggregate response times).
func Phases(o Options) *report.Table {
	o = o.norm()
	type res struct {
		totals      map[string]obs.PhaseTotal
		completions int
	}
	results := make([]res, len(sixSchedulers))
	parallelEach(len(sixSchedulers), func(i int) {
		p := o.point()
		p.Scheduler = sixSchedulers[i]
		p.Lambda = 0.6
		ob := obs.New()
		ob.SetSampleInterval(0) // the table consumes spans only
		sum := RunObserved(p, ob)
		totals := make(map[string]obs.PhaseTotal)
		for _, pt := range ob.PhaseTotals("txn") {
			totals[pt.Name] = pt
		}
		results[i] = res{totals, sum.Completions}
	})
	t := &report.Table{
		Title: "Phase breakdown — Exp.1: total virtual time per lifecycle phase (s). DD=1, NumFiles=16, λ=0.6 TPS.",
		Note: "\"txn\" is total in-system residence; \"/txn\" columns divide by completions. " +
			"Expected ordering: lock-wait C2PL > GOW/LOW ≈ ASL > NODC (=0); OPT trades waits for restarts.",
		Header: append(append([]string{"scheduler"}, phaseNames...), "lock-wait/txn(s)", "completions"),
	}
	for i, s := range sixSchedulers {
		row := []string{s}
		for _, ph := range phaseNames {
			row = append(row, report.F(results[i].totals[ph].Total.Seconds(), 1))
		}
		perTxn := 0.0
		if n := results[i].completions; n > 0 {
			perTxn = results[i].totals["lock-wait"].Total.Seconds() / float64(n)
		}
		row = append(row, report.F(perTxn, 2), fmt.Sprint(results[i].completions))
		t.AddRow(row...)
	}
	return t
}

// parallelEach runs fn(i) for i in [0, n) on the shared sweep worker pool,
// re-raising any captured panic once the other tasks finish.
func parallelEach(n int, fn func(i int)) {
	if err := sweep.ForEach(context.Background(), 0, n, func(i int) error {
		fn(i)
		return nil
	}); err != nil {
		panic(err)
	}
}
