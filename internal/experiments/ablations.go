package experiments

import (
	"fmt"

	"batchsched/internal/machine"
	"batchsched/internal/report"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// This file carries the ablation studies DESIGN.md calls out: each isolates
// one design choice of the reproduction (or of the paper's schedulers) and
// measures its effect. They are not paper artifacts; cmd/paperbench runs
// them with -ablations.

// ablationPoint mirrors Point for the knobs Point does not carry.
type ablationPoint struct {
	Point
	gowGreedy       bool
	runToCompletion bool
	noWakeOnGrant   bool
	chargeRetryCPU  bool
}

func runAblation(p ablationPoint) (tps float64, rtSec float64) {
	params := sched.DefaultParams()
	params.MPL = p.MPL
	if p.K > 0 {
		params.K = p.K
	}
	params.GOWGreedy = p.gowGreedy
	cfg := machine.DefaultConfig()
	cfg.ArrivalRate = p.Lambda
	cfg.NumFiles = p.NumFiles
	if p.Load == Exp2 {
		cfg.NumFiles = 16
	}
	cfg.DD = p.DD
	if p.Duration > 0 {
		cfg.Duration = p.Duration
	}
	cfg.RunToCompletion = p.runToCompletion
	cfg.NoWakeOnGrant = p.noWakeOnGrant
	cfg.ChargeRetryCPU = p.chargeRetryCPU
	m, err := machine.New(cfg, sched.MustNew(p.Scheduler, params), p.generator(), sim.NewRNG(p.Seed))
	if err != nil {
		panic(err)
	}
	sum := m.Run()
	return sum.TPS, sum.MeanRT.Seconds()
}

// AblationLOWK sweeps LOW's conflict bound K. The paper fixes K=2; the
// sweep shows the admission/contention trade-off: K=0 refuses all shared
// conflicts (ASL-like starts), large K approaches unconstrained admission.
func AblationLOWK(o Options) *report.Table {
	o = o.norm()
	ks := []int{0, 1, 2, 4, 8}
	t := &report.Table{
		Title:  "Ablation — LOW conflict bound K (paper uses K=2).",
		Note:   "Mean RT (s) at λ=1.2, DD=1; exp1 = blocking workload, exp2 = hot set.",
		Header: []string{"K", "exp1 RT", "exp1 TPS", "exp2 RT", "exp2 TPS"},
	}
	for _, k := range ks {
		var cells []string
		cells = append(cells, fmt.Sprint(k))
		for _, load := range []Workload{Exp1, Exp2} {
			p := ablationPoint{Point: o.point()}
			p.Scheduler = "LOW"
			p.Lambda = 1.2
			p.Load = load
			tps, rt := runAblationK(p, k)
			cells = append(cells, report.F(rt, 0), report.F(tps, 2))
		}
		t.AddRow(cells...)
	}
	return t
}

// runAblationK is runAblation with an exact K (including zero).
func runAblationK(p ablationPoint, k int) (tps, rtSec float64) {
	params := sched.DefaultParams()
	params.K = k
	cfg := machine.DefaultConfig()
	cfg.ArrivalRate = p.Lambda
	cfg.NumFiles = 16
	cfg.DD = p.DD
	if p.Duration > 0 {
		cfg.Duration = p.Duration
	}
	m, err := machine.New(cfg, sched.NewLOW(params), p.generator(), sim.NewRNG(p.Seed))
	if err != nil {
		panic(err)
	}
	sum := m.Run()
	return sum.TPS, sum.MeanRT.Seconds()
}

// AblationGOWOptimization compares GOW's global optimization against a
// greedy variant that grants any non-contradictory request (no Phase 2/3).
func AblationGOWOptimization(o Options) *report.Table {
	o = o.norm()
	t := &report.Table{
		Title:  "Ablation — GOW global optimization vs greedy (first-come) orientation.",
		Note:   "Exp.1, λ=1.2, NumFiles=16.",
		Header: []string{"DD", "GOW RT(s)", "GOW TPS", "greedy RT(s)", "greedy TPS"},
	}
	for _, dd := range []int{1, 2, 4} {
		base := ablationPoint{Point: o.point()}
		base.Scheduler = "GOW"
		base.Lambda = 1.2
		base.DD = dd
		tps1, rt1 := runAblation(base)
		base.gowGreedy = true
		tps2, rt2 := runAblation(base)
		t.AddRow(fmt.Sprint(dd), report.F(rt1, 0), report.F(tps1, 2), report.F(rt2, 0), report.F(tps2, 2))
	}
	return t
}

// AblationQuantum compares the paper's 1/DD-object round-robin quantum with
// run-to-completion cohort service at the data-processing nodes.
func AblationQuantum(o Options) *report.Table {
	o = o.norm()
	t := &report.Table{
		Title:  "Ablation — DPN service discipline: round-robin (paper) vs run-to-completion.",
		Note:   "Exp.1, λ=1.2, NumFiles=16, DD=4.",
		Header: []string{"scheduler", "RR RT(s)", "RR TPS", "RTC RT(s)", "RTC TPS"},
	}
	for _, s := range []string{"NODC", "ASL", "LOW"} {
		base := ablationPoint{Point: o.point()}
		base.Scheduler = s
		base.Lambda = 1.2
		base.DD = 4
		tps1, rt1 := runAblation(base)
		base.runToCompletion = true
		tps2, rt2 := runAblation(base)
		t.AddRow(s, report.F(rt1, 0), report.F(tps1, 2), report.F(rt2, 0), report.F(tps2, 2))
	}
	return t
}

// AblationRetryPolicy compares the reproduction's retry choices: waking
// delayed requests on grants+commits vs commits only, and charging
// admission CPU on every retry vs first attempt only.
func AblationRetryPolicy(o Options) *report.Table {
	o = o.norm()
	t := &report.Table{
		Title:  "Ablation — retry policy: delayed-request wake-ups and admission CPU charging.",
		Note:   "Exp.1, λ=1.2, NumFiles=16, DD=1. base = wake on grant+commit, first-attempt charging.",
		Header: []string{"scheduler", "base RT(s)", "commit-only RT(s)", "charge-retries RT(s)"},
	}
	for _, s := range []string{"GOW", "LOW", "C2PL"} {
		base := ablationPoint{Point: o.point()}
		base.Scheduler = s
		base.Lambda = 1.2
		_, rt1 := runAblation(base)
		b2 := base
		b2.noWakeOnGrant = true
		_, rt2 := runAblation(b2)
		b3 := base
		b3.chargeRetryCPU = true
		_, rt3 := runAblation(b3)
		t.AddRow(s, report.F(rt1, 0), report.F(rt2, 0), report.F(rt3, 0))
	}
	return t
}

// Ablations lists the ablation and extension studies in presentation order.
var Ablations = []Artifact{
	{"ablation-lowk", "Ablation: LOW conflict bound K", AblationLOWK},
	{"ablation-gow", "Ablation: GOW global optimization vs greedy", AblationGOWOptimization},
	{"ablation-quantum", "Ablation: DPN round-robin quantum vs run-to-completion", AblationQuantum},
	{"ablation-retry", "Ablation: retry wake-up and CPU charging policy", AblationRetryPolicy},
	{"ext-lb", "Extension: resource-level load balancing (LOW vs LOW-LB)", ExtensionLoadBalance},
}

// ExtensionLoadBalance evaluates the paper's stated further work:
// resource-level load balancing for the WTPG schedulers. LOW-LB scales the
// WTPG's T0 weights by the congestion of the nodes each transaction still
// has to visit; on a Zipf-skewed variant of Experiment 1 (popular files
// overload their home nodes) it is compared against plain LOW.
func ExtensionLoadBalance(o Options) *report.Table {
	o = o.norm()
	t := &report.Table{
		Title:  "Extension — resource-level load balancing (paper's further work): LOW vs LOW-LB.",
		Note:   "Experiment 1 with Zipf(θ) file popularity, λ=0.5, DD=1, NumFiles=16. Mean RT (s) / TPS.",
		Header: []string{"θ", "LOW RT", "LOW TPS", "LOW-LB RT", "LOW-LB TPS"},
	}
	for _, theta := range []float64{0, 0.8, 1.2} {
		row := []string{report.F(theta, 1)}
		for _, name := range []string{"LOW", "LOW-LB"} {
			params := sched.DefaultParams()
			cfg := machine.DefaultConfig()
			cfg.ArrivalRate = 0.5
			if o.Duration > 0 {
				cfg.Duration = o.Duration
			}
			m, err := machine.New(cfg, sched.MustNew(name, params),
				workload.NewExp1Skewed(16, theta), sim.NewRNG(o.Seed))
			if err != nil {
				panic(err)
			}
			sum := m.Run()
			row = append(row, report.F(sum.MeanRT.Seconds(), 1), report.F(sum.TPS, 2))
		}
		t.AddRow(row...)
	}
	return t
}
