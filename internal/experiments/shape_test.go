package experiments

import (
	"testing"

	"batchsched/internal/sim"
)

// These medium-scale regression tests pin the paper's headline qualitative
// results. They use 600-second windows (vs the paper's 2000) so the whole
// file runs in a few seconds, but the orderings they assert are stable.

func shapePoint(sched string, lambda float64, dd int, load Workload) Point {
	return Point{
		Scheduler: sched, Lambda: lambda, NumFiles: 16, DD: dd, Load: load,
		Seed: 4, Duration: 600_000 * sim.Millisecond,
	}
}

// TestShapeBlockingWorkload asserts observation #1 of Section 5.1: on the
// blocking workload at a moderate load, the blocking-free schedulers (ASL,
// GOW, LOW) have far lower response times than C2PL and OPT, and all sit
// above NODC.
func TestShapeBlockingWorkload(t *testing.T) {
	rt := map[string]float64{}
	for _, s := range []string{"NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"} {
		rt[s] = Run(shapePoint(s, 0.6, 1, Exp1)).MeanRT.Seconds()
	}
	if !(rt["NODC"] < rt["ASL"] && rt["NODC"] < rt["GOW"] && rt["NODC"] < rt["LOW"]) {
		t.Errorf("NODC must lower-bound the lock-based schedulers: %v", rt)
	}
	for _, good := range []string{"ASL", "GOW", "LOW"} {
		if rt[good]*2 > rt["C2PL"] {
			t.Errorf("%s (%.1fs) must be far below C2PL (%.1fs) at 0.6 TPS", good, rt[good], rt["C2PL"])
		}
		if rt[good] > rt["OPT"] {
			t.Errorf("%s (%.1fs) must beat OPT (%.1fs)", good, rt[good], rt["OPT"])
		}
	}
}

// TestShapeHotSet asserts the paper's Table-4 ranking at DD=1: LOW beats
// GOW beats ASL in response time on the hot-set workload, with C2PL between
// LOW and ASL.
func TestShapeHotSet(t *testing.T) {
	rt := map[string]float64{}
	for _, s := range []string{"ASL", "GOW", "LOW", "C2PL"} {
		rt[s] = Run(shapePoint(s, 1.0, 1, Exp2)).MeanRT.Seconds()
	}
	if !(rt["LOW"] < rt["GOW"] && rt["GOW"] < rt["ASL"]) {
		t.Errorf("hot-set ranking must be LOW < GOW < ASL: %v", rt)
	}
	if rt["LOW"] > rt["C2PL"] {
		t.Errorf("LOW (%.1fs) must beat C2PL (%.1fs) on the hot set", rt["LOW"], rt["C2PL"])
	}
}

// TestShapeDeclusteringSpeedup asserts Fig. 10's core claim: ASL/GOW/LOW
// gain much more response time from DD=1 -> 4 than OPT does at heavy load.
func TestShapeDeclusteringSpeedup(t *testing.T) {
	speedup := func(s string) float64 {
		rt1 := Run(shapePoint(s, 1.2, 1, Exp1)).MeanRT.Seconds()
		rt4 := Run(shapePoint(s, 1.2, 4, Exp1)).MeanRT.Seconds()
		return rt1 / rt4
	}
	optGain := speedup("OPT")
	for _, s := range []string{"ASL", "GOW", "LOW"} {
		if g := speedup(s); g < optGain || g < 1.2 {
			t.Errorf("%s speedup %.2f must exceed OPT's %.2f and be material", s, g, optGain)
		}
	}
}

// TestShapeSensitivity asserts Section 5.3: at DD=1 and huge declared-cost
// error, GOW retains more throughput than LOW, and both still far exceed
// C2PL (which uses no declarations at all).
func TestShapeSensitivity(t *testing.T) {
	tps := func(s string, sigma float64) float64 {
		p := shapePoint(s, 0.55, 1, Exp1)
		p.Sigma = sigma
		return Run(p).TPS
	}
	gow0, gow10 := tps("GOW", 0), tps("GOW", 10)
	low0, low10 := tps("LOW", 0), tps("LOW", 10)
	if gow10/gow0 < low10/low0-0.02 {
		t.Errorf("GOW must be less sensitive than LOW: GOW %.2f->%.2f, LOW %.2f->%.2f",
			gow0, gow10, low0, low10)
	}
	c2pl := Run(shapePoint("C2PL", 0.55, 1, Exp1)).TPS
	if gow10 < c2pl || low10 < c2pl {
		t.Errorf("even at σ=10 GOW/LOW (%.2f/%.2f TPS) must beat C2PL (%.2f)", gow10, low10, c2pl)
	}
}
