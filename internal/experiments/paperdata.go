package experiments

// Reference values transcribed from the paper, used to print side-by-side
// comparisons. Figures without printed numbers carry only the values the
// text calls out.

// PaperTable2 is "Exp.1: Number of Files vs Throughput (TPS) at
// Resp.Time = 70 sec., DD=1" (paper Table 2).
var PaperTable2 = map[int]map[string]float64{
	8:  {"NODC": 1.02, "ASL": 0.45, "GOW": 0.44, "LOW": 0.44, "C2PL": 0.25, "OPT": 0.16},
	16: {"NODC": 1.04, "ASL": 0.72, "GOW": 0.67, "LOW": 0.65, "C2PL": 0.35, "OPT": 0.24},
	32: {"NODC": 1.04, "ASL": 0.90, "GOW": 0.86, "LOW": 0.83, "C2PL": 0.50, "OPT": 0.30},
	64: {"NODC": 1.04, "ASL": 0.96, "GOW": 0.95, "LOW": 0.94, "C2PL": 0.62, "OPT": 0.38},
}

// PaperTable3 is "Exp.1: Declustering vs Resp.Time (seconds), NumFiles=16,
// lambda = 1.2 TPS" (paper Table 3; the C2PL column is C2PL+M).
var PaperTable3 = map[int]map[string]float64{
	1: {"NODC": 141, "ASL": 387, "GOW": 429, "LOW": 430, "C2PL+M": 669, "OPT": 783},
	2: {"NODC": 103, "ASL": 183, "GOW": 233, "LOW": 245, "C2PL+M": 479, "OPT": 555},
	4: {"NODC": 74, "ASL": 83, "GOW": 102, "LOW": 107, "C2PL+M": 250, "OPT": 494},
	8: {"NODC": 58, "ASL": 48, "GOW": 47, "LOW": 47, "C2PL+M": 50, "OPT": 490},
}

// PaperTable4Thru and PaperTable4RT are "Exp.2: Throughput (TPS) and
// Response Time (seconds at lambda = 1.2 tps) at DD=1, 2, 4" (paper
// Table 4).
var PaperTable4Thru = map[int]map[string]float64{
	1: {"NODC": 1.10, "ASL": 0.40, "GOW": 0.57, "LOW": 0.77, "C2PL": 0.70, "OPT": 0.38},
	2: {"NODC": 1.11, "ASL": 0.70, "GOW": 0.88, "LOW": 1.01, "C2PL": 0.92, "OPT": 0.55},
	4: {"NODC": 1.13, "ASL": 1.03, "GOW": 1.10, "LOW": 1.12, "C2PL": 1.09, "OPT": 0.85},
}

// PaperTable4RT mirrors PaperTable4Thru for the response-time half.
var PaperTable4RT = map[int]map[string]float64{
	1: {"NODC": 112, "ASL": 611, "GOW": 500, "LOW": 321, "C2PL": 432, "OPT": 751},
	2: {"NODC": 97, "ASL": 380, "GOW": 252, "LOW": 133, "C2PL": 242, "OPT": 746},
	4: {"NODC": 87, "ASL": 116, "GOW": 80, "LOW": 57, "C2PL": 118, "OPT": 457},
}

// PaperTable5 is the sensitivity degradation ratio
// TPS(sigma=10)/TPS(sigma=0) (paper Table 5), in percent.
var PaperTable5 = map[int]map[string]float64{
	1: {"GOW": 94, "LOW": 77},
	2: {"GOW": 96, "LOW": 84},
	4: {"GOW": 97.5, "LOW": 93},
}
