package experiments

import (
	"strings"
	"testing"

	"batchsched/internal/sim"
)

// quick returns options small enough for unit tests: 100-second windows.
func quick() Options {
	return Options{Duration: 100_000 * sim.Millisecond, SolverTol: 0.1, Seed: 3}
}

func TestRunDeterministic(t *testing.T) {
	p := Point{Scheduler: "LOW", Lambda: 0.5, NumFiles: 16, DD: 1, Load: Exp1,
		Seed: 1, Duration: 100_000 * sim.Millisecond}
	a, b := Run(p), Run(p)
	if a.MeanRT != b.MeanRT || a.Completions != b.Completions {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestRunReplicationsDiffer(t *testing.T) {
	p := Point{Scheduler: "ASL", Lambda: 0.5, NumFiles: 16, DD: 1, Load: Exp1,
		Seed: 1, Duration: 100_000 * sim.Millisecond}
	one := Run(p)
	p.Reps = 3
	three := Run(p)
	if three.Completions == 0 {
		t.Fatal("no completions")
	}
	// Replications share nothing, so the averaged result almost surely
	// differs from the single run.
	if one.MeanRT == three.MeanRT && one.Completions == three.Completions {
		t.Error("replication averaging appears to be a no-op")
	}
}

func TestRunAllOrder(t *testing.T) {
	pts := []Point{
		{Scheduler: "NODC", Lambda: 0.2, NumFiles: 16, DD: 1, Load: Exp1, Seed: 1, Duration: 50_000 * sim.Millisecond},
		{Scheduler: "NODC", Lambda: 0.8, NumFiles: 16, DD: 1, Load: Exp1, Seed: 1, Duration: 50_000 * sim.Millisecond},
	}
	sums := RunAll(pts)
	if len(sums) != 2 {
		t.Fatal("wrong length")
	}
	if sums[0].Completions >= sums[1].Completions {
		t.Errorf("completions %d vs %d: order scrambled?", sums[0].Completions, sums[1].Completions)
	}
}

func TestSolverMonotone(t *testing.T) {
	p := Point{Scheduler: "NODC", NumFiles: 16, DD: 1, Load: Exp1, Seed: 1,
		Duration: 200_000 * sim.Millisecond}
	// Solve for two different RT targets: the lambda at the lower target
	// must not exceed the one at the higher target.
	l1 := SolveLambdaAtRT(p, 0, 5*sim.Second, 0.05, 1.4, 0.02)
	l2 := SolveLambdaAtRT(p, 0, 30*sim.Second, 0.05, 1.4, 0.02)
	if l1 > l2 {
		t.Errorf("solver not monotone: λ(5s)=%v > λ(30s)=%v", l1, l2)
	}
	if l1 < 0.05 || l2 > 1.4 {
		t.Errorf("solver out of bracket: %v %v", l1, l2)
	}
}

func TestSolverSaturatesAtBounds(t *testing.T) {
	p := Point{Scheduler: "NODC", NumFiles: 16, DD: 1, Load: Exp1, Seed: 1,
		Duration: 50_000 * sim.Millisecond}
	// A 50s window cannot produce 70s response times: hi is returned.
	if l := SolveLambdaAtRT(p, 0, TargetRT, 0.05, 1.0, 0.02); l != 1.0 {
		t.Errorf("unreachable target: λ = %v, want hi bound 1.0", l)
	}
	// A 0-second target is below even the lightest load: lo is returned.
	if l := SolveLambdaAtRT(p, 0, 0, 0.05, 1.0, 0.02); l != 0.05 {
		t.Errorf("impossible target: λ = %v, want lo bound 0.05", l)
	}
}

func TestBestC2PLMPicksAnMPL(t *testing.T) {
	p := Point{Lambda: 1.2, NumFiles: 16, DD: 1, Load: Exp1, Seed: 1,
		Duration: 150_000 * sim.Millisecond}
	sum, mpl := BestC2PLM(p)
	found := false
	for _, m := range MPLSweep {
		if m == mpl {
			found = true
		}
	}
	if !found {
		t.Errorf("mpl %d not from the sweep %v", mpl, MPLSweep)
	}
	if sum.Completions == 0 {
		t.Error("best C2PL+M completed nothing")
	}
}

func TestFindArtifact(t *testing.T) {
	ids := []string{"fig8", "table2", "fig9", "table3", "fig10", "fig11", "table4", "fig12", "fig13", "table5", "exp4", "phases"}
	if len(Artifacts) != len(ids) {
		t.Fatalf("artifact count = %d, want %d (one per table and figure, plus extensions)", len(Artifacts), len(ids))
	}
	for _, id := range ids {
		a, ok := FindArtifact(id)
		if !ok {
			t.Errorf("artifact %q missing", id)
		}
		if a.ID != id || a.Run == nil {
			t.Errorf("artifact %q malformed", id)
		}
	}
	if _, ok := FindArtifact("fig99"); ok {
		t.Error("unknown artifact found")
	}
}

// TestFig8Smoke regenerates Fig. 8 at a tiny scale and checks structure plus
// the coarsest shape property: at a heavy load, C2PL's response time exceeds
// NODC's.
func TestFig8Smoke(t *testing.T) {
	tbl := Fig8(quick())
	if len(tbl.Rows) != 14 {
		t.Fatalf("rows = %d, want 14 lambda points", len(tbl.Rows))
	}
	if len(tbl.Header) != 7 {
		t.Fatalf("header = %v", tbl.Header)
	}
	if !strings.Contains(tbl.String(), "NODC") {
		t.Error("render lost the header")
	}
}

// TestTable5Smoke checks the degradation table's structure at tiny scale.
func TestTable5Smoke(t *testing.T) {
	tbl := Table5(quick())
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (GOW, LOW)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 4 {
			t.Fatalf("row = %v, want scheduler + 3 DDs", row)
		}
		if !strings.Contains(row[1], "%") {
			t.Errorf("cell %q should be a percentage", row[1])
		}
	}
}

func TestPointGeneratorSelection(t *testing.T) {
	p := Point{Load: Exp2, NumFiles: 99}
	if g := p.generator(); g == nil {
		t.Fatal("nil generator")
	}
	p = Point{Load: Exp1, NumFiles: 16, Sigma: 1.5}
	if g := p.generator(); g == nil {
		t.Fatal("nil generator with error model")
	}
}

// TestAllArtifactsSmoke regenerates every artifact at a tiny scale,
// asserting the structural contract of each table (row/column counts and
// paper-comparison cell format where applicable).
func TestAllArtifactsSmoke(t *testing.T) {
	o := Options{Duration: 40_000 * sim.Millisecond, SolverTol: 0.3, Seed: 2}
	wantRows := map[string]int{
		"fig8":   14, // one per lambda
		"table2": 4,  // one per NumFiles
		"fig9":   4,  // one per DD
		"table3": 4,
		"fig10":  4,
		"fig11":  10, // one per lambda
		"table4": 6,  // 3 DD x {thruput, RT}
		"fig12":  4,
		"fig13":  18, // 3 DD x 6 sigma
		"table5": 2,  // GOW, LOW
		"exp4":   5,  // one per MTBF (incl. failure-free)
		"phases": 6,  // one per scheduler
	}
	for _, a := range Artifacts {
		a := a
		t.Run(a.ID, func(t *testing.T) {
			tbl := a.Run(o)
			if tbl.Title == "" || len(tbl.Header) < 2 {
				t.Fatalf("malformed table: %+v", tbl)
			}
			if got := len(tbl.Rows); got != wantRows[a.ID] {
				t.Fatalf("rows = %d, want %d", got, wantRows[a.ID])
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("ragged row %v vs header %v", row, tbl.Header)
				}
			}
			// Paper-comparison tables carry "(paper)" cells.
			switch a.ID {
			case "table2", "table3", "table4", "table5":
				if !strings.Contains(tbl.Rows[0][len(tbl.Rows[0])-1], "(") {
					t.Errorf("%s should embed paper reference values: %v", a.ID, tbl.Rows[0])
				}
			}
		})
	}
}
