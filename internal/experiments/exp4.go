package experiments

import (
	"math"

	"batchsched/internal/report"
	"batchsched/internal/sim"
)

// Exp4MTBFs is the per-node MTBF sweep of the fault experiment; 0 is the
// failure-free reference row.
var Exp4MTBFs = []sim.Time{0, 500 * sim.Second, 200 * sim.Second, 100 * sim.Second, 50 * sim.Second}

// Exp4 parameters: a moderate load the failure-free machine handles
// comfortably, mild declustering (so one crash hits multiple transactions),
// a short outage, and a restart hold-back so crash victims do not hammer a
// still-down node.
const (
	exp4Lambda       = 0.6
	exp4DD           = 2
	exp4MTTR         = 10 * sim.Second
	exp4RestartDelay = 5 * sim.Second
)

// Exp4 regenerates the fault experiment (an extension, not in the paper):
// per-scheduler mean response time and restart rate as node crashes become
// more frequent. Because every fault draw comes from a dedicated RNG
// stream, all schedulers in a row face the identical crash schedule, and
// the availability column is scheduler-independent.
func Exp4(o Options) *report.Table {
	o = o.norm()
	cells := Exp4Spec(o).Cells()
	pts := make([]Point, len(cells))
	for i, c := range cells {
		pts[i] = artifactPoint(o, c)
		// The failure-free reference row keeps the same restart hold-back
		// as the faulty rows (it only matters when aborts happen).
		pts[i].RestartDelay = exp4RestartDelay
	}
	sums := RunAll(pts)
	t := &report.Table{
		Title: "Exp. 4 — Faults: Node MTBF vs. Mean Resp.Time (s) at λ=0.6, DD=2, NumFiles=16 (extension; not in the paper).",
		Note: "Cells: mean RT s (restarts per commit). Per-node MTTR=10s, RestartDelay=5s. " +
			"avail = fraction of node-time up; identical across schedulers by construction.",
		Header: append(append([]string{"MTBF(s)"}, sixSchedulers...), "avail"),
	}
	i := 0
	for _, mtbf := range Exp4MTBFs {
		label := "none"
		if mtbf > 0 {
			label = report.F(mtbf.Seconds(), 0)
		}
		row := []string{label}
		avail := 1.0
		for range sixSchedulers {
			s := sums[i]
			rpc := math.NaN()
			if s.Completions > 0 {
				rpc = float64(s.Restarts) / float64(s.Completions)
			}
			row = append(row, report.Paren(report.F(s.MeanRT.Seconds(), 1), report.F(rpc, 2)))
			avail = s.Availability()
			i++
		}
		row = append(row, report.Pct(100*avail, 1))
		t.AddRow(row...)
	}
	return t
}
