package experiments

import (
	"strings"
	"testing"
)

// TestSimVsLiveRankings is the acceptance check the real-execution-backend
// PR names: on the Exp-1 grid, the simulator and the live backend must
// agree on the schedulers' relative throughput ranking (every pair both
// backends separate beyond the noise margin must be ordered identically),
// and NODC — which never blocks anything — must be the fastest on both.
func TestSimVsLiveRankings(t *testing.T) {
	n := 32
	if testing.Short() {
		n = 16
	}
	results, err := RunSimVsLive(7, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(SimVsLiveGrid) {
		t.Fatalf("got %d cells, want %d", len(results), len(SimVsLiveGrid))
	}
	for _, r := range results {
		if err := RankingsAgree(r.SimTPS, r.LiveTPS, 0.10); err != nil {
			t.Errorf("cell %v: %v", r.Cell, err)
		}
		simRank, liveRank := Ranking(r.SimTPS), Ranking(r.LiveTPS)
		t.Logf("cell %v: sim ranking %v, live ranking %v", r.Cell, simRank, liveRank)
		if simRank[0] != "NODC" {
			t.Errorf("cell %v: sim ranks %s fastest, want NODC (it never blocks)", r.Cell, simRank[0])
		}
		if liveRank[0] != "NODC" {
			t.Errorf("cell %v: live ranks %s fastest, want NODC (it never blocks)", r.Cell, liveRank[0])
		}
	}
}

func TestRankingsAgreeMargin(t *testing.T) {
	simT := map[string]float64{"A": 10, "B": 5, "C": 4.8}
	liveT := map[string]float64{"A": 100, "B": 48, "C": 50}
	// B vs C is inside a 10% margin on both sides: no information, agree.
	if err := RankingsAgree(simT, liveT, 0.10); err != nil {
		t.Fatalf("margin should absorb the B/C flip: %v", err)
	}
	// With a tight margin the flip is a real disagreement.
	if err := RankingsAgree(simT, liveT, 0.01); err == nil {
		t.Fatal("expected disagreement on B vs C at 1% margin")
	}
	// A clear inversion is always a disagreement.
	liveT["B"] = 200
	if err := RankingsAgree(simT, liveT, 0.10); err == nil {
		t.Fatal("expected disagreement on A vs B")
	}
}

func TestSimVsLiveTableShape(t *testing.T) {
	results := []SimVsLiveResult{{
		Cell:    SimVsLiveCell{NumFiles: 4, DD: 1},
		SimTPS:  map[string]float64{"NODC": 4, "GOW": 3, "LOW": 2.5, "C2PL": 1},
		LiveTPS: map[string]float64{"NODC": 400, "GOW": 290, "LOW": 260, "C2PL": 90},
	}}
	tbl := SimVsLiveTable(results)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"NODC", "GOW", "LOW", "C2PL", "files=4 DD=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
}
