package experiments

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"batchsched/internal/sim"
	"batchsched/internal/sweep"
)

func TestExp1SpecShape(t *testing.T) {
	o := Options{Duration: 100_000 * sim.Millisecond}
	cells := Exp1Spec(o).Cells()
	if want := len(fig8Lambdas) * len(sixSchedulers); len(cells) != want {
		t.Fatalf("exp1 cells = %d, want %d", len(cells), want)
	}
	// Scheduler is the fastest-varying dimension, so a positional consumer
	// (the Fig. 8 regenerator) reads cells[li*6+si].
	for li, lambda := range fig8Lambdas {
		for si, s := range sixSchedulers {
			c := cells[li*len(sixSchedulers)+si]
			if c.Lambda != lambda || c.Scheduler != s {
				t.Fatalf("cell %d = (λ=%v, %s), want (λ=%v, %s)",
					c.Index, c.Lambda, c.Scheduler, lambda, s)
			}
			if c.NumFiles != 16 || c.DD != 1 || c.Load != "exp1" {
				t.Fatalf("cell %d base params: %+v", c.Index, c)
			}
		}
	}
}

func TestExp4SpecShape(t *testing.T) {
	cells := Exp4Spec(Options{Duration: 100_000 * sim.Millisecond}).Cells()
	if want := len(Exp4MTBFs) * len(sixSchedulers); len(cells) != want {
		t.Fatalf("exp4 cells = %d, want %d", len(cells), want)
	}
	// MTBF-major, scheduler fastest — the Exp4 table reads rows positionally.
	for mi, mtbf := range Exp4MTBFs {
		c := cells[mi*len(sixSchedulers)]
		if c.MTBFSeconds != mtbf.Seconds() || c.Lambda != exp4Lambda || c.DD != exp4DD {
			t.Fatalf("mtbf row %d starts with %+v", mi, c)
		}
	}
}

func TestPaperSpecRegistry(t *testing.T) {
	o := Options{Duration: 100_000 * sim.Millisecond}
	for _, id := range []string{"exp1", "exp2", "exp3", "exp4"} {
		s, ok := PaperSpec(id, o)
		if !ok {
			t.Errorf("PaperSpec(%q) missing", id)
			continue
		}
		if s.Name != id {
			t.Errorf("PaperSpec(%q).Name = %q", id, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("PaperSpec(%q) invalid: %v", id, err)
		}
	}
	if _, ok := PaperSpec("exp9", o); ok {
		t.Error("PaperSpec accepted an unknown experiment")
	}
}

func TestCellPointMapping(t *testing.T) {
	c := sweep.Cell{
		Scheduler: "GOW", Lambda: 0.8, NumFiles: 32, DD: 4, Sigma: 2,
		MPL: 8, K: 3, Load: "exp2", DurationSeconds: 120,
	}
	p := CellPoint(c)
	want := Point{
		Scheduler: "GOW", Lambda: 0.8, NumFiles: 32, DD: 4, Sigma: 2,
		MPL: 8, K: 3, Load: Exp2, Reps: 1, Duration: 120 * sim.Second,
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("CellPoint = %+v, want %+v", p, want)
	}
	// A positive MTBF switches on the Exp.4 fault model.
	c.MTBFSeconds = 100
	p = CellPoint(c)
	if p.Faults.MTBF != 100*sim.Second || p.Faults.MTTR != exp4MTTR {
		t.Errorf("fault config = %+v", p.Faults)
	}
	if p.RestartDelay != exp4RestartDelay {
		t.Errorf("restart delay = %v", p.RestartDelay)
	}
}

func TestRunCellRejectsUnknownScheduler(t *testing.T) {
	_, err := RunCell(sweep.Cell{Scheduler: "WAT", Lambda: 0.5, NumFiles: 16, DD: 1, Load: "exp1"}, 1)
	if err == nil || !strings.Contains(err.Error(), "WAT") {
		t.Fatalf("unknown scheduler not rejected: %v", err)
	}
}

// TestSweepResumeRealSimulation extends the determinism suite to the full
// stack: the sweep engine driving real simulations through RunCell must
// survive a mid-run halt with a torn checkpoint tail and resume to output
// byte-identical to an uninterrupted run.
func TestSweepResumeRealSimulation(t *testing.T) {
	spec := sweep.Spec{
		Name:            "resume-real",
		Load:            "exp1",
		Schedulers:      []string{"LOW", "NODC"},
		Lambdas:         []float64{0.4},
		Reps:            2,
		Seed:            3,
		DurationSeconds: 60,
	}
	encode := func(res *sweep.Result) []byte {
		var buf bytes.Buffer
		if err := sweep.EncodeJSONL(&buf, res.Records); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	full, err := sweep.Run(context.Background(), spec, RunCell, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := encode(full)

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	if _, err := sweep.Run(context.Background(), spec, RunCell,
		sweep.Options{Checkpoint: ckpt, HaltAfter: 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := sweep.Run(context.Background(), spec, RunCell,
		sweep.Options{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 1 {
		t.Fatalf("torn tail not dropped: %+v", resumed)
	}
	if got := encode(resumed); !bytes.Equal(got, want) {
		t.Error("resumed real-simulation sweep differs from uninterrupted run")
	}
}

// TestSolveLambdaReplicated: a positive reps argument must override the
// point's replication count, so the bisection probes the replicated mean
// rather than a single seed.
func TestSolveLambdaReplicated(t *testing.T) {
	p := Point{
		Scheduler: "LOW", NumFiles: 16, DD: 1, Load: Exp1,
		Seed: 5, Reps: 1, Duration: 100_000 * sim.Millisecond,
	}
	target := 20 * sim.Second
	got := SolveLambdaAtRT(p, 3, target, 0.1, 1.0, 0.05)

	explicit := p
	explicit.Reps = 3
	want := SolveLambdaAtRT(explicit, 0, target, 0.1, 1.0, 0.05)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("reps=3 solve = %v, explicit Reps=3 solve = %v", got, want)
	}

	// And the replicated probe really is Run at Reps=3: the solution must sit
	// on the replicated mean's knee — RT(lo) <= target at Reps=3.
	probe := explicit
	probe.Lambda = want
	if rt := Run(probe).MeanRT; rt > target {
		t.Errorf("solved λ=%v has replicated RT %v > target %v", want, rt, target)
	}
}
