package sched

import (
	"testing"

	"batchsched/internal/model"
)

func TestLOWLBUsesLoadProbe(t *testing.T) {
	s := NewLOWLB(DefaultParams()).(*low)
	if s.Name() != "LOW-LB" {
		t.Fatalf("name = %q", s.Name())
	}
	// Inject a probe that makes file 1 heavily congested.
	s.SetLoadProbe(func(f model.FileID) float64 {
		if f == 1 {
			return 9
		}
		return 0
	})
	files := map[string]model.FileID{"a": 0, "b": 1}
	tx := mkTxn(1, "w(a:1)->w(b:1)", files)
	// T0 weight = 1*(1+0) + 1*(1+9) = 11 under the probe.
	if got := s.w0(tx); got != 11 {
		t.Errorf("load-aware w0 = %g, want 11", got)
	}
	tx.StepIndex = 1
	if got := s.w0(tx); got != 10 {
		t.Errorf("load-aware w0 after step 1 = %g, want 10", got)
	}
}

func TestPlainLOWIgnoresProbe(t *testing.T) {
	s := NewLOW(DefaultParams()).(*low)
	s.SetLoadProbe(func(model.FileID) float64 { return 100 })
	files := map[string]model.FileID{"a": 0}
	tx := mkTxn(1, "w(a:2)", files)
	if got := s.w0(tx); got != 2 {
		t.Errorf("plain LOW w0 = %g, want plain remaining demand 2", got)
	}
}

func TestLOWLBWithoutProbeBehavesLikeLOW(t *testing.T) {
	s := NewLOWLB(DefaultParams())
	files := map[string]model.FileID{"a": 0}
	a := mkTxn(1, "w(a:1)", files)
	b := mkTxn(2, "w(a:1)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b)
	if out := s.Request(a); out.Decision != Grant {
		t.Fatalf("a = %v", out.Decision)
	}
	if out := s.Request(b); out.Decision != Block {
		t.Fatalf("b = %v, want block", out.Decision)
	}
	a.StepIndex = 1
	s.Committed(a)
	if out := s.Request(b); out.Decision != Grant {
		t.Fatalf("b after commit = %v", out.Decision)
	}
	// Nil probe injection is a safe no-op.
	s.(*low).SetLoadProbe(nil)
}

func TestGOWGreedyParam(t *testing.T) {
	p := DefaultParams()
	p.GOWGreedy = true
	s := NewGOW(p)
	files := map[string]model.FileID{"u": 0, "v": 1}
	t1 := mkTxn(1, "w(u:5)", files)
	t2 := mkTxn(2, "w(u:1)->w(v:1)", files)
	mustAdmit(t, s, t1)
	mustAdmit(t, s, t2)
	// Greedy GOW grants T2's non-contradictory request immediately even
	// though the optimized W would delay it (contrast with
	// TestGOWFig3Consistency).
	out := s.Request(t2)
	if out.Decision != Grant {
		t.Fatalf("greedy GOW = %v, want grant", out.Decision)
	}
	if out.CPU != p.DDTime {
		t.Errorf("greedy CPU = %v, want ddtime (no chain optimization)", out.CPU)
	}
	// t1's request against the held lock blocks at Phase 1 as usual.
	if out := s.Request(t1); out.Decision != Block {
		t.Fatalf("t1 against t2's grant = %v, want block", out.Decision)
	}
}
