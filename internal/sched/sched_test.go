package sched

import (
	"testing"

	"batchsched/internal/lock"
	"batchsched/internal/model"
	"batchsched/internal/sim"
	"batchsched/internal/wtpg"
)

func mkTxn(id int64, pattern string, binding map[string]model.FileID) *model.Txn {
	p := model.MustParsePattern(pattern)
	steps, err := p.Instantiate(binding)
	if err != nil {
		panic(err)
	}
	return model.NewTxn(id, 0, steps)
}

func mustAdmit(t *testing.T, s Scheduler, txn *model.Txn) {
	t.Helper()
	ok, _ := s.Admit(txn)
	if !ok {
		t.Fatalf("%s refused to admit T%d", s.Name(), txn.ID)
	}
	txn.Status = model.Active
}

func TestRegistry(t *testing.T) {
	p := DefaultParams()
	for _, name := range Names {
		s, err := New(name, p)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
	if _, err := New("XYZ", p); err == nil {
		t.Error("unknown scheduler name must error")
	}
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.DDTime != 1*sim.Millisecond ||
		p.KWTPGTime != 10*sim.Millisecond ||
		p.ChainTime != 30*sim.Millisecond ||
		p.TopTime != 5*sim.Millisecond ||
		p.K != 2 {
		t.Errorf("DefaultParams = %+v does not match Table 1", p)
	}
}

func TestDecisionString(t *testing.T) {
	if Grant.String() != "grant" || Block.String() != "block" ||
		Delay.String() != "delay" || Abort.String() != "abort" {
		t.Error("Decision.String mismatch")
	}
}

func TestNODCGrantsEverything(t *testing.T) {
	s := NewNODC()
	files := map[string]model.FileID{"A": 0}
	a := mkTxn(1, "w(A:1)", files)
	b := mkTxn(2, "w(A:1)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b)
	if out := s.Request(a); out.Decision != Grant {
		t.Errorf("NODC request = %v, want grant", out.Decision)
	}
	if out := s.Request(b); out.Decision != Grant {
		t.Errorf("NODC conflicting request = %v, want grant (no data contention)", out.Decision)
	}
	if ok, _ := s.Validate(a); !ok {
		t.Error("NODC validation must always pass")
	}
	s.Committed(a)
	s.Committed(b)
}

func TestASLAdmission(t *testing.T) {
	s := NewASL()
	files := map[string]model.FileID{"d": 0, "e": 1, "f": 2, "g": 3}
	a := mkTxn(1, "w(d:1)->w(e:1)", files)
	b := mkTxn(2, "w(e:1)->w(f:1)", files)
	c := mkTxn(3, "w(f:1)->w(g:1)", files)

	mustAdmit(t, s, a)
	if ok, _ := s.Admit(b); ok {
		t.Fatal("ASL must refuse b: its lock set overlaps a's")
	}
	// c overlaps b but b is NOT running, so c starts.
	mustAdmit(t, s, c)

	// Every step of an admitted ASL transaction is a grant.
	for i := range a.Steps {
		a.StepIndex = i
		if out := s.Request(a); out.Decision != Grant {
			t.Fatalf("ASL step %d = %v, want grant", i, out.Decision)
		}
	}
	s.Committed(a)
	// b still conflicts with the running c on f.
	if ok, _ := s.Admit(b); ok {
		t.Fatal("b overlaps running c on f")
	}
	s.Committed(c)
	mustAdmit(t, s, b)
}

func TestASLConflictWithRunningEvenAfterPartialOverlap(t *testing.T) {
	s := NewASL()
	files := map[string]model.FileID{"d": 0, "e": 1, "f": 2}
	a := mkTxn(1, "w(d:1)->w(e:1)", files)
	b := mkTxn(2, "w(e:1)->w(f:1)", files)
	mustAdmit(t, s, a)
	if ok, _ := s.Admit(b); ok {
		t.Fatal("b overlaps running a on e")
	}
	s.Committed(a)
	mustAdmit(t, s, b)
}

func TestASLSharedReadersCoexist(t *testing.T) {
	s := NewASL()
	files := map[string]model.FileID{"A": 0}
	a := mkTxn(1, "r(A:5)", files)
	b := mkTxn(2, "r(A:5)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b) // S-S compatible
}

func TestC2PLBlockAndDeadlockAvoidance(t *testing.T) {
	s := NewC2PL(DefaultParams())
	files := map[string]model.FileID{"d": 0, "e": 1}
	a := mkTxn(1, "w(d:1)->w(e:1)", files)
	b := mkTxn(2, "w(e:1)->w(d:1)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b)

	// a takes d.
	if out := s.Request(a); out.Decision != Grant {
		t.Fatalf("a's first request = %v, want grant", out.Decision)
	}
	if out := s.Request(a); out.CPU != 0 || out.Decision != Grant {
		t.Fatalf("re-request of a held lock = %+v, want free grant", out)
	}
	// b asks for e: granting would put b before a, contradicting a->d
	// (pair conflicts on both files) — the cautious test must DELAY it.
	out := s.Request(b)
	if out.Decision != Delay {
		t.Fatalf("b's request = %v, want delay (deadlock prediction)", out.Decision)
	}
	if out.CPU != DefaultParams().DDTime {
		t.Errorf("deadlock test CPU = %v, want ddtime", out.CPU)
	}
	// a continues to e and commits; then b can go.
	a.StepIndex = 1
	if out := s.Request(a); out.Decision != Grant {
		t.Fatalf("a's second request = %v, want grant", out.Decision)
	}
	a.StepIndex = 2
	s.Committed(a)
	if out := s.Request(b); out.Decision != Grant {
		t.Fatalf("b after a's commit = %v, want grant", out.Decision)
	}
	// A third transaction wanting d is blocked by b's holding... b holds e
	// only; it wants e: blocked.
	c := mkTxn(3, "w(e:2)", files)
	mustAdmit(t, s, c)
	if out := s.Request(c); out.Decision != Block {
		t.Fatalf("c against held lock = %v, want block", out.Decision)
	}
	b.StepIndex = 1
	if out := s.Request(b); out.Decision != Grant {
		t.Fatalf("b's second step = %v, want grant", out.Decision)
	}
	b.StepIndex = 2
	s.Committed(b)
	if out := s.Request(c); out.Decision != Grant {
		t.Fatalf("c after release = %v, want grant", out.Decision)
	}
}

func TestC2PLSeedPreventsLateArrivalDeadlock(t *testing.T) {
	// a is granted d before b even arrives. When b (which needs both d and
	// e) is admitted, the holder order a->b must be seeded so that granting
	// b's request on e is recognized as a future deadlock.
	s := NewC2PL(DefaultParams())
	files := map[string]model.FileID{"d": 0, "e": 1}
	a := mkTxn(1, "w(d:1)->w(e:1)", files)
	mustAdmit(t, s, a)
	if out := s.Request(a); out.Decision != Grant {
		t.Fatal("a must get d")
	}
	b := mkTxn(2, "w(e:1)->w(d:1)", files)
	mustAdmit(t, s, b)
	if out := s.Request(b); out.Decision != Delay {
		t.Fatalf("b's request on e = %v, want delay (would deadlock with a)", out.Decision)
	}
}

func TestC2PLMAdmissionLimit(t *testing.T) {
	p := DefaultParams()
	s := NewC2PLM(p, 1)
	files := map[string]model.FileID{"d": 0, "e": 1}
	a := mkTxn(1, "w(d:1)", files)
	b := mkTxn(2, "w(e:1)", files)
	mustAdmit(t, s, a)
	if ok, _ := s.Admit(b); ok {
		t.Fatal("mpl=1 must refuse a second admission")
	}
	a.StepIndex = 1
	s.Committed(a)
	mustAdmit(t, s, b)
}

func TestOPTValidationAbortsOnConflict(t *testing.T) {
	s := NewOPT()
	files := map[string]model.FileID{"A": 0, "B": 1}
	writer := mkTxn(1, "w(A:1)", files)
	reader := mkTxn(2, "r(A:5)->w(B:1)", files)
	bystander := mkTxn(3, "w(B:2)", files)

	mustAdmit(t, s, reader)
	mustAdmit(t, s, writer)
	mustAdmit(t, s, bystander)
	if out := s.Request(writer); out.Decision != Grant {
		t.Fatal("OPT must grant without locks")
	}
	// writer commits while reader is running -> reader's validation fails.
	if ok, _ := s.Validate(writer); !ok {
		t.Fatal("writer must validate (nothing committed)")
	}
	s.Committed(writer)
	if ok, _ := s.Validate(reader); ok {
		t.Fatal("reader must fail validation: a committed writer wrote A")
	}
	s.Aborted(reader)
	// bystander's set is disjoint from writer's writes... B is not written
	// by writer, so it validates.
	if ok, _ := s.Validate(bystander); !ok {
		t.Fatal("bystander must validate: writer wrote only A")
	}
	s.Committed(bystander)
	// reader restarts; now nothing conflicting commits during the attempt.
	mustAdmit(t, s, reader)
	if ok, _ := s.Validate(reader); !ok {
		t.Fatal("restarted reader must validate")
	}
	s.Committed(reader)
}

func TestOPTWriteWriteConflictAborts(t *testing.T) {
	s := NewOPT()
	files := map[string]model.FileID{"A": 0}
	w1 := mkTxn(1, "w(A:1)", files)
	w2 := mkTxn(2, "w(A:1)", files)
	mustAdmit(t, s, w1)
	mustAdmit(t, s, w2)
	s.Committed(w1)
	if ok, _ := s.Validate(w2); ok {
		t.Fatal("w2 must fail validation after w1 committed a write to A")
	}
}

// TestFaultAbortReleasesState: the lock-based schedulers never abort on
// their own, but a fault-induced rollback (node crash, message-retry
// exhaustion) reaches Aborted mid-flight — it must leave no scheduler state
// behind (locks released, WTPG node removed, admission slot freed) and the
// transaction must be re-admittable.
func TestFaultAbortReleasesState(t *testing.T) {
	files := map[string]model.FileID{"A": 0, "B": 1}
	for _, name := range []string{"NODC", "ASL", "C2PL", "C2PL+M", "GOW", "LOW"} {
		s := MustNew(name, DefaultParams())
		tx := mkTxn(1, "w(A:1)->w(B:1)", files)
		mustAdmit(t, s, tx)
		if out := s.Request(tx); out.Decision != Grant {
			t.Fatalf("%s: lone request = %v, want grant", name, out.Decision)
		}
		s.Aborted(tx)
		tx.StepIndex = 0
		if lt, ok := s.(interface{ Locks() *lock.Table }); ok {
			if n := lt.Locks().LockedFiles(); n != 0 {
				t.Errorf("%s: %d files still locked after fault abort", name, n)
			}
		}
		if gr, ok := s.(interface{ Graph() *wtpg.Graph }); ok {
			if n := gr.Graph().Len(); n != 0 {
				t.Errorf("%s: %d WTPG nodes left after fault abort", name, n)
			}
		}
		if ac, ok := s.(interface{ Active() int }); ok {
			if n := ac.Active(); n != 0 {
				t.Errorf("%s: %d active transactions left after fault abort", name, n)
			}
		}
		mustAdmit(t, s, tx) // the rolled-back transaction resubmits cleanly
	}
}

// TestTrivialSurfaces exercises the small accessor and validation methods
// of every scheduler so interface regressions are caught.
func TestTrivialSurfaces(t *testing.T) {
	files := map[string]model.FileID{"A": 0}
	p := DefaultParams()

	aslS := NewASL().(*asl)
	tx := mkTxn(1, "w(A:1)", files)
	mustAdmit(t, aslS, tx)
	if ok, cpu := aslS.Validate(tx); !ok || cpu != 0 {
		t.Error("ASL validate")
	}
	if aslS.Locks() == nil {
		t.Error("ASL lock table")
	}

	c := NewC2PL(p).(*c2pl)
	tx2 := mkTxn(2, "w(A:1)", files)
	mustAdmit(t, c, tx2)
	if ok, _ := c.Validate(tx2); !ok {
		t.Error("C2PL validate")
	}
	if c.Locks() == nil || c.Active() != 1 {
		t.Error("C2PL accessors")
	}

	g := NewGOW(p).(*gow)
	tx3 := mkTxn(3, "w(A:1)", files)
	mustAdmit(t, g, tx3)
	if ok, _ := g.Validate(tx3); !ok {
		t.Error("GOW validate")
	}
	if g.Locks() == nil || g.Graph() == nil {
		t.Error("GOW accessors")
	}

	l := NewLOW(p).(*low)
	tx4 := mkTxn(4, "w(A:1)", files)
	mustAdmit(t, l, tx4)
	if ok, _ := l.Validate(tx4); !ok {
		t.Error("LOW validate")
	}
	if l.Locks() == nil || l.Graph() == nil {
		t.Error("LOW accessors")
	}

	s2 := NewS2PL(p).(*s2pl)
	tx5 := mkTxn(5, "w(A:1)", files)
	mustAdmit(t, s2, tx5)
	if ok, _ := s2.Validate(tx5); !ok {
		t.Error("2PL validate")
	}
	if s2.Locks() == nil {
		t.Error("2PL lock table")
	}

	n := NewNODC()
	n.Committed(tx5) // no-op must not panic
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("bogus", DefaultParams())
}

// TestASLPanicsWithoutLock guards the ASL invariant that admitted
// transactions hold every lock.
func TestASLPanicsWithoutLock(t *testing.T) {
	s := NewASL()
	tx := mkTxn(9, "w(A:1)", map[string]model.FileID{"A": 0})
	// Not admitted: requesting must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Request(tx)
}
