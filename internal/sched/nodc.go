package sched

import (
	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// nodc is the NO-Data-Contention pseudo-scheduler: it grants every lock at
// any time, so its performance is the resource-bound upper limit against
// which the real schedulers are compared. Histories it produces are not
// serializable — that is the point.
type nodc struct{}

// NewNODC returns the NODC pseudo-scheduler.
func NewNODC() Scheduler { return nodc{} }

func (nodc) Name() string { return "NODC" }

func (nodc) Admit(*model.Txn) (bool, sim.Time) { return true, 0 }

func (nodc) Request(*model.Txn) Outcome { return Outcome{Decision: Grant} }

func (nodc) Validate(*model.Txn) (bool, sim.Time) { return true, 0 }

func (nodc) Committed(*model.Txn) {}

// Aborted is a no-op: NODC holds no scheduler state to roll back. Reached
// only by fault-induced rollbacks.
func (nodc) Aborted(*model.Txn) {}
