package sched

import (
	"batchsched/internal/lock"
	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// s2pl is traditional strict two-phase locking — the protocol the paper's
// introduction argues is unsuited to batch transactions because of "chains
// of blocking" (Tay). Locks are acquired incrementally as steps need them
// and held to commit; a request conflicting with a holder blocks; a request
// whose wait would close a cycle in the waits-for graph aborts the
// requester, rolling back and re-executing all its I/O.
//
// It is an extension beyond the paper's six evaluated schedulers, provided
// as the natural "what everyone used at the time" baseline.
type s2pl struct {
	p     Params
	locks *lock.Table
	// waitsOn records the file each blocked transaction is waiting for.
	waitsOn map[int64]model.FileID
	active  map[int64]*model.Txn
}

// NewS2PL returns a traditional strict two-phase locking scheduler with
// deadlock detection (victim: the requester whose wait would close the
// cycle).
func NewS2PL(p Params) Scheduler {
	return &s2pl{
		p:       p,
		locks:   lock.NewTable(),
		waitsOn: make(map[int64]model.FileID),
		active:  make(map[int64]*model.Txn),
	}
}

func (s *s2pl) Name() string { return "2PL" }

func (s *s2pl) Admit(t *model.Txn) (bool, sim.Time) {
	s.active[t.ID] = t
	return true, 0
}

func (s *s2pl) Request(t *model.Txn) Outcome {
	if holdsSufficient(s.locks, t) {
		delete(s.waitsOn, t.ID)
		return Outcome{Decision: Grant}
	}
	st := t.CurrentStep()
	if s.locks.CanGrant(t.ID, st.File, st.LockMode) {
		delete(s.waitsOn, t.ID)
		s.locks.Grant(t.ID, st.File, st.LockMode)
		return Outcome{Decision: Grant}
	}
	// Would block: detect whether waiting for this file closes a cycle in
	// the waits-for graph (cost: ddtime). The requester is the victim.
	cpu := s.p.DDTime
	if s.wouldCloseCycle(t.ID, st.File) {
		delete(s.waitsOn, t.ID)
		return Outcome{Decision: Abort, CPU: cpu}
	}
	s.waitsOn[t.ID] = st.File
	return Outcome{Decision: Block, CPU: cpu}
}

// wouldCloseCycle walks waits-for edges (waiter -> holders of its awaited
// file) starting from the holders of f, looking for a path back to t.
func (s *s2pl) wouldCloseCycle(t int64, f model.FileID) bool {
	visited := make(map[int64]bool)
	stack := append([]int64(nil), s.locks.Holders(f)...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == t {
			return true
		}
		if visited[v] {
			continue
		}
		visited[v] = true
		if g, ok := s.waitsOn[v]; ok {
			stack = append(stack, s.locks.Holders(g)...)
		}
	}
	return false
}

func (s *s2pl) Validate(*model.Txn) (bool, sim.Time) { return true, 0 }

func (s *s2pl) Committed(t *model.Txn) {
	delete(s.waitsOn, t.ID)
	delete(s.active, t.ID)
	s.locks.ReleaseAll(t.ID)
}

// Aborted rolls the victim back: all its locks release and it will restart
// from its first step.
func (s *s2pl) Aborted(t *model.Txn) {
	delete(s.waitsOn, t.ID)
	s.locks.ReleaseAll(t.ID)
}

// Locks exposes the lock table for invariant checks in tests.
func (s *s2pl) Locks() *lock.Table { return s.locks }
