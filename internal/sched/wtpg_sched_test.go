package sched

import (
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// TestGOWFig3Consistency reproduces the paper's Section 3.2 worked example:
// in the chain T1-T2-T3 the optimal order W puts T1 before T2 and T3 before
// T2, so a request by T1 conflicting with T2 is granted while a request by
// T2 conflicting with T1 is delayed.
func TestGOWFig3Consistency(t *testing.T) {
	s := NewGOW(DefaultParams()).(*gow)
	files := map[string]model.FileID{"u": 0, "v": 1}
	t1 := mkTxn(1, "w(u:5)", files)
	t2 := mkTxn(2, "w(u:1)->w(v:1)", files)
	t3 := mkTxn(3, "w(v:6)", files)
	mustAdmit(t, s, t1)
	mustAdmit(t, s, t2)
	mustAdmit(t, s, t3)

	// T2 requests its first lock (on u, conflicting with T1): W wants T1
	// first, so the request is delayed.
	out := s.Request(t2)
	if out.Decision != Delay {
		t.Fatalf("T2's request = %v, want delay (inconsistent with W)", out.Decision)
	}
	if out.CPU != DefaultParams().ChainTime {
		t.Errorf("GOW request CPU = %v, want chaintime", out.CPU)
	}

	// T1's request on u is consistent with W: granted.
	if out := s.Request(t1); out.Decision != Grant {
		t.Fatalf("T1's request = %v, want grant", out.Decision)
	}
	// T3's request on v (T3 before T2) is consistent too.
	if out := s.Request(t3); out.Decision != Grant {
		t.Fatalf("T3's request = %v, want grant", out.Decision)
	}
	// T2 now blocks on the held lock (Phase 1), not policy delay.
	if out := s.Request(t2); out.Decision != Block {
		t.Fatalf("T2 against held lock = %v, want block", out.Decision)
	}
	// T1 finishes; T2 retries u: grant (T1 gone, W trivial).
	t1.StepIndex = 1
	s.Committed(t1)
	if out := s.Request(t2); out.Decision != Grant {
		t.Fatalf("T2 after T1's commit = %v, want grant", out.Decision)
	}
}

func TestGOWAdmissionChainForm(t *testing.T) {
	s := NewGOW(DefaultParams())
	files := map[string]model.FileID{"u": 0, "v": 1, "w": 2}
	hub := mkTxn(1, "w(u:1)->w(v:1)->w(w:1)", files)
	mustAdmit(t, s, hub)
	mustAdmit(t, s, mkTxn(2, "w(u:1)", files))
	mustAdmit(t, s, mkTxn(3, "w(v:1)", files))
	// A third conflicter would give the hub degree 3: refused, costing the
	// chain-form test time.
	spoke := mkTxn(4, "w(w:1)", files)
	ok, cpu := s.Admit(spoke)
	if ok {
		t.Fatal("GOW must refuse an admission that breaks chain form")
	}
	if cpu != DefaultParams().TopTime {
		t.Errorf("chain-form test CPU = %v, want toptime", cpu)
	}
	// A cycle-closing transaction is refused as well.
	closer := mkTxn(5, "w(u:1)->w(v:1)", files)
	if ok, _ := s.Admit(closer); ok {
		t.Fatal("GOW must refuse a cycle-closing admission")
	}
	// But a transaction on an untouched file is admitted.
	mustAdmit(t, s, mkTxn(6, "r(z:1)", map[string]model.FileID{"z": 9}))
	_ = spoke
}

// TestLOWFig6Decision reproduces the paper's Section 3.3 worked example
// (Fig. 6): with precedence T4->T5 and T6->T7 already determined and
// conflicts (T5,T6) and (T4,T7) open, T5's lock request q on the shared
// file has E(q) > E(p) for T6's declaration p, so q is delayed; T6's own
// request is granted.
func TestLOWFig6Decision(t *testing.T) {
	s := NewLOW(DefaultParams()).(*low)
	files := map[string]model.FileID{"a": 0, "b": 1, "c": 2, "d": 3}
	t4 := mkTxn(4, "w(a:1)->w(d:1)", files)
	t5 := mkTxn(5, "w(a:0)->w(b:1)", files)
	t6 := mkTxn(6, "w(b:1)->w(c:1)", files)
	t7 := mkTxn(7, "w(d:9)->w(c:1)", files)
	mustAdmit(t, s, t4)
	mustAdmit(t, s, t5)
	mustAdmit(t, s, t6)
	mustAdmit(t, s, t7)
	if err := s.Graph().Orient(4, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Graph().Orient(6, 7); err != nil {
		t.Fatal(err)
	}

	// q: T5 requests file b (its second step).
	t5.StepIndex = 1
	out := s.Request(t5)
	if out.Decision != Delay {
		t.Fatalf("T5's request = %v, want delay (E(q) > E(p))", out.Decision)
	}
	// E(q) and one E(p) were computed: 2 * kwtpgtime.
	if want := 2 * DefaultParams().KWTPGTime; out.CPU != want {
		t.Errorf("LOW request CPU = %v, want %v", out.CPU, want)
	}

	// p: T6 requests file b (its first step): granted.
	if out := s.Request(t6); out.Decision != Grant {
		t.Fatalf("T6's request = %v, want grant", out.Decision)
	}
	// After the grant, T5's retry blocks on the held lock.
	if out := s.Request(t5); out.Decision != Block {
		t.Fatalf("T5 retry = %v, want block", out.Decision)
	}
}

func TestLOWAdmissionKBound(t *testing.T) {
	p := DefaultParams()
	p.K = 2
	s := NewLOW(p)
	files := map[string]model.FileID{"h": 0}
	mustAdmit(t, s, mkTxn(1, "w(h:1)", files))
	mustAdmit(t, s, mkTxn(2, "w(h:1)", files))
	// Third conflicting declaration on h would push the first two
	// transactions' conflict sets to 2 and its own to 2: still allowed.
	mustAdmit(t, s, mkTxn(3, "w(h:1)", files))
	// Fourth: its own C(q) on h would have size 3 > K: refused.
	if ok, _ := s.Admit(mkTxn(4, "w(h:1)", files)); ok {
		t.Fatal("LOW must refuse the 4th conflicting declaration at K=2")
	}
	// A non-conflicting reader of another file is fine.
	mustAdmit(t, s, mkTxn(5, "r(h:1)", map[string]model.FileID{"h": 1}))
}

func TestLOWAdmissionKZeroEqualsNoSharedConflicts(t *testing.T) {
	p := DefaultParams()
	p.K = 0
	s := NewLOW(p)
	files := map[string]model.FileID{"h": 0}
	mustAdmit(t, s, mkTxn(1, "w(h:1)", files))
	if ok, _ := s.Admit(mkTxn(2, "w(h:1)", files)); ok {
		t.Fatal("K=0 must refuse any conflicting admission")
	}
}

func TestLOWDelaysDeadlockingRequest(t *testing.T) {
	s := NewLOW(DefaultParams()).(*low)
	files := map[string]model.FileID{"d": 0, "e": 1}
	a := mkTxn(1, "w(d:1)->w(e:1)", files)
	b := mkTxn(2, "w(e:1)->w(d:1)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b)
	if out := s.Request(a); out.Decision != Grant {
		t.Fatalf("a's request = %v, want grant", out.Decision)
	}
	// b's grant on e would contradict a->b: E(q) = +Inf -> delay.
	if out := s.Request(b); out.Decision != Delay {
		t.Fatalf("b's request = %v, want delay", out.Decision)
	}
	// After a commits, b goes through.
	a.StepIndex = 2
	s.Committed(a)
	if out := s.Request(b); out.Decision != Grant {
		t.Fatalf("b after commit = %v, want grant", out.Decision)
	}
}

func TestGOWDelaysDeadlockingRequest(t *testing.T) {
	s := NewGOW(DefaultParams())
	files := map[string]model.FileID{"d": 0, "e": 1}
	a := mkTxn(1, "w(d:1)->w(e:1)", files)
	b := mkTxn(2, "w(e:1)->w(d:1)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b)
	if out := s.Request(a); out.Decision != Grant {
		t.Fatalf("a = %v, want grant", out.Decision)
	}
	out := s.Request(b)
	if out.Decision != Delay {
		t.Fatalf("b = %v, want delay (would contradict a->b)", out.Decision)
	}
}

func TestWTPGSchedulersFreeGrantForHeldLock(t *testing.T) {
	files := map[string]model.FileID{"A": 0}
	for _, name := range []string{"GOW", "LOW"} {
		s := MustNew(name, DefaultParams())
		tx := mkTxn(1, "Xr(A:1)->w(A:0.2)", files)
		mustAdmit(t, s, tx)
		if out := s.Request(tx); out.Decision != Grant {
			t.Fatalf("%s first request = %v", name, out.Decision)
		}
		tx.StepIndex = 1
		out := s.Request(tx)
		if out.Decision != Grant || out.CPU != sim.Time(0) {
			t.Errorf("%s re-request of held X = %+v, want free grant", name, out)
		}
	}
}
