package sched

import (
	"batchsched/internal/lock"
	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// c2pl is Cautious Two-Phase Locking (Nishio et al.): strict 2PL that
// predicts deadlock from the transactions' declared access lists and grants
// a lock request q iff q is not blocked by a current holder and granting it
// cannot lead to a deadlock; a request that would deadlock is delayed
// instead. It therefore has neither deadlocks nor rollbacks, but it does
// suffer chains of blocking. With mpl > 0 it becomes C2PL+M, the paper's
// variant that caps the number of running transactions.
//
// The deadlock prediction is a cycle test on the needs-versus-holdings
// digraph: an edge u -> v when u declares a not-yet-satisfied need on a
// file v currently holds in an incompatible mode. Because access lists are
// declared up front and holdings only grow until commit, refusing any grant
// that would close a cycle through the grantee makes deadlock impossible
// (every hold-and-wait cycle would contain a final grant that completed it,
// and that grant is refused). This is the "(unweighted) WTPG" deadlock
// predictor of the paper with the cost ddtime per test.
type c2pl struct {
	p      Params
	mpl    int
	locks  *lock.Table
	active map[int64]*model.Txn
	name   string
}

// NewC2PL returns a cautious two-phase locking scheduler with an unlimited
// multiprogramming level.
func NewC2PL(p Params) Scheduler {
	return &c2pl{p: p, locks: lock.NewTable(), active: make(map[int64]*model.Txn), name: "C2PL"}
}

// NewC2PLM returns C2PL+M: cautious two-phase locking that admits at most
// mpl concurrent transactions (mpl <= 0 means unlimited).
func NewC2PLM(p Params, mpl int) Scheduler {
	return &c2pl{p: p, mpl: mpl, locks: lock.NewTable(), active: make(map[int64]*model.Txn), name: "C2PL+M"}
}

func (s *c2pl) Name() string { return s.name }

func (s *c2pl) Admit(t *model.Txn) (bool, sim.Time) {
	if s.mpl > 0 && len(s.active) >= s.mpl {
		return false, 0
	}
	s.active[t.ID] = t
	return true, 0
}

func (s *c2pl) Request(t *model.Txn) Outcome {
	if holdsSufficient(s.locks, t) {
		return Outcome{Decision: Grant}
	}
	st := t.CurrentStep()
	if !s.locks.CanGrant(t.ID, st.File, st.LockMode) {
		return Outcome{Decision: Block}
	}
	cpu := s.p.DDTime
	if s.wouldDeadlock(t, st.File, st.LockMode) {
		return Outcome{Decision: Delay, CPU: cpu}
	}
	s.locks.Grant(t.ID, st.File, st.LockMode)
	return Outcome{Decision: Grant, CPU: cpu}
}

// wouldDeadlock reports whether granting t mode m on file f closes a cycle
// in the needs-versus-holdings digraph. Any new cycle must pass through t
// (the grant only adds a holding of t), so a DFS from t back to t suffices.
func (s *c2pl) wouldDeadlock(t *model.Txn, f model.FileID, m model.Mode) bool {
	// heldHypo reports the mode x would hold on file g after the grant.
	heldHypo := func(x int64, g model.FileID) (model.Mode, bool) {
		if x == t.ID && g == f {
			if cur, ok := s.locks.Holds(x, g); ok && cur == model.X {
				return model.X, true
			}
			return m, true
		}
		return s.locks.Holds(x, g)
	}
	// successors: u -> every incompatible holder of a file u still needs.
	successors := func(u *model.Txn) []int64 {
		var out []int64
		for g, need := range u.LockNeed() {
			if cur, ok := heldHypo(u.ID, g); ok && (cur == model.X || need == model.S) {
				continue // already satisfied
			}
			if u.ID != t.ID && g == f {
				// t is about to hold f; u's incompatible need waits on t.
				if !m.Compatible(need) {
					out = append(out, t.ID)
				}
			}
			for _, h := range s.locks.Holders(g) {
				if h == u.ID {
					continue
				}
				hm, _ := heldHypo(h, g)
				if !hm.Compatible(need) {
					out = append(out, h)
				}
			}
		}
		return out
	}
	// DFS from t looking for a path back to t.
	visited := make(map[int64]bool)
	stack := successors(t)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == t.ID {
			return true
		}
		if visited[v] {
			continue
		}
		visited[v] = true
		u, ok := s.active[v]
		if !ok {
			continue
		}
		stack = append(stack, successors(u)...)
	}
	return false
}

func (s *c2pl) Validate(*model.Txn) (bool, sim.Time) { return true, 0 }

func (s *c2pl) Committed(t *model.Txn) {
	delete(s.active, t.ID)
	s.locks.ReleaseAll(t.ID)
}

// Aborted rolls the transaction out of the scheduler state: it leaves the
// active set and releases every lock it held. C2PL itself never aborts a
// transaction (no deadlocks, no rollbacks); this is the fault-induced
// rollback path.
func (s *c2pl) Aborted(t *model.Txn) {
	delete(s.active, t.ID)
	s.locks.ReleaseAll(t.ID)
}

// Locks exposes the lock table for invariant checks in tests.
func (s *c2pl) Locks() *lock.Table { return s.locks }

// Active returns the number of admitted, uncommitted transactions.
func (s *c2pl) Active() int { return len(s.active) }
