package sched

import (
	"fmt"

	"batchsched/internal/lock"
	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/pool"
	"batchsched/internal/sim"
	"batchsched/internal/wtpg"
)

// gow is the Globally-Optimized WTPG scheduler (paper Fig. 4; "Chain-WTPG"
// in the authors' earlier work). It keeps the WTPG in chain form — each
// transaction conflicts only with adjacent nodes — which makes the full
// serializable order W with the shortest critical path computable in
// polynomial time. Lock requests are granted only when they are consistent
// with W, so chains of blocking are avoided globally.
type gow struct {
	p     Params
	locks *lock.Table
	graph *wtpg.Graph
	plan  wtpg.Plan // reused across requests (Phase 2 scratch)

	// audit, when set, records every lock-request decision; lastCP is the
	// critical path |W| of the previous audited plan (for the delta).
	audit  *obs.Audit
	lastCP float64

	// Parallel decision engine (parallel.go): the injected pool lane fans
	// Phase 2's per-component chain optimization out; screen caches
	// monotone admission rejections from PrescreenAdmits, with screenTxns/
	// screenRej/screenCk its fan-out job table and per-worker scratch.
	lane       *pool.Lane
	screen     map[int64]bool
	screenTxns []*model.Txn
	screenRej  []bool
	screenCk   []wtpg.AddCheck
}

// NewGOW returns a Globally-Optimized WTPG scheduler.
func NewGOW(p Params) Scheduler {
	return &gow{p: p, locks: lock.NewTable(), graph: wtpg.New()}
}

func (s *gow) Name() string { return "GOW" }

// SetAudit implements Audited.
func (s *gow) SetAudit(a *obs.Audit) { s.audit = a }

// record appends one audited lock-request decision. pairs are the neighbor
// orientations the grant would determine (the candidate set); cp is the
// critical path |W| of the optimized order when one was computed
// (haveCP); the entry's CPDelta tracks |W| against the previous plan.
func (s *gow) record(t *model.Txn, d Decision, pairs [][2]int64, cp float64, haveCP bool, note string) {
	if s.audit == nil {
		return
	}
	st := t.CurrentStep()
	e := obs.AuditEntry{
		Scheduler: s.Name(), Txn: t.ID,
		File: int(st.File), Mode: st.LockMode.String(),
		Decision: d.String(), Note: note,
	}
	for _, pr := range pairs {
		e.Candidates = append(e.Candidates, pr[1])
	}
	if haveCP {
		e.EQ = cp
		e.CPDelta = cp - s.lastCP
		s.lastCP = cp
	}
	s.audit.Record(e)
}

// Admit is Phase 0: the chain-form test (cost: toptime). A transaction that
// would break chain form is not started; the control node retries it later.
func (s *gow) Admit(t *model.Txn) (bool, sim.Time) {
	if s.screen[t.ID] {
		// Cached monotone rejection from the epoch's prescreen: the graph
		// has only grown since, so the full test would reject too, at the
		// same TopTime charge.
		return false, s.p.TopTime
	}
	if !s.graph.ChainFormAfterAdd(t) {
		return false, s.p.TopTime
	}
	s.graph.Add(t)
	seedHolderOrder(s.graph, s.locks, t)
	return true, s.p.TopTime
}

// DecisionWorkers implements DecisionParallel.
func (s *gow) DecisionWorkers() int { return s.p.DecisionWorkers }

// SetDecisionLane implements DecisionParallel.
func (s *gow) SetDecisionLane(l *pool.Lane) { s.lane = l }

// PrescreenAdmits implements AdmitScreener: run the chain-form test for
// every candidate concurrently (each worker with private AddCheck scratch)
// against the sweep-start graph and cache the rejections for Admit.
// Rejections are monotone while the graph only grows — degrees grow and
// components only merge — and Committed/Aborted drop the cache.
func (s *gow) PrescreenAdmits(ts []*model.Txn) {
	clear(s.screen)
	if w := decisionWorkers(s.p, s.lane); w > 1 && len(ts) > 1 {
		s.screenTxns = append(s.screenTxns[:0], ts...)
		if cap(s.screenRej) < len(ts) {
			s.screenRej = make([]bool, len(ts))
		} else {
			s.screenRej = s.screenRej[:len(ts)] // workers write every index
		}
		if nw := s.lane.Workers(); len(s.screenCk) < nw {
			s.screenCk = append(s.screenCk, make([]wtpg.AddCheck, nw-len(s.screenCk))...)
		}
		s.lane.Run((*gowScreenRun)(s), len(ts), w)
		if s.screen == nil {
			s.screen = make(map[int64]bool)
		}
		for i, t := range ts {
			if s.screenRej[i] {
				s.screen[t.ID] = true
			}
		}
	}
}

// gowScreenRun is gow's prescreen fan-out entry point (pool.Runner).
type gowScreenRun gow

func (r *gowScreenRun) RunTask(worker, i int) {
	s := (*gow)(r)
	s.screenRej[i] = !s.graph.ChainFormAfterAddWith(s.screenTxns[i], &s.screenCk[worker])
}

func (s *gow) Request(t *model.Txn) Outcome {
	if holdsSufficient(s.locks, t) {
		s.record(t, Grant, nil, 0, false, "holds sufficient lock")
		return Outcome{Decision: Grant}
	}
	st := t.CurrentStep()
	// Phase 1: blocked by a current holder.
	if !s.locks.CanGrant(t.ID, st.File, st.LockMode) {
		s.record(t, Block, nil, 0, false, "conflicting lock holder")
		return Outcome{Decision: Block}
	}
	if s.p.GOWGreedy {
		// Ablation: no global optimization — grant whenever the implied
		// orientations do not contradict the existing order.
		pairs, err := s.graph.GrantOrientations(t, st.File, st.LockMode)
		if err != nil {
			s.record(t, Delay, pairs, 0, false, err.Error())
			return Outcome{Decision: Delay, CPU: s.p.DDTime}
		}
		if err := s.graph.OrientAll(pairs); err != nil {
			s.record(t, Delay, pairs, 0, false, err.Error())
			return Outcome{Decision: Delay, CPU: s.p.DDTime}
		}
		s.locks.Grant(t.ID, st.File, st.LockMode)
		s.record(t, Grant, pairs, 0, false, "")
		return Outcome{Decision: Grant, CPU: s.p.DDTime}
	}
	// Phase 2: compute the globally optimized serializable order W
	// (cost: chaintime). The CPU charge is made regardless; the plan itself
	// is only materialized when the grant would determine new orders, since
	// with no pairs to test against W the computation cannot change the
	// decision (it has no side effects on the graph).
	cpu := s.p.ChainTime
	pairs, err := s.graph.GrantOrientations(t, st.File, st.LockMode)
	if err != nil {
		s.record(t, Delay, nil, 0, false, err.Error())
		return Outcome{Decision: Delay, CPU: cpu}
	}
	cp, haveCP := 0.0, false
	if len(pairs) > 0 {
		plan := &s.plan
		// Phase 2 fans per-component solving over the decision lane when one
		// is injected; the plan is byte-identical either way.
		var err error
		if w := decisionWorkers(s.p, s.lane); w > 1 {
			err = s.graph.OptimalChainOrientationParallelInto(wtpg.RemainingDemand, plan, s.lane, w)
		} else {
			err = s.graph.OptimalChainOrientationInto(wtpg.RemainingDemand, plan)
		}
		if err != nil {
			panic(fmt.Sprintf("sched: GOW graph lost chain form: %v", err))
		}
		cp, haveCP = plan.Value, true
		// Phase 3: the orders granting q would determine must agree with W.
		for _, pr := range pairs {
			if ok, found := plan.Precedes(pr[1], pr[0]); found && ok {
				// W wants the other transaction first; q is inconsistent.
				s.record(t, Delay, pairs, cp, haveCP,
					fmt.Sprintf("W orders T%d before T%d", pr[1], pr[0]))
				return Outcome{Decision: Delay, CPU: cpu}
			}
		}
	}
	// Phase 4: grant and fix the newly determined precedence edges.
	if err := s.graph.OrientAll(pairs); err != nil {
		s.record(t, Delay, pairs, cp, haveCP, err.Error())
		return Outcome{Decision: Delay, CPU: cpu}
	}
	s.locks.Grant(t.ID, st.File, st.LockMode)
	s.record(t, Grant, pairs, cp, haveCP, "")
	return Outcome{Decision: Grant, CPU: cpu}
}

func (s *gow) Validate(*model.Txn) (bool, sim.Time) { return true, 0 }

func (s *gow) Committed(t *model.Txn) {
	s.graph.Remove(t.ID)
	s.locks.ReleaseAll(t.ID)
	clear(s.screen) // removals invalidate cached monotone rejections
}

// Aborted removes the transaction's WTPG node (its precedence edges go with
// it) and releases its locks. GOW itself never aborts a transaction; this
// is the fault-induced rollback path.
func (s *gow) Aborted(t *model.Txn) {
	s.graph.Remove(t.ID)
	s.locks.ReleaseAll(t.ID)
	clear(s.screen) // removals invalidate cached monotone rejections
}

// Locks exposes the lock table for invariant checks in tests.
func (s *gow) Locks() *lock.Table { return s.locks }

// Graph exposes the WTPG for invariant checks in tests.
func (s *gow) Graph() *wtpg.Graph { return s.graph }
