package sched

import (
	"testing"

	"batchsched/internal/model"
)

func TestS2PLIncrementalLocking(t *testing.T) {
	s := NewS2PL(DefaultParams())
	files := map[string]model.FileID{"A": 0, "B": 1}
	a := mkTxn(1, "w(A:1)->w(B:1)", files)
	mustAdmit(t, s, a)
	// 2PL acquires per step, not at admission: B must still be free.
	if out := s.Request(a); out.Decision != Grant {
		t.Fatalf("first request = %v", out.Decision)
	}
	b := mkTxn(2, "w(B:1)", files)
	mustAdmit(t, s, b)
	if out := s.Request(b); out.Decision != Grant {
		t.Fatalf("b must get B: 2PL locks incrementally, got %v", out.Decision)
	}
	// a's second step now blocks on b's lock.
	a.StepIndex = 1
	if out := s.Request(a); out.Decision != Block {
		t.Fatalf("a's second request = %v, want block", out.Decision)
	}
	b.StepIndex = 1
	s.Committed(b)
	if out := s.Request(a); out.Decision != Grant {
		t.Fatalf("a after b's commit = %v, want grant", out.Decision)
	}
}

func TestS2PLDeadlockVictimAborts(t *testing.T) {
	s := NewS2PL(DefaultParams())
	files := map[string]model.FileID{"A": 0, "B": 1}
	a := mkTxn(1, "w(A:1)->w(B:1)", files)
	b := mkTxn(2, "w(B:1)->w(A:1)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b)
	if out := s.Request(a); out.Decision != Grant {
		t.Fatal("a takes A")
	}
	if out := s.Request(b); out.Decision != Grant {
		t.Fatal("b takes B")
	}
	// a blocks on B (no cycle yet: b isn't waiting).
	a.StepIndex = 1
	if out := s.Request(a); out.Decision != Block {
		t.Fatalf("a = %v, want block", out.Decision)
	}
	// b requesting A would close the cycle: b is the victim.
	b.StepIndex = 1
	out := s.Request(b)
	if out.Decision != Abort {
		t.Fatalf("b = %v, want abort (deadlock victim)", out.Decision)
	}
	if out.CPU != DefaultParams().DDTime {
		t.Errorf("deadlock detection CPU = %v, want ddtime", out.CPU)
	}
	// After the victim rolls back, a can proceed.
	s.Aborted(b)
	if out := s.Request(a); out.Decision != Grant {
		t.Fatalf("a after victim rollback = %v, want grant", out.Decision)
	}
	// And the restarted b starts over, blocking behind a.
	b.StepIndex = 0
	if out := s.Request(b); out.Decision != Block {
		t.Fatalf("restarted b = %v, want block (a holds B now)", out.Decision)
	}
}

func TestS2PLUpgradeContentionAborts(t *testing.T) {
	// Two S holders that both want X on the same file: the second upgrader
	// is aborted rather than deadlocked.
	s := NewS2PL(DefaultParams())
	files := map[string]model.FileID{"A": 0}
	a := mkTxn(1, "r(A:1)->w(A:1)", files)
	b := mkTxn(2, "r(A:1)->w(A:1)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b)
	if out := s.Request(a); out.Decision != Grant {
		t.Fatal("a's S")
	}
	if out := s.Request(b); out.Decision != Grant {
		t.Fatal("b's S")
	}
	a.StepIndex = 1
	if out := s.Request(a); out.Decision != Abort {
		// a upgrading while b holds S: waiting is allowed only if it cannot
		// cycle; with itself among the holders the victim test fires.
		t.Fatalf("a's upgrade = %v, want abort (upgrade contention)", out.Decision)
	}
}

func TestS2PLNoFalseDeadlock(t *testing.T) {
	// A plain chain a -> b (no cycle) must block, not abort.
	s := NewS2PL(DefaultParams())
	files := map[string]model.FileID{"A": 0, "B": 1}
	a := mkTxn(1, "w(A:1)->w(B:1)", files)
	b := mkTxn(2, "w(B:1)", files)
	c := mkTxn(3, "w(A:1)", files)
	mustAdmit(t, s, a)
	mustAdmit(t, s, b)
	mustAdmit(t, s, c)
	if out := s.Request(b); out.Decision != Grant {
		t.Fatal("b takes B")
	}
	if out := s.Request(a); out.Decision != Grant {
		t.Fatal("a takes A")
	}
	a.StepIndex = 1
	if out := s.Request(a); out.Decision != Block {
		t.Fatalf("a = %v, want block (waits for b, no cycle)", out.Decision)
	}
	if out := s.Request(c); out.Decision != Block {
		t.Fatalf("c = %v, want block behind a (no cycle)", out.Decision)
	}
}
