package sched

import (
	"fmt"

	"batchsched/internal/lock"
	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// asl is Atomic Static Locking — conservative two-phase locking: a
// transaction acquires every lock it will ever need atomically at startup
// and starts only when all of them are available. It can never deadlock or
// roll back, and it never blocks mid-flight, but it refuses to start
// transactions whose lock sets overlap a running one.
type asl struct {
	locks *lock.Table
}

// NewASL returns an Atomic Static Locking scheduler.
func NewASL() Scheduler { return &asl{locks: lock.NewTable()} }

func (s *asl) Name() string { return "ASL" }

// Admit starts t only when its whole declared lock set is grantable at once.
func (s *asl) Admit(t *model.Txn) (bool, sim.Time) {
	need := t.LockNeed()
	if !s.locks.CanGrantAll(t.ID, need) {
		return false, 0
	}
	s.locks.GrantAll(t.ID, need)
	return true, 0
}

// Request is always a grant: every lock was taken at admission.
func (s *asl) Request(t *model.Txn) Outcome {
	if !holdsSufficient(s.locks, t) {
		panic(fmt.Sprintf("sched: ASL transaction T%d reached step %d without its lock", t.ID, t.StepIndex))
	}
	return Outcome{Decision: Grant}
}

func (s *asl) Validate(*model.Txn) (bool, sim.Time) { return true, 0 }

func (s *asl) Committed(t *model.Txn) { s.locks.ReleaseAll(t.ID) }

// Aborted releases the atomically acquired lock set. ASL itself never
// aborts a transaction; this is the fault-induced rollback path (node
// crash, message-retry exhaustion) — re-admission re-acquires the set.
func (s *asl) Aborted(t *model.Txn) { s.locks.ReleaseAll(t.ID) }

// Locks exposes the lock table for invariant checks in tests.
func (s *asl) Locks() *lock.Table { return s.locks }
