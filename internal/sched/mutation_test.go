package sched

import (
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/pool"
)

// mutStep is a declared exclusive write of the given cost.
func mutStep(file int, cost float64) model.Step {
	return model.Step{File: model.FileID(file), Write: true, LockMode: model.X,
		Cost: cost, DeclaredCost: cost}
}

// mutLOW builds a LOW instance at a steady Delay point whose sequential
// candidate walk reaches the *last* conflicter: resident r1 (huge remaining
// demand, E(p1) >= E(q)) is scanned and passed, resident r2 (tiny, E(p2) <
// E(q)) triggers the Delay. The per-candidate KWTPG charge therefore counts
// both candidates — any permutation of the evaluation results moves the
// early exit and changes Outcome.CPU.
func mutLOW(t *testing.T, workers int) (Scheduler, *model.Txn, *pool.Pool) {
	t.Helper()
	p := DefaultParams()
	p.DecisionWorkers = workers
	s := MustNew("LOW", p)
	var pl *pool.Pool
	if workers > 1 {
		pl = pool.New("mutation-test", workers)
		s.(DecisionParallel).SetDecisionLane(pl.Lane("decision"))
	}
	id := int64(1)
	admit := func(steps ...model.Step) *model.Txn {
		tx := model.NewTxn(id, 0, steps)
		id++
		if ok, _ := s.Admit(tx); !ok {
			t.Fatal("LOW refused an admission within the K bound")
		}
		return tx
	}
	admit(mutStep(0, 1), mutStep(1, 1000)) // r1: E(p1) == E(q), scan continues
	admit(mutStep(0, 1), mutStep(2, 1))    // r2: E(p2) < E(q), delays last
	req := admit(mutStep(0, 1), mutStep(3, 100))
	return s, req, pl
}

// TestMutationCorruptEvalOrder is the mutation test for the parallel
// decision engine's determinism argument (DESIGN.md §17): deliberately
// permuting the fanned-out evaluation results between fan-out and replay
// must produce an output that visibly diverges from the sequential oracle.
// If this test failed, a real reduction-order bug in the parallel path
// could slip through the byte-identity differential suite undetected.
func TestMutationCorruptEvalOrder(t *testing.T) {
	seq, seqReq, _ := mutLOW(t, 0)
	want := seq.Request(seqReq)
	if want.Decision != Delay {
		t.Fatalf("oracle expected Delay, got %v", want.Decision)
	}

	par, parReq, pl := mutLOW(t, 4)
	defer pl.Stop()
	if got := par.Request(parReq); got != want {
		t.Fatalf("uncorrupted parallel path diverged: %+v vs %+v", got, want)
	}

	// Swap E(p1) and E(p2) between fan-out and replay: the replay now sees
	// the tiny candidate first and exits one KWTPG charge early.
	testCorruptEvalOrder = func(res []float64) { res[1], res[2] = res[2], res[1] }
	defer func() { testCorruptEvalOrder = nil }()
	got := par.Request(parReq)
	if got == want {
		t.Fatal("corrupted reduction order went undetected: outputs identical")
	}
	if got.Decision != Delay || got.CPU >= want.CPU {
		t.Fatalf("corruption should surface as an earlier Delay exit (lower CPU): got %+v want < %+v", got, want)
	}

	// A Delay mutates nothing, so clearing the corruption restores byte
	// identity — the divergence above was the injected bug, not state drift.
	testCorruptEvalOrder = nil
	if got := par.Request(parReq); got != want {
		t.Fatalf("parallel path stayed diverged after clearing corruption: %+v vs %+v", got, want)
	}
}
