package sched

// Parallel decision engine (DESIGN.md §17). GOW and LOW implement
// DecisionParallel: when the backend injects a pool lane and
// Params.DecisionWorkers > 1, LOW scores E(q) and every E(p) concurrently
// through per-worker wtpg.Overlay arenas against one frozen EvalBase, and
// GOW fans its Phase-2 per-component chain optimization over the same lane.
// The sequential control flow is then *replayed* over the precomputed
// values — same early exits, same CPU charges, same audit entries — so every
// output is byte-identical to the DecisionWorkers=0 path.
//
// They also implement AdmitScreener: service-mode epochs hand the batch of
// admission candidates to PrescreenAdmits, which runs the (read-only)
// admission test for each candidate concurrently against the sweep-start
// graph and caches the rejections. Within a sweep the graph only grows, and
// both admission tests are monotone under growth — GOW's chain-form test
// can only get harder (degrees grow, components only merge) and LOW's
// K-bound sets only gain members — so a cached rejection stays correct until
// a transaction leaves the graph, at which point the cache is dropped.
// Accepted candidates always re-run the full test inside Admit, and the
// cached-reject path returns the identical (ok, cpu) the test would, so
// admission outcomes are unchanged byte for byte.

import (
	"batchsched/internal/model"
	"batchsched/internal/pool"
)

// DecisionParallel is implemented by schedulers whose decision evaluation
// can fan out over a worker pool (GOW and LOW). The backend injects a lane
// of its shared pool when Params.DecisionWorkers > 1; without a lane (or
// with DecisionWorkers 0/1) the scheduler keeps today's sequential path.
type DecisionParallel interface {
	// DecisionWorkers returns the configured fan-out width (Params.
	// DecisionWorkers); 0 or 1 means the sequential path.
	DecisionWorkers() int
	// SetDecisionLane injects the worker-pool lane decisions run on. Call
	// before the run starts; a nil lane disables the parallel path.
	SetDecisionLane(*pool.Lane)
}

// AdmitScreener is implemented by schedulers that can prescreen a batch of
// admission candidates concurrently (GOW and LOW). The service-mode epoch
// loop calls it with the window-fill batch before admitting one by one;
// Admit then consults the cached rejections instead of re-running the test.
type AdmitScreener interface {
	PrescreenAdmits(ts []*model.Txn)
}

// testCorruptEvalOrder, when non-nil, permutes LOW's parallel evaluation
// results between fan-out and replay. Test-only: the mutation test uses it
// to prove that a reduction-order bug in the parallel path cannot escape the
// differential suite (outputs visibly diverge from the sequential oracle).
var testCorruptEvalOrder func(res []float64)

// decisionWorkers clamps the configured width against an injected lane.
func decisionWorkers(p Params, lane *pool.Lane) int {
	if lane == nil || p.DecisionWorkers <= 1 {
		return 0
	}
	return p.DecisionWorkers
}
