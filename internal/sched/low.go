package sched

import (
	"math"

	"batchsched/internal/lock"
	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/pool"
	"batchsched/internal/sim"
	"batchsched/internal/wtpg"
)

// low is the Locally-Optimized WTPG scheduler (paper Figs. 5 and 7;
// "K-conflict WTPG" in the authors' earlier work). Instead of GOW's global
// chain-form constraint it bounds each access's conflicting-declaration set
// to K and grants a lock request q only when its contention estimate E(q) is
// no worse than the estimate E(p) of every conflicting declaration p — a
// local, present-state optimization that admits more transactions when
// batches update a hot set.
type low struct {
	p     Params
	locks *lock.Table
	graph *wtpg.Graph
	w0    wtpg.T0Weight
	name  string

	// audit, when set, records every lock-request decision with C(q) and
	// the E(q)/E(p) estimates the grant test compared.
	audit *obs.Audit

	// Parallel decision engine (parallel.go): the injected pool lane,
	// per-worker overlay arenas, the per-decision frozen base, and the job
	// table of one fan-out (evalRes[0] = E(q), evalRes[i+1] = E(p_i)).
	lane      *pool.Lane
	ovl       []*wtpg.Overlay
	base      wtpg.EvalBase
	evalTxns  []*model.Txn
	evalModes []model.Mode
	evalRes   []float64
	evalFile  model.FileID

	// screen caches monotone admission rejections from PrescreenAdmits;
	// screenTxns/screenRej are its fan-out job table.
	screen     map[int64]bool
	screenTxns []*model.Txn
	screenRej  []bool
}

// NewLOW returns a Locally-Optimized WTPG scheduler with conflict bound p.K.
func NewLOW(p Params) Scheduler {
	if p.K < 0 {
		p.K = 0
	}
	return &low{p: p, locks: lock.NewTable(), graph: wtpg.New(),
		w0: wtpg.RemainingDemand, name: "LOW"}
}

// NewLOWLB returns the load-balancing extension of LOW the paper's
// conclusion names as further work ("improve these new schedulers for
// resource-level load-balancing"): the T0 weights of the WTPG scale each
// remaining step's declared demand by the current congestion of the nodes
// that will execute it, so E(q) estimates remaining *time* rather than
// remaining demand and grants steer work toward idle nodes. The machine
// injects the congestion probe via SetLoadProbe.
func NewLOWLB(p Params) Scheduler {
	if p.K < 0 {
		p.K = 0
	}
	s := &low{p: p, locks: lock.NewTable(), graph: wtpg.New(), name: "LOW-LB"}
	s.w0 = wtpg.RemainingDemand // until a probe is injected
	return s
}

// LoadAware is implemented by schedulers that consume resource-level load
// information; the machine injects a probe returning the mean number of
// resident cohorts on the nodes holding a file's partitions.
type LoadAware interface {
	SetLoadProbe(func(f model.FileID) float64)
}

// SetLoadProbe implements LoadAware for the LOW-LB variant (a no-op for
// plain LOW).
func (s *low) SetLoadProbe(probe func(f model.FileID) float64) {
	if s.name != "LOW-LB" || probe == nil {
		return
	}
	s.w0 = func(t *model.Txn) float64 {
		var sum float64
		for i := t.StepIndex; i < len(t.Steps); i++ {
			st := t.Steps[i]
			sum += st.DeclaredCost * (1 + probe(st.File))
		}
		return sum
	}
}

func (s *low) Name() string { return s.name }

// SetAudit implements Audited.
func (s *low) SetAudit(a *obs.Audit) { s.audit = a }

// record appends one audited lock-request decision. Deadlocked estimates
// evaluate to +Inf, which JSON cannot represent, so they are recorded as -1
// (E(q) additionally gets an explanatory note).
func (s *low) record(t *model.Txn, d Decision, cands []int64, eq float64, haveEQ bool, eps []float64, note string) {
	if s.audit == nil {
		return
	}
	for i, ep := range eps {
		if math.IsInf(ep, 1) {
			eps[i] = -1
		}
	}
	st := t.CurrentStep()
	e := obs.AuditEntry{
		Scheduler: s.name, Txn: t.ID,
		File: int(st.File), Mode: st.LockMode.String(),
		Decision: d.String(), Candidates: cands, EPs: eps, Note: note,
	}
	if haveEQ {
		e.EQ = eq
		if math.IsInf(eq, 1) {
			e.EQ = -1
			e.Note = "deadlock: E(q)=+Inf"
		}
	}
	s.audit.Record(e)
}

// Admit starts t only when doing so keeps every conflicting-declaration set
// within the bound K: for each file t declares, both t's own conflict set
// on that file and the conflict sets of the transactions it joins must stay
// at size <= K.
func (s *low) Admit(t *model.Txn) (bool, sim.Time) {
	if s.screen[t.ID] {
		// Cached monotone rejection from the epoch's prescreen: the graph
		// has only grown since, so the full test would reject too, at the
		// same (zero) CPU charge.
		return false, 0
	}
	if s.admitBlocked(t) {
		return false, 0
	}
	s.graph.Add(t)
	seedHolderOrder(s.graph, s.locks, t)
	return true, 0
}

// admitBlocked is the K-bound admission test, read-only on the graph: t is
// refused when some file's conflicting-declaration set — t's own, or that of
// a transaction t would join — would exceed K.
func (s *low) admitBlocked(t *model.Txn) bool {
	need := t.LockNeed()
	for f, m := range need {
		cs := conflictersOn(s.graph, t, f, m)
		if len(cs) > s.p.K {
			return true
		}
		for _, u := range cs {
			um := u.LockNeed()[f]
			// u's conflict set on f after t joins: current conflicters of
			// u's access plus t itself.
			if len(conflictersOn(s.graph, u, f, um))+1 > s.p.K {
				return true
			}
		}
	}
	return false
}

// DecisionWorkers implements DecisionParallel.
func (s *low) DecisionWorkers() int { return s.p.DecisionWorkers }

// SetDecisionLane implements DecisionParallel.
func (s *low) SetDecisionLane(l *pool.Lane) { s.lane = l }

// PrescreenAdmits implements AdmitScreener: run the admission test for every
// candidate concurrently against the sweep-start graph and cache the
// rejections for Admit. Rejections are monotone while the graph only grows;
// Committed/Aborted (the only removal paths) drop the cache.
func (s *low) PrescreenAdmits(ts []*model.Txn) {
	clear(s.screen)
	if w := decisionWorkers(s.p, s.lane); w > 1 && len(ts) > 1 {
		s.screenTxns = append(s.screenTxns[:0], ts...)
		if cap(s.screenRej) < len(ts) {
			s.screenRej = make([]bool, len(ts))
		} else {
			s.screenRej = s.screenRej[:len(ts)] // workers write every index
		}
		s.lane.Run((*lowScreenRun)(s), len(ts), w)
		if s.screen == nil {
			s.screen = make(map[int64]bool)
		}
		for i, t := range ts {
			if s.screenRej[i] {
				s.screen[t.ID] = true
			}
		}
	}
}

// lowScreenRun is low's prescreen fan-out entry point (pool.Runner).
type lowScreenRun low

func (r *lowScreenRun) RunTask(worker, i int) {
	s := (*low)(r)
	s.screenRej[i] = s.admitBlocked(s.screenTxns[i])
}

// lowEvalRun is low's E(q)/E(p) fan-out entry point (pool.Runner): job i
// scores evalTxns[i] with worker w's private overlay against the frozen
// base.
type lowEvalRun low

func (r *lowEvalRun) RunTask(worker, i int) {
	s := (*low)(r)
	if s.ovl[worker] == nil {
		s.ovl[worker] = new(wtpg.Overlay)
	}
	s.evalRes[i] = s.ovl[worker].Evaluate(&s.base, s.evalTxns[i], s.evalFile, s.evalModes[i])
}

func (s *low) Request(t *model.Txn) Outcome {
	if holdsSufficient(s.locks, t) {
		s.record(t, Grant, nil, 0, false, nil, "holds sufficient lock")
		return Outcome{Decision: Grant}
	}
	st := t.CurrentStep()
	// Phase 1: blocked by a current holder.
	if !s.locks.CanGrant(t.ID, st.File, st.LockMode) {
		s.record(t, Block, nil, 0, false, nil, "conflicting lock holder")
		return Outcome{Decision: Block}
	}
	if decisionWorkers(s.p, s.lane) > 1 {
		return s.requestParallel(t, st)
	}
	// Phase 2: E(q); a deadlock evaluates to +Inf and q is delayed.
	cpu := s.p.KWTPGTime
	eq := wtpg.Evaluate(s.graph, t, st.File, st.LockMode, s.w0)
	if math.IsInf(eq, 1) {
		s.record(t, Delay, nil, eq, true, nil, "")
		return Outcome{Decision: Delay, CPU: cpu}
	}
	// Phase 3: q wins only if E(q) <= E(p) for every conflicting
	// declaration p in C(q). Each E(p) costs another kwtpgtime.
	var cands []int64
	var eps []float64
	for _, u := range conflictersOn(s.graph, t, st.File, st.LockMode) {
		cpu += s.p.KWTPGTime
		ep := wtpg.Evaluate(s.graph, u, st.File, u.LockNeed()[st.File], s.w0)
		if s.audit != nil {
			cands = append(cands, u.ID)
			eps = append(eps, ep)
		}
		if eq > ep {
			s.record(t, Delay, cands, eq, true, eps, "E(q) > E(p)")
			return Outcome{Decision: Delay, CPU: cpu}
		}
	}
	// Phase 4: grant and fix the newly determined precedence edges.
	if err := s.graph.Grant(t, st.File, st.LockMode); err != nil {
		s.record(t, Delay, cands, eq, true, eps, err.Error())
		return Outcome{Decision: Delay, CPU: cpu}
	}
	s.locks.Grant(t.ID, st.File, st.LockMode)
	s.record(t, Grant, cands, eq, true, eps, "")
	return Outcome{Decision: Grant, CPU: cpu}
}

// requestParallel is Phases 2–4 with E(q) and every E(p) scored concurrently
// through per-worker overlays, then the sequential decision walk replayed
// over the precomputed values: the same candidate order, the same early
// exit, the same per-candidate KWTPGTime charge up to and including the
// deciding comparison, the same audit entries. A candidate the sequential
// path would never have evaluated may be scored speculatively here; its
// value is simply never consulted, so outputs are unchanged.
func (s *low) requestParallel(t *model.Txn, st model.Step) Outcome {
	cpu := s.p.KWTPGTime
	confs := conflictersOn(s.graph, t, st.File, st.LockMode)
	s.evalTxns = append(s.evalTxns[:0], t)
	s.evalModes = append(s.evalModes[:0], st.LockMode)
	for _, u := range confs {
		s.evalTxns = append(s.evalTxns, u)
		s.evalModes = append(s.evalModes, u.LockNeed()[st.File])
	}
	s.evalFile = st.File
	if n := len(s.evalTxns); cap(s.evalRes) < n {
		s.evalRes = make([]float64, n)
	} else {
		s.evalRes = s.evalRes[:n] // workers write every index
	}
	if nw := s.lane.Workers(); len(s.ovl) < nw {
		s.ovl = append(s.ovl, make([]*wtpg.Overlay, nw-len(s.ovl))...)
	}
	if err := s.graph.BuildEvalBase(s.w0, &s.base); err != nil {
		// A cyclic base graph is impossible after consistent grants, but the
		// sequential path would evaluate E(q) to +Inf; mirror it.
		s.record(t, Delay, nil, math.Inf(1), true, nil, "")
		return Outcome{Decision: Delay, CPU: cpu}
	}
	s.lane.Run((*lowEvalRun)(s), len(s.evalTxns), s.p.DecisionWorkers)
	if testCorruptEvalOrder != nil {
		testCorruptEvalOrder(s.evalRes)
	}
	eq := s.evalRes[0]
	if math.IsInf(eq, 1) {
		s.record(t, Delay, nil, eq, true, nil, "")
		return Outcome{Decision: Delay, CPU: cpu}
	}
	var cands []int64
	var eps []float64
	for i, u := range confs {
		cpu += s.p.KWTPGTime
		ep := s.evalRes[i+1]
		if s.audit != nil {
			cands = append(cands, u.ID)
			eps = append(eps, ep)
		}
		if eq > ep {
			s.record(t, Delay, cands, eq, true, eps, "E(q) > E(p)")
			return Outcome{Decision: Delay, CPU: cpu}
		}
	}
	if err := s.graph.Grant(t, st.File, st.LockMode); err != nil {
		s.record(t, Delay, cands, eq, true, eps, err.Error())
		return Outcome{Decision: Delay, CPU: cpu}
	}
	s.locks.Grant(t.ID, st.File, st.LockMode)
	s.record(t, Grant, cands, eq, true, eps, "")
	return Outcome{Decision: Grant, CPU: cpu}
}

func (s *low) Validate(*model.Txn) (bool, sim.Time) { return true, 0 }

func (s *low) Committed(t *model.Txn) {
	s.graph.Remove(t.ID)
	s.locks.ReleaseAll(t.ID)
	clear(s.screen) // removals invalidate cached monotone rejections
}

// Aborted removes the transaction's WTPG node (its precedence edges go with
// it) and releases its locks. LOW itself never aborts a transaction; this
// is the fault-induced rollback path.
func (s *low) Aborted(t *model.Txn) {
	s.graph.Remove(t.ID)
	s.locks.ReleaseAll(t.ID)
	clear(s.screen) // removals invalidate cached monotone rejections
}

// Locks exposes the lock table for invariant checks in tests.
func (s *low) Locks() *lock.Table { return s.locks }

// Graph exposes the WTPG for invariant checks in tests.
func (s *low) Graph() *wtpg.Graph { return s.graph }
