// Package sched implements the six concurrency-control schedulers the paper
// evaluates:
//
//   - NODC  — no data contention: every lock granted (performance upper bound)
//   - ASL   — atomic static locking (conservative two-phase locking)
//   - C2PL  — cautious two-phase locking with WTPG-based deadlock prediction
//   - C2PL+M — C2PL with a multiprogramming-level admission limit
//   - OPT   — optimistic locking with commit-time backward validation
//   - GOW   — Globally-Optimized WTPG scheduler (chain-form constraint)
//   - LOW   — Locally-Optimized WTPG scheduler (K-conflict constraint)
//
// A scheduler makes three kinds of decisions for the control node: whether
// an arriving transaction may start (Admit), what to do with a lock request
// (Request), and whether a finishing transaction may commit (Validate —
// always true except for OPT). Every decision reports the control-node CPU
// time it consumed, using the paper's Table-1 cost parameters.
package sched

import (
	"fmt"

	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/sim"
)

// Decision is the outcome of a lock request (paper Figs. 4 and 7).
type Decision int

const (
	// Grant: the lock is granted; the step may execute.
	Grant Decision = iota
	// Block: the request conflicts with a currently held lock; wait for the
	// holder to release (Phase 1 of GOW/LOW, plain blocking in C2PL).
	Block
	// Delay: the scheduler's policy refuses the request for now; resubmit
	// after the next scheduling event.
	Delay
	// Abort: the transaction must roll back and restart (OPT only).
	Abort
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Grant:
		return "grant"
	case Block:
		return "block"
	case Delay:
		return "delay"
	case Abort:
		return "abort"
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// Outcome is a decision plus the control-node CPU time spent reaching it.
type Outcome struct {
	Decision Decision
	CPU      sim.Time
}

// Scheduler is the concurrency-control policy consulted by the control node.
// Implementations are single-threaded (one per simulation run).
type Scheduler interface {
	// Name returns the paper's name for the scheduler.
	Name() string
	// Admit decides whether transaction t may start now. ok=false leaves t
	// pending; the control node retries on the next scheduling event. The
	// returned CPU is charged to the control node either way.
	Admit(t *model.Txn) (ok bool, cpu sim.Time)
	// Request processes t's lock request for its current step.
	Request(t *model.Txn) Outcome
	// Validate is consulted at commit point; ok=false means the transaction
	// must abort and restart (OPT certification failure).
	Validate(t *model.Txn) (ok bool, cpu sim.Time)
	// Committed tells the scheduler t has committed; locks are released and
	// bookkeeping dropped.
	Committed(t *model.Txn)
	// Aborted tells the scheduler t rolled back (after a failed Validate).
	Aborted(t *model.Txn)
}

// Audited is implemented by schedulers that can explain their lock-request
// decisions (GOW and LOW). The machine injects the observability layer's
// decision log when observation is enabled; with a nil *obs.Audit (or when
// SetAudit is never called) recording stays off and Request is unchanged.
type Audited interface {
	SetAudit(*obs.Audit)
}

// Params carries the concurrency-control cost and policy parameters
// (paper Table 1).
type Params struct {
	// DDTime is the CPU time of one deadlock-prediction test in C2PL.
	DDTime sim.Time
	// KWTPGTime is the CPU time of one E(q) evaluation in LOW.
	KWTPGTime sim.Time
	// ChainTime is the CPU time of computing the optimized serializable
	// order in GOW.
	ChainTime sim.Time
	// TopTime is the CPU time of GOW's chain-form admission test.
	TopTime sim.Time
	// K bounds the size of a conflicting-declaration set in LOW.
	K int
	// MPL is the admission limit of C2PL+M; 0 means unlimited.
	MPL int
	// GOWGreedy is an ablation knob: skip GOW's Phase-2 global optimization
	// and grant any request whose implied orientations are merely
	// non-contradictory (first-come orientation instead of the optimal W).
	GOWGreedy bool
	// DecisionWorkers fans GOW/LOW candidate scoring out over the backend's
	// worker pool (DESIGN.md §17). 0 or 1 keeps the sequential decision
	// path; any value yields byte-identical decisions, CPU charges and audit
	// streams — parallelism only changes wall-clock time. Takes effect only
	// when the backend injects a pool lane (machine/engine-live do when the
	// value is > 1).
	DecisionWorkers int
}

// DefaultParams returns the values of the paper's Table 1 (K = 2 as used in
// all experiments; MPL unlimited).
func DefaultParams() Params {
	return Params{
		DDTime:    1 * sim.Millisecond,
		KWTPGTime: 10 * sim.Millisecond,
		ChainTime: 30 * sim.Millisecond,
		TopTime:   5 * sim.Millisecond,
		K:         2,
	}
}

// Names lists the scheduler names accepted by New: the paper's six (in the
// paper's order) plus the traditional strict-2PL baseline ("2PL") the
// paper's introduction dismisses.
var Names = []string{"NODC", "ASL", "GOW", "LOW", "C2PL", "C2PL+M", "OPT", "2PL", "LOW-LB"}

// New builds a scheduler by its paper name. "C2PL+M" uses p.MPL as its
// admission limit (a value of 0 makes it plain C2PL).
func New(name string, p Params) (Scheduler, error) {
	switch name {
	case "NODC":
		return NewNODC(), nil
	case "ASL":
		return NewASL(), nil
	case "C2PL":
		return NewC2PL(p), nil
	case "C2PL+M":
		return NewC2PLM(p, p.MPL), nil
	case "OPT":
		return NewOPT(), nil
	case "2PL":
		return NewS2PL(p), nil
	case "GOW":
		return NewGOW(p), nil
	case "LOW":
		return NewLOW(p), nil
	case "LOW-LB":
		return NewLOWLB(p), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (want one of %v)", name, Names)
	}
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(name string, p Params) Scheduler {
	s, err := New(name, p)
	if err != nil {
		panic(err)
	}
	return s
}
