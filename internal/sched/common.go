package sched

import (
	"fmt"

	"batchsched/internal/lock"
	"batchsched/internal/model"
	"batchsched/internal/wtpg"
)

// holdsSufficient reports whether t already holds a lock on its current
// step's file strong enough for the step's mode, in which case the request
// is trivially granted (locks are held to commit, so a later step on the
// same file needs no new decision).
func holdsSufficient(locks *lock.Table, t *model.Txn) bool {
	st := t.CurrentStep()
	held, ok := locks.Holds(t.ID, st.File)
	return ok && (held == model.X || st.LockMode == model.S)
}

// seedHolderOrder records, for a freshly admitted transaction t, the
// serialization orders already implied by the lock table: every current
// holder h of a file whose held mode conflicts with t's declared need on
// that file must precede t. Without this, a grant made before t arrived
// would be invisible to the WTPG and the deadlock prediction of C2PL, GOW
// and LOW would have blind spots.
//
// The orientations all point into the fresh sink t, so they can never close
// a cycle; a failure here is a programming error and panics.
func seedHolderOrder(g *wtpg.Graph, locks *lock.Table, t *model.Txn) {
	files, modes := t.LockNeedSorted()
	var pairs [][2]int64
	for i, f := range files {
		for _, h := range locks.Holders(f) {
			if h == t.ID || !g.Has(h) {
				continue
			}
			hm, _ := locks.Holds(h, f)
			if !hm.Compatible(modes[i]) {
				pairs = append(pairs, [2]int64{h, t.ID})
			}
		}
	}
	if err := g.OrientAll(pairs); err != nil {
		panic(fmt.Sprintf("sched: seeding holder order for T%d failed: %v", t.ID, err))
	}
}

// conflictersOn lists the active transactions (in the graph) other than t
// whose declared need on file f is incompatible with mode m — the set C(q)
// of the paper's Fig. 7, in deterministic (insertion) order.
func conflictersOn(g *wtpg.Graph, t *model.Txn, f model.FileID, m model.Mode) []*model.Txn {
	var out []*model.Txn
	for _, u := range g.Txns() {
		if u.ID == t.ID {
			continue
		}
		um, ok := u.LockNeed()[f]
		if ok && !um.Compatible(m) {
			out = append(out, u)
		}
	}
	return out
}
