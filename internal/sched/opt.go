package sched

import (
	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// opt is Optimistic Locking (Kung-Robinson): transactions execute without
// any locks; at commit point the scheduler certifies serializability by
// backward validation — the transaction aborts and restarts if any
// transaction that committed during its execution wrote a file in its
// read-or-write set. All the I/O of an aborted attempt is wasted, which is
// what makes OPT saturate resources under high data contention.
type opt struct {
	clock     int64 // logical validation clock (ticks on every commit)
	startedAt map[int64]int64
	history   []optCommit
}

type optCommit struct {
	at     int64
	writes map[model.FileID]bool
}

// NewOPT returns an optimistic scheduler.
func NewOPT() Scheduler {
	return &opt{startedAt: make(map[int64]int64)}
}

func (s *opt) Name() string { return "OPT" }

// Admit always starts the transaction, stamping the attempt's start time.
// Restarted transactions are re-admitted, getting a fresh stamp.
func (s *opt) Admit(t *model.Txn) (bool, sim.Time) {
	s.startedAt[t.ID] = s.clock
	return true, 0
}

func (s *opt) Request(*model.Txn) Outcome { return Outcome{Decision: Grant} }

// Validate performs backward validation against the transactions that
// committed after this attempt started.
func (s *opt) Validate(t *model.Txn) (bool, sim.Time) {
	start, ok := s.startedAt[t.ID]
	if !ok {
		panic("sched: OPT validating a transaction that never started")
	}
	rs, ws := t.ReadSet(), t.WriteSet()
	for _, c := range s.history {
		if c.at <= start {
			continue
		}
		for f := range c.writes {
			if rs[f] || ws[f] {
				return false, 0
			}
		}
	}
	return true, 0
}

func (s *opt) Committed(t *model.Txn) {
	s.clock++
	s.history = append(s.history, optCommit{at: s.clock, writes: t.WriteSet()})
	delete(s.startedAt, t.ID)
	s.prune()
}

// Aborted drops the attempt stamp; the control node re-admits the
// transaction, which re-stamps it.
func (s *opt) Aborted(t *model.Txn) {
	delete(s.startedAt, t.ID)
}

// prune discards commit records no running attempt can conflict with.
func (s *opt) prune() {
	oldest := s.clock
	for _, at := range s.startedAt {
		if at < oldest {
			oldest = at
		}
	}
	keep := s.history[:0]
	for _, c := range s.history {
		if c.at > oldest {
			keep = append(keep, c)
		}
	}
	s.history = keep
}
