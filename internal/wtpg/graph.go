// Package wtpg implements the Weighted Transaction-Precedence Graph of
// Ohmori et al. (ICDE 1990/1991), the estimation tool behind the GOW and LOW
// batch schedulers.
//
// A WTPG holds one node per active transaction plus the virtual initial
// transaction T0 (and final transaction Tf, whose edges all weigh zero and
// are therefore implicit). Two transactions whose access declarations
// conflict on some file are joined by a conflict edge; once their
// serialization order is determined the edge becomes a precedence edge. Each
// direction of an edge carries a weight: the declared I/O demand (in
// objects) the successor must still pay from its blocked step to its commit,
// assuming the predecessor has just committed. T0's edge to each transaction
// weighs that transaction's remaining declared demand and is the only weight
// that changes as the schedule proceeds.
//
// The graph is evaluated on every lock request, so its representation is
// built for that hot path: transactions map to dense small-integer slots,
// adjacency is a sorted slice per slot, and reachability over precedence
// edges is a []uint64 bitset row per slot maintained incrementally as edges
// are oriented. Speculative evaluation (LOW's E(q)) applies orientations to
// the live graph under an undo log and rolls them back, instead of deep
// copying the graph per candidate.
package wtpg

import (
	"fmt"
	"math"
	"sort"

	"batchsched/internal/model"
)

// Dir is the orientation state of an edge.
type Dir int

const (
	// Undetermined: still a conflict edge (no serialization order chosen).
	Undetermined Dir = iota
	// AToB: the lower-ID endpoint precedes the higher-ID endpoint.
	AToB
	// BToA: the higher-ID endpoint precedes the lower-ID endpoint.
	BToA
)

// ErrDeadlock is returned when an orientation would close a precedence cycle
// (or contradict an existing precedence edge), i.e. when granting the
// request under evaluation would deadlock the schedule.
var ErrDeadlock = fmt.Errorf("wtpg: orientation closes a precedence cycle")

type edge struct {
	a, b   int64   // a < b (transaction IDs)
	sa, sb int     // slots of a and b while both are in the graph
	eid    int     // dense edge ID while in the graph (overlay patch index)
	wAB    float64 // weight when oriented a->b: b's remaining demand from its blocked step
	wBA    float64 // weight when oriented b->a
	files  []model.FileID
	dir    Dir
}

func (e *edge) conflictsOn(f model.FileID) bool {
	for _, x := range e.files {
		if x == f {
			return true
		}
	}
	return false
}

func (e *edge) other(id int64) int64 {
	if id == e.a {
		return e.b
	}
	return e.a
}

// oriented returns (from, to, weight) for a determined edge.
func (e *edge) oriented() (int64, int64, float64) {
	if e.dir == AToB {
		return e.a, e.b, e.wAB
	}
	return e.b, e.a, e.wBA
}

func pairKey(x, y int64) (int64, int64) {
	if x < y {
		return x, y
	}
	return y, x
}

// savedRow is one copy-on-write reachability row in the undo log.
type savedRow struct {
	slot int
	row  []uint64
}

// Graph is a WTPG over the currently active transactions. It is not safe for
// concurrent use; each simulation run owns its graphs exclusively.
type Graph struct {
	txns  map[int64]*model.Txn
	slots map[int64]int // txn id -> slot
	ids   []int64       // slot -> txn id (valid while live[slot])
	txnAt []*model.Txn  // slot -> transaction (nil when not live)
	live  []bool
	freed []int
	order []int64 // insertion order, for deterministic iteration

	// nbrs[s] holds the edges incident to slot s, sorted ascending by the
	// other endpoint's transaction ID, so per-request iteration needs no
	// sort and pair lookup is a binary search.
	nbrs [][]*edge

	// reach[s] is a bitset over slots: bit t set iff a non-empty directed
	// path of precedence edges runs from slot s to slot t. Maintained
	// incrementally by orientEdge; rebuilt per affected row on Remove.
	reach [][]uint64
	words int // words per reachability row

	// edges caches edgeSet() (each edge once, sorted by (a, b)); dirs may
	// change without invalidating it, only Add/Remove set edgesDirty.
	edges      []*edge
	edgesDirty bool

	// Dense edge IDs index the per-worker direction patches of overlay
	// evaluation (overlay.go). Freed IDs are recycled so patches stay small.
	freeEIDs []int
	eidCap   int

	// Undo log for speculative orientation (begin/rollback/commit).
	specActive bool
	logEdges   []*edge
	logRows    []savedRow
	logNRows   int
	rowGen     []int64 // per-slot generation of the last saved row
	gen        int64

	// Scratch buffers reused across calls (valid only within one call).
	indeg   []int
	best    []float64
	queue   []int
	stack   []int
	visited []bool
	mark    []bool
	comp    []int // path-ordered component slots
	cs      chainScratch
	pp      planParallel // parallel chain-orientation state (chain_parallel.go)
}

// New returns an empty WTPG.
func New() *Graph {
	return &Graph{
		txns:  make(map[int64]*model.Txn),
		slots: make(map[int64]int),
	}
}

// Len returns the number of (general) transactions in the graph.
func (g *Graph) Len() int { return len(g.txns) }

// Has reports whether the transaction is in the graph.
func (g *Graph) Has(id int64) bool { _, ok := g.txns[id]; return ok }

// Txn returns the transaction with the given id, or nil.
func (g *Graph) Txn(id int64) *model.Txn { return g.txns[id] }

// Txns returns the transactions in insertion order.
func (g *Graph) Txns() []*model.Txn {
	out := make([]*model.Txn, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.txns[id])
	}
	return out
}

func bitGet(row []uint64, i int) bool { return row[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitPut(row []uint64, i int)      { row[i>>6] |= 1 << (uint(i) & 63) }

// allocSlot assigns a dense slot to a new transaction, reusing freed slots
// and growing the per-row word count only when the slot space expands past a
// 64-slot boundary.
func (g *Graph) allocSlot(id int64) int {
	var s int
	if n := len(g.freed); n > 0 {
		s = g.freed[n-1]
		g.freed = g.freed[:n-1]
	} else {
		s = len(g.ids)
		g.ids = append(g.ids, 0)
		g.txnAt = append(g.txnAt, nil)
		g.live = append(g.live, false)
		g.nbrs = append(g.nbrs, nil)
		g.reach = append(g.reach, nil)
		g.rowGen = append(g.rowGen, 0)
		if need := (len(g.ids) + 63) / 64; need > g.words {
			g.words = need
			for i := range g.reach {
				for len(g.reach[i]) < g.words {
					g.reach[i] = append(g.reach[i], 0)
				}
			}
		}
	}
	g.ids[s] = id
	g.live[s] = true
	g.slots[id] = s
	row := g.reach[s]
	if cap(row) < g.words {
		row = make([]uint64, g.words)
	} else {
		row = row[:g.words]
		for i := range row {
			row[i] = 0
		}
	}
	g.reach[s] = row
	return s
}

// allocEID assigns a dense edge ID, reusing freed ones.
func (g *Graph) allocEID() int {
	if n := len(g.freeEIDs); n > 0 {
		id := g.freeEIDs[n-1]
		g.freeEIDs = g.freeEIDs[:n-1]
		return id
	}
	id := g.eidCap
	g.eidCap++
	return id
}

// insertNeighbor places e into slot s's adjacency keeping it sorted by the
// other endpoint's ID.
func (g *Graph) insertNeighbor(s int, other int64, e *edge) {
	lst := g.nbrs[s]
	self := g.ids[s]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].other(self) >= other })
	lst = append(lst, nil)
	copy(lst[i+1:], lst[i:])
	lst[i] = e
	g.nbrs[s] = lst
}

func (g *Graph) removeNeighbor(s int, other int64) {
	lst := g.nbrs[s]
	self := g.ids[s]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].other(self) >= other })
	if i < len(lst) && lst[i].other(self) == other {
		copy(lst[i:], lst[i+1:])
		lst[len(lst)-1] = nil
		g.nbrs[s] = lst[:len(lst)-1]
	}
}

// Add inserts a transaction, creating a conflict edge (with both directional
// weights from the access declarations) to every already-present transaction
// it conflicts with. Adding an existing id panics: it is always a scheduler
// bug.
func (g *Graph) Add(t *model.Txn) {
	if g.specActive {
		panic("wtpg: Add during speculative evaluation")
	}
	if g.Has(t.ID) {
		panic(fmt.Sprintf("wtpg: transaction %d already present", t.ID))
	}
	s := g.allocSlot(t.ID)
	g.txns[t.ID] = t
	g.txnAt[s] = t
	g.order = append(g.order, t.ID)
	for _, id := range g.order[:len(g.order)-1] {
		u := g.txns[id]
		files := conflictFiles(t, u)
		if len(files) == 0 {
			continue
		}
		a, b := pairKey(t.ID, u.ID)
		ta, tb := g.txns[a], g.txns[b]
		wAB, _ := model.ConflictWeight(tb, ta) // b blocked by a
		wBA, _ := model.ConflictWeight(ta, tb)
		e := &edge{a: a, b: b, sa: g.slots[a], sb: g.slots[b], eid: g.allocEID(),
			wAB: wAB, wBA: wBA, files: files}
		g.insertNeighbor(s, u.ID, e)
		g.insertNeighbor(g.slots[u.ID], t.ID, e)
		g.edgesDirty = true
	}
}

// declConflict reports whether the declared needs of x and y request
// incompatible modes on at least one common file. A merge over the sorted
// need lists: no allocation, no map iteration.
func declConflict(x, y *model.Txn) bool {
	fx, mx := x.LockNeedSorted()
	fy, my := y.LockNeedSorted()
	i, j := 0, 0
	for i < len(fx) && j < len(fy) {
		switch {
		case fx[i] < fy[j]:
			i++
		case fx[i] > fy[j]:
			j++
		default:
			if !mx[i].Compatible(my[j]) {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// conflictFiles lists the files on which the declared needs of x and y
// request incompatible lock modes, in ascending order.
func conflictFiles(x, y *model.Txn) []model.FileID {
	fx, mx := x.LockNeedSorted()
	fy, my := y.LockNeedSorted()
	var out []model.FileID
	i, j := 0, 0
	for i < len(fx) && j < len(fy) {
		switch {
		case fx[i] < fy[j]:
			i++
		case fx[i] > fy[j]:
			j++
		default:
			if !mx[i].Compatible(my[j]) {
				out = append(out, fx[i])
			}
			i++
			j++
		}
	}
	return out
}

// Remove deletes a transaction (typically on commit) together with all of
// its edges. Removing an absent id is a no-op. Reachability rows that ran
// through the removed node are rebuilt; all others are untouched.
func (g *Graph) Remove(id int64) {
	if g.specActive {
		panic("wtpg: Remove during speculative evaluation")
	}
	s, ok := g.slots[id]
	if !ok {
		return
	}
	hadDetermined := false
	for _, e := range g.nbrs[s] {
		if e.dir != Undetermined {
			hadDetermined = true
		}
		g.freeEIDs = append(g.freeEIDs, e.eid)
		os := e.sa
		if os == s {
			os = e.sb
		}
		g.removeNeighbor(os, id)
	}
	if len(g.nbrs[s]) > 0 {
		g.edgesDirty = true
	}
	lst := g.nbrs[s]
	for i := range lst {
		lst[i] = nil
	}
	g.nbrs[s] = lst[:0]
	delete(g.slots, id)
	delete(g.txns, id)
	g.txnAt[s] = nil
	g.live[s] = false
	g.freed = append(g.freed, s)
	for i, x := range g.order {
		if x == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	row := g.reach[s]
	for i := range row {
		row[i] = 0
	}
	if hadDetermined {
		// Every row that reached s (paths through s imply reaching s itself)
		// is stale; recompute just those.
		for x, lv := range g.live {
			if lv && bitGet(g.reach[x], s) {
				g.recomputeRow(x)
			}
		}
	}
}

// recomputeRow rebuilds reach[s] by a DFS over the current precedence edges.
func (g *Graph) recomputeRow(s int) {
	row := g.reach[s]
	for i := range row {
		row[i] = 0
	}
	g.stack = g.stack[:0]
	g.pushSuccessors(s)
	for len(g.stack) > 0 {
		v := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		if bitGet(row, v) {
			continue
		}
		bitPut(row, v)
		g.pushSuccessors(v)
	}
}

// pushSuccessors pushes the precedence successors of slot s onto the scratch
// stack.
func (g *Graph) pushSuccessors(s int) {
	for _, e := range g.nbrs[s] {
		switch e.dir {
		case AToB:
			if e.sa == s {
				g.stack = append(g.stack, e.sb)
			}
		case BToA:
			if e.sb == s {
				g.stack = append(g.stack, e.sa)
			}
		}
	}
}

// Clone returns a deep copy of the graph sharing the (immutable) transaction
// declarations. Retained for tests and offline tools; the hot path
// (Evaluate) speculates on the live graph instead.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, id := range g.order {
		s := c.allocSlot(id)
		c.txns[id] = g.txns[id]
		c.txnAt[s] = g.txns[id]
		c.order = append(c.order, id)
	}
	for _, e := range g.edgeSet() {
		ce := &edge{a: e.a, b: e.b, sa: c.slots[e.a], sb: c.slots[e.b],
			eid: c.allocEID(), wAB: e.wAB, wBA: e.wBA, dir: e.dir,
			files: append([]model.FileID(nil), e.files...)}
		c.insertNeighbor(ce.sa, e.b, ce)
		c.insertNeighbor(ce.sb, e.a, ce)
	}
	c.edgesDirty = true
	for s, lv := range c.live {
		if lv {
			c.recomputeRow(s)
		}
	}
	return c
}

// EdgeDir returns the orientation state of the edge between x and y, and
// whether such an edge exists.
func (g *Graph) EdgeDir(x, y int64) (from, to int64, dir Dir, ok bool) {
	e, ok2 := g.edgeBetween(x, y)
	if !ok2 {
		return 0, 0, Undetermined, false
	}
	switch e.dir {
	case AToB:
		return e.a, e.b, e.dir, true
	case BToA:
		return e.b, e.a, e.dir, true
	default:
		return 0, 0, Undetermined, true
	}
}

// EdgeWeight returns the weight the edge between from and to would carry
// when oriented from->to, and whether the pair is joined at all.
func (g *Graph) EdgeWeight(from, to int64) (float64, bool) {
	e, ok := g.edgeBetween(from, to)
	if !ok {
		return 0, false
	}
	if from == e.a {
		return e.wAB, true
	}
	return e.wBA, true
}

func (g *Graph) edgeBetween(x, y int64) (*edge, bool) {
	s, ok := g.slots[x]
	if !ok {
		return nil, false
	}
	lst := g.nbrs[s]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].other(x) >= y })
	if i < len(lst) && lst[i].other(x) == y {
		return lst[i], true
	}
	return nil, false
}

// begin opens an undo scope for speculative orientation. Scopes do not nest.
func (g *Graph) begin() {
	if g.specActive {
		panic("wtpg: nested speculative evaluation")
	}
	g.specActive = true
	g.gen++
	g.logEdges = g.logEdges[:0]
	g.logNRows = 0
}

// saveRow records reach[s] in the undo log once per scope (copy-on-write).
func (g *Graph) saveRow(s int) {
	if g.rowGen[s] == g.gen {
		return
	}
	g.rowGen[s] = g.gen
	if g.logNRows < len(g.logRows) {
		sr := &g.logRows[g.logNRows]
		sr.slot = s
		sr.row = append(sr.row[:0], g.reach[s]...)
	} else {
		g.logRows = append(g.logRows, savedRow{slot: s, row: append([]uint64(nil), g.reach[s]...)})
	}
	g.logNRows++
}

// rollback undoes every orientation and reachability change of the current
// scope and closes it.
func (g *Graph) rollback() {
	for _, e := range g.logEdges {
		e.dir = Undetermined // scopes only ever determine undetermined edges
	}
	for i := 0; i < g.logNRows; i++ {
		sr := &g.logRows[i]
		copy(g.reach[sr.slot], sr.row)
	}
	g.specActive = false
}

// commit keeps the scope's changes and closes it.
func (g *Graph) commit() { g.specActive = false }

// orientEdge fixes e in direction want and updates the reachability bitsets
// incrementally: every row that reaches the new predecessor (plus the
// predecessor itself) absorbs the successor's row. It refuses with
// ErrDeadlock — before mutating anything — when the successor already
// reaches the predecessor. Must run inside a begin scope.
func (g *Graph) orientEdge(e *edge, want Dir) error {
	sf, st := e.sa, e.sb
	if want == BToA {
		sf, st = e.sb, e.sa
	}
	if bitGet(g.reach[st], sf) {
		return ErrDeadlock // to already reaches from: a cycle would close
	}
	g.logEdges = append(g.logEdges, e)
	e.dir = want
	tr := g.reach[st]
	for x, lv := range g.live {
		if !lv {
			continue
		}
		if x != sf && !bitGet(g.reach[x], sf) {
			continue
		}
		row := g.reach[x]
		changed := !bitGet(row, st)
		if !changed {
			for w, bits := range tr {
				if bits&^row[w] != 0 {
					changed = true
					break
				}
			}
		}
		if !changed {
			continue
		}
		g.saveRow(x)
		row = g.reach[x]
		for w, bits := range tr {
			row[w] |= bits
		}
		bitPut(row, st)
	}
	return nil
}

// Orient fixes the serialization order from->to on the (existing) edge
// between the two transactions and propagates the transitive closure of
// Section 3.3 (a directed path forces the orientation of any conflict edge
// between its endpoints). It returns ErrDeadlock — leaving the graph
// unchanged — when the orientation contradicts an existing precedence edge
// or closes a cycle.
func (g *Graph) Orient(from, to int64) error {
	return g.OrientAll([][2]int64{{from, to}})
}

// OrientAll applies a batch of orientations atomically (all or none),
// running closure once at the end.
func (g *Graph) OrientAll(pairs [][2]int64) error {
	g.begin()
	if err := g.applyOrientations(pairs); err != nil {
		g.rollback()
		return err
	}
	g.commit()
	return nil
}

// applyOrientations orients the requested pairs and closes the graph under
// the Section-3.3 rule inside the current undo scope. On error the caller
// must roll the scope back.
func (g *Graph) applyOrientations(pairs [][2]int64) error {
	for _, p := range pairs {
		e, ok := g.edgeBetween(p[0], p[1])
		if !ok {
			return fmt.Errorf("wtpg: no edge between %d and %d", p[0], p[1])
		}
		want := AToB
		if p[0] == e.b {
			want = BToA
		}
		if e.dir == want {
			continue
		}
		if e.dir != Undetermined {
			return ErrDeadlock
		}
		if err := g.orientEdge(e, want); err != nil {
			return err
		}
	}
	// Closure to fixpoint: any undetermined edge whose endpoints are joined
	// by a directed path must follow that path's direction; both directions
	// reachable means a deadlock. Each pass is a pair of O(1) bit probes per
	// edge against the incrementally maintained rows.
	for {
		changed := false
		for _, e := range g.edgeSet() {
			if e.dir != Undetermined {
				continue
			}
			ab := bitGet(g.reach[e.sa], e.sb)
			ba := bitGet(g.reach[e.sb], e.sa)
			switch {
			case ab && ba:
				return ErrDeadlock
			case ab:
				if err := g.orientEdge(e, AToB); err != nil {
					return err
				}
				changed = true
			case ba:
				if err := g.orientEdge(e, BToA); err != nil {
					return err
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// edgeSet returns each edge exactly once, sorted by (a, b). The slice is
// cached; Add/Remove invalidate it (orientation changes do not). Callers
// must not modify or retain it across mutations.
func (g *Graph) edgeSet() []*edge {
	if !g.edgesDirty {
		return g.edges
	}
	g.edges = g.edges[:0]
	for _, id := range g.order {
		for _, e := range g.nbrs[g.slots[id]] {
			if e.a == id { // emit from the low endpoint only
				g.edges = append(g.edges, e)
			}
		}
	}
	sortEdges(g.edges)
	g.edgesDirty = false
	return g.edges
}

// sortEdges orders edges by (a, b) with a reflection-free insertion sort.
// Transaction IDs are assigned monotonically, so the emission order of
// edgeSet is already sorted in practice and the loop is a single pass.
func sortEdges(es []*edge) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && (es[j].a > e.a || (es[j].a == e.a && es[j].b > e.b)) {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// GrantOrientations lists the serialization orders that granting transaction
// t a lock of mode m on file f would newly determine: t precedes every other
// active transaction whose declared need on f is incompatible with m. The
// second return is ErrDeadlock when some such pair is already determined the
// other way (the grant would violate the existing order).
func (g *Graph) GrantOrientations(t *model.Txn, f model.FileID, m model.Mode) ([][2]int64, error) {
	s, ok := g.slots[t.ID]
	if !ok {
		return nil, fmt.Errorf("wtpg: transaction %d not in graph", t.ID)
	}
	var out [][2]int64
	for _, e := range g.nbrs[s] { // sorted by the other endpoint's ID
		if !e.conflictsOn(f) {
			continue
		}
		us := e.sa
		if us == s {
			us = e.sb
		}
		uID := e.other(t.ID)
		um, ok := g.txnAt[us].NeedMode(f)
		if !ok || um.Compatible(m) {
			continue
		}
		switch e.dir {
		case Undetermined:
			out = append(out, [2]int64{t.ID, uID})
		case AToB:
			if e.a != t.ID {
				return nil, ErrDeadlock
			}
		case BToA:
			if e.b != t.ID {
				return nil, ErrDeadlock
			}
		}
	}
	return out, nil
}

// Grant applies the orientations implied by granting t a lock of mode m on
// file f (see GrantOrientations) plus their closure, atomically. On
// ErrDeadlock the graph is unchanged and the grant must not proceed.
func (g *Graph) Grant(t *model.Txn, f model.FileID, m model.Mode) error {
	pairs, err := g.GrantOrientations(t, f, m)
	if err != nil {
		return err
	}
	return g.OrientAll(pairs)
}

// T0Weight is the weight of the edge T0 -> t: t's remaining declared I/O
// demand at the current scheduling state.
type T0Weight func(t *model.Txn) float64

// RemainingDemand is the standard T0 weight: the sum of declared costs of
// the transaction's unfinished steps.
func RemainingDemand(t *model.Txn) float64 { return t.DeclaredRemaining(t.StepIndex) }

// CriticalPath returns the length of the longest path from T0 to Tf using
// precedence (determined) edges only; undetermined conflict edges are
// ignored, exactly as in Phase 2 of the E(q) evaluation. Every Ti->Tf edge
// weighs zero under the paper's cost model, so the answer is
//
//	max over v of [ max over directed paths u1->...->v of w0(u1) + Σ w ].
//
// It returns ErrDeadlock if the precedence edges contain a cycle (impossible
// after successful Orient/Grant calls, but checked defensively). It reads
// edge directions only, never the reachability index, so it is safe under a
// speculative scope and in tests that toggle directions directly.
func (g *Graph) CriticalPath(w0 T0Weight) (float64, error) {
	n := len(g.ids)
	if cap(g.indeg) < n {
		g.indeg = make([]int, n)
		g.best = make([]float64, n)
	}
	indeg := g.indeg[:n]
	best := g.best[:n]
	for _, e := range g.edgeSet() {
		if e.dir == Undetermined {
			continue
		}
		if e.dir == AToB {
			indeg[e.sb]++
		} else {
			indeg[e.sa]++
		}
	}
	queue := g.queue[:0]
	for s, lv := range g.live {
		if !lv {
			continue
		}
		best[s] = w0(g.txnAt[s])
		if indeg[s] == 0 {
			queue = append(queue, s)
		}
	}
	// Kahn topological order with forward longest-path relaxation.
	processed := 0
	var ans float64
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		processed++
		b := best[s]
		if b > ans {
			ans = b
		}
		for _, e := range g.nbrs[s] {
			var to int
			var w float64
			switch e.dir {
			case AToB:
				if e.sa != s {
					continue
				}
				to, w = e.sb, e.wAB
			case BToA:
				if e.sb != s {
					continue
				}
				to, w = e.sa, e.wBA
			default:
				continue
			}
			if v := b + w; v > best[to] {
				best[to] = v
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	g.queue = queue[:0]
	if processed != len(g.txns) {
		// Leave indeg zeroed for the next call before reporting the cycle.
		for i := range indeg {
			indeg[i] = 0
		}
		return math.Inf(1), ErrDeadlock
	}
	return ans, nil
}

// Evaluate computes the LOW estimation function E(q) of Fig. 5 for the
// request "transaction t asks mode m on file f": tentatively grant the
// request on the live graph under an undo scope (orienting the edges the
// grant determines, with closure), measure the critical path ignoring the
// remaining conflict edges, and roll the graph back to its prior state. A
// grant that would deadlock evaluates to +Inf.
func Evaluate(g *Graph, t *model.Txn, f model.FileID, m model.Mode, w0 T0Weight) float64 {
	pairs, err := g.GrantOrientations(t, f, m)
	if err != nil {
		return math.Inf(1)
	}
	g.begin()
	if err := g.applyOrientations(pairs); err != nil {
		g.rollback()
		return math.Inf(1)
	}
	v, err := g.CriticalPath(w0)
	g.rollback()
	if err != nil {
		return math.Inf(1)
	}
	return v
}
