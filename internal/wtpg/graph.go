// Package wtpg implements the Weighted Transaction-Precedence Graph of
// Ohmori et al. (ICDE 1990/1991), the estimation tool behind the GOW and LOW
// batch schedulers.
//
// A WTPG holds one node per active transaction plus the virtual initial
// transaction T0 (and final transaction Tf, whose edges all weigh zero and
// are therefore implicit). Two transactions whose access declarations
// conflict on some file are joined by a conflict edge; once their
// serialization order is determined the edge becomes a precedence edge. Each
// direction of an edge carries a weight: the declared I/O demand (in
// objects) the successor must still pay from its blocked step to its commit,
// assuming the predecessor has just committed. T0's edge to each transaction
// weighs that transaction's remaining declared demand and is the only weight
// that changes as the schedule proceeds.
package wtpg

import (
	"fmt"
	"math"
	"sort"

	"batchsched/internal/model"
)

// Dir is the orientation state of an edge.
type Dir int

const (
	// Undetermined: still a conflict edge (no serialization order chosen).
	Undetermined Dir = iota
	// AToB: the lower-ID endpoint precedes the higher-ID endpoint.
	AToB
	// BToA: the higher-ID endpoint precedes the lower-ID endpoint.
	BToA
)

// ErrDeadlock is returned when an orientation would close a precedence cycle
// (or contradict an existing precedence edge), i.e. when granting the
// request under evaluation would deadlock the schedule.
var ErrDeadlock = fmt.Errorf("wtpg: orientation closes a precedence cycle")

type edge struct {
	a, b  int64   // a < b
	wAB   float64 // weight when oriented a->b: b's remaining demand from its blocked step
	wBA   float64 // weight when oriented b->a
	files []model.FileID
	dir   Dir
}

func (e *edge) conflictsOn(f model.FileID) bool {
	for _, x := range e.files {
		if x == f {
			return true
		}
	}
	return false
}

func (e *edge) other(id int64) int64 {
	if id == e.a {
		return e.b
	}
	return e.a
}

// oriented returns (from, to, weight) for a determined edge.
func (e *edge) oriented() (int64, int64, float64) {
	if e.dir == AToB {
		return e.a, e.b, e.wAB
	}
	return e.b, e.a, e.wBA
}

func pairKey(x, y int64) (int64, int64) {
	if x < y {
		return x, y
	}
	return y, x
}

// Graph is a WTPG over the currently active transactions. It is not safe for
// concurrent use; each simulation run owns its graphs exclusively.
type Graph struct {
	txns  map[int64]*model.Txn
	adj   map[int64]map[int64]*edge
	order []int64 // insertion order, for deterministic iteration
}

// New returns an empty WTPG.
func New() *Graph {
	return &Graph{
		txns: make(map[int64]*model.Txn),
		adj:  make(map[int64]map[int64]*edge),
	}
}

// Len returns the number of (general) transactions in the graph.
func (g *Graph) Len() int { return len(g.txns) }

// Has reports whether the transaction is in the graph.
func (g *Graph) Has(id int64) bool { _, ok := g.txns[id]; return ok }

// Txn returns the transaction with the given id, or nil.
func (g *Graph) Txn(id int64) *model.Txn { return g.txns[id] }

// Txns returns the transactions in insertion order.
func (g *Graph) Txns() []*model.Txn {
	out := make([]*model.Txn, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.txns[id])
	}
	return out
}

// Add inserts a transaction, creating a conflict edge (with both directional
// weights from the access declarations) to every already-present transaction
// it conflicts with. Adding an existing id panics: it is always a scheduler
// bug.
func (g *Graph) Add(t *model.Txn) {
	if g.Has(t.ID) {
		panic(fmt.Sprintf("wtpg: transaction %d already present", t.ID))
	}
	g.txns[t.ID] = t
	g.adj[t.ID] = make(map[int64]*edge)
	g.order = append(g.order, t.ID)
	for _, id := range g.order[:len(g.order)-1] {
		u := g.txns[id]
		files := conflictFiles(t, u)
		if len(files) == 0 {
			continue
		}
		a, b := pairKey(t.ID, u.ID)
		ta, tb := g.txns[a], g.txns[b]
		wAB, _ := model.ConflictWeight(tb, ta) // b blocked by a
		wBA, _ := model.ConflictWeight(ta, tb)
		e := &edge{a: a, b: b, wAB: wAB, wBA: wBA, files: files}
		g.adj[t.ID][u.ID] = e
		g.adj[u.ID][t.ID] = e
	}
}

// declConflict reports whether the declared needs of x and y request
// incompatible modes on at least one common file, without allocating.
func declConflict(x, y *model.Txn) bool {
	nx, ny := x.LockNeed(), y.LockNeed()
	if len(ny) < len(nx) {
		nx, ny = ny, nx
	}
	for f, mx := range nx {
		if my, ok := ny[f]; ok && !mx.Compatible(my) {
			return true
		}
	}
	return false
}

// conflictFiles lists the files on which the declared needs of x and y
// request incompatible lock modes, in ascending order.
func conflictFiles(x, y *model.Txn) []model.FileID {
	nx, ny := x.LockNeed(), y.LockNeed()
	var out []model.FileID
	for f, mx := range nx {
		if my, ok := ny[f]; ok && !mx.Compatible(my) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Remove deletes a transaction (typically on commit) together with all of
// its edges. Removing an absent id is a no-op.
func (g *Graph) Remove(id int64) {
	if !g.Has(id) {
		return
	}
	for other := range g.adj[id] {
		delete(g.adj[other], id)
	}
	delete(g.adj, id)
	delete(g.txns, id)
	for i, x := range g.order {
		if x == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// Clone returns a deep copy of the graph sharing the (immutable) transaction
// declarations. Used for tentative evaluations such as LOW's E(q).
func (g *Graph) Clone() *Graph {
	c := New()
	c.order = append([]int64(nil), g.order...)
	for id, t := range g.txns {
		c.txns[id] = t
		c.adj[id] = make(map[int64]*edge, len(g.adj[id]))
	}
	seen := make(map[*edge]*edge)
	for id, nbrs := range g.adj {
		for other, e := range nbrs {
			ce, ok := seen[e]
			if !ok {
				cp := *e
				cp.files = append([]model.FileID(nil), e.files...)
				ce = &cp
				seen[e] = ce
			}
			c.adj[id][other] = ce
		}
	}
	return c
}

// EdgeDir returns the orientation state of the edge between x and y, and
// whether such an edge exists.
func (g *Graph) EdgeDir(x, y int64) (from, to int64, dir Dir, ok bool) {
	e, ok2 := g.edgeBetween(x, y)
	if !ok2 {
		return 0, 0, Undetermined, false
	}
	switch e.dir {
	case AToB:
		return e.a, e.b, e.dir, true
	case BToA:
		return e.b, e.a, e.dir, true
	default:
		return 0, 0, Undetermined, true
	}
}

// EdgeWeight returns the weight the edge between from and to would carry
// when oriented from->to, and whether the pair is joined at all.
func (g *Graph) EdgeWeight(from, to int64) (float64, bool) {
	e, ok := g.edgeBetween(from, to)
	if !ok {
		return 0, false
	}
	if from == e.a {
		return e.wAB, true
	}
	return e.wBA, true
}

func (g *Graph) edgeBetween(x, y int64) (*edge, bool) {
	nbrs, ok := g.adj[x]
	if !ok {
		return nil, false
	}
	e, ok := nbrs[y]
	return e, ok
}

// Orient fixes the serialization order from->to on the (existing) edge
// between the two transactions and propagates the transitive closure of
// Section 3.3 (a directed path forces the orientation of any conflict edge
// between its endpoints). It returns ErrDeadlock — leaving the graph
// unchanged — when the orientation contradicts an existing precedence edge
// or closes a cycle.
func (g *Graph) Orient(from, to int64) error {
	return g.OrientAll([][2]int64{{from, to}})
}

// OrientAll applies a batch of orientations atomically (all or none),
// running closure once at the end.
func (g *Graph) OrientAll(pairs [][2]int64) error {
	// Work on a private copy of the edge directions so failure leaves g
	// untouched.
	type change struct {
		e   *edge
		dir Dir
	}
	var staged []change
	dirOf := func(e *edge) Dir {
		for _, c := range staged {
			if c.e == e {
				return c.dir
			}
		}
		return e.dir
	}
	stage := func(from, to int64) error {
		e, ok := g.edgeBetween(from, to)
		if !ok {
			return fmt.Errorf("wtpg: no edge between %d and %d", from, to)
		}
		want := AToB
		if from == e.b {
			want = BToA
		}
		cur := dirOf(e)
		if cur == want {
			return nil
		}
		if cur != Undetermined {
			return ErrDeadlock
		}
		staged = append(staged, change{e, want})
		return nil
	}
	for _, p := range pairs {
		if err := stage(p[0], p[1]); err != nil {
			return err
		}
	}
	// Closure to fixpoint: any undetermined edge whose endpoints are joined
	// by a directed path must follow that path's direction; both directions
	// reachable means a deadlock.
	for {
		reach := g.reachability(dirOf)
		changed := false
		for _, e := range g.edgeSet() {
			if dirOf(e) != Undetermined {
				continue
			}
			ab := reach[e.a][e.b]
			ba := reach[e.b][e.a]
			switch {
			case ab && ba:
				return ErrDeadlock
			case ab:
				staged = append(staged, change{e, AToB})
				changed = true
			case ba:
				staged = append(staged, change{e, BToA})
				changed = true
			}
		}
		if !changed {
			// Final cycle check over determined edges.
			for id := range g.txns {
				if reach[id][id] {
					return ErrDeadlock
				}
			}
			break
		}
	}
	for _, c := range staged {
		c.e.dir = c.dir
	}
	return nil
}

// edgeSet returns each edge exactly once, in a deterministic order.
func (g *Graph) edgeSet() []*edge {
	var out []*edge
	for _, id := range g.order {
		for _, e := range g.adj[id] {
			if e.a == id { // emit from the low endpoint only
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		return out[i].b < out[j].b
	})
	return out
}

// reachability computes, under the staged directions, reach[x][y] = true iff
// a non-empty directed path x -> ... -> y exists.
func (g *Graph) reachability(dirOf func(*edge) Dir) map[int64]map[int64]bool {
	succ := make(map[int64][]int64, len(g.txns))
	for _, e := range g.edgeSet() {
		switch dirOf(e) {
		case AToB:
			succ[e.a] = append(succ[e.a], e.b)
		case BToA:
			succ[e.b] = append(succ[e.b], e.a)
		}
	}
	reach := make(map[int64]map[int64]bool, len(g.txns))
	for id := range g.txns {
		seen := make(map[int64]bool)
		stack := append([]int64(nil), succ[id]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			stack = append(stack, succ[v]...)
		}
		reach[id] = seen
	}
	return reach
}

// GrantOrientations lists the serialization orders that granting transaction
// t a lock of mode m on file f would newly determine: t precedes every other
// active transaction whose declared need on f is incompatible with m. The
// second return is ErrDeadlock when some such pair is already determined the
// other way (the grant would violate the existing order).
func (g *Graph) GrantOrientations(t *model.Txn, f model.FileID, m model.Mode) ([][2]int64, error) {
	if !g.Has(t.ID) {
		return nil, fmt.Errorf("wtpg: transaction %d not in graph", t.ID)
	}
	nbrs := make([]int64, 0, len(g.adj[t.ID]))
	for u := range g.adj[t.ID] {
		nbrs = append(nbrs, u)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	var out [][2]int64
	for _, uID := range nbrs {
		e := g.adj[t.ID][uID]
		if !e.conflictsOn(f) {
			continue
		}
		u := g.txns[uID]
		um, ok := u.LockNeed()[f]
		if !ok || um.Compatible(m) {
			continue
		}
		switch e.dir {
		case Undetermined:
			out = append(out, [2]int64{t.ID, uID})
		case AToB:
			if e.a != t.ID {
				return nil, ErrDeadlock
			}
		case BToA:
			if e.b != t.ID {
				return nil, ErrDeadlock
			}
		}
	}
	return out, nil
}

// Grant applies the orientations implied by granting t a lock of mode m on
// file f (see GrantOrientations) plus their closure, atomically. On
// ErrDeadlock the graph is unchanged and the grant must not proceed.
func (g *Graph) Grant(t *model.Txn, f model.FileID, m model.Mode) error {
	pairs, err := g.GrantOrientations(t, f, m)
	if err != nil {
		return err
	}
	return g.OrientAll(pairs)
}

// T0Weight is the weight of the edge T0 -> t: t's remaining declared I/O
// demand at the current scheduling state.
type T0Weight func(t *model.Txn) float64

// RemainingDemand is the standard T0 weight: the sum of declared costs of
// the transaction's unfinished steps.
func RemainingDemand(t *model.Txn) float64 { return t.DeclaredRemaining(t.StepIndex) }

// CriticalPath returns the length of the longest path from T0 to Tf using
// precedence (determined) edges only; undetermined conflict edges are
// ignored, exactly as in Phase 2 of the E(q) evaluation. Every Ti->Tf edge
// weighs zero under the paper's cost model, so the answer is
//
//	max over v of [ max over directed paths u1->...->v of w0(u1) + Σ w ].
//
// It returns ErrDeadlock if the precedence edges contain a cycle (impossible
// after successful Orient/Grant calls, but checked defensively).
func (g *Graph) CriticalPath(w0 T0Weight) (float64, error) {
	// Longest path over the precedence DAG via Kahn topological order.
	incoming := make(map[int64][]*edge)
	indeg := make(map[int64]int)
	for id := range g.txns {
		indeg[id] = 0
	}
	for _, e := range g.edgeSet() {
		if e.dir == Undetermined {
			continue
		}
		_, to, _ := e.oriented()
		incoming[to] = append(incoming[to], e)
		indeg[to]++
	}
	// Kahn topological order.
	var queue []int64
	for _, id := range g.order {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	best := make(map[int64]float64, len(g.txns))
	processed := 0
	outEdges := func(id int64) []*edge {
		var out []*edge
		for _, e := range g.adj[id] {
			if e.dir == Undetermined {
				continue
			}
			if from, _, _ := e.oriented(); from == id {
				out = append(out, e)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].other(id) < out[j].other(id) })
		return out
	}
	for i := 0; i < len(queue); i++ {
		id := queue[i]
		processed++
		b := w0(g.txns[id])
		for _, e := range incoming[id] {
			from, _, w := e.oriented()
			if v := best[from] + w; v > b {
				b = v
			}
		}
		best[id] = b
		for _, e := range outEdges(id) {
			_, to, _ := e.oriented()
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if processed != len(g.txns) {
		return math.Inf(1), ErrDeadlock
	}
	var ans float64
	for _, v := range best {
		if v > ans {
			ans = v
		}
	}
	return ans, nil
}

// Evaluate computes the LOW estimation function E(q) of Fig. 5 for the
// request "transaction t asks mode m on file f": tentatively grant the
// request in a copy of the graph (orienting the edges the grant determines,
// with closure), then return the critical path length ignoring the remaining
// conflict edges. A grant that would deadlock evaluates to +Inf.
func Evaluate(g *Graph, t *model.Txn, f model.FileID, m model.Mode, w0 T0Weight) float64 {
	c := g.Clone()
	if err := c.Grant(t, f, m); err != nil {
		return math.Inf(1)
	}
	v, err := c.CriticalPath(w0)
	if err != nil {
		return math.Inf(1)
	}
	return v
}
