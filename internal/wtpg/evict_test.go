package wtpg

import (
	"fmt"
	"math/rand"
	"testing"

	"batchsched/internal/model"
)

// The admission service evicts transactions mid-run, so the graph's slot
// recycling is no longer exercised only at commit: a slot freed by an evicted
// transaction is handed to the next admission while precedence state from the
// evictee's neighborhood is still live. These tests pin the invariant that
// Remove fully clears a slot — reachability row, adjacency, and the bits other
// rows held about it — before allocSlot may reuse it, by differencing the
// incrementally maintained graph against a from-scratch rebuild of the
// survivors.

// rebuildSurvivors constructs a fresh graph over g's surviving transactions in
// the same insertion order and replays exactly the orientations g currently
// holds. OrientAll failing means g's incremental state encodes an infeasible
// (cyclic) order — itself a corruption.
func rebuildSurvivors(t *testing.T, g *Graph) *Graph {
	t.Helper()
	fresh := New()
	for _, id := range g.order {
		fresh.Add(g.txns[id])
	}
	var pairs [][2]int64
	for _, e := range g.edgeSet() {
		if e.dir == Undetermined {
			continue
		}
		from, to, _ := e.oriented()
		pairs = append(pairs, [2]int64{from, to})
	}
	if err := fresh.OrientAll(pairs); err != nil {
		t.Fatalf("incremental orientations are infeasible on a fresh rebuild: %v", err)
	}
	return fresh
}

// edgeFact is the ID-keyed view of one edge, independent of slot assignment.
type edgeFact struct {
	dir      Dir
	wAB, wBA float64
	files    string
}

func edgeFacts(g *Graph) map[[2]int64]edgeFact {
	out := make(map[[2]int64]edgeFact, len(g.edgeSet()))
	for _, e := range g.edgeSet() {
		out[[2]int64{e.a, e.b}] = edgeFact{dir: e.dir, wAB: e.wAB, wBA: e.wBA, files: fmt.Sprint(e.files)}
	}
	return out
}

// reachFacts projects the slot-indexed bitset rows onto transaction IDs.
func reachFacts(g *Graph) map[[2]int64]bool {
	out := make(map[[2]int64]bool)
	for _, x := range g.order {
		row := g.reach[g.slots[x]]
		for _, y := range g.order {
			if x == y {
				continue
			}
			if bitGet(row, g.slots[y]) {
				out[[2]int64{x, y}] = true
			}
		}
	}
	return out
}

// checkSlotHygiene asserts the internal invariants slot reuse depends on:
// freed slots hold no adjacency, no transaction, and an all-zero reachability
// row; live rows never point at dead slots or at themselves; edge slot fields
// agree with the slot map.
func checkSlotHygiene(t *testing.T, g *Graph) {
	t.Helper()
	for _, s := range g.freed {
		if g.live[s] || g.txnAt[s] != nil {
			t.Fatalf("freed slot %d still live", s)
		}
		if len(g.nbrs[s]) != 0 {
			t.Fatalf("freed slot %d retains %d adjacency entries", s, len(g.nbrs[s]))
		}
		for w, bits := range g.reach[s] {
			if bits != 0 {
				t.Fatalf("freed slot %d retains reachability bits in word %d: %x", s, w, bits)
			}
		}
	}
	for s, lv := range g.live {
		if !lv {
			continue
		}
		if bitGet(g.reach[s], s) {
			t.Fatalf("slot %d (txn %d) reaches itself: cycle in precedence state", s, g.ids[s])
		}
		for x := range g.ids {
			if bitGet(g.reach[s], x) && !g.live[x] {
				t.Fatalf("slot %d (txn %d) reaches dead slot %d", s, g.ids[s], x)
			}
		}
		for _, e := range g.nbrs[s] {
			if e.sa != g.slots[e.a] || e.sb != g.slots[e.b] {
				t.Fatalf("edge (%d,%d) slot fields (%d,%d) disagree with slot map (%d,%d)",
					e.a, e.b, e.sa, e.sb, g.slots[e.a], g.slots[e.b])
			}
		}
	}
}

// checkAgainstRebuild is the differential oracle: g must agree with a fresh
// rebuild of its survivors on edges, weights, orientations, and the full
// reachability relation.
func checkAgainstRebuild(t *testing.T, g *Graph) {
	t.Helper()
	checkSlotHygiene(t, g)
	fresh := rebuildSurvivors(t, g)
	if g.Len() != fresh.Len() {
		t.Fatalf("rebuild has %d transactions, incremental %d", fresh.Len(), g.Len())
	}
	ge, fe := edgeFacts(g), edgeFacts(fresh)
	if len(ge) != len(fe) {
		t.Fatalf("edge sets differ: incremental %d edges, rebuild %d", len(ge), len(fe))
	}
	for k, v := range ge {
		if fv, ok := fe[k]; !ok || fv != v {
			t.Fatalf("edge %v: incremental %+v, rebuild %+v (present=%v)", k, v, fe[k], ok)
		}
	}
	gr, fr := reachFacts(g), reachFacts(fresh)
	if len(gr) != len(fr) {
		t.Fatalf("reachability differs: incremental %d pairs, rebuild %d\ninc: %v\nreb: %v", len(gr), len(fr), gr, fr)
	}
	for k := range gr {
		if !fr[k] {
			t.Fatalf("incremental claims %d reaches %d; rebuild disagrees", k[0], k[1])
		}
	}
}

// TestEvictReadmitSameSlot is the targeted regression: evict a transaction in
// the middle of an oriented chain and admit a new conflicting transaction into
// the recycled slot. No precedence state may leak from the evictee to the
// newcomer.
func TestEvictReadmitSameSlot(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := New()
	for id := int64(1); id <= 3; id++ {
		g.Add(randTxn(r, id, 0))
	}
	if err := g.Orient(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Orient(2, 3); err != nil {
		t.Fatal(err)
	}
	if !bitGet(g.reach[g.slots[1]], g.slots[3]) {
		t.Fatal("precondition: 1 must reach 3 through 2")
	}
	evicted := g.slots[2]
	g.Remove(2)
	g.Add(randTxn(r, 4, 0))
	if got := g.slots[4]; got != evicted {
		t.Fatalf("newcomer got slot %d, want recycled slot %d", got, evicted)
	}
	// The recycled slot must start clean: no inherited orientation, no
	// inherited reachability in either direction.
	if _, _, d, ok := g.EdgeDir(1, 4); !ok || d != Undetermined {
		t.Fatalf("edge 1-4 should exist undetermined, got dir %v (present=%v)", d, ok)
	}
	for _, other := range []int64{1, 3} {
		if bitGet(g.reach[g.slots[4]], g.slots[other]) {
			t.Fatalf("recycled slot inherited reachability to txn %d", other)
		}
		if bitGet(g.reach[g.slots[other]], g.slots[4]) {
			t.Fatalf("txn %d claims stale reachability into recycled slot", other)
		}
	}
	// Removing 2 severed the only 1→3 path; the edge 1-3 stays determined
	// (orientation is a fact about the order, not the path) but the chain
	// through the newcomer must be freely orientable against it.
	if err := g.Orient(4, 1); err != nil {
		t.Fatalf("orienting 4 before 1 hit phantom state: %v", err)
	}
	if err := g.Orient(3, 4); err == nil {
		// 1→3 was determined before the eviction; with 4→1 that makes
		// 3→4→1→... fine unless 1 still reaches 3. It does (direct edge),
		// so this must deadlock — anything else means the closure index
		// lost the surviving direct edge.
		t.Fatal("3→4 should close the cycle 3→4→1→3")
	}
	checkAgainstRebuild(t, g)
}

// TestEvictionDifferentialRandom drives 200 random admit/orient/evict
// interleavings over a small transaction population with heavy slot reuse,
// checking the incremental graph against a from-scratch rebuild after every
// eviction and at the end of each interleaving.
func TestEvictionDifferentialRandom(t *testing.T) {
	const (
		interleavings = 200
		opsPerRun     = 40
		maxPopulation = 8
		filePool      = 4
	)
	for seed := int64(1); seed <= interleavings; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			g := New()
			nextID := int64(1)
			admit := func() {
				k := 1 + r.Intn(3)
				files := make([]model.FileID, 0, k)
				for len(files) < k {
					f := model.FileID(r.Intn(filePool))
					dup := false
					for _, x := range files {
						dup = dup || x == f
					}
					if !dup {
						files = append(files, f)
					}
				}
				g.Add(randTxn(r, nextID, files...))
				nextID++
			}
			for i := 0; i < 3; i++ {
				admit()
			}
			for op := 0; op < opsPerRun; op++ {
				switch c := r.Intn(10); {
				case c < 4 && g.Len() < maxPopulation: // admit
					admit()
				case c < 7 && g.Len() > 1: // evict a random survivor
					victim := g.order[r.Intn(len(g.order))]
					g.Remove(victim)
					checkAgainstRebuild(t, g)
				default: // orient a random joined pair
					if g.Len() < 2 {
						continue
					}
					x := g.order[r.Intn(len(g.order))]
					y := g.order[r.Intn(len(g.order))]
					if x == y {
						continue
					}
					if _, _, _, ok := g.EdgeDir(x, y); !ok {
						continue
					}
					if err := g.Orient(x, y); err != nil && err != ErrDeadlock {
						t.Fatalf("Orient(%d,%d) = %v", x, y, err)
					}
				}
			}
			checkAgainstRebuild(t, g)
		})
	}
}
