package wtpg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the WTPG in Graphviz DOT format for debugging and
// papers: T0 with its weighted edges to every transaction, solid arrows for
// precedence edges, dashed bidirectional pairs for undetermined conflict
// edges, each labeled with its weight(s).
func (g *Graph) WriteDOT(w io.Writer, w0 T0Weight) error {
	var b strings.Builder
	b.WriteString("digraph wtpg {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  T0 [shape=doublecircle];\n")
	for _, id := range g.order {
		fmt.Fprintf(&b, "  T%d [shape=circle];\n", id)
	}
	for _, id := range g.order {
		fmt.Fprintf(&b, "  T0 -> T%d [label=\"%g\", color=gray];\n", id, w0(g.txns[id]))
	}
	// edgeSet is already sorted by (a, b).
	for _, e := range g.edgeSet() {
		switch e.dir {
		case Undetermined:
			fmt.Fprintf(&b, "  T%d -> T%d [label=\"%g\", style=dashed, dir=both];\n", e.a, e.b, e.wAB)
			fmt.Fprintf(&b, "  T%d -> T%d [label=\"%g\", style=dashed, dir=both];\n", e.b, e.a, e.wBA)
		default:
			from, to, weight := e.oriented()
			fmt.Fprintf(&b, "  T%d -> T%d [label=\"%g\"];\n", from, to, weight)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
