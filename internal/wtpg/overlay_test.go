package wtpg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"batchsched/internal/model"
)

// buildRandomGraph populates g with n random transactions over a small file
// pool and commits a few random orientations, returning the txns. Mirrors
// the generator of TestOrientationClosureStaysAcyclic.
func buildRandomGraph(r *rand.Rand, g *Graph, n int, filePool int) []*model.Txn {
	txns := make([]*model.Txn, 0, n)
	for id := int64(1); id <= int64(n); id++ {
		k := 1 + r.Intn(3)
		files := make([]model.FileID, 0, k)
		for len(files) < k {
			f := model.FileID(r.Intn(filePool))
			dup := false
			for _, x := range files {
				dup = dup || x == f
			}
			if !dup {
				files = append(files, f)
			}
		}
		t := randTxn(r, id, files...)
		g.Add(t)
		txns = append(txns, t)
	}
	for try := 0; try < 3*n; try++ {
		from := int64(1 + r.Intn(n))
		to := int64(1 + r.Intn(n))
		if from == to {
			continue
		}
		if _, _, d, ok := g.EdgeDir(from, to); !ok || d != Undetermined {
			continue
		}
		_ = g.Orient(from, to) // ErrDeadlock leaves the graph unchanged: fine
	}
	return txns
}

// sameFloat compares bitwise, treating +Inf specially so the failure message
// is readable.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestOverlayEvaluateMatchesSequential is the tentpole's core differential
// property: for random graphs, random committed orientations, and every
// (txn, file, mode) candidate, the overlay evaluation must return the
// bitwise-identical E(q) that the sequential apply/undo Evaluate returns —
// including the +Inf deadlock cases — and must leave the graph untouched.
func TestOverlayEvaluateMatchesSequential(t *testing.T) {
	var o Overlay
	var base EvalBase
	for seed := int64(1); seed <= 40; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			g := New()
			txns := buildRandomGraph(r, g, 10, 5)

			// Exercise slot and edge-ID recycling: drop a couple of txns,
			// then add replacements.
			for _, victim := range []int64{int64(1 + r.Intn(10)), int64(1 + r.Intn(10))} {
				g.Remove(victim)
			}
			for id := int64(11); id <= 13; id++ {
				nt := randTxn(r, id, model.FileID(r.Intn(5)), model.FileID(r.Intn(5)))
				g.Add(nt)
				txns = append(txns, nt)
			}

			if err := g.BuildEvalBase(RemainingDemand, &base); err != nil {
				t.Fatalf("BuildEvalBase: %v", err)
			}
			before := dirSnapshot(g)
			for _, tx := range txns {
				if !g.Has(tx.ID) {
					continue
				}
				for f := 0; f < 5; f++ {
					for _, m := range []model.Mode{model.S, model.X} {
						want := Evaluate(g, tx, model.FileID(f), m, RemainingDemand)
						got := o.Evaluate(&base, tx, model.FileID(f), model.Mode(m))
						if !sameFloat(want, got) {
							t.Fatalf("E(q) for txn %d file %d mode %v: sequential %v, overlay %v",
								tx.ID, f, m, want, got)
						}
					}
				}
			}
			if after := dirSnapshot(g); len(after) != len(before) {
				t.Fatalf("overlay evaluation mutated the graph: %d edges determined, was %d",
					len(after), len(before))
			} else {
				for k, v := range before {
					if after[k] != v {
						t.Fatalf("overlay evaluation mutated edge %v: %v -> %v", k, v, after[k])
					}
				}
			}
		})
	}
}

// TestOverlayReuseAcrossDecisions: one Overlay and one EvalBase must be
// reusable across graph mutations (rebuild base, evaluate again) without
// stale patch state leaking between generations.
func TestOverlayReuseAcrossDecisions(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := New()
	txns := buildRandomGraph(r, g, 8, 4)
	var o Overlay
	var base EvalBase
	for round := 0; round < 6; round++ {
		if err := g.BuildEvalBase(RemainingDemand, &base); err != nil {
			t.Fatalf("round %d: BuildEvalBase: %v", round, err)
		}
		for _, tx := range txns {
			if !g.Has(tx.ID) {
				continue
			}
			f := model.FileID(r.Intn(4))
			want := Evaluate(g, tx, f, model.X, RemainingDemand)
			got := o.Evaluate(&base, tx, f, model.X)
			if !sameFloat(want, got) {
				t.Fatalf("round %d txn %d file %d: sequential %v, overlay %v", round, tx.ID, f, want, got)
			}
		}
		// Mutate between rounds: remove one, add one, orient one.
		victim := txns[r.Intn(len(txns))]
		g.Remove(victim.ID)
		id := int64(100 + round)
		nt := randTxn(r, id, model.FileID(r.Intn(4)), model.FileID(r.Intn(4)))
		g.Add(nt)
		txns = append(txns, nt)
		from := txns[r.Intn(len(txns))]
		to := txns[r.Intn(len(txns))]
		if from.ID != to.ID && g.Has(from.ID) && g.Has(to.ID) {
			if _, _, d, ok := g.EdgeDir(from.ID, to.ID); ok && d == Undetermined {
				_ = g.Orient(from.ID, to.ID)
			}
		}
	}
}

// TestEvalBaseMatchesCriticalPath: the frozen base answer must equal the
// live CriticalPath bitwise.
func TestEvalBaseMatchesCriticalPath(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := New()
		buildRandomGraph(r, g, 12, 6)
		want, err := g.CriticalPath(RemainingDemand)
		if err != nil {
			t.Fatalf("seed %d: CriticalPath: %v", seed, err)
		}
		var base EvalBase
		if err := g.BuildEvalBase(RemainingDemand, &base); err != nil {
			t.Fatalf("seed %d: BuildEvalBase: %v", seed, err)
		}
		if !sameFloat(want, base.CriticalPath()) {
			t.Fatalf("seed %d: base answer %v != CriticalPath %v", seed, base.CriticalPath(), want)
		}
	}
}
