package wtpg

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/pool"
)

// buildChainGraph adds n transactions that pairwise conflict only along
// random disjoint chains (GOW's chain-form invariant), orienting a few edges
// to exercise the fixed-direction handling.
func buildChainGraph(r *rand.Rand, g *Graph, chains, maxLen int) {
	id := int64(1)
	file := 0
	for c := 0; c < chains; c++ {
		n := 1 + r.Intn(maxLen)
		prev := model.FileID(-1)
		for i := 0; i < n; i++ {
			// Each chain member shares one file with its predecessor and one
			// with its successor; files are globally unique otherwise.
			var files []model.FileID
			if prev >= 0 {
				files = append(files, prev)
			}
			next := model.FileID(file)
			file++
			files = append(files, next)
			g.Add(randTxn(r, id, files...))
			id++
			prev = next
		}
	}
	// Orient ~1/4 of the edges (closure keeps the graph consistent).
	ids := make([]int64, 0, int(id)-1)
	for x := int64(1); x < id; x++ {
		if g.Has(x) {
			ids = append(ids, x)
		}
	}
	for try := 0; try < len(ids); try++ {
		x := ids[r.Intn(len(ids))]
		y := ids[r.Intn(len(ids))]
		if x == y {
			continue
		}
		if _, _, d, ok := g.EdgeDir(x, y); ok && d == Undetermined && r.Intn(4) == 0 {
			_ = g.Orient(x, y)
		}
	}
}

// TestParallelPlanMatchesSequential pins the parallel Phase-2 plan —
// Value and every oriented pair — byte-identical to the sequential solver
// across random chain-form graphs and worker counts.
func TestParallelPlanMatchesSequential(t *testing.T) {
	p := pool.New("test", 4)
	defer p.Stop()
	lane := p.Lane("decision")
	for seed := int64(1); seed <= 30; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			g := New()
			buildChainGraph(r, g, 1+r.Intn(6), 5)
			var want, got Plan
			if err := g.OptimalChainOrientationInto(RemainingDemand, &want); err != nil {
				t.Fatalf("sequential: %v", err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				if err := g.OptimalChainOrientationParallelInto(RemainingDemand, &got, lane, workers); err != nil {
					t.Fatalf("parallel(%d): %v", workers, err)
				}
				if !sameFloat(want.Value, got.Value) {
					t.Fatalf("workers=%d: Value %v != sequential %v", workers, got.Value, want.Value)
				}
				if !reflect.DeepEqual(want.pred, got.pred) {
					t.Fatalf("workers=%d: pred %v != sequential %v", workers, got.pred, want.pred)
				}
			}
		})
	}
}

// TestParallelPlanReuse: the same Plan and graph must survive interleaved
// mutations and repeated parallel solves (steady-state reuse of the
// flattened buffers).
func TestParallelPlanReuse(t *testing.T) {
	p := pool.New("test", 4)
	defer p.Stop()
	lane := p.Lane("decision")
	r := rand.New(rand.NewSource(3))
	g := New()
	buildChainGraph(r, g, 4, 4)
	var want, got Plan
	for round := 0; round < 5; round++ {
		if err := g.OptimalChainOrientationInto(RemainingDemand, &want); err != nil {
			t.Fatalf("round %d sequential: %v", round, err)
		}
		if err := g.OptimalChainOrientationParallelInto(RemainingDemand, &got, lane, 4); err != nil {
			t.Fatalf("round %d parallel: %v", round, err)
		}
		if !sameFloat(want.Value, got.Value) || !reflect.DeepEqual(want.pred, got.pred) {
			t.Fatalf("round %d: plans diverge", round)
		}
		// Drop one endpoint txn to mutate components between rounds.
		for _, tx := range g.Txns() {
			if len(g.nbrs[g.slots[tx.ID]]) <= 1 {
				g.Remove(tx.ID)
				break
			}
		}
	}
}
