package wtpg

import (
	"math"
	"strings"
	"testing"

	"batchsched/internal/model"
)

// txn builds a transaction from the pattern mini-language with every symbol
// mapped through the binding.
func txn(id int64, pattern string, binding map[string]model.FileID) *model.Txn {
	p := model.MustParsePattern(pattern)
	steps, err := p.Instantiate(binding)
	if err != nil {
		panic(err)
	}
	return model.NewTxn(id, 0, steps)
}

// fig2Graph builds the WTPG of the paper's Fig. 2-(b): T1 and T2 just
// started, conflicting on file A.
func fig2Graph() (*Graph, *model.Txn, *model.Txn) {
	t1 := txn(1, "r(A:1)->r(B:3)->w(A:1)", map[string]model.FileID{"A": 0, "B": 1})
	t2 := txn(2, "r(C:1)->w(A:1)->w(C:1)", map[string]model.FileID{"A": 0, "C": 2})
	g := New()
	g.Add(t1)
	g.Add(t2)
	return g, t1, t2
}

func TestFig2ConflictEdge(t *testing.T) {
	g, t1, t2 := fig2Graph()
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	// Conflict edge exists and is undetermined.
	_, _, dir, ok := g.EdgeDir(t1.ID, t2.ID)
	if !ok || dir != Undetermined {
		t.Fatalf("edge dir = %v ok=%v, want undetermined conflict edge", dir, ok)
	}
	// Weight {T1->T2} = 2 (T2's remaining cost from its blocked step
	// w2(A:1)); weight {T2->T1} = 5.
	if w, ok := g.EdgeWeight(t1.ID, t2.ID); !ok || w != 2 {
		t.Errorf("w(T1->T2) = %g, want 2", w)
	}
	if w, ok := g.EdgeWeight(t2.ID, t1.ID); !ok || w != 5 {
		t.Errorf("w(T2->T1) = %g, want 5", w)
	}
}

func TestAddPanicsOnDuplicate(t *testing.T) {
	g, t1, _ := fig2Graph()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate Add")
		}
	}()
	g.Add(t1)
}

func TestRemoveDropsEdges(t *testing.T) {
	g, t1, t2 := fig2Graph()
	g.Remove(t1.ID)
	if g.Has(t1.ID) || !g.Has(t2.ID) || g.Len() != 1 {
		t.Fatal("Remove did not drop exactly T1")
	}
	if _, _, _, ok := g.EdgeDir(t1.ID, t2.ID); ok {
		t.Fatal("edge must be gone after Remove")
	}
	g.Remove(t1.ID) // no-op
	if g.Len() != 1 {
		t.Fatal("double Remove changed the graph")
	}
}

func TestOrientAndCriticalPath(t *testing.T) {
	g, t1, t2 := fig2Graph()
	if err := g.Orient(t1.ID, t2.ID); err != nil {
		t.Fatal(err)
	}
	_, _, dir, _ := g.EdgeDir(t1.ID, t2.ID)
	if dir == Undetermined {
		t.Fatal("edge must be determined after Orient")
	}
	from, to, _, _ := g.EdgeDir(t1.ID, t2.ID)
	if from != t1.ID || to != t2.ID {
		t.Fatalf("orientation = %d->%d, want 1->2", from, to)
	}
	// Critical path with fresh T0 weights: T0->T1 (5) -> T2 (2) = 7
	// beats T0->T2 (3).
	v, err := g.CriticalPath(RemainingDemand)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Errorf("critical path = %g, want 7", v)
	}
	// Re-orienting the same way is a no-op; the reverse way deadlocks.
	if err := g.Orient(t1.ID, t2.ID); err != nil {
		t.Errorf("idempotent orient failed: %v", err)
	}
	if err := g.Orient(t2.ID, t1.ID); err != ErrDeadlock {
		t.Errorf("conflicting orient = %v, want ErrDeadlock", err)
	}
}

func TestOrientMissingEdge(t *testing.T) {
	g, t1, _ := fig2Graph()
	t3 := txn(3, "w(Z:1)", map[string]model.FileID{"Z": 99})
	g.Add(t3)
	if err := g.Orient(t1.ID, t3.ID); err == nil {
		t.Fatal("orienting a non-existent edge must error")
	}
}

func TestCriticalPathIgnoresConflictEdges(t *testing.T) {
	g, t1, t2 := fig2Graph()
	// No orientations: critical path = max T0 weight = 5 (T1).
	v, err := g.CriticalPath(RemainingDemand)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("critical path = %g, want 5 (conflict edges ignored)", v)
	}
	_ = t1
	_ = t2
}

func TestT0WeightsShrinkAsScheduleProceeds(t *testing.T) {
	g, t1, _ := fig2Graph()
	t1.StepIndex = 2 // first two steps done; only w1(A:1) remains
	if got := RemainingDemand(t1); got != 1 {
		t.Errorf("RemainingDemand = %g, want 1", got)
	}
	v, err := g.CriticalPath(RemainingDemand)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 { // now T2's fresh weight 3 dominates
		t.Errorf("critical path = %g, want 3", v)
	}
}

// fig6Graph reproduces the structure of the paper's Fig. 6-(a): precedence
// edges T4->T5 and T6->T7 already determined, conflict edges (T5,T6) and
// (T4,T7) undetermined, with weights chosen to match the worked example
// (w(T4->T7) = 10, E(q) = 10, E(p) = 1).
func fig6Graph() (*Graph, map[int64]*model.Txn) {
	files := map[string]model.FileID{"a": 0, "b": 1, "c": 2, "d": 3}
	t4 := txn(4, "w(a:1)->w(d:1)", files)
	t5 := txn(5, "w(a:0)->w(b:1)", files)
	t6 := txn(6, "w(b:1)->w(c:1)", files)
	t7 := txn(7, "w(d:9)->w(c:1)", files)
	g := New()
	g.Add(t4)
	g.Add(t5)
	g.Add(t6)
	g.Add(t7)
	if err := g.Orient(4, 5); err != nil {
		panic(err)
	}
	if err := g.Orient(6, 7); err != nil {
		panic(err)
	}
	return g, map[int64]*model.Txn{4: t4, 5: t5, 6: t6, 7: t7}
}

func zeroW(*model.Txn) float64 { return 0 }

func TestFig6Weights(t *testing.T) {
	g, _ := fig6Graph()
	checks := []struct {
		from, to int64
		want     float64
	}{
		{4, 5, 1}, {5, 6, 2}, {6, 5, 1}, {6, 7, 1}, {4, 7, 10},
	}
	for _, c := range checks {
		if w, ok := g.EdgeWeight(c.from, c.to); !ok || w != c.want {
			t.Errorf("w(T%d->T%d) = %g ok=%v, want %g", c.from, c.to, w, ok, c.want)
		}
	}
}

func TestFig6EvaluateQ(t *testing.T) {
	// q: T5 requests the lock on file b (conflicting with T6). Granting it
	// creates the path T4->T5->T6->T7, which forces (T4,T7) to T4->T7
	// (weight 10); the critical path is then 10. (Paper: E(q) = 10.)
	g, ts := fig6Graph()
	got := Evaluate(g, ts[5], 1, model.X, zeroW)
	if got != 10 {
		t.Errorf("E(q) = %g, want 10", got)
	}
	// The evaluation must not mutate the original graph.
	if _, _, dir, _ := g.EdgeDir(5, 6); dir != Undetermined {
		t.Error("Evaluate mutated the graph")
	}
}

func TestFig6EvaluateP(t *testing.T) {
	// p: T6 requests the lock on file b. Granting it orients T6->T5; the
	// remaining conflict edge (T4,T7) is ignored, so the critical path is 1.
	// (Paper: E(p) = 1.)
	g, ts := fig6Graph()
	got := Evaluate(g, ts[6], 1, model.X, zeroW)
	if got != 1 {
		t.Errorf("E(p) = %g, want 1", got)
	}
}

func TestFig6ClosureAfterGrant(t *testing.T) {
	g, ts := fig6Graph()
	if err := g.Grant(ts[5], 1, model.X); err != nil {
		t.Fatal(err)
	}
	from, to, _, ok := g.EdgeDir(4, 7)
	if !ok || from != 4 || to != 7 {
		t.Fatalf("closure must orient (T4,T7) as T4->T7; got %d->%d ok=%v", from, to, ok)
	}
	v, err := g.CriticalPath(zeroW)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("critical path after grant = %g, want 10", v)
	}
}

func TestGrantDetectsDeadlock(t *testing.T) {
	// Two transactions conflicting on two files; grant them one file each in
	// opposite orders: the second grant must fail with ErrDeadlock.
	files := map[string]model.FileID{"d": 0, "e": 1}
	a := txn(1, "w(d:1)->w(e:1)", files)
	b := txn(2, "w(e:1)->w(d:1)", files)
	g := New()
	g.Add(a)
	g.Add(b)
	if err := g.Grant(a, 0, model.X); err != nil {
		t.Fatal(err)
	}
	if err := g.Grant(b, 1, model.X); err != ErrDeadlock {
		t.Fatalf("second grant = %v, want ErrDeadlock", err)
	}
	// Graph unchanged by the failed grant: (a,b) still oriented a->b only.
	from, to, _, _ := g.EdgeDir(1, 2)
	if from != 1 || to != 2 {
		t.Fatalf("failed grant mutated the edge: %d->%d", from, to)
	}
	// Evaluate returns +Inf for the deadlocking request.
	if v := Evaluate(g, b, 1, model.X, zeroW); !math.IsInf(v, 1) {
		t.Errorf("E(deadlocking q) = %g, want +Inf", v)
	}
}

func TestGrantIdempotentForHolder(t *testing.T) {
	g, t1, t2 := fig2Graph()
	if err := g.Grant(t1, 0, model.X); err != nil {
		t.Fatal(err)
	}
	// Granting the same file again determines nothing new.
	pairs, err := g.GrantOrientations(t1, 0, model.X)
	if err != nil || len(pairs) != 0 {
		t.Errorf("GrantOrientations after grant = %v, %v; want empty, nil", pairs, err)
	}
	_ = t2
}

func TestGrantOnUnsharedFileDeterminesNothing(t *testing.T) {
	g, t1, _ := fig2Graph()
	pairs, err := g.GrantOrientations(t1, 1, model.S) // file B: only T1 touches it
	if err != nil || len(pairs) != 0 {
		t.Errorf("grant on private file: pairs=%v err=%v", pairs, err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, t1, t2 := fig2Graph()
	c := g.Clone()
	if err := c.Orient(t1.ID, t2.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, dir, _ := g.EdgeDir(t1.ID, t2.ID); dir != Undetermined {
		t.Fatal("orienting the clone mutated the original")
	}
	c.Remove(t1.ID)
	if !g.Has(t1.ID) {
		t.Fatal("removing from the clone mutated the original")
	}
}

func TestSharedReadersDoNotConflict(t *testing.T) {
	files := map[string]model.FileID{"A": 0}
	a := txn(1, "r(A:2)", files)
	b := txn(2, "r(A:3)", files)
	g := New()
	g.Add(a)
	g.Add(b)
	if _, _, _, ok := g.EdgeDir(1, 2); ok {
		t.Fatal("S-S accesses must not create a conflict edge")
	}
}

func TestThreeWayClosureChain(t *testing.T) {
	// a->b and b->c determined; conflict edge (a,c) must be forced a->c.
	files := map[string]model.FileID{"x": 0, "y": 1, "z": 2}
	a := txn(1, "w(x:1)->w(z:1)", files)
	b := txn(2, "w(x:1)->w(y:1)", files)
	c := txn(3, "w(y:1)->w(z:1)", files)
	g := New()
	g.Add(a)
	g.Add(b)
	g.Add(c)
	if err := g.Orient(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Orient(2, 3); err != nil {
		t.Fatal(err)
	}
	from, to, _, ok := g.EdgeDir(1, 3)
	if !ok || from != 1 || to != 3 {
		t.Fatalf("closure: (a,c) = %d->%d ok=%v, want 1->3", from, to, ok)
	}
	// And orienting against the closed edge deadlocks.
	if err := g.Orient(3, 1); err != ErrDeadlock {
		t.Errorf("got %v, want ErrDeadlock", err)
	}
}

func TestOrientAllAtomicity(t *testing.T) {
	files := map[string]model.FileID{"x": 0, "y": 1}
	a := txn(1, "w(x:1)->w(y:1)", files)
	b := txn(2, "w(x:1)->w(y:2)", files)
	g := New()
	g.Add(a)
	g.Add(b)
	// A batch that both orients a->b and b->a must fail and leave the edge
	// untouched.
	err := g.OrientAll([][2]int64{{1, 2}, {2, 1}})
	if err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if _, _, dir, _ := g.EdgeDir(1, 2); dir != Undetermined {
		t.Fatal("failed OrientAll mutated the graph")
	}
}

func TestTxnsInsertionOrder(t *testing.T) {
	g := New()
	files := map[string]model.FileID{"A": 0}
	for i := int64(5); i >= 1; i-- {
		g.Add(txn(i, "r(A:1)", files))
	}
	ts := g.Txns()
	for i, tx := range ts {
		if tx.ID != int64(5-i) {
			t.Fatalf("Txns order = %v", ts)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g, ts := fig6Graph()
	var b strings.Builder
	if err := g.WriteDOT(&b, zeroW); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph wtpg", "T0 [shape=doublecircle]",
		"T4 -> T5 [label=\"1\"]",              // precedence edge
		"T6 -> T7 [label=\"1\"]",              // precedence edge
		"T5 -> T6 [label=\"2\", style=dashed", // conflict edge, both directions
		"T6 -> T5 [label=\"1\", style=dashed",
		"T4 -> T7 [label=\"10\", style=dashed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	_ = ts
}
