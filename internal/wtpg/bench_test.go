package wtpg

import (
	"math/rand"
	"testing"

	"batchsched/internal/model"
)

// benchChain builds an n-node chain graph with random weights.
func benchChain(n int, seed int64) (*Graph, []*model.Txn) {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(1 + rng.Intn(9))
		y[i] = float64(1 + rng.Intn(9))
	}
	txns := chainTxns(x, y)
	g := New()
	for _, tx := range txns {
		g.Add(tx)
	}
	return g, txns
}

// BenchmarkOptimalChainOrientation measures GOW's Phase-2 optimization on a
// 32-node chain (far larger than typical simulation state).
func BenchmarkOptimalChainOrientation(b *testing.B) {
	g, _ := benchChain(32, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.OptimalChainOrientation(RemainingDemand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate measures LOW's E(q) (clone + grant + critical path) on
// a 32-node chain.
func BenchmarkEvaluate(b *testing.B) {
	g, txns := benchChain(32, 7)
	t := txns[10]
	f := t.Steps[0].File
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(g, t, f, model.X, RemainingDemand)
	}
}

// BenchmarkChainFormAfterAdd measures GOW's Phase-0 admission test, the
// hottest scheduler call at saturation.
func BenchmarkChainFormAfterAdd(b *testing.B) {
	g, _ := benchChain(32, 7)
	probe := model.NewTxn(999, 0, []model.Step{
		{File: 5, Write: true, LockMode: model.X, Cost: 1, DeclaredCost: 1},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ChainFormAfterAdd(probe)
	}
}

// BenchmarkGrant measures orientation plus closure after a grant.
func BenchmarkGrant(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, txns := benchChain(24, int64(i))
		t := txns[11]
		b.StartTimer()
		if err := g.Grant(t, t.Steps[0].File, model.X); err != nil {
			b.Fatal(err)
		}
	}
}
