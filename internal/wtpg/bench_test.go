package wtpg

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/pool"
)

// benchChain builds an n-node chain graph with random weights.
func benchChain(n int, seed int64) (*Graph, []*model.Txn) {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(1 + rng.Intn(9))
		y[i] = float64(1 + rng.Intn(9))
	}
	txns := chainTxns(x, y)
	g := New()
	for _, tx := range txns {
		g.Add(tx)
	}
	return g, txns
}

// BenchmarkOptimalChainOrientation measures GOW's Phase-2 optimization on a
// 32-node chain (far larger than typical simulation state).
func BenchmarkOptimalChainOrientation(b *testing.B) {
	g, _ := benchChain(32, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.OptimalChainOrientation(RemainingDemand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrientAll measures one full Phase-2 planning pass — the optimal
// chain orientation over every component of a many-chain WTPG (the
// per-decision cost GOW pays on each contended lock request, DESIGN.md §17).
// Set BENCH_DECISION_WORKERS=N to solve components on an N-worker pool
// (OptimalChainOrientationParallelInto); the plan is byte-identical either
// way, so the pre/post ratio in BENCH_core.json is a pure wall-clock
// comparison of the sequential and fanned-out solvers.
func BenchmarkOrientAll(b *testing.B) {
	workers, _ := strconv.Atoi(os.Getenv("BENCH_DECISION_WORKERS"))
	r := rand.New(rand.NewSource(1))
	g := New()
	buildChainGraph(r, g, 64, 8)
	var plan Plan
	var lane *pool.Lane
	if workers > 1 {
		p := pool.New("bench", workers)
		defer p.Stop()
		lane = p.Lane("decision")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if lane != nil {
			err = g.OptimalChainOrientationParallelInto(RemainingDemand, &plan, lane, workers)
		} else {
			err = g.OptimalChainOrientationInto(RemainingDemand, &plan)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverlayEvaluate measures LOW's parallel-path E(q) — one overlay
// evaluation against a frozen base — next to BenchmarkEvaluate's exclusive
// apply/undo equivalent.
func BenchmarkOverlayEvaluate(b *testing.B) {
	g, txns := benchChain(32, 7)
	t := txns[10]
	f := t.Steps[0].File
	var base EvalBase
	if err := g.BuildEvalBase(RemainingDemand, &base); err != nil {
		b.Fatal(err)
	}
	var ov Overlay
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ov.Evaluate(&base, t, f, model.X)
	}
}

// BenchmarkEvaluate measures LOW's E(q) (clone + grant + critical path) on
// a 32-node chain.
func BenchmarkEvaluate(b *testing.B) {
	g, txns := benchChain(32, 7)
	t := txns[10]
	f := t.Steps[0].File
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(g, t, f, model.X, RemainingDemand)
	}
}

// BenchmarkChainFormAfterAdd measures GOW's Phase-0 admission test, the
// hottest scheduler call at saturation.
func BenchmarkChainFormAfterAdd(b *testing.B) {
	g, _ := benchChain(32, 7)
	probe := model.NewTxn(999, 0, []model.Step{
		{File: 5, Write: true, LockMode: model.X, Cost: 1, DeclaredCost: 1},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ChainFormAfterAdd(probe)
	}
}

// BenchmarkGrant measures orientation plus closure after a grant.
func BenchmarkGrant(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, txns := benchChain(24, int64(i))
		t := txns[11]
		b.StartTimer()
		if err := g.Grant(t, t.Steps[0].File, model.X); err != nil {
			b.Fatal(err)
		}
	}
}
