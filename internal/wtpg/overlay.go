package wtpg

// Overlay evaluation (DESIGN.md §17): score E(q) for a candidate grant
// against an immutable base graph plus a small per-worker delta, instead of
// the exclusive apply/undo speculation of Evaluate. K candidates can then be
// scored concurrently — each worker owns one Overlay, the graph itself is
// only read — and the critical path is maintained incrementally: the
// longest-path value of every slot is cached once per decision (EvalBase)
// and recomputed only for the slots downstream of the candidate's patched
// edges.
//
// Byte-identity with the sequential path is structural, not approximate:
// the overlay runs the very same algorithms (GrantOrientations, orientEdge's
// row absorption, the closure fixpoint over edgeSet in the same order, the
// Kahn longest-path relaxation with the same float associativity) with reads
// indirected through the patch. The incremental critical path is exact
// because the dirty set — the patched edges' successor slots plus everything
// they reach under the patched orientation — is downstream-closed: a clean
// slot has only clean predecessors (a dirty predecessor would make it
// reachable from a patched successor, hence dirty), so every cached clean
// value equals what a full recomputation would produce, bit for bit, and
// orienting edges only ever lengthens paths, so the answer is
// max(base answer, recomputed dirty values).

import (
	"math"
	"math/bits"

	"batchsched/internal/model"
)

// EvalBase freezes the shared, read-only inputs of one decision batch: the
// T0 weight of every live slot, the base longest-path value per slot, the
// base critical-path answer, and the materialized edge set. Build it once
// per decision (after the last graph mutation), then score any number of
// candidates concurrently against it with per-worker Overlays.
type EvalBase struct {
	g     *Graph
	edges []*edge   // edgeSet(), materialized before fan-out
	w0    []float64 // frozen T0 weight per slot
	best  []float64 // base longest-path value per live slot
	ans   float64   // base critical-path answer

	// Build scratch.
	indeg []int
	queue []int
}

// Graph returns the graph the base was built against.
func (b *EvalBase) Graph() *Graph { return b.g }

// CriticalPath returns the frozen base critical-path answer.
func (b *EvalBase) CriticalPath() float64 { return b.ans }

// BuildEvalBase computes the base into b (reusing its buffers). It mirrors
// CriticalPath exactly — same initialization, same relaxation — so the
// cached values are bitwise what the sequential evaluation would compute,
// and it materializes the edge-set cache so concurrent overlay readers never
// race on it. Must be called with no speculative scope open and re-called
// after any graph mutation before further overlay evaluations.
func (g *Graph) BuildEvalBase(w0 T0Weight, b *EvalBase) error {
	if g.specActive {
		panic("wtpg: BuildEvalBase during speculative evaluation")
	}
	b.g = g
	b.edges = g.edgeSet()
	n := len(g.ids)
	b.w0 = growFloats(b.w0, n)
	b.best = growFloats(b.best, n)
	b.indeg = growInts(b.indeg, n)
	indeg, best := b.indeg[:n], b.best[:n]
	for _, e := range b.edges {
		if e.dir == Undetermined {
			continue
		}
		if e.dir == AToB {
			indeg[e.sb]++
		} else {
			indeg[e.sa]++
		}
	}
	queue := b.queue[:0]
	for s, lv := range g.live {
		if !lv {
			continue
		}
		b.w0[s] = w0(g.txnAt[s])
		best[s] = b.w0[s]
		if indeg[s] == 0 {
			queue = append(queue, s)
		}
	}
	processed := 0
	var ans float64
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		processed++
		v := best[s]
		if v > ans {
			ans = v
		}
		for _, e := range g.nbrs[s] {
			var to int
			var w float64
			switch e.dir {
			case AToB:
				if e.sa != s {
					continue
				}
				to, w = e.sb, e.wAB
			case BToA:
				if e.sb != s {
					continue
				}
				to, w = e.sa, e.wBA
			default:
				continue
			}
			if x := v + w; x > best[to] {
				best[to] = x
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	b.queue = queue[:0]
	if processed != len(g.txns) {
		for i := range indeg {
			indeg[i] = 0
		}
		return ErrDeadlock
	}
	b.ans = ans
	return nil
}

// Overlay is one worker's private delta over a base graph: a generation-
// stamped edge-direction patch plus copy-on-write reachability rows for the
// slots the patch touches. It never writes the graph, so any number of
// overlays may evaluate concurrently against the same EvalBase. The zero
// value is ready to use; reuse one per worker to amortize its buffers.
type Overlay struct {
	g   *Graph
	gen uint64

	dirs []Dir    // patched direction per edge ID
	dgen []uint64 // generation stamp per edge ID

	rows [][]uint64 // overlay reachability row per slot
	rgen []uint64   // generation stamp per slot row

	patched []*edge // edges oriented in this evaluation, in orientation order

	// Incremental critical-path scratch.
	dirty  []uint64 // bitset of slots whose cached value the patch invalidates
	dslots []int
	indeg  []int
	best   []float64
	queue  []int
}

// reset opens a fresh evaluation against base b. Bumping the generation
// invalidates the whole patch lazily; gen starts at 1 so zero-valued stamps
// never match.
func (o *Overlay) reset(b *EvalBase) {
	o.g = b.g
	o.gen++
	if n := o.g.eidCap; len(o.dirs) < n {
		o.dirs = append(o.dirs, make([]Dir, n-len(o.dirs))...)
		o.dgen = append(o.dgen, make([]uint64, n-len(o.dgen))...)
	}
	if n := len(o.g.ids); len(o.rgen) < n {
		o.rows = append(o.rows, make([][]uint64, n-len(o.rows))...)
		o.rgen = append(o.rgen, make([]uint64, n-len(o.rgen))...)
	}
	o.patched = o.patched[:0]
}

// dir reads an edge's orientation through the patch.
func (o *Overlay) dir(e *edge) Dir {
	if o.dgen[e.eid] == o.gen {
		return o.dirs[e.eid]
	}
	return e.dir
}

func (o *Overlay) setDir(e *edge, d Dir) {
	o.dgen[e.eid] = o.gen
	o.dirs[e.eid] = d
}

// row reads a slot's reachability row through the patch.
func (o *Overlay) row(s int) []uint64 {
	if o.rgen[s] == o.gen {
		return o.rows[s]
	}
	return o.g.reach[s]
}

// mrow returns a writable overlay copy of slot s's row (copy-on-write).
func (o *Overlay) mrow(s int) []uint64 {
	if o.rgen[s] == o.gen {
		return o.rows[s]
	}
	o.rgen[s] = o.gen
	row := o.rows[s]
	row = append(row[:0], o.g.reach[s]...)
	o.rows[s] = row
	return row
}

// orientEdge is Graph.orientEdge with every read and write indirected
// through the patch: refuse (before recording anything) when the successor
// already reaches the predecessor, then absorb the successor's row into
// every row that reaches the predecessor, plus the predecessor's own.
func (o *Overlay) orientEdge(e *edge, want Dir) error {
	sf, st := e.sa, e.sb
	if want == BToA {
		sf, st = e.sb, e.sa
	}
	if bitGet(o.row(st), sf) {
		return ErrDeadlock
	}
	o.setDir(e, want)
	o.patched = append(o.patched, e)
	tr := o.row(st)
	for x, lv := range o.g.live {
		if !lv {
			continue
		}
		if x != sf && !bitGet(o.row(x), sf) {
			continue
		}
		row := o.row(x)
		changed := !bitGet(row, st)
		if !changed {
			for w, bits := range tr {
				if bits&^row[w] != 0 {
					changed = true
					break
				}
			}
		}
		if !changed {
			continue
		}
		row = o.mrow(x)
		for w, bits := range tr {
			row[w] |= bits
		}
		bitPut(row, st)
	}
	return nil
}

// applyOrientations mirrors Graph.applyOrientations on the patch: orient the
// requested pairs, then close to fixpoint over the same edge enumeration in
// the same order, so the sequence of orientations — and therefore any
// ErrDeadlock — is identical to the sequential path.
func (o *Overlay) applyOrientations(b *EvalBase, pairs [][2]int64) error {
	g := o.g
	for _, p := range pairs {
		e, ok := g.edgeBetween(p[0], p[1])
		if !ok {
			return ErrDeadlock // no edge: cannot happen for GrantOrientations output
		}
		want := AToB
		if p[0] == e.b {
			want = BToA
		}
		d := o.dir(e)
		if d == want {
			continue
		}
		if d != Undetermined {
			return ErrDeadlock
		}
		if err := o.orientEdge(e, want); err != nil {
			return err
		}
	}
	for {
		changed := false
		for _, e := range b.edges {
			if o.dir(e) != Undetermined {
				continue
			}
			ab := bitGet(o.row(e.sa), e.sb)
			ba := bitGet(o.row(e.sb), e.sa)
			switch {
			case ab && ba:
				return ErrDeadlock
			case ab:
				if err := o.orientEdge(e, AToB); err != nil {
					return err
				}
				changed = true
			case ba:
				if err := o.orientEdge(e, BToA); err != nil {
					return err
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// criticalPath recomputes the longest path over the dirty set only. The
// dirty set is every patched edge's successor slot plus all slots that
// successor reaches under the patched orientation; it is downstream-closed,
// so clean slots keep their cached base values (which are exact) and dirty
// slots relax over cached predecessors plus each other in one small Kahn
// pass.
func (o *Overlay) criticalPath(b *EvalBase) (float64, error) {
	g := o.g
	nw := g.words
	if len(o.dirty) < nw {
		o.dirty = append(o.dirty, make([]uint64, nw-len(o.dirty))...)
	}
	dirty := o.dirty[:nw]
	for i := range dirty {
		dirty[i] = 0
	}
	for _, e := range o.patched {
		st := e.sb
		if o.dir(e) == BToA {
			st = e.sa
		}
		bitPut(dirty, st)
		for w, bits := range o.row(st) {
			dirty[w] |= bits
		}
	}
	// Enumerate dirty slots in ascending slot order. Reach rows only ever
	// carry live slots, but guard anyway: a dead slot's frozen w0 is garbage.
	dslots := o.dslots[:0]
	for w, word := range dirty {
		for word != 0 {
			s := w<<6 + bits.TrailingZeros64(word)
			if g.live[s] {
				dslots = append(dslots, s)
			}
			word &= word - 1
		}
	}
	n := len(g.ids)
	o.indeg = growInts(o.indeg, n)
	o.best = growFloats(o.best, n)
	queue := o.queue[:0]
	for _, s := range dslots {
		v := b.w0[s]
		deg := 0
		for _, e := range g.nbrs[s] {
			var from int
			var w float64
			switch o.dir(e) {
			case AToB:
				if e.sb != s {
					continue
				}
				from, w = e.sa, e.wAB
			case BToA:
				if e.sa != s {
					continue
				}
				from, w = e.sb, e.wBA
			default:
				continue
			}
			if bitGet(dirty, from) {
				deg++
				continue
			}
			if x := b.best[from] + w; x > v {
				v = x
			}
		}
		o.best[s] = v
		o.indeg[s] = deg
		if deg == 0 {
			queue = append(queue, s)
		}
	}
	processed := 0
	ans := b.ans
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		processed++
		v := o.best[s]
		if v > ans {
			ans = v
		}
		for _, e := range g.nbrs[s] {
			var to int
			var w float64
			switch o.dir(e) {
			case AToB:
				if e.sa != s {
					continue
				}
				to, w = e.sb, e.wAB
			case BToA:
				if e.sb != s {
					continue
				}
				to, w = e.sa, e.wBA
			default:
				continue
			}
			if !bitGet(dirty, to) {
				continue // downstream closure: cannot happen; clean values are final
			}
			if x := v + w; x > o.best[to] {
				o.best[to] = x
			}
			o.indeg[to]--
			if o.indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	o.queue = queue[:0]
	o.dslots = dslots[:0]
	if processed != len(dslots) {
		return math.Inf(1), ErrDeadlock
	}
	return ans, nil
}

// Evaluate computes E(q) for "transaction t asks mode m on file f" against
// the base, without touching the graph: the overlay analogue of the
// package-level Evaluate, returning a bitwise-identical result. Safe to call
// from many overlays concurrently as long as the base is current (built
// since the last graph mutation) and nothing mutates the graph underneath.
func (o *Overlay) Evaluate(b *EvalBase, t *model.Txn, f model.FileID, m model.Mode) float64 {
	g := b.g
	pairs, err := g.GrantOrientations(t, f, m)
	if err != nil {
		return math.Inf(1)
	}
	o.reset(b)
	if err := o.applyOrientations(b, pairs); err != nil {
		return math.Inf(1)
	}
	v, err := o.criticalPath(b)
	if err != nil {
		return math.Inf(1)
	}
	return v
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
