package wtpg

import (
	"fmt"
	"math"
	"sort"

	"batchsched/internal/model"
)

// ChainForm reports whether the WTPG is in "chain form": every transaction
// conflicts only with its adjacent nodes, i.e. the undirected conflict graph
// is a disjoint union of simple paths (max degree 2, no cycles). GOW only
// admits transactions that keep the graph in this form, because the optimal
// serializable order is then computable in polynomial time.
func (g *Graph) ChainForm() bool {
	// Degree check.
	for _, id := range g.order {
		if len(g.adj[id]) > 2 {
			return false
		}
	}
	// Cycle check on the undirected conflict graph: a forest has
	// |edges| = |nodes| - |components| for every component; equivalently a
	// component with as many edges as nodes contains a cycle.
	visited := make(map[int64]bool)
	for _, start := range g.order {
		if visited[start] {
			continue
		}
		nodes, edges := 0, 0
		stack := []int64{start}
		visited[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nodes++
			for u := range g.adj[v] {
				edges++ // counted from both sides; halve below
				if !visited[u] {
					visited[u] = true
					stack = append(stack, u)
				}
			}
		}
		if edges/2 >= nodes && nodes > 1 {
			return false
		}
	}
	return true
}

// ChainFormAfterAdd reports whether the graph would still be in chain form
// after adding t (GOW's Phase 0 admission test). The graph is not modified.
// Assuming the graph is currently in chain form, adding t keeps it so iff t
// conflicts with at most two residents, each prospective neighbor currently
// has degree <= 1 (it would become an interior node), and — when there are
// two neighbors — they lie in different components (joining the same path's
// two endpoints would close a cycle). This is O(active + component) and
// runs on every admission retry, so it must not clone the graph.
func (g *Graph) ChainFormAfterAdd(t *model.Txn) bool {
	var nbrs []int64
	for _, id := range g.order {
		if declConflict(t, g.txns[id]) {
			nbrs = append(nbrs, id)
			if len(nbrs) > 2 {
				return false
			}
		}
	}
	for _, u := range nbrs {
		if len(g.adj[u]) > 1 {
			return false
		}
	}
	if len(nbrs) == 2 && g.sameComponent(nbrs[0], nbrs[1]) {
		return false
	}
	return true
}

// sameComponent reports whether x and y lie in the same undirected
// component (the graph is a union of paths, so this walks at most one
// path).
func (g *Graph) sameComponent(x, y int64) bool {
	seen := map[int64]bool{x: true}
	stack := []int64{x}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == y {
			return true
		}
		for u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return false
}

// Plan is a full serializable order W for a chain-form WTPG: an orientation
// of every edge, chosen to minimize the critical path from T0 to Tf.
type Plan struct {
	// Value is the critical-path length of the WTPG under W.
	Value float64
	pred  map[[2]int64]int64 // canonical (a,b) -> id of the predecessor endpoint
}

// Precedes reports whether W orders from before to. The second result is
// false when the plan has no edge between the pair.
func (p *Plan) Precedes(from, to int64) (bool, bool) {
	a, b := pairKey(from, to)
	w, ok := p.pred[[2]int64{a, b}]
	if !ok {
		return false, false
	}
	return w == from, true
}

// Edges returns the number of oriented pairs in the plan.
func (p *Plan) Edges() int { return len(p.pred) }

// OptimalChainOrientation computes the full serializable order W that
// minimizes the critical path of a chain-form WTPG (GOW's Phase 2),
// respecting already-determined precedence edges. It runs in O(m² log m)
// per chain component via a threshold search over the O(m²) candidate
// critical-path values with an O(m) feasibility DP — matching the paper's
// "O((Number of Nodes)²)" bound up to the log factor.
//
// It returns an error when the graph is not in chain form.
func (g *Graph) OptimalChainOrientation(w0 T0Weight) (*Plan, error) {
	if !g.ChainForm() {
		return nil, fmt.Errorf("wtpg: graph is not in chain form")
	}
	plan := &Plan{pred: make(map[[2]int64]int64)}
	visited := make(map[int64]bool)
	for _, start := range g.order {
		if visited[start] {
			continue
		}
		comp := g.pathComponent(start)
		for _, id := range comp {
			visited[id] = true
		}
		value := g.solveChain(comp, w0, plan)
		if value > plan.Value {
			plan.Value = value
		}
	}
	return plan, nil
}

// pathComponent returns the nodes of start's component in path order,
// beginning at the endpoint with the smaller id (for determinism). For a
// singleton it returns just the node.
func (g *Graph) pathComponent(start int64) []int64 {
	// Collect the component.
	var nodes []int64
	seen := map[int64]bool{start: true}
	stack := []int64{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes = append(nodes, v)
		for u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	if len(nodes) == 1 {
		return nodes
	}
	// Find endpoints (degree 1 within the component; the component is a path).
	var endpoints []int64
	for _, v := range nodes {
		if len(g.adj[v]) == 1 {
			endpoints = append(endpoints, v)
		}
	}
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })
	// Walk the path from the smallest endpoint.
	ordered := make([]int64, 0, len(nodes))
	prev := int64(-1)
	cur := endpoints[0]
	for {
		ordered = append(ordered, cur)
		next := int64(-1)
		for u := range g.adj[cur] {
			if u != prev && seen[u] {
				next = u
				break
			}
		}
		if next == -1 {
			break
		}
		prev, cur = cur, next
	}
	return ordered
}

// chainEdge is one edge of a path component in walk order.
type chainEdge struct {
	f, b  float64 // weight oriented forward (v_i -> v_{i+1}) / backward
	fixed Dir     // Undetermined if free; AToB meaning "forward" here, BToA "backward"
}

// solveChain minimizes the critical path of one path component and records
// the chosen orientation into plan. It returns the component's minimal
// critical-path value.
func (g *Graph) solveChain(comp []int64, w0 T0Weight, plan *Plan) float64 {
	m := len(comp)
	r := make([]float64, m)
	maxR := 0.0
	for i, id := range comp {
		r[i] = w0(g.txns[id])
		if r[i] > maxR {
			maxR = r[i]
		}
	}
	if m == 1 {
		return maxR
	}
	edges := make([]chainEdge, m-1)
	for i := 0; i < m-1; i++ {
		e, _ := g.edgeBetween(comp[i], comp[i+1])
		var ce chainEdge
		if comp[i] == e.a {
			ce.f, ce.b = e.wAB, e.wBA
			ce.fixed = e.dir
		} else {
			ce.f, ce.b = e.wBA, e.wAB
			switch e.dir {
			case AToB:
				ce.fixed = BToA
			case BToA:
				ce.fixed = AToB
			default:
				ce.fixed = Undetermined
			}
		}
		edges[i] = ce
	}

	// Candidate critical values: every r_s, every forward contiguous sum
	// r_s + Σ f, every backward contiguous sum r_s + Σ b.
	cands := append([]float64(nil), r...)
	for s := 0; s < m; s++ {
		sum := 0.0
		for j := s; j < m-1; j++ {
			sum += edges[j].f
			cands = append(cands, r[s]+sum)
		}
		sum = 0.0
		for i := s - 1; i >= 0; i-- {
			sum += edges[i].b
			cands = append(cands, r[s]+sum)
		}
	}
	sort.Float64s(cands)
	cands = dedupFloats(cands)
	// Binary search the smallest feasible candidate >= maxR.
	lo := sort.SearchFloat64s(cands, maxR)
	hi := len(cands) - 1
	// The largest candidate is always feasible (it bounds every run value).
	for lo < hi {
		mid := (lo + hi) / 2
		if feasible, _ := chainFeasible(r, edges, cands[mid]); feasible {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	value := cands[lo]
	_, dirs := chainFeasible(r, edges, value)
	for i, forward := range dirs {
		a, b := pairKey(comp[i], comp[i+1])
		winner := comp[i]
		if !forward {
			winner = comp[i+1]
		}
		plan.pred[[2]int64{a, b}] = winner
	}
	return value
}

// chainFeasible decides whether an orientation of the free edges exists such
// that every directed run's path value stays <= x, and returns one such
// orientation (true = forward) when it does.
func chainFeasible(r []float64, edges []chainEdge, x float64) (bool, []bool) {
	for _, ri := range r {
		if ri > x {
			return false, nil
		}
	}
	const inf = math.MaxFloat64
	n := len(edges)
	// sf[i]: minimal open forward-run value with edge i forward; sb[i]:
	// minimal open backward-run weight-sum with edge i backward.
	sf := make([]float64, n)
	sb := make([]float64, n)
	// fromF[i] records whether state (i, dir) was reached from a forward
	// state at i-1 (used for reconstruction).
	fromFf := make([]bool, n)
	fromFb := make([]bool, n)
	for i := 0; i < n; i++ {
		sf[i], sb[i] = inf, inf
		allowF := edges[i].fixed != BToA
		allowB := edges[i].fixed != AToB
		if allowF {
			base := r[i] + edges[i].f
			var best float64 = inf
			fromF := false
			if i == 0 {
				best = base
			} else {
				if sb[i-1] < inf {
					best = base
				}
				if sf[i-1] < inf {
					v := sf[i-1] + edges[i].f
					if base > v {
						v = base
					}
					if v < best {
						best = v
						fromF = true
					}
				}
			}
			if best <= x {
				sf[i] = best
				fromFf[i] = fromF
			}
		}
		if allowB {
			var best float64 = inf
			fromF := false
			if i == 0 {
				best = edges[i].b
			} else {
				if sf[i-1] < inf {
					best = edges[i].b
					fromF = true
				}
				if sb[i-1] < inf {
					v := sb[i-1] + edges[i].b
					if v < best {
						best = v
						fromF = false
					}
				}
			}
			if best < inf && r[i+1]+best <= x {
				sb[i] = best
				fromFb[i] = fromF
			}
		}
		if sf[i] == inf && sb[i] == inf {
			return false, nil
		}
	}
	if n == 0 {
		return true, nil
	}
	// Reconstruct.
	dirs := make([]bool, n)
	forward := sf[n-1] < inf
	for i := n - 1; i >= 0; i-- {
		dirs[i] = forward
		if forward {
			forward = fromFf[i]
		} else {
			forward = fromFb[i]
		}
	}
	return true, dirs
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
