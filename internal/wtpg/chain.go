package wtpg

import (
	"fmt"
	"math"
	"sort"

	"batchsched/internal/model"
)

// resetBools clears and resizes a slot-indexed scratch marker.
func resetBools(buf *[]bool, n int) []bool {
	b := *buf
	if cap(b) < n {
		b = make([]bool, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = false
		}
	}
	*buf = b
	return b
}

// resetFloats resizes a scratch float slice without clearing (callers
// overwrite every element).
func resetFloats(buf *[]float64, n int) []float64 {
	b := *buf
	if cap(b) < n {
		b = make([]float64, n)
	} else {
		b = b[:n]
	}
	*buf = b
	return b
}

// ChainForm reports whether the WTPG is in "chain form": every transaction
// conflicts only with its adjacent nodes, i.e. the undirected conflict graph
// is a disjoint union of simple paths (max degree 2, no cycles). GOW only
// admits transactions that keep the graph in this form, because the optimal
// serializable order is then computable in polynomial time.
func (g *Graph) ChainForm() bool {
	// Degree check (slot order: the outcome is order-independent).
	for s, lv := range g.live {
		if lv && len(g.nbrs[s]) > 2 {
			return false
		}
	}
	// Cycle check on the undirected conflict graph: a forest has
	// |edges| = |nodes| - |components| for every component; equivalently a
	// component with as many edges as nodes contains a cycle.
	visited := resetBools(&g.visited, len(g.ids))
	for ss, lv := range g.live {
		if !lv || visited[ss] {
			continue
		}
		nodes, edges := 0, 0
		g.stack = append(g.stack[:0], ss)
		visited[ss] = true
		for len(g.stack) > 0 {
			v := g.stack[len(g.stack)-1]
			g.stack = g.stack[:len(g.stack)-1]
			nodes++
			for _, e := range g.nbrs[v] {
				edges++ // counted from both sides; halve below
				u := e.sa
				if u == v {
					u = e.sb
				}
				if !visited[u] {
					visited[u] = true
					g.stack = append(g.stack, u)
				}
			}
		}
		if edges/2 >= nodes && nodes > 1 {
			return false
		}
	}
	return true
}

// ChainFormAfterAdd reports whether the graph would still be in chain form
// after adding t (GOW's Phase 0 admission test). The graph is not modified.
// Assuming the graph is currently in chain form, adding t keeps it so iff t
// conflicts with at most two residents, each prospective neighbor currently
// has degree <= 1 (it would become an interior node), and — when there are
// two neighbors — they lie in different components (joining the same path's
// two endpoints would close a cycle). This is O(active + component) and
// runs on every admission retry, so it must not clone the graph.
func (g *Graph) ChainFormAfterAdd(t *model.Txn) bool {
	return g.chainFormAfterAdd(t, &g.mark, &g.stack)
}

// AddCheck carries the scratch of a read-only admission check so concurrent
// prescreen workers (sched's AdmitScreener) can each run
// ChainFormAfterAddWith without racing on the graph's own scratch buffers.
type AddCheck struct {
	mark  []bool
	stack []int
}

// ChainFormAfterAddWith is ChainFormAfterAdd using caller-owned scratch. It
// only reads the graph, so distinct AddChecks may run concurrently — as long
// as each candidate is tested by exactly one worker (the check lazily warms
// the candidate's declared-need caches).
func (g *Graph) ChainFormAfterAddWith(t *model.Txn, ck *AddCheck) bool {
	return g.chainFormAfterAdd(t, &ck.mark, &ck.stack)
}

func (g *Graph) chainFormAfterAdd(t *model.Txn, markBuf *[]bool, stackBuf *[]int) bool {
	var nbrs [2]int64
	n := 0
	// Slot order, not insertion order: the outcome (a set test) is
	// order-independent, and the slot scan needs no map lookups.
	for s, u := range g.txnAt {
		if !g.live[s] {
			continue
		}
		if declConflict(t, u) {
			if n == 2 {
				return false
			}
			nbrs[n] = u.ID
			n++
		}
	}
	for _, u := range nbrs[:n] {
		if len(g.nbrs[g.slots[u]]) > 1 {
			return false
		}
	}
	if n == 2 && g.sameComponentWith(nbrs[0], nbrs[1], markBuf, stackBuf) {
		return false
	}
	return true
}

// sameComponent reports whether x and y lie in the same undirected
// component (the graph is a union of paths, so this walks at most one
// path).
func (g *Graph) sameComponent(x, y int64) bool {
	return g.sameComponentWith(x, y, &g.mark, &g.stack)
}

func (g *Graph) sameComponentWith(x, y int64, markBuf *[]bool, stackBuf *[]int) bool {
	sx, sy := g.slots[x], g.slots[y]
	mark := resetBools(markBuf, len(g.ids))
	stack := append((*stackBuf)[:0], sx)
	mark[sx] = true
	defer func() { *stackBuf = stack[:0] }()
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == sy {
			return true
		}
		for _, e := range g.nbrs[v] {
			u := e.sa
			if u == v {
				u = e.sb
			}
			if !mark[u] {
				mark[u] = true
				stack = append(stack, u)
			}
		}
	}
	return false
}

// Plan is a full serializable order W for a chain-form WTPG: an orientation
// of every edge, chosen to minimize the critical path from T0 to Tf. A Plan
// can be reused across OptimalChainOrientationInto calls; its edge storage
// is a sorted slice, so refilling it allocates nothing at steady state.
type Plan struct {
	// Value is the critical-path length of the WTPG under W.
	Value float64
	pred  []planEdge // sorted by (a, b)
}

// planEdge records the chosen predecessor for one canonical pair (a < b).
type planEdge struct {
	a, b, winner int64
}

func (p *Plan) reset() {
	p.Value = 0
	p.pred = p.pred[:0]
}

// sortPred orders pred by (a, b); insertion sort keeps it reflection- and
// allocation-free (plans hold at most one edge per active transaction).
func (p *Plan) sortPred() {
	es := p.pred
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && (es[j].a > e.a || (es[j].a == e.a && es[j].b > e.b)) {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// Precedes reports whether W orders from before to. The second result is
// false when the plan has no edge between the pair.
func (p *Plan) Precedes(from, to int64) (bool, bool) {
	a, b := pairKey(from, to)
	i := sort.Search(len(p.pred), func(i int) bool {
		pe := &p.pred[i]
		return pe.a > a || (pe.a == a && pe.b >= b)
	})
	if i < len(p.pred) && p.pred[i].a == a && p.pred[i].b == b {
		return p.pred[i].winner == from, true
	}
	return false, false
}

// Edges returns the number of oriented pairs in the plan.
func (p *Plan) Edges() int { return len(p.pred) }

// chainScratch holds the per-component working arrays of the chain
// optimizer, reused across calls.
type chainScratch struct {
	nodes  []int   // unordered component slots
	path   []*edge // path[i] joins comp[i] and comp[i+1]
	r      []float64
	edges  []chainEdge
	cands  []float64
	sf, sb []float64
	fromFf []bool
	fromFb []bool
	dirs   []bool
}

// OptimalChainOrientation computes the full serializable order W that
// minimizes the critical path of a chain-form WTPG (GOW's Phase 2),
// respecting already-determined precedence edges. It runs in O(m² log m)
// per chain component via a threshold search over the O(m²) candidate
// critical-path values with an O(m) feasibility DP — matching the paper's
// "O((Number of Nodes)²)" bound up to the log factor.
//
// It returns an error when the graph is not in chain form.
func (g *Graph) OptimalChainOrientation(w0 T0Weight) (*Plan, error) {
	plan := &Plan{}
	if err := g.OptimalChainOrientationInto(w0, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// OptimalChainOrientationInto is OptimalChainOrientation writing into a
// caller-owned Plan, which per-request callers (GOW) keep and reuse so the
// evaluation allocates nothing at steady state.
func (g *Graph) OptimalChainOrientationInto(w0 T0Weight, plan *Plan) error {
	if !g.ChainForm() {
		return fmt.Errorf("wtpg: graph is not in chain form")
	}
	plan.reset()
	// Slot order: components are disjoint and the plan is sorted at the
	// end, so the visit order cannot affect the result.
	visited := resetBools(&g.visited, len(g.ids))
	for start, lv := range g.live {
		if !lv || visited[start] {
			continue
		}
		comp := g.pathComponent(start)
		for _, s := range comp {
			visited[s] = true
		}
		var value float64
		value, plan.pred = g.solveChain(&g.cs, comp, g.cs.path, w0, plan.pred)
		if value > plan.Value {
			plan.Value = value
		}
	}
	plan.sortPred()
	return nil
}

// pathComponent returns the slots of start's component in path order,
// beginning at the endpoint with the smaller transaction ID (for
// determinism), and records the edge joining each consecutive pair in
// g.cs.path. For a singleton it returns just the node. The returned slice
// and g.cs.path are scratch, valid until the next call.
func (g *Graph) pathComponent(start int) []int {
	// Collect the component.
	mark := resetBools(&g.mark, len(g.ids))
	nodes := g.cs.nodes[:0]
	mark[start] = true
	g.stack = append(g.stack[:0], start)
	for len(g.stack) > 0 {
		v := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		nodes = append(nodes, v)
		for _, e := range g.nbrs[v] {
			u := e.sa
			if u == v {
				u = e.sb
			}
			if !mark[u] {
				mark[u] = true
				g.stack = append(g.stack, u)
			}
		}
	}
	g.cs.nodes = nodes
	g.cs.path = g.cs.path[:0]
	if len(nodes) == 1 {
		return nodes
	}
	// Find endpoints (degree 1 within the component; the component is a
	// path) and walk from the one with the smallest ID, capturing the edge
	// taken at each hop.
	first := -1
	for _, v := range nodes {
		if len(g.nbrs[v]) == 1 && (first < 0 || g.ids[v] < g.ids[first]) {
			first = v
		}
	}
	ordered := g.comp[:0]
	path := g.cs.path[:0]
	prev := -1
	cur := first
	for {
		ordered = append(ordered, cur)
		next := -1
		var via *edge
		for _, e := range g.nbrs[cur] {
			u := e.sa
			if u == cur {
				u = e.sb
			}
			if u != prev {
				next, via = u, e
				break
			}
		}
		if next == -1 {
			break
		}
		path = append(path, via)
		prev, cur = cur, next
	}
	g.comp = ordered
	g.cs.path = path
	return ordered
}

// chainEdge is one edge of a path component in walk order.
type chainEdge struct {
	f, b  float64 // weight oriented forward (v_i -> v_{i+1}) / backward
	fixed Dir     // Undetermined if free; AToB meaning "forward" here, BToA "backward"
}

// solveChain minimizes the critical path of one path component (slots comp
// in path order, joined by path[i] between comp[i] and comp[i+1]) and
// appends the chosen orientation — exactly len(comp)-1 entries — to pred,
// returning the component's minimal critical-path value and the extended
// slice. It only reads the graph and writes cs, so distinct scratches may
// solve distinct components concurrently.
func (g *Graph) solveChain(cs *chainScratch, comp []int, path []*edge, w0 T0Weight, pred []planEdge) (float64, []planEdge) {
	m := len(comp)
	r := resetFloats(&cs.r, m)
	maxR := 0.0
	for i, s := range comp {
		r[i] = w0(g.txnAt[s])
		if r[i] > maxR {
			maxR = r[i]
		}
	}
	if m == 1 {
		return maxR, pred
	}
	edges := cs.edges[:0]
	for i := 0; i < m-1; i++ {
		e := path[i]
		var ce chainEdge
		if comp[i] == e.sa {
			ce.f, ce.b = e.wAB, e.wBA
			ce.fixed = e.dir
		} else {
			ce.f, ce.b = e.wBA, e.wAB
			switch e.dir {
			case AToB:
				ce.fixed = BToA
			case BToA:
				ce.fixed = AToB
			default:
				ce.fixed = Undetermined
			}
		}
		edges = append(edges, ce)
	}
	cs.edges = edges

	// Candidate critical values: every r_s, every forward contiguous sum
	// r_s + Σ f, every backward contiguous sum r_s + Σ b.
	cands := append(cs.cands[:0], r...)
	for s := 0; s < m; s++ {
		sum := 0.0
		for j := s; j < m-1; j++ {
			sum += edges[j].f
			cands = append(cands, r[s]+sum)
		}
		sum = 0.0
		for i := s - 1; i >= 0; i-- {
			sum += edges[i].b
			cands = append(cands, r[s]+sum)
		}
	}
	sortFloats(cands)
	cands = dedupFloats(cands)
	cs.cands = cands
	// Binary search the smallest feasible candidate >= maxR.
	lo := sort.SearchFloat64s(cands, maxR)
	hi := len(cands) - 1
	// The largest candidate is always feasible (it bounds every run value).
	for lo < hi {
		mid := (lo + hi) / 2
		if feasible, _ := chainFeasible(cs, r, edges, cands[mid]); feasible {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	value := cands[lo]
	_, dirs := chainFeasible(cs, r, edges, value)
	for i, forward := range dirs {
		a, b := pairKey(g.ids[comp[i]], g.ids[comp[i+1]])
		winner := g.ids[comp[i]]
		if !forward {
			winner = g.ids[comp[i+1]]
		}
		pred = append(pred, planEdge{a: a, b: b, winner: winner})
	}
	return value, pred
}

// chainFeasible decides whether an orientation of the free edges exists such
// that every directed run's path value stays <= x, and returns one such
// orientation (true = forward) when it does. The returned slice is scratch,
// valid until the next call.
func chainFeasible(cs *chainScratch, r []float64, edges []chainEdge, x float64) (bool, []bool) {
	for _, ri := range r {
		if ri > x {
			return false, nil
		}
	}
	const inf = math.MaxFloat64
	n := len(edges)
	// sf[i]: minimal open forward-run value with edge i forward; sb[i]:
	// minimal open backward-run weight-sum with edge i backward.
	sf := resetFloats(&cs.sf, n)
	sb := resetFloats(&cs.sb, n)
	// fromF[i] records whether state (i, dir) was reached from a forward
	// state at i-1 (used for reconstruction).
	fromFf := resetBools(&cs.fromFf, n)
	fromFb := resetBools(&cs.fromFb, n)
	for i := 0; i < n; i++ {
		sf[i], sb[i] = inf, inf
		allowF := edges[i].fixed != BToA
		allowB := edges[i].fixed != AToB
		if allowF {
			base := r[i] + edges[i].f
			var best float64 = inf
			fromF := false
			if i == 0 {
				best = base
			} else {
				if sb[i-1] < inf {
					best = base
				}
				if sf[i-1] < inf {
					v := sf[i-1] + edges[i].f
					if base > v {
						v = base
					}
					if v < best {
						best = v
						fromF = true
					}
				}
			}
			if best <= x {
				sf[i] = best
				fromFf[i] = fromF
			}
		}
		if allowB {
			var best float64 = inf
			fromF := false
			if i == 0 {
				best = edges[i].b
			} else {
				if sf[i-1] < inf {
					best = edges[i].b
					fromF = true
				}
				if sb[i-1] < inf {
					v := sb[i-1] + edges[i].b
					if v < best {
						best = v
						fromF = false
					}
				}
			}
			if best < inf && r[i+1]+best <= x {
				sb[i] = best
				fromFb[i] = fromF
			}
		}
		if sf[i] == inf && sb[i] == inf {
			return false, nil
		}
	}
	if n == 0 {
		return true, nil
	}
	// Reconstruct.
	dirs := resetBools(&cs.dirs, n)
	forward := sf[n-1] < inf
	for i := n - 1; i >= 0; i-- {
		dirs[i] = forward
		if forward {
			forward = fromFf[i]
		} else {
			forward = fromFb[i]
		}
	}
	return true, dirs
}

// sortFloats sorts ascending; components are short, so an insertion sort
// avoids sort.Float64s' partition machinery on the common case.
func sortFloats(xs []float64) {
	if len(xs) > 48 {
		sort.Float64s(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
