package wtpg

import (
	"math"
	"math/rand"
	"testing"

	"batchsched/internal/model"
)

// chainTxns builds a path of n transactions T1-T2-...-Tn where adjacent
// pairs conflict on a dedicated file. Node i (1-based) writes file (i-1)
// with cost x[i-1] and file i with cost y[i-1]; file k is shared by nodes k
// and k+1. Endpoints skip their missing side.
func chainTxns(x, y []float64) []*model.Txn {
	n := len(x)
	out := make([]*model.Txn, n)
	for i := 0; i < n; i++ {
		var steps []model.Step
		if i > 0 {
			steps = append(steps, model.Step{File: model.FileID(i - 1), Write: true, LockMode: model.X, Cost: x[i], DeclaredCost: x[i]})
		}
		if i < n-1 {
			steps = append(steps, model.Step{File: model.FileID(i), Write: true, LockMode: model.X, Cost: y[i], DeclaredCost: y[i]})
		}
		out[i] = model.NewTxn(int64(i+1), 0, steps)
	}
	return out
}

func TestChainFormShapes(t *testing.T) {
	files := map[string]model.FileID{"u": 0, "v": 1, "w": 2}

	// Path T1-T2-T3: chain form.
	g := New()
	g.Add(txn(1, "w(u:1)", files))
	g.Add(txn(2, "w(u:1)->w(v:1)", files))
	g.Add(txn(3, "w(v:1)", files))
	if !g.ChainForm() {
		t.Error("path must be chain form")
	}

	// Adding a triangle-closing transaction breaks chain form (cycle).
	closer := txn(4, "w(u:1)->w(v:1)", files)
	if g.ChainFormAfterAdd(closer) {
		t.Error("closing a cycle must break chain form")
	}
	if g.Len() != 3 {
		t.Error("ChainFormAfterAdd must not mutate the graph")
	}

	// A star (degree 3 at the hub) is not chain form.
	h := New()
	h.Add(txn(1, "w(u:1)->w(v:1)->w(w:1)", files))
	h.Add(txn(2, "w(u:1)", files))
	h.Add(txn(3, "w(v:1)", files))
	if !h.ChainForm() {
		t.Error("hub with degree 2 is still chain form")
	}
	h.Add(txn(4, "w(w:1)", files))
	if h.ChainForm() {
		t.Error("degree-3 hub must not be chain form")
	}

	// Disjoint paths and singletons are chain form.
	d := New()
	d.Add(txn(1, "w(u:1)", files))
	d.Add(txn(2, "w(u:1)", files))
	d.Add(txn(3, "w(v:1)", files))
	d.Add(txn(4, "w(v:1)", files))
	d.Add(txn(5, "w(w:1)", files))
	if !d.ChainForm() {
		t.Error("disjoint paths plus singleton must be chain form")
	}

	// Empty graph is trivially chain form.
	if !New().ChainForm() {
		t.Error("empty graph must be chain form")
	}
}

func TestChainFormTwoTxnCycleIsFine(t *testing.T) {
	// Two transactions conflicting on two files share ONE edge (conflicts
	// merge per pair), so they are still a path of length 1.
	files := map[string]model.FileID{"u": 0, "v": 1}
	g := New()
	g.Add(txn(1, "w(u:1)->w(v:1)", files))
	g.Add(txn(2, "w(u:1)->w(v:1)", files))
	if !g.ChainForm() {
		t.Error("a single pair conflicting on two files is chain form")
	}
}

// TestFig3OptimalOrder encodes the worked example of the paper's Fig. 3: in
// the chain T1-T2-T3 the order W = {T1->T2, T3->T2} yields the shortest
// critical path ({T0->T1->T2}).
func TestFig3OptimalOrder(t *testing.T) {
	files := map[string]model.FileID{"u": 0, "v": 1}
	t1 := txn(1, "w(u:5)", files)
	t2 := txn(2, "w(u:1)->w(v:1)", files)
	t3 := txn(3, "w(v:6)", files)
	g := New()
	g.Add(t1)
	g.Add(t2)
	g.Add(t3)
	// Weights: w(T1->T2)=2, w(T2->T1)=5, w(T3->T2)=1, w(T2->T3)=6.
	for _, c := range []struct {
		from, to int64
		want     float64
	}{{1, 2, 2}, {2, 1, 5}, {3, 2, 1}, {2, 3, 6}} {
		if w, _ := g.EdgeWeight(c.from, c.to); w != c.want {
			t.Fatalf("w(T%d->T%d) = %g, want %g", c.from, c.to, w, c.want)
		}
	}
	r := map[int64]float64{1: 3, 2: 4, 3: 2}
	w0 := func(tx *model.Txn) float64 { return r[tx.ID] }

	plan, err := g.OptimalChainOrientation(w0)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: T1->T2 and T3->T2, critical path T0->T1->T2 = 3+2 = 5.
	if plan.Value != 5 {
		t.Errorf("plan value = %g, want 5", plan.Value)
	}
	if ok, found := plan.Precedes(1, 2); !found || !ok {
		t.Error("W must orient T1->T2")
	}
	if ok, found := plan.Precedes(3, 2); !found || !ok {
		t.Error("W must orient T3->T2")
	}
	// Paper: a request by T2 conflicting with T1 is inconsistent with W.
	if ok, _ := plan.Precedes(2, 1); ok {
		t.Error("T2->T1 must be inconsistent with W")
	}
	if _, found := plan.Precedes(1, 3); found {
		t.Error("no edge between T1 and T3")
	}
	if plan.Edges() != 2 {
		t.Errorf("plan edges = %d, want 2", plan.Edges())
	}
}

func TestOptimalChainRespectsFixedEdges(t *testing.T) {
	files := map[string]model.FileID{"u": 0, "v": 1}
	t1 := txn(1, "w(u:5)", files)
	t2 := txn(2, "w(u:1)->w(v:1)", files)
	t3 := txn(3, "w(v:6)", files)
	g := New()
	g.Add(t1)
	g.Add(t2)
	g.Add(t3)
	// Force the bad direction T2->T1; the optimizer must keep it.
	if err := g.Orient(2, 1); err != nil {
		t.Fatal(err)
	}
	r := map[int64]float64{1: 3, 2: 4, 3: 2}
	plan, err := g.OptimalChainOrientation(func(tx *model.Txn) float64 { return r[tx.ID] })
	if err != nil {
		t.Fatal(err)
	}
	if ok, found := plan.Precedes(2, 1); !found || !ok {
		t.Error("plan must keep the fixed edge T2->T1")
	}
	// With T2->T1 fixed, the path starting at T2 (r2 + w(T2->T1) = 4+5 = 9)
	// is unavoidable. Orienting T3->T2 adds max(r3+1+5)=8 < 9; orienting
	// T2->T3 adds r2+6=10. So the optimum is 9.
	if plan.Value != 9 {
		t.Errorf("plan value = %g, want 9", plan.Value)
	}
}

func TestOptimalChainErrorsOffChainForm(t *testing.T) {
	files := map[string]model.FileID{"u": 0, "v": 1, "w": 2}
	g := New()
	g.Add(txn(1, "w(u:1)->w(v:1)->w(w:1)", files))
	g.Add(txn(2, "w(u:1)", files))
	g.Add(txn(3, "w(v:1)", files))
	g.Add(txn(4, "w(w:1)", files))
	if _, err := g.OptimalChainOrientation(RemainingDemand); err == nil {
		t.Fatal("non-chain graph must error")
	}
}

func TestOptimalChainSingletons(t *testing.T) {
	files := map[string]model.FileID{"u": 0, "v": 1}
	g := New()
	g.Add(txn(1, "w(u:3)", files))
	g.Add(txn(2, "w(v:7)", files))
	plan, err := g.OptimalChainOrientation(RemainingDemand)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Value != 7 {
		t.Errorf("value = %g, want 7 (max T0 weight)", plan.Value)
	}
	if plan.Edges() != 0 {
		t.Errorf("edges = %d, want 0", plan.Edges())
	}
}

// bruteForceOptimal enumerates every orientation of the undetermined edges
// and returns the minimal critical-path value.
func bruteForceOptimal(g *Graph, w0 T0Weight) float64 {
	var free []*edge
	for _, e := range g.edgeSet() {
		if e.dir == Undetermined {
			free = append(free, e)
		}
	}
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == len(free) {
			v, err := g.CriticalPath(w0)
			if err == nil && v < best {
				best = v
			}
			return
		}
		free[i].dir = AToB
		rec(i + 1)
		free[i].dir = BToA
		rec(i + 1)
		free[i].dir = Undetermined
	}
	rec(0)
	return best
}

// Property: the chain optimizer matches brute force on random chains, with
// and without pre-oriented edges.
func TestOptimalChainMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(9))
			y[i] = float64(rng.Intn(9))
		}
		txns := chainTxns(x, y)
		g := New()
		for _, tx := range txns {
			g.Add(tx)
		}
		// Randomly fix some edges (respecting acyclicity: on a path any
		// orientation set is acyclic, so Orient never fails here).
		for i := 0; i < n-1; i++ {
			switch rng.Intn(3) {
			case 0:
				if err := g.Orient(txns[i].ID, txns[i+1].ID); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := g.Orient(txns[i+1].ID, txns[i].ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		r := make(map[int64]float64)
		for _, tx := range txns {
			r[tx.ID] = float64(rng.Intn(12))
		}
		w0 := func(tx *model.Txn) float64 { return r[tx.ID] }

		want := bruteForceOptimal(g, w0)
		plan, err := g.OptimalChainOrientation(w0)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Value != want {
			t.Fatalf("trial %d: DP value %g != brute force %g (n=%d x=%v y=%v r=%v)",
				trial, plan.Value, want, n, x, y, r)
		}
		// The plan's own orientation must realize its value.
		check := g.Clone()
		for i := 0; i < n-1; i++ {
			a, b := txns[i].ID, txns[i+1].ID
			if ok, found := plan.Precedes(a, b); found && ok {
				if err := check.Orient(a, b); err != nil {
					t.Fatal(err)
				}
			} else if found {
				if err := check.Orient(b, a); err != nil {
					t.Fatal(err)
				}
			}
		}
		v, err := check.CriticalPath(w0)
		if err != nil {
			t.Fatal(err)
		}
		if v != plan.Value {
			t.Fatalf("trial %d: plan value %g but realized critical path %g", trial, plan.Value, v)
		}
	}
}

func TestChainFormAfterAddComponents(t *testing.T) {
	// Two disjoint pairs: A-B conflict on x, C-D conflict on y.
	files := map[string]model.FileID{"x": 0, "y": 1, "p": 2, "q": 3, "r": 4}
	a := txn(1, "w(x:1)->w(p:1)", files)
	b := txn(2, "w(x:1)->w(q:1)", files)
	c := txn(3, "w(y:1)->w(r:1)", files)
	d := txn(4, "w(y:1)", files)
	g := New()
	g.Add(a)
	g.Add(b)
	g.Add(c)
	g.Add(d)
	if !g.ChainForm() {
		t.Fatal("two disjoint pairs are chain form")
	}
	// Bridging different components (A via p, C via r) keeps chain form:
	// it joins the two paths end to end.
	bridge := txn(5, "w(p:1)->w(r:1)", files)
	if !g.ChainFormAfterAdd(bridge) {
		t.Error("bridging two components at their endpoints must keep chain form")
	}
	// Joining two nodes of the SAME component (A via p, B via q) closes a
	// cycle: refused via the same-component test.
	closer := txn(6, "w(p:1)->w(q:1)", files)
	if g.ChainFormAfterAdd(closer) {
		t.Error("joining two endpoints of one path closes a cycle")
	}
	// Neither probe mutated the graph.
	if g.Len() != 4 {
		t.Errorf("graph mutated: len = %d", g.Len())
	}
}
