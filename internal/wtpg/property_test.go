package wtpg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"batchsched/internal/model"
)

// randTxn builds a transaction of X-write steps over the given files with
// random costs — writes everywhere so any file overlap is a conflict.
func randTxn(r *rand.Rand, id int64, files ...model.FileID) *model.Txn {
	steps := make([]model.Step, 0, len(files))
	for _, f := range files {
		c := float64(r.Intn(30)+1) / 10.0
		steps = append(steps, model.Step{File: f, Write: true, LockMode: model.X, Cost: c, DeclaredCost: c})
	}
	return model.NewTxn(id, 0, steps)
}

// dirSnapshot captures every edge's orientation state, keyed by the canonical
// (low, high) id pair.
func dirSnapshot(g *Graph) map[[2]int64]Dir {
	out := make(map[[2]int64]Dir)
	ids := g.order
	for i, x := range ids {
		for _, y := range ids[i+1:] {
			if from, _, d, ok := g.EdgeDir(x, y); ok {
				_ = from
				a, b := pairKey(x, y)
				out[[2]int64{a, b}] = d
			}
		}
	}
	return out
}

// TestOrientationClosureStaysAcyclic is the safety property behind every
// grant decision: whenever Orient accepts an orientation (no ErrDeadlock),
// the closed graph must still be a DAG — CriticalPath must never rediscover
// a cycle afterwards. And whenever Orient refuses, the graph must be exactly
// as it was (the all-or-none contract).
func TestOrientationClosureStaysAcyclic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			g := New()
			const n = 8
			for id := int64(1); id <= n; id++ {
				// 1-3 files from a pool of 4: dense, tangled conflicts.
				k := 1 + r.Intn(3)
				files := make([]model.FileID, 0, k)
				for len(files) < k {
					f := model.FileID(r.Intn(4))
					dup := false
					for _, x := range files {
						dup = dup || x == f
					}
					if !dup {
						files = append(files, f)
					}
				}
				g.Add(randTxn(r, id, files...))
			}
			for try := 0; try < 60; try++ {
				from := int64(1 + r.Intn(n))
				to := int64(1 + r.Intn(n))
				if from == to {
					continue
				}
				if _, _, _, ok := g.EdgeDir(from, to); !ok {
					continue
				}
				before := dirSnapshot(g)
				err := g.Orient(from, to)
				if err != nil {
					if err != ErrDeadlock {
						t.Fatalf("Orient(%d,%d) = %v, want nil or ErrDeadlock", from, to, err)
					}
					if got := dirSnapshot(g); !equalDirs(got, before) {
						t.Fatalf("refused Orient(%d,%d) still mutated the graph", from, to)
					}
					continue
				}
				if _, cpErr := g.CriticalPath(RemainingDemand); cpErr != nil {
					t.Fatalf("closure after Orient(%d,%d) left a cycle: %v", from, to, cpErr)
				}
			}
		})
	}
}

func equalDirs(a, b map[[2]int64]Dir) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// chainGraph builds a path T1 - T2 - ... - Tn where Ti and Ti+1 conflict on
// the dedicated file i (plus one isolated transaction, exercising singleton
// components), returning the graph and the adjacent pairs.
func chainGraph(r *rand.Rand, n int) (*Graph, [][2]int64) {
	g := New()
	for id := int64(1); id <= int64(n); id++ {
		var files []model.FileID
		if id > 1 {
			files = append(files, model.FileID(id-1))
		}
		if id < int64(n) {
			files = append(files, model.FileID(id))
		}
		if len(files) == 0 { // n == 1
			files = append(files, 0)
		}
		g.Add(randTxn(r, id, files...))
	}
	g.Add(randTxn(r, int64(n+1), model.FileID(100))) // isolated
	var pairs [][2]int64
	for id := int64(1); id < int64(n); id++ {
		pairs = append(pairs, [2]int64{id, id + 1})
	}
	return g, pairs
}

// bruteForceChainMin enumerates every orientation of the chain's edges and
// returns the smallest feasible critical-path value.
func bruteForceChainMin(t *testing.T, g *Graph, pairs [][2]int64) float64 {
	t.Helper()
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(pairs); mask++ {
		c := g.Clone()
		oriented := make([][2]int64, len(pairs))
		for k, p := range pairs {
			if mask>>k&1 == 1 {
				oriented[k] = [2]int64{p[1], p[0]}
			} else {
				oriented[k] = p
			}
		}
		if err := c.OrientAll(oriented); err != nil {
			continue // infeasible under pre-determined edges
		}
		v, err := c.CriticalPath(RemainingDemand)
		if err != nil {
			t.Fatalf("fully oriented chain has a cycle: %v", err)
		}
		if v < best {
			best = v
		}
	}
	return best
}

// TestOptimalChainRealizableAndOptimal is GOW's Phase-2 optimality property
// driven purely through the public API (chain_test.go's brute-force test
// flips edge fields directly): on random chain-form graphs of up to 7
// transactions — including a singleton component — the threshold-search
// orientation must (a) be a valid acyclic order realizing exactly its claimed
// Value via Plan.Precedes + OrientAll + CriticalPath, and (b) never be worse
// — or claim better — than exhaustive search over all 2^(n-1) orientations.
func TestOptimalChainRealizableAndOptimal(t *testing.T) {
	const eps = 1e-9
	for seed := int64(1); seed <= 25; seed++ {
		for n := 1; n <= 7; n++ {
			t.Run(fmt.Sprintf("seed%d/n%d", seed, n), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed*31 + int64(n)))
				g, pairs := chainGraph(r, n)
				if !g.ChainForm() {
					t.Fatal("constructed graph is not chain-form")
				}
				// Sometimes pre-orient one edge, as happens mid-schedule when
				// an earlier grant already fixed part of the order.
				if len(pairs) > 0 && r.Intn(2) == 0 {
					p := pairs[r.Intn(len(pairs))]
					if r.Intn(2) == 0 {
						p = [2]int64{p[1], p[0]}
					}
					if err := g.Orient(p[0], p[1]); err != nil {
						t.Fatal(err)
					}
				}
				plan, err := g.OptimalChainOrientation(RemainingDemand)
				if err != nil {
					t.Fatal(err)
				}
				// (a) The plan is a real, acyclic orientation of every chain
				// edge and its Value is the critical path it realizes.
				c := g.Clone()
				oriented := make([][2]int64, 0, len(pairs))
				for _, p := range pairs {
					before, ok := plan.Precedes(p[0], p[1])
					if !ok {
						t.Fatalf("plan has no orientation for edge %v", p)
					}
					if before {
						oriented = append(oriented, p)
					} else {
						oriented = append(oriented, [2]int64{p[1], p[0]})
					}
				}
				if err := c.OrientAll(oriented); err != nil {
					t.Fatalf("plan orientation is not a valid order: %v", err)
				}
				realized, err := c.CriticalPath(RemainingDemand)
				if err != nil {
					t.Fatalf("plan orientation leaves a cycle: %v", err)
				}
				if math.Abs(realized-plan.Value) > eps {
					t.Fatalf("plan claims Value %g but realizes %g", plan.Value, realized)
				}
				// (b) Optimality against brute force.
				best := bruteForceChainMin(t, g, pairs)
				if math.Abs(plan.Value-best) > eps {
					t.Fatalf("plan Value %g != brute-force optimum %g", plan.Value, best)
				}
			})
		}
	}
}
