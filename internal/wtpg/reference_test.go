package wtpg

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"batchsched/internal/model"
)

// refGraph is the original map-based WTPG closure, kept as an executable
// specification for the slot/bitset implementation. It recomputes
// reachability from scratch on every probe, so it is obviously correct and
// hopelessly slow — exactly what a differential oracle should be.
type refGraph struct {
	txns  map[int64]*model.Txn
	order []int64
	edges map[[2]int64]*refEdge
}

type refEdge struct {
	a, b     int64
	wAB, wBA float64
	dir      Dir
}

func newRefGraph() *refGraph {
	return &refGraph{txns: map[int64]*model.Txn{}, edges: map[[2]int64]*refEdge{}}
}

func (rg *refGraph) add(t *model.Txn) {
	for _, id := range rg.order {
		u := rg.txns[id]
		if len(conflictFiles(t, u)) == 0 {
			continue
		}
		a, b := pairKey(t.ID, u.ID)
		ta, tb := t, u
		if ta.ID != a {
			ta, tb = u, t
		}
		wAB, _ := model.ConflictWeight(tb, ta)
		wBA, _ := model.ConflictWeight(ta, tb)
		rg.edges[[2]int64{a, b}] = &refEdge{a: a, b: b, wAB: wAB, wBA: wBA}
	}
	rg.txns[t.ID] = t
	rg.order = append(rg.order, t.ID)
}

func (rg *refGraph) remove(id int64) {
	delete(rg.txns, id)
	for i, x := range rg.order {
		if x == id {
			rg.order = append(rg.order[:i], rg.order[i+1:]...)
			break
		}
	}
	for k := range rg.edges {
		if k[0] == id || k[1] == id {
			delete(rg.edges, k)
		}
	}
}

// reach reports whether a non-empty directed path of determined edges runs
// from x to y, by plain DFS over the edge map.
func (rg *refGraph) reach(x, y int64) bool {
	seen := map[int64]bool{}
	var stack []int64
	push := func(v int64) {
		for _, e := range rg.edges {
			var to int64
			switch {
			case e.dir == AToB && e.a == v:
				to = e.b
			case e.dir == BToA && e.b == v:
				to = e.a
			default:
				continue
			}
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	push(x)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == y {
			return true
		}
		push(v)
	}
	return false
}

// orientAll mirrors Graph.OrientAll: apply the batch plus the Section-3.3
// closure, all or none.
func (rg *refGraph) orientAll(pairs [][2]int64) error {
	saved := map[[2]int64]Dir{}
	for k, e := range rg.edges {
		saved[k] = e.dir
	}
	if err := rg.apply(pairs); err != nil {
		for k, d := range saved {
			rg.edges[k].dir = d
		}
		return err
	}
	return nil
}

func (rg *refGraph) apply(pairs [][2]int64) error {
	for _, p := range pairs {
		a, b := pairKey(p[0], p[1])
		e, ok := rg.edges[[2]int64{a, b}]
		if !ok {
			return fmt.Errorf("ref: no edge between %d and %d", p[0], p[1])
		}
		want := AToB
		if p[0] == e.b {
			want = BToA
		}
		if e.dir == want {
			continue
		}
		if e.dir != Undetermined {
			return ErrDeadlock
		}
		if rg.reach(p[1], p[0]) {
			return ErrDeadlock
		}
		e.dir = want
	}
	for {
		changed := false
		for _, e := range rg.edges {
			if e.dir != Undetermined {
				continue
			}
			ab := rg.reach(e.a, e.b)
			ba := rg.reach(e.b, e.a)
			switch {
			case ab && ba:
				return ErrDeadlock
			case ab:
				e.dir = AToB
				changed = true
			case ba:
				e.dir = BToA
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// criticalPath mirrors Graph.CriticalPath with a memoized DFS.
func (rg *refGraph) criticalPath(w0 T0Weight) (float64, error) {
	state := map[int64]int{} // 0 new, 1 on stack, 2 done
	best := map[int64]float64{}
	var visit func(v int64) error
	visit = func(v int64) error {
		switch state[v] {
		case 1:
			return ErrDeadlock
		case 2:
			return nil
		}
		state[v] = 1
		b := w0(rg.txns[v])
		for _, e := range rg.edges {
			var u int64
			var w float64
			switch {
			case e.dir == AToB && e.b == v:
				u, w = e.a, e.wAB
			case e.dir == BToA && e.a == v:
				u, w = e.b, e.wBA
			default:
				continue
			}
			if err := visit(u); err != nil {
				return err
			}
			if x := best[u] + w; x > b {
				b = x
			}
		}
		best[v] = b
		state[v] = 2
		return nil
	}
	var ans float64
	for _, id := range rg.order {
		if err := visit(id); err != nil {
			return math.Inf(1), err
		}
		if best[id] > ans {
			ans = best[id]
		}
	}
	return ans, nil
}

func (rg *refGraph) dirSnapshot() map[[2]int64]Dir {
	out := map[[2]int64]Dir{}
	for k, e := range rg.edges {
		out[k] = e.dir
	}
	return out
}

// TestDifferentialClosure drives the production Graph and the map-based
// reference through the same random schedule of adds, removes and
// orientation batches, and demands identical orientation closures, identical
// ErrDeadlock decisions and identical critical paths at every step. This is
// the safety net under the bitset rewrite: any divergence in the incremental
// reachability maintenance shows up here as a direction or deadlock
// mismatch.
func TestDifferentialClosure(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			g := New()
			rg := newRefGraph()
			nextID := int64(1)
			addRandom := func() {
				k := 1 + r.Intn(3)
				files := make([]model.FileID, 0, k)
				for len(files) < k {
					f := model.FileID(r.Intn(5))
					dup := false
					for _, x := range files {
						dup = dup || x == f
					}
					if !dup {
						files = append(files, f)
					}
				}
				tx := randTxn(r, nextID, files...)
				nextID++
				g.Add(tx)
				rg.add(tx)
			}
			for g.Len() < 6 {
				addRandom()
			}
			check := func(op string) {
				t.Helper()
				got, want := dirSnapshot(g), rg.dirSnapshot()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("after %s: orientations diverge\n graph: %v\n ref:   %v", op, got, want)
				}
				cg, eg := g.CriticalPath(RemainingDemand)
				cr, er := rg.criticalPath(RemainingDemand)
				if (eg == nil) != (er == nil) {
					t.Fatalf("after %s: CriticalPath errors diverge: graph %v, ref %v", op, eg, er)
				}
				if eg == nil && math.Abs(cg-cr) > 1e-9 {
					t.Fatalf("after %s: CriticalPath diverges: graph %g, ref %g", op, cg, cr)
				}
			}
			check("setup")
			for step := 0; step < 80; step++ {
				switch op := r.Intn(10); {
				case op == 0 && g.Len() < 12:
					addRandom()
					check("add")
				case op == 1 && g.Len() > 2:
					victim := rg.order[r.Intn(len(rg.order))]
					g.Remove(victim)
					rg.remove(victim)
					check(fmt.Sprintf("remove T%d", victim))
				default:
					// A batch of 1-3 orientations over existing edges,
					// random direction.
					es := g.edgeSet()
					if len(es) == 0 {
						continue
					}
					np := 1 + r.Intn(3)
					pairs := make([][2]int64, 0, np)
					for i := 0; i < np; i++ {
						e := es[r.Intn(len(es))]
						p := [2]int64{e.a, e.b}
						if r.Intn(2) == 0 {
							p[0], p[1] = p[1], p[0]
						}
						pairs = append(pairs, p)
					}
					errG := g.OrientAll(pairs)
					errR := rg.orientAll(pairs)
					if (errG == nil) != (errR == nil) {
						t.Fatalf("OrientAll(%v): graph err %v, ref err %v", pairs, errG, errR)
					}
					check(fmt.Sprintf("orient %v", pairs))
				}
			}
		})
	}
}

// reachSnapshot deep-copies the live reachability rows, keyed by transaction
// id so the comparison is slot-assignment independent.
func reachSnapshot(g *Graph) map[int64][]uint64 {
	out := map[int64][]uint64{}
	for id, s := range g.slots {
		out[id] = append([]uint64(nil), g.reach[s]...)
	}
	return out
}

// TestEvaluateLeavesGraphUnchanged pins the apply/undo contract of the
// clone-free E(q): after Evaluate returns — whether the speculative grant
// succeeded, deadlocked in GrantOrientations, or deadlocked during closure —
// every edge direction and every reachability row must be bit-for-bit what
// it was before.
func TestEvaluateLeavesGraphUnchanged(t *testing.T) {
	sawInf := false
	for seed := int64(1); seed <= 30; seed++ {
		r := rand.New(rand.NewSource(seed + 1000))
		g := New()
		var txns []*model.Txn
		for id := int64(1); id <= 8; id++ {
			k := 1 + r.Intn(3)
			files := make([]model.FileID, 0, k)
			for len(files) < k {
				f := model.FileID(r.Intn(4))
				dup := false
				for _, x := range files {
					dup = dup || x == f
				}
				if !dup {
					files = append(files, f)
				}
			}
			tx := randTxn(r, id, files...)
			txns = append(txns, tx)
			g.Add(tx)
		}
		// Pre-orient a few edges so some evaluations hit determined state
		// and some close cycles.
		for i := 0; i < 6; i++ {
			es := g.edgeSet()
			if len(es) == 0 {
				break
			}
			e := es[r.Intn(len(es))]
			p := [2]int64{e.a, e.b}
			if r.Intn(2) == 0 {
				p[0], p[1] = p[1], p[0]
			}
			_ = g.OrientAll([][2]int64{{p[0], p[1]}})
		}
		for try := 0; try < 40; try++ {
			tx := txns[r.Intn(len(txns))]
			f := model.FileID(r.Intn(4))
			dirs := dirSnapshot(g)
			rows := reachSnapshot(g)
			v := Evaluate(g, tx, f, model.X, RemainingDemand)
			if math.IsInf(v, 1) {
				sawInf = true
			}
			if got := dirSnapshot(g); !reflect.DeepEqual(got, dirs) {
				t.Fatalf("seed %d: Evaluate(T%d, f%d) changed orientations:\n before %v\n after  %v",
					seed, tx.ID, f, dirs, got)
			}
			if got := reachSnapshot(g); !reflect.DeepEqual(got, rows) {
				t.Fatalf("seed %d: Evaluate(T%d, f%d) changed reachability rows", seed, tx.ID, f)
			}
		}
	}
	if !sawInf {
		t.Fatalf("random evaluations never hit a deadlock path; the undo-on-error branch went untested")
	}
}

// TestEvaluateUnchangedOnConstructedDeadlock drives the rollback path
// deterministically: T1->T2->T3 is fixed, then evaluating a grant that would
// need T3->T1 must report +Inf and leave the graph untouched.
func TestEvaluateUnchangedOnConstructedDeadlock(t *testing.T) {
	g := New()
	t1 := randTxn(rand.New(rand.NewSource(1)), 1, 0, 1)
	t2 := randTxn(rand.New(rand.NewSource(2)), 2, 1, 2)
	t3 := randTxn(rand.New(rand.NewSource(3)), 3, 2, 0)
	g.Add(t1)
	g.Add(t2)
	g.Add(t3)
	if err := g.OrientAll([][2]int64{{1, 2}, {2, 3}}); err != nil {
		t.Fatalf("OrientAll: %v", err)
	}
	dirs := dirSnapshot(g)
	rows := reachSnapshot(g)
	// Granting T3 file 0 would orient T3->T1, closing the cycle.
	if v := Evaluate(g, t3, 0, model.X, RemainingDemand); !math.IsInf(v, 1) {
		t.Fatalf("Evaluate = %g, want +Inf", v)
	}
	if got := dirSnapshot(g); !reflect.DeepEqual(got, dirs) {
		t.Fatalf("deadlocked Evaluate changed orientations:\n before %v\n after  %v", dirs, got)
	}
	if got := reachSnapshot(g); !reflect.DeepEqual(got, rows) {
		t.Fatalf("deadlocked Evaluate changed reachability rows")
	}
}
