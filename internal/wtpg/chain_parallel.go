package wtpg

// Parallel chain orientation (DESIGN.md §17): GOW's Phase-2 plan solves one
// independent optimization per path component, so components fan out over
// the decision worker pool. Determinism is by construction rather than by
// reduction order: components are enumerated sequentially (identical to the
// sequential visit), each component of m slots owns exactly m-1 plan-edge
// cells at a precomputed offset of the plan's pred array, workers solve with
// private scratch arenas and write only their own cells and value slot, and
// the coordinator folds the values with an order-independent max. The
// pre-sort pred array is therefore byte-identical to the sequential one, and
// sortPred is deterministic, so the whole Plan is.

import (
	"fmt"

	"batchsched/internal/pool"
)

// planParallel is the flattened component enumeration plus the per-worker
// solver scratch, kept on the Graph so steady-state fan-out allocates
// nothing. With ncomp components totalling n slots, component c's slots are
// slots[compOff[c]:compOff[c+1]], its path edges (and its pred cells in the
// plan) start at compOff[c]-c — each component has one fewer edge than
// slots, so offsets are derived, not stored.
type planParallel struct {
	g       *Graph
	slots   []int
	compOff []int
	paths   []*edge
	vals    []float64
	cs      []chainScratch
	w0      T0Weight
	plan    *Plan
}

// RunTask solves component c with worker w's scratch. The pred target is a
// zero-length slice over the component's preallocated cells, so solveChain's
// appends land in place — deterministic index-ordered placement with no
// copying and no reallocation.
func (pp *planParallel) RunTask(worker, c int) {
	lo, hi := pp.compOff[c], pp.compOff[c+1]
	comp := pp.slots[lo:hi]
	off := lo - c
	path := pp.paths[off : hi-(c+1)]
	pred := pp.plan.pred[off : off : off+(hi-lo-1)]
	pp.vals[c], _ = pp.g.solveChain(&pp.cs[worker], comp, path, pp.w0, pred)
}

// OptimalChainOrientationParallelInto is OptimalChainOrientationInto with
// per-component solving fanned out over the lane, capped at maxWorkers. The
// resulting Plan is byte-identical to the sequential one; a nil lane or a
// cap of 0/1 falls back to the sequential path outright.
func (g *Graph) OptimalChainOrientationParallelInto(w0 T0Weight, plan *Plan, lane *pool.Lane, maxWorkers int) error {
	if lane == nil || maxWorkers <= 1 {
		return g.OptimalChainOrientationInto(w0, plan)
	}
	if !g.ChainForm() {
		return fmt.Errorf("wtpg: graph is not in chain form")
	}
	plan.reset()
	pp := &g.pp
	pp.slots = pp.slots[:0]
	pp.compOff = pp.compOff[:0]
	pp.paths = pp.paths[:0]
	// Enumerate components sequentially (pathComponent shares the graph's
	// scratch), flattening slots and path edges in visit order.
	visited := resetBools(&g.visited, len(g.ids))
	for start, lv := range g.live {
		if !lv || visited[start] {
			continue
		}
		comp := g.pathComponent(start)
		for _, s := range comp {
			visited[s] = true
		}
		pp.compOff = append(pp.compOff, len(pp.slots))
		pp.slots = append(pp.slots, comp...)
		pp.paths = append(pp.paths, g.cs.path...)
	}
	ncomp := len(pp.compOff)
	pp.compOff = append(pp.compOff, len(pp.slots))
	if ncomp == 0 {
		plan.sortPred()
		return nil
	}
	total := len(pp.slots) - ncomp
	if cap(plan.pred) < total {
		plan.pred = make([]planEdge, total)
	} else {
		plan.pred = plan.pred[:total]
	}
	pp.vals = resetFloats(&pp.vals, ncomp)
	if nw := lane.Workers(); len(pp.cs) < nw {
		pp.cs = append(pp.cs, make([]chainScratch, nw-len(pp.cs))...)
	}
	pp.g, pp.w0, pp.plan = g, w0, plan
	lane.Run(pp, ncomp, maxWorkers)
	pp.w0, pp.plan = nil, nil
	for _, v := range pp.vals {
		if v > plan.Value {
			plan.Value = v
		}
	}
	plan.sortPred()
	return nil
}
