package fault

import (
	"reflect"
	"testing"

	"batchsched/internal/sim"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	on := []Config{
		{MTBF: sim.Second, MTTR: sim.Second},
		{StragglerMTBF: sim.Second, StragglerDuration: sim.Second, StragglerFactor: 2},
		{MsgLoss: 0.1, MsgTimeout: sim.Second},
		{MsgDelay: sim.Millisecond},
	}
	for i, c := range on {
		if !c.Enabled() {
			t.Errorf("config %d should be enabled: %+v", i, c)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %d should validate: %v", i, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MTBF: -1},
		{MTTR: -1},
		{StragglerDuration: -1},
		{MsgDelay: -1},
		{MsgTimeout: -1},
		{MTBF: sim.Second}, // no MTTR
		{StragglerMTBF: sim.Second, StragglerFactor: 2},                                // no duration
		{StragglerMTBF: sim.Second, StragglerDuration: sim.Second},                     // factor <= 1
		{StragglerMTBF: sim.Second, StragglerDuration: sim.Second, StragglerFactor: 1}, // factor == 1
		{MsgLoss: -0.1},
		{MsgLoss: 1},
		{MsgLoss: 0.5}, // no timeout
		{MsgRetries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
}

// transition is one hook invocation, for schedule comparison.
type transition struct {
	kind string
	node int
	at   sim.Time
}

func record(t *testing.T, seed int64, cfg Config, until sim.Time) []transition {
	t.Helper()
	eng := sim.NewEngine()
	var out []transition
	h := Hooks{
		Crash:   func(n int, now sim.Time) { out = append(out, transition{"crash", n, now}) },
		Restore: func(n int, now sim.Time) { out = append(out, transition{"restore", n, now}) },
		SlowStart: func(n int, _ float64, now sim.Time) {
			out = append(out, transition{"slow", n, now})
		},
		SlowEnd: func(n int, now sim.Time) { out = append(out, transition{"slowend", n, now}) },
	}
	inj, err := NewInjector(cfg, 4, eng, sim.NewRNG(seed).Stream("fault"), h)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	eng.RunUntil(until)
	return out
}

// TestScheduleIsSeedDeterministic: the same (seed, config) must produce the
// identical crash/straggler schedule on every run, and a different seed a
// different one.
func TestScheduleIsSeedDeterministic(t *testing.T) {
	cfg := Config{
		MTBF: 50 * sim.Second, MTTR: 5 * sim.Second,
		StragglerMTBF: 80 * sim.Second, StragglerDuration: 10 * sim.Second, StragglerFactor: 2,
	}
	a := record(t, 3, cfg, 1000*sim.Second)
	b := record(t, 3, cfg, 1000*sim.Second)
	if len(a) == 0 {
		t.Fatal("no transitions in 1000s")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical seeds produced different fault schedules")
	}
	if c := record(t, 4, cfg, 1000*sim.Second); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced the identical fault schedule")
	}
}

// TestCrashRestorePairing: every crash is followed by exactly one restore of
// the same node before that node crashes again.
func TestCrashRestorePairing(t *testing.T) {
	cfg := Config{MTBF: 30 * sim.Second, MTTR: 3 * sim.Second}
	down := map[int]bool{}
	for _, tr := range record(t, 7, cfg, 2000*sim.Second) {
		switch tr.kind {
		case "crash":
			if down[tr.node] {
				t.Fatalf("node %d crashed at %v while already down", tr.node, tr.at)
			}
			down[tr.node] = true
		case "restore":
			if !down[tr.node] {
				t.Fatalf("node %d restored at %v while up", tr.node, tr.at)
			}
			down[tr.node] = false
		}
	}
}

// TestStragglerWindowsAreFixedLength: every slow window lasts exactly
// StragglerDuration.
func TestStragglerWindowsAreFixedLength(t *testing.T) {
	cfg := Config{StragglerMTBF: 40 * sim.Second, StragglerDuration: 7 * sim.Second, StragglerFactor: 3}
	start := map[int]sim.Time{}
	seen := 0
	for _, tr := range record(t, 11, cfg, 2000*sim.Second) {
		switch tr.kind {
		case "slow":
			start[tr.node] = tr.at
		case "slowend":
			if got := tr.at - start[tr.node]; got != cfg.StragglerDuration {
				t.Fatalf("window on node %d lasted %v, want %v", tr.node, got, cfg.StragglerDuration)
			}
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no complete straggler windows in 2000s")
	}
}

// TestInertDimensionsDrawNothing: with the message knobs zero, MsgLost and
// MsgExtraDelay must not consume RNG state (the zero-drift guarantee).
func TestInertDimensionsDrawNothing(t *testing.T) {
	eng := sim.NewEngine()
	inj, err := NewInjector(Config{MTBF: 50 * sim.Second, MTTR: 5 * sim.Second}, 2, eng, sim.NewRNG(1).Stream("fault"), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if inj.MsgLost() {
			t.Fatal("MsgLost true with MsgLoss = 0")
		}
		if inj.MsgExtraDelay() != 0 {
			t.Fatal("extra delay with MsgDelay = 0")
		}
	}
	// The stream must be untouched: its next draw equals the first draw of a
	// freshly derived identical stream.
	ref := sim.NewRNG(1).Stream("fault").Stream("msg")
	if inj.msgRNG.Float64() != ref.Float64() {
		t.Error("inert message dimension consumed RNG state")
	}
}

// TestMsgLossRate: the loss draw tracks the configured probability.
func TestMsgLossRate(t *testing.T) {
	eng := sim.NewEngine()
	inj, err := NewInjector(Config{MsgLoss: 0.2, MsgTimeout: sim.Second, MsgRetries: 1}, 2, eng, sim.NewRNG(1).Stream("fault"), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	const n = 20000
	for k := 0; k < n; k++ {
		if inj.MsgLost() {
			lost++
		}
	}
	if rate := float64(lost) / n; rate < 0.18 || rate > 0.22 {
		t.Errorf("loss rate = %g, want ~0.2", rate)
	}
	if inj.Timeout() != sim.Second || inj.Retries() != 1 {
		t.Error("Timeout/Retries accessors do not echo the config")
	}
}
