// Package fault implements a deterministic, seed-driven fault injector for
// the Shared-Nothing machine model: data-processing-node crashes with
// exponentially distributed outages, straggler nodes whose service slows by
// a multiplier for a bounded window, and CN<->DPN message loss and delay
// with a timeout-and-retry path at the control node.
//
// The paper evaluates its schedulers on a failure-free machine; this package
// relaxes that assumption so the repro can ask "what does each scheduler's
// throughput and serializability look like when nodes fail?" (cf. Yao et
// al., "Scaling Distributed Transaction Processing and Recovery based on
// Dependency Logging", and DGCC — both in PAPERS.md).
//
// Every random draw comes from dedicated per-node streams derived from one
// "fault" stream of the run's master seed, so:
//
//   - a given seed reproduces the identical fault schedule across runs
//     (the differential tests rely on this), and
//   - the crash/straggler schedule is independent of the workload and the
//     scheduler under test — all schedulers face the same failures.
//
// With every knob zero the injector is inert: it draws nothing and schedules
// nothing, so failure-free runs reproduce the seed's event sequence exactly.
package fault

import (
	"fmt"

	"batchsched/internal/sim"
)

// Config carries the fault-injection knobs. The zero value disables every
// fault (the paper's failure-free machine).
type Config struct {
	// MTBF is the per-node mean time between crashes (exponential); 0
	// disables crashes.
	MTBF sim.Time
	// MTTR is the mean outage duration of a crash (exponential). Required
	// positive when MTBF > 0.
	MTTR sim.Time

	// StragglerMTBF is the per-node mean time between straggler episodes
	// (exponential); 0 disables stragglers.
	StragglerMTBF sim.Time
	// StragglerDuration is the fixed length of one straggler window.
	// Required positive when StragglerMTBF > 0.
	StragglerDuration sim.Time
	// StragglerFactor multiplies the node's service time during a window
	// (> 1). Required when StragglerMTBF > 0.
	StragglerFactor float64

	// MsgLoss is the probability that one CN<->DPN message (step dispatch
	// or completion reply) is lost; [0, 1). A lost message is detected by
	// the control node's timeout and the step is retried.
	MsgLoss float64
	// MsgDelay is the mean extra exponential network delay added to each
	// CN<->DPN message; 0 adds none.
	MsgDelay sim.Time
	// MsgTimeout is how long the control node waits before retrying a step
	// whose dispatch or reply was lost. Required positive when MsgLoss > 0.
	MsgTimeout sim.Time
	// MsgRetries bounds the retries per step; once exhausted the control
	// node aborts the transaction and resubmits it after the machine's
	// RestartDelay.
	MsgRetries int
}

// Enabled reports whether any fault dimension is active.
func (c Config) Enabled() bool {
	return c.MTBF > 0 || c.StragglerMTBF > 0 || c.MsgLoss > 0 || c.MsgDelay > 0
}

// Validate checks the knobs for consistency.
func (c Config) Validate() error {
	switch {
	case c.MTBF < 0 || c.MTTR < 0 || c.StragglerMTBF < 0 || c.StragglerDuration < 0 ||
		c.MsgDelay < 0 || c.MsgTimeout < 0:
		return fmt.Errorf("fault: negative durations")
	case c.MTBF > 0 && c.MTTR <= 0:
		return fmt.Errorf("fault: MTBF > 0 needs MTTR > 0")
	case c.StragglerMTBF > 0 && c.StragglerDuration <= 0:
		return fmt.Errorf("fault: StragglerMTBF > 0 needs StragglerDuration > 0")
	case c.StragglerMTBF > 0 && c.StragglerFactor <= 1:
		return fmt.Errorf("fault: StragglerFactor must be > 1, got %g", c.StragglerFactor)
	case c.MsgLoss < 0 || c.MsgLoss >= 1:
		return fmt.Errorf("fault: MsgLoss must be in [0, 1), got %g", c.MsgLoss)
	case c.MsgLoss > 0 && c.MsgTimeout <= 0:
		return fmt.Errorf("fault: MsgLoss > 0 needs MsgTimeout > 0")
	case c.MsgRetries < 0:
		return fmt.Errorf("fault: MsgRetries must be >= 0, got %d", c.MsgRetries)
	}
	return nil
}

// Hooks are the machine-side callbacks the injector drives. All fire as
// simulation events; now is the virtual time of the fault.
type Hooks struct {
	// Crash takes the node down; its resident cohorts are lost.
	Crash func(node int, now sim.Time)
	// Restore brings the node back (empty, serving again).
	Restore func(node int, now sim.Time)
	// SlowStart applies the straggler service-time multiplier to the node.
	SlowStart func(node int, factor float64, now sim.Time)
	// SlowEnd restores the node's nominal service time.
	SlowEnd func(node int, now sim.Time)
}

// Injector schedules the fault processes of one run. Create with
// NewInjector, call Start once when the run begins.
type Injector struct {
	cfg      Config
	eng      *sim.Engine
	h        Hooks
	crashRNG []*sim.RNG
	slowRNG  []*sim.RNG
	msgRNG   *sim.RNG
}

// NewInjector builds an injector for numNodes data-processing nodes. rng
// must be a stream dedicated to fault draws (the machine derives it as
// Stream("fault") of the run's master seed); per-node and per-dimension
// substreams are split off it so dimensions never perturb each other.
func NewInjector(cfg Config, numNodes int, eng *sim.Engine, rng *sim.RNG, h Hooks) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("fault: numNodes must be positive, got %d", numNodes)
	}
	inj := &Injector{cfg: cfg, eng: eng, h: h, msgRNG: rng.Stream("msg")}
	inj.crashRNG = make([]*sim.RNG, numNodes)
	inj.slowRNG = make([]*sim.RNG, numNodes)
	for n := 0; n < numNodes; n++ {
		inj.crashRNG[n] = rng.Stream(fmt.Sprintf("crash/%d", n))
		inj.slowRNG[n] = rng.Stream(fmt.Sprintf("slow/%d", n))
	}
	return inj, nil
}

// Start schedules the per-node crash and straggler processes. With the
// corresponding knobs zero it schedules nothing.
func (i *Injector) Start() {
	if i.cfg.MTBF > 0 {
		for n := range i.crashRNG {
			i.scheduleCrash(n)
		}
	}
	if i.cfg.StragglerMTBF > 0 {
		for n := range i.slowRNG {
			i.scheduleSlow(n)
		}
	}
}

// scheduleCrash books node n's next crash/restore pair. Both variates are
// drawn up front from the node's dedicated stream, so the whole schedule is
// fixed by the seed alone.
func (i *Injector) scheduleCrash(n int) {
	r := i.crashRNG[n]
	gap := r.ExpTime(1.0 / i.cfg.MTBF.Seconds())
	outage := r.ExpTime(1.0 / i.cfg.MTTR.Seconds())
	i.eng.Schedule(gap, func(now sim.Time) {
		i.h.Crash(n, now)
		i.eng.Schedule(outage, func(now sim.Time) {
			i.h.Restore(n, now)
			i.scheduleCrash(n)
		})
	})
}

// scheduleSlow books node n's next straggler window (fixed length, random
// start).
func (i *Injector) scheduleSlow(n int) {
	r := i.slowRNG[n]
	gap := r.ExpTime(1.0 / i.cfg.StragglerMTBF.Seconds())
	i.eng.Schedule(gap, func(now sim.Time) {
		i.h.SlowStart(n, i.cfg.StragglerFactor, now)
		i.eng.Schedule(i.cfg.StragglerDuration, func(now sim.Time) {
			i.h.SlowEnd(n, now)
			i.scheduleSlow(n)
		})
	})
}

// MsgFaults reports whether the message-loss/delay dimension is active.
func (i *Injector) MsgFaults() bool { return i.cfg.MsgLoss > 0 || i.cfg.MsgDelay > 0 }

// MsgLost draws whether one CN<->DPN message is lost. It draws nothing when
// MsgLoss is zero.
func (i *Injector) MsgLost() bool {
	if i.cfg.MsgLoss <= 0 {
		return false
	}
	return i.msgRNG.Float64() < i.cfg.MsgLoss
}

// MsgExtraDelay draws the extra network delay of one message (zero without
// drawing when MsgDelay is disabled).
func (i *Injector) MsgExtraDelay() sim.Time {
	if i.cfg.MsgDelay <= 0 {
		return 0
	}
	return i.msgRNG.ExpTime(1.0 / i.cfg.MsgDelay.Seconds())
}

// Timeout returns the control node's retry timeout.
func (i *Injector) Timeout() sim.Time { return i.cfg.MsgTimeout }

// Retries returns the per-step retry bound.
func (i *Injector) Retries() int { return i.cfg.MsgRetries }
