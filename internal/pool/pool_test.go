package pool

import (
	"sync/atomic"
	"testing"
)

// sumRun records which worker ran each task and bumps a counter per task.
type sumRun struct {
	hits    []atomic.Int32
	workers []atomic.Int32
}

func (r *sumRun) RunTask(worker, task int) {
	r.hits[task].Add(1)
	r.workers[task].Store(int32(worker + 1))
}

func newSumRun(n int) *sumRun {
	return &sumRun{hits: make([]atomic.Int32, n), workers: make([]atomic.Int32, n)}
}

func checkAll(t *testing.T, r *sumRun, maxWorker int) {
	t.Helper()
	for i := range r.hits {
		if got := r.hits[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, got)
		}
		if w := int(r.workers[i].Load()) - 1; w < 0 || w > maxWorker {
			t.Fatalf("task %d ran on worker %d, want 0..%d", i, w, maxWorker)
		}
	}
}

func TestPoolRunsEveryTaskOnce(t *testing.T) {
	p := New("test", 4)
	defer p.Stop()
	l := p.Lane("batch")
	for _, tasks := range []int{1, 2, 3, 16, 100} {
		r := newSumRun(tasks)
		l.Run(r, tasks, 4)
		checkAll(t, r, 3)
	}
}

// TestPoolWorkerCap: capping maxWorkers below the pool size must still run
// every task; with cap 1 the batch runs inline on worker 0 in order.
func TestPoolWorkerCap(t *testing.T) {
	p := New("test", 8)
	defer p.Stop()
	l := p.Lane("capped")
	r := newSumRun(32)
	l.Run(r, 32, 2)
	checkAll(t, r, 7) // any worker may grab a token; cap bounds concurrency, not identity

	r = newSumRun(8)
	l.Run(r, 8, 1)
	for i := range r.workers {
		if r.workers[i].Load() != 1 {
			t.Fatalf("cap=1 task %d ran on worker %d, want 0 (inline)", i, r.workers[i].Load()-1)
		}
	}
}

// TestPoolStoppedRunsInline: after Stop, Run degrades to the sequential path
// instead of deadlocking on dead workers.
func TestPoolStoppedRunsInline(t *testing.T) {
	p := New("test", 4)
	l := p.Lane("x")
	l.Run(newSumRun(4), 4, 4) // start workers
	p.Stop()
	p.Stop() // idempotent
	r := newSumRun(6)
	l.Run(r, 6, 4)
	checkAll(t, r, 0)
}

// TestPoolNeverStartedStopsClean: a pool that never went parallel must not
// leak goroutines or panic on Stop.
func TestPoolNeverStartedStopsClean(t *testing.T) {
	p := New("test", 4)
	l := p.Lane("x")
	r := newSumRun(1)
	l.Run(r, 1, 4) // single task: inline, workers never start
	checkAll(t, r, 0)
	p.Stop()
}

func TestPoolRunZeroAlloc(t *testing.T) {
	p := New("test", 4)
	defer p.Stop()
	l := p.Lane("steady")
	r := newSumRun(64)
	reset := func() {
		for i := range r.hits {
			r.hits[i].Store(0)
		}
	}
	l.Run(r, 64, 4) // warm up: start workers
	reset()
	avg := testing.AllocsPerRun(50, func() {
		l.Run(r, 64, 4)
	})
	if avg != 0 {
		t.Fatalf("Run allocates %.1f times per batch, want 0", avg)
	}
}
