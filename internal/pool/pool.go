// Package pool provides the persistent worker pool shared by the machine's
// wave-prepare phase and the scheduler decision engine (DESIGN.md §13, §17).
// One pool owns a fixed set of goroutines; callers hand it batches of
// independent tasks through a Lane, which tags the workers with
// runtime/pprof labels (pool name, lane name, worker index) so -cpuprofile
// output attributes time to the right subsystem.
//
// The discipline is the PR 7 wave-prepare one: work is published to the
// workers up front, members are claimed with an atomic cursor, and every
// result is written by task index so reductions are deterministic no matter
// which worker ran which task. Run blocks until the whole batch is done; the
// kick channel gives happens-before for the coordinator's writes and the
// WaitGroup publishes the workers' writes back. Batches with one task (or a
// one-worker cap, or a stopped pool) run inline on the caller as worker 0,
// so the sequential path needs no special casing and a stopped pool degrades
// gracefully instead of deadlocking.
//
// Run performs no allocations in steady state: Runner is an interface so
// callers pass a pointer to a long-lived struct rather than a closure, and
// the per-worker label contexts are prebuilt when a lane is created.
package pool

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Runner executes one task of a batch. worker identifies the scratch arena
// to use (0 <= worker < Pool.Workers(); on the inline path it is always 0)
// and task is the batch index. Distinct tasks of one batch must be
// independent: they run concurrently and in no particular order.
type Runner interface {
	RunTask(worker, task int)
}

// Pool is a persistent set of worker goroutines. It is not safe for
// concurrent Run calls — the machine and live backends drive it from their
// single control-node loop. Goroutines are started lazily on the first
// parallel Run, so building a Pool that never goes parallel costs nothing
// and leaks nothing.
type Pool struct {
	name    string
	n       int
	kick    chan struct{}
	wg      sync.WaitGroup
	next    atomic.Int64
	r       Runner
	tasks   int
	labels  []context.Context // active lane's per-worker label contexts
	started bool
	stopped bool
}

// Lane is a named entry point into a pool. Lanes exist purely for profiling
// attribution: each carries prebuilt per-worker pprof label contexts
// (pool=<pool>, lane=<lane>, worker=<i>) that workers adopt for the duration
// of a batch, at zero allocation per Run.
type Lane struct {
	p    *Pool
	ctxs []context.Context
}

// New builds a pool of n workers (minimum 1). Workers are not started until
// the first parallel Run.
func New(name string, n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{name: name, n: n, kick: make(chan struct{}, n)}
}

// Workers reports the pool size — the exclusive upper bound on the worker
// index a Runner can observe, and so the arena count a caller must provision.
func (p *Pool) Workers() int { return p.n }

// Lane creates a named lane with its label contexts prebuilt.
func (p *Pool) Lane(name string) *Lane {
	l := &Lane{p: p, ctxs: make([]context.Context, p.n)}
	for i := range l.ctxs {
		l.ctxs[i] = pprof.WithLabels(context.Background(),
			pprof.Labels("pool", p.name, "lane", name, "worker", strconv.Itoa(i)))
	}
	return l
}

// Workers reports the size of the lane's pool.
func (l *Lane) Workers() int { return l.p.n }

// Run executes tasks 0..tasks-1 on at most min(maxWorkers, pool size, tasks)
// workers and returns when all are done. With one task, a cap of one worker,
// or a stopped pool the batch runs inline on the caller as worker 0 — the
// exact sequential order 0,1,2,… — so callers use one code path for both.
func (l *Lane) Run(r Runner, tasks, maxWorkers int) {
	if tasks <= 0 {
		return
	}
	p := l.p
	if tasks == 1 || maxWorkers <= 1 || p.n <= 1 || p.stopped {
		for i := 0; i < tasks; i++ {
			r.RunTask(0, i)
		}
		return
	}
	if !p.started {
		p.start()
	}
	p.r, p.tasks, p.labels = r, tasks, l.ctxs
	p.next.Store(0)
	k := p.n
	if k > maxWorkers {
		k = maxWorkers
	}
	if k > tasks {
		k = tasks
	}
	p.wg.Add(k)
	for i := 0; i < k; i++ {
		p.kick <- struct{}{}
	}
	p.wg.Wait()
	p.r, p.labels = nil, nil
}

func (p *Pool) start() {
	p.started = true
	for i := 0; i < p.n; i++ {
		go func(idx int) {
			pprof.Do(context.Background(),
				pprof.Labels("pool", p.name, "worker", strconv.Itoa(idx)),
				func(context.Context) { p.worker(idx) })
		}(i)
	}
}

func (p *Pool) worker(idx int) {
	for range p.kick {
		pprof.SetGoroutineLabels(p.labels[idx])
		r, n := p.r, p.tasks
		for {
			i := int(p.next.Add(1)) - 1
			if i >= n {
				break
			}
			r.RunTask(idx, i)
		}
		p.wg.Done()
	}
}

// Stop shuts the workers down. Subsequent Runs execute inline; a second Stop
// is a no-op. Run/RunClosed-style callers invoke it on exit so a run leaves
// no goroutines behind.
func (p *Pool) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	if p.started {
		close(p.kick)
	}
}
