// Package obs is the virtual-time observability layer of the simulator: a
// deterministic recorder of spans (nested intervals of virtual time), a
// registry of counters, gauges and fixed-bucket histograms sampled into
// time-series on a virtual-time interval, and a scheduler decision audit
// log. Exporters render the recording as Chrome trace_event JSON (loadable
// in chrome://tracing and Perfetto), CSV time-series, and a self-contained
// HTML report.
//
// Everything is driven by the simulation's virtual clock, so two runs with
// the same seed produce byte-identical output. A nil *Observer is the
// disabled layer: every method is nil-receiver safe and returns immediately,
// which keeps the instrumented hot paths allocation-free when observability
// is off.
//
// Naming conventions consumed by the HTML exporter: gauges named
// "<resource>_busy_ms" are treated as cumulative busy-time series and
// differenced into utilization timelines; all other gauges are plotted raw.
package obs

import (
	"sync/atomic"

	"batchsched/internal/sim"
)

// SpanID refers to a recorded span; the zero SpanID is "no span" and is what
// a disabled observer returns, so callers can thread ids around untested.
type SpanID int32

// Span is one interval of virtual time: a transaction lifecycle phase, a
// cohort's residency at a data-processing node, or one control-node job.
type Span struct {
	// Name is the phase name ("txn", "lock-wait", "execute", "cohort",
	// "cn:request", ...).
	Name string
	// Cat is the category: "txn" (transaction lifecycle), "io" (DPN
	// cohort service), "cn" (control-node jobs).
	Cat string
	// Txn is the owning transaction id (0 when none).
	Txn int64
	// Node is the data-processing node (-1 when not node-scoped).
	Node int32
	// Extra carries a small per-span integer: the step index of an
	// execute/cohort span; -1 when unused.
	Extra int32
	// Parent is the enclosing span (0 for roots).
	Parent SpanID
	// Start and End bound the span on the virtual clock. End is -1 while
	// the span is open; Finish closes leftovers at the horizon.
	Start, End sim.Time
}

// Duration returns the span's length (0 for still-open spans).
func (s Span) Duration() sim.Time {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Observer is the recording half of the layer. Create with New; a nil
// Observer is the disabled layer (all methods no-op).
type Observer struct {
	spans []Span
	reg   registry
	audit Audit

	// interval is the metrics sampling period (SetSampleInterval).
	interval sim.Time
	sampling bool
	lastTick sim.Time

	// clampedSpanEnds and clampedSamples count monotone-clamp events: span
	// closes and metric samples whose clock reading ran backwards and had to
	// be clamped (see End and sample). Both stay zero under virtual time;
	// non-zero values measure wall-clock regression in the live backend.
	// Atomic so the scrape endpoint can read them from another goroutine.
	clampedSpanEnds atomic.Int64
	clampedSamples  atomic.Int64
}

// DefaultSampleInterval is the metrics sampling period of a fresh Observer.
const DefaultSampleInterval = 1000 * sim.Millisecond

// New returns an enabled observer with the default sampling interval.
func New() *Observer {
	return &Observer{interval: DefaultSampleInterval}
}

// Enabled reports whether the observer records anything (false on nil).
func (o *Observer) Enabled() bool { return o != nil }

// SetSampleInterval sets the metrics sampling period (<= 0 disables
// sampling). Call before the run starts.
func (o *Observer) SetSampleInterval(d sim.Time) {
	if o == nil {
		return
	}
	o.interval = d
}

// Begin opens a span at virtual time at and returns its id. node and extra
// may be -1; parent may be 0.
func (o *Observer) Begin(name, cat string, txn int64, node, extra int, parent SpanID, at sim.Time) SpanID {
	if o == nil {
		return 0
	}
	o.spans = append(o.spans, Span{
		Name: name, Cat: cat, Txn: txn,
		Node: int32(node), Extra: int32(extra),
		Parent: parent, Start: at, End: -1,
	})
	return SpanID(len(o.spans))
}

// End closes an open span at time at. Ending the zero span, or a span
// already ended, is a no-op. A close time before the span's start is
// clamped to the start: wall-clock sources (the live backend) are not
// guaranteed monotone across goroutines, and a negative-length span would
// corrupt the exporters. The clamp never fires under virtual time.
func (o *Observer) End(id SpanID, at sim.Time) {
	if o == nil || id == 0 {
		return
	}
	sp := &o.spans[id-1]
	if sp.End < 0 {
		if at < sp.Start {
			at = sp.Start
			o.clampedSpanEnds.Add(1)
		}
		sp.End = at
	}
}

// ClockClamps returns how often clock regression was clamped so far: span
// closes whose end time preceded their start, and metric samples taken at a
// reading before the previous one. Zero under virtual time; under the live
// backend a non-zero count quantifies cross-goroutine wall-clock skew.
// Safe to call from any goroutine.
func (o *Observer) ClockClamps() (spanEnds, samples int64) {
	if o == nil {
		return 0, 0
	}
	return o.clampedSpanEnds.Load(), o.clampedSamples.Load()
}

// Spans returns the recorded spans in creation order (aliases internal
// storage; do not mutate).
func (o *Observer) Spans() []Span {
	if o == nil {
		return nil
	}
	return o.spans
}

// Audit returns the scheduler decision audit log (nil when disabled), ready
// to hand to sched.Audited implementations.
func (o *Observer) Audit() *Audit {
	if o == nil {
		return nil
	}
	return &o.audit
}

// StartSampling books the recurring metrics sample on the engine. The
// machine calls it at the start of Run; sampling events read registry state
// only, so they never perturb the simulation.
func (o *Observer) StartSampling(eng *sim.Engine) {
	if o == nil || o.interval <= 0 || o.sampling {
		return
	}
	o.sampling = true
	var tick sim.Handler
	tick = func(now sim.Time) {
		o.sample(now)
		eng.Schedule(o.interval, tick)
	}
	o.sample(eng.Now())
	eng.Schedule(o.interval, tick)
}

func (o *Observer) sample(now sim.Time) {
	// Clamp against clock regression (wall-clock sources): sample rows must
	// be nondecreasing in time or the CSV/HTML exporters would render
	// backwards series. No-op under virtual time.
	if now < o.lastTick {
		now = o.lastTick
		o.clampedSamples.Add(1)
	}
	o.lastTick = now
	o.reg.sample(now)
}

// SampleNow takes one metrics sample at the given clock reading — the
// sampling hook for backends that do not run on a sim.Engine (wall-clock
// execution). Callers drive it on their own period; Finish then takes the
// final sample as usual.
func (o *Observer) SampleNow(now sim.Time) {
	if o == nil || o.interval <= 0 {
		return
	}
	o.sampling = true
	o.sample(now)
}

// Finish seals the recording at the end of a run: it closes every span
// still open at the horizon and takes a final metrics sample.
func (o *Observer) Finish(now sim.Time) {
	if o == nil {
		return
	}
	for i := range o.spans {
		if o.spans[i].End < 0 {
			o.spans[i].End = now
		}
	}
	if o.sampling && o.lastTick != now {
		o.sample(now)
	}
}

// PhaseTotal aggregates all spans of one name.
type PhaseTotal struct {
	// Name is the span name.
	Name string
	// Total is the summed duration over the run.
	Total sim.Time
	// Count is the number of spans.
	Count int
}

// PhaseTotals aggregates the recorded spans of one category by name, in
// first-appearance order — the per-phase virtual-time decomposition the
// paper's analysis is built on. An empty cat aggregates everything.
func (o *Observer) PhaseTotals(cat string) []PhaseTotal {
	if o == nil {
		return nil
	}
	var out []PhaseTotal
	idx := make(map[string]int)
	for _, sp := range o.spans {
		if cat != "" && sp.Cat != cat {
			continue
		}
		i, ok := idx[sp.Name]
		if !ok {
			i = len(out)
			idx[sp.Name] = i
			out = append(out, PhaseTotal{Name: sp.Name})
		}
		out[i].Total += sp.Duration()
		out[i].Count++
	}
	return out
}
