// Package stream provides wall-clock-safe streaming instruments for the
// execution paths that do not run on the deterministic virtual clock: the
// live backend's CN/DPN goroutines and the sweep engine's worker pool.
// Where internal/obs records a run for post-hoc export, stream answers
// "what is happening right now" — sliding-window rates, point-in-time
// gauges, and a mergeable log-bucket quantile sketch — and renders the
// current state as Prometheus text for the /metrics endpoint
// (internal/obs/serve).
//
// Design constraints, in order:
//
//   - Hot-path updates (Rate.Add, Gauge.Set/Add, Sketch.Observe) are
//     lock-free (sync/atomic only) and allocation-free, so a DPN goroutine
//     can update them every service quantum.
//   - The nil receiver is the disabled instrument, following the
//     internal/obs registry discipline: a nil *Set hands out nil
//     instruments and every method on them returns immediately, so
//     telemetry-off costs one nil check per call site.
//   - Reads (Value, RatePerSec, Quantile, WritePrometheus) may run on any
//     goroutine concurrently with writers; they see a consistent-enough
//     snapshot for monitoring (per-field atomicity, no cross-field
//     transactions).
//
// Registration (Set.Rate/Gauge/GaugeFunc/Sketch) allocates and takes a
// lock; it is meant for setup, before the hot path starts.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"batchsched/internal/sim"
)

// Rate is a sliding-window event counter: a cumulative total plus a ring of
// per-slot counts covering the trailing window, from which RatePerSec
// estimates the current event rate. Slots are claimed by epoch with a CAS;
// under write contention a slot reset may drop a handful of events from the
// window estimate (never from the total), which is fine for monitoring.
type Rate struct {
	name   string
	help   string
	labels string
	slotUS int64 // slot width in sim.Time microseconds
	total  atomic.Int64
	slots  []rateSlot
}

type rateSlot struct {
	epoch atomic.Int64 // slot generation: now/slotUS when last written
	n     atomic.Int64
}

// Add counts n events at clock reading now.
func (r *Rate) Add(now sim.Time, n int64) {
	if r == nil {
		return
	}
	r.total.Add(n)
	epoch := int64(now) / r.slotUS
	s := &r.slots[epoch%int64(len(r.slots))]
	for {
		old := s.epoch.Load()
		if old == epoch {
			break
		}
		if s.epoch.CompareAndSwap(old, epoch) {
			s.n.Store(0)
			break
		}
	}
	s.n.Add(n)
}

// Total returns the cumulative event count (0 on nil).
func (r *Rate) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// RatePerSec estimates events per second over the trailing window ending at
// now, counting only slots whose epoch falls inside the window.
func (r *Rate) RatePerSec(now sim.Time) float64 {
	if r == nil {
		return 0
	}
	cur := int64(now) / r.slotUS
	var n int64
	for i := range r.slots {
		if e := r.slots[i].epoch.Load(); e > cur-int64(len(r.slots)) && e <= cur {
			n += r.slots[i].n.Load()
		}
	}
	window := float64(r.slotUS*int64(len(r.slots))) / 1e6
	return float64(n) / window
}

// Gauge is an atomic point-in-time integer (queue depth, active count,
// cumulative busy microseconds). The nil Gauge absorbs updates.
type Gauge struct {
	name   string
	help   string
	labels string
	v      atomic.Int64
}

// Set stores v; Add increments by d; Value reads (0 on nil).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add increments the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current reading (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Set is a named registry of streaming instruments. The zero value is
// usable; the nil *Set is the disabled registry (constructors return nil
// instruments, WritePrometheus writes nothing).
type Set struct {
	mu    sync.Mutex
	items []item
}

type kind int

const (
	kindRate kind = iota
	kindGauge
	kindGaugeFunc
	kindSketch
)

type item struct {
	kind   kind
	name   string
	help   string
	labels string
	rate   *Rate
	gauge  *Gauge
	fn     func() float64
	sketch *Sketch
}

// NewSet returns an enabled instrument registry.
func NewSet() *Set { return &Set{} }

// Enabled reports whether the set records anything (false on nil).
func (s *Set) Enabled() bool { return s != nil }

// labelString pre-renders "k1=\"v1\",k2=\"v2\"" from alternating key/value
// pairs, so the hot path never formats labels.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("stream: label key/value pairs must alternate")
	}
	out := ""
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", kv[i], kv[i+1])
	}
	return out
}

// Rate registers a sliding-window rate counter covering the trailing
// window, split into window/slot slots. Optional alternating label
// key/value pairs distinguish instances of the same name.
func (s *Set) Rate(name, help string, window, slot time.Duration, labels ...string) *Rate {
	if s == nil {
		return nil
	}
	if slot <= 0 {
		slot = time.Second
	}
	n := int(window / slot)
	if n < 1 {
		n = 1
	}
	r := &Rate{
		name: name, help: help, labels: labelString(labels),
		slotUS: int64(slot / time.Microsecond),
		slots:  make([]rateSlot, n),
	}
	s.add(item{kind: kindRate, name: name, help: help, labels: r.labels, rate: r})
	return r
}

// Gauge registers an atomic gauge.
func (s *Set) Gauge(name, help string, labels ...string) *Gauge {
	if s == nil {
		return nil
	}
	g := &Gauge{name: name, help: help, labels: labelString(labels)}
	s.add(item{kind: kindGauge, name: name, help: help, labels: g.labels, gauge: g})
	return g
}

// GaugeFunc registers a callback gauge sampled at render time. fn runs on
// the scrape goroutine and must be safe to call concurrently with the run
// (read atomics, not plain fields).
func (s *Set) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if s == nil {
		return
	}
	s.add(item{kind: kindGaugeFunc, name: name, help: help, labels: labelString(labels), fn: fn})
}

// Sketch registers a streaming quantile sketch (see NewSketch).
func (s *Set) Sketch(name, help string, labels ...string) *Sketch {
	if s == nil {
		return nil
	}
	sk := NewSketch()
	sk.name, sk.help, sk.labels = name, help, labelString(labels)
	s.add(item{kind: kindSketch, name: name, help: help, labels: sk.labels, sketch: sk})
	return sk
}

func (s *Set) add(it item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.items {
		if have.name == it.name && have.labels == it.labels {
			panic(fmt.Sprintf("stream: duplicate instrument %s{%s}", it.name, it.labels))
		}
	}
	s.items = append(s.items, it)
}

// snapshot copies the registration list so rendering never holds the lock
// while formatting.
func (s *Set) snapshot() []item {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]item(nil), s.items...)
}

// familyOrder returns the distinct metric families in first-registration
// order — the deterministic render order of WritePrometheus.
func familyOrder(items []item) []string {
	var names []string
	seen := map[string]bool{}
	for _, it := range items {
		if !seen[it.name] {
			seen[it.name] = true
			names = append(names, it.name)
		}
	}
	return names
}

// sketchQuantiles are the quantiles exported for every sketch, ascending.
var sketchQuantiles = []float64{0.5, 0.9, 0.95, 0.99}
