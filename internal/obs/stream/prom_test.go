package stream

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"batchsched/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// deterministicSet builds a fixed registry in a fixed state, mirroring the
// instrument shapes the live backend registers.
func deterministicSet() *Set {
	s := NewSet()
	commits := s.Rate("live_commits", "Committed transactions.", 10*time.Second, time.Second)
	rt := s.Sketch("live_rt_seconds", "Transaction response time in seconds.")
	active := s.Gauge("live_active_txns", "Admitted and uncommitted transactions.")
	s.GaugeFunc("obs_clock_clamps", "Monotone clock-regression clamps.", func() float64 { return 2 })
	q0 := s.Gauge("live_dpn_queue_depth", "Cohorts resident in the node's service ring.", "node", "0")
	q1 := s.Gauge("live_dpn_queue_depth", "Cohorts resident in the node's service ring.", "node", "1")

	for i := 0; i < 30; i++ {
		commits.Add(sim.Time(i)*sim.Second/3, 1)
	}
	for i := 1; i <= 100; i++ {
		rt.Observe(float64(i) / 10) // 0.1s .. 10s
	}
	active.Set(4)
	q0.Set(2)
	q1.Set(5)
	return s
}

// TestWritePrometheusGolden pins the exact exposition bytes for a
// deterministic instrument state. Regenerate with:
//
//	go test ./internal/obs/stream -run Golden -update
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicSet().WritePrometheus(&buf, 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Rendering twice must be byte-identical (deterministic family order).
	var again bytes.Buffer
	if err := deterministicSet().WritePrometheus(&again, 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same state differ")
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicSet().WritePrometheus(&buf, 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(&buf); err != nil {
		t.Fatalf("own exposition rejected: %v", err)
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"no samples":       "# HELP a b\n# TYPE a gauge\n",
		"untyped sample":   "orphan 1\n",
		"bad type":         "# TYPE a frobnitz\na 1\n",
		"bad value":        "# TYPE a gauge\na one\n",
		"malformed TYPE":   "# TYPE a\na 1\n",
		"bad name":         "# TYPE 9a gauge\n9a 1\n",
		"malformed sample": "# TYPE a gauge\na{unclosed 1\n",
	}
	for name, text := range cases {
		if err := ValidatePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestValidatePrometheusAcceptsSuffixedFamilies(t *testing.T) {
	text := "# HELP rt seconds\n# TYPE rt summary\n" +
		"rt{quantile=\"0.5\"} 1.5\nrt_sum 30\nrt_count 20\n"
	if err := ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("summary family rejected: %v", err)
	}
}
