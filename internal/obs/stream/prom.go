package stream

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"batchsched/internal/sim"
)

// WritePrometheus renders the set's current state in the Prometheus text
// exposition format (version 0.0.4). now is the clock reading used for the
// sliding-window rates. Output order is deterministic: metric families in
// first-registration order, instances in registration order, and for each
// Rate the cumulative "<name>_total" counter followed by the windowed
// "<name>_per_sec" gauge. Sketches render as summaries (fixed quantiles,
// _sum, _count). A nil set writes nothing.
func (s *Set) WritePrometheus(w io.Writer, now sim.Time) error {
	if s == nil {
		return nil
	}
	items := s.snapshot()
	byName := map[string][]item{}
	for _, it := range items {
		byName[it.name] = append(byName[it.name], it)
	}
	bw := bufio.NewWriter(w)
	sample := func(name, labels string, v string) {
		if labels == "" {
			fmt.Fprintf(bw, "%s %s\n", name, v)
		} else {
			fmt.Fprintf(bw, "%s{%s} %s\n", name, labels, v)
		}
	}
	fv := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, name := range familyOrder(items) {
		group := byName[name]
		switch group[0].kind {
		case kindRate:
			fmt.Fprintf(bw, "# HELP %s_total %s\n# TYPE %s_total counter\n", name, group[0].help, name)
			for _, it := range group {
				sample(name+"_total", it.labels, strconv.FormatInt(it.rate.Total(), 10))
			}
			fmt.Fprintf(bw, "# HELP %s_per_sec %s (trailing-window rate)\n# TYPE %s_per_sec gauge\n", name, group[0].help, name)
			for _, it := range group {
				sample(name+"_per_sec", it.labels, fv(it.rate.RatePerSec(now)))
			}
		case kindGauge, kindGaugeFunc:
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", name, group[0].help, name)
			for _, it := range group {
				if it.kind == kindGaugeFunc {
					sample(name, it.labels, fv(it.fn()))
				} else {
					sample(name, it.labels, strconv.FormatInt(it.gauge.Value(), 10))
				}
			}
		case kindSketch:
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s summary\n", name, group[0].help, name)
			for _, it := range group {
				for _, q := range sketchQuantiles {
					ql := fmt.Sprintf("quantile=%q", strconv.FormatFloat(q, 'g', -1, 64))
					if it.labels != "" {
						ql = it.labels + "," + ql
					}
					sample(name, ql, fv(it.sketch.Quantile(q)))
				}
				sample(name+"_sum", it.labels, fv(it.sketch.Sum()))
				sample(name+"_count", it.labels, strconv.FormatInt(it.sketch.Count(), 10))
			}
		}
	}
	return bw.Flush()
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+-?\d+)?$`)
	promTypes    = map[string]bool{"counter": true, "gauge": true, "summary": true, "histogram": true, "untyped": true}
)

// ValidatePrometheus checks that r is well-formed Prometheus text
// exposition format: HELP/TYPE comment syntax, known metric types, legal
// metric names, parseable sample values, and every sample preceded by a
// TYPE declaration for its family (accounting for the _sum/_count/_bucket
// and _total suffixes summaries, histograms and counters add). It is the
// checker behind the golden-format test and `slireport -validate-metrics`.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	typed := map[string]string{}
	line := 0
	samples := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.TrimSpace(text) == "":
			continue
		case strings.HasPrefix(text, "# HELP "):
			f := strings.Fields(text)
			if len(f) < 3 || !promNameRe.MatchString(f[2]) {
				return fmt.Errorf("line %d: malformed HELP comment %q", line, text)
			}
		case strings.HasPrefix(text, "# TYPE "):
			f := strings.Fields(text)
			if len(f) != 4 || !promNameRe.MatchString(f[2]) {
				return fmt.Errorf("line %d: malformed TYPE comment %q", line, text)
			}
			if !promTypes[f[3]] {
				return fmt.Errorf("line %d: unknown metric type %q", line, f[3])
			}
			typed[f[2]] = f[3]
		case strings.HasPrefix(text, "#"):
			continue // free-form comment
		default:
			m := promSampleRe.FindStringSubmatch(text)
			if m == nil {
				return fmt.Errorf("line %d: malformed sample line %q", line, text)
			}
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				if m[3] != "+Inf" && m[3] != "-Inf" && m[3] != "NaN" {
					return fmt.Errorf("line %d: unparseable sample value %q", line, m[3])
				}
			}
			name := m[1]
			family := name
			for _, suf := range []string{"_sum", "_count", "_bucket"} {
				if strings.HasSuffix(name, suf) {
					if _, ok := typed[strings.TrimSuffix(name, suf)]; ok {
						family = strings.TrimSuffix(name, suf)
					}
				}
			}
			if _, ok := typed[family]; !ok {
				return fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", line, name)
			}
			samples++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples found")
	}
	return nil
}
