package stream

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"batchsched/internal/sim"
	"batchsched/internal/stats"
)

func TestRateTotalAndWindow(t *testing.T) {
	s := NewSet()
	r := s.Rate("events", "test events", 10*time.Second, time.Second)

	// 5 events per second for 20 virtual seconds.
	for sec := 0; sec < 20; sec++ {
		for i := 0; i < 5; i++ {
			r.Add(sim.Time(sec)*sim.Second+sim.Time(i), 1)
		}
	}
	if got := r.Total(); got != 100 {
		t.Fatalf("Total = %d, want 100", got)
	}
	// Query inside the last written slot: the trailing window then covers
	// exactly the 10 most recent filled slots.
	now := 20*sim.Second - 1
	if got := r.RatePerSec(now); math.Abs(got-5) > 0.01 {
		t.Fatalf("RatePerSec = %v, want ~5", got)
	}
	// 15 idle seconds later, the whole window has aged out.
	if got := r.RatePerSec(now + 15*sim.Second); got != 0 {
		t.Fatalf("RatePerSec after idle window = %v, want 0", got)
	}
}

func TestRateBurstWithinWindow(t *testing.T) {
	s := NewSet()
	r := s.Rate("burst", "burst", 10*time.Second, time.Second)
	r.Add(3*sim.Second, 40)
	// The burst stays in the 10s window: 40 events / 10 s.
	if got := r.RatePerSec(4 * sim.Second); math.Abs(got-4) > 1e-9 {
		t.Fatalf("RatePerSec = %v, want 4", got)
	}
	// Once the slot ages out, the rate drops to zero; the total never does.
	if got := r.RatePerSec(30 * sim.Second); got != 0 {
		t.Fatalf("aged RatePerSec = %v, want 0", got)
	}
	if got := r.Total(); got != 40 {
		t.Fatalf("Total = %d, want 40", got)
	}
}

func TestGauge(t *testing.T) {
	s := NewSet()
	g := s.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("Value = %d, want 10", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var s *Set
	if s.Enabled() {
		t.Fatal("nil Set reports Enabled")
	}
	r := s.Rate("x", "x", time.Second, time.Second)
	g := s.Gauge("y", "y")
	sk := s.Sketch("z", "z")
	s.GaugeFunc("f", "f", func() float64 { return 1 })
	if r != nil || g != nil || sk != nil {
		t.Fatal("nil Set handed out non-nil instruments")
	}
	r.Add(0, 1)
	g.Set(1)
	g.Add(1)
	sk.Observe(1)
	if r.Total() != 0 || r.RatePerSec(0) != 0 || g.Value() != 0 ||
		sk.Count() != 0 || sk.Sum() != 0 || sk.Quantile(0.5) != 0 {
		t.Fatal("nil instruments returned non-zero readings")
	}
	var buf countingWriter
	if err := s.WritePrometheus(&buf, 0); err != nil || buf.n != 0 {
		t.Fatalf("nil Set wrote %d bytes (err %v), want nothing", buf.n, err)
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// TestHotPathAllocationFree is the live-backend hot-path contract: updating
// streaming instruments must not allocate, enabled or disabled.
func TestHotPathAllocationFree(t *testing.T) {
	s := NewSet()
	r := s.Rate("events", "e", 10*time.Second, time.Second)
	g := s.Gauge("depth", "d")
	sk := s.Sketch("rt", "r")
	var now sim.Time
	if allocs := testing.AllocsPerRun(1000, func() {
		now += sim.Millisecond
		r.Add(now, 1)
		g.Set(int64(now))
		g.Add(1)
		sk.Observe(float64(now) / 1e6)
	}); allocs != 0 {
		t.Fatalf("enabled hot path allocates %.1f per op, want 0", allocs)
	}

	var nilR *Rate
	var nilG *Gauge
	var nilSk *Sketch
	if allocs := testing.AllocsPerRun(1000, func() {
		nilR.Add(1, 1)
		nilG.Set(1)
		nilSk.Observe(1)
	}); allocs != 0 {
		t.Fatalf("disabled hot path allocates %.1f per op, want 0", allocs)
	}
}

// TestSketchAccuracy checks the streaming quantile sketch against the exact
// type-7 estimator from internal/stats on distributions like the ones it
// will see (response times spanning milliseconds to minutes).
func TestSketchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"uniform":   func() float64 { return 0.5 + 99.5*rng.Float64() },
		"exp":       func() float64 { return rng.ExpFloat64() * 3 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64() * 1.5) },
	}
	for name, draw := range dists {
		sk := NewSketch()
		xs := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw()
			sk.Observe(v)
			xs = append(xs, v)
		}
		sort.Float64s(xs)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			exact := stats.QuantileSorted(xs, q)
			got := sk.Quantile(q)
			// The sketch guarantees its relative-error bound against the
			// bucketed empirical quantile; type-7 interpolation adds at most
			// about one more bucket of discrepancy at these sample sizes.
			tol := 3 * RelativeErrorBound() * exact
			if math.Abs(got-exact) > tol {
				t.Errorf("%s q%.2f: sketch %.4f vs exact %.4f (tol %.4f)",
					name, q, got, exact, tol)
			}
		}
		if got, want := sk.Count(), int64(20000); got != want {
			t.Errorf("%s: Count = %d, want %d", name, got, want)
		}
	}
}

func TestSketchEdgeCases(t *testing.T) {
	sk := NewSketch()
	if got := sk.Quantile(0.5); got != 0 {
		t.Fatalf("empty sketch Quantile = %v, want 0", got)
	}
	sk.Observe(math.NaN())
	sk.Observe(-1)
	if sk.Count() != 0 {
		t.Fatalf("NaN/negative observations were counted")
	}
	sk.Observe(0) // below sketchMin: clamps to the bottom bucket
	sk.Observe(1e9)
	if sk.Count() != 2 {
		t.Fatalf("Count = %d, want 2", sk.Count())
	}
	if q := sk.Quantile(0); q > sketchMin*sketchGamma {
		t.Fatalf("bottom-clamped quantile = %v, want ~%v", q, sketchMin)
	}
	if q := sk.Quantile(1); q < sketchMax/sketchGamma {
		t.Fatalf("top-clamped quantile = %v, want ~%v", q, sketchMax)
	}
}

func TestSketchMerge(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	if got := a.Count(); got != 200 {
		t.Fatalf("merged Count = %d, want 200", got)
	}
	if got, want := a.Sum(), 200.0*201/2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged Sum = %v, want %v", got, want)
	}
	exact := 100.5 // median of 1..200
	if got := a.Quantile(0.5); math.Abs(got-exact) > 3*RelativeErrorBound()*exact {
		t.Fatalf("merged median = %v, want ~%v", got, exact)
	}
	a.Merge(nil) // no-op
	if a.Count() != 200 {
		t.Fatal("Merge(nil) changed the sketch")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	s := NewSet()
	s.Gauge("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	s.Gauge("dup", "second")
}

func TestLabelledInstrumentsCoexist(t *testing.T) {
	s := NewSet()
	g0 := s.Gauge("queue", "q", "node", "0")
	g1 := s.Gauge("queue", "q", "node", "1")
	g0.Set(3)
	g1.Set(9)
	if g0.Value() != 3 || g1.Value() != 9 {
		t.Fatal("labelled instances share state")
	}
}
