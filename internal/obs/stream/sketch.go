package stream

import (
	"math"
	"sync/atomic"
)

// Sketch parameters. The bucket for a positive value v is
// floor(log(v/sketchMin) / log(sketchGamma)), so consecutive bucket
// boundaries grow by gamma and a quantile estimated at a bucket's geometric
// midpoint is within (gamma-1)/2 ≈ 2% relative error of the true empirical
// quantile. The layout is fixed (not adaptive), which is what makes two
// sketches mergeable by adding counts bucket-for-bucket.
const (
	sketchMin   = 1e-6 // smallest distinguishable value (1 µs when observing seconds)
	sketchMax   = 1e6  // values above clamp into the top bucket
	sketchGamma = 1.04
)

// sketchBuckets is ceil(log(max/min)/log(gamma)) + 1, computed once.
var (
	sketchLnGamma = math.Log(sketchGamma)
	sketchBuckets = int(math.Ceil(math.Log(sketchMax/sketchMin)/sketchLnGamma)) + 1
)

// Sketch is a streaming quantile estimator over positive values: a fixed
// log-bucket histogram (log base sketchGamma, range [sketchMin, sketchMax])
// with atomic counts, an atomic observation count, and an atomic float sum.
// Observe is lock-free and allocation-free; Quantile and Merge may run
// concurrently with writers. Values <= sketchMin land in the bottom bucket
// and values >= sketchMax in the top one, so the estimate degrades to a
// range clamp instead of failing outside the design range.
type Sketch struct {
	name   string
	help   string
	labels string
	counts []atomic.Int64
	n      atomic.Int64
	sumBit atomic.Uint64 // float64 bits of the running sum
}

// NewSketch returns an empty sketch with the package-fixed layout. Sketches
// created by Set.Sketch are registered for /metrics; bare sketches are for
// merging and tests.
func NewSketch() *Sketch {
	return &Sketch{counts: make([]atomic.Int64, sketchBuckets)}
}

// bucketOf maps a value to its bucket index, clamping into [0, buckets-1].
func bucketOf(v float64) int {
	if v <= sketchMin {
		return 0
	}
	i := int(math.Log(v/sketchMin) / sketchLnGamma)
	if i >= sketchBuckets {
		i = sketchBuckets - 1
	}
	return i
}

// bucketMid is the geometric midpoint of bucket i — the value a quantile
// landing in the bucket is reported as.
func bucketMid(i int) float64 {
	return sketchMin * math.Pow(sketchGamma, float64(i)+0.5)
}

// Observe records one value. NaN and negative values are dropped.
func (s *Sketch) Observe(v float64) {
	if s == nil || v != v || v < 0 {
		return
	}
	s.counts[bucketOf(v)].Add(1)
	s.n.Add(1)
	for {
		old := s.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; Sum their total.
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	return s.n.Load()
}

// Sum returns the total of all observed values.
func (s *Sketch) Sum() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.sumBit.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) of everything observed so
// far, to within the sketch's relative-error bound. It returns 0 on an
// empty sketch; q outside [0, 1] is clamped. The rank convention matches
// the empirical quantile (nearest-rank on the bucketed distribution), so it
// converges to stats.Quantile as samples accumulate.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	n := s.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n-1)) + 1 // 1-based rank of the target order statistic
	var seen int64
	for i := range s.counts {
		seen += s.counts[i].Load()
		if seen >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(sketchBuckets - 1)
}

// Merge folds other's observations into s (bucket-for-bucket; both sketches
// share the package-fixed layout). Merging a nil other is a no-op.
func (s *Sketch) Merge(other *Sketch) {
	if s == nil || other == nil {
		return
	}
	for i := range s.counts {
		if d := other.counts[i].Load(); d != 0 {
			s.counts[i].Add(d)
		}
	}
	if d := other.n.Load(); d != 0 {
		s.n.Add(d)
	}
	if d := other.Sum(); d != 0 {
		for {
			old := s.sumBit.Load()
			next := math.Float64bits(math.Float64frombits(old) + d)
			if s.sumBit.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// RelativeErrorBound is the sketch's worst-case relative error for
// quantiles of values inside [sketchMin, sketchMax]: half a bucket's
// geometric width. Tests assert accuracy against exact type-7 quantiles
// within this bound (plus the type-7 interpolation discrepancy).
func RelativeErrorBound() float64 { return (sketchGamma - 1) / 2 }
