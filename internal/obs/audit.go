package obs

import "batchsched/internal/sim"

// AuditEntry records one scheduler lock-request decision with enough
// context to replay "why was T7 blocked at t=1.2s": the candidate
// (conflicting-declaration) set the request was judged against, the
// contention estimates, and — for GOW — the critical path of the optimized
// order W and how this decision moved it.
type AuditEntry struct {
	// AtMS is the decision's virtual time in milliseconds.
	AtMS float64 `json:"at_ms"`
	// Scheduler is the deciding scheduler's name ("GOW", "LOW", ...).
	Scheduler string `json:"scheduler"`
	// Txn is the requesting transaction; File and Mode identify the
	// requested lock.
	Txn  int64  `json:"txn"`
	File int    `json:"file"`
	Mode string `json:"mode"`
	// Decision is "grant", "block" or "delay".
	Decision string `json:"decision"`
	// Candidates are the rival transactions the request was judged
	// against: C(q) for LOW, the would-be-oriented neighbors for GOW.
	Candidates []int64 `json:"candidates,omitempty"`
	// EQ is the request's contention estimate: E(q) for LOW, the critical
	// path |W| of the optimal chain orientation for GOW.
	EQ float64 `json:"eq,omitempty"`
	// EPs are the candidates' estimates E(p), aligned with Candidates
	// (LOW only).
	EPs []float64 `json:"eps,omitempty"`
	// CPDelta is the change of |W| relative to the scheduler's previous
	// audited decision (GOW only).
	CPDelta float64 `json:"cp_delta,omitempty"`
	// Note explains non-grants ("W orders T5 before T7", "deadlock:
	// E(q)=+Inf", ...).
	Note string `json:"note,omitempty"`
}

// Audit is an append-only decision log. The nil Audit (handed out by a
// disabled observer) absorbs records for free, so schedulers guard their
// audit bookkeeping with a single nil check.
type Audit struct {
	now     func() sim.Time
	lastMS  float64
	entries []AuditEntry
}

// SetClock injects the virtual clock used to stamp entries; the machine
// wires its engine's Now here.
func (a *Audit) SetClock(now func() sim.Time) {
	if a != nil {
		a.now = now
	}
}

// Record appends one decision, stamping the current clock reading. Stamps
// are clamped nondecreasing: a wall clock read from the live backend can
// regress relative to an earlier entry, and the log must stay replayable in
// order. The clamp never fires under virtual time.
func (a *Audit) Record(e AuditEntry) {
	if a == nil {
		return
	}
	if a.now != nil {
		e.AtMS = a.now().Milliseconds()
		if e.AtMS < a.lastMS {
			e.AtMS = a.lastMS
		}
		a.lastMS = e.AtMS
	}
	a.entries = append(a.entries, e)
}

// Entries returns the recorded decisions in order.
func (a *Audit) Entries() []AuditEntry {
	if a == nil {
		return nil
	}
	return a.entries
}
