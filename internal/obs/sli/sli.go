// Package sli defines the service-level side of the telemetry subsystem: a
// declarative SLO spec (response-time ceilings, throughput floors,
// abort-rate and guard-violation ceilings, selectable per scheduler ×
// scenario), the evaluation of one run's measures against it, an
// append-only JSONL metrics ledger with one stable-schema line per
// run/sweep cell, and pass-rate / regression-trend reporting across
// historical ledgers (cmd/slireport).
//
// The ledger follows the batch-SLI design pattern referenced in
// SNIPPETS.md: every producer (batchsim live runs, sweep cells) appends one
// self-describing line, and all aggregation lives in the reader, so the
// schema can be validated in CI and trends survive across process
// boundaries and machines.
package sli

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"batchsched/internal/metrics"
)

// Objective is one declarative SLO row: the bounds it sets (nil = not
// checked) applied to every run whose scheduler and load match the
// selectors (empty selector = matches all).
type Objective struct {
	// Name labels the objective in checks and reports.
	Name string `json:"name"`
	// Scheduler and Load select which runs the objective applies to
	// ("" matches every value).
	Scheduler string `json:"scheduler,omitempty"`
	Load      string `json:"load,omitempty"`
	// MaxP95RTSeconds and MaxMeanRTSeconds are response-time ceilings.
	MaxP95RTSeconds  *float64 `json:"maxP95RtSeconds,omitempty"`
	MaxMeanRTSeconds *float64 `json:"maxMeanRtSeconds,omitempty"`
	// MinTPS is the throughput floor.
	MinTPS *float64 `json:"minTps,omitempty"`
	// MaxAbortRate ceilings restarts per completed transaction.
	MaxAbortRate *float64 `json:"maxAbortRate,omitempty"`
	// MaxGuardViolations ceilings the live backend's data-guard
	// co-residency violations (0 is a meaningful ceiling: none allowed).
	MaxGuardViolations *float64 `json:"maxGuardViolations,omitempty"`
	// MaxShedRate ceilings sheds per offered arrival (open-stream service
	// runs). Without it, load shedding keeps the admitted-transaction tail
	// healthy at any offered load and a capacity bisection never fails.
	MaxShedRate *float64 `json:"maxShedRate,omitempty"`
}

// matches reports whether the objective applies to the (scheduler, load)
// pair.
func (o Objective) matches(scheduler, load string) bool {
	return (o.Scheduler == "" || o.Scheduler == scheduler) &&
		(o.Load == "" || o.Load == load)
}

// bounds returns the objective's set bounds as checks-to-run.
func (o Objective) bounds() []boundSpec {
	var out []boundSpec
	add := func(metric, kind string, p *float64, get func(Measures) float64) {
		if p != nil {
			out = append(out, boundSpec{metric: metric, kind: kind, bound: *p, get: get})
		}
	}
	add("p95_rt_seconds", "max", o.MaxP95RTSeconds, func(m Measures) float64 { return m.P95RTSeconds })
	add("mean_rt_seconds", "max", o.MaxMeanRTSeconds, func(m Measures) float64 { return m.MeanRTSeconds })
	add("tps", "min", o.MinTPS, func(m Measures) float64 { return m.TPS })
	add("abort_rate", "max", o.MaxAbortRate, func(m Measures) float64 { return m.AbortRate() })
	add("guard_violations", "max", o.MaxGuardViolations, func(m Measures) float64 { return m.GuardViolations })
	add("shed_rate", "max", o.MaxShedRate, func(m Measures) float64 { return m.ShedRate() })
	return out
}

type boundSpec struct {
	metric, kind string
	bound        float64
	get          func(Measures) float64
}

// Spec is a named list of objectives — the whole declarative SLO.
type Spec struct {
	Name       string      `json:"name"`
	Objectives []Objective `json:"objectives"`
}

// Default is the paper-grounded baseline SLO: the p95 response time stays
// within the paper's 70-second operating criterion, restart churn stays
// below two aborts per completion, and — for every scheduler that declares
// conflicts (i.e. all but NODC, which violates by design) — the live
// backend's data guards observe zero incompatible co-residencies.
func Default() Spec {
	f := func(v float64) *float64 { return &v }
	var spec Spec
	spec.Name = "default"
	spec.Objectives = []Objective{
		{Name: "rt-tail", MaxP95RTSeconds: f(70)},
		{Name: "abort-churn", MaxAbortRate: f(2)},
	}
	for _, s := range []string{"ASL", "GOW", "LOW", "LOW-LB", "C2PL", "C2PL+M", "S2PL", "OPT"} {
		spec.Objectives = append(spec.Objectives,
			Objective{Name: "no-guard-violations", Scheduler: s, MaxGuardViolations: f(0)})
	}
	return spec
}

// ServiceDefault is the open-stream service SLO: the paper's 70-second p95
// operating criterion on admitted transactions, restart churn below two
// aborts per completion, and — the open-system teeth — at most 2% of
// offered arrivals shed. It is the spec the sustained-TPS-at-SLO capacity
// probe bisects against.
func ServiceDefault() Spec {
	f := func(v float64) *float64 { return &v }
	return Spec{
		Name: "service-default",
		Objectives: []Objective{
			{Name: "rt-tail", MaxP95RTSeconds: f(70)},
			{Name: "abort-churn", MaxAbortRate: f(2)},
			{Name: "shed-rate", MaxShedRate: f(0.02)},
		},
	}
}

// Load reads and validates a JSON spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("sli: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sli: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate rejects specs with unnamed or boundless objectives.
func (s Spec) Validate() error {
	if len(s.Objectives) == 0 {
		return fmt.Errorf("sli: spec %q has no objectives", s.Name)
	}
	for i, o := range s.Objectives {
		if o.Name == "" {
			return fmt.Errorf("sli: spec %q objective %d has no name", s.Name, i)
		}
		if len(o.bounds()) == 0 {
			return fmt.Errorf("sli: spec %q objective %q sets no bounds", s.Name, o.Name)
		}
	}
	return nil
}

// Measures are the indicators one run (or one sweep cell's replication
// aggregate) is judged on. Counts are float64 so replication means fit
// without a parallel schema.
type Measures struct {
	Scheduler       string  `json:"scheduler"`
	Load            string  `json:"load"`
	Lambda          float64 `json:"lambda,omitempty"`
	TPS             float64 `json:"tps"`
	MeanRTSeconds   float64 `json:"meanRtSeconds"`
	P95RTSeconds    float64 `json:"p95RtSeconds"`
	Completions     float64 `json:"completions"`
	Restarts        float64 `json:"restarts"`
	GuardViolations float64 `json:"guardViolations"`
	// ClockClamps counts monotone-clamp events the observability layer hit
	// (wall-clock regression made visible; see internal/obs).
	ClockClamps float64 `json:"clockClamps"`
	// Arrivals and Sheds support the open-stream shed-rate bound (appended
	// fields: Entry byte format keeps struct order, so new fields go last
	// and are omitted when zero).
	Arrivals float64 `json:"arrivals,omitempty"`
	Sheds    float64 `json:"sheds,omitempty"`
}

// AbortRate is restarts per completed transaction (0 when nothing
// completed).
func (m Measures) AbortRate() float64 {
	if m.Completions <= 0 {
		return 0
	}
	return m.Restarts / m.Completions
}

// ShedRate is sheds per offered arrival (0 when arrivals were not
// measured — closed-batch runs).
func (m Measures) ShedRate() float64 {
	if m.Arrivals <= 0 {
		return 0
	}
	return m.Sheds / m.Arrivals
}

// FromSummary digests a run summary into measures. guardViolations and
// clockClamps come from outside the summary (live backend / observer).
func FromSummary(scheduler, load string, lambda float64, sum metrics.Summary, guardViolations, clockClamps int) Measures {
	return Measures{
		Scheduler:       scheduler,
		Load:            load,
		Lambda:          lambda,
		TPS:             sum.TPS,
		MeanRTSeconds:   sum.MeanRT.Seconds(),
		P95RTSeconds:    sum.P95RT.Seconds(),
		Completions:     float64(sum.Completions),
		Restarts:        float64(sum.Restarts),
		GuardViolations: float64(guardViolations),
		ClockClamps:     float64(clockClamps),
	}
}

// Check is one evaluated bound.
type Check struct {
	// Objective is the owning objective's name; Metric the indicator.
	Objective string `json:"objective"`
	Metric    string `json:"metric"`
	// Kind is "max" (value must be <= bound) or "min" (>=).
	Kind  string  `json:"kind"`
	Bound float64 `json:"bound"`
	Value float64 `json:"value"`
	OK    bool    `json:"ok"`
}

// Evaluate runs every matching objective's bounds against the measures.
// pass is the conjunction of all checks (vacuously true when nothing
// matches).
func (s Spec) Evaluate(m Measures) (pass bool, checks []Check) {
	pass = true
	for _, o := range s.Objectives {
		if !o.matches(m.Scheduler, m.Load) {
			continue
		}
		for _, b := range o.bounds() {
			v := b.get(m)
			ok := v <= b.bound
			if b.kind == "min" {
				ok = v >= b.bound
			}
			checks = append(checks, Check{
				Objective: o.Name, Metric: b.metric, Kind: b.kind,
				Bound: b.bound, Value: v, OK: ok,
			})
			pass = pass && ok
		}
	}
	return pass, checks
}
