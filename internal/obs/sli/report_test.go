package sli

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// trendEpochs builds two epochs with one improving scenario, one regressing
// scenario, and one that appears only in the second epoch.
func trendEpochs() []Epoch {
	spec := Default()
	entry := func(sched string, tps, p95 float64, pass bool) Entry {
		m := Measures{Scheduler: sched, Load: "exp1", TPS: tps, P95RTSeconds: p95, Completions: 100}
		if !pass {
			m.GuardViolations = 1
		}
		return NewEntry("sweep", spec, m)
	}
	return []Epoch{
		{Label: "old", Entries: []Entry{
			entry("LOW", 0.50, 40, true),
			entry("LOW", 0.54, 44, true),
			entry("GOW", 0.60, 30, true),
		}},
		{Label: "new", Entries: []Entry{
			entry("LOW", 0.56, 38, true), // improved
			entry("GOW", 0.40, 48, true), // TPS -33%, p95 +60%: regressed
			entry("ASL", 0.30, 20, true), // only one epoch: insufficient data
		}},
	}
}

func TestTrends(t *testing.T) {
	epochs := trendEpochs()
	trends := Trends(epochs, 5)
	if len(trends) != 3 {
		t.Fatalf("got %d trends, want 3", len(trends))
	}
	byScenario := map[string]Trend{}
	for _, tr := range trends {
		byScenario[tr.Scenario] = tr
	}

	low, ok := byScenario["sched=LOW load=exp1 lambda=0"]
	if !ok {
		t.Fatalf("LOW scenario missing; have %v", keysOf(byScenario))
	}
	if low.Regressed {
		t.Fatalf("improving LOW flagged as regressed: %+v", low)
	}
	if math.Abs(low.DeltaTPSPct-(0.56-0.52)/0.52*100) > 1e-9 {
		t.Fatalf("LOW DeltaTPSPct = %v", low.DeltaTPSPct)
	}
	if low.PerEpoch[0].n != 2 || low.PerEpoch[1].n != 1 {
		t.Fatalf("LOW per-epoch counts = %d,%d", low.PerEpoch[0].n, low.PerEpoch[1].n)
	}

	gow := byScenario["sched=GOW load=exp1 lambda=0"]
	if !gow.Regressed {
		t.Fatalf("GOW TPS -33%% / p95 +60%% not flagged: %+v", gow)
	}

	asl := byScenario["sched=ASL load=exp1 lambda=0"]
	if asl.Regressed || !math.IsNaN(asl.DeltaTPSPct) {
		t.Fatalf("single-epoch ASL should have NaN deltas: %+v", asl)
	}

	// Trend output is sorted by scenario.
	for i := 1; i < len(trends); i++ {
		if trends[i-1].Scenario >= trends[i].Scenario {
			t.Fatalf("trends unsorted: %q before %q", trends[i-1].Scenario, trends[i].Scenario)
		}
	}
}

func keysOf(m map[string]Trend) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTrendsPassRateDrop(t *testing.T) {
	spec := Default()
	ok := NewEntry("live", spec, Measures{Scheduler: "LOW", Load: "x", TPS: 1, P95RTSeconds: 10, Completions: 10})
	bad := ok
	bad.Pass = false
	epochs := []Epoch{
		{Label: "a", Entries: []Entry{ok}},
		{Label: "b", Entries: []Entry{bad}},
	}
	trends := Trends(epochs, 50) // deltas are zero, well inside tolerance
	if len(trends) != 1 || !trends[0].Regressed {
		t.Fatalf("pass-rate drop not flagged: %+v", trends)
	}
}

func TestTablesAndCSVDeterministic(t *testing.T) {
	epochs := trendEpochs()
	trends := Trends(epochs, 5)

	pass1 := PassRateTable(epochs, trends).String()
	pass2 := PassRateTable(epochs, trends).String()
	if pass1 != pass2 {
		t.Fatal("PassRateTable not deterministic")
	}
	if !strings.Contains(pass1, "(all)") || !strings.Contains(pass1, "old") || !strings.Contains(pass1, "new") {
		t.Fatalf("pass-rate table missing rows/columns:\n%s", pass1)
	}

	tt := TrendTable(epochs, trends, 5).String()
	if !strings.Contains(tt, "REGRESSED") {
		t.Fatalf("trend table missing REGRESSED verdict:\n%s", tt)
	}
	if !strings.Contains(tt, "insufficient data") {
		t.Fatalf("trend table missing insufficient-data verdict:\n%s", tt)
	}

	var csv1, csv2 strings.Builder
	if err := WriteTrendCSV(&csv1, epochs, trends); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrendCSV(&csv2, epochs, trends); err != nil {
		t.Fatal(err)
	}
	if csv1.String() != csv2.String() {
		t.Fatal("trend CSV not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(csv1.String()), "\n")
	if lines[0] != "scenario,epoch,entries,pass_rate,tps_mean,p95_rt_seconds_mean" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	// 5 scenario×epoch cells have data: LOW×2, GOW×2, ASL×1.
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines, want 6:\n%s", len(lines), csv1.String())
	}

	html := HTMLReport("t", epochs, trends, 5)
	if !strings.Contains(html, "<table") || !strings.Contains(html, "REGRESSED") {
		t.Fatalf("HTML report missing table content")
	}
}

func TestLoadEpochsLabels(t *testing.T) {
	dir := t.TempDir()
	spec := Default()
	e := NewEntry("sweep", spec, Measures{Scheduler: "LOW", Load: "x", TPS: 1, Completions: 1})

	sub := filepath.Join(dir, "sweepA")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(sub, "sli.jsonl")
	p2 := filepath.Join(dir, "nightly.jsonl")
	if err := WriteLedger(p1, []Entry{e}); err != nil {
		t.Fatal(err)
	}
	if err := WriteLedger(p2, []Entry{e}); err != nil {
		t.Fatal(err)
	}
	epochs, err := LoadEpochs([]string{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if epochs[0].Label != "sweepA" || epochs[1].Label != "nightly" {
		t.Fatalf("labels = %q, %q", epochs[0].Label, epochs[1].Label)
	}
	if _, err := LoadEpochs([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Fatal("missing ledger accepted")
	}
}
