package sli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

func TestEvaluate(t *testing.T) {
	spec := Spec{Name: "test", Objectives: []Objective{
		{Name: "rt", MaxP95RTSeconds: f(70)},
		{Name: "tput", MinTPS: f(0.5)},
		{Name: "low-only", Scheduler: "LOW", MaxAbortRate: f(1)},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	m := Measures{Scheduler: "GOW", Load: "exp1", TPS: 0.8, P95RTSeconds: 30, Completions: 100, Restarts: 250}
	pass, checks := spec.Evaluate(m)
	// low-only does not match GOW, so the high abort rate is not checked.
	if !pass {
		t.Fatalf("pass = false, checks %+v", checks)
	}
	if len(checks) != 2 {
		t.Fatalf("got %d checks, want 2: %+v", len(checks), checks)
	}

	m.Scheduler = "LOW"
	pass, checks = spec.Evaluate(m)
	if pass {
		t.Fatal("abort rate 2.5 passed a ceiling of 1")
	}
	var found bool
	for _, c := range checks {
		if c.Metric == "abort_rate" {
			found = true
			if c.OK || c.Value != 2.5 || c.Bound != 1 {
				t.Fatalf("abort_rate check = %+v", c)
			}
		}
	}
	if !found {
		t.Fatal("no abort_rate check emitted for LOW")
	}

	// Min-kind bound failing.
	m.TPS = 0.1
	if pass, _ := spec.Evaluate(Measures{Scheduler: "GOW", TPS: 0.1, P95RTSeconds: 10}); pass {
		t.Fatal("TPS 0.1 passed a floor of 0.5")
	}
}

func TestEvaluateVacuouslyTrue(t *testing.T) {
	spec := Spec{Name: "none", Objectives: []Objective{
		{Name: "other", Scheduler: "C2PL", MaxP95RTSeconds: f(1)},
	}}
	pass, checks := spec.Evaluate(Measures{Scheduler: "LOW", P95RTSeconds: 99})
	if !pass || len(checks) != 0 {
		t.Fatalf("unmatched measures: pass=%v checks=%v", pass, checks)
	}
}

func TestDefaultSpec(t *testing.T) {
	spec := Default()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// A healthy LOW run passes.
	good := Measures{Scheduler: "LOW", Load: "exp1", TPS: 0.6, P95RTSeconds: 50, Completions: 100, Restarts: 10}
	if pass, checks := spec.Evaluate(good); !pass {
		t.Fatalf("healthy run failed default spec: %+v", checks)
	}
	// A guard violation fails any real scheduler.
	bad := good
	bad.GuardViolations = 1
	if pass, _ := spec.Evaluate(bad); pass {
		t.Fatal("guard violation passed the default spec")
	}
	// NODC is exempt from the guard objective by design.
	nodc := Measures{Scheduler: "NODC", Load: "exp1", TPS: 0.6, P95RTSeconds: 50, Completions: 100, GuardViolations: 5}
	if pass, checks := spec.Evaluate(nodc); !pass {
		t.Fatalf("NODC guard violations failed the default spec: %+v", checks)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	if err := (Spec{Name: "empty"}).Validate(); err == nil {
		t.Fatal("empty spec validated")
	}
	if err := (Spec{Name: "x", Objectives: []Objective{{Name: ""}}}).Validate(); err == nil {
		t.Fatal("unnamed objective validated")
	}
	if err := (Spec{Name: "x", Objectives: []Objective{{Name: "hollow"}}}).Validate(); err == nil {
		t.Fatal("boundless objective validated")
	}
}

func TestSpecLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slo.json")
	body := `{"name": "custom", "objectives": [{"name": "rt", "maxP95RtSeconds": 60}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "custom" || len(spec.Objectives) != 1 || *spec.Objectives[0].MaxP95RTSeconds != 60 {
		t.Fatalf("loaded spec = %+v", spec)
	}
	// Unknown fields are rejected.
	if err := os.WriteFile(path, []byte(`{"name": "x", "objectves": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sli.jsonl")
	spec := Default()

	e1 := NewEntry("live", spec, Measures{Scheduler: "LOW", Load: "exp1", TPS: 0.5, P95RTSeconds: 40, Completions: 64})
	e1.Seed = 7
	e2 := NewEntry("sweep", spec, Measures{Scheduler: "GOW", Load: "exp1", Lambda: 0.6, TPS: 0.58, P95RTSeconds: 55, Completions: 1200, Restarts: 30})
	e2.Sweep = "exp1"
	e2.CellKey = "cell-key"
	e2.Reps = 5

	if err := Append(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d entries, want 2", len(got))
	}
	if got[0].Source != "live" || got[0].Seed != 7 || !got[0].Pass {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[1].CellKey != "cell-key" || got[1].Reps != 5 {
		t.Fatalf("entry 1 = %+v", got[1])
	}
	if got[0].Scenario() == got[1].Scenario() {
		t.Fatal("distinct runs share a scenario key")
	}
	if got[1].Scenario() != "cell-key" {
		t.Fatalf("cell scenario = %q", got[1].Scenario())
	}

	// The ledger validates, and byte-identical rewrites are deterministic.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateLedger(strings.NewReader(string(data))); err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, "sli2.jsonl")
	if err := WriteLedger(path2, []Entry{e1, e2}); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("Append and WriteLedger bytes differ:\n%s\nvs\n%s", data, data2)
	}
}

func TestLedgerValidationRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad json":       "{not json}\n",
		"wrong schema":   `{"schema":"other/9","source":"live","slo":"x","measures":{"scheduler":"a","load":"b","tps":0,"meanRtSeconds":0,"p95RtSeconds":0,"completions":0,"restarts":0,"guardViolations":0,"clockClamps":0},"pass":true,"checks":null}` + "\n",
		"missing source": `{"schema":"batchsched-sli/1","source":"","slo":"x","measures":{"scheduler":"a","load":"b","tps":0,"meanRtSeconds":0,"p95RtSeconds":0,"completions":0,"restarts":0,"guardViolations":0,"clockClamps":0},"pass":true,"checks":null}` + "\n",
	}
	for name, text := range cases {
		if err := ValidateLedger(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
