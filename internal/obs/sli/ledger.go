package sli

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Schema is the ledger line schema identifier. Bump the suffix on any
// incompatible change; readers reject lines whose schema they do not know.
const Schema = "batchsched-sli/1"

// Entry is one ledger line: one run (batchsim) or one sweep cell's
// replication aggregate, its measures, and its SLO verdict. Field order is
// part of the on-disk byte format (encoding/json emits struct order), so
// new fields go at the end.
type Entry struct {
	SchemaV string `json:"schema"`
	// Time is the wall-clock stamp (RFC3339). Deterministic producers (the
	// sweep engine, tests) leave it empty so ledger bytes are reproducible.
	Time   string `json:"time,omitempty"`
	Source string `json:"source"` // "live", "sim", or "sweep"
	// Sweep and CellKey identify the producing sweep cell; Reps its
	// replication count. All empty/zero for single runs.
	Sweep   string `json:"sweep,omitempty"`
	CellKey string `json:"cellKey,omitempty"`
	Reps    int    `json:"reps,omitempty"`
	// Seed is the run seed for single runs (0 for aggregates).
	Seed     int64    `json:"seed,omitempty"`
	SLO      string   `json:"slo"`
	Measures Measures `json:"measures"`
	Pass     bool     `json:"pass"`
	Checks   []Check  `json:"checks"`
	// Epoch numbers per-epoch service-mode entries from 1 (0, omitted, for
	// run-level entries). Appended field: order is part of the byte format.
	Epoch int `json:"epoch,omitempty"`
}

// NewEntry evaluates spec over m and assembles a ledger entry.
func NewEntry(source string, spec Spec, m Measures) Entry {
	pass, checks := spec.Evaluate(m)
	return Entry{
		SchemaV:  Schema,
		Source:   source,
		SLO:      spec.Name,
		Measures: m,
		Pass:     pass,
		Checks:   checks,
	}
}

// Scenario is the grouping key trend reports use: the sweep cell key when
// present, else scheduler/load/lambda.
func (e Entry) Scenario() string {
	if e.CellKey != "" {
		return e.CellKey
	}
	return fmt.Sprintf("sched=%s load=%s lambda=%g", e.Measures.Scheduler, e.Measures.Load, e.Measures.Lambda)
}

// Marshal renders the entry as its canonical single JSON line (with
// trailing newline).
func (e Entry) Marshal() ([]byte, error) {
	if e.SchemaV != Schema {
		return nil, fmt.Errorf("sli: entry schema %q, want %q", e.SchemaV, Schema)
	}
	b, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Append appends entries to the JSONL ledger at path, creating it if
// needed. Each entry is one line; the file is opened O_APPEND so concurrent
// producers interleave at line granularity.
func Append(path string, entries ...Entry) error {
	var buf bytes.Buffer
	for _, e := range entries {
		line, err := e.Marshal()
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sli: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("sli: writing %s: %w", path, err)
	}
	return f.Close()
}

// WriteLedger writes entries as a complete ledger file (truncating),
// for producers that own the whole file (the sweep engine's per-sweep
// sli.jsonl).
func WriteLedger(path string, entries []Entry) error {
	var buf bytes.Buffer
	for _, e := range entries {
		line, err := e.Marshal()
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Read parses a ledger file, rejecting unknown schemas and malformed
// lines with the line number.
func Read(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sli: %w", err)
	}
	defer f.Close()
	entries, err := decode(f)
	if err != nil {
		return nil, fmt.Errorf("sli: %s: %w", path, err)
	}
	return entries, nil
}

// ValidateLedger checks that r is a well-formed ledger stream: every line
// parses, carries the known schema, and names a source. It backs
// `slireport -validate-ledger` in CI.
func ValidateLedger(r io.Reader) error {
	entries, err := decode(r)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("ledger has no entries")
	}
	return nil
}

func decode(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Entry
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if e.SchemaV != Schema {
			return nil, fmt.Errorf("line %d: unknown schema %q (want %q)", line, e.SchemaV, Schema)
		}
		if e.Source == "" {
			return nil, fmt.Errorf("line %d: entry has no source", line)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
