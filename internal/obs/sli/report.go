package sli

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"batchsched/internal/report"
)

// Epoch is one historical ledger: a labelled set of entries, typically one
// sweep's sli.jsonl or one CI run's appended ledger. Epoch order (oldest
// first) is the trend axis.
type Epoch struct {
	Label   string
	Entries []Entry
}

// LoadEpochs reads ledger files in the given order, labelling each by its
// base name without extension (directory-named ledgers like
// "sweep1/sli.jsonl" fall back to the directory name).
func LoadEpochs(paths []string) ([]Epoch, error) {
	var out []Epoch
	for _, p := range paths {
		entries, err := Read(p)
		if err != nil {
			return nil, err
		}
		label := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if label == "sli" {
			if dir := filepath.Base(filepath.Dir(p)); dir != "." && dir != string(filepath.Separator) {
				label = dir
			}
		}
		out = append(out, Epoch{Label: label, Entries: entries})
	}
	return out, nil
}

// cellStat is one scenario's aggregate within one epoch.
type cellStat struct {
	n        int
	passes   int
	tps, p95 float64 // means over the epoch's entries
}

func (c cellStat) passRate() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	return float64(c.passes) / float64(c.n)
}

// Trend is one scenario's trajectory across the epochs: per-epoch
// aggregates plus a first-observed → last-observed delta and a regression
// verdict.
type Trend struct {
	Scenario string
	// PerEpoch has one aggregate per epoch; absent scenarios hold n == 0.
	PerEpoch []cellStat
	// DeltaTPSPct and DeltaP95Pct compare the last epoch with data against
	// the first (positive = grew). NaN when fewer than two epochs have data.
	DeltaTPSPct float64
	DeltaP95Pct float64
	// Regressed is true when throughput fell, tail latency grew beyond the
	// tolerance, or the pass rate dropped between those endpoints.
	Regressed bool
}

// Trends aggregates epochs per scenario and flags regressions beyond
// tolPct percent (throughput loss or p95 growth) or any pass-rate drop.
// Scenarios are sorted for deterministic output.
func Trends(epochs []Epoch, tolPct float64) []Trend {
	scenarios := map[string]bool{}
	for _, ep := range epochs {
		for _, e := range ep.Entries {
			scenarios[e.Scenario()] = true
		}
	}
	keys := make([]string, 0, len(scenarios))
	for k := range scenarios {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := make([]Trend, 0, len(keys))
	for _, key := range keys {
		t := Trend{Scenario: key, PerEpoch: make([]cellStat, len(epochs)),
			DeltaTPSPct: math.NaN(), DeltaP95Pct: math.NaN()}
		for i, ep := range epochs {
			st := &t.PerEpoch[i]
			for _, e := range ep.Entries {
				if e.Scenario() != key {
					continue
				}
				st.n++
				if e.Pass {
					st.passes++
				}
				st.tps += e.Measures.TPS
				st.p95 += e.Measures.P95RTSeconds
			}
			if st.n > 0 {
				st.tps /= float64(st.n)
				st.p95 /= float64(st.n)
			}
		}
		first, last := -1, -1
		for i := range t.PerEpoch {
			if t.PerEpoch[i].n > 0 {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if first >= 0 && last > first {
			a, b := t.PerEpoch[first], t.PerEpoch[last]
			if a.tps > 0 {
				t.DeltaTPSPct = (b.tps - a.tps) / a.tps * 100
			}
			if a.p95 > 0 {
				t.DeltaP95Pct = (b.p95 - a.p95) / a.p95 * 100
			}
			t.Regressed = (!math.IsNaN(t.DeltaTPSPct) && t.DeltaTPSPct < -tolPct) ||
				(!math.IsNaN(t.DeltaP95Pct) && t.DeltaP95Pct > tolPct) ||
				b.passRate() < a.passRate()
		}
		out = append(out, t)
	}
	return out
}

// PassRateTable renders per-epoch SLO pass rates: one row per scenario,
// one column per epoch, plus an overall row.
func PassRateTable(epochs []Epoch, trends []Trend) *report.Table {
	t := &report.Table{
		Title:  "SLO pass rate by epoch",
		Note:   "pass rate = passing entries / entries in the epoch; '-' = scenario absent",
		Header: append([]string{"scenario"}, epochLabels(epochs)...),
	}
	for _, tr := range trends {
		row := []string{tr.Scenario}
		for _, st := range tr.PerEpoch {
			row = append(row, report.Pct(st.passRate()*100, 0))
		}
		t.AddRow(row...)
	}
	overall := []string{"(all)"}
	for i := range epochs {
		var n, passes int
		for _, tr := range trends {
			n += tr.PerEpoch[i].n
			passes += tr.PerEpoch[i].passes
		}
		if n == 0 {
			overall = append(overall, "-")
		} else {
			overall = append(overall, report.Pct(float64(passes)/float64(n)*100, 0))
		}
	}
	t.AddRow(overall...)
	return t
}

// TrendTable renders the regression view: first/last TPS and p95 with
// percentage deltas and a verdict per scenario.
func TrendTable(epochs []Epoch, trends []Trend, tolPct float64) *report.Table {
	t := &report.Table{
		Title: "SLI trend (first vs last epoch with data)",
		Note: fmt.Sprintf("regression: TPS -%.0f%% or p95 +%.0f%% beyond tolerance, or pass-rate drop; epochs oldest->newest: %s",
			tolPct, tolPct, strings.Join(epochLabels(epochs), ", ")),
		Header: []string{"scenario", "tps first", "tps last", "tps Δ%", "p95s first", "p95s last", "p95 Δ%", "verdict"},
	}
	for _, tr := range trends {
		first, last := endpointStats(tr)
		verdict := "ok"
		if first == nil || last == nil {
			verdict = "insufficient data"
		} else if tr.Regressed {
			verdict = "REGRESSED"
		}
		row := []string{tr.Scenario}
		if first == nil || last == nil {
			row = append(row, "-", "-", "-", "-", "-", "-")
		} else {
			row = append(row,
				report.F(first.tps, 3), report.F(last.tps, 3), report.F(tr.DeltaTPSPct, 1),
				report.F(first.p95, 2), report.F(last.p95, 2), report.F(tr.DeltaP95Pct, 1))
		}
		row = append(row, verdict)
		t.AddRow(row...)
	}
	return t
}

// endpointStats returns the first and last epoch aggregates with data (nil
// when fewer than two epochs observed the scenario).
func endpointStats(tr Trend) (first, last *cellStat) {
	for i := range tr.PerEpoch {
		if tr.PerEpoch[i].n > 0 {
			if first == nil {
				first = &tr.PerEpoch[i]
			}
			last = &tr.PerEpoch[i]
		}
	}
	if first == last {
		return nil, nil
	}
	return first, last
}

func epochLabels(epochs []Epoch) []string {
	out := make([]string, len(epochs))
	for i, ep := range epochs {
		out[i] = ep.Label
	}
	return out
}

// WriteTrendCSV emits the machine-readable trend: one row per scenario ×
// epoch with pass rate and means, for downstream plotting.
func WriteTrendCSV(w io.Writer, epochs []Epoch, trends []Trend) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "epoch", "entries", "pass_rate", "tps_mean", "p95_rt_seconds_mean"}); err != nil {
		return err
	}
	fv := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for _, tr := range trends {
		for i, st := range tr.PerEpoch {
			if st.n == 0 {
				continue
			}
			rec := []string{
				tr.Scenario, epochs[i].Label, strconv.Itoa(st.n),
				fv(st.passRate()), fv(st.tps), fv(st.p95),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// HTMLReport assembles the standalone HTML trend page from the same tables
// the text renderer prints.
func HTMLReport(title string, epochs []Epoch, trends []Trend, tolPct float64) string {
	return report.HTMLDocument(title,
		PassRateTable(epochs, trends).HTML(),
		TrendTable(epochs, trends, tolPct).HTML(),
	)
}
