package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Chrome trace_event pid layout: transactions live in one synthetic
// process (tid = transaction id), the control node in another (a single
// serial CPU, tid 0), and each data-processing node in its own process
// with tid = transaction id, so per-(pid,tid) spans never overlap and
// chrome://tracing / Perfetto nest them correctly.
const (
	pidTxn     = 1
	pidCN      = 2
	pidDPNBase = 10
)

// traceEvent is one Chrome trace_event record ("X" complete events plus
// "M" metadata for process names).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// tracePlacement maps a span onto the pid/tid layout.
func tracePlacement(sp Span) (pid int, tid int64) {
	switch sp.Cat {
	case "cn":
		return pidCN, 0
	case "io":
		return pidDPNBase + int(sp.Node), sp.Txn
	default:
		return pidTxn, sp.Txn
	}
}

// WriteChromeTrace renders the recorded spans as Chrome trace_event JSON
// (the object form: {"traceEvents": [...], "displayTimeUnit": "ms"}).
// Timestamps are virtual microseconds, which is exactly the unit the
// format expects. Output is deterministic: metadata first (ascending pid),
// then spans in recording order.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(&noNewline{bw})
	first := true
	emit := func(ev traceEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(ev)
	}

	// Process-name metadata for every pid in use, ascending.
	pids := map[int]string{}
	for _, sp := range o.spans {
		pid, _ := tracePlacement(sp)
		if _, ok := pids[pid]; ok {
			continue
		}
		switch {
		case pid == pidTxn:
			pids[pid] = "transactions"
		case pid == pidCN:
			pids[pid] = "control-node"
		default:
			pids[pid] = "dpn-" + strconv.Itoa(pid-pidDPNBase)
		}
	}
	for pid := 0; len(pids) > 0 && pid <= maxKey(pids); pid++ {
		name, ok := pids[pid]
		if !ok {
			continue
		}
		err := emit(traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": name},
		})
		if err != nil {
			return err
		}
		delete(pids, pid)
	}

	for _, sp := range o.spans {
		pid, tid := tracePlacement(sp)
		ev := traceEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS: int64(sp.Start), Dur: int64(sp.Duration()),
			Pid: pid, Tid: tid,
		}
		if sp.Txn != 0 || sp.Extra >= 0 {
			ev.Args = map[string]string{}
			if sp.Txn != 0 {
				ev.Args["txn"] = strconv.FormatInt(sp.Txn, 10)
			}
			if sp.Extra >= 0 {
				ev.Args["step"] = strconv.Itoa(int(sp.Extra))
			}
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, `],"displayTimeUnit":"ms"}`+"\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func maxKey(m map[int]string) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

// noNewline strips the trailing newline json.Encoder appends, keeping the
// event array compact (one event per element, no blank separators).
type noNewline struct{ w io.Writer }

func (n *noNewline) Write(p []byte) (int, error) {
	m := len(p)
	for m > 0 && p[m-1] == '\n' {
		m--
	}
	if _, err := n.w.Write(p[:m]); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteMetricsCSV renders the sampled time-series as CSV (header then one
// row per tick), followed by the histograms as comment lines of the form
// "# histogram,<name>,<le>,<count>" (le "+Inf" for the overflow bucket)
// and "# histogram_summary,<name>,<count>,<sum>".
func (o *Observer) WriteMetricsCSV(w io.Writer) error {
	if o == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	hdr := o.SampleHeader()
	for i, h := range hdr {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(h)
	}
	bw.WriteByte('\n')
	for _, row := range o.reg.samples {
		for i, v := range row {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	for _, h := range o.reg.hists {
		for i, c := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			fmt.Fprintf(bw, "# histogram,%s,%s,%d\n", h.name, le, c)
		}
		fmt.Fprintf(bw, "# histogram_summary,%s,%d,%s\n",
			h.name, h.n, strconv.FormatFloat(h.sum, 'g', -1, 64))
	}
	return bw.Flush()
}

// WriteAuditJSONL renders the scheduler decision audit as JSON Lines, one
// decision per line, in decision order.
func (o *Observer) WriteAuditJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range o.audit.entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
