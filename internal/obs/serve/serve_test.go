package serve

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"batchsched/internal/obs/stream"
)

func testServer() (*Server, *stream.Set) {
	set := stream.NewSet()
	g := set.Gauge("test_gauge", "A test gauge.")
	g.Set(42)
	s := New()
	s.AddMetrics(func(w http.ResponseWriter) error { return set.WritePrometheus(w, 0) })
	return s, set
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer()
	resp, body := get(t, s.Handler(), "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(body, "test_gauge 42") {
		t.Fatalf("body missing gauge sample:\n%s", body)
	}
	if err := stream.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("endpoint output is not valid exposition format: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	s, _ := testServer()
	resp, body := get(t, s.Handler(), "/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy probe: status %d body %q", resp.StatusCode, body)
	}
	s.SetHealth(func() error { return errors.New("stalled") })
	resp, body = get(t, s.Handler(), "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "stalled") {
		t.Fatalf("unhealthy probe: status %d body %q", resp.StatusCode, body)
	}
}

func TestSLOEndpoint(t *testing.T) {
	s, _ := testServer()
	// With no source, /slo renders JSON null.
	resp, body := get(t, s.Handler(), "/slo")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "null" {
		t.Fatalf("empty /slo: status %d body %q", resp.StatusCode, body)
	}
	s.SetSLO(func() any { return map[string]int{"commits": 7} })
	resp, body = get(t, s.Handler(), "/slo")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "\"commits\": 7") {
		t.Fatalf("/slo: status %d body %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestPprofMounted(t *testing.T) {
	s, _ := testServer()
	resp, body := get(t, s.Handler(), "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	resp, _ = get(t, s.Handler(), "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
}

func TestStartAndClose(t *testing.T) {
	s, _ := testServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

func TestMultipleMetricsSourcesConcatenate(t *testing.T) {
	set2 := stream.NewSet()
	set2.Gauge("second_gauge", "Another.").Set(1)
	s, _ := testServer()
	s.AddMetrics(func(w http.ResponseWriter) error { return set2.WritePrometheus(w, 0) })
	_, body := get(t, s.Handler(), "/metrics")
	if !strings.Contains(body, "test_gauge 42") || !strings.Contains(body, "second_gauge 1") {
		t.Fatalf("concatenated body missing a source:\n%s", body)
	}
	if err := stream.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("concatenated output invalid: %v", err)
	}
}
