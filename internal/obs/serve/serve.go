// Package serve exposes a running batch execution or sweep over HTTP: the
// operational scrape surface of the telemetry subsystem (DESIGN.md §14).
//
//	/metrics      Prometheus text exposition (internal/obs/stream sets)
//	/healthz      liveness: "ok" (200) or the registered health error (503)
//	/slo          JSON snapshot of the current SLO evaluation / progress
//	/debug/pprof  net/http/pprof profiles of the live process
//
// The server owns no instruments: callers register render callbacks
// (AddMetrics, SetSLO, SetHealth) whose implementations must be safe to run
// concurrently with the workload — in practice, reads of stream instruments
// (atomics) and snapshots taken under the caller's own locks.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is one scrape endpoint. Create with New, register sources, then
// Start (or mount Handler in a test server).
type Server struct {
	mu      sync.Mutex
	metrics []func(w http.ResponseWriter) error
	slo     func() any
	health  func() error

	srv *http.Server
	lis net.Listener
}

// New returns a server with no sources: /metrics renders empty, /slo
// returns null, /healthz is healthy.
func New() *Server { return &Server{} }

// AddMetrics registers one /metrics renderer (typically a closure over
// stream.Set.WritePrometheus). Renderers run in registration order and
// their output is concatenated.
func (s *Server) AddMetrics(fn func(w http.ResponseWriter) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = append(s.metrics, fn)
}

// SetSLO registers the /slo snapshot source; the returned value is rendered
// as indented JSON per request.
func (s *Server) SetSLO(fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slo = fn
}

// SetHealth registers the /healthz probe; a non-nil error renders as 503.
func (s *Server) SetHealth(fn func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health = fn
}

// Handler returns the full route table, including pprof. The pprof handlers
// are mounted explicitly (not via the net/http/pprof DefaultServeMux side
// effect) so the server composes with tests and with processes that never
// touch the default mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fns := append([]func(http.ResponseWriter) error(nil), s.metrics...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, fn := range fns {
		if err := fn(w); err != nil {
			// Headers are gone; all we can do is cut the response short.
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	probe := s.health
	s.mu.Unlock()
	if probe != nil {
		if err := probe(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	src := s.slo
	s.mu.Unlock()
	var v any
	if src != nil {
		v = src()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Start listens on addr (host:port; ":0" picks a free port) and serves in a
// background goroutine. It returns the bound address, so callers can print
// the scrape URL even with an ephemeral port.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.mu.Lock()
	s.lis = lis
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	srv := s.srv
	s.mu.Unlock()
	go srv.Serve(lis) //nolint:errcheck // Serve always returns on Close
	return lis.Addr().String(), nil
}

// Close stops the listener. In-flight requests are cut, which is fine for a
// scrape endpoint.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
