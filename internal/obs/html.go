package obs

import (
	"fmt"
	"io"
	"strings"

	"batchsched/internal/report"
)

// HTMLSections renders one observer's recording as standalone HTML
// fragments (phase-breakdown table, utilization timelines, gauge and
// counter time-series, histograms), ready for report.HTMLDocument. label
// prefixes the section headings so several observers (one per scheduler)
// can share a page.
func (o *Observer) HTMLSections(label string) []string {
	if o == nil {
		return nil
	}
	var out []string
	if label != "" {
		out = append(out, "<h2>"+htmlEscape(label)+"</h2>")
	}

	if phases := o.PhaseTotals("txn"); len(phases) > 0 {
		t := &report.Table{
			Title:  "Phase breakdown (virtual time across all transactions)",
			Header: []string{"phase", "total (s)", "spans", "mean (ms)"},
		}
		for _, p := range phases {
			mean := 0.0
			if p.Count > 0 {
				mean = p.Total.Milliseconds() / float64(p.Count)
			}
			t.AddRow(p.Name, report.F(p.Total.Seconds(), 1),
				fmt.Sprint(p.Count), report.F(mean, 1))
		}
		out = append(out, t.HTML())
	}

	// Cumulative "*_busy_ms" gauges become utilization timelines; other
	// gauges and all counters plot raw.
	hdr := o.SampleHeader()
	ncounters := len(o.reg.counters)
	var util, raw, counters report.Chart
	util = report.Chart{Title: "Utilization (fraction busy per sample interval)", XLabel: "virtual time (s)", YLabel: "util", YMax: 1}
	raw = report.Chart{Title: "Gauges", XLabel: "virtual time (s)"}
	counters = report.Chart{Title: "Counters (cumulative)", XLabel: "virtual time (s)"}
	for col := 1; col < len(hdr); col++ {
		ts, vs := o.TimeSeries(hdr[col])
		if len(ts) < 2 {
			continue
		}
		xs := make([]float64, len(ts))
		for i, t := range ts {
			xs[i] = t / 1000 // ms -> s
		}
		switch {
		case strings.HasSuffix(hdr[col], "_busy_ms"):
			// Difference the cumulative busy time into per-interval
			// utilization, plotted at the interval's end tick.
			ux := xs[1:]
			uy := make([]float64, len(vs)-1)
			for i := 1; i < len(vs); i++ {
				dt := ts[i] - ts[i-1]
				if dt > 0 {
					uy[i-1] = (vs[i] - vs[i-1]) / dt
				}
			}
			util.Series = append(util.Series, report.Series{
				Name: strings.TrimSuffix(hdr[col], "_busy_ms"), X: ux, Y: uy})
		case col <= ncounters:
			counters.Series = append(counters.Series, report.Series{Name: hdr[col], X: xs, Y: vs})
		default:
			raw.Series = append(raw.Series, report.Series{Name: hdr[col], X: xs, Y: vs})
		}
	}
	for _, c := range []*report.Chart{&util, &raw, &counters} {
		if len(c.Series) > 0 {
			out = append(out, c.SVG(760, 240))
		}
	}

	for _, h := range o.Histograms() {
		t := &report.Table{
			Title:  "Histogram: " + h.Name(),
			Note:   fmt.Sprintf("count=%d sum=%s mean=%s", h.Count(), report.F(h.Sum(), 1), report.F(h.Mean(), 2)),
			Header: []string{"le", "count"},
		}
		for i, c := range h.Counts() {
			le := "+Inf"
			if i < len(h.Bounds()) {
				le = report.F(h.Bounds()[i], 6)
			}
			t.AddRow(le, fmt.Sprint(c))
		}
		out = append(out, t.HTML())
	}

	if n := len(o.audit.entries); n > 0 {
		out = append(out, fmt.Sprintf("<p class=\"note\">%d audited scheduler decisions (export with --audit for the full JSONL log).</p>", n))
	}
	return out
}

// WriteHTMLReport renders the recording as one self-contained HTML page.
func (o *Observer) WriteHTMLReport(w io.Writer, title string) error {
	_, err := io.WriteString(w, report.HTMLDocument(title, o.HTMLSections("")...))
	return err
}

// htmlEscape escapes the few characters that matter in our headings.
func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
