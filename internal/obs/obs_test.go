package obs

import (
	"reflect"
	"testing"

	"batchsched/internal/sim"
)

// TestNilObserverIsSafe: every method of the disabled (nil) observer must be
// callable — the instrumented hot paths rely on this instead of branching.
func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports Enabled")
	}
	if id := o.Begin("x", "txn", 1, -1, -1, 0, 0); id != 0 {
		t.Fatalf("nil Begin returned %d, want 0", id)
	}
	o.End(1, 0)
	o.SetSampleInterval(sim.Second)
	o.Finish(0)
	if o.Spans() != nil || o.Samples() != nil || o.Histograms() != nil {
		t.Fatal("nil observer returned non-nil recordings")
	}
	if o.Audit() != nil {
		t.Fatal("nil observer returned a non-nil audit")
	}
	var c *Counter
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram holds observations")
	}
	var a *Audit
	a.SetClock(nil)
	a.Record(AuditEntry{})
	if a.Entries() != nil {
		t.Fatal("nil audit holds entries")
	}
}

func TestSpanLifecycle(t *testing.T) {
	o := New()
	root := o.Begin("txn", "txn", 7, -1, -1, 0, 10*sim.Millisecond)
	child := o.Begin("execute", "txn", 7, -1, 0, root, 12*sim.Millisecond)
	o.End(child, 20*sim.Millisecond)
	// Double-End must not move the end time.
	o.End(child, 99*sim.Millisecond)
	o.Finish(50 * sim.Millisecond)

	spans := o.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].End != 50*sim.Millisecond {
		t.Errorf("Finish left root open: End=%v", spans[0].End)
	}
	if spans[1].End != 20*sim.Millisecond {
		t.Errorf("double End moved the end time: %v", spans[1].End)
	}
	if spans[1].Parent != root {
		t.Errorf("child parent = %v, want %v", spans[1].Parent, root)
	}
	if d := spans[1].Duration(); d != 8*sim.Millisecond {
		t.Errorf("child duration = %v, want 8ms", d)
	}
}

func TestPhaseTotals(t *testing.T) {
	o := New()
	a := o.Begin("execute", "txn", 1, -1, 0, 0, 0)
	o.End(a, 10*sim.Millisecond)
	b := o.Begin("lock-wait", "txn", 1, -1, -1, 0, 10*sim.Millisecond)
	o.End(b, 15*sim.Millisecond)
	c := o.Begin("execute", "txn", 2, -1, 0, 0, 0)
	o.End(c, 30*sim.Millisecond)
	io := o.Begin("cohort", "io", 1, 3, 0, 0, 0)
	o.End(io, 5*sim.Millisecond)

	got := o.PhaseTotals("txn")
	want := []PhaseTotal{
		{Name: "execute", Total: 40 * sim.Millisecond, Count: 2},
		{Name: "lock-wait", Total: 5 * sim.Millisecond, Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PhaseTotals(txn) = %+v, want %+v", got, want)
	}
	if all := o.PhaseTotals(""); len(all) != 3 {
		t.Errorf("PhaseTotals(\"\") has %d phases, want 3", len(all))
	}
}

// TestHistogramBucketBoundaries pins the boundary semantics: bucket i counts
// bounds[i-1] < v <= bounds[i], with an implicit overflow bucket above the
// last bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	o := New()
	h := o.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{
		0,    // -> bucket 0 (v <= 1)
		1,    // -> bucket 0 (upper bound inclusive)
		1.01, // -> bucket 1
		10,   // -> bucket 1 (upper bound inclusive)
		10.5, // -> bucket 2
		100,  // -> bucket 2
		101,  // -> overflow
		1e9,  // -> overflow
	} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2}
	if got := h.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0+1+1.01+10+10.5+100+101+1e9; got != want {
		t.Errorf("Sum = %g, want %g", got, want)
	}
	// The create-on-first-use registry must hand back the same histogram.
	if o.Histogram("lat", []float64{5}) != h {
		t.Error("second Histogram(\"lat\") returned a different instance")
	}
	if len(o.Histograms()) != 1 {
		t.Errorf("registry holds %d histograms, want 1", len(o.Histograms()))
	}
}

func TestCounterRegistryDedup(t *testing.T) {
	o := New()
	c := o.Counter("grants")
	c.Inc()
	o.Counter("grants").Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %g, want 3 (dedup by name failed?)", got)
	}
}

// TestSampling drives the sampler through a real engine and checks the rows
// line up with the header and tick times.
func TestSampling(t *testing.T) {
	eng := sim.NewEngine()
	o := New()
	o.SetSampleInterval(10 * sim.Millisecond)
	c := o.Counter("events")
	depth := 0.0
	o.Gauge("depth", func() float64 { return depth })

	// Model activity between ticks.
	eng.ScheduleAt(4*sim.Millisecond, func(sim.Time) { c.Inc(); depth = 2 })
	eng.ScheduleAt(17*sim.Millisecond, func(sim.Time) { c.Inc(); depth = 5 })

	o.StartSampling(eng)
	eng.RunUntil(25 * sim.Millisecond)
	o.Finish(25 * sim.Millisecond)

	if got, want := o.SampleHeader(), []string{"t_ms", "events", "depth"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("header = %v, want %v", got, want)
	}
	want := [][]float64{
		{0, 0, 0},  // tick at t=0, before any activity
		{10, 1, 2}, // after the t=4 event
		{20, 2, 5}, // after the t=17 event
		{25, 2, 5}, // Finish's final sample at the horizon
	}
	if got := o.Samples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
	ts, vs := o.TimeSeries("depth")
	if !reflect.DeepEqual(ts, []float64{0, 10, 20, 25}) || !reflect.DeepEqual(vs, []float64{0, 2, 5, 5}) {
		t.Fatalf("TimeSeries(depth) = %v / %v", ts, vs)
	}
	if ts, vs := o.TimeSeries("nope"); ts != nil || vs != nil {
		t.Fatal("TimeSeries of an unknown column returned data")
	}
}

// TestClockClamps: monotone clamping of wall-clock regression is counted,
// once per clamped span end and once per clamped sample.
func TestClockClamps(t *testing.T) {
	o := New()
	o.SetSampleInterval(sim.Second)

	id := o.Begin("txn", "txn", 1, -1, -1, 0, 10*sim.Millisecond)
	o.End(id, 5*sim.Millisecond) // wall clock ran backwards: clamp to start
	spanEnds, samples := o.ClockClamps()
	if spanEnds != 1 || samples != 0 {
		t.Fatalf("after clamped End: ClockClamps = %d, %d; want 1, 0", spanEnds, samples)
	}
	if got := o.Spans()[0]; got.End != got.Start {
		t.Fatalf("clamped span End = %v, want Start %v", got.End, got.Start)
	}

	o.SampleNow(2 * sim.Second)
	o.SampleNow(1 * sim.Second) // regressed sample tick: clamp to lastTick
	spanEnds, samples = o.ClockClamps()
	if spanEnds != 1 || samples != 1 {
		t.Fatalf("after clamped sample: ClockClamps = %d, %d; want 1, 1", spanEnds, samples)
	}

	// Forward motion never counts.
	id2 := o.Begin("txn", "txn", 2, -1, -1, 0, 3*sim.Second)
	o.End(id2, 4*sim.Second)
	o.SampleNow(5 * sim.Second)
	if se, sa := o.ClockClamps(); se != 1 || sa != 1 {
		t.Fatalf("forward motion counted as clamps: %d, %d", se, sa)
	}

	var nilO *Observer
	if se, sa := nilO.ClockClamps(); se != 0 || sa != 0 {
		t.Fatal("nil observer reports clamps")
	}
}
