package obs

import (
	"sort"

	"batchsched/internal/sim"
)

// Counter is a monotonically increasing metric. The nil Counter (what a
// disabled observer hands out) absorbs updates for free.
type Counter struct {
	name string
	v    float64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d.
func (c *Counter) Add(d float64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram is a fixed-bucket distribution. Bucket i counts observations v
// with bounds[i-1] < v <= bounds[i] (upper-bound inclusive); one implicit
// overflow bucket catches v > bounds[len-1].
type Histogram struct {
	name   string
	bounds []float64
	counts []uint64
	n      uint64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Counts returns the per-bucket counts; the last entry is the overflow
// bucket.
func (h *Histogram) Counts() []uint64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

type gaugeEntry struct {
	name string
	fn   func() float64
}

// registry holds the metric instruments and their sampled time-series.
type registry struct {
	counters []*Counter
	gauges   []gaugeEntry
	hists    []*Histogram
	// samples rows are [t_ms, counters..., gauges...] in registration
	// order; registration is frozen by the first sample.
	samples [][]float64
}

// Counter returns the named counter, creating it on first use. Disabled
// observers return nil, which absorbs updates.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	for _, c := range o.reg.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	o.reg.counters = append(o.reg.counters, c)
	return c
}

// Gauge registers a sampled callback metric. The callback runs at every
// sampling tick; it must be cheap and must not mutate simulation state.
func (o *Observer) Gauge(name string, fn func() float64) {
	if o == nil {
		return
	}
	o.reg.gauges = append(o.reg.gauges, gaugeEntry{name: name, fn: fn})
}

// Histogram returns the named fixed-bucket histogram, creating it with the
// given ascending upper bounds on first use.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	for _, h := range o.reg.hists {
		if h.name == name {
			return h
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	o.reg.hists = append(o.reg.hists, h)
	return h
}

// Histograms returns the registered histograms in registration order.
func (o *Observer) Histograms() []*Histogram {
	if o == nil {
		return nil
	}
	return o.reg.hists
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// SampleHeader returns the column names of the sampled time-series:
// "t_ms" followed by the counters and gauges in registration order.
func (o *Observer) SampleHeader() []string {
	if o == nil {
		return nil
	}
	out := make([]string, 0, 1+len(o.reg.counters)+len(o.reg.gauges))
	out = append(out, "t_ms")
	for _, c := range o.reg.counters {
		out = append(out, c.name)
	}
	for _, g := range o.reg.gauges {
		out = append(out, g.name)
	}
	return out
}

// Samples returns the sampled rows, one per tick, columns as in
// SampleHeader.
func (o *Observer) Samples() [][]float64 {
	if o == nil {
		return nil
	}
	return o.reg.samples
}

// TimeSeries extracts one sampled column by name, returning the tick times
// (ms) and values, or nil when the column does not exist.
func (o *Observer) TimeSeries(name string) (ts, vs []float64) {
	if o == nil {
		return nil, nil
	}
	col := -1
	for i, h := range o.SampleHeader() {
		if h == name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil, nil
	}
	for _, row := range o.reg.samples {
		ts = append(ts, row[0])
		vs = append(vs, row[col])
	}
	return ts, vs
}

func (r *registry) sample(now sim.Time) {
	row := make([]float64, 0, 1+len(r.counters)+len(r.gauges))
	row = append(row, now.Milliseconds())
	for _, c := range r.counters {
		row = append(row, c.v)
	}
	for _, g := range r.gauges {
		row = append(row, g.fn())
	}
	r.samples = append(r.samples, row)
}
