// Package workload implements the paper's transaction generators:
//
//   - Experiment 1 — Pattern1 Xr(F1:1)->Xr(F2:5)->w(F1:0.2)->w(F2:1), with
//     F1 != F2 drawn uniformly from NumFiles files (high blocking).
//   - Experiment 2 — Pattern2 r(B:5)->w(F1:1)->w(F2:1), with B drawn from a
//     read-only set and F1 != F2 from a hot set (hot-set updating).
//   - Experiment 3 — Experiment 1 with Gaussian estimation error on the
//     declared I/O demands (sensitivity study).
//
// Generators implement machine.Generator.
package workload

import (
	"fmt"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// Pattern1 is the Experiment-1 template: the first two read steps take
// X locks, which makes conflicting transactions block early and often.
var Pattern1 = model.MustParsePattern("Xr(F1:1)->Xr(F2:5)->w(F1:0.2)->w(F2:1)")

// Pattern2 is the Experiment-2 template: a 5-object read of a read-only
// file followed by two 1-object updates of hot files.
var Pattern2 = model.MustParsePattern("r(B:5)->w(F1:1)->w(F2:1)")

// Exp1 generates Pattern1 instances over NumFiles files.
type Exp1 struct {
	// NumFiles is the number of files F1 and F2 are drawn from.
	NumFiles int
}

// NewExp1 returns an Experiment-1 generator.
func NewExp1(numFiles int) Exp1 {
	if numFiles < 2 {
		panic(fmt.Sprintf("workload: Experiment 1 needs >= 2 files, got %d", numFiles))
	}
	return Exp1{NumFiles: numFiles}
}

// Steps instantiates Pattern1 on two distinct random files.
func (g Exp1) Steps(rng *sim.RNG) []model.Step {
	f1, f2 := rng.TwoDistinct(g.NumFiles)
	steps, err := Pattern1.Instantiate(map[string]model.FileID{
		"F1": model.FileID(f1),
		"F2": model.FileID(f2),
	})
	if err != nil {
		panic(err)
	}
	return steps
}

// Exp2 generates Pattern2 instances: B from the read-only set
// [0, ReadOnly), F1 != F2 from the hot set [ReadOnly, ReadOnly+Hot). With
// the paper's 8 nodes and 8+8 files, every node is home to exactly one
// read-only and one hot file.
type Exp2 struct {
	// ReadOnly is the number of read-only files (ids 0..ReadOnly-1).
	ReadOnly int
	// Hot is the number of hot files (ids ReadOnly..ReadOnly+Hot-1).
	Hot int
}

// NewExp2 returns the paper's Experiment-2 generator (8 read-only and 8 hot
// files).
func NewExp2() Exp2 { return Exp2{ReadOnly: 8, Hot: 8} }

// Steps instantiates Pattern2 on one random read-only file and two distinct
// random hot files.
func (g Exp2) Steps(rng *sim.RNG) []model.Step {
	if g.ReadOnly < 1 || g.Hot < 2 {
		panic("workload: Experiment 2 needs >= 1 read-only and >= 2 hot files")
	}
	b := rng.Intn(g.ReadOnly)
	h1, h2 := rng.TwoDistinct(g.Hot)
	steps, err := Pattern2.Instantiate(map[string]model.FileID{
		"B":  model.FileID(b),
		"F1": model.FileID(g.ReadOnly + h1),
		"F2": model.FileID(g.ReadOnly + h2),
	})
	if err != nil {
		panic(err)
	}
	return steps
}

// NumFiles returns the total file count of the Experiment-2 database.
func (g Exp2) NumFiles() int { return g.ReadOnly + g.Hot }

// BatchScan generates the heavy whole-file batch transactions the paper's
// introduction motivates: each transaction X-locks and scans one whole file
// of Objects objects, then rewrites a second distinct file of the same size.
// With Objects much larger than Pattern1's step costs, each cohort is sliced
// into Objects round-robin quanta at full declustering — the configuration
// where the DPN service engine dominates simulator wall time, used by the
// tracked Run benchmarks (BENCH_core.json).
type BatchScan struct {
	// NumFiles is the number of files the two scans are drawn from.
	NumFiles int
	// Objects is the file size in objects (the cost of each step at DD=1).
	Objects float64
}

// NewBatchScan returns a whole-file batch-scan generator.
func NewBatchScan(numFiles int, objects float64) BatchScan {
	if numFiles < 2 {
		panic(fmt.Sprintf("workload: batch scan needs >= 2 files, got %d", numFiles))
	}
	if objects <= 0 {
		panic(fmt.Sprintf("workload: batch scan needs a positive file size, got %g", objects))
	}
	return BatchScan{NumFiles: numFiles, Objects: objects}
}

// Steps instantiates one read-rewrite batch on two distinct random files.
func (g BatchScan) Steps(rng *sim.RNG) []model.Step {
	f1, f2 := rng.TwoDistinct(g.NumFiles)
	return []model.Step{
		{File: model.FileID(f1), LockMode: model.X, Cost: g.Objects, DeclaredCost: g.Objects},
		{File: model.FileID(f2), Write: true, LockMode: model.X, Cost: g.Objects, DeclaredCost: g.Objects},
	}
}

// Generator is the interface this package implements (mirrors
// machine.Generator to avoid an import cycle in wrappers).
type Generator interface {
	Steps(rng *sim.RNG) []model.Step
}

// WithError wraps a generator with the Experiment-3 estimation-error model:
// each step's declared cost becomes C0*(1+x) with x ~ N(0, sigma²), clamped
// to 0 when x <= -1. Actual execution costs are untouched.
type WithError struct {
	// Gen is the underlying generator.
	Gen Generator
	// Sigma is the standard deviation of the relative error.
	Sigma float64
}

// Steps draws steps from the wrapped generator and perturbs the declared
// costs.
func (g WithError) Steps(rng *sim.RNG) []model.Step {
	steps := g.Gen.Steps(rng)
	if g.Sigma <= 0 {
		return steps
	}
	for i := range steps {
		x := rng.Norm(0, g.Sigma)
		if x <= -1 {
			steps[i].DeclaredCost = 0
			continue
		}
		steps[i].DeclaredCost = steps[i].Cost * (1 + x)
	}
	return steps
}

// Fixed replays one fixed step sequence forever (tests, examples and
// ablations).
type Fixed struct {
	// Template is the steps to copy on every call.
	Template []model.Step
}

// Steps returns a copy of the template.
func (g Fixed) Steps(*sim.RNG) []model.Step {
	out := make([]model.Step, len(g.Template))
	copy(out, g.Template)
	return out
}

// Mixed interleaves a batch workload with short transactions — the OLTP
// mix the paper's introduction motivates (debit-credit-style jobs plus
// periodic bulk updates). With probability ShortFraction a transaction is a
// single tiny S- or X-step on one uniform random file; otherwise it comes
// from Batch. File-granularity locking makes this a coarse model of
// short-transaction processing (the paper notes real systems use
// record-level locks for them), which is exactly why a dedicated batch
// scheduler matters: under file locks a batch blocks every short
// transaction on its files.
type Mixed struct {
	// Batch produces the batch transactions.
	Batch Generator
	// NumFiles is the file range for short transactions.
	NumFiles int
	// ShortFraction is the probability an arrival is short.
	ShortFraction float64
	// ShortCost is the I/O demand of a short transaction in objects
	// (e.g. 0.01 = one 25 KB record read at the paper's 2.5 MB objects).
	ShortCost float64
	// ShortWrites makes short transactions updates rather than reads.
	ShortWrites bool
}

// Steps draws either a short transaction or a batch.
func (g Mixed) Steps(rng *sim.RNG) []model.Step {
	if rng.Float64() >= g.ShortFraction {
		return g.Batch.Steps(rng)
	}
	mode := model.S
	if g.ShortWrites {
		mode = model.X
	}
	return []model.Step{{
		File:         model.FileID(rng.Intn(g.NumFiles)),
		Write:        g.ShortWrites,
		LockMode:     mode,
		Cost:         g.ShortCost,
		DeclaredCost: g.ShortCost,
	}}
}
