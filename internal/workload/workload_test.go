package workload

import (
	"math"
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

func TestExp1Shape(t *testing.T) {
	g := NewExp1(16)
	rng := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		steps := g.Steps(rng)
		if len(steps) != 4 {
			t.Fatalf("len = %d, want 4", len(steps))
		}
		f1, f2 := steps[0].File, steps[1].File
		if f1 == f2 {
			t.Fatal("F1 and F2 must be distinct")
		}
		if steps[2].File != f1 || steps[3].File != f2 {
			t.Fatal("write steps must revisit F1 and F2")
		}
		// The first two read steps take X locks (Experiment 1).
		if steps[0].Write || steps[0].LockMode != model.X {
			t.Fatalf("step 1 = %+v, want X-locked read", steps[0])
		}
		if steps[1].Write || steps[1].LockMode != model.X {
			t.Fatalf("step 2 = %+v, want X-locked read", steps[1])
		}
		if !steps[2].Write || !steps[3].Write {
			t.Fatal("steps 3-4 must write")
		}
		want := []float64{1, 5, 0.2, 1}
		for j, c := range want {
			if steps[j].Cost != c || steps[j].DeclaredCost != c {
				t.Fatalf("step %d cost = %g/%g, want %g", j+1, steps[j].Cost, steps[j].DeclaredCost, c)
			}
		}
		if int(f1) >= 16 || int(f2) >= 16 || f1 < 0 || f2 < 0 {
			t.Fatalf("file out of range: %d %d", f1, f2)
		}
	}
}

func TestExp1FileUniformity(t *testing.T) {
	g := NewExp1(8)
	rng := sim.NewRNG(9)
	counts := make(map[model.FileID]int)
	const n = 20000
	for i := 0; i < n; i++ {
		steps := g.Steps(rng)
		counts[steps[0].File]++
		counts[steps[1].File]++
	}
	for f, c := range counts {
		if c < 4500 || c > 5500 {
			t.Errorf("file %d drawn %d times, want ~5000", f, c)
		}
	}
}

func TestExp2Shape(t *testing.T) {
	g := NewExp2()
	if g.NumFiles() != 16 {
		t.Fatalf("NumFiles = %d, want 16", g.NumFiles())
	}
	rng := sim.NewRNG(2)
	for i := 0; i < 1000; i++ {
		steps := g.Steps(rng)
		if len(steps) != 3 {
			t.Fatalf("len = %d, want 3", len(steps))
		}
		b, f1, f2 := steps[0].File, steps[1].File, steps[2].File
		if int(b) >= 8 {
			t.Fatalf("B = %d, want read-only set [0,8)", b)
		}
		if int(f1) < 8 || int(f1) >= 16 || int(f2) < 8 || int(f2) >= 16 {
			t.Fatalf("hot files = %d,%d, want [8,16)", f1, f2)
		}
		if f1 == f2 {
			t.Fatal("hot files must be distinct")
		}
		if steps[0].Write || steps[0].LockMode != model.S {
			t.Fatal("B step is a plain S read")
		}
		if !steps[1].Write || !steps[2].Write {
			t.Fatal("hot steps write")
		}
	}
}

func TestWithErrorPerturbsDeclaredOnly(t *testing.T) {
	g := WithError{Gen: NewExp1(16), Sigma: 0.5}
	rng := sim.NewRNG(3)
	var declared, actual float64
	changed := 0
	const n = 5000
	for i := 0; i < n; i++ {
		for _, st := range g.Steps(rng) {
			declared += st.DeclaredCost
			actual += st.Cost
			if st.DeclaredCost != st.Cost {
				changed++
			}
			if st.DeclaredCost < 0 {
				t.Fatal("declared cost must never be negative")
			}
		}
	}
	if changed == 0 {
		t.Fatal("error model changed nothing")
	}
	// Mean of declared ≈ mean of actual (zero-mean error, slight upward
	// bias from the clamp at sigma=0.5 is negligible).
	if ratio := declared / actual; math.Abs(ratio-1) > 0.02 {
		t.Errorf("declared/actual = %v, want ~1", ratio)
	}
}

func TestWithErrorHugeSigmaClampsToZero(t *testing.T) {
	g := WithError{Gen: NewExp1(16), Sigma: 10}
	rng := sim.NewRNG(4)
	zeros, total := 0, 0
	for i := 0; i < 2000; i++ {
		for _, st := range g.Steps(rng) {
			total++
			if st.DeclaredCost == 0 {
				zeros++
			}
		}
	}
	// The clamp fires when x <= -1, i.e. with probability Φ(-1/σ).
	want := sim.NormalCDF(-1.0 / 10)
	frac := float64(zeros) / float64(total)
	if math.Abs(frac-want) > 0.03 {
		t.Errorf("clamped fraction = %v, want ~%v", frac, want)
	}
}

func TestWithErrorSigmaZeroIsIdentity(t *testing.T) {
	g := WithError{Gen: NewExp1(16), Sigma: 0}
	rng := sim.NewRNG(5)
	for _, st := range g.Steps(rng) {
		if st.DeclaredCost != st.Cost {
			t.Fatal("sigma=0 must not perturb")
		}
	}
}

func TestFixedGenerator(t *testing.T) {
	tpl, err := Pattern1.Instantiate(map[string]model.FileID{"F1": 1, "F2": 2})
	if err != nil {
		t.Fatal(err)
	}
	g := Fixed{Template: tpl}
	a := g.Steps(nil)
	b := g.Steps(nil)
	if len(a) != 4 || len(b) != 4 {
		t.Fatal("fixed generator must replay the template")
	}
	a[0].Cost = 99
	if b[0].Cost == 99 || g.Template[0].Cost == 99 {
		t.Fatal("Steps must return copies")
	}
}

func TestNewExp1PanicsOnTooFewFiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExp1(1)
}

func TestExp1SkewedDistribution(t *testing.T) {
	g := NewExp1Skewed(16, 1.0)
	rng := sim.NewRNG(5)
	counts := make(map[model.FileID]int)
	const n = 20000
	for i := 0; i < n; i++ {
		steps := g.Steps(rng)
		counts[steps[0].File]++
		if steps[0].File == steps[1].File {
			t.Fatal("files must be distinct")
		}
	}
	// File 0 must be drawn far more often than file 15 under Zipf(1).
	if counts[0] < 4*counts[15] {
		t.Errorf("skew too weak: f0=%d f15=%d", counts[0], counts[15])
	}
	// Theta=0 degenerates to near-uniform.
	u := NewExp1Skewed(16, 0)
	counts0 := make(map[model.FileID]int)
	for i := 0; i < n; i++ {
		counts0[u.Steps(rng)[0].File]++
	}
	for f, c := range counts0 {
		if c < n/16-400 || c > n/16+400 {
			t.Errorf("theta=0 file %d count %d not ~uniform", f, c)
		}
	}
}

func TestExp1SkewedPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewExp1Skewed(1, 1) },
		func() { NewExp1Skewed(8, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
